package bench

import (
	"fmt"

	"dgap/internal/bal"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphone"
	"dgap/internal/llama"
	"dgap/internal/pmem"
	"dgap/internal/workload"
	"dgap/internal/xpgraph"
)

// SystemNames lists the dynamic frameworks in the paper's plotting
// order.
var SystemNames = []string{"DGAP", "BAL", "LLAMA", "GraphOne-FD", "XPGraph"}

// buildSystem constructs one dynamic framework sized for nVert vertices
// and nEdges directed edges, on its own arena.
func buildSystem(name string, nVert, nEdges int, lat pmem.LatencyModel) (graph.System, *pmem.Arena, error) {
	a := arenaFor(nEdges, lat)
	switch name {
	case "DGAP":
		g, err := dgap.New(a, dgap.DefaultConfig(nVert, int64(nEdges)))
		return g, a, err
	case "BAL":
		return bal.New(a, nVert), a, nil
	case "LLAMA":
		// The paper snapshots after each 1% of the graph.
		return llama.New(a, nVert, nEdges/100+1), a, nil
	case "GraphOne-FD":
		g, err := graphone.New(a, nVert, graphone.DefaultFlushInterval)
		return g, a, err
	case "XPGraph":
		// The original's 8 GB circular log scaled to the emulated device:
		// large enough to hold the three small graphs entirely, smaller
		// than the big ones — preserving Table 3's crossover.
		g, err := xpgraph.New(a, nVert, xpgraph.Config{
			Threshold:   xpgraph.DefaultThreshold,
			LogCapEdges: 1 << 20,
		})
		return g, a, err
	default:
		return nil, nil, fmt.Errorf("bench: unknown system %q", name)
	}
}

// lockScope returns the virtual-time contention granularity of a
// system's insert path (the shared workload.ScopeFor mapping).
func lockScope(name string) workload.LockScope {
	return workload.ScopeFor(name)
}

// loadAll opens the system's Store, applies the full stream through
// Store.Apply in adaptive batches (no timing) and settles pending
// batches so analysis sees the complete graph. The Store is returned
// for View minting.
func loadAll(sys graph.System, edges []graph.Edge) (*graph.Store, error) {
	st := graph.Open(sys)
	ops := graph.Inserts(edges)
	batch := workload.AdaptiveBatchSize(len(edges))
	for len(ops) > 0 {
		n := min(batch, len(ops))
		if err := st.Apply(ops[:n]); err != nil {
			return nil, err
		}
		ops = ops[n:]
	}
	return st, settle(sys)
}

// settle flushes framework-internal batches before analysis.
func settle(sys graph.System) error {
	switch s := sys.(type) {
	case *llama.Graph:
		return s.Freeze()
	case *graphone.Graph:
		return s.Flush()
	case *xpgraph.Graph:
		return s.Archive()
	}
	return nil
}
