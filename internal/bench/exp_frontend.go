package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/serve"
	"dgap/internal/wire"
	"dgap/internal/workload"
)

// Frontend-experiment shape. The analytics mix includes a periodic
// kernel refresh, so analytics capacity is genuinely bounded by serving
// work (a kernel occupies a dispatcher for orders of magnitude longer
// than a point read) — which is what lets the overload row drive a
// 2x-capacity arrival schedule from an ordinary generator machine. The
// dispatcher pool is sized so one in-flight kernel stalls one
// dispatcher, not the whole front end. The admission rings are sized
// per class, inversely to job cost: the interactive ring is LARGER
// than the burst an open-loop generator can fire in one wakeup on a
// busy machine (pacing batches requests that came due during a late
// wakeup, and that scheduling jitter must not read as sheds), while
// the analytics ring is SHORT enough that (a) its queueing delay in
// kernels stays bounded and (b) its occupancy, spread over the
// flooding connections, stays under the per-connection in-flight
// window — if the window binds first the readers stop pulling frames
// and TCP backpressure absorbs the flood silently, and the typed
// OVERLOADED path never fires.
const (
	// frontendConns is the connection count both protocols get in the
	// closed-loop comparison, and the generator count per open-loop class.
	frontendConns = 4
	// frontendWindow is the server's per-connection in-flight window.
	frontendWindow = 128
	// frontendPipeline is a closed-loop client's outstanding-request
	// window — sized under the per-tenant queue share so the capacity
	// probes saturate the dispatchers without tripping admission control.
	frontendPipeline    = 48
	frontendDispatchers = 4
	frontendQueueDepth  = 512
	// frontendAnalyticsDepth is the analytics admission ring: under the
	// flood conns' aggregate window (4 x 128, see the shape comment) so
	// overload sheds, above the batch a late generator wakeup fires at
	// the bottom rung's analytics rate so jitter doesn't.
	frontendAnalyticsDepth = 384
	// frontendBatch is the point reads grouped per OpBatch frame in the
	// batched throughput row.
	frontendBatch = 16
	// frontendPointQueries / frontendScanQueries size the closed-loop
	// capacity probes (logical queries, split across the connections).
	frontendPointQueries = 24000
	frontendScanQueries  = 4000
	// frontendOpenWindow is one open-loop measurement's arrival window;
	// frontendOpenWarmup precedes it at the same arrival rate but is
	// excluded from every counter and percentile. The first beats of a
	// row pay one-off costs that say nothing about the steady state the
	// row claims to measure — fresh connections' first frames, the QoS
	// scheduler re-learning per-class service times after the previous
	// row's very different mix — and at p999 resolution a single
	// cold-start stall would dominate the whole row.
	frontendOpenWarmup = 150 * time.Millisecond
	frontendOpenWindow = 800 * time.Millisecond
	// Fixed p999 SLOs per class. Deliberately loose for portability: the
	// ladder's job is ranking rungs against a fixed bar on whatever
	// machine runs it, not certifying a production latency budget. On a
	// saturated small host the open-loop discipline books generator
	// catch-up lag as latency (correctly — the schedule is the truth),
	// so the bar must leave room for that lag, not just service time.
	frontendInteractiveSLO = 75 * time.Millisecond
	frontendAnalyticsSLO   = 500 * time.Millisecond
	// Churn shape bounds (see churnShape). The dataset re-streams
	// through the router in paced insert+delete chunks for the whole
	// measurement, bounded by frontendChurnBudget inserted edges (the
	// arena is sized for the budget).
	frontendChurnChunk  = 512
	frontendChurnPause  = 8 * time.Millisecond
	frontendChurnBudget = 500000
	// frontendChurnWindow caps the churn copies live at once: each
	// chunk inserts fresh copies and deletes the copies inserted a
	// window ago, so the graph every row is measured against stays at
	// its loaded size plus this window. Insert-only churn would grow a
	// small graph by the whole budget over the run, silently re-pricing
	// every analytics kernel between the first ladder rung and the
	// overload row — later rows would measure a different workload, not
	// a different load.
	frontendChurnWindow = 4096
	// frontendChurnFrac is the fraction of the graph churn turns over
	// per second (1/48). The rate must be proportional, not fixed: churn
	// exists to keep ingest, generation turnover and staleness refresh
	// live under every row, and deletes tombstone without reclaim while
	// the serving tier holds a lease (compaction is snapshot-gated), so
	// a fixed rate sized for a hundred-million-edge graph would bury a
	// benchmark-scale graph in tombstone pairs mid-run and the rows
	// would measure the churn's wake, not the front end.
	frontendChurnFrac = 48
)

// churnShape paces churn for a graph of nEdges: chunk size, live-copy
// window, and inter-chunk pause, targeting nEdges/frontendChurnFrac
// churned edges per second. Small graphs keep the minimum chunk and
// stretch the pause; large graphs saturate at the fixed chunk and
// pause caps.
func churnShape(nEdges int) (chunk, window int, pause time.Duration) {
	chunk = min(frontendChurnChunk, max(16, nEdges/6000))
	window = min(frontendChurnWindow, max(256, nEdges/16))
	pause = time.Duration(chunk) * time.Second * frontendChurnFrac / time.Duration(max(nEdges, 1))
	if pause < frontendChurnPause {
		pause = frontendChurnPause
	}
	return chunk, window, pause
}

// frontendLadder is the open-loop rate ladder, as fractions of each
// class's measured closed-loop capacity.
var frontendLadder = []float64{0.25, 0.5, 0.75}

// FrontendThroughput is one closed-loop protocol row: the same logical
// point-read stream over the legacy line protocol (synchronous, one
// command per round trip), the pipelined wire protocol, or the wire
// protocol with OpBatch framing. QPS counts logical queries, not frames.
type FrontendThroughput struct {
	Protocol string  `json:"protocol"`
	Conns    int     `json:"conns"`
	Batch    int     `json:"batch,omitempty"`
	Queries  int     `json:"queries"`
	WallNs   int64   `json:"wall_ns"`
	QPS      float64 `json:"qps"`
}

// FrontendClassRow is one class's outcome in one open-loop run. Latency
// is measured from the request's scheduled arrival time, not its actual
// submission — the open-loop discipline that defeats coordinated
// omission (a stalled server inflates every subsequent latency instead
// of silently pausing the generator). WithinSLO requires completions,
// zero sheds, and p999 at or under the class SLO.
type FrontendClassRow struct {
	Class       string  `json:"class"`
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Issued      int64   `json:"issued"`
	Completed   int64   `json:"completed"`
	Shed        int64   `json:"shed"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	P999Ns      int64   `json:"p999_ns"`
	SLONs       int64   `json:"slo_p999_ns"`
	WithinSLO   bool    `json:"within_slo"`
}

// FrontendRow is one open-loop run: a ladder rung (both classes at the
// same fraction of their capacity) or the 2x-overload row.
type FrontendRow struct {
	Mode    string             `json:"mode"`
	Classes []FrontendClassRow `json:"classes"`
}

// FrontendDump is the wire front end's section of BENCH_serve.json:
// the closed-loop protocol comparison, the open-loop SLO ladder, and
// the 2x-overload row, all measured over live churn ingest.
type FrontendDump struct {
	System           string               `json:"system"`
	Graph            string               `json:"graph"`
	Conns            int                  `json:"conns"`
	Window           int                  `json:"window"`
	Dispatchers      int                  `json:"dispatchers"`
	QueueDepth       int                  `json:"queue_depth"`
	InteractiveSLONs int64                `json:"interactive_slo_p999_ns"`
	AnalyticsSLONs   int64                `json:"analytics_slo_p999_ns"`
	Throughput       []FrontendThroughput `json:"throughput"`
	// WireVsLine is the wire protocol's best closed-loop configuration
	// (pipelined or batch-framed) against the line baseline on the same
	// logical query stream.
	WireVsLine        float64 `json:"wire_vs_line"`
	MaxInteractiveQPS float64 `json:"closed_loop_interactive_qps"`
	MaxAnalyticsQPS   float64 `json:"closed_loop_analytics_qps"`
	// Sustainable*QPS is the achieved rate of the highest ladder rung the
	// class passed (p999 within SLO, zero sheds); 0 if no rung passed.
	SustainableInteractive float64       `json:"sustainable_interactive_qps"`
	SustainableAnalytics   float64       `json:"sustainable_analytics_qps"`
	Rows                   []FrontendRow `json:"rows"`
	ChurnEdges             int64         `json:"churn_edges"`
}

// frontendVert scatters the i-th query over the vertex space.
func frontendVert(i, nVert int) uint64 {
	return uint64(uint32(i*2654435761) % uint32(nVert))
}

// frontendInteractiveReq is the interactive point-read mix.
func frontendInteractiveReq(i, nVert int) wire.Request {
	v := frontendVert(i, nVert)
	if i%2 == 0 {
		return wire.Request{Op: wire.OpDegree, V: v}
	}
	return wire.Request{Op: wire.OpNeighbors, V: v}
}

// frontendInteractiveLine is the same logical mix as line commands.
func frontendInteractiveLine(i, nVert int) string {
	v := frontendVert(i, nVert)
	if i%2 == 0 {
		return fmt.Sprintf("degree %d", v)
	}
	return fmt.Sprintf("neighbors %d", v)
}

// frontendAnalyticsReq is the analytics mix: k-hop expansions, periodic
// top-k scans, and a kernel refresh every 16th query. The kernel is what
// keeps analytics capacity bounded on small graphs — it occupies the
// dispatcher for orders of magnitude longer than a point read, so the
// measured closed-loop capacity is a real serving limit the overload row
// can exceed.
func frontendAnalyticsReq(i, nVert int) wire.Request {
	switch {
	case i%16 == 15:
		return wire.Request{Op: wire.OpPageRank}
	case i%8 == 7:
		return wire.Request{Op: wire.OpTopK, K: 8}
	default:
		return wire.Request{Op: wire.OpKHop, V: frontendVert(i, nVert), K: 3}
	}
}

// frontendLineHandler answers the legacy text commands the comparison
// drives, over the same serve.Server the wire path uses (dgap-serve's
// read verbs; ingest and control verbs are irrelevant here).
func frontendLineHandler(srv *serve.Server) wire.LineHandler {
	return func(line string) (string, error) {
		f := strings.Fields(line)
		arg := func(i int) (graph.V, error) {
			if i >= len(f) {
				return 0, fmt.Errorf("missing vertex argument")
			}
			v, err := strconv.ParseUint(f[i], 10, 32)
			if err != nil {
				return 0, err
			}
			return graph.V(v), nil
		}
		var q serve.Query
		switch f[0] {
		case "degree":
			v, err := arg(1)
			if err != nil {
				return "", err
			}
			q = serve.Query{Class: serve.ClassDegree, V: v}
		case "neighbors":
			v, err := arg(1)
			if err != nil {
				return "", err
			}
			q = serve.Query{Class: serve.ClassNeighbors, V: v}
		case "khop":
			v, err := arg(1)
			if err != nil {
				return "", err
			}
			q = serve.Query{Class: serve.ClassKHop, V: v, K: 2}
			if len(f) > 2 {
				k, err := strconv.Atoi(f[2])
				if err != nil {
					return "", err
				}
				q.K = k
			}
		case "topk":
			q = serve.Query{Class: serve.ClassTopK, K: 8}
			if len(f) > 1 {
				k, err := strconv.Atoi(f[1])
				if err != nil {
					return "", err
				}
				q.K = k
			}
		default:
			return "", fmt.Errorf("unknown command %q", f[0])
		}
		res := srv.Do(q)
		if res.Err != nil {
			return "", res.Err
		}
		switch q.Class {
		case serve.ClassDegree, serve.ClassKHop:
			return strconv.FormatInt(res.Value, 10), nil
		default:
			return fmt.Sprint(res.Verts), nil
		}
	}
}

// frontendWireLoop measures closed-loop pipelined throughput: conns
// clients each keep frontendPipeline requests outstanding until total
// logical queries complete. batch > 1 groups the point stream into
// OpBatch frames of that many reads (the wire protocol's bulk idiom).
func frontendWireLoop(addr string, class wire.Class, total, batch, nVert int, mix func(i, nVert int) wire.Request) (FrontendThroughput, error) {
	out := FrontendThroughput{Protocol: "wire", Conns: frontendConns, Queries: total}
	if batch > 1 {
		out.Protocol, out.Batch = "wire-batch", batch
	}
	clients := make([]*wire.Client, frontendConns)
	for i := range clients {
		c, err := wire.Dial(addr, wire.ClientConfig{Class: class, Tenant: uint32(i)})
		if err != nil {
			for _, cc := range clients[:i] {
				cc.Close()
			}
			return out, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	per := total / frontendConns
	errs := make([]error, frontendConns)
	var wg sync.WaitGroup
	t0 := time.Now()
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *wire.Client) {
			defer wg.Done()
			var mu sync.Mutex
			fail := func(err error) {
				mu.Lock()
				if errs[ci] == nil {
					errs[ci] = err
				}
				mu.Unlock()
			}
			// sem caps outstanding requests; the callback's receive never
			// blocks because the submitter deposited before submitting.
			sem := make(chan struct{}, frontendPipeline)
			var cwg sync.WaitGroup
			base := ci * per
			for i := 0; i < per; {
				var req wire.Request
				if batch > 1 {
					n := min(batch, per-i)
					pts := make([]wire.Point, n)
					for j := range pts {
						r := mix(base+i+j, nVert)
						pts[j] = wire.Point{Op: r.Op, V: r.V}
					}
					req = wire.Request{Op: wire.OpBatch, Points: pts}
					i += n
				} else {
					req = mix(base+i, nVert)
					i++
				}
				sem <- struct{}{}
				cwg.Add(1)
				if err := c.SubmitFunc(&req, func(r *wire.Response, err error) {
					<-sem
					if err == nil && r.Err != nil {
						err = r.Err
					}
					if err != nil {
						fail(err)
					}
					cwg.Done()
				}); err != nil {
					<-sem
					cwg.Done()
					fail(err)
					break
				}
			}
			cwg.Wait()
		}(ci, c)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	out.WallNs = wall.Nanoseconds()
	if s := wall.Seconds(); s > 0 {
		out.QPS = float64(total) / s
	}
	return out, nil
}

// frontendLineLoop measures the legacy line protocol's closed-loop
// throughput: conns synchronous connections, one command per round trip.
func frontendLineLoop(addr string, total, nVert int, mix func(i, nVert int) string) (FrontendThroughput, error) {
	out := FrontendThroughput{Protocol: "line", Conns: frontendConns, Queries: total}
	conns := make([]net.Conn, frontendConns)
	for i := range conns {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			for _, cc := range conns[:i] {
				cc.Close()
			}
			return out, err
		}
		conns[i] = nc
	}
	defer func() {
		for _, nc := range conns {
			nc.Close()
		}
	}()
	per := total / frontendConns
	errs := make([]error, frontendConns)
	var wg sync.WaitGroup
	t0 := time.Now()
	for ci, nc := range conns {
		wg.Add(1)
		go func(ci int, nc net.Conn) {
			defer wg.Done()
			br := bufio.NewReaderSize(nc, 1<<20)
			bw := bufio.NewWriterSize(nc, 64<<10)
			base := ci * per
			for i := 0; i < per; i++ {
				if _, err := bw.WriteString(mix(base+i, nVert) + "\n"); err != nil {
					errs[ci] = err
					return
				}
				if err := bw.Flush(); err != nil {
					errs[ci] = err
					return
				}
				reply, err := br.ReadString('\n')
				if err != nil {
					errs[ci] = err
					return
				}
				if strings.HasPrefix(reply, "error:") {
					errs[ci] = fmt.Errorf("line reply: %s", strings.TrimSpace(reply))
					return
				}
			}
		}(ci, nc)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	out.WallNs = wall.Nanoseconds()
	if s := wall.Seconds(); s > 0 {
		out.QPS = float64(total) / s
	}
	return out, nil
}

// frontendLoad describes one class's open-loop arrival schedule.
type frontendLoad struct {
	class wire.Class
	name  string
	rate  float64 // aggregate target QPS across conns
	conns int
	slo   time.Duration
	mix   func(i, nVert int) wire.Request
}

// frontendAgg accumulates one load's outcome across its generators.
type frontendAgg struct {
	issued, completed, shed atomic.Int64
	mu                      sync.Mutex
	lats                    []time.Duration
	err                     error
}

func (a *frontendAgg) fail(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
}

// frontendOpenClient fires one connection's share of an open-loop
// schedule: request n goes out at start+n*interval regardless of prior
// completions (late firings catch up immediately), and each latency is
// measured from that scheduled instant. The schedule runs for
// frontendOpenWarmup + window, but requests scheduled inside the warmup
// are fired and then discarded — they exist to bring connections,
// buffers and the QoS scheduler's service-time estimates to steady
// state before anything is counted. Overload answers during the
// measured window count as sheds; any other failure aborts the run.
func frontendOpenClient(c *wire.Client, ld frontendLoad, seq int, start time.Time, window time.Duration, nVert int, agg *frontendAgg) {
	rate := ld.rate / float64(ld.conns)
	if rate <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	horizon := frontendOpenWarmup + window
	base := seq * 1000003 // de-correlate vertex streams across generators
	var wg sync.WaitGroup
	// Pacing fires by due-index against real time rather than sleeping
	// once per request: a per-request sleep overshoots by tens of
	// microseconds (timer granularity), which at short intervals
	// accumulates into schedule lag that would be misread as latency.
	// Here every wakeup fires the whole batch that has come due, so
	// firing error stays bounded by a single sleep's overshoot.
	n := 0
fire:
	for {
		offset := time.Duration(n) * interval
		if offset >= horizon {
			break
		}
		if d := time.Until(start.Add(offset)); d > 0 {
			time.Sleep(d)
		}
		due := int(time.Since(start)/interval) + 1
		for ; n < due; n++ {
			offset = time.Duration(n) * interval
			if offset >= horizon {
				break fire
			}
			sched := start.Add(offset)
			measured := offset >= frontendOpenWarmup
			req := ld.mix(base+n, nVert)
			if measured {
				agg.issued.Add(1)
			}
			wg.Add(1)
			err := c.SubmitFunc(&req, func(r *wire.Response, err error) {
				defer wg.Done()
				lat := time.Since(sched)
				switch {
				case err != nil:
					agg.fail(err)
				case r.Err != nil:
					if r.Err.Code == wire.CodeOverloaded {
						if measured {
							agg.shed.Add(1)
						}
					} else {
						agg.fail(r.Err)
					}
				default:
					if measured {
						agg.completed.Add(1)
						agg.mu.Lock()
						agg.lats = append(agg.lats, lat)
						agg.mu.Unlock()
					}
				}
			})
			if err != nil {
				wg.Done()
				agg.fail(err)
				break fire
			}
		}
	}
	wg.Wait()
}

// frontendOpenLoop runs every load's arrival schedule simultaneously
// against the wire server and reduces each into its class row.
func frontendOpenLoop(addr string, loads []frontendLoad, window time.Duration, nVert int) ([]FrontendClassRow, error) {
	aggs := make([]*frontendAgg, len(loads))
	clients := make([][]*wire.Client, len(loads))
	closeAll := func() {
		for _, cs := range clients {
			for _, c := range cs {
				c.Close()
			}
		}
	}
	for li, ld := range loads {
		aggs[li] = &frontendAgg{}
		// Preallocate the latency slice for the expected completions, so
		// growth reallocations under agg.mu never stall a callback on the
		// hot path mid-window.
		aggs[li].lats = make([]time.Duration, 0, int(ld.rate*window.Seconds())+64)
		clients[li] = make([]*wire.Client, ld.conns)
		for i := range clients[li] {
			c, err := wire.Dial(addr, wire.ClientConfig{Class: ld.class, Tenant: uint32(i)})
			if err != nil {
				closeAll()
				return nil, err
			}
			clients[li][i] = c
		}
	}
	defer closeAll()
	// One shared epoch a little in the future, so every generator's
	// schedule starts aligned rather than skewed by goroutine spin-up.
	start := time.Now().Add(10 * time.Millisecond)
	var wg sync.WaitGroup
	for li, ld := range loads {
		for i, c := range clients[li] {
			wg.Add(1)
			go func(c *wire.Client, ld frontendLoad, seq int, agg *frontendAgg) {
				defer wg.Done()
				frontendOpenClient(c, ld, seq, start, window, nVert, agg)
			}(c, ld, li*64+i, aggs[li])
		}
	}
	wg.Wait()
	rows := make([]FrontendClassRow, len(loads))
	for li, ld := range loads {
		a := aggs[li]
		if a.err != nil {
			return nil, fmt.Errorf("open loop %s: %w", ld.name, a.err)
		}
		slices.Sort(a.lats)
		q := func(p float64) int64 {
			if len(a.lats) == 0 {
				return 0
			}
			return a.lats[int(p*float64(len(a.lats)-1))].Nanoseconds()
		}
		row := FrontendClassRow{
			Class:     ld.name,
			TargetQPS: ld.rate,
			Issued:    a.issued.Load(),
			Completed: a.completed.Load(),
			Shed:      a.shed.Load(),
			P50Ns:     q(0.50),
			P99Ns:     q(0.99),
			P999Ns:    q(0.999),
			SLONs:     ld.slo.Nanoseconds(),
		}
		row.AchievedQPS = float64(row.Completed) / window.Seconds()
		row.WithinSLO = row.Completed > 0 && row.Shed == 0 && row.P999Ns <= row.SLONs
		rows[li] = row
	}
	return rows, nil
}

// startFrontendChurn turns edges over through the server's router in
// small paced insert+delete chunks for the duration of the
// measurements, so every frontend row is taken over live mixed ingest
// while the graph itself holds steady at loaded size +
// frontendChurnWindow. The budget bounds total inserted edges (the
// arena is sized for it — deletes tombstone rather than reclaim). The
// returned stop is idempotent and reports edges churned plus any
// ingest error.
func startFrontendChurn(srv *serve.Server, edges []graph.Edge) func() (int64, error) {
	var (
		done    atomic.Bool
		applied int64
		ingErr  error
		wg      sync.WaitGroup
		once    sync.Once
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		// queued holds churn copies inserted but not yet deleted; once it
		// exceeds the window, each chunk retires the oldest copies in the
		// same mixed batch, holding the live graph at loaded size + window.
		var queued []graph.Edge
		chunkSize, window, pause := churnShape(len(edges))
		for total := 0; !done.Load() && total < frontendChurnBudget; {
			off := total % len(edges)
			n := min(chunkSize, len(edges)-off)
			chunk := edges[off : off+n]
			ops := make([]graph.Op, 0, 2*n)
			for _, e := range chunk {
				ops = append(ops, graph.OpInsert(e.Src, e.Dst))
			}
			queued = append(queued, chunk...)
			if extra := len(queued) - window; extra > 0 {
				for _, e := range queued[:extra] {
					ops = append(ops, graph.OpDelete(e.Src, e.Dst))
				}
				queued = queued[extra:]
			}
			if _, err := srv.IngestOps(ops); err != nil {
				ingErr = err
				return
			}
			total += n
			applied = int64(total)
			time.Sleep(pause)
		}
	}()
	return func() (int64, error) {
		once.Do(func() {
			done.Store(true)
			wg.Wait()
		})
		return applied, ingErr
	}
}

// measureFrontend builds the serving stack once — the system under a
// serve.Server, the wire front end and the legacy line listener on
// loopback, churn ingest underneath — and measures the closed-loop
// protocol comparison, the open-loop SLO ladder, and the 2x-overload
// row against it.
func measureFrontend(name, graphName string, nVert int, edges []graph.Edge, o Options) (*FrontendDump, error) {
	out := &FrontendDump{
		System:           name,
		Graph:            graphName,
		Conns:            frontendConns,
		Window:           frontendWindow,
		Dispatchers:      frontendDispatchers,
		QueueDepth:       frontendQueueDepth,
		InteractiveSLONs: frontendInteractiveSLO.Nanoseconds(),
		AnalyticsSLONs:   frontendAnalyticsSLO.Nanoseconds(),
	}
	sys, _, err := buildSystem(name, nVert, len(edges)+frontendChurnBudget, o.Latency)
	if err != nil {
		return nil, err
	}
	if err := graph.Open(sys).Apply(graph.Inserts(edges)); err != nil {
		return nil, err
	}
	cfg := serve.Config{
		MaxStalenessEdges: int64(max(len(edges)/16, 256)),
		MaxStalenessAge:   -1,
		Workers:           serveWorkers,
		QueueDepth:        256,
		IngestShards:      serveShards,
		IngestBatch:       workload.AdaptiveBatchSize(len(edges)),
		Scope:             lockScope(name),
	}
	if g, ok := sys.(*dgap.Graph); ok {
		sinks, release, err := workload.DGAPSinks(g, serveShards)
		if err != nil {
			return nil, err
		}
		defer release()
		cfg.Sinks = sinks
	}
	srv, err := serve.New(sys, cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	ws := wire.NewServer(srv, wire.Config{
		Window: frontendWindow,
		QoS: wire.QoSConfig{
			Dispatchers: frontendDispatchers,
			QueueDepth:  frontendQueueDepth,
			QueueDepths: [wire.NumClasses]int{wire.ClassAnalytics: frontendAnalyticsDepth},
		},
	})
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go ws.Serve(wl)
	defer ws.Shutdown(2 * time.Second)
	ls := &wire.LineServer{NewHandler: func() wire.LineHandler { return frontendLineHandler(srv) }}
	ll, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go ls.Serve(ll)
	defer ls.Shutdown(2 * time.Second)
	wireAddr, lineAddr := wl.Addr().String(), ll.Addr().String()

	stop := startFrontendChurn(srv, edges)
	defer stop()

	// Closed-loop protocol comparison on the same logical point-read
	// stream, then the analytics capacity probe the ladder rates derive
	// from.
	lineT, err := frontendLineLoop(lineAddr, frontendPointQueries, nVert, frontendInteractiveLine)
	if err != nil {
		return nil, fmt.Errorf("line closed loop: %w", err)
	}
	wireT, err := frontendWireLoop(wireAddr, wire.ClassInteractive, frontendPointQueries, 1, nVert, frontendInteractiveReq)
	if err != nil {
		return nil, fmt.Errorf("wire closed loop: %w", err)
	}
	batchT, err := frontendWireLoop(wireAddr, wire.ClassInteractive, frontendPointQueries, frontendBatch, nVert, frontendInteractiveReq)
	if err != nil {
		return nil, fmt.Errorf("wire batch closed loop: %w", err)
	}
	anaT, err := frontendWireLoop(wireAddr, wire.ClassAnalytics, frontendScanQueries, 1, nVert, frontendAnalyticsReq)
	if err != nil {
		return nil, fmt.Errorf("analytics capacity probe: %w", err)
	}
	out.Throughput = []FrontendThroughput{lineT, wireT, batchT}
	if lineT.QPS > 0 {
		out.WireVsLine = max(wireT.QPS, batchT.QPS) / lineT.QPS
	}
	out.MaxInteractiveQPS = wireT.QPS
	out.MaxAnalyticsQPS = anaT.QPS

	// The open-loop rate ladder: both classes fire simultaneously at the
	// same fraction of their measured capacity; the highest rung a class
	// passes is its sustainable rate at the fixed SLO.
	for _, frac := range frontendLadder {
		loads := []frontendLoad{
			{class: wire.ClassInteractive, name: "interactive", rate: frac * out.MaxInteractiveQPS,
				conns: frontendConns, slo: frontendInteractiveSLO, mix: frontendInteractiveReq},
			{class: wire.ClassAnalytics, name: "analytics", rate: frac * out.MaxAnalyticsQPS,
				conns: frontendConns, slo: frontendAnalyticsSLO, mix: frontendAnalyticsReq},
		}
		rows, err := frontendOpenLoop(wireAddr, loads, frontendOpenWindow, nVert)
		if err != nil {
			return nil, fmt.Errorf("ladder %.2f: %w", frac, err)
		}
		out.Rows = append(out.Rows, FrontendRow{Mode: fmt.Sprintf("ladder-%.2f", frac), Classes: rows})
		for _, r := range rows {
			if !r.WithinSLO {
				continue
			}
			switch r.Class {
			case "interactive":
				out.SustainableInteractive = max(out.SustainableInteractive, r.AchievedQPS)
			case "analytics":
				out.SustainableAnalytics = max(out.SustainableAnalytics, r.AchievedQPS)
			}
		}
	}

	// The 2x-overload row: analytics arrives at twice the rate of the
	// ladder's bottom rung — twice what the system was asked to sustain
	// for it at SLO — while interactive holds the bottom rung's rate.
	// The base is the rung rate rather than the closed-loop analytics
	// ceiling on purpose: the ceiling is a whole-machine saturation
	// number, and on a small generator host an arrival schedule of
	// twice it spends the machine on ISSUING the flood, drowning the
	// interactive latency measurement in generator-side scheduling
	// noise before a single admission decision is exercised. For the
	// same reason the flood keeps the normal connection count and
	// doubles the per-connection rate instead of doubling conns: the
	// server's shed decision depends only on arrival rate, but every
	// extra generator (plus its client reader and flusher) is scheduler
	// load subtracted from the interactive measurement. Twice the rung
	// rate is still a genuine flood — far past the analytics weight
	// share — so the admission path sheds it, which is what the row is
	// for: weighted admission keeps interactive within its SLO while
	// analytics sheds.
	over := []frontendLoad{
		{class: wire.ClassInteractive, name: "interactive", rate: frontendLadder[0] * out.MaxInteractiveQPS,
			conns: frontendConns, slo: frontendInteractiveSLO, mix: frontendInteractiveReq},
		{class: wire.ClassAnalytics, name: "analytics", rate: 2 * frontendLadder[0] * out.MaxAnalyticsQPS,
			conns: frontendConns, slo: frontendAnalyticsSLO, mix: frontendAnalyticsReq},
	}
	rows, err := frontendOpenLoop(wireAddr, over, frontendOpenWindow, nVert)
	if err != nil {
		return nil, fmt.Errorf("overload: %w", err)
	}
	out.Rows = append(out.Rows, FrontendRow{Mode: "overload-2x", Classes: rows})

	churned, err := stop()
	if err != nil {
		return nil, fmt.Errorf("churn ingest: %w", err)
	}
	out.ChurnEdges = churned
	return out, nil
}

// FrontendJSON runs the wire front-end experiment — closed-loop wire vs
// line protocol throughput, the open-loop per-class SLO ladder, and the
// 2x-overload row, all on DGAP with churn ingest underneath — and merges
// the result into BENCH_serve.json's frontend section, preserving the
// serve rows already in the file.
func FrontendJSON(o Options, path string) error {
	o = o.defaults()
	spec := o.specs()[0]
	edges := dataset(spec, o)
	nVert := graphgen.MaxVertex(edges)
	fd, err := measureFrontend("DGAP", spec.Name, nVert, edges, o)
	if err != nil {
		return fmt.Errorf("frontend %s: %w", spec.Name, err)
	}
	var dump ServeDump
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &dump); err != nil {
			return fmt.Errorf("frontend: existing %s: %w", path, err)
		}
	}
	if dump.Scale == 0 {
		dump.Scale, dump.Seed, dump.Shards, dump.Workers = o.Scale, o.Seed, serveShards, serveWorkers
	}
	dump.Frontend = fd
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "frontend %s/%s: wire %.0f qps, batch %.0f qps, line %.0f qps (%.1fx); sustainable interactive %.0f qps, analytics %.0f qps; %d open-loop rows -> %s\n",
		fd.System, fd.Graph, fd.Throughput[1].QPS, fd.Throughput[2].QPS, fd.Throughput[0].QPS,
		fd.WireVsLine, fd.SustainableInteractive, fd.SustainableAnalytics, len(fd.Rows), path)
	return nil
}
