package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/obs"
	"dgap/internal/serve"
	"dgap/internal/workload"
)

// scaleShardCounts is the shard-count axis of the scaling curve: the
// same served churn workload over a 1-, 2- and 4-way graph.Cluster of
// DGAP partitions, next to the plain single-Store path as the
// no-composite baseline the 1-shard row must match within noise.
var scaleShardCounts = []int{1, 2, 4}

// scaleMaxRounds bounds one row's churn/query loop at tiny scales.
const scaleMaxRounds = 256

// scaleQueriesPerRound is the point-query batch issued after every
// ingested churn chunk.
const scaleQueriesPerRound = 32

// scaleKernelEvery is the round cadence of kernel-refresh queries.
const scaleKernelEvery = 4

// ScaleResult is one shard-count scaling row: routed mixed-churn ingest
// throughput (virtual makespan MEPS), served point-query latency and
// kernel refresh compute over the composite view, with churn underneath
// throughout.
type ScaleResult struct {
	Graph  string `json:"graph"`
	System string `json:"system"`
	// Mode is "store" for the plain single-Store baseline, "cluster"
	// for graph.Cluster rows (including the 1-shard composite).
	Mode            string  `json:"mode"`
	Shards          int     `json:"shards"`
	ChurnOps        int     `json:"churn_ops"`
	IngestVirtualNs int64   `json:"ingest_virtual_ns"`
	MEPS            float64 `json:"meps"`
	Queries         int     `json:"queries"`
	QueryP50Ns      int64   `json:"query_p50_ns"`
	QueryP99Ns      int64   `json:"query_p99_ns"`
	Refreshes       int     `json:"refreshes"`
	RefreshP50Ns    int64   `json:"kernel_refresh_p50_ns"`
	RefreshMeanNs   int64   `json:"kernel_refresh_mean_ns"`
	FinalEdges      int64   `json:"final_edges"`
}

// ScaleDump is the BENCH_scale.json schema.
type ScaleDump struct {
	Scale   float64       `json:"scale"`
	Seed    int64         `json:"seed"`
	Results []ScaleResult `json:"results"`
}

// ScaleJSON measures the shard-count scaling curves and writes
// BENCH_scale.json: per dataset, a plain-Store DGAP baseline plus a
// graph.Cluster of 1/2/4 DGAP partitions, all serving the same mixed
// mirrored churn with point queries and periodic kernel refreshes on
// top. Every row uses the identical shared-sink ingest path and
// vertex-granular router scope, so rows differ only in how the store
// is partitioned.
func ScaleJSON(o Options, path string) error {
	o = o.defaults()
	dump := ScaleDump{Scale: o.Scale, Seed: o.Seed}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		res, err := measureScale(nVert, edges, 1, false, o)
		if err != nil {
			return fmt.Errorf("scale %s/store: %w", spec.Name, err)
		}
		res.Graph = spec.Name
		dump.Results = append(dump.Results, res)
		for _, shards := range scaleShardCounts {
			res, err := measureScale(nVert, edges, shards, true, o)
			if err != nil {
				return fmt.Errorf("scale %s/cluster%d: %w", spec.Name, shards, err)
			}
			res.Graph = spec.Name
			dump.Results = append(dump.Results, res)
		}
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "wrote %d scaling rows to %s\n", len(dump.Results), path)
	scaleTable(o, dump.Results)
	return nil
}

// measureScale runs one row: preload the warm split, then serve rounds
// of {churn chunk, point-query batch, periodic kernel refresh} and
// report routed-ingest MEPS (virtual makespan), query p50/p99 and
// refresh compute quantiles.
func measureScale(nVert int, edges []graph.Edge, shards int, cluster bool, o Options) (ScaleResult, error) {
	out := ScaleResult{Mode: "store", Shards: shards}
	var sys graph.System
	if cluster {
		out.Mode = "cluster"
		members := make([]graph.System, shards)
		for i := range members {
			m, _, err := buildSystem("DGAP", nVert, len(edges), o.Latency)
			if err != nil {
				return out, err
			}
			members[i] = m
		}
		c, err := graph.NewCluster(members, nil)
		if err != nil {
			return out, err
		}
		sys = c
	} else {
		m, _, err := buildSystem("DGAP", nVert, len(edges), o.Latency)
		if err != nil {
			return out, err
		}
		sys = m
	}
	out.System = sys.Name()

	store := graph.Open(sys)
	warm, timed := workload.Split(edges)
	if err := store.Apply(graph.Inserts(warm)); err != nil {
		return out, err
	}
	churn := symmetricChurnOps(timed)
	opsPerRound := max(len(churn)/scaleMaxRounds, 512)

	cfg := serve.Config{
		MaxStalenessEdges: int64(opsPerRound),
		MaxStalenessAge:   -1,
		Workers:           1,
		IngestShards:      serveShards,
		IngestBatch:       workload.AdaptiveBatchSize(len(edges)),
		// Vertex-granular routing for every row — plain and composite —
		// so the virtual-time contention model is identical across the
		// shard-count axis and rows differ only in store partitioning.
		Scope:       workload.ScopeVertex,
		DeltaWindow: 2*opsPerRound + 1024,
	}
	srv, err := serve.New(sys, cfg)
	if err != nil {
		return out, err
	}
	defer srv.Close()

	// Prime the kernel maintainer outside the measurement.
	if res := srv.Do(serve.Query{Class: serve.ClassKernel}); res.Err != nil {
		return out, res.Err
	}

	var queries, computes obs.Hist
	var virtual time.Duration
	for round := 0; len(churn) >= opsPerRound && round < scaleMaxRounds; round++ {
		chunk := churn[:opsPerRound]
		churn = churn[opsPerRound:]
		ir, err := srv.IngestOps(chunk)
		if err != nil {
			return out, err
		}
		virtual += ir.Elapsed
		out.ChurnOps += len(chunk)

		for q := 0; q < scaleQueriesPerRound; q++ {
			i := round*scaleQueriesPerRound + q
			v := graph.V(uint32(i*2654435761) % uint32(nVert))
			var qu serve.Query
			switch {
			case i%4 == 3:
				qu = serve.Query{Class: serve.ClassKHop, V: v, K: 2}
			case i%2 == 0:
				qu = serve.Query{Class: serve.ClassDegree, V: v}
			default:
				qu = serve.Query{Class: serve.ClassNeighbors, V: v}
			}
			t0 := time.Now()
			if res := srv.Do(qu); res.Err != nil {
				return out, res.Err
			}
			queries.Observe(time.Since(t0))
			out.Queries++
		}

		if round%scaleKernelEvery == scaleKernelEvery-1 {
			res := srv.Do(serve.Query{Class: serve.ClassKernel})
			if res.Err != nil {
				return out, res.Err
			}
			computes.Observe(res.Compute)
			out.Refreshes++
		}
	}

	out.IngestVirtualNs = virtual.Nanoseconds()
	if virtual > 0 {
		out.MEPS = float64(out.ChurnOps) / virtual.Seconds() / 1e6
	}
	out.QueryP50Ns = queries.Quantile(0.50).Nanoseconds()
	out.QueryP99Ns = queries.Quantile(0.99).Nanoseconds()
	if out.Refreshes > 0 {
		out.RefreshP50Ns = computes.Quantile(0.50).Nanoseconds()
		out.RefreshMeanNs = computes.Mean().Nanoseconds()
	}
	v := store.View()
	out.FinalEdges = v.NumEdges()
	v.Release()
	return out, nil
}

func scaleTable(o Options, rows []ScaleResult) {
	fmt.Fprintf(o.Out, "\n%-14s %-8s %6s %10s %12s %12s %12s\n",
		"graph", "mode", "shards", "meps", "q_p50_us", "q_p99_us", "refresh_us")
	for _, r := range rows {
		fmt.Fprintf(o.Out, "%-14s %-8s %6d %10.3f %12.1f %12.1f %12.1f\n",
			r.Graph, r.Mode, r.Shards, r.MEPS,
			float64(r.QueryP50Ns)/1e3, float64(r.QueryP99Ns)/1e3,
			float64(r.RefreshP50Ns)/1e3)
	}
}
