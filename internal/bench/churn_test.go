package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestArtifactPath: -tiny runs must never write the committed artifact
// names — they divert to a *_tiny.json sibling.
func TestArtifactPath(t *testing.T) {
	if got := ArtifactPath("BENCH_churn.json", false); got != "BENCH_churn.json" {
		t.Errorf("full-scale path = %q", got)
	}
	if got := ArtifactPath("BENCH_churn.json", true); got != "BENCH_churn_tiny.json" {
		t.Errorf("tiny path = %q", got)
	}
	if got := ArtifactPath("BENCH_ingest.json", true); got != "BENCH_ingest_tiny.json" {
		t.Errorf("tiny path = %q", got)
	}
}

// TestChurnJSONSmoke runs the churn experiment at test scale and checks
// the acceptance shape of the dump: delete throughput present, DGAP
// compaction nonzero, and DGAP's post-churn space strictly below its
// no-compaction twin.
func TestChurnJSONSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	path := filepath.Join(t.TempDir(), "churn.json")
	if err := ChurnJSON(o, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump ChurnDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Results) == 0 {
		t.Fatal("no churn results")
	}
	sawDGAP, sawUnsupported := false, false
	for _, r := range dump.Results {
		if !r.Supported {
			sawUnsupported = true
			continue
		}
		if r.Deletes == 0 || r.DeleteMEPS <= 0 {
			t.Errorf("%s/%s: no delete throughput recorded: %+v", r.System, r.Graph, r)
		}
		if r.SpaceBytes <= 0 || r.AppendSpaceBytes <= 0 {
			t.Errorf("%s/%s: missing space accounting: %+v", r.System, r.Graph, r)
		}
		if r.System == "DGAP" {
			sawDGAP = true
			if r.PairsDropped == 0 || r.Compactions == 0 {
				t.Errorf("DGAP/%s: churn ran without compaction: %+v", r.Graph, r)
			}
			if r.SpaceBytes >= r.NoCompactSpaceBytes {
				t.Errorf("DGAP/%s: compacted space %d not below no-compaction space %d",
					r.Graph, r.SpaceBytes, r.NoCompactSpaceBytes)
			}
			if r.SplitVirtualNs == 0 || r.SplitChurnMEPS <= 0 {
				t.Errorf("DGAP/%s: missing split-dispatch comparison: %+v", r.Graph, r)
			}
		}
	}
	if !sawDGAP {
		t.Error("no DGAP churn row")
	}
	if !sawUnsupported {
		t.Error("no supported=false row documenting a rejecting system (LLAMA)")
	}
}
