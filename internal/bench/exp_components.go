package bench

import (
	"fmt"
	"time"

	"dgap/internal/dgap"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
	"dgap/internal/workload"
)

// Tab5 reproduces Table 5: the component ablation. Four DGAP variants
// insert the three small graphs end-to-end: full DGAP; without the
// per-section edge log ("No EL", blocked inserts shift neighbours);
// additionally replacing the per-thread undo log with PMDK-style
// transactions ("No EL&UL"); additionally keeping the vertex array and
// density tree on PM ("No EL&UL&DP").
func Tab5(o Options) error {
	o = o.defaults()
	if len(o.Datasets) == 0 {
		o.Datasets = []string{"small"}
	}
	variants := []struct {
		name string
		mod  func(*dgap.Config)
	}{
		{"DGAP", func(*dgap.Config) {}},
		{"No EL", func(c *dgap.Config) { c.EnableEdgeLog = false }},
		{"No EL&UL", func(c *dgap.Config) { c.EnableEdgeLog = false; c.UseUndoLog = false }},
		{"No EL&UL&DP", func(c *dgap.Config) {
			c.EnableEdgeLog = false
			c.UseUndoLog = false
			c.MetadataInDRAM = false
		}},
	}
	header := []string{"graph"}
	for _, v := range variants {
		header = append(header, v.name)
	}
	t := &table{header: header}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		row := []string{spec.Name}
		for _, v := range variants {
			cfg := dgap.DefaultConfig(nVert, int64(len(edges)))
			v.mod(&cfg)
			a := arenaFor(len(edges), o.Latency)
			g, err := dgap.New(a, cfg)
			if err != nil {
				return err
			}
			t0 := time.Now()
			for _, e := range edges {
				if err := g.InsertEdge(e.Src, e.Dst); err != nil {
					return err
				}
			}
			row = append(row, secs(time.Since(t0)))
		}
		t.add(row...)
	}
	t.write(o.Out)
	fmt.Fprintln(o.Out, "paper shape: edge log is the largest factor (~4.5x without it); undo log adds ~13%; PM-resident metadata roughly doubles again")
	return nil
}

// Fig9 reproduces Figure 9: the effect of the per-section edge log size
// (64 B .. 16 KB) on total log footprint, log utilization, and insert
// time, on Orkut and LiveJournal.
func Fig9(o Options) error {
	o = o.defaults()
	if len(o.Datasets) == 0 {
		o.Datasets = []string{"orkut", "livejournal"}
	}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		fmt.Fprintf(o.Out, "\n-- %s --\n", spec.Name)
		t := &table{header: []string{"ELOG_SZ", "total log MB", "utilization %", "insert time (s)"}}
		for sz := 64; sz <= 16384; sz *= 2 {
			// A deliberately tight initial estimate keeps the array
			// dense, so blocked inserts (the case the edge log absorbs)
			// occur at the rate the paper's full-size runs see.
			cfg := dgap.DefaultConfig(nVert, int64(len(edges))/3)
			cfg.ELogSize = sz
			a := arenaFor(len(edges)*2, o.Latency)
			g, err := dgap.New(a, cfg)
			if err != nil {
				return err
			}
			t0 := time.Now()
			for _, e := range edges {
				if err := g.InsertEdge(e.Src, e.Dst); err != nil {
					return err
				}
			}
			elapsed := time.Since(t0)
			logMB, utilization := g.ELogUsage()
			t.add(fmt.Sprintf("%d", sz), f2(logMB), f2(utilization*100), secs(elapsed))
		}
		t.write(o.Out)
	}
	fmt.Fprintln(o.Out, "paper shape: bigger logs cut insert time with diminishing returns past 2048 B while utilization falls (80%->6%)")
	return nil
}

// Recovery reproduces the §4.4 recovery evaluation: time of a normal
// reboot (graceful-shutdown dump reload) versus crash recovery (full
// image scan), per dataset.
func Recovery(o Options) error {
	o = o.defaults()
	t := &table{header: []string{"graph", "edges", "normal reboot (s)", "crash recovery (s)"}}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		cfg := dgap.DefaultConfig(nVert, int64(len(edges)))

		build := func() (*dgap.Graph, *pmem.Arena, error) {
			a := arenaFor(len(edges), o.Latency)
			g, err := dgap.New(a, cfg)
			if err != nil {
				return nil, nil, err
			}
			if _, err := workload.InsertSerial(g, edges); err != nil {
				return nil, nil, err
			}
			return g, a, nil
		}

		// Normal path: graceful shutdown, power cycle, reopen.
		g, a, err := build()
		if err != nil {
			return err
		}
		if err := g.Close(); err != nil {
			return err
		}
		a2 := a.Crash()
		t0 := time.Now()
		if _, err := dgap.Open(a2, cfg); err != nil {
			return err
		}
		normal := time.Since(t0)

		// Crash path: power cut mid-flight, recover by scanning.
		g, a, err = build()
		if err != nil {
			return err
		}
		_ = g
		a3 := a.Crash()
		t0 = time.Now()
		if _, err := dgap.Open(a3, cfg); err != nil {
			return err
		}
		crash := time.Since(t0)

		t.add(spec.Name, fmt.Sprintf("%d", len(edges)), secs(normal), secs(crash))
	}
	t.write(o.Out)
	fmt.Fprintln(o.Out, "paper shape: normal reboot near-constant (~1s on largest); crash recovery scales with graph size (<1s small, ~4s+ large)")
	return nil
}
