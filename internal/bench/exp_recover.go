package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/serve"
	"dgap/internal/workload"
)

// Recovery-experiment shape. The churn stream drives the serving stack's
// IngestOps path; query batches measure point-query throughput with the
// same methodology before the crash (on a twin stack) and after the
// reopen, so "full QPS" has a like-for-like baseline.
const (
	recoverChunk      = 256 // ops per IngestOps call while driving to the crash
	recoverBatch      = 256 // queries per throughput sample
	recoverSteadyFrac = 0.7 // a sample at this fraction of PreQPS counts as recovered
	recoverMaxRounds  = 40  // post-reopen sample rounds before giving up
	recoverAttempts   = 3   // churn re-shapes tried until a point fires
)

// recoverCrash is the injected-crash panic payload.
type recoverCrash struct{ point string }

// RecoverResult is one crash point's restart measurement: where the
// stack was killed, how the backend reattached, and the two
// recovery-time metrics — power-on to first answered query, and
// power-on to a query-throughput sample back at PreQPS.
type RecoverResult struct {
	Point     string `json:"point"`
	CrashSeed int64  `json:"crash_seed"`
	// Crashed is false when the point never fired over any attempted
	// churn shape (possible at -tiny scale); the recovery fields are
	// then absent-as-zero.
	Crashed  bool  `json:"crashed"`
	AckedOps int64 `json:"acked_ops"`

	Graceful           bool  `json:"graceful"`
	ReplayedOps        int64 `json:"replayed_ops"`
	DroppedTorn        int64 `json:"dropped_torn"`
	UndoRangesReplayed int64 `json:"undo_ranges_replayed"`

	AttachNs     int64   `json:"attach_ns"`
	FirstQueryNs int64   `json:"first_query_ns"`
	FullQPSNs    int64   `json:"full_qps_ns"`
	PostQPS      float64 `json:"post_qps"`
	// ReachedSteady is false when no post-reopen sample hit the steady
	// fraction within the round budget; FullQPSNs then covers the last
	// sample taken.
	ReachedSteady bool `json:"reached_steady"`
}

// RecoverDump is the top-level BENCH_recover.json document.
type RecoverDump struct {
	Scale         float64         `json:"scale"`
	Seed          int64           `json:"seed"`
	CrashSeedBase int64           `json:"crash_seed_base"`
	Graph         string          `json:"graph"`
	ChurnOps      int             `json:"churn_ops"`
	PreQPS        float64         `json:"pre_qps"`
	Results       []RecoverResult `json:"results"`
}

// recoverConfig undersizes DGAP relative to the stream the same way the
// crash-sweep tests do, so every structural path — merges, window
// rebalances with tombstone compaction, full restructures — runs while
// the stream is driven, and therefore every crash point can fire.
func recoverConfig(nVert int) dgap.Config {
	cfg := dgap.DefaultConfig(nVert, 64)
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	return cfg
}

func recoverServeConfig() serve.Config {
	return serve.Config{
		MaxStalenessEdges: 1024,
		MaxStalenessAge:   -1,
		Workers:           serveWorkers,
		QueueDepth:        256,
		IngestShards:      serveShards,
	}
}

// armAtBench mirrors the crash-sweep arming: hot points (every apply
// group, every merge) pass a few firings first so the image holds real
// history; rare structural points crash on the first.
func armAtBench(point string) int {
	switch point {
	case "compact:rewrite", "restructure:before-publish", "restructure:after-publish":
		return 1
	default:
		return 4
	}
}

// recoverQuery is the i-th query of a throughput sample: alternating
// degree and neighbor-list lookups over deterministically scattered
// vertices — the cheap point classes whose throughput a restart
// actually interrupts.
func recoverQuery(i, nVert int) serve.Query {
	v := graph.V(uint32(i*2654435761) % uint32(nVert))
	if i%2 == 0 {
		return serve.Query{Class: serve.ClassDegree, V: v}
	}
	return serve.Query{Class: serve.ClassNeighbors, V: v}
}

// queryBatchQPS pushes one fixed-size query batch through the server
// from serveWorkers goroutines and returns its completed-queries/sec.
func queryBatchQPS(srv *serve.Server, nVert int) (float64, error) {
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	t0 := time.Now()
	for w := 0; w < serveWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= recoverBatch {
					return
				}
				if res := srv.Do(recoverQuery(int(i), nVert)); res.Err != nil {
					mu.Lock()
					errs = append(errs, res.Err)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return 0, errs[0]
	}
	secs := time.Since(t0).Seconds()
	if secs <= 0 {
		return 0, nil
	}
	return recoverBatch / secs, nil
}

// ingestChunks streams ops through srv.IngestOps chunk by chunk. The
// sink mirror (if non-nil) receives each acknowledged chunk. When a
// hook panic fires, the in-flight chunk and true are returned.
func ingestChunks(srv *serve.Server, oracle *graph.Oracle, ops []graph.Op) (inflight []graph.Op, crashed bool, err error) {
	for i := 0; i < len(ops); i += recoverChunk {
		end := i + recoverChunk
		if end > len(ops) {
			end = len(ops)
		}
		chunk := ops[i:end]
		var ingestErr error
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(recoverCrash); ok {
						crashed = true
						return
					}
					panic(r)
				}
			}()
			_, ingestErr = srv.IngestOps(chunk)
		}()
		if crashed {
			return chunk, true, nil
		}
		if ingestErr != nil {
			return nil, false, ingestErr
		}
		if oracle != nil {
			if err := oracle.Apply(chunk); err != nil {
				return nil, false, fmt.Errorf("oracle rejected acknowledged chunk: %w", err)
			}
		}
	}
	return nil, false, nil
}

// churnShapes returns the op streams attempted per crash point: the
// same edges re-shaped with successively smaller churn windows, which
// shifts when deletes (and so tombstone pressure and compaction) start
// relative to array growth.
func churnShapes(edges []graph.Edge) [][]graph.Op {
	shapes := make([][]graph.Op, 0, recoverAttempts)
	w := max(len(edges)/2, 256)
	for i := 0; i < recoverAttempts; i++ {
		shapes = append(shapes, workload.ChurnOps(edges, w))
		w = max(w/4, 64)
	}
	return shapes
}

// measureBaselineQPS builds a twin of the crash stack — same graph
// shape, same warm stream — and measures steady point-query throughput
// with churn chunks interleaved between samples. It runs on a twin
// because queries pin snapshot leases, and a pinned lease would gate
// tombstone compaction on the stack being crashed (compact:rewrite
// could then never fire).
func measureBaselineQPS(nVert int, ops []graph.Op, warmN int, o Options) (float64, error) {
	g, err := dgap.New(arenaFor(len(ops), o.Latency), recoverConfig(nVert))
	if err != nil {
		return 0, err
	}
	srv, err := serve.New(g, recoverServeConfig())
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	if _, _, err := ingestChunks(srv, nil, ops[:warmN]); err != nil {
		return 0, err
	}
	// One discarded warmup sample, then the average of a few, each with
	// a churn chunk applied in between so leases refresh as they would
	// in steady serving.
	if _, err := queryBatchQPS(srv, nVert); err != nil {
		return 0, err
	}
	rest := ops[warmN:]
	sum, n := 0.0, 0
	for i := 0; i < 4; i++ {
		if len(rest) > 0 {
			adv := min(recoverChunk, len(rest))
			if _, _, err := ingestChunks(srv, nil, rest[:adv]); err != nil {
				return 0, err
			}
			rest = rest[adv:]
		}
		qps, err := queryBatchQPS(srv, nVert)
		if err != nil {
			return 0, err
		}
		sum += qps
		n++
	}
	return sum / float64(n), nil
}

// measureRecoverPoint kills the serving stack at one crash point while
// a churn stream drives it, chaos-crashes the arena, and measures the
// restart: reattach, first answered query, and throughput back at the
// baseline. The pre-crash stack runs no queries (see measureBaselineQPS
// for why), so the crash lands mid-churn with every hook reachable.
func measureRecoverPoint(point string, nVert int, shapes [][]graph.Op, freshOps []graph.Op, preQPS float64, chaosSeed int64, o Options) (RecoverResult, error) {
	res := RecoverResult{Point: point, CrashSeed: chaosSeed}
	for _, ops := range shapes {
		warmN := len(ops) / 8
		cfg := recoverConfig(nVert)
		g, err := dgap.New(arenaFor(len(ops), o.Latency), cfg)
		if err != nil {
			return res, err
		}
		srv, err := serve.New(g, recoverServeConfig())
		if err != nil {
			return res, err
		}
		oracle := graph.NewOracle()
		if _, _, err := ingestChunks(srv, oracle, ops[:warmN]); err != nil {
			return res, err
		}
		arm, fired := armAtBench(point), 0
		g.SetCrashHook(func(p string) {
			if p == point {
				fired++
				if fired == arm {
					panic(recoverCrash{p})
				}
			}
		})
		inflight, crashed, err := ingestChunks(srv, oracle, ops[warmN:])
		if err != nil {
			return res, err
		}
		if !crashed {
			srv.Close() // clean instance; this shape never reached the point
			continue
		}
		res.Crashed = true
		res.AckedOps = oracle.Ops()
		// Abandon the crashed stack: its shutdown must refuse (poisoned
		// instance), never certify a clean image.
		if err := srv.Close(); !errors.Is(err, dgap.ErrPoisoned) {
			return res, fmt.Errorf("crashed stack Close = %v, want dgap.ErrPoisoned", err)
		}

		// Materialize the chaotic power cut first (simulation machinery —
		// copying the arena image is not recovery work), then measure:
		// everything from power-on counts toward recovery time.
		a2 := g.Arena().ChaosCrash(chaosSeed)
		t0 := time.Now()
		g2, err := dgap.Open(a2, cfg)
		if err != nil {
			return res, fmt.Errorf("crashseed=%d: reopen after crash at %s: %w", chaosSeed, point, err)
		}
		srv2, rs, err := serve.Reopen(g2, recoverServeConfig())
		if err != nil {
			return res, fmt.Errorf("crashseed=%d: serve.Reopen after crash at %s: %w", chaosSeed, point, err)
		}
		defer srv2.Close()
		if first := srv2.Do(recoverQuery(0, nVert)); first.Err != nil {
			return res, fmt.Errorf("crashseed=%d: first query after reopen: %w", chaosSeed, first.Err)
		}
		res.FirstQueryNs = time.Since(t0).Nanoseconds()
		res.Graceful = rs.Graceful
		res.ReplayedOps = rs.ReplayedOps
		res.DroppedTorn = rs.DroppedTorn
		res.UndoRangesReplayed = rs.UndoRangesReplayed
		res.AttachNs = rs.AttachTime.Nanoseconds()

		// Correctness gate before throughput: the served view must hold
		// the acked stream within the in-flight multiset envelope.
		l := srv2.Acquire()
		verr := oracle.CheckMultiset(l.View, inflight)
		l.Release()
		if verr != nil {
			return res, fmt.Errorf("crashseed=%d: view after crash at %s: %w", chaosSeed, point, verr)
		}

		// Ramp back: fresh insert chunks interleaved with query samples,
		// exactly the baseline methodology, until a sample reaches the
		// steady fraction of PreQPS.
		fresh := freshOps
		for round := 0; round < recoverMaxRounds; round++ {
			if len(fresh) == 0 {
				fresh = freshOps
			}
			adv := min(recoverChunk, len(fresh))
			if _, _, err := ingestChunks(srv2, nil, fresh[:adv]); err != nil {
				return res, err
			}
			fresh = fresh[adv:]
			qps, err := queryBatchQPS(srv2, nVert)
			if err != nil {
				return res, err
			}
			res.PostQPS = qps
			res.FullQPSNs = time.Since(t0).Nanoseconds()
			if qps >= recoverSteadyFrac*preQPS {
				res.ReachedSteady = true
				break
			}
		}
		return res, nil
	}
	return res, nil // Crashed=false: no shape reached the point
}

// RecoverJSON runs the crash-recovery experiment — kill the serving
// stack mid-churn at every injected crash point, chaos-crash the arena,
// reopen, and measure restart-to-first-query and restart-to-full-QPS —
// and writes BENCH_recover.json.
func RecoverJSON(o Options, path string) error {
	o = o.defaults()
	spec := o.specs()[0]
	edges := dataset(spec, o)
	nVert := graphgen.MaxVertex(edges)
	shapes := churnShapes(edges)
	freshOps := graph.Inserts(graphgen.Uniform(nVert, 4, o.Seed+999))

	warmN := len(shapes[0]) / 8
	preQPS, err := measureBaselineQPS(nVert, shapes[0], warmN, o)
	if err != nil {
		return fmt.Errorf("recover baseline on %s: %w", spec.Name, err)
	}
	dump := RecoverDump{
		Scale:         o.Scale,
		Seed:          o.Seed,
		CrashSeedBase: o.CrashSeed,
		Graph:         spec.Name,
		ChurnOps:      len(shapes[0]),
		PreQPS:        preQPS,
	}
	for i, point := range dgap.CrashPoints {
		res, err := measureRecoverPoint(point, nVert, shapes, freshOps, preQPS, o.CrashSeed+int64(i), o)
		if err != nil {
			return fmt.Errorf("recover %s at %s: %w", spec.Name, point, err)
		}
		dump.Results = append(dump.Results, res)
		state := "no-crash"
		if res.Crashed {
			state = fmt.Sprintf("first-query %.2fms full-qps %.2fms (attach %.2fms, replayed %d, torn %d)",
				float64(res.FirstQueryNs)/1e6, float64(res.FullQPSNs)/1e6,
				float64(res.AttachNs)/1e6, res.ReplayedOps, res.DroppedTorn)
		}
		fmt.Fprintf(o.Out, "recover %-26s %s\n", point, state)
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "wrote %d crash-point recovery timings to %s\n", len(dump.Results), path)
	return nil
}
