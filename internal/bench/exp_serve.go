package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/obs"
	"dgap/internal/serve"
	"dgap/internal/workload"
)

// Serve-experiment shape: router shards and query workers match the
// ingest experiment's mid-scale point; the staleness bound is a few
// router batches so lease refreshes demonstrably happen mid-stream.
const (
	serveShards  = 4
	serveWorkers = 4
)

// serveRatios are the read:write mixes the experiment sweeps, expressed
// as queries issued per 1000 edges applied. Writes are single edges and
// queries are whole operations (a k-hop expansion, a top-k scan), so
// even the "heavy" mix is far below 1:1 in op count while being
// read-dominated in work.
var serveRatios = []struct {
	Label   string
	PerKilo int
}{
	{"1:100", 10},
	{"1:10", 100},
}

// ServeClassStats is one query class's latency summary in the dump.
// The latency quantiles cover submit-to-completion (queue wait
// included); the compute quantiles cover only the analytics kernel's
// own measured duration and stay zero for the point classes that run
// none (degree, neighbors).
type ServeClassStats struct {
	Class        string  `json:"class"`
	Count        int64   `json:"count"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	P999Ns       int64   `json:"p999_ns"`
	MaxNs        int64   `json:"max_ns"`
	QPS          float64 `json:"qps"`
	ComputeP50Ns int64   `json:"compute_p50_ns,omitempty"`
	ComputeP99Ns int64   `json:"compute_p99_ns,omitempty"`
}

// ServeResult is one mixed read/write measurement: one system serving
// one dataset at one read:write ratio, with ingest streaming through
// the router while the query classes run against snapshot leases.
// QueriesDuringIngest, LeaseGenerations and the Min/MaxSeenEdges spread
// are the concurrency evidence: completions landing inside the ingest
// window, the staleness bound refreshing leases mid-stream, and
// successive generations observing the edge count grow.
type ServeResult struct {
	System              string            `json:"system"`
	Graph               string            `json:"graph"`
	Ratio               string            `json:"ratio"`
	QueriesPerKiloEdge  int               `json:"queries_per_kilo_edge"`
	Edges               int               `json:"edges"`
	IngestWallNs        int64             `json:"ingest_wall_ns"`
	IngestVirtualNs     int64             `json:"ingest_virtual_ns"`
	MEPS                float64           `json:"meps"`
	Queries             int64             `json:"queries"`
	Rejected            int64             `json:"rejected"`
	QueueDepth          int               `json:"queue_depth"`
	InFlight            int64             `json:"in_flight"`
	ShedTotal           int64             `json:"shed_total"`
	QueriesDuringIngest int64             `json:"queries_during_ingest"`
	LeaseGenerations    uint64            `json:"lease_generations"`
	MinSeenEdges        int64             `json:"min_seen_edges"`
	MaxSeenEdges        int64             `json:"max_seen_edges"`
	Classes             []ServeClassStats `json:"classes"`
}

// RefreshResult is one kernel-refresh measurement: churn streaming
// through one system's serving stack with a ClassKernel query paced
// every OpsPerRefresh ops, in one of two modes — "full" (the
// NoIncremental baseline: every refresh recomputes the fixed-iteration
// kernel) or "incremental" (the maintained vector advanced by each
// generation's journal delta). The compute quantiles are the refresh
// latency curve; across rows they trace cost against
// ops-since-last-generation (the staleness the caller tolerated),
// which is the staleness-vs-cost trade the delta journal buys.
type RefreshResult struct {
	System        string `json:"system"`
	Graph         string `json:"graph"`
	Mode          string `json:"mode"`
	Ratio         string `json:"ratio"`
	OpsPerRefresh int    `json:"ops_per_refresh"`
	Refreshes     int    `json:"refreshes"`
	ChurnOps      int    `json:"churn_ops"`
	KernelFull    int64  `json:"kernel_full"`
	KernelIncr    int64  `json:"kernel_incremental"`
	DeltaOps      int64  `json:"delta_ops"`
	ComputeP50Ns  int64  `json:"compute_p50_ns"`
	ComputeP99Ns  int64  `json:"compute_p99_ns"`
	ComputeMeanNs int64  `json:"compute_mean_ns"`
	ComputeSumNs  int64  `json:"compute_total_ns"`
}

// ObsOverheadResult is the observability ablation row, built from two
// paired obs-on vs obs-off (Config.NoObs) measurements on fresh
// instances, both reduced on exact (unbucketed) quantiles over the raw
// latencies:
//
//   - The micro pair (OnP50Ns/OffP50Ns): sequential degree queries on
//     one worker with both staleness bounds disabled — no ingest, no
//     refresh, no queue contention. The baseline is a bare
//     submit/execute round trip of a few hundred nanoseconds, so the
//     on-minus-off difference isolates the per-query instrumentation
//     cost (CostP50Ns) cleanly, at the price of a worst-case ratio
//     (MicroOverheadP50) no real deployment sees.
//   - The served pair (ServeOnP50Ns/ServeOffP50Ns): the same point
//     queries issued by concurrent clients against the benchmark's
//     worker pool while ingest churns underneath (the mixed serve
//     rows' configuration) — the serving-tier p50 of record, queue
//     wait, lease refreshes and ingest contention included.
//
// OverheadP50, the headline regression, is CostP50Ns over
// ServeOffP50Ns: the cleanly-isolated absolute cost expressed against
// the point-query p50 a served client actually experiences. The direct
// served on/off ratio is deliberately not the headline — at microsecond
// latencies on a shared machine its run-to-run noise exceeds the
// tens-of-nanoseconds effect being measured.
type ObsOverheadResult struct {
	System    string `json:"system"`
	Graph     string `json:"graph"`
	Queries   int    `json:"queries"`
	Clients   int    `json:"serve_clients"`
	Reps      int    `json:"reps"`
	OnP50Ns   int64  `json:"obs_on_p50_ns"`
	OffP50Ns  int64  `json:"obs_off_p50_ns"`
	OnMeanNs  int64  `json:"obs_on_mean_ns"`
	OffMeanNs int64  `json:"obs_off_mean_ns"`
	// CostP50Ns is the micro pair's on-minus-off p50: the absolute
	// per-query cost of the observability hot path.
	CostP50Ns     int64 `json:"obs_cost_p50_ns"`
	ServeOnP50Ns  int64 `json:"serve_on_p50_ns"`
	ServeOffP50Ns int64 `json:"serve_off_p50_ns"`
	// OverheadP50 = CostP50Ns / ServeOffP50Ns — the p50 point-query
	// regression against the served baseline (target: < 2%).
	OverheadP50 float64 `json:"overhead_p50"`
	// MicroOverheadP50 = OnP50Ns/OffP50Ns - 1 — the worst-case ratio on
	// the bare round trip, reported for transparency.
	MicroOverheadP50 float64 `json:"micro_overhead_p50"`
}

// ServeDump is the top-level BENCH_serve.json document. Frontend is the
// wire front end's section (closed-loop protocol comparison, open-loop
// SLO ladder, overload row), filled by FrontendJSON and preserved by it
// across regenerations of the serve rows.
type ServeDump struct {
	Scale       float64             `json:"scale"`
	Seed        int64               `json:"seed"`
	Shards      int                 `json:"shards"`
	Workers     int                 `json:"workers"`
	Results     []ServeResult       `json:"results"`
	Refresh     []RefreshResult     `json:"refresh"`
	ObsOverhead []ObsOverheadResult `json:"obs_overhead"`
	Frontend    *FrontendDump       `json:"frontend,omitempty"`
}

// ServeJSON runs the mixed read/write serving experiment — every
// dynamic system, every dataset, at each read:write ratio — and writes
// BENCH_serve.json, the serving-tier counterpart of BENCH_kernels.json
// (reads) and BENCH_ingest.json (writes).
func ServeJSON(o Options, path string) error {
	o = o.defaults()
	dump := ServeDump{Scale: o.Scale, Seed: o.Seed, Shards: serveShards, Workers: serveWorkers}
	// Regenerating the serve rows must not drop the frontend section —
	// the two experiments fill disjoint parts of the same artifact.
	if data, err := os.ReadFile(path); err == nil {
		var prev ServeDump
		if json.Unmarshal(data, &prev) == nil {
			dump.Frontend = prev.Frontend
		}
	}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		for _, name := range SystemNames {
			for _, ratio := range serveRatios {
				res, err := measureServe(name, nVert, edges, ratio.PerKilo, o)
				if err != nil {
					return fmt.Errorf("serve %s/%s %s: %w", spec.Name, name, ratio.Label, err)
				}
				res.Graph = spec.Name
				res.Ratio = ratio.Label
				dump.Results = append(dump.Results, res)
			}
		}
		// Kernel-refresh rows: full vs incremental at the same read:write
		// mixes. The churn stream deletes, so systems without CapDelete
		// (LLAMA) sit these out — there is no steady-state refresh story
		// to measure on an append-only backend.
		for _, name := range SystemNames {
			for _, ratio := range serveRatios {
				per := 1000 / ratio.PerKilo
				for _, mode := range []string{"full", "incremental"} {
					rr, ok, err := measureRefresh(name, nVert, edges, mode, per, 0, ratio.Label, o)
					if err != nil {
						return fmt.Errorf("refresh %s/%s %s %s: %w", spec.Name, name, ratio.Label, mode, err)
					}
					if !ok {
						continue
					}
					rr.Graph = spec.Name
					dump.Refresh = append(dump.Refresh, rr)
				}
			}
		}
		// Observability ablation on DGAP: the obs-on vs obs-off point-query
		// p50, certifying the always-on instrumentation stays cheap.
		ov, err := measureObsOverhead("DGAP", nVert, edges, o)
		if err != nil {
			return fmt.Errorf("obs overhead %s: %w", spec.Name, err)
		}
		ov.Graph = spec.Name
		dump.ObsOverhead = append(dump.ObsOverhead, ov)
		// Staleness-vs-cost sweep on DGAP: widen the refresh window from
		// 1/64th to 1/4 of the churn stream and watch incremental refresh
		// cost grow with the delta while the full baseline stays flat at
		// graph size.
		for _, div := range []int{64, 16, 4} {
			for _, mode := range []string{"full", "incremental"} {
				rr, ok, err := measureRefresh("DGAP", nVert, edges, mode, 0, div, fmt.Sprintf("window/%d", div), o)
				if err != nil {
					return fmt.Errorf("refresh sweep %s window/%d %s: %w", spec.Name, div, mode, err)
				}
				if !ok {
					continue
				}
				rr.Graph = spec.Name
				dump.Refresh = append(dump.Refresh, rr)
			}
		}
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "wrote %d mixed read/write timings to %s\n", len(dump.Results), path)
	return nil
}

// serveQuery picks the i-th query of the paced stream: a rotation of
// the cheap point classes with a periodic top-k scan and a rarer full
// kernel refresh, over a deterministically scattered vertex.
func serveQuery(i, nVert int) serve.Query {
	v := graph.V(uint32(i*2654435761) % uint32(nVert))
	switch {
	case i%64 == 63:
		return serve.Query{Class: serve.ClassKernel}
	case i%16 == 15:
		return serve.Query{Class: serve.ClassTopK, K: 8}
	case i%4 == 3:
		return serve.Query{Class: serve.ClassKHop, V: v, K: 2}
	case i%2 == 0:
		return serve.Query{Class: serve.ClassDegree, V: v}
	default:
		return serve.Query{Class: serve.ClassNeighbors, V: v}
	}
}

// symmetricChurnOps turns a generator edge stream — which carries every
// logical edge in both directions, the adjacency symmetry the PageRank
// kernels (full and incremental) are written against — into a mirrored
// sliding-window churn stream: each logical edge (the Src < Dst
// orientation of its mirrored pair) is inserted in both directions, and
// once half the logical edges are live, each insert is followed by the
// mirrored delete of the logical edge that many positions earlier. The
// plain workload.ChurnOps stream would not do here: it slides over the
// directed stream, so a snapshot cut mid-window sees one direction of
// an edge without the other, and an asymmetric adjacency breaks the
// residual algebra incremental PageRank maintains.
func symmetricChurnOps(edges []graph.Edge) []graph.Op {
	var canon []graph.Edge
	for _, e := range edges {
		if e.Src < e.Dst {
			canon = append(canon, e)
		}
	}
	window := max(len(canon)/2, 1)
	ops := make([]graph.Op, 0, 4*len(canon))
	for i, e := range canon {
		ops = append(ops, graph.OpInsert(e.Src, e.Dst), graph.OpInsert(e.Dst, e.Src))
		if i >= window {
			d := canon[i-window]
			ops = append(ops, graph.OpDelete(d.Src, d.Dst), graph.OpDelete(d.Dst, d.Src))
		}
	}
	return ops
}

// refreshMaxRounds caps one refresh row's measurement loop so wide
// sweeps stay bounded; the churn stream is truncated to what the
// capped rounds actually applied and ChurnOps reports it.
const refreshMaxRounds = 512

// measureRefresh loads one fresh instance with the warmup stream, then
// alternates synchronously between one refresh window of churn ops and
// one ClassKernel query, recording each refresh's kernel path, delta
// size and compute time. opsPerRefresh fixes the window directly;
// windowDiv > 0 derives it as that fraction of the whole churn stream
// (the staleness sweep). mode "full" runs the NoIncremental baseline.
// Returns ok=false for systems that cannot delete: a churn stream has
// nothing to slide on an append-only backend.
func measureRefresh(name string, nVert int, edges []graph.Edge, mode string, opsPerRefresh, windowDiv int, label string, o Options) (RefreshResult, bool, error) {
	out := RefreshResult{System: name, Mode: mode, Ratio: label}
	sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, false, err
	}
	store := graph.Open(sys)
	if !store.Caps().Has(graph.CapDelete) {
		return out, false, nil
	}
	warm, timed := workload.Split(edges)
	if err := store.Apply(graph.Inserts(warm)); err != nil {
		return out, false, err
	}
	churn := symmetricChurnOps(timed)
	if windowDiv > 0 {
		opsPerRefresh = max(len(churn)/windowDiv, 1)
	}
	out.OpsPerRefresh = opsPerRefresh

	cfg := serve.Config{
		MaxStalenessEdges: int64(opsPerRefresh),
		MaxStalenessAge:   -1, // refresh cadence driven by applied ops only
		Workers:           1,
		IngestShards:      serveShards,
		IngestBatch:       workload.AdaptiveBatchSize(len(edges)),
		Scope:             lockScope(name),
		NoIncremental:     mode == "full",
		// Size the journal to the refresh window (wide sweeps exceed the
		// default), so the sweep measures delta cost rather than
		// overflow fallbacks.
		DeltaWindow: 2*opsPerRefresh + 1024,
	}
	if g, ok := sys.(*dgap.Graph); ok {
		sinks, release, err := workload.DGAPSinks(g, serveShards)
		if err != nil {
			return out, false, err
		}
		defer release()
		cfg.Sinks = sinks
	}
	srv, err := serve.New(sys, cfg)
	if err != nil {
		return out, false, err
	}
	defer srv.Close()

	// Prime outside the measurement: the first kernel query pays the
	// maintainer build (or baseline warmup), which is a one-time cost,
	// not a refresh.
	if res := srv.Do(serve.Query{Class: serve.ClassKernel}); res.Err != nil {
		return out, false, res.Err
	}

	// Refresh computes land in an obs.Hist rather than a sorted raw
	// slice: the row's quantiles come from the same log-bucketed
	// histogram every serving-tier latency already reports through, at
	// bucket-midpoint resolution (~±6%), with bounded memory however
	// long the sweep runs.
	var computes obs.Hist
	for len(churn) >= opsPerRefresh && out.Refreshes < refreshMaxRounds {
		chunk := churn[:opsPerRefresh]
		churn = churn[opsPerRefresh:]
		if _, err := srv.IngestOps(chunk); err != nil {
			return out, false, err
		}
		out.ChurnOps += len(chunk)
		res := srv.Do(serve.Query{Class: serve.ClassKernel})
		if res.Err != nil {
			return out, false, res.Err
		}
		out.Refreshes++
		out.DeltaOps += int64(res.DeltaOps)
		switch res.Kernel {
		case serve.KernelIncremental:
			out.KernelIncr++
		default:
			out.KernelFull++
		}
		computes.Observe(res.Compute)
		out.ComputeSumNs += res.Compute.Nanoseconds()
	}
	if s := computes.Snapshot(); s.Count > 0 {
		out.ComputeP50Ns = s.Quantile(0.50)
		out.ComputeP99Ns = s.Quantile(0.99)
		out.ComputeMeanNs = s.Mean()
	}
	return out, true, nil
}

// Ablation shape: obsOverheadQueries measured point queries per rep
// after an unmeasured warmup, obsOverheadReps reps per mode, each rep
// on fresh instances (Server.Close shuts the backend down). The served
// pair splits the same query count across obsServeClients concurrent
// client goroutines.
const (
	obsOverheadQueries = 4000
	obsOverheadWarmup  = 500
	obsOverheadReps    = 3
	obsServeClients    = serveWorkers
	// obsServeBurst is the served pair's per-client burst size: clients
	// submit this many queries at once (TrySubmit) and then drain them,
	// reproducing the benchmark's paced burst arrival — point queries
	// land in groups after each applied edge batch, so the p50 of record
	// includes the queue wait of queries behind their own burst.
	obsServeBurst = 32
)

// obsOverheadStats reduces one ablation rep's raw latencies to exact
// (sorted, not bucketed) p50 and mean — the serving histograms' ~12%
// bucket-midpoint resolution would quantize away the few-percent
// effect the ablation exists to measure.
func obsOverheadStats(lats []time.Duration) (p50, mean int64) {
	if len(lats) == 0 {
		return 0, 0
	}
	slices.Sort(lats)
	var sum int64
	for _, d := range lats {
		sum += d.Nanoseconds()
	}
	return lats[len(lats)/2].Nanoseconds(), sum / int64(len(lats))
}

// obsOverheadRun measures one ablation rep: a fresh instance of name
// loaded with edges, served with the observability hot path on or off,
// answering sequential degree queries on one worker with both
// staleness bounds disabled — no ingest, no lease refresh, no queue
// contention, so the on/off difference isolates the instrumentation
// itself.
func obsOverheadRun(name string, nVert int, edges []graph.Edge, noObs bool, o Options) ([]time.Duration, error) {
	sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return nil, err
	}
	if err := graph.Open(sys).Apply(graph.Inserts(edges)); err != nil {
		return nil, err
	}
	srv, err := serve.New(sys, serve.Config{
		MaxStalenessEdges: -1,
		MaxStalenessAge:   -1,
		Workers:           1,
		NoObs:             noObs,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	lats := make([]time.Duration, 0, obsOverheadQueries)
	for i := 0; i < obsOverheadWarmup+obsOverheadQueries; i++ {
		v := graph.V(uint32(i*2654435761) % uint32(nVert))
		res := srv.Do(serve.Query{Class: serve.ClassDegree, V: v})
		if res.Err != nil {
			return nil, res.Err
		}
		if i >= obsOverheadWarmup {
			lats = append(lats, res.Latency)
		}
	}
	return lats, nil
}

// obsOverheadServeRun measures one served-pair rep: the same fresh
// instance and degree-query stream as obsOverheadRun, but issued in
// bursts of obsServeBurst by obsServeClients concurrent client
// goroutines against the benchmark's worker pool while an ingest
// stream churns underneath — the mixed serve rows' configuration (same
// worker/shard counts, lock scope, per-shard sinks, edge-count
// staleness bound, burst arrival), so the resulting p50 is the served
// point-query latency of record: queue wait, lease refreshes and
// ingest contention included.
func obsOverheadServeRun(name string, nVert int, edges []graph.Edge, noObs bool, o Options) ([]time.Duration, error) {
	// Headroom for the churn re-stream on top of the preload.
	sys, _, err := buildSystem(name, nVert, 3*len(edges), o.Latency)
	if err != nil {
		return nil, err
	}
	if err := graph.Open(sys).Apply(graph.Inserts(edges)); err != nil {
		return nil, err
	}
	cfg := serve.Config{
		MaxStalenessEdges: int64(max(len(edges)/16, 256)),
		MaxStalenessAge:   -1,
		Workers:           serveWorkers,
		QueueDepth:        256,
		IngestShards:      serveShards,
		IngestBatch:       workload.AdaptiveBatchSize(len(edges)),
		Scope:             lockScope(name),
		NoObs:             noObs,
	}
	if g, ok := sys.(*dgap.Graph); ok {
		sinks, release, err := workload.DGAPSinks(g, serveShards)
		if err != nil {
			return nil, err
		}
		defer release()
		cfg.Sinks = sinks
	}
	srv, err := serve.New(sys, cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	// Churn: re-stream the dataset through the router in chunks until
	// the clients finish (or one full re-stream exhausts — at small
	// scales the tail then runs churn-free, which only lowers the
	// denominator and makes the reported overhead conservative).
	var (
		done   atomic.Bool
		ingErr error
		iwg    sync.WaitGroup
	)
	iwg.Add(1)
	go func() {
		defer iwg.Done()
		const chunk = 4096
		for off := 0; off < len(edges) && !done.Load(); off += chunk {
			if _, err := srv.Ingest(edges[off:min(off+chunk, len(edges))]); err != nil {
				ingErr = err
				return
			}
		}
	}()

	per := (obsOverheadWarmup + obsOverheadQueries) / obsServeClients
	warm := obsOverheadWarmup / obsServeClients
	lats := make([][]time.Duration, obsServeClients)
	errs := make([]error, obsServeClients)
	var wg sync.WaitGroup
	for c := 0; c < obsServeClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := make([]time.Duration, 0, per-warm)
			chans := make([]<-chan serve.Result, 0, obsServeBurst)
			for idx := 0; idx < per; {
				n := min(obsServeBurst, per-idx)
				chans = chans[:0]
				for j := 0; j < n; j++ {
					v := graph.V(uint32((c*per+idx+j)*2654435761) % uint32(nVert))
					ch, err := srv.TrySubmit(serve.Query{Class: serve.ClassDegree, V: v})
					if err != nil {
						errs[c] = err
						return
					}
					chans = append(chans, ch)
				}
				for j, ch := range chans {
					res := <-ch
					if res.Err != nil {
						errs[c] = res.Err
						return
					}
					if idx+j >= warm {
						out = append(out, res.Latency)
					}
				}
				idx += n
			}
			lats[c] = out
		}(c)
	}
	wg.Wait()
	done.Store(true)
	iwg.Wait()
	if ingErr != nil {
		return nil, ingErr
	}
	var all []time.Duration
	for c := range lats {
		if errs[c] != nil {
			return nil, errs[c]
		}
		all = append(all, lats[c]...)
	}
	return all, nil
}

// measureObsOverhead runs both ablation pairs obsOverheadReps times per
// mode, alternating modes within each rep so scheduler drift hits both
// equally, and keeps each mode's best (minimum) p50 — the standard
// noise floor for a microbenchmark ratio. The headline OverheadP50 is
// the micro pair's absolute cost over the served baseline p50 (see
// ObsOverheadResult).
func measureObsOverhead(name string, nVert int, edges []graph.Edge, o Options) (ObsOverheadResult, error) {
	out := ObsOverheadResult{
		System:  name,
		Queries: obsOverheadQueries,
		Clients: obsServeClients,
		Reps:    obsOverheadReps,
	}
	const inf = int64(1) << 62
	onP50, offP50 := inf, inf
	out.ServeOnP50Ns, out.ServeOffP50Ns = inf, inf
	for rep := 0; rep < obsOverheadReps; rep++ {
		offLat, err := obsOverheadRun(name, nVert, edges, true, o)
		if err != nil {
			return out, err
		}
		onLat, err := obsOverheadRun(name, nVert, edges, false, o)
		if err != nil {
			return out, err
		}
		if p, m := obsOverheadStats(offLat); p < offP50 {
			offP50, out.OffP50Ns, out.OffMeanNs = p, p, m
		}
		if p, m := obsOverheadStats(onLat); p < onP50 {
			onP50, out.OnP50Ns, out.OnMeanNs = p, p, m
		}
		servedOff, err := obsOverheadServeRun(name, nVert, edges, true, o)
		if err != nil {
			return out, err
		}
		servedOn, err := obsOverheadServeRun(name, nVert, edges, false, o)
		if err != nil {
			return out, err
		}
		if p, _ := obsOverheadStats(servedOff); p < out.ServeOffP50Ns {
			out.ServeOffP50Ns = p
		}
		if p, _ := obsOverheadStats(servedOn); p < out.ServeOnP50Ns {
			out.ServeOnP50Ns = p
		}
	}
	out.CostP50Ns = out.OnP50Ns - out.OffP50Ns
	if out.OffP50Ns > 0 {
		out.MicroOverheadP50 = float64(out.OnP50Ns)/float64(out.OffP50Ns) - 1
	}
	if out.ServeOffP50Ns > 0 {
		out.OverheadP50 = float64(out.CostP50Ns) / float64(out.ServeOffP50Ns)
	}
	return out, nil
}

// measureServe loads one fresh instance with the warmup stream, then
// ingests the timed stream through the server's router while a paced
// query stream (perKilo queries per 1000 applied edges) runs against
// the server's snapshot leases.
func measureServe(name string, nVert int, edges []graph.Edge, perKilo int, o Options) (ServeResult, error) {
	out := ServeResult{System: name, QueriesPerKiloEdge: perKilo}
	sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, err
	}
	warm, timed := workload.Split(edges)
	out.Edges = len(timed)
	if err := graph.Open(sys).Apply(graph.Inserts(warm)); err != nil {
		return out, err
	}

	cfg := serve.Config{
		MaxStalenessEdges: int64(max(len(timed)/16, 256)),
		MaxStalenessAge:   -1, // edge-count bound only: deterministic refresh cadence
		Workers:           serveWorkers,
		QueueDepth:        256,
		IngestShards:      serveShards,
		IngestBatch:       workload.AdaptiveBatchSize(len(edges)),
		Scope:             lockScope(name),
	}
	if g, ok := sys.(*dgap.Graph); ok {
		sinks, release, err := workload.DGAPSinks(g, serveShards)
		if err != nil {
			return out, err
		}
		defer release()
		cfg.Sinks = sinks
	}
	srv, err := serve.New(sys, cfg)
	if err != nil {
		return out, err
	}
	defer srv.Close()

	var (
		ingesting atomic.Bool
		issued    atomic.Int64
		mu        sync.Mutex
		errs      []error
		wg        sync.WaitGroup
	)
	out.MinSeenEdges = int64(1) << 62
	record := func(res serve.Result) {
		mu.Lock()
		defer mu.Unlock()
		if res.Err != nil {
			errs = append(errs, res.Err)
			return
		}
		out.Queries++
		if ingesting.Load() {
			out.QueriesDuringIngest++
		}
		out.MinSeenEdges = min(out.MinSeenEdges, res.Edges)
		out.MaxSeenEdges = max(out.MaxSeenEdges, res.Edges)
	}
	target := func() int64 { return srv.Applied() * int64(perKilo) / 1000 }

	// The query dispatcher keeps issuance at the target ratio of the
	// applied-edge counter; each query blocks in its own goroutine, so
	// completions land whenever a worker and the scheduler allow —
	// including at the yield points inside the router stream, which is
	// what QueriesDuringIngest certifies.
	ingesting.Store(true)
	dispatcherDone := make(chan struct{})
	go func() {
		defer close(dispatcherDone)
		for ingesting.Load() || issued.Load() < target() {
			for issued.Load() < target() {
				q := serveQuery(int(issued.Load()), nVert)
				issued.Add(1)
				wg.Add(1)
				go func() {
					defer wg.Done()
					record(srv.Do(q))
				}()
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	t0 := time.Now()
	ingestRes, ingestErr := srv.Ingest(timed)
	wall := time.Since(t0)
	// Drain the query side before touching (or returning) the shared
	// result struct, even when ingest failed — in-flight queries keep
	// calling record until the dispatcher stops and its goroutines end.
	ingesting.Store(false)
	<-dispatcherDone
	wg.Wait()
	mixedWall := time.Since(t0) // full mixed window, tail completions included
	if ingestErr != nil {
		return out, ingestErr
	}
	if len(errs) > 0 {
		return out, errs[0]
	}

	out.IngestWallNs = wall.Nanoseconds()
	out.IngestVirtualNs = ingestRes.Elapsed.Nanoseconds()
	if s := wall.Seconds(); s > 0 {
		out.MEPS = float64(len(timed)) / s / 1e6
	}
	st := srv.Stats()
	out.Rejected = st.Rejected
	out.QueueDepth = st.QueueDepth
	out.InFlight = st.InFlight
	out.ShedTotal = st.ShedTotal
	out.LeaseGenerations = st.Generations
	if out.Queries == 0 {
		out.MinSeenEdges = 0
	}
	// QPS is measured over the whole mixed window (ingest plus the tail
	// that drains the last due queries), since class counts include that
	// tail; MEPS stays over the ingest span.
	qsecs := mixedWall.Seconds()
	for _, cs := range st.Classes {
		if cs.Count == 0 {
			continue
		}
		qps := 0.0
		if qsecs > 0 {
			qps = float64(cs.Count) / qsecs
		}
		out.Classes = append(out.Classes, ServeClassStats{
			Class:        cs.Class,
			Count:        cs.Count,
			P50Ns:        cs.P50.Nanoseconds(),
			P99Ns:        cs.P99.Nanoseconds(),
			P999Ns:       cs.P999.Nanoseconds(),
			MaxNs:        cs.Max.Nanoseconds(),
			QPS:          qps,
			ComputeP50Ns: cs.ComputeP50.Nanoseconds(),
			ComputeP99Ns: cs.ComputeP99.Nanoseconds(),
		})
	}
	return out, nil
}
