package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/serve"
	"dgap/internal/workload"
)

// Serve-experiment shape: router shards and query workers match the
// ingest experiment's mid-scale point; the staleness bound is a few
// router batches so lease refreshes demonstrably happen mid-stream.
const (
	serveShards  = 4
	serveWorkers = 4
)

// serveRatios are the read:write mixes the experiment sweeps, expressed
// as queries issued per 1000 edges applied. Writes are single edges and
// queries are whole operations (a k-hop expansion, a top-k scan), so
// even the "heavy" mix is far below 1:1 in op count while being
// read-dominated in work.
var serveRatios = []struct {
	Label   string
	PerKilo int
}{
	{"1:100", 10},
	{"1:10", 100},
}

// ServeClassStats is one query class's latency summary in the dump.
type ServeClassStats struct {
	Class string  `json:"class"`
	Count int64   `json:"count"`
	P50Ns int64   `json:"p50_ns"`
	P99Ns int64   `json:"p99_ns"`
	QPS   float64 `json:"qps"`
}

// ServeResult is one mixed read/write measurement: one system serving
// one dataset at one read:write ratio, with ingest streaming through
// the router while the query classes run against snapshot leases.
// QueriesDuringIngest, LeaseGenerations and the Min/MaxSeenEdges spread
// are the concurrency evidence: completions landing inside the ingest
// window, the staleness bound refreshing leases mid-stream, and
// successive generations observing the edge count grow.
type ServeResult struct {
	System              string            `json:"system"`
	Graph               string            `json:"graph"`
	Ratio               string            `json:"ratio"`
	QueriesPerKiloEdge  int               `json:"queries_per_kilo_edge"`
	Edges               int               `json:"edges"`
	IngestWallNs        int64             `json:"ingest_wall_ns"`
	IngestVirtualNs     int64             `json:"ingest_virtual_ns"`
	MEPS                float64           `json:"meps"`
	Queries             int64             `json:"queries"`
	Rejected            int64             `json:"rejected"`
	QueriesDuringIngest int64             `json:"queries_during_ingest"`
	LeaseGenerations    uint64            `json:"lease_generations"`
	MinSeenEdges        int64             `json:"min_seen_edges"`
	MaxSeenEdges        int64             `json:"max_seen_edges"`
	Classes             []ServeClassStats `json:"classes"`
}

// ServeDump is the top-level BENCH_serve.json document.
type ServeDump struct {
	Scale   float64       `json:"scale"`
	Seed    int64         `json:"seed"`
	Shards  int           `json:"shards"`
	Workers int           `json:"workers"`
	Results []ServeResult `json:"results"`
}

// ServeJSON runs the mixed read/write serving experiment — every
// dynamic system, every dataset, at each read:write ratio — and writes
// BENCH_serve.json, the serving-tier counterpart of BENCH_kernels.json
// (reads) and BENCH_ingest.json (writes).
func ServeJSON(o Options, path string) error {
	o = o.defaults()
	dump := ServeDump{Scale: o.Scale, Seed: o.Seed, Shards: serveShards, Workers: serveWorkers}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		for _, name := range SystemNames {
			for _, ratio := range serveRatios {
				res, err := measureServe(name, nVert, edges, ratio.PerKilo, o)
				if err != nil {
					return fmt.Errorf("serve %s/%s %s: %w", spec.Name, name, ratio.Label, err)
				}
				res.Graph = spec.Name
				res.Ratio = ratio.Label
				dump.Results = append(dump.Results, res)
			}
		}
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "wrote %d mixed read/write timings to %s\n", len(dump.Results), path)
	return nil
}

// serveQuery picks the i-th query of the paced stream: a rotation of
// the cheap point classes with a periodic top-k scan and a rarer full
// kernel refresh, over a deterministically scattered vertex.
func serveQuery(i, nVert int) serve.Query {
	v := graph.V(uint32(i*2654435761) % uint32(nVert))
	switch {
	case i%64 == 63:
		return serve.Query{Class: serve.ClassKernel}
	case i%16 == 15:
		return serve.Query{Class: serve.ClassTopK, K: 8}
	case i%4 == 3:
		return serve.Query{Class: serve.ClassKHop, V: v, K: 2}
	case i%2 == 0:
		return serve.Query{Class: serve.ClassDegree, V: v}
	default:
		return serve.Query{Class: serve.ClassNeighbors, V: v}
	}
}

// measureServe loads one fresh instance with the warmup stream, then
// ingests the timed stream through the server's router while a paced
// query stream (perKilo queries per 1000 applied edges) runs against
// the server's snapshot leases.
func measureServe(name string, nVert int, edges []graph.Edge, perKilo int, o Options) (ServeResult, error) {
	out := ServeResult{System: name, QueriesPerKiloEdge: perKilo}
	sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, err
	}
	warm, timed := workload.Split(edges)
	out.Edges = len(timed)
	if err := graph.Open(sys).Apply(graph.Inserts(warm)); err != nil {
		return out, err
	}

	cfg := serve.Config{
		MaxStalenessEdges: int64(max(len(timed)/16, 256)),
		MaxStalenessAge:   -1, // edge-count bound only: deterministic refresh cadence
		Workers:           serveWorkers,
		QueueDepth:        256,
		IngestShards:      serveShards,
		IngestBatch:       workload.AdaptiveBatchSize(len(edges)),
		Scope:             lockScope(name),
	}
	if g, ok := sys.(*dgap.Graph); ok {
		sinks, release, err := workload.DGAPSinks(g, serveShards)
		if err != nil {
			return out, err
		}
		defer release()
		cfg.Sinks = sinks
	}
	srv, err := serve.New(sys, cfg)
	if err != nil {
		return out, err
	}
	defer srv.Close()

	var (
		ingesting atomic.Bool
		issued    atomic.Int64
		mu        sync.Mutex
		errs      []error
		wg        sync.WaitGroup
	)
	out.MinSeenEdges = int64(1) << 62
	record := func(res serve.Result) {
		mu.Lock()
		defer mu.Unlock()
		if res.Err != nil {
			errs = append(errs, res.Err)
			return
		}
		out.Queries++
		if ingesting.Load() {
			out.QueriesDuringIngest++
		}
		out.MinSeenEdges = min(out.MinSeenEdges, res.Edges)
		out.MaxSeenEdges = max(out.MaxSeenEdges, res.Edges)
	}
	target := func() int64 { return srv.Applied() * int64(perKilo) / 1000 }

	// The query dispatcher keeps issuance at the target ratio of the
	// applied-edge counter; each query blocks in its own goroutine, so
	// completions land whenever a worker and the scheduler allow —
	// including at the yield points inside the router stream, which is
	// what QueriesDuringIngest certifies.
	ingesting.Store(true)
	dispatcherDone := make(chan struct{})
	go func() {
		defer close(dispatcherDone)
		for ingesting.Load() || issued.Load() < target() {
			for issued.Load() < target() {
				q := serveQuery(int(issued.Load()), nVert)
				issued.Add(1)
				wg.Add(1)
				go func() {
					defer wg.Done()
					record(srv.Do(q))
				}()
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	t0 := time.Now()
	ingestRes, ingestErr := srv.Ingest(timed)
	wall := time.Since(t0)
	// Drain the query side before touching (or returning) the shared
	// result struct, even when ingest failed — in-flight queries keep
	// calling record until the dispatcher stops and its goroutines end.
	ingesting.Store(false)
	<-dispatcherDone
	wg.Wait()
	mixedWall := time.Since(t0) // full mixed window, tail completions included
	if ingestErr != nil {
		return out, ingestErr
	}
	if len(errs) > 0 {
		return out, errs[0]
	}

	out.IngestWallNs = wall.Nanoseconds()
	out.IngestVirtualNs = ingestRes.Elapsed.Nanoseconds()
	if s := wall.Seconds(); s > 0 {
		out.MEPS = float64(len(timed)) / s / 1e6
	}
	st := srv.Stats()
	out.Rejected = st.Rejected
	out.LeaseGenerations = st.Generations
	if out.Queries == 0 {
		out.MinSeenEdges = 0
	}
	// QPS is measured over the whole mixed window (ingest plus the tail
	// that drains the last due queries), since class counts include that
	// tail; MEPS stays over the ingest span.
	qsecs := mixedWall.Seconds()
	for _, cs := range st.Classes {
		if cs.Count == 0 {
			continue
		}
		qps := 0.0
		if qsecs > 0 {
			qps = float64(cs.Count) / qsecs
		}
		out.Classes = append(out.Classes, ServeClassStats{
			Class: cs.Class,
			Count: cs.Count,
			P50Ns: cs.P50.Nanoseconds(),
			P99Ns: cs.P99.Nanoseconds(),
			QPS:   qps,
		})
	}
	return out, nil
}
