package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/serve"
	"dgap/internal/workload"
)

// Serve-experiment shape: router shards and query workers match the
// ingest experiment's mid-scale point; the staleness bound is a few
// router batches so lease refreshes demonstrably happen mid-stream.
const (
	serveShards  = 4
	serveWorkers = 4
)

// serveRatios are the read:write mixes the experiment sweeps, expressed
// as queries issued per 1000 edges applied. Writes are single edges and
// queries are whole operations (a k-hop expansion, a top-k scan), so
// even the "heavy" mix is far below 1:1 in op count while being
// read-dominated in work.
var serveRatios = []struct {
	Label   string
	PerKilo int
}{
	{"1:100", 10},
	{"1:10", 100},
}

// ServeClassStats is one query class's latency summary in the dump.
// The latency quantiles cover submit-to-completion (queue wait
// included); the compute quantiles cover only the analytics kernel's
// own measured duration and stay zero for the point classes that run
// none (degree, neighbors).
type ServeClassStats struct {
	Class        string  `json:"class"`
	Count        int64   `json:"count"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	P999Ns       int64   `json:"p999_ns"`
	MaxNs        int64   `json:"max_ns"`
	QPS          float64 `json:"qps"`
	ComputeP50Ns int64   `json:"compute_p50_ns,omitempty"`
	ComputeP99Ns int64   `json:"compute_p99_ns,omitempty"`
}

// ServeResult is one mixed read/write measurement: one system serving
// one dataset at one read:write ratio, with ingest streaming through
// the router while the query classes run against snapshot leases.
// QueriesDuringIngest, LeaseGenerations and the Min/MaxSeenEdges spread
// are the concurrency evidence: completions landing inside the ingest
// window, the staleness bound refreshing leases mid-stream, and
// successive generations observing the edge count grow.
type ServeResult struct {
	System              string            `json:"system"`
	Graph               string            `json:"graph"`
	Ratio               string            `json:"ratio"`
	QueriesPerKiloEdge  int               `json:"queries_per_kilo_edge"`
	Edges               int               `json:"edges"`
	IngestWallNs        int64             `json:"ingest_wall_ns"`
	IngestVirtualNs     int64             `json:"ingest_virtual_ns"`
	MEPS                float64           `json:"meps"`
	Queries             int64             `json:"queries"`
	Rejected            int64             `json:"rejected"`
	QueriesDuringIngest int64             `json:"queries_during_ingest"`
	LeaseGenerations    uint64            `json:"lease_generations"`
	MinSeenEdges        int64             `json:"min_seen_edges"`
	MaxSeenEdges        int64             `json:"max_seen_edges"`
	Classes             []ServeClassStats `json:"classes"`
}

// RefreshResult is one kernel-refresh measurement: churn streaming
// through one system's serving stack with a ClassKernel query paced
// every OpsPerRefresh ops, in one of two modes — "full" (the
// NoIncremental baseline: every refresh recomputes the fixed-iteration
// kernel) or "incremental" (the maintained vector advanced by each
// generation's journal delta). The compute quantiles are the refresh
// latency curve; across rows they trace cost against
// ops-since-last-generation (the staleness the caller tolerated),
// which is the staleness-vs-cost trade the delta journal buys.
type RefreshResult struct {
	System        string `json:"system"`
	Graph         string `json:"graph"`
	Mode          string `json:"mode"`
	Ratio         string `json:"ratio"`
	OpsPerRefresh int    `json:"ops_per_refresh"`
	Refreshes     int    `json:"refreshes"`
	ChurnOps      int    `json:"churn_ops"`
	KernelFull    int64  `json:"kernel_full"`
	KernelIncr    int64  `json:"kernel_incremental"`
	DeltaOps      int64  `json:"delta_ops"`
	ComputeP50Ns  int64  `json:"compute_p50_ns"`
	ComputeP99Ns  int64  `json:"compute_p99_ns"`
	ComputeMeanNs int64  `json:"compute_mean_ns"`
	ComputeSumNs  int64  `json:"compute_total_ns"`
}

// ServeDump is the top-level BENCH_serve.json document.
type ServeDump struct {
	Scale   float64         `json:"scale"`
	Seed    int64           `json:"seed"`
	Shards  int             `json:"shards"`
	Workers int             `json:"workers"`
	Results []ServeResult   `json:"results"`
	Refresh []RefreshResult `json:"refresh"`
}

// ServeJSON runs the mixed read/write serving experiment — every
// dynamic system, every dataset, at each read:write ratio — and writes
// BENCH_serve.json, the serving-tier counterpart of BENCH_kernels.json
// (reads) and BENCH_ingest.json (writes).
func ServeJSON(o Options, path string) error {
	o = o.defaults()
	dump := ServeDump{Scale: o.Scale, Seed: o.Seed, Shards: serveShards, Workers: serveWorkers}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		for _, name := range SystemNames {
			for _, ratio := range serveRatios {
				res, err := measureServe(name, nVert, edges, ratio.PerKilo, o)
				if err != nil {
					return fmt.Errorf("serve %s/%s %s: %w", spec.Name, name, ratio.Label, err)
				}
				res.Graph = spec.Name
				res.Ratio = ratio.Label
				dump.Results = append(dump.Results, res)
			}
		}
		// Kernel-refresh rows: full vs incremental at the same read:write
		// mixes. The churn stream deletes, so systems without CapDelete
		// (LLAMA) sit these out — there is no steady-state refresh story
		// to measure on an append-only backend.
		for _, name := range SystemNames {
			for _, ratio := range serveRatios {
				per := 1000 / ratio.PerKilo
				for _, mode := range []string{"full", "incremental"} {
					rr, ok, err := measureRefresh(name, nVert, edges, mode, per, 0, ratio.Label, o)
					if err != nil {
						return fmt.Errorf("refresh %s/%s %s %s: %w", spec.Name, name, ratio.Label, mode, err)
					}
					if !ok {
						continue
					}
					rr.Graph = spec.Name
					dump.Refresh = append(dump.Refresh, rr)
				}
			}
		}
		// Staleness-vs-cost sweep on DGAP: widen the refresh window from
		// 1/64th to 1/4 of the churn stream and watch incremental refresh
		// cost grow with the delta while the full baseline stays flat at
		// graph size.
		for _, div := range []int{64, 16, 4} {
			for _, mode := range []string{"full", "incremental"} {
				rr, ok, err := measureRefresh("DGAP", nVert, edges, mode, 0, div, fmt.Sprintf("window/%d", div), o)
				if err != nil {
					return fmt.Errorf("refresh sweep %s window/%d %s: %w", spec.Name, div, mode, err)
				}
				if !ok {
					continue
				}
				rr.Graph = spec.Name
				dump.Refresh = append(dump.Refresh, rr)
			}
		}
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "wrote %d mixed read/write timings to %s\n", len(dump.Results), path)
	return nil
}

// serveQuery picks the i-th query of the paced stream: a rotation of
// the cheap point classes with a periodic top-k scan and a rarer full
// kernel refresh, over a deterministically scattered vertex.
func serveQuery(i, nVert int) serve.Query {
	v := graph.V(uint32(i*2654435761) % uint32(nVert))
	switch {
	case i%64 == 63:
		return serve.Query{Class: serve.ClassKernel}
	case i%16 == 15:
		return serve.Query{Class: serve.ClassTopK, K: 8}
	case i%4 == 3:
		return serve.Query{Class: serve.ClassKHop, V: v, K: 2}
	case i%2 == 0:
		return serve.Query{Class: serve.ClassDegree, V: v}
	default:
		return serve.Query{Class: serve.ClassNeighbors, V: v}
	}
}

// symmetricChurnOps turns a generator edge stream — which carries every
// logical edge in both directions, the adjacency symmetry the PageRank
// kernels (full and incremental) are written against — into a mirrored
// sliding-window churn stream: each logical edge (the Src < Dst
// orientation of its mirrored pair) is inserted in both directions, and
// once half the logical edges are live, each insert is followed by the
// mirrored delete of the logical edge that many positions earlier. The
// plain workload.ChurnOps stream would not do here: it slides over the
// directed stream, so a snapshot cut mid-window sees one direction of
// an edge without the other, and an asymmetric adjacency breaks the
// residual algebra incremental PageRank maintains.
func symmetricChurnOps(edges []graph.Edge) []graph.Op {
	var canon []graph.Edge
	for _, e := range edges {
		if e.Src < e.Dst {
			canon = append(canon, e)
		}
	}
	window := max(len(canon)/2, 1)
	ops := make([]graph.Op, 0, 4*len(canon))
	for i, e := range canon {
		ops = append(ops, graph.OpInsert(e.Src, e.Dst), graph.OpInsert(e.Dst, e.Src))
		if i >= window {
			d := canon[i-window]
			ops = append(ops, graph.OpDelete(d.Src, d.Dst), graph.OpDelete(d.Dst, d.Src))
		}
	}
	return ops
}

// refreshMaxRounds caps one refresh row's measurement loop so wide
// sweeps stay bounded; the churn stream is truncated to what the
// capped rounds actually applied and ChurnOps reports it.
const refreshMaxRounds = 512

// measureRefresh loads one fresh instance with the warmup stream, then
// alternates synchronously between one refresh window of churn ops and
// one ClassKernel query, recording each refresh's kernel path, delta
// size and compute time. opsPerRefresh fixes the window directly;
// windowDiv > 0 derives it as that fraction of the whole churn stream
// (the staleness sweep). mode "full" runs the NoIncremental baseline.
// Returns ok=false for systems that cannot delete: a churn stream has
// nothing to slide on an append-only backend.
func measureRefresh(name string, nVert int, edges []graph.Edge, mode string, opsPerRefresh, windowDiv int, label string, o Options) (RefreshResult, bool, error) {
	out := RefreshResult{System: name, Mode: mode, Ratio: label}
	sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, false, err
	}
	store := graph.Open(sys)
	if !store.Caps().Has(graph.CapDelete) {
		return out, false, nil
	}
	warm, timed := workload.Split(edges)
	if err := store.Apply(graph.Inserts(warm)); err != nil {
		return out, false, err
	}
	churn := symmetricChurnOps(timed)
	if windowDiv > 0 {
		opsPerRefresh = max(len(churn)/windowDiv, 1)
	}
	out.OpsPerRefresh = opsPerRefresh

	cfg := serve.Config{
		MaxStalenessEdges: int64(opsPerRefresh),
		MaxStalenessAge:   -1, // refresh cadence driven by applied ops only
		Workers:           1,
		IngestShards:      serveShards,
		IngestBatch:       workload.AdaptiveBatchSize(len(edges)),
		Scope:             lockScope(name),
		NoIncremental:     mode == "full",
		// Size the journal to the refresh window (wide sweeps exceed the
		// default), so the sweep measures delta cost rather than
		// overflow fallbacks.
		DeltaWindow: 2*opsPerRefresh + 1024,
	}
	if g, ok := sys.(*dgap.Graph); ok {
		sinks, release, err := workload.DGAPSinks(g, serveShards)
		if err != nil {
			return out, false, err
		}
		defer release()
		cfg.Sinks = sinks
	}
	srv, err := serve.New(sys, cfg)
	if err != nil {
		return out, false, err
	}
	defer srv.Close()

	// Prime outside the measurement: the first kernel query pays the
	// maintainer build (or baseline warmup), which is a one-time cost,
	// not a refresh.
	if res := srv.Do(serve.Query{Class: serve.ClassKernel}); res.Err != nil {
		return out, false, res.Err
	}

	var computes []time.Duration
	for len(churn) >= opsPerRefresh && out.Refreshes < refreshMaxRounds {
		chunk := churn[:opsPerRefresh]
		churn = churn[opsPerRefresh:]
		if _, err := srv.IngestOps(chunk); err != nil {
			return out, false, err
		}
		out.ChurnOps += len(chunk)
		res := srv.Do(serve.Query{Class: serve.ClassKernel})
		if res.Err != nil {
			return out, false, res.Err
		}
		out.Refreshes++
		out.DeltaOps += int64(res.DeltaOps)
		switch res.Kernel {
		case serve.KernelIncremental:
			out.KernelIncr++
		default:
			out.KernelFull++
		}
		computes = append(computes, res.Compute)
		out.ComputeSumNs += res.Compute.Nanoseconds()
	}
	if len(computes) > 0 {
		sort.Slice(computes, func(i, j int) bool { return computes[i] < computes[j] })
		q := func(f float64) int64 {
			return computes[min(int(f*float64(len(computes))), len(computes)-1)].Nanoseconds()
		}
		out.ComputeP50Ns = q(0.50)
		out.ComputeP99Ns = q(0.99)
		out.ComputeMeanNs = out.ComputeSumNs / int64(len(computes))
	}
	return out, true, nil
}

// measureServe loads one fresh instance with the warmup stream, then
// ingests the timed stream through the server's router while a paced
// query stream (perKilo queries per 1000 applied edges) runs against
// the server's snapshot leases.
func measureServe(name string, nVert int, edges []graph.Edge, perKilo int, o Options) (ServeResult, error) {
	out := ServeResult{System: name, QueriesPerKiloEdge: perKilo}
	sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, err
	}
	warm, timed := workload.Split(edges)
	out.Edges = len(timed)
	if err := graph.Open(sys).Apply(graph.Inserts(warm)); err != nil {
		return out, err
	}

	cfg := serve.Config{
		MaxStalenessEdges: int64(max(len(timed)/16, 256)),
		MaxStalenessAge:   -1, // edge-count bound only: deterministic refresh cadence
		Workers:           serveWorkers,
		QueueDepth:        256,
		IngestShards:      serveShards,
		IngestBatch:       workload.AdaptiveBatchSize(len(edges)),
		Scope:             lockScope(name),
	}
	if g, ok := sys.(*dgap.Graph); ok {
		sinks, release, err := workload.DGAPSinks(g, serveShards)
		if err != nil {
			return out, err
		}
		defer release()
		cfg.Sinks = sinks
	}
	srv, err := serve.New(sys, cfg)
	if err != nil {
		return out, err
	}
	defer srv.Close()

	var (
		ingesting atomic.Bool
		issued    atomic.Int64
		mu        sync.Mutex
		errs      []error
		wg        sync.WaitGroup
	)
	out.MinSeenEdges = int64(1) << 62
	record := func(res serve.Result) {
		mu.Lock()
		defer mu.Unlock()
		if res.Err != nil {
			errs = append(errs, res.Err)
			return
		}
		out.Queries++
		if ingesting.Load() {
			out.QueriesDuringIngest++
		}
		out.MinSeenEdges = min(out.MinSeenEdges, res.Edges)
		out.MaxSeenEdges = max(out.MaxSeenEdges, res.Edges)
	}
	target := func() int64 { return srv.Applied() * int64(perKilo) / 1000 }

	// The query dispatcher keeps issuance at the target ratio of the
	// applied-edge counter; each query blocks in its own goroutine, so
	// completions land whenever a worker and the scheduler allow —
	// including at the yield points inside the router stream, which is
	// what QueriesDuringIngest certifies.
	ingesting.Store(true)
	dispatcherDone := make(chan struct{})
	go func() {
		defer close(dispatcherDone)
		for ingesting.Load() || issued.Load() < target() {
			for issued.Load() < target() {
				q := serveQuery(int(issued.Load()), nVert)
				issued.Add(1)
				wg.Add(1)
				go func() {
					defer wg.Done()
					record(srv.Do(q))
				}()
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	t0 := time.Now()
	ingestRes, ingestErr := srv.Ingest(timed)
	wall := time.Since(t0)
	// Drain the query side before touching (or returning) the shared
	// result struct, even when ingest failed — in-flight queries keep
	// calling record until the dispatcher stops and its goroutines end.
	ingesting.Store(false)
	<-dispatcherDone
	wg.Wait()
	mixedWall := time.Since(t0) // full mixed window, tail completions included
	if ingestErr != nil {
		return out, ingestErr
	}
	if len(errs) > 0 {
		return out, errs[0]
	}

	out.IngestWallNs = wall.Nanoseconds()
	out.IngestVirtualNs = ingestRes.Elapsed.Nanoseconds()
	if s := wall.Seconds(); s > 0 {
		out.MEPS = float64(len(timed)) / s / 1e6
	}
	st := srv.Stats()
	out.Rejected = st.Rejected
	out.LeaseGenerations = st.Generations
	if out.Queries == 0 {
		out.MinSeenEdges = 0
	}
	// QPS is measured over the whole mixed window (ingest plus the tail
	// that drains the last due queries), since class counts include that
	// tail; MEPS stays over the ingest span.
	qsecs := mixedWall.Seconds()
	for _, cs := range st.Classes {
		if cs.Count == 0 {
			continue
		}
		qps := 0.0
		if qsecs > 0 {
			qps = float64(cs.Count) / qsecs
		}
		out.Classes = append(out.Classes, ServeClassStats{
			Class:        cs.Class,
			Count:        cs.Count,
			P50Ns:        cs.P50.Nanoseconds(),
			P99Ns:        cs.P99.Nanoseconds(),
			P999Ns:       cs.P999.Nanoseconds(),
			MaxNs:        cs.Max.Nanoseconds(),
			QPS:          qps,
			ComputeP50Ns: cs.ComputeP50.Nanoseconds(),
			ComputeP99Ns: cs.ComputeP99.Nanoseconds(),
		})
	}
	return out, nil
}
