package bench

import (
	"fmt"

	"dgap/internal/dgap"
	"dgap/internal/graphgen"
	"dgap/internal/workload"
	"dgap/internal/xpgraph"
)

// Fig5 reproduces Figure 5: XPGraph's insert throughput as a function of
// the archiving threshold (2^1 .. 2^16) on the LiveJournal graph.
// Small thresholds archive constantly (tiny random PM writes); large
// ones batch the adjacency-list writes into sequential bursts.
func Fig5(o Options) error {
	o = o.defaults()
	spec, err := graphgen.Preset("livejournal")
	if err != nil {
		return err
	}
	edges := dataset(spec, o)
	nVert := graphgen.MaxVertex(edges)
	t := &table{header: []string{"threshold", "MEPS"}}
	for p := 1; p <= 16; p++ {
		a := arenaFor(len(edges), o.Latency)
		g, err := xpgraph.New(a, nVert, xpgraph.Config{Threshold: 1 << p, LogCapEdges: 1 << 20})
		if err != nil {
			return err
		}
		res, err := workload.InsertSerial(g, edges)
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("2^%d", p), f2(res.MEPS()))
	}
	t.write(o.Out)
	fmt.Fprintln(o.Out, "paper shape: throughput rises monotonically with threshold, ~3 orders of magnitude 2^1->2^16")
	return nil
}

// Fig6 reproduces Figure 6: single-writer insert throughput (MEPS) for
// every system on every dataset, after the 10% warm-up.
func Fig6(o Options) error {
	o = o.defaults()
	t := &table{header: append([]string{"graph"}, SystemNames...)}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		row := []string{spec.Name}
		for _, name := range SystemNames {
			sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
			if err != nil {
				return err
			}
			res, err := workload.InsertSerial(sys, edges)
			if err != nil {
				return err
			}
			row = append(row, f2(res.MEPS()))
		}
		t.add(row...)
	}
	t.write(o.Out)
	fmt.Fprintln(o.Out, "paper shape: DGAP best or near-best everywhere; 1.03-2.82x over BAL, up to 6x over LLAMA")
	return nil
}

// Tab3 reproduces Table 3: insert throughput at 1, 8 and 16 writer
// threads. Multi-thread runs use virtual-time contention accounting
// (this host has one CPU; DESIGN.md documents the substitution): DGAP
// contends per PMA section, BAL and XPGraph per vertex, GraphOne and
// LLAMA on a global ingest lock.
func Tab3(o Options) error {
	o = o.defaults()
	threads := []int{1, 8, 16}
	header := []string{"graph", "system"}
	for _, th := range threads {
		header = append(header, fmt.Sprintf("T%d", th))
	}
	t := &table{header: header}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		for _, name := range SystemNames {
			row := []string{spec.Name, name}
			for _, th := range threads {
				sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
				if err != nil {
					return err
				}
				var res workload.InsertResult
				if th == 1 {
					res, err = workload.InsertSerial(sys, edges)
				} else if g, ok := sys.(*dgap.Graph); ok {
					res, err = workload.InsertParallelDGAP(g, edges, th)
				} else {
					res, err = workload.InsertParallel(sys, edges, th, lockScope(name))
				}
				if err != nil {
					return err
				}
				row = append(row, f2(res.MEPS()))
			}
			t.add(row...)
		}
	}
	t.write(o.Out)
	fmt.Fprintln(o.Out, "paper shape: DGAP scales to ~4.3x at T16; BAL's finer locks scale best; XPGraph wins small graphs that fit its circular log")
	return nil
}
