package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/workload"
)

// Churn-experiment shape: router shards match the ingest experiment's
// mid-scale point, and the sliding window holds a quarter of the timed
// stream — large enough that the live set dominates the structure,
// small enough that most of the stream is churn (deletes ≈ 3/4 of the
// inserts).
const (
	churnShards     = 4
	churnWindowFrac = 4
)

// churnReps: every timed churn path — each system's routed run and
// DGAP's split-dispatch ablation — is run on this many fresh instances
// and reported best-of, so all rows carry the same statistic. The
// virtual makespan charges real execution time, and on a 1-CPU host a
// single run carries scheduler noise larger than the ~5-15% apply-path
// effect being measured. Space and compaction counters are
// deterministic per stream and read from one run.
const churnReps = 5

// ChurnResult is one mixed insert/delete measurement: a sliding-window
// churn stream (insert the front, delete the tail) routed through the
// sharded mixed router into graph.Applier sinks. SpaceBytes is the
// structure's post-churn payload footprint; AppendSpaceBytes is an
// insert-only twin loaded with the same inserts (what the structure
// would hold had nothing been deleted). For DGAP, SplitVirtualNs/
// SplitChurnMEPS time a twin driven through the legacy split dispatch
// (each batch as one InsertBatch plus one DeleteBatch) against the
// native mixed ApplyOps path the headline numbers use;
// NoCompactSpaceBytes is a churn twin with tombstone compaction
// disabled — the gap to SpaceBytes is the space compaction reclaimed —
// and Compactions/PairsDropped count the reclamation work
// (rebalance-piggybacked plus the final Compact). The native-vs-split
// tradeoff being measured: mixed section groups halve the lock/flush/
// fence/maintenance rounds per touched section but carry ~2x the ops
// per group, so same-vertex appends collide into the edge log more
// often before a trigger check can relieve the section — native wins
// where fence/lock amortization dominates and lands within noise of
// split where log pressure does.
type ChurnResult struct {
	System              string  `json:"system"`
	Graph               string  `json:"graph"`
	Supported           bool    `json:"supported"`
	Ops                 int     `json:"ops"`
	Inserts             int     `json:"inserts"`
	Deletes             int     `json:"deletes"`
	Window              int     `json:"window"`
	VirtualNs           int64   `json:"virtual_ns"`
	ChurnMEPS           float64 `json:"churn_meps"`
	DeleteMEPS          float64 `json:"delete_meps"`
	SplitVirtualNs      int64   `json:"split_virtual_ns,omitempty"`
	SplitChurnMEPS      float64 `json:"split_churn_meps,omitempty"`
	SpaceBytes          int64   `json:"space_bytes"`
	AppendSpaceBytes    int64   `json:"append_space_bytes"`
	Compactions         int64   `json:"compactions,omitempty"`
	PairsDropped        int64   `json:"pairs_dropped,omitempty"`
	NoCompactSpaceBytes int64   `json:"nocompact_space_bytes,omitempty"`
}

// ChurnDump is the top-level BENCH_churn.json document.
type ChurnDump struct {
	Scale   float64       `json:"scale"`
	Seed    int64         `json:"seed"`
	Shards  int           `json:"shards"`
	Results []ChurnResult `json:"results"`
}

// ChurnJSON runs the sliding-window churn experiment — every dynamic
// system, every dataset — and writes BENCH_churn.json: delete
// throughput and post-churn space alongside the insert-only and (for
// DGAP) split-dispatch and no-compaction baselines. Systems without
// delete support (LLAMA) appear as supported=false rows, documenting
// the rejection.
func ChurnJSON(o Options, path string) error {
	o = o.defaults()
	dump := ChurnDump{Scale: o.Scale, Seed: o.Seed, Shards: churnShards}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		for _, name := range SystemNames {
			res, err := measureChurn(name, nVert, edges, o)
			if err != nil {
				return fmt.Errorf("churn %s/%s: %w", spec.Name, name, err)
			}
			res.Graph = spec.Name
			dump.Results = append(dump.Results, res)
		}
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "wrote %d churn timings to %s\n", len(dump.Results), path)
	return nil
}

// spaceOf reports a system's post-run structure footprint: occupied
// slots plus live edge-log entries for DGAP (capacity churn would make
// the comparison depend on power-of-two sizing), block/chunk bytes for
// the append-only baselines.
func spaceOf(sys graph.System) int64 {
	switch s := sys.(type) {
	case *dgap.Graph:
		fp := s.Footprint()
		return int64(fp.OccupiedBytes + fp.ELogBytes)
	case interface{ SpaceBytes() int64 }:
		return s.SpaceBytes()
	}
	return 0
}

// loadBatched fills a fresh system with an insert-only stream through
// its Store (untimed).
func loadBatched(sys graph.System, edges []graph.Edge, batchSize int) error {
	st := graph.Open(sys)
	ops := graph.Inserts(edges)
	for len(ops) > 0 {
		n := min(batchSize, len(ops))
		if err := st.Apply(ops[:n]); err != nil {
			return err
		}
		ops = ops[n:]
	}
	return settle(sys)
}

// splitApplier reproduces the dispatch the native mixed path replaced:
// each router batch lands as one InsertBatch of its inserts followed by
// one DeleteBatch of its deletes, so two lock/flush/fence/rebalance
// rounds per touched section instead of one shared mixed round. The
// regenerated artifact records it next to the native numbers as the
// apply-path ablation. Buffers persist across batches (one sink per
// shard, driven by one virtual thread at a time).
type splitApplier struct {
	w        *dgap.Writer
	ins, del []graph.Edge
}

func (s *splitApplier) ApplyOps(ops []graph.Op) error {
	s.ins, s.del = s.ins[:0], s.del[:0]
	for _, o := range ops {
		if o.Del {
			s.del = append(s.del, o.Edge)
		} else {
			s.ins = append(s.ins, o.Edge)
		}
	}
	if len(s.ins) > 0 {
		if err := s.w.InsertBatch(s.ins); err != nil {
			return err
		}
	}
	if len(s.del) > 0 {
		return s.w.DeleteBatch(s.del)
	}
	return nil
}

// churnDGAPSplit drives the churn stream into a fresh DGAP twin through
// split-dispatch sinks, returning the virtual makespan for the
// native-vs-split comparison.
func churnDGAPSplit(nVert, nEdges int, warm []graph.Edge, ops []graph.Op, batchSize int, o Options) (workload.InsertResult, error) {
	a := arenaFor(nEdges, o.Latency)
	g, err := dgap.New(a, dgap.DefaultConfig(nVert, int64(nEdges)))
	if err != nil {
		return workload.InsertResult{}, err
	}
	if err := graph.Open(g).Apply(graph.Inserts(warm)); err != nil {
		return workload.InsertResult{}, err
	}
	writers := make([]*dgap.Writer, churnShards)
	sinks := make([]graph.Applier, churnShards)
	for i := range writers {
		if writers[i], err = g.NewWriter(); err != nil {
			return workload.InsertResult{}, err
		}
		defer writers[i].Close()
		sinks[i] = &splitApplier{w: writers[i]}
	}
	rt := workload.Router{Shards: churnShards, BatchSize: batchSize, Scope: workload.ScopeSection}
	return rt.RunOps(sinks, ops)
}

// measureChurn runs one system through the churn stream plus its space
// (and, for DGAP, apply-path) baselines.
func measureChurn(name string, nVert int, edges []graph.Edge, o Options) (ChurnResult, error) {
	out := ChurnResult{System: name}
	warm, timed := workload.Split(edges)
	window := max(len(timed)/churnWindowFrac, 1)
	ops := workload.ChurnOps(timed, window)
	out.Ops = len(ops)
	out.Window = window
	out.Inserts, out.Deletes = graph.SplitOps(ops)
	batchSize := workload.AdaptiveBatchSize(len(ops))

	// churnOn warms a fresh instance and drives the routed churn
	// stream, returning the makespan.
	churnOn := func(sys graph.System) (workload.InsertResult, error) {
		if err := graph.Open(sys).Apply(graph.Inserts(warm)); err != nil {
			return workload.InsertResult{}, err
		}
		if g, ok := sys.(*dgap.Graph); ok {
			return workload.ChurnRoutedDGAP(g, ops, churnShards, batchSize)
		}
		return workload.ChurnRouted(sys, ops, churnShards, lockScope(name), batchSize)
	}
	runOnce := func() (graph.System, workload.InsertResult, error) {
		sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
		if err != nil {
			return nil, workload.InsertResult{}, err
		}
		res, err := churnOn(sys)
		return sys, res, err
	}

	first, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, err
	}
	if !graph.Open(first).Caps().Has(graph.CapDelete) {
		// Documented rejection (LLAMA): no churn numbers, only the row.
		return out, nil
	}
	out.Supported = true
	// Best-of-reps on fresh instances; the first instance keeps serving
	// the space/compaction reads below. For DGAP each rep runs the
	// native path and its split-dispatch ablation back to back, so a
	// slow stretch of the host (the makespan charges real time) hits
	// both sides of the comparison instead of one path's whole block.
	var sys graph.System
	var res, split workload.InsertResult
	for rep := 0; rep < churnReps; rep++ {
		var rsys graph.System
		var rres workload.InsertResult
		if rep == 0 {
			// The capability-checked instance doubles as rep 0.
			rsys = first
			rres, err = churnOn(first)
		} else {
			rsys, rres, err = runOnce()
		}
		if err != nil {
			return out, err
		}
		if rep == 0 {
			sys, res = rsys, rres
		} else if rres.Elapsed < res.Elapsed {
			res = rres
		}
		if name == "DGAP" {
			sres, err := churnDGAPSplit(nVert, len(edges), warm, ops, batchSize, o)
			if err != nil {
				return out, err
			}
			if rep == 0 || sres.Elapsed < split.Elapsed {
				split = sres
			}
		}
	}
	if name == "DGAP" {
		out.SplitVirtualNs = split.Elapsed.Nanoseconds()
		if s := split.Elapsed.Seconds(); s > 0 {
			out.SplitChurnMEPS = float64(out.Ops) / s / 1e6
		}
	}
	if err := settle(sys); err != nil {
		return out, err
	}
	out.VirtualNs = res.Elapsed.Nanoseconds()
	if s := res.Elapsed.Seconds(); s > 0 {
		out.ChurnMEPS = float64(out.Ops) / s / 1e6
		out.DeleteMEPS = float64(out.Deletes) / s / 1e6
	}
	if g, ok := sys.(*dgap.Graph); ok {
		// Reclaim at the workload boundary, then read the counters —
		// rebalance-piggybacked compactions during the stream are
		// already included.
		if err := g.Compact(); err != nil {
			return out, err
		}
		cst := g.Compaction()
		out.Compactions = cst.Compactions
		out.PairsDropped = cst.PairsDropped
	}
	out.SpaceBytes = spaceOf(sys)

	// Insert-only twin: the same inserts, nothing deleted.
	app, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, err
	}
	if err := loadBatched(app, edges, batchSize); err != nil {
		return out, err
	}
	out.AppendSpaceBytes = spaceOf(app)

	if name == "DGAP" {
		// A churn twin with compaction disabled — the space a tombstone-
		// accumulating DGAP would be left holding.
		nc, err := buildDGAPNoCompact(nVert, len(edges), o)
		if err != nil {
			return out, err
		}
		if err := graph.Open(nc).Apply(graph.Inserts(warm)); err != nil {
			return out, err
		}
		if _, err := workload.ChurnRoutedDGAP(nc, ops, churnShards, batchSize); err != nil {
			return out, err
		}
		if err := nc.Compact(); err != nil { // merges only; drops nothing
			return out, err
		}
		out.NoCompactSpaceBytes = spaceOf(nc)
	}
	return out, nil
}

// buildDGAPNoCompact constructs the compaction-disabled DGAP twin.
func buildDGAPNoCompact(nVert, nEdges int, o Options) (*dgap.Graph, error) {
	a := arenaFor(nEdges, o.Latency)
	cfg := dgap.DefaultConfig(nVert, int64(nEdges))
	cfg.NoCompaction = true
	return dgap.New(a, cfg)
}
