package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"dgap/internal/bal"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/graphone"
	"dgap/internal/workload"
	"dgap/internal/xpgraph"
)

// Churn-experiment shape: router shards match the ingest experiment's
// mid-scale point, and the sliding window holds a quarter of the timed
// stream — large enough that the live set dominates the structure,
// small enough that most of the stream is churn (deletes ≈ 3/4 of the
// inserts).
const (
	churnShards     = 4
	churnWindowFrac = 4
)

// ChurnResult is one mixed insert/delete measurement: a sliding-window
// churn stream (insert the front, delete the tail) routed through the
// sharded mixed router. SpaceBytes is the structure's post-churn
// payload footprint; AppendSpaceBytes is an insert-only twin loaded
// with the same inserts (what the structure would hold had nothing
// been deleted). For DGAP, NoCompactSpaceBytes is a churn twin with
// tombstone compaction disabled — the gap to SpaceBytes is the space
// compaction reclaimed — and Compactions/PairsDropped count the
// reclamation work (rebalance-piggybacked plus the final Compact).
type ChurnResult struct {
	System              string  `json:"system"`
	Graph               string  `json:"graph"`
	Supported           bool    `json:"supported"`
	Ops                 int     `json:"ops"`
	Inserts             int     `json:"inserts"`
	Deletes             int     `json:"deletes"`
	Window              int     `json:"window"`
	VirtualNs           int64   `json:"virtual_ns"`
	ChurnMEPS           float64 `json:"churn_meps"`
	DeleteMEPS          float64 `json:"delete_meps"`
	SpaceBytes          int64   `json:"space_bytes"`
	AppendSpaceBytes    int64   `json:"append_space_bytes"`
	Compactions         int64   `json:"compactions,omitempty"`
	PairsDropped        int64   `json:"pairs_dropped,omitempty"`
	NoCompactSpaceBytes int64   `json:"nocompact_space_bytes,omitempty"`
}

// ChurnDump is the top-level BENCH_churn.json document.
type ChurnDump struct {
	Scale   float64       `json:"scale"`
	Seed    int64         `json:"seed"`
	Shards  int           `json:"shards"`
	Results []ChurnResult `json:"results"`
}

// ChurnJSON runs the sliding-window churn experiment — every dynamic
// system, every dataset — and writes BENCH_churn.json: delete
// throughput and post-churn space alongside the insert-only and (for
// DGAP) no-compaction baselines. Systems without delete support (LLAMA)
// appear as supported=false rows, documenting the rejection.
func ChurnJSON(o Options, path string) error {
	o = o.defaults()
	dump := ChurnDump{Scale: o.Scale, Seed: o.Seed, Shards: churnShards}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		for _, name := range SystemNames {
			res, err := measureChurn(name, nVert, edges, o)
			if err != nil {
				return fmt.Errorf("churn %s/%s: %w", spec.Name, name, err)
			}
			res.Graph = spec.Name
			dump.Results = append(dump.Results, res)
		}
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "wrote %d churn timings to %s\n", len(dump.Results), path)
	return nil
}

// spaceOf reports a system's post-run structure footprint: occupied
// slots plus live edge-log entries for DGAP (capacity churn would make
// the comparison depend on power-of-two sizing), block/chunk bytes for
// the append-only baselines.
func spaceOf(sys graph.System) int64 {
	switch s := sys.(type) {
	case *dgap.Graph:
		fp := s.Footprint()
		return int64(fp.OccupiedBytes + fp.ELogBytes)
	case *bal.Graph:
		return s.SpaceBytes()
	case *graphone.Graph:
		return s.SpaceBytes()
	case *xpgraph.Graph:
		return s.SpaceBytes()
	}
	return 0
}

// loadBatched fills a fresh system with an insert-only stream through
// its bulk write path (untimed).
func loadBatched(sys graph.System, edges []graph.Edge, batchSize int) error {
	bw := graph.Batch(sys)
	for len(edges) > 0 {
		n := min(batchSize, len(edges))
		if err := bw.InsertBatch(edges[:n]); err != nil {
			return err
		}
		edges = edges[n:]
	}
	return settle(sys)
}

// measureChurn runs one system through the churn stream plus its space
// baselines.
func measureChurn(name string, nVert int, edges []graph.Edge, o Options) (ChurnResult, error) {
	out := ChurnResult{System: name}
	warm, timed := workload.Split(edges)
	window := max(len(timed)/churnWindowFrac, 1)
	ops := workload.ChurnOps(timed, window)
	out.Ops = len(ops)
	out.Window = window
	out.Inserts, out.Deletes = workload.SplitOps(ops)
	batchSize := workload.AdaptiveBatchSize(len(ops))

	sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, err
	}
	if graph.Deletes(sys) == nil {
		// Documented rejection (LLAMA): no churn numbers, only the row.
		return out, nil
	}
	out.Supported = true
	if err := graph.Batch(sys).InsertBatch(warm); err != nil {
		return out, err
	}
	var res workload.InsertResult
	if g, ok := sys.(*dgap.Graph); ok {
		res, err = workload.ChurnRoutedDGAP(g, ops, churnShards, batchSize)
	} else {
		res, err = workload.ChurnRouted(sys, ops, churnShards, lockScope(name), batchSize)
	}
	if err != nil {
		return out, err
	}
	if err := settle(sys); err != nil {
		return out, err
	}
	out.VirtualNs = res.Elapsed.Nanoseconds()
	if s := res.Elapsed.Seconds(); s > 0 {
		out.ChurnMEPS = float64(out.Ops) / s / 1e6
		out.DeleteMEPS = float64(out.Deletes) / s / 1e6
	}
	if g, ok := sys.(*dgap.Graph); ok {
		// Reclaim at the workload boundary, then read the counters —
		// rebalance-piggybacked compactions during the stream are
		// already included.
		if err := g.Compact(); err != nil {
			return out, err
		}
		st := g.Compaction()
		out.Compactions = st.Compactions
		out.PairsDropped = st.PairsDropped
	}
	out.SpaceBytes = spaceOf(sys)

	// Insert-only twin: the same inserts, nothing deleted.
	app, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, err
	}
	if err := loadBatched(app, edges, batchSize); err != nil {
		return out, err
	}
	out.AppendSpaceBytes = spaceOf(app)

	// DGAP only: a churn twin with compaction disabled — the space a
	// tombstone-accumulating DGAP would be left holding.
	if name == "DGAP" {
		nc, err := buildDGAPNoCompact(nVert, len(edges), o)
		if err != nil {
			return out, err
		}
		if err := graph.Batch(nc).InsertBatch(warm); err != nil {
			return out, err
		}
		if _, err := workload.ChurnRoutedDGAP(nc, ops, churnShards, batchSize); err != nil {
			return out, err
		}
		if err := nc.Compact(); err != nil { // merges only; drops nothing
			return out, err
		}
		out.NoCompactSpaceBytes = spaceOf(nc)
	}
	return out, nil
}

// buildDGAPNoCompact constructs the compaction-disabled DGAP twin.
func buildDGAPNoCompact(nVert, nEdges int, o Options) (*dgap.Graph, error) {
	a := arenaFor(nEdges, o.Latency)
	cfg := dgap.DefaultConfig(nVert, int64(nEdges))
	cfg.NoCompaction = true
	return dgap.New(a, cfg)
}
