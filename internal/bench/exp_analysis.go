package bench

import (
	"fmt"
	"time"

	"dgap/internal/analytics"
	"dgap/internal/csr"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

// kernelFns names the four GAPBS kernels in Table 1.
var kernelNames = []string{"PR", "BFS", "BC", "CC"}

func runKernel(name string, v *graph.View, src graph.V, cfg analytics.Config) time.Duration {
	switch name {
	case "PR":
		_, d := analytics.PageRank(v, analytics.PageRankIters, cfg)
		return d
	case "BFS":
		_, d := analytics.BFS(v, src, cfg)
		return d
	case "BC":
		_, d := analytics.BC(v, src, cfg)
		return d
	default:
		_, d := analytics.CC(v, cfg)
		return d
	}
}

// analysisSource picks the BFS/BC source vertex: the highest-degree
// vertex reaches most of the graph, matching GAPBS's non-trivial
// sources.
func analysisSource(v *graph.View) graph.V {
	best, bestDeg := graph.V(0), -1
	for u := 0; u < v.NumVertices(); u++ {
		if d := v.Degree(graph.V(u)); d > bestDeg {
			best, bestDeg = graph.V(u), d
		}
	}
	return best
}

// loadedViews builds every system (plus the CSR baseline), loads the
// full dataset and returns analysis read Views.
func loadedViews(spec graphgen.Spec, o Options) (map[string]*graph.View, error) {
	edges := dataset(spec, o)
	nVert := graphgen.MaxVertex(edges)
	out := map[string]*graph.View{}
	c, err := csr.Build(arenaFor(len(edges), o.Latency), nVert, edges)
	if err != nil {
		return nil, err
	}
	out["CSR"] = graph.Open(c).View()
	for _, name := range SystemNames {
		sys, _, err := buildSystem(name, nVert, len(edges), pmem.NoLatency())
		if err != nil {
			return nil, err
		}
		// Loading is untimed here; latency off makes the sweep fast. The
		// analysis reads hit the same memory layout either way (reads are
		// not latency-charged; layout effects show up as cache behavior).
		st, err := loadAll(sys, edges)
		if err != nil {
			return nil, err
		}
		out[name] = st.View()
	}
	return out, nil
}

// normalizedKernelTable runs the given kernels over every system and
// prints times normalized to CSR (Figures 7 and 8).
func normalizedKernelTable(o Options, kernels []string, note string) error {
	names := append([]string{"CSR"}, SystemNames...)
	for _, k := range kernels {
		fmt.Fprintf(o.Out, "\n-- %s (normalized to CSR; smaller is better) --\n", k)
		t := &table{header: append([]string{"graph"}, names...)}
		for _, spec := range o.specs() {
			snaps, err := loadedViews(spec, o)
			if err != nil {
				return err
			}
			src := analysisSource(snaps["CSR"])
			base := runKernel(k, snaps["CSR"], src, analytics.Serial)
			row := []string{spec.Name}
			for _, n := range names {
				d := base
				if n != "CSR" {
					d = runKernel(k, snaps[n], src, analytics.Serial)
				}
				row = append(row, f2(float64(d)/float64(base)))
			}
			t.add(row...)
		}
		t.write(o.Out)
	}
	fmt.Fprintln(o.Out, note)
	return nil
}

// Fig7 reproduces Figure 7: PageRank and Connected Components times
// normalized to CSR on PM.
func Fig7(o Options) error {
	o = o.defaults()
	return normalizedKernelTable(o, []string{"PR", "CC"},
		"paper shape: DGAP ~1.3x CSR (37% avg overhead), beating BAL/LLAMA (2-4x) and XPGraph (~2x); GraphOne closest behind DGAP")
}

// Fig8 reproduces Figure 8: BFS and Betweenness Centrality normalized
// to CSR.
func Fig8(o Options) error {
	o = o.defaults()
	return normalizedKernelTable(o, []string{"BFS", "BC"},
		"paper shape: DGAP loses BFS to DRAM-adjacency GraphOne/XPGraph (<1.0 entries) but wins LLAMA by ~4-8x; BC evens out")
}

// Tab4 reproduces Table 4: absolute kernel times at 1 and 16 threads
// for every system. 16-thread runs use virtual-time parallel-for
// accounting (see DESIGN.md).
func Tab4(o Options) error {
	o = o.defaults()
	names := append([]string{"CSR"}, SystemNames...)
	for _, k := range kernelNames {
		fmt.Fprintf(o.Out, "\n-- %s (milliseconds) --\n", k)
		header := []string{"graph"}
		for _, n := range names {
			header = append(header, n+"/T1", n+"/T16")
		}
		t := &table{header: header}
		for _, spec := range o.specs() {
			snaps, err := loadedViews(spec, o)
			if err != nil {
				return err
			}
			src := analysisSource(snaps["CSR"])
			row := []string{spec.Name}
			for _, n := range names {
				t1 := runKernel(k, snaps[n], src, analytics.Serial)
				t16 := runKernel(k, snaps[n], src, analytics.Config{Threads: 16, Virtual: true})
				row = append(row, millis(t1), millis(t16))
			}
			t.add(row...)
		}
		t.write(o.Out)
	}
	fmt.Fprintln(o.Out, "paper shape: near-linear scaling for PR/BFS/BC (up to ~14-15x), CC limited by its serial fraction; ranking matches Figures 7-8")
	return nil
}
