package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/workload"
)

// ingestShards matches the paper's mid-scale writer-thread point; the
// batch size adapts to the stream (workload.AdaptiveBatchSize), since
// section-grouped batching needs batches that put several edges in each
// PMA section and section count grows with the graph.
const ingestShards = 8

// IngestResult is one ingest measurement in the machine-readable dump:
// the same system loading the same timed stream through the scalar
// InsertEdge loop, the single-writer batched path, and the sharded
// router (virtual-time makespan at ingestShards writers).
type IngestResult struct {
	System    string  `json:"system"`
	Graph     string  `json:"graph"`
	Edges     int     `json:"edges"`
	BatchSize int     `json:"batch_size"`
	Shards    int     `json:"shards"`
	ScalarNs  int64   `json:"scalar_ns"`
	BatchedNs int64   `json:"batched_ns"`
	RoutedNs  int64   `json:"routed_ns"`
	Speedup   float64 `json:"speedup"` // scalar_ns / batched_ns (single-writer)
}

// IngestDump is the top-level BENCH_ingest.json document. Scale and
// seed pin the dataset generation so runs across PRs are comparable —
// the write-path counterpart of BENCH_kernels.json.
type IngestDump struct {
	Scale   float64        `json:"scale"`
	Seed    int64          `json:"seed"`
	Results []IngestResult `json:"results"`
}

// IngestJSON measures every dynamic system's ingest throughput on the
// scalar and batched write paths (plus the sharded router) and writes
// the results to path as JSON, giving future PRs a write-path perf
// trajectory to diff against.
func IngestJSON(o Options, path string) error {
	o = o.defaults()
	dump := IngestDump{Scale: o.Scale, Seed: o.Seed}
	for _, spec := range o.specs() {
		edges := dataset(spec, o)
		nVert := graphgen.MaxVertex(edges)
		for _, name := range SystemNames {
			res, err := measureIngest(name, nVert, edges, o)
			if err != nil {
				return fmt.Errorf("ingest %s/%s: %w", spec.Name, name, err)
			}
			res.Graph = spec.Name
			dump.Results = append(dump.Results, res)
		}
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "wrote %d ingest timings to %s\n", len(dump.Results), path)
	return nil
}

// measureIngest loads three fresh instances of one system with the same
// stream: scalar single-writer, batched single-writer, and the sharded
// batch router.
func measureIngest(name string, nVert int, edges []graph.Edge, o Options) (IngestResult, error) {
	batchSize := workload.AdaptiveBatchSize(len(edges))
	out := IngestResult{System: name, BatchSize: batchSize, Shards: ingestShards}
	_, timed := workload.Split(edges)
	out.Edges = len(timed)

	sys, _, err := buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, err
	}
	scalar, err := workload.InsertSerial(sys, edges)
	if err != nil {
		return out, err
	}
	out.ScalarNs = scalar.Elapsed.Nanoseconds()

	sys, _, err = buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, err
	}
	batched, err := workload.InsertBatchedSerial(sys, edges, batchSize)
	if err != nil {
		return out, err
	}
	out.BatchedNs = batched.Elapsed.Nanoseconds()

	sys, _, err = buildSystem(name, nVert, len(edges), o.Latency)
	if err != nil {
		return out, err
	}
	var routed workload.InsertResult
	if g, ok := sys.(*dgap.Graph); ok {
		routed, err = workload.InsertBatchedDGAP(g, edges, ingestShards, batchSize)
	} else {
		routed, err = workload.InsertBatched(sys, edges, ingestShards, lockScope(name), batchSize)
	}
	if err != nil {
		return out, err
	}
	out.RoutedNs = routed.Elapsed.Nanoseconds()

	if out.BatchedNs > 0 {
		out.Speedup = float64(out.ScalarNs) / float64(out.BatchedNs)
	}
	return out, nil
}
