package bench

import (
	"fmt"
	"math/rand"
	"time"

	"dgap/internal/dgap"
	"dgap/internal/graphgen"
	"dgap/internal/pma"
	"dgap/internal/pmem"
)

// Fig1a reproduces Figure 1(a): the write amplification of a naive
// PMA-based mutable CSR (DGAP with the per-section edge log disabled —
// every blocked insert shifts neighbours) while inserting the Orkut
// graph, reported as the ratio of media bytes to inserted edge bytes
// over insertion progress.
func Fig1a(o Options) error {
	o = o.defaults()
	spec, err := graphgen.Preset("orkut")
	if err != nil {
		return err
	}
	edges := dataset(spec, o)
	nVert := graphgen.MaxVertex(edges)

	a := arenaFor(len(edges), pmem.NoLatency()) // counting, not timing
	cfg := dgap.DefaultConfig(nVert, int64(len(edges)))
	cfg.EnableEdgeLog = false
	g, err := dgap.New(a, cfg)
	if err != nil {
		return err
	}
	t := &table{header: []string{"progress", "written MB", "edge MB", "write amplification"}}
	step := len(edges) / 10
	a.ResetStats()
	for i, e := range edges {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			return err
		}
		if (i+1)%step == 0 {
			s := a.Stats()
			// The paper's metric: bytes actually written (including data
			// moved by nearby shifts and rebalances) over edge payload.
			edgeBytes := float64(i+1) * 4
			t.add(fmt.Sprintf("%d%%", (i+1)*100/len(edges)),
				f2(float64(s.LogicalBytes)/1e6), f2(edgeBytes/1e6),
				f2(float64(s.LogicalBytes)/edgeBytes))
		}
	}
	t.write(o.Out)
	fmt.Fprintln(o.Out, "paper shape: amplification up to ~7x for naive PMA-CSR on Orkut")
	return nil
}

// Fig1b reproduces Figure 1(b): inserting a stream of sorted keys into a
// packed memory array placed on DRAM, on PM, and on PM under PMDK-style
// transactions.
func Fig1b(o Options) error {
	o = o.defaults()
	const n = 60_000
	rng := rand.New(rand.NewSource(o.Seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Int63n(1 << 40))
	}
	run := func(lat pmem.LatencyModel, useTx bool) (time.Duration, error) {
		a := pmem.New(256<<20, pmem.WithLatency(lat))
		arr, err := pma.NewArray(a, 1<<14, 512, pma.DefaultThresholds(), useTx)
		if err != nil {
			return 0, err
		}
		t0 := time.Now()
		for _, k := range keys {
			if err := arr.Insert(k); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	t := &table{header: []string{"placement", "insert time (s)", "vs DRAM"}}
	dram, err := run(pmem.NoLatency(), false)
	if err != nil {
		return err
	}
	pm, err := run(o.Latency, false)
	if err != nil {
		return err
	}
	pmtx, err := run(o.Latency, true)
	if err != nil {
		return err
	}
	t.add("DRAM", secs(dram), "1.00x")
	t.add("PM", secs(pm), f2(float64(pm)/float64(dram))+"x")
	t.add("PM-TX", secs(pmtx), f2(float64(pmtx)/float64(dram))+"x")
	t.write(o.Out)
	fmt.Fprintln(o.Out, "paper shape: DRAM << PM << PM-TX (transactions dominate)")
	return nil
}

// Fig1c reproduces Figure 1(c): the latency of writing the same volume
// persistently in sequential, random, and in-place patterns.
func Fig1c(o Options) error {
	o = o.defaults()
	const writes = 20_000
	const stride = pmem.CacheLineSize
	run := func(pattern string) time.Duration {
		a := pmem.New(64<<20, pmem.WithLatency(o.Latency))
		base := a.MustAlloc(writes*stride, pmem.CacheLineSize)
		rng := rand.New(rand.NewSource(o.Seed))
		t0 := time.Now()
		for i := 0; i < writes; i++ {
			var off pmem.Off
			switch pattern {
			case "Seq":
				off = base + pmem.Off(i)*stride
			case "Rnd":
				off = base + pmem.Off(rng.Intn(writes))*stride
			default: // In-place
				off = base
			}
			a.WriteU64(off, uint64(i))
			a.Flush(off, 8)
			a.Fence()
		}
		return time.Since(t0)
	}
	t := &table{header: []string{"pattern", "total (s)", "ns/write"}}
	var seq time.Duration
	for _, p := range []string{"Seq", "Rnd", "In-place"} {
		d := run(p)
		if p == "Seq" {
			seq = d
		}
		t.add(p, secs(d), fmt.Sprintf("%d", d.Nanoseconds()/writes))
	}
	t.write(o.Out)
	fmt.Fprintf(o.Out, "paper shape: in-place ~7x slower than sequential (measured %.1fx)\n",
		float64(run("In-place"))/float64(seq))
	return nil
}
