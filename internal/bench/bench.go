// Package bench regenerates every table and figure of the DGAP paper's
// evaluation (§4) on the emulated persistent-memory substrate. Each
// experiment prints the same rows/series the paper reports; absolute
// numbers differ (different hardware, emulated device, scaled datasets)
// but the shapes — who wins, by what factor, where crossovers fall — are
// the reproduction target recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the Table 2 datasets (1.0 = original sizes, far too
	// large for this environment; the default 0.0005 keeps degree skew
	// and |E|/|V| while fitting in minutes).
	Scale float64
	// Datasets restricts which Table 2 graphs run ("small" = the three
	// the paper uses for component studies; empty = all six).
	Datasets []string
	// Seed makes dataset generation deterministic.
	Seed int64
	// CrashSeed is the base seed for the recovery experiment's chaotic
	// power cuts (pmem.Arena.ChaosCrash); each crash point derives its
	// own seed from it, and failures print the derived seed so a bad
	// interleaving replays exactly. 0 selects a fixed default.
	CrashSeed int64
	// Latency is the PM cost model (DefaultLatency unless overridden).
	Latency pmem.LatencyModel
	// Out receives the experiment's table.
	Out io.Writer
}

// Defaults fills unset fields.
func (o Options) defaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.0005
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.CrashSeed == 0 {
		o.CrashSeed = 9176
	}
	z := pmem.LatencyModel{}
	if o.Latency == z {
		o.Latency = pmem.DefaultLatency()
	}
	return o
}

func (o Options) specs() []graphgen.Spec {
	if len(o.Datasets) == 0 {
		return graphgen.Presets
	}
	if len(o.Datasets) == 1 && o.Datasets[0] == "small" {
		return graphgen.SmallPresets()
	}
	var out []graphgen.Spec
	for _, name := range o.Datasets {
		s, err := graphgen.Preset(name)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// ArtifactPath guards the committed perf artifacts: the BENCH_*.json
// dumps are generated at pinned scales so the cross-PR trajectory stays
// comparable, and a -tiny smoke run silently overwriting one would
// rebase that baseline. Tiny runs are therefore diverted to a
// *_tiny.json sibling (git-ignored); full runs keep the committed name.
func ArtifactPath(name string, tiny bool) string {
	if !tiny {
		return name
	}
	return strings.TrimSuffix(name, ".json") + "_tiny.json"
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) error
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1a", "Figure 1(a): write amplification of naive PMA-CSR", Fig1a},
		{"fig1b", "Figure 1(b): PMA insert on DRAM vs PM vs PM+TX", Fig1b},
		{"fig1c", "Figure 1(c): sequential vs random vs in-place PM write latency", Fig1c},
		{"fig5", "Figure 5: XPGraph insert throughput vs archiving threshold", Fig5},
		{"fig6", "Figure 6: single-writer insert throughput (MEPS)", Fig6},
		{"tab3", "Table 3: insert throughput at 1/8/16 writer threads", Tab3},
		{"fig7", "Figure 7: PageRank and CC time normalized to CSR", Fig7},
		{"fig8", "Figure 8: BFS and BC time normalized to CSR", Fig8},
		{"tab4", "Table 4: kernel times (seconds), 1 and 16 threads", Tab4},
		{"tab5", "Table 5: DGAP component ablation (insert seconds)", Tab5},
		{"fig9", "Figure 9: per-section edge log size sweep", Fig9},
		{"recovery", "Sec 4.4: normal reboot vs crash recovery time", Recovery},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (see Registry)", id)
}

// RunAll executes every experiment.
func RunAll(o Options) error {
	for _, e := range Registry() {
		fmt.Fprintf(o.Out, "\n=== %s — %s ===\n", e.ID, e.Title)
		if err := e.Run(o); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// --- table formatting helpers ---

type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func f2(v float64) string         { return fmt.Sprintf("%.2f", v) }
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
func millis(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6)
}

// arenaFor sizes an arena for a dataset at scale: the dominant consumer
// is DGAP's doubling edge array plus abandoned regions and logs.
func arenaFor(nEdges int, lat pmem.LatencyModel) *pmem.Arena {
	capBytes := nEdges * 96
	if capBytes < 64<<20 {
		capBytes = 64 << 20
	}
	return pmem.New(capBytes, pmem.WithLatency(lat))
}

// genCache avoids regenerating the same dataset across experiments in a
// RunAll sweep.
var genCache = map[string][]graph.Edge{}

func dataset(spec graphgen.Spec, o Options) []graph.Edge {
	key := fmt.Sprintf("%s-%g-%d", spec.Name, o.Scale, o.Seed)
	if e, ok := genCache[key]; ok {
		return e
	}
	e := spec.Generate(o.Scale, o.Seed)
	genCache[key] = e
	return e
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
