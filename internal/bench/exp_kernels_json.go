package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"dgap/internal/analytics"
)

// KernelResult is one kernel timing in the machine-readable benchmark
// dump: the nanoseconds one kernel took over one system's snapshot of
// one dataset, on both read paths.
type KernelResult struct {
	Kernel     string `json:"kernel"`
	System     string `json:"system"`
	Graph      string `json:"graph"`
	BulkNs     int64  `json:"bulk_ns"`
	CallbackNs int64  `json:"callback_ns"`
}

// KernelDump is the top-level BENCH_kernels.json document. Scale and
// seed pin the dataset generation so runs across PRs are comparable.
type KernelDump struct {
	Scale   float64        `json:"scale"`
	Seed    int64          `json:"seed"`
	Results []KernelResult `json:"results"`
}

// KernelJSON times every GAPBS kernel over every system snapshot — on
// the bulk read path and the legacy callback path — and writes the
// results to path as JSON, giving future PRs a perf trajectory to diff
// against.
func KernelJSON(o Options, path string) error {
	o = o.defaults()
	dump := KernelDump{Scale: o.Scale, Seed: o.Seed}
	for _, spec := range o.specs() {
		snaps, err := loadedViews(spec, o)
		if err != nil {
			return err
		}
		src := analysisSource(snaps["CSR"])
		for _, name := range sortedKeys(snaps) {
			for _, k := range kernelNames {
				bulk := runKernel(k, snaps[name], src, analytics.Serial)
				cb := runKernel(k, snaps[name], src, analytics.Config{Threads: 1, Callback: true})
				dump.Results = append(dump.Results, KernelResult{
					Kernel:     k,
					System:     name,
					Graph:      spec.Name,
					BulkNs:     bulk.Nanoseconds(),
					CallbackNs: cb.Nanoseconds(),
				})
			}
		}
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "wrote %d kernel timings to %s\n", len(dump.Results), path)
	return nil
}
