package bench

import (
	"bytes"
	"strings"
	"testing"

	"dgap/internal/pmem"
)

// tinyOptions run experiments at the smallest sensible scale with
// latency injection off, purely to exercise every code path.
func tinyOptions(buf *bytes.Buffer) Options {
	return Options{
		Scale:    0.00002,
		Datasets: []string{"citpatents"},
		Seed:     1,
		Latency:  pmem.LatencyModel{Enabled: true}, // enabled but zero-cost
		Out:      buf,
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range Registry() {
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			o := tinyOptions(&buf)
			if e.ID == "fig9" || e.ID == "tab5" {
				o.Datasets = []string{"citpatents"}
			}
			if err := e.Run(o); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "paper shape") {
				t.Errorf("%s output missing the paper-shape note:\n%s", e.ID, out)
			}
			if strings.Count(out, "\n") < 4 {
				t.Errorf("%s produced no table:\n%s", e.ID, out)
			}
		})
	}
}

func TestFindAndRegistry(t *testing.T) {
	if len(Registry()) != 12 {
		t.Errorf("registry has %d experiments, want 12 (every table+figure)", len(Registry()))
	}
	if _, err := Find("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nonsense"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	tb := &table{header: []string{"a", "long-column"}}
	tb.add("x", "1")
	tb.add("yyyy", "2")
	tb.write(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4", len(lines))
	}
	// Every line is padded to the same width (ignoring the trailing
	// padding of the final cell, which carries no alignment information).
	w := len(strings.TrimRight(lines[0], " "))
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > w {
			t.Errorf("line %d wider than header: %q", i, l)
		}
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("missing separator: %q", lines[1])
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.defaults()
	if o.Scale == 0 || o.Seed == 0 || !o.Latency.Enabled {
		t.Error("defaults not applied")
	}
	if len(Options{Datasets: []string{"small"}}.specs()) != 3 {
		t.Error("'small' must select three datasets")
	}
	if len((Options{}).specs()) != 6 {
		t.Error("empty dataset list must select all six")
	}
}

func TestLockScopeMapping(t *testing.T) {
	for _, name := range SystemNames {
		_ = lockScope(name) // must not panic on any known system
	}
}
