package graph_test

import (
	"errors"
	"math/rand"
	"testing"

	"dgap/internal/graph"
)

// churnSystems builds every dynamic backend empty and returns the ones
// that support deletion (gated on graph.Deletes, like the conformance
// check) alongside the full map.
func churnSystems(t *testing.T, nVert int) map[string]graph.System {
	t.Helper()
	out := map[string]graph.System{}
	for name, sys := range buildAll(t, nVert, nil) {
		if graph.Deletes(sys) != nil {
			out[name] = sys
		}
	}
	if len(out) < 4 {
		t.Fatalf("expected >= 4 deleting backends, have %d", len(out))
	}
	return out
}

// adjacencyMultiset summarizes a snapshot's per-vertex destination
// counts.
func adjacencyMultiset(s graph.Snapshot) []map[graph.V]int {
	return multiset(graph.Adjacency(s))
}

// checkAgainstModel asserts a snapshot exposes exactly the model's live
// multiset, with Degree and NumEdges consistent.
func checkAgainstModel(t *testing.T, name string, s graph.Snapshot, model map[graph.Edge]int) {
	t.Helper()
	got := adjacencyMultiset(s)
	var want int64
	for e, c := range model {
		want += int64(c)
		if int(e.Src) < len(got) && got[e.Src][e.Dst] != c {
			t.Fatalf("%s: edge %d->%d: %d copies, want %d", name, e.Src, e.Dst, got[e.Src][e.Dst], c)
		}
		if c > 0 && int(e.Src) >= len(got) {
			t.Fatalf("%s: vertex %d missing", name, e.Src)
		}
	}
	var visible int64
	for v := range got {
		deg := 0
		for e, c := range got[v] {
			visible += int64(c)
			deg += c
			if model[graph.Edge{Src: graph.V(v), Dst: e}] != c {
				t.Fatalf("%s: phantom edge %d->%d (%d copies)", name, v, e, c)
			}
		}
		if s.Degree(graph.V(v)) != deg {
			t.Fatalf("%s: vertex %d Degree=%d, iterated %d", name, v, s.Degree(graph.V(v)), deg)
		}
	}
	if visible != want {
		t.Fatalf("%s: %d visible edges, model has %d", name, visible, want)
	}
	if s.NumEdges() != want {
		t.Fatalf("%s: NumEdges=%d, model has %d", name, s.NumEdges(), want)
	}
}

// TestChurnConformanceScalar interleaves scalar inserts and deletes —
// duplicates, delete-before-insert, delete-then-reinsert — across every
// deleting backend and checks each against a reference multiset, plus
// the uniform rejection semantics for unmatched deletes.
func TestChurnConformanceScalar(t *testing.T) {
	const V = 48
	for name, sys := range churnSystems(t, V) {
		t.Run(name, func(t *testing.T) {
			del := sys.(graph.Deleter)

			// Delete-before-insert: an edge with no live copy is
			// rejected, on an empty vertex and on one with other live
			// edges.
			if err := del.DeleteEdge(1, 2); !errors.Is(err, graph.ErrEdgeNotFound) {
				t.Fatalf("delete on empty vertex: %v, want ErrEdgeNotFound", err)
			}
			mustIns := func(s, d graph.V) {
				t.Helper()
				if err := sys.InsertEdge(s, d); err != nil {
					t.Fatal(err)
				}
			}
			mustDel := func(s, d graph.V) {
				t.Helper()
				if err := del.DeleteEdge(s, d); err != nil {
					t.Fatal(err)
				}
			}
			mustIns(1, 3)
			if err := del.DeleteEdge(1, 2); !errors.Is(err, graph.ErrEdgeNotFound) {
				t.Fatalf("delete of unmatched dst: %v, want ErrEdgeNotFound", err)
			}
			// The rejected delete must not poison a later insert: the
			// edge inserted after it stays visible.
			mustIns(1, 2)
			model := map[graph.Edge]int{{Src: 1, Dst: 3}: 1, {Src: 1, Dst: 2}: 1}
			checkAgainstModel(t, name, sys.Snapshot(), model)

			// Duplicates: two copies, one delete cancels exactly one.
			mustIns(2, 5)
			mustIns(2, 5)
			mustDel(2, 5)
			model[graph.Edge{Src: 2, Dst: 5}] = 1

			// Delete-then-reinsert: the old tombstone does not cancel
			// the fresh copy.
			mustIns(3, 7)
			mustDel(3, 7)
			mustIns(3, 7)
			model[graph.Edge{Src: 3, Dst: 7}] = 1
			checkAgainstModel(t, name, sys.Snapshot(), model)

			// Randomized churn against the model.
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 600; i++ {
				e := graph.Edge{Src: graph.V(rng.Intn(V)), Dst: graph.V(rng.Intn(V))}
				if rng.Intn(3) == 0 && model[e] > 0 {
					mustDel(e.Src, e.Dst)
					model[e]--
				} else {
					mustIns(e.Src, e.Dst)
					model[e]++
				}
			}
			s := sys.Snapshot()
			checkAgainstModel(t, name, s, model)
			// Bulk and callback read paths agree through tombstones.
			checkBulkMatchesCallback(t, s)
		})
	}
}

// TestChurnConformanceBatched drives the same mixed stream through the
// batched paths — InsertBatch/DeleteBatch segments with duplicates and
// delete-then-reinsert across batch boundaries — and checks the final
// multiset against a scalar-driven twin's model.
func TestChurnConformanceBatched(t *testing.T) {
	const V = 48
	rng := rand.New(rand.NewSource(7))
	model := map[graph.Edge]int{}
	type seg struct {
		del   bool
		edges []graph.Edge
	}
	var segs []seg
	for b := 0; b < 30; b++ {
		del := b%3 == 2 // every third segment deletes
		n := 20 + rng.Intn(40)
		s := seg{del: del}
		for i := 0; i < n; i++ {
			e := graph.Edge{Src: graph.V(rng.Intn(V)), Dst: graph.V(rng.Intn(V))}
			if del {
				if model[e] <= 0 {
					continue // only delete live edges
				}
				model[e]--
			} else {
				if rng.Intn(4) == 0 && len(s.edges) > 0 {
					e = s.edges[rng.Intn(len(s.edges))] // in-batch duplicate
				}
				model[e]++
			}
			s.edges = append(s.edges, e)
		}
		segs = append(segs, s)
	}
	for name, sys := range churnSystems(t, V) {
		t.Run(name, func(t *testing.T) {
			bw := graph.Batch(sys)
			bd := graph.Deletes(sys)
			for _, s := range segs {
				if len(s.edges) == 0 {
					continue
				}
				var err error
				if s.del {
					err = bd.DeleteBatch(s.edges)
				} else {
					err = bw.InsertBatch(s.edges)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			s := sys.Snapshot()
			checkAgainstModel(t, name, s, model)
			checkBulkMatchesCallback(t, s)
		})
	}
}

// TestChurnSnapshotIsolation extends the cross-generation pinning the
// DGAP-only test established to every deleting backend: a snapshot
// taken before a delete keeps seeing the edge, the next generation does
// not, and a batch of deletes landing mid-generation never changes an
// already-taken snapshot.
func TestChurnSnapshotIsolation(t *testing.T) {
	const V = 16
	for name, sys := range churnSystems(t, V) {
		t.Run(name, func(t *testing.T) {
			for _, e := range []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 1, Dst: 2}, {Src: 4, Dst: 5}} {
				if err := sys.InsertEdge(e.Src, e.Dst); err != nil {
					t.Fatal(err)
				}
			}
			before := sys.Snapshot()
			if err := graph.Deletes(sys).DeleteBatch([]graph.Edge{{Src: 1, Dst: 2}, {Src: 4, Dst: 5}}); err != nil {
				t.Fatal(err)
			}
			after := sys.Snapshot()
			if got := countOf(dstsOf(before, 1), 2); got != 2 {
				t.Errorf("pre-delete snapshot sees %d copies of 1->2, want 2", got)
			}
			if before.Degree(4) != 1 {
				t.Errorf("pre-delete snapshot Degree(4)=%d, want 1", before.Degree(4))
			}
			if got := countOf(dstsOf(after, 1), 2); got != 1 {
				t.Errorf("post-delete snapshot sees %d copies of 1->2, want 1", got)
			}
			if after.Degree(4) != 0 {
				t.Errorf("post-delete snapshot Degree(4)=%d, want 0", after.Degree(4))
			}
			checkBulkMatchesCallback(t, before)
			checkBulkMatchesCallback(t, after)
		})
	}
}

func dstsOf(s graph.Snapshot, v graph.V) []graph.V {
	var out []graph.V
	s.Neighbors(v, func(d graph.V) bool { out = append(out, d); return true })
	return out
}

// failingDeleter accepts deletes until failAt have landed, then fails —
// a Deleter-only system (no native batch paths), so graph.Deletes hands
// back the scalar fallback adapter.
type failingDeleter struct {
	failingSys
	deleted int
}

func (f *failingDeleter) DeleteEdge(src, dst graph.V) error {
	if f.deleted >= f.failAt {
		return f.cause
	}
	f.deleted++
	return nil
}

// TestDeleteFallbackNamesFailingEdge: the scalar delete fallback wraps
// a mid-batch failure in graph.BatchError carrying the failing edge's
// index and value, exactly as the insert fallback does — the regression
// this PR fixes (delete-path errors used to bypass the wrapping).
func TestDeleteFallbackNamesFailingEdge(t *testing.T) {
	cause := errors.New("backend refused")
	sys := &failingDeleter{failingSys: failingSys{failAt: 3, cause: cause}}
	batch := make([]graph.Edge, 7)
	for i := range batch {
		batch[i] = graph.Edge{Src: graph.V(i), Dst: graph.V(i + 50)}
	}
	bd := graph.Deletes(sys)
	if bd == nil {
		t.Fatal("graph.Deletes returned nil for a Deleter")
	}
	err := bd.DeleteBatch(batch)
	if err == nil {
		t.Fatal("batch over a failing deleter succeeded")
	}
	var be *graph.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %T does not wrap graph.BatchError: %v", err, err)
	}
	if be.Index != 3 {
		t.Errorf("BatchError.Index = %d, want 3", be.Index)
	}
	if be.Edge != batch[3] {
		t.Errorf("BatchError.Edge = %v, want %v", be.Edge, batch[3])
	}
	if !errors.Is(err, cause) {
		t.Errorf("BatchError does not unwrap to the cause: %v", err)
	}
	if sys.deleted != be.Index {
		t.Errorf("applied prefix %d does not match Index %d", sys.deleted, be.Index)
	}
}
