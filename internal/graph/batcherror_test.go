package graph_test

import (
	"errors"
	"testing"

	"dgap/internal/graph"
)

// failingSys accepts inserts until failAt edges have landed, then
// returns cause for every further insert — a stand-in for a backend
// hitting arena exhaustion mid-batch.
type failingSys struct {
	applied int
	failAt  int
	cause   error
}

func (f *failingSys) Name() string { return "failing" }

func (f *failingSys) InsertEdge(src, dst graph.V) error {
	if f.applied >= f.failAt {
		return f.cause
	}
	f.applied++
	return nil
}

func (f *failingSys) Snapshot() graph.Snapshot { return nil }

// TestBatchFallbackNamesFailingEdge: the scalar fallback adapter wraps
// a mid-batch failure in graph.BatchError carrying the failing edge's
// index and value — parity with workload.ShardError naming the failing
// shard — and the applied prefix matches the index exactly.
func TestBatchFallbackNamesFailingEdge(t *testing.T) {
	cause := errors.New("arena exhausted")
	sys := &failingSys{failAt: 5, cause: cause}
	batch := make([]graph.Edge, 9)
	for i := range batch {
		batch[i] = graph.Edge{Src: graph.V(i), Dst: graph.V(i + 100)}
	}

	err := graph.Batch(sys).InsertBatch(batch)
	if err == nil {
		t.Fatal("batch over a failing system succeeded")
	}
	var be *graph.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %T does not wrap graph.BatchError: %v", err, err)
	}
	if be.Index != 5 {
		t.Errorf("BatchError.Index = %d, want 5", be.Index)
	}
	if be.Edge != batch[5] {
		t.Errorf("BatchError.Edge = %v, want %v", be.Edge, batch[5])
	}
	if !errors.Is(err, cause) {
		t.Errorf("BatchError does not unwrap to the cause: %v", err)
	}
	if sys.applied != be.Index {
		t.Errorf("applied prefix %d does not match Index %d", sys.applied, be.Index)
	}
	if msg := err.Error(); msg == "" || msg == cause.Error() {
		t.Errorf("unhelpful message %q", msg)
	}

	// A clean batch still succeeds.
	sys2 := &failingSys{failAt: 100, cause: cause}
	if err := graph.Batch(sys2).InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
}
