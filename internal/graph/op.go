package graph

// Op is one mutation of an edge stream: an insert, or the deletion of
// one live (Src, Dst) copy. Mixed streams of Ops are the unit of the
// unified mutation surface — Store.Apply and the native Applier fast
// path — and of the workload router's sharded dispatch.
type Op struct {
	Edge Edge
	Del  bool
}

// OpInsert returns the op inserting the directed edge src->dst.
func OpInsert(src, dst V) Op { return Op{Edge: Edge{Src: src, Dst: dst}} }

// OpDelete returns the op cancelling one live src->dst copy.
func OpDelete(src, dst V) Op { return Op{Edge: Edge{Src: src, Dst: dst}, Del: true} }

// Inserts wraps an edge slice as an insert-only op stream.
func Inserts(edges []Edge) []Op {
	ops := make([]Op, len(edges))
	for i, e := range edges {
		ops[i] = Op{Edge: e}
	}
	return ops
}

// SplitOps counts a mixed stream's composition.
func SplitOps(ops []Op) (inserts, deletes int) {
	for _, o := range ops {
		if o.Del {
			deletes++
		} else {
			inserts++
		}
	}
	return inserts, deletes
}

// Applier is the unified bulk mutation surface: one call applies a
// mixed insert/delete stream. Backends that implement it natively
// (DGAP's section-grouped mixed path) process inserts and tombstones of
// one batch together — one lock acquisition, one coalesced flush, one
// fence and one rebalance session per section group — instead of
// splitting the stream into separate insert and delete batches.
// Implementations must be multiset-exact: a delete observes at least
// the same-edge inserts that preceded it in the stream (it may
// additionally observe later ones from the same batch, as the
// insert-first split adapter does), so every final per-(src, dst) live
// count matches a strictly ordered application. DGAP's native path
// preserves full per-source stream order. The ops slice must not be
// retained; on error an arbitrary subset of the batch may have been
// applied.
//
// Store.Apply is the uniform entry point: it uses the native path
// where implemented and otherwise splits the stream onto the legacy
// batch surfaces, inserts first.
type Applier interface {
	ApplyOps(ops []Op) error
}
