package graph

import "sync/atomic"

// SnapshotReleaser is optionally implemented by snapshots that want an
// explicit end-of-life signal — DGAP deregisters the snapshot from the
// outstanding-snapshot counter that gates tombstone compaction. Views
// thread the signal through Release; backends without it rely on
// garbage collection.
type SnapshotReleaser interface {
	ReleaseSnapshot()
}

// View is the read handle consumers iterate a graph through: one
// consistent snapshot with the bulk and sweep fast paths resolved once
// at construction, so analytics kernels and the serving tier stop
// type-asserting per snapshot. A View is also a BulkSnapshot (and a
// Sweeper via Sweep degrading gracefully), so it can stand in wherever
// a snapshot is expected.
//
// Release returns the snapshot's reference to the backend where the
// backend counts them (SnapshotReleaser — DGAP's compaction gate):
// after Release the View must not be read. Release is idempotent, and a
// View that is never released merely delays snapshot-gated maintenance
// until the GC backstop fires; it never blocks correctness.
type View struct {
	snap Snapshot
	bulk BulkSnapshot // native, or the callback adapter
	sw   Sweeper      // nil without native support

	released atomic.Bool
}

// ViewOf resolves a snapshot's fast paths once and returns it as a
// View. Passing an existing View returns it unchanged.
func ViewOf(s Snapshot) *View {
	if v, ok := s.(*View); ok {
		return v
	}
	v := &View{snap: s, bulk: Bulk(s)}
	if sw, ok := s.(Sweeper); ok {
		v.sw = sw
	}
	return v
}

// Snapshot returns the underlying snapshot.
func (v *View) Snapshot() Snapshot { return v.snap }

// NumVertices implements Snapshot.
func (v *View) NumVertices() int { return v.snap.NumVertices() }

// NumEdges implements Snapshot.
func (v *View) NumEdges() int64 { return v.snap.NumEdges() }

// Degree implements Snapshot.
func (v *View) Degree(u V) int { return v.snap.Degree(u) }

// Neighbors implements Snapshot (the per-edge callback path).
func (v *View) Neighbors(u V, fn func(dst V) bool) { v.snap.Neighbors(u, fn) }

// CopyNeighbors implements BulkSnapshot through the path resolved at
// construction: native where the backend has one, the callback adapter
// otherwise.
func (v *View) CopyNeighbors(u V, buf []V) []V { return v.bulk.CopyNeighbors(u, buf) }

// SweepNeighbors implements Sweeper; Sweep is the ergonomic alias.
func (v *View) SweepNeighbors(lo, hi V, buf []V, fn func(u V, dsts []V)) []V {
	return v.Sweep(lo, hi, buf, fn)
}

// Sweep iterates every vertex in [lo, hi) through the fastest resolved
// path — the backend's own Sweeper when present (one lock/epoch
// round-trip per run of vertices), a per-vertex CopyNeighbors loop
// otherwise — and returns the scratch buffer for reuse.
func (v *View) Sweep(lo, hi V, buf []V, fn func(u V, dsts []V)) []V {
	if v.sw != nil {
		return v.sw.SweepNeighbors(lo, hi, buf, fn)
	}
	for u := lo; u < hi; u++ {
		buf = v.bulk.CopyNeighbors(u, buf[:0])
		fn(u, buf)
	}
	return buf
}

// Release drops the View's snapshot reference (SnapshotReleaser, where
// the backend implements it). Idempotent; the View must not be read
// afterwards.
func (v *View) Release() {
	if v.released.CompareAndSwap(false, true) {
		if r, ok := v.snap.(SnapshotReleaser); ok {
			r.ReleaseSnapshot()
		}
	}
}
