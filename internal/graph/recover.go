package graph

import (
	"errors"
	"fmt"
	"time"
)

// ErrRecoveryUnsupported is wrapped by Store.Checkpoint (and by
// serve.Reopen) when the backend has no persistent recovery path —
// DRAM-only systems lose everything on a power cut and cannot pretend
// otherwise.
var ErrRecoveryUnsupported = errors.New("recovery unsupported")

// RecoveryStats reports how an instance attached to its persistent
// image: the graceful fast path reloads a checkpoint dump, the crash
// path replays undo logs and rebuilds metadata from the raw image.
type RecoveryStats struct {
	// Graceful reports the checkpoint fast path: the image carried a
	// NORMAL_SHUTDOWN flag and a metadata dump, so nothing was replayed.
	Graceful bool
	// UndoRangesReplayed counts interrupted-rebalance backup ranges
	// copied back from per-writer undo logs before the image was
	// trusted (crash path only).
	UndoRangesReplayed int64
	// ReplayedOps counts physical entries re-adopted from the image
	// while rebuilding metadata on the crash path: edge-array entries
	// plus checksum-valid edge-log entries.
	ReplayedOps int64
	// DroppedTorn counts torn remnants of un-acknowledged mutation
	// groups the crash path discarded and scrubbed: edge-log entries
	// failing their checksum, entries past a break in a vertex's
	// back-pointer chain, and edge slots orphaned behind a gap.
	DroppedTorn int64
	// AttachTime is the wall-clock duration of the reopen, dominated by
	// the image scan on the crash path.
	AttachTime time.Duration
}

// Recoverable is the capability behind CapRecover: the system persists
// across process lifetimes and can report how it came back.
//
// # Recovery contract
//
// Checkpoint writes a graceful metadata dump and marks the image
// NORMAL_SHUTDOWN, generalizing the shutdown dump Close performs: the
// instance stays fully usable afterwards, and the next mutation
// invalidates the checkpoint crash-safely — the NORMAL_SHUTDOWN flag is
// cleared and persisted before the mutation touches the image, so a
// crash at any point re-enters the replay path rather than trusting a
// stale dump. Reopening a checkpointed image is O(metadata); reopening
// a crashed one replays undo logs, rebuilds metadata from the image,
// and discards torn remnants.
//
// What survives a crash: every acknowledged mutation — an op whose
// Apply/ApplyOps call returned — is durable and visible after reopen.
// Of an in-flight (unacknowledged) batch, a per-source prefix may
// survive: per-source op order is preserved end to end and group
// boundaries are fenced, so recovery never surfaces an op without the
// same source's ops that preceded it in the batch, and never surfaces
// torn garbage (checksums, chain validation and slot scrubbing discard
// partial writes). The Oracle in this package checks exactly this
// contract; serve.Reopen and the crash-point sweeps drive it.
type Recoverable interface {
	// Checkpoint dumps metadata and marks the image NORMAL_SHUTDOWN;
	// the instance stays usable. Checkpoint briefly quiesces writers
	// like a snapshot does; concurrent mutations — including vertex
	// id-space growth — serialize against the dump and re-invalidate
	// the checkpoint crash-safely.
	Checkpoint() error
	// Recovery reports how this instance attached to its image. ok is
	// false for instances created fresh (never reopened); the stats are
	// only meaningful when ok is true.
	Recovery() (RecoveryStats, bool)
}

// Checkpoint runs the backend's graceful checkpoint when it is
// recoverable (CapRecover) and fails wrapping ErrRecoveryUnsupported
// otherwise — truthfully: a DRAM-only backend cannot be made durable by
// wishing.
func (st *Store) Checkpoint() error {
	if st.rc == nil {
		return fmt.Errorf("graph: %s: %w", st.sys.Name(), ErrRecoveryUnsupported)
	}
	return st.rc.Checkpoint()
}

// Recovery reports how the wrapped system attached to its persistent
// image; ok is false when the system is not recoverable or was created
// fresh rather than reopened.
func (st *Store) Recovery() (RecoveryStats, bool) {
	if st.rc == nil {
		return RecoveryStats{}, false
	}
	return st.rc.Recovery()
}
