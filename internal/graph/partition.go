package graph

// Partitioner assigns every vertex to one of n shards. Placement is by
// source vertex: an edge (u, v) lives on Owner(u, n), so a vertex's
// out-adjacency is never split across shards and Degree/Neighbors are
// single-shard reads. Implementations must be pure functions of (v, n):
// the same vertex must map to the same shard for the lifetime of a
// Cluster, and callers may invoke Owner concurrently.
type Partitioner interface {
	Owner(v V, n int) int
}

// DefaultPartitionBlock is the contiguous run of vertex ids BlockCyclic
// keeps on one shard. Large enough that ClusterView.SweepNeighbors can
// hand maximal same-owner ranges to each member's native sweep (keeping
// the per-run amortization backends rely on), small enough that skewed
// id ranges still spread across shards.
const DefaultPartitionBlock V = 64

// BlockCyclic is the default Cluster placement: vertex ids are grouped
// into fixed-size blocks dealt round-robin across shards
// (Owner = (v/Block) % n). Unlike pure modulo hashing it preserves
// contiguous same-owner vertex runs, which is what keeps composite
// sweeps (PageRank, CC) from degrading to per-vertex dispatch.
type BlockCyclic struct {
	// Block is the run length; zero means DefaultPartitionBlock.
	Block V
}

func (p BlockCyclic) Owner(v V, n int) int {
	b := p.Block
	if b == 0 {
		b = DefaultPartitionBlock
	}
	return int((v / b) % V(n))
}

// HashMod is the simplest placement — Owner = v % n — useful when
// adjacent vertex ids are hot and must land on different shards. It
// trades away same-owner runs, so composite sweeps dispatch per vertex.
type HashMod struct{}

func (HashMod) Owner(v V, n int) int { return int(v % V(n)) }

// PartitionOps splits one op stream into n per-shard streams,
// preserving the stream order within every shard. route maps an op
// (and its stream index) to a shard; it is the single partition
// function shared by Cluster dispatch and workload.Router, so the two
// layers can never disagree about placement. Two passes: count, then
// carve one backing array into per-shard slices — no per-op append
// growth.
func PartitionOps(ops []Op, n int, route func(o Op, i int) int) [][]Op {
	parts := make([][]Op, n)
	if n == 1 {
		parts[0] = ops
		return parts
	}
	counts := make([]int, n)
	owners := make([]uint8, len(ops))
	wide := n > 256
	for i, o := range ops {
		sh := route(o, i)
		counts[sh]++
		if !wide {
			owners[i] = uint8(sh)
		}
	}
	backing := make([]Op, len(ops))
	off := 0
	for sh, c := range counts {
		parts[sh] = backing[off : off : off+c]
		off += c
	}
	for i, o := range ops {
		sh := int(owners[i])
		if wide {
			sh = route(o, i)
		}
		parts[sh] = append(parts[sh], o)
	}
	return parts
}

// RouteByResource builds a PartitionOps route from a per-edge resource
// function (e.g. a lock-scope resolver): ops contending on the same
// resource serialize on the same shard.
func RouteByResource(n int, resource func(Edge) int) func(Op, int) int {
	return func(o Op, _ int) int { return resource(o.Edge) % n }
}

// RouteRoundRobin spreads ops across shards by stream position. Only
// valid for order-insensitive streams (insert-only): it ignores the op
// entirely, so a delete routed this way could race its insert.
func RouteRoundRobin(n int) func(Op, int) int {
	return func(_ Op, i int) int { return i % n }
}

// RouteBySrc routes by source vertex, the order-preserving default for
// mixed streams: every op touching vertex u's adjacency lands on the
// same shard in stream order.
func RouteBySrc(n int) func(Op, int) int {
	return func(o Op, _ int) int { return int(o.Edge.Src) % n }
}

// RouteByOwner routes ops with a Partitioner, so external dispatchers
// (workload.Router feeding a Cluster) split streams exactly as the
// Cluster itself would.
func RouteByOwner(n int, p Partitioner) func(Op, int) int {
	return func(o Op, _ int) int { return p.Owner(o.Edge.Src, n) }
}
