package graph_test

import (
	"testing"

	"dgap/internal/bal"
	"dgap/internal/csr"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/graphone"
	"dgap/internal/llama"
	"dgap/internal/pmem"
	"dgap/internal/xpgraph"
)

// buildAll constructs every dynamic system over a fresh arena, loaded
// with the same edge stream.
func buildAll(t *testing.T, nVert int, edges []graph.Edge) map[string]graph.System {
	t.Helper()
	out := map[string]graph.System{}

	{
		a := pmem.New(256 << 20)
		cfg := dgap.DefaultConfig(nVert, int64(len(edges)))
		cfg.SectionSlots = 64
		cfg.ELogSize = 512
		g, err := dgap.New(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out["dgap"] = g
	}
	out["bal"] = bal.New(pmem.New(256<<20), nVert)
	out["llama"] = llama.New(pmem.New(256<<20), nVert, len(edges)/100+1)
	{
		g, err := graphone.New(pmem.New(256<<20), nVert, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		out["graphone"] = g
	}
	{
		g, err := xpgraph.New(pmem.New(256<<20), nVert, xpgraph.Config{Threshold: 128, LogCapEdges: 4096})
		if err != nil {
			t.Fatal(err)
		}
		out["xpgraph"] = g
	}
	for name, sys := range out {
		for _, e := range edges {
			if err := sys.InsertEdge(e.Src, e.Dst); err != nil {
				t.Fatalf("%s: insert: %v", name, err)
			}
		}
	}
	// Flush pending batches so analysis sees everything.
	if l, ok := out["llama"].(*llama.Graph); ok {
		if err := l.Freeze(); err != nil {
			t.Fatal(err)
		}
	}
	if g, ok := out["graphone"].(*graphone.Graph); ok {
		if err := g.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestSystemsAgreeOnEdgeMultisets: every framework must expose exactly
// the inserted edge multiset through its snapshot (order is
// framework-specific; LLAMA iterates newest version first).
func TestSystemsAgreeOnEdgeMultisets(t *testing.T) {
	const V = 150
	edges := graphgen.Uniform(V, 14, 71)
	want := map[graph.V]map[graph.V]int{}
	for _, e := range edges {
		if want[e.Src] == nil {
			want[e.Src] = map[graph.V]int{}
		}
		want[e.Src][e.Dst]++
	}
	for name, sys := range buildAll(t, V, edges) {
		t.Run(name, func(t *testing.T) {
			s := sys.Snapshot()
			if s.NumEdges() != int64(len(edges)) {
				t.Errorf("NumEdges = %d, want %d", s.NumEdges(), len(edges))
			}
			for v := 0; v < V; v++ {
				got := map[graph.V]int{}
				n := 0
				s.Neighbors(graph.V(v), func(d graph.V) bool { got[d]++; n++; return true })
				if s.Degree(graph.V(v)) != n {
					t.Fatalf("vertex %d: Degree=%d but iterated %d", v, s.Degree(graph.V(v)), n)
				}
				for d, c := range want[graph.V(v)] {
					if got[d] != c {
						t.Fatalf("vertex %d->%d: got %d want %d", v, d, got[d], c)
					}
				}
				if len(got) > len(want[graph.V(v)]) {
					t.Fatalf("vertex %d has phantom destinations", v)
				}
			}
		})
	}
}

// TestCSRMatchesStream verifies the static baseline separately (it is
// built, not inserted into).
func TestCSRMatchesStream(t *testing.T) {
	const V = 100
	edges := graphgen.Uniform(V, 10, 73)
	g, err := csr.Build(pmem.New(64<<20), V, edges)
	if err != nil {
		t.Fatal(err)
	}
	adj := graph.Adjacency(g)
	want := map[graph.V]map[graph.V]int{}
	for _, e := range edges {
		if want[e.Src] == nil {
			want[e.Src] = map[graph.V]int{}
		}
		want[e.Src][e.Dst]++
	}
	for v := 0; v < V; v++ {
		got := map[graph.V]int{}
		for _, d := range adj[v] {
			got[d]++
		}
		for d, c := range want[graph.V(v)] {
			if got[d] != c {
				t.Fatalf("vertex %d->%d: got %d want %d", v, d, got[d], c)
			}
		}
	}
	if g.InsertEdge(0, 1) == nil {
		t.Error("CSR must reject inserts")
	}
	if graph.CountEdges(g) != int64(len(edges)) {
		t.Error("CountEdges mismatch")
	}
}

// TestSnapshotStalenessSemantics documents each framework's visibility
// guarantee: DGAP/BAL see everything immediately; LLAMA misses the
// unfrozen batch; GraphOne and XPGraph (DRAM cache) see everything.
func TestSnapshotStalenessSemantics(t *testing.T) {
	const V = 16
	lg := llama.New(pmem.New(64<<20), V, 1000) // batch larger than stream
	for i := 0; i < 10; i++ {
		if err := lg.InsertEdge(graph.V(i), graph.V((i+1)%V)); err != nil {
			t.Fatal(err)
		}
	}
	if got := lg.Snapshot().NumEdges(); got != 10 {
		t.Logf("LLAMA NumEdges reports %d", got)
	}
	visible := graph.CountEdges(lg.Snapshot())
	if visible != 0 {
		t.Errorf("LLAMA unfrozen batch should be invisible to analysis, saw %d edges", visible)
	}
	if err := lg.Freeze(); err != nil {
		t.Fatal(err)
	}
	if visible := graph.CountEdges(lg.Snapshot()); visible != 10 {
		t.Errorf("after Freeze: %d visible, want 10", visible)
	}
}
