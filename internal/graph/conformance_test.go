package graph_test

import (
	"testing"

	"dgap/internal/bal"
	"dgap/internal/csr"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/graphone"
	"dgap/internal/llama"
	"dgap/internal/pmem"
	"dgap/internal/xpgraph"
)

// buildAll constructs every dynamic system over a fresh arena, loaded
// with the same edge stream.
func buildAll(t *testing.T, nVert int, edges []graph.Edge) map[string]graph.System {
	t.Helper()
	out := map[string]graph.System{}

	{
		a := pmem.New(256 << 20)
		cfg := dgap.DefaultConfig(nVert, int64(len(edges)))
		cfg.SectionSlots = 64
		cfg.ELogSize = 512
		g, err := dgap.New(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out["dgap"] = g
	}
	out["bal"] = bal.New(pmem.New(256<<20), nVert)
	out["llama"] = llama.New(pmem.New(256<<20), nVert, len(edges)/100+1)
	{
		g, err := graphone.New(pmem.New(256<<20), nVert, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		out["graphone"] = g
	}
	{
		g, err := xpgraph.New(pmem.New(256<<20), nVert, xpgraph.Config{Threshold: 128, LogCapEdges: 4096})
		if err != nil {
			t.Fatal(err)
		}
		out["xpgraph"] = g
	}
	for name, sys := range out {
		for _, e := range edges {
			if err := sys.InsertEdge(e.Src, e.Dst); err != nil {
				t.Fatalf("%s: insert: %v", name, err)
			}
		}
	}
	// Flush pending batches so analysis sees everything.
	if l, ok := out["llama"].(*llama.Graph); ok {
		if err := l.Freeze(); err != nil {
			t.Fatal(err)
		}
	}
	if g, ok := out["graphone"].(*graphone.Graph); ok {
		if err := g.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestSystemsAgreeOnEdgeMultisets: every framework must expose exactly
// the inserted edge multiset through its snapshot (order is
// framework-specific; LLAMA iterates newest version first).
func TestSystemsAgreeOnEdgeMultisets(t *testing.T) {
	const V = 150
	edges := graphgen.Uniform(V, 14, 71)
	want := map[graph.V]map[graph.V]int{}
	for _, e := range edges {
		if want[e.Src] == nil {
			want[e.Src] = map[graph.V]int{}
		}
		want[e.Src][e.Dst]++
	}
	for name, sys := range buildAll(t, V, edges) {
		t.Run(name, func(t *testing.T) {
			s := sys.Snapshot()
			if s.NumEdges() != int64(len(edges)) {
				t.Errorf("NumEdges = %d, want %d", s.NumEdges(), len(edges))
			}
			for v := 0; v < V; v++ {
				got := map[graph.V]int{}
				n := 0
				s.Neighbors(graph.V(v), func(d graph.V) bool { got[d]++; n++; return true })
				if s.Degree(graph.V(v)) != n {
					t.Fatalf("vertex %d: Degree=%d but iterated %d", v, s.Degree(graph.V(v)), n)
				}
				for d, c := range want[graph.V(v)] {
					if got[d] != c {
						t.Fatalf("vertex %d->%d: got %d want %d", v, d, got[d], c)
					}
				}
				if len(got) > len(want[graph.V(v)]) {
					t.Fatalf("vertex %d has phantom destinations", v)
				}
			}
		})
	}
}

// TestCSRMatchesStream verifies the static baseline separately (it is
// built, not inserted into).
func TestCSRMatchesStream(t *testing.T) {
	const V = 100
	edges := graphgen.Uniform(V, 10, 73)
	g, err := csr.Build(pmem.New(64<<20), V, edges)
	if err != nil {
		t.Fatal(err)
	}
	adj := graph.Adjacency(g)
	want := map[graph.V]map[graph.V]int{}
	for _, e := range edges {
		if want[e.Src] == nil {
			want[e.Src] = map[graph.V]int{}
		}
		want[e.Src][e.Dst]++
	}
	for v := 0; v < V; v++ {
		got := map[graph.V]int{}
		for _, d := range adj[v] {
			got[d]++
		}
		for d, c := range want[graph.V(v)] {
			if got[d] != c {
				t.Fatalf("vertex %d->%d: got %d want %d", v, d, got[d], c)
			}
		}
	}
	if g.InsertEdge(0, 1) == nil {
		t.Error("CSR must reject inserts")
	}
	if graph.CountEdges(g) != int64(len(edges)) {
		t.Error("CountEdges mismatch")
	}
}

// checkBulkMatchesCallback asserts that a snapshot's bulk read path
// (CopyNeighbors and, when implemented, SweepNeighbors) yields exactly
// the destination sequence of the per-edge Neighbors callback — same
// order, same multiplicities — for every vertex.
func checkBulkMatchesCallback(t *testing.T, s graph.Snapshot) {
	t.Helper()
	bs, ok := s.(graph.BulkSnapshot)
	if !ok {
		t.Fatalf("%T does not implement graph.BulkSnapshot natively", s)
	}
	var want, buf []graph.V
	for v := 0; v < s.NumVertices(); v++ {
		want = want[:0]
		s.Neighbors(graph.V(v), func(d graph.V) bool { want = append(want, d); return true })
		buf = bs.CopyNeighbors(graph.V(v), buf[:0])
		if !equalV(want, buf) {
			t.Fatalf("vertex %d: CopyNeighbors = %v, Neighbors = %v", v, buf, want)
		}
	}
	if sw, ok := s.(graph.Sweeper); ok {
		got := make([][]graph.V, s.NumVertices())
		buf = sw.SweepNeighbors(0, graph.V(s.NumVertices()), buf, func(v graph.V, dsts []graph.V) {
			got[v] = append([]graph.V(nil), dsts...)
		})
		for v := 0; v < s.NumVertices(); v++ {
			want = want[:0]
			s.Neighbors(graph.V(v), func(d graph.V) bool { want = append(want, d); return true })
			if !equalV(want, got[v]) {
				t.Fatalf("vertex %d: SweepNeighbors = %v, Neighbors = %v", v, got[v], want)
			}
		}
	}
	// The generic Sweep helper must agree regardless of which path it
	// picks underneath.
	graph.Sweep(bs, 0, graph.V(s.NumVertices()), buf[:0], func(v graph.V, dsts []graph.V) {
		var w []graph.V
		s.Neighbors(v, func(d graph.V) bool { w = append(w, d); return true })
		if !equalV(w, dsts) {
			t.Fatalf("vertex %d: Sweep = %v, Neighbors = %v", v, dsts, w)
		}
	})
}

func equalV(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBulkMatchesCallbackAllSystems cross-checks every backend's native
// BulkSnapshot implementation against its callback Neighbors.
func TestBulkMatchesCallbackAllSystems(t *testing.T) {
	const V = 150
	edges := graphgen.Uniform(V, 14, 71)
	for name, sys := range buildAll(t, V, edges) {
		t.Run(name, func(t *testing.T) {
			checkBulkMatchesCallback(t, sys.Snapshot())
		})
	}
	g, err := csr.Build(pmem.New(64<<20), V, edges)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("csr", func(t *testing.T) {
		checkBulkMatchesCallback(t, g.Snapshot())
	})
}

// TestBulkMatchesCallbackAfterDeletes exercises the DGAP tombstone path:
// snapshots taken after deletions (including deletions that land in the
// edge-log chain) must agree between the bulk and callback readers.
func TestBulkMatchesCallbackAfterDeletes(t *testing.T) {
	const V = 80
	edges := graphgen.Uniform(V, 12, 93)
	a := pmem.New(256 << 20)
	cfg := dgap.DefaultConfig(V, int64(len(edges)))
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	g, err := dgap.New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every third edge; duplicates in the stream make some
	// deletions cancel one of several occurrences, which the tombstone
	// pre-pass must handle identically on both paths.
	for i := 0; i < len(edges); i += 3 {
		if err := g.DeleteEdge(edges[i].Src, edges[i].Dst); err != nil {
			t.Fatal(err)
		}
	}
	checkBulkMatchesCallback(t, g.Snapshot())

	// Interleave more inserts so tombstones coexist with fresh edge-log
	// chain entries, then re-check.
	for i := 1; i < len(edges); i += 4 {
		if err := g.InsertEdge(edges[i].Src, edges[i].Dst); err != nil {
			t.Fatal(err)
		}
	}
	checkBulkMatchesCallback(t, g.Snapshot())
}

// TestDGAPBulkZeroAlloc asserts the tombstone-free DGAP bulk path does
// zero per-vertex allocations once the scratch buffer has grown: the
// paper's in-place analytics claim depends on the read path not touching
// the allocator per edge or per vertex.
func TestDGAPBulkZeroAlloc(t *testing.T) {
	const V = 120
	edges := graphgen.Uniform(V, 16, 5)
	a := pmem.New(256 << 20)
	cfg := dgap.DefaultConfig(V, int64(len(edges)))
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	g, err := dgap.New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	s := g.Snapshot()
	bs, ok := s.(graph.BulkSnapshot)
	if !ok {
		t.Fatal("DGAP snapshot lacks the bulk path")
	}
	buf := make([]graph.V, 0, 4096)
	// Warm up (buffer growth happens here if the cap above were short).
	for v := 0; v < V; v++ {
		buf = bs.CopyNeighbors(graph.V(v), buf[:0])
	}
	allocs := testing.AllocsPerRun(10, func() {
		for v := 0; v < V; v++ {
			buf = bs.CopyNeighbors(graph.V(v), buf[:0])
		}
	})
	if allocs != 0 {
		t.Errorf("CopyNeighbors sweep allocated %.1f times per run, want 0", allocs)
	}
	sw := s.(graph.Sweeper)
	allocs = testing.AllocsPerRun(10, func() {
		buf = sw.SweepNeighbors(0, V, buf, func(graph.V, []graph.V) {})
	})
	if allocs != 0 {
		t.Errorf("SweepNeighbors allocated %.1f times per run, want 0", allocs)
	}
}

// --- batched write path: InsertBatch vs scalar InsertEdge ---

// chunkBatches cuts a stream into batches of the given size.
func chunkBatches(edges []graph.Edge, size int) [][]graph.Edge {
	var out [][]graph.Edge
	for len(edges) > 0 {
		n := size
		if n > len(edges) {
			n = len(edges)
		}
		out = append(out, edges[:n])
		edges = edges[n:]
	}
	return out
}

// withDuplicates appends a resend of every seventh edge, so batch
// streams always contain duplicate edges (which frameworks must store
// as multiset entries, not dedup).
func withDuplicates(edges []graph.Edge) []graph.Edge {
	out := append([]graph.Edge(nil), edges...)
	for i := 0; i < len(edges); i += 7 {
		out = append(out, edges[i])
	}
	return out
}

// multiset summarizes per-vertex destination counts.
func multiset(adj [][]graph.V) []map[graph.V]int {
	out := make([]map[graph.V]int, len(adj))
	for v := range adj {
		out[v] = map[graph.V]int{}
		for _, d := range adj[v] {
			out[v][d]++
		}
	}
	return out
}

// TestBatchMatchesScalarAllSystems is the batch-vs-scalar conformance
// check: for every dynamic backend, a batch-loaded instance (in-order
// batches, duplicates included, driven through graph.Batch) must yield
// a snapshot with exactly the per-vertex destination sequences of a
// scalar-loaded twin. Every backend must also implement
// graph.BatchWriter natively — the fallback adapter is for external
// systems, not the in-tree seven.
func TestBatchMatchesScalarAllSystems(t *testing.T) {
	const V = 150
	edges := withDuplicates(graphgen.Uniform(V, 14, 71))
	scalar := buildAll(t, V, edges)
	batched := buildAllBatched(t, V, chunkBatches(edges, 97))
	for name, sys := range batched {
		t.Run(name, func(t *testing.T) {
			if _, ok := sys.(graph.BatchWriter); !ok {
				t.Fatalf("%T lacks a native InsertBatch", sys)
			}
			want := graph.Adjacency(scalar[name].Snapshot())
			got := graph.Adjacency(sys.Snapshot())
			if len(want) != len(got) {
				t.Fatalf("vertex counts differ: scalar %d, batched %d", len(want), len(got))
			}
			for v := range want {
				if !equalV(want[v], got[v]) {
					t.Fatalf("vertex %d: batched %v, scalar %v", v, got[v], want[v])
				}
			}
		})
	}
}

// TestBatchOutOfOrderDelivery delivers the same batches in a permuted
// order — the sharded router makes no cross-shard ordering promise — and
// checks that every backend still exposes the exact inserted edge
// multiset (per-vertex order may legitimately differ).
func TestBatchOutOfOrderDelivery(t *testing.T) {
	const V = 150
	edges := withDuplicates(graphgen.Uniform(V, 14, 71))
	scalar := buildAll(t, V, edges)
	batches := chunkBatches(edges, 97)
	// Deterministic permutation: reversed pairs of batches.
	perm := make([][]graph.Edge, 0, len(batches))
	for i := len(batches) - 1; i >= 0; i -= 2 {
		if i-1 >= 0 {
			perm = append(perm, batches[i-1])
		}
		perm = append(perm, batches[i])
	}
	batched := buildAllBatched(t, V, perm)
	for name, sys := range batched {
		t.Run(name, func(t *testing.T) {
			want := multiset(graph.Adjacency(scalar[name].Snapshot()))
			got := multiset(graph.Adjacency(sys.Snapshot()))
			for v := range want {
				for d, c := range want[v] {
					if got[v][d] != c {
						t.Fatalf("vertex %d->%d: batched %d, scalar %d", v, d, got[v][d], c)
					}
				}
				if len(got[v]) > len(want[v]) {
					t.Fatalf("vertex %d has phantom destinations", v)
				}
			}
		})
	}
}

// buildAllBatched constructs every dynamic system and loads it through
// the bulk write path, one InsertBatch call per batch.
func buildAllBatched(t *testing.T, nVert int, batches [][]graph.Edge) map[string]graph.System {
	t.Helper()
	nEdges := 0
	for _, b := range batches {
		nEdges += len(b)
	}
	out := map[string]graph.System{}
	{
		a := pmem.New(256 << 20)
		cfg := dgap.DefaultConfig(nVert, int64(nEdges))
		cfg.SectionSlots = 64
		cfg.ELogSize = 512
		g, err := dgap.New(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out["dgap"] = g
	}
	out["bal"] = bal.New(pmem.New(256<<20), nVert)
	out["llama"] = llama.New(pmem.New(256<<20), nVert, nEdges/100+1)
	{
		g, err := graphone.New(pmem.New(256<<20), nVert, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		out["graphone"] = g
	}
	{
		g, err := xpgraph.New(pmem.New(256<<20), nVert, xpgraph.Config{Threshold: 128, LogCapEdges: 4096})
		if err != nil {
			t.Fatal(err)
		}
		out["xpgraph"] = g
	}
	for name, sys := range out {
		bw := graph.Batch(sys)
		for _, b := range batches {
			if err := bw.InsertBatch(b); err != nil {
				t.Fatalf("%s: insert batch: %v", name, err)
			}
		}
	}
	if l, ok := out["llama"].(*llama.Graph); ok {
		if err := l.Freeze(); err != nil {
			t.Fatal(err)
		}
	}
	if g, ok := out["graphone"].(*graphone.Graph); ok {
		if err := g.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestCSRBatchRejects: the static baseline rejects the batched write
// path exactly as it rejects the scalar one.
func TestCSRBatchRejects(t *testing.T) {
	const V = 32
	edges := graphgen.Uniform(V, 4, 11)
	g, err := csr.Build(pmem.New(64<<20), V, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.InsertBatch(edges[:3]) == nil {
		t.Error("CSR must reject batched inserts")
	}
}

// TestBatchFallbackAdapter: a system without native InsertBatch must
// still load correctly through graph.Batch's scalar-loop adapter.
func TestBatchFallbackAdapter(t *testing.T) {
	const V = 64
	edges := graphgen.Uniform(V, 8, 29)
	native := bal.New(pmem.New(64<<20), V)
	for _, e := range edges {
		if err := native.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	wrapped := scalarOnly{bal.New(pmem.New(64<<20), V)}
	bw := graph.Batch(wrapped)
	if _, isNative := any(bw).(*bal.Graph); isNative {
		t.Fatal("adapter expected, got the native system")
	}
	for _, b := range chunkBatches(edges, 13) {
		if err := bw.InsertBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	want := graph.Adjacency(native.Snapshot())
	got := graph.Adjacency(wrapped.Snapshot())
	for v := range want {
		if !equalV(want[v], got[v]) {
			t.Fatalf("vertex %d: adapter %v, native %v", v, got[v], want[v])
		}
	}
}

// scalarOnly hides bal.Graph's native InsertBatch, leaving only the
// graph.System surface.
type scalarOnly struct{ g *bal.Graph }

func (s scalarOnly) Name() string                      { return s.g.Name() }
func (s scalarOnly) InsertEdge(src, dst graph.V) error { return s.g.InsertEdge(src, dst) }
func (s scalarOnly) Snapshot() graph.Snapshot          { return s.g.Snapshot() }

// TestDGAPBatchCrashRecovery crashes DGAP in the middle of an
// InsertBatch — after the first section group's fence, before the rest
// of the batch — and verifies the recovery contract: every edge of
// every acknowledged batch survives, nothing outside the submitted
// stream appears, and the recovered graph stays internally consistent
// and writable.
func TestDGAPBatchCrashRecovery(t *testing.T) {
	const V = 96
	edges := withDuplicates(graphgen.Uniform(V, 12, 17))
	a := pmem.New(256 << 20)
	cfg := dgap.DefaultConfig(V, int64(len(edges)))
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	g, err := dgap.New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := chunkBatches(edges, 64)
	crashAt := len(batches) / 2
	acked := 0
	g.SetCrashHook(func(p string) {
		if p == "batch:group" && acked == crashAt {
			panic("inject-crash")
		}
	})
	crashed := false
	func() {
		defer func() {
			if recover() != nil {
				crashed = true
			}
		}()
		for _, b := range batches {
			if err := g.InsertBatch(b); err != nil {
				t.Fatal(err)
			}
			acked++
		}
	}()
	if !crashed {
		t.Fatal("crash hook never fired")
	}
	if acked != crashAt {
		t.Fatalf("acknowledged %d batches, expected crash at %d", acked, crashAt)
	}

	r, err := dgap.Open(a.Crash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()
	got := multiset(graph.Adjacency(s))
	ackWant := map[graph.Edge]int{}
	for _, b := range batches[:crashAt] {
		for _, e := range b {
			ackWant[e]++
		}
	}
	allWant := map[graph.Edge]int{}
	for _, e := range edges {
		allWant[e]++
	}
	for e, c := range ackWant {
		if got[e.Src][e.Dst] < c {
			t.Errorf("acknowledged edge %d->%d: recovered %d copies, want >= %d",
				e.Src, e.Dst, got[e.Src][e.Dst], c)
		}
	}
	for v := range got {
		for d, c := range got[v] {
			if c > allWant[graph.Edge{Src: graph.V(v), Dst: d}] {
				t.Errorf("phantom edge %d->%d: %d copies recovered, %d ever submitted",
					v, d, c, allWant[graph.Edge{Src: graph.V(v), Dst: d}])
			}
		}
	}
	if n := graph.CountEdges(s); n != s.NumEdges() {
		t.Errorf("recovered snapshot inconsistent: CountEdges %d, NumEdges %d", n, s.NumEdges())
	}
	// The recovered graph must accept further batches.
	if err := r.InsertBatch(edges[:16]); err != nil {
		t.Fatalf("recovered graph rejects batches: %v", err)
	}
	checkBulkMatchesCallback(t, r.Snapshot())
}

// TestSnapshotStalenessSemantics documents each framework's visibility
// guarantee: DGAP/BAL see everything immediately; LLAMA misses the
// unfrozen batch; GraphOne and XPGraph (DRAM cache) see everything.
func TestSnapshotStalenessSemantics(t *testing.T) {
	const V = 16
	lg := llama.New(pmem.New(64<<20), V, 1000) // batch larger than stream
	for i := 0; i < 10; i++ {
		if err := lg.InsertEdge(graph.V(i), graph.V((i+1)%V)); err != nil {
			t.Fatal(err)
		}
	}
	if got := lg.Snapshot().NumEdges(); got != 10 {
		t.Logf("LLAMA NumEdges reports %d", got)
	}
	visible := graph.CountEdges(lg.Snapshot())
	if visible != 0 {
		t.Errorf("LLAMA unfrozen batch should be invisible to analysis, saw %d edges", visible)
	}
	if err := lg.Freeze(); err != nil {
		t.Fatal(err)
	}
	if visible := graph.CountEdges(lg.Snapshot()); visible != 10 {
		t.Errorf("after Freeze: %d visible, want 10", visible)
	}
}
