package graph_test

import (
	"testing"

	"dgap/internal/bal"
	"dgap/internal/csr"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/graphone"
	"dgap/internal/llama"
	"dgap/internal/pmem"
	"dgap/internal/xpgraph"
)

// buildAll constructs every dynamic system over a fresh arena, loaded
// with the same edge stream.
func buildAll(t *testing.T, nVert int, edges []graph.Edge) map[string]graph.System {
	t.Helper()
	out := map[string]graph.System{}

	{
		a := pmem.New(256 << 20)
		cfg := dgap.DefaultConfig(nVert, int64(len(edges)))
		cfg.SectionSlots = 64
		cfg.ELogSize = 512
		g, err := dgap.New(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out["dgap"] = g
	}
	out["bal"] = bal.New(pmem.New(256<<20), nVert)
	out["llama"] = llama.New(pmem.New(256<<20), nVert, len(edges)/100+1)
	{
		g, err := graphone.New(pmem.New(256<<20), nVert, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		out["graphone"] = g
	}
	{
		g, err := xpgraph.New(pmem.New(256<<20), nVert, xpgraph.Config{Threshold: 128, LogCapEdges: 4096})
		if err != nil {
			t.Fatal(err)
		}
		out["xpgraph"] = g
	}
	for name, sys := range out {
		for _, e := range edges {
			if err := sys.InsertEdge(e.Src, e.Dst); err != nil {
				t.Fatalf("%s: insert: %v", name, err)
			}
		}
	}
	// Flush pending batches so analysis sees everything.
	if l, ok := out["llama"].(*llama.Graph); ok {
		if err := l.Freeze(); err != nil {
			t.Fatal(err)
		}
	}
	if g, ok := out["graphone"].(*graphone.Graph); ok {
		if err := g.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestSystemsAgreeOnEdgeMultisets: every framework must expose exactly
// the inserted edge multiset through its snapshot (order is
// framework-specific; LLAMA iterates newest version first).
func TestSystemsAgreeOnEdgeMultisets(t *testing.T) {
	const V = 150
	edges := graphgen.Uniform(V, 14, 71)
	want := map[graph.V]map[graph.V]int{}
	for _, e := range edges {
		if want[e.Src] == nil {
			want[e.Src] = map[graph.V]int{}
		}
		want[e.Src][e.Dst]++
	}
	for name, sys := range buildAll(t, V, edges) {
		t.Run(name, func(t *testing.T) {
			s := sys.Snapshot()
			if s.NumEdges() != int64(len(edges)) {
				t.Errorf("NumEdges = %d, want %d", s.NumEdges(), len(edges))
			}
			for v := 0; v < V; v++ {
				got := map[graph.V]int{}
				n := 0
				s.Neighbors(graph.V(v), func(d graph.V) bool { got[d]++; n++; return true })
				if s.Degree(graph.V(v)) != n {
					t.Fatalf("vertex %d: Degree=%d but iterated %d", v, s.Degree(graph.V(v)), n)
				}
				for d, c := range want[graph.V(v)] {
					if got[d] != c {
						t.Fatalf("vertex %d->%d: got %d want %d", v, d, got[d], c)
					}
				}
				if len(got) > len(want[graph.V(v)]) {
					t.Fatalf("vertex %d has phantom destinations", v)
				}
			}
		})
	}
}

// TestCSRMatchesStream verifies the static baseline separately (it is
// built, not inserted into).
func TestCSRMatchesStream(t *testing.T) {
	const V = 100
	edges := graphgen.Uniform(V, 10, 73)
	g, err := csr.Build(pmem.New(64<<20), V, edges)
	if err != nil {
		t.Fatal(err)
	}
	adj := graph.Adjacency(g)
	want := map[graph.V]map[graph.V]int{}
	for _, e := range edges {
		if want[e.Src] == nil {
			want[e.Src] = map[graph.V]int{}
		}
		want[e.Src][e.Dst]++
	}
	for v := 0; v < V; v++ {
		got := map[graph.V]int{}
		for _, d := range adj[v] {
			got[d]++
		}
		for d, c := range want[graph.V(v)] {
			if got[d] != c {
				t.Fatalf("vertex %d->%d: got %d want %d", v, d, got[d], c)
			}
		}
	}
	if g.InsertEdge(0, 1) == nil {
		t.Error("CSR must reject inserts")
	}
	if graph.CountEdges(g) != int64(len(edges)) {
		t.Error("CountEdges mismatch")
	}
}

// checkBulkMatchesCallback asserts that a snapshot's bulk read path
// (CopyNeighbors and, when implemented, SweepNeighbors) yields exactly
// the destination sequence of the per-edge Neighbors callback — same
// order, same multiplicities — for every vertex.
func checkBulkMatchesCallback(t *testing.T, s graph.Snapshot) {
	t.Helper()
	bs, ok := s.(graph.BulkSnapshot)
	if !ok {
		t.Fatalf("%T does not implement graph.BulkSnapshot natively", s)
	}
	var want, buf []graph.V
	for v := 0; v < s.NumVertices(); v++ {
		want = want[:0]
		s.Neighbors(graph.V(v), func(d graph.V) bool { want = append(want, d); return true })
		buf = bs.CopyNeighbors(graph.V(v), buf[:0])
		if !equalV(want, buf) {
			t.Fatalf("vertex %d: CopyNeighbors = %v, Neighbors = %v", v, buf, want)
		}
	}
	if sw, ok := s.(graph.Sweeper); ok {
		got := make([][]graph.V, s.NumVertices())
		buf = sw.SweepNeighbors(0, graph.V(s.NumVertices()), buf, func(v graph.V, dsts []graph.V) {
			got[v] = append([]graph.V(nil), dsts...)
		})
		for v := 0; v < s.NumVertices(); v++ {
			want = want[:0]
			s.Neighbors(graph.V(v), func(d graph.V) bool { want = append(want, d); return true })
			if !equalV(want, got[v]) {
				t.Fatalf("vertex %d: SweepNeighbors = %v, Neighbors = %v", v, got[v], want)
			}
		}
	}
	// The generic Sweep helper must agree regardless of which path it
	// picks underneath.
	graph.Sweep(bs, 0, graph.V(s.NumVertices()), buf[:0], func(v graph.V, dsts []graph.V) {
		var w []graph.V
		s.Neighbors(v, func(d graph.V) bool { w = append(w, d); return true })
		if !equalV(w, dsts) {
			t.Fatalf("vertex %d: Sweep = %v, Neighbors = %v", v, dsts, w)
		}
	})
}

func equalV(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBulkMatchesCallbackAllSystems cross-checks every backend's native
// BulkSnapshot implementation against its callback Neighbors.
func TestBulkMatchesCallbackAllSystems(t *testing.T) {
	const V = 150
	edges := graphgen.Uniform(V, 14, 71)
	for name, sys := range buildAll(t, V, edges) {
		t.Run(name, func(t *testing.T) {
			checkBulkMatchesCallback(t, sys.Snapshot())
		})
	}
	g, err := csr.Build(pmem.New(64<<20), V, edges)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("csr", func(t *testing.T) {
		checkBulkMatchesCallback(t, g.Snapshot())
	})
}

// TestBulkMatchesCallbackAfterDeletes exercises the DGAP tombstone path:
// snapshots taken after deletions (including deletions that land in the
// edge-log chain) must agree between the bulk and callback readers.
func TestBulkMatchesCallbackAfterDeletes(t *testing.T) {
	const V = 80
	edges := graphgen.Uniform(V, 12, 93)
	a := pmem.New(256 << 20)
	cfg := dgap.DefaultConfig(V, int64(len(edges)))
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	g, err := dgap.New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every third edge; duplicates in the stream make some
	// deletions cancel one of several occurrences, which the tombstone
	// pre-pass must handle identically on both paths.
	for i := 0; i < len(edges); i += 3 {
		if err := g.DeleteEdge(edges[i].Src, edges[i].Dst); err != nil {
			t.Fatal(err)
		}
	}
	checkBulkMatchesCallback(t, g.Snapshot())

	// Interleave more inserts so tombstones coexist with fresh edge-log
	// chain entries, then re-check.
	for i := 1; i < len(edges); i += 4 {
		if err := g.InsertEdge(edges[i].Src, edges[i].Dst); err != nil {
			t.Fatal(err)
		}
	}
	checkBulkMatchesCallback(t, g.Snapshot())
}

// TestDGAPBulkZeroAlloc asserts the tombstone-free DGAP bulk path does
// zero per-vertex allocations once the scratch buffer has grown: the
// paper's in-place analytics claim depends on the read path not touching
// the allocator per edge or per vertex.
func TestDGAPBulkZeroAlloc(t *testing.T) {
	const V = 120
	edges := graphgen.Uniform(V, 16, 5)
	a := pmem.New(256 << 20)
	cfg := dgap.DefaultConfig(V, int64(len(edges)))
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	g, err := dgap.New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	s := g.Snapshot()
	bs, ok := s.(graph.BulkSnapshot)
	if !ok {
		t.Fatal("DGAP snapshot lacks the bulk path")
	}
	buf := make([]graph.V, 0, 4096)
	// Warm up (buffer growth happens here if the cap above were short).
	for v := 0; v < V; v++ {
		buf = bs.CopyNeighbors(graph.V(v), buf[:0])
	}
	allocs := testing.AllocsPerRun(10, func() {
		for v := 0; v < V; v++ {
			buf = bs.CopyNeighbors(graph.V(v), buf[:0])
		}
	})
	if allocs != 0 {
		t.Errorf("CopyNeighbors sweep allocated %.1f times per run, want 0", allocs)
	}
	sw := s.(graph.Sweeper)
	allocs = testing.AllocsPerRun(10, func() {
		buf = sw.SweepNeighbors(0, V, buf, func(graph.V, []graph.V) {})
	})
	if allocs != 0 {
		t.Errorf("SweepNeighbors allocated %.1f times per run, want 0", allocs)
	}
}

// TestSnapshotStalenessSemantics documents each framework's visibility
// guarantee: DGAP/BAL see everything immediately; LLAMA misses the
// unfrozen batch; GraphOne and XPGraph (DRAM cache) see everything.
func TestSnapshotStalenessSemantics(t *testing.T) {
	const V = 16
	lg := llama.New(pmem.New(64<<20), V, 1000) // batch larger than stream
	for i := 0; i < 10; i++ {
		if err := lg.InsertEdge(graph.V(i), graph.V((i+1)%V)); err != nil {
			t.Fatal(err)
		}
	}
	if got := lg.Snapshot().NumEdges(); got != 10 {
		t.Logf("LLAMA NumEdges reports %d", got)
	}
	visible := graph.CountEdges(lg.Snapshot())
	if visible != 0 {
		t.Errorf("LLAMA unfrozen batch should be invisible to analysis, saw %d edges", visible)
	}
	if err := lg.Freeze(); err != nil {
		t.Fatal(err)
	}
	if visible := graph.CountEdges(lg.Snapshot()); visible != 10 {
		t.Errorf("after Freeze: %d visible, want 10", visible)
	}
}
