package graph_test

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"dgap/internal/analytics"
	"dgap/internal/graph"
)

// churnPair is one logical mirrored event: both directions of an
// undirected edge, inserted or deleted together. The consistency
// property under test is exactly that no composite snapshot ever sees
// one direction without the other, so the generator keeps every pair
// whole and the drivers keep pairs inside one ApplyOps batch.
type churnPair struct {
	u, v graph.V
	del  bool
}

func (p churnPair) ops() []graph.Op {
	if p.del {
		return []graph.Op{graph.OpDelete(p.u, p.v), graph.OpDelete(p.v, p.u)}
	}
	return []graph.Op{graph.OpInsert(p.u, p.v), graph.OpInsert(p.v, p.u)}
}

// mirroredChurn generates nEvents mirrored events over nVert vertices:
// a sliding window of live undirected edges, each event inserting a
// fresh edge or deleting the oldest live one.
func mirroredChurn(r *rand.Rand, nVert, nEvents int) []churnPair {
	var pairs []churnPair
	var live []churnPair
	for len(pairs) < nEvents {
		if len(live) > 24 && r.Intn(2) == 0 {
			p := live[0]
			live = live[1:]
			p.del = true
			pairs = append(pairs, p)
			continue
		}
		u := graph.V(r.Intn(nVert))
		v := graph.V(r.Intn(nVert - 1))
		if v >= u {
			v++
		}
		p := churnPair{u: u, v: v}
		live = append(live, p)
		pairs = append(pairs, p)
	}
	return pairs
}

func pairOps(pairs []churnPair) []graph.Op {
	ops := make([]graph.Op, 0, 2*len(pairs))
	for _, p := range pairs {
		ops = append(ops, p.ops()...)
	}
	return ops
}

// sortedAdj returns the snapshot's adjacency with every list sorted,
// for order-insensitive comparison.
func sortedAdj(s graph.Snapshot) [][]graph.V {
	adj := graph.Adjacency(s)
	for _, l := range adj {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return adj
}

// TestClusterMatchesOracleAtCuts is the seeded cross-shard consistency
// property test: identical mixed mirrored churn is applied to a Cluster
// and to a single-Store oracle in matching batches, and at every cut
// the composite ClusterView must agree with the oracle view — raw
// adjacency, k-hop reachability (exact), PageRank (up to float
// summation order) and connected components (up to label renaming).
func TestClusterMatchesOracleAtCuts(t *testing.T) {
	for _, tc := range []struct {
		shards int
		seed   int64
		part   graph.Partitioner
	}{
		{2, 7, nil},
		{3, 23, graph.BlockCyclic{Block: 8}},
		{4, 41, graph.HashMod{}},
	} {
		t.Run("", func(t *testing.T) {
			const nVert = 96
			cluster := graph.Open(dgapCluster(t, tc.shards, nVert, 8192, tc.part))
			oracle := graph.Open(dgapMember(t, nVert, 8192))

			r := rand.New(rand.NewSource(tc.seed))
			pairs := mirroredChurn(r, nVert, 1200)
			const cuts = 5
			for c := 0; c < cuts; c++ {
				lo, hi := c*len(pairs)/cuts, (c+1)*len(pairs)/cuts
				for lo < hi {
					n := min(1+r.Intn(64), hi-lo)
					ops := pairOps(pairs[lo : lo+n])
					if err := cluster.Apply(ops); err != nil {
						t.Fatal(err)
					}
					if err := oracle.Apply(ops); err != nil {
						t.Fatal(err)
					}
					lo += n
				}
				vc, vo := cluster.View(), oracle.View()
				compareViews(t, vc, vo, r)
				vc.Release()
				vo.Release()
			}
		})
	}
}

func compareViews(t *testing.T, vc, vo *graph.View, r *rand.Rand) {
	t.Helper()
	if vc.NumEdges() != vo.NumEdges() {
		t.Fatalf("NumEdges: cluster %d, oracle %d", vc.NumEdges(), vo.NumEdges())
	}
	ac, ao := sortedAdj(vc.Snapshot()), sortedAdj(vo.Snapshot())
	for v := range ao {
		if !equalV(ac[v], ao[v]) {
			t.Fatalf("adjacency(%d): cluster %v, oracle %v", v, ac[v], ao[v])
		}
	}
	for i := 0; i < 4; i++ {
		src := graph.V(r.Intn(vo.NumVertices()))
		k := 1 + i%3
		nc, _ := analytics.KHop(vc, src, k, analytics.Serial)
		no, _ := analytics.KHop(vo, src, k, analytics.Serial)
		if nc != no {
			t.Fatalf("KHop(%d, k=%d): cluster %d, oracle %d", src, k, nc, no)
		}
	}
	rc, _ := analytics.PageRank(vc, analytics.PageRankIters, analytics.Serial)
	ro, _ := analytics.PageRank(vo, analytics.PageRankIters, analytics.Serial)
	for v := range ro {
		if d := math.Abs(rc[v] - ro[v]); d > 1e-9 {
			t.Fatalf("PageRank(%d): cluster %g, oracle %g (|Δ|=%g)", v, rc[v], ro[v], d)
		}
	}
	cc, _ := analytics.CC(vc, analytics.Serial)
	co, _ := analytics.CC(vo, analytics.Serial)
	fwd := map[graph.V]graph.V{}
	rev := map[graph.V]graph.V{}
	for v := range co {
		if m, ok := fwd[cc[v]]; ok && m != co[v] {
			t.Fatalf("CC label %d maps to both %d and %d", cc[v], m, co[v])
		}
		if m, ok := rev[co[v]]; ok && m != cc[v] {
			t.Fatalf("CC labels %d and %d both map to %d", m, cc[v], co[v])
		}
		fwd[cc[v]] = co[v]
		rev[co[v]] = cc[v]
	}
}

// TestClusterCutBracketUnderRace drives mirrored churn through a
// Cluster while concurrent readers repeatedly pin composite views: the
// cut bracket guarantees every snapshot observes whole ApplyOps batches
// only, so every view must be perfectly mirror-symmetric — an edge's
// insert on one shard is never visible while its mirror on another
// shard is still in flight. Run under -race in CI.
func TestClusterCutBracketUnderRace(t *testing.T) {
	const nVert = 64
	st := graph.Open(dgapCluster(t, 2, nVert, 1<<16, nil))
	pairs := mirroredChurn(rand.New(rand.NewSource(99)), nVert, 1500)

	// The stream replays whole rounds until the readers have observed
	// enough cuts: replaying mirrored pairs keeps every intermediate
	// multiset mirror-symmetric, so the invariant holds across rounds.
	const wantSnaps = 24
	var snaps atomic.Int64
	rounds := 0
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		r := rand.New(rand.NewSource(100))
		for ; rounds < 200 && snaps.Load() < wantSnaps; rounds++ {
			for lo := 0; lo < len(pairs); {
				n := min(1+r.Intn(32), len(pairs)-lo)
				if err := st.Apply(pairOps(pairs[lo : lo+n])); err != nil {
					t.Error(err)
					return
				}
				lo += n
			}
		}
	}()

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				v := st.View()
				if v.NumEdges()%2 != 0 {
					t.Errorf("odd composite edge count %d: a mirrored batch is half-visible", v.NumEdges())
				}
				counts := map[graph.Edge]int{}
				for u, l := range graph.Adjacency(v.Snapshot()) {
					for _, d := range l {
						counts[graph.Edge{Src: graph.V(u), Dst: d}]++
					}
				}
				for e, n := range counts {
					if m := counts[graph.Edge{Src: e.Dst, Dst: e.Src}]; m != n {
						t.Errorf("mirror asymmetry at cut: %d→%d ×%d but %d→%d ×%d",
							e.Src, e.Dst, n, e.Dst, e.Src, m)
						break
					}
				}
				v.Release()
				snaps.Add(1)
			}
		}()
	}
	wg.Wait()
	if snaps.Load() == 0 {
		t.Fatal("no composite snapshots taken while churn ran; test is vacuous")
	}

	// Final state equals the scalar oracle of the replayed stream.
	o := graph.NewOracle()
	for i := 0; i < rounds; i++ {
		if err := o.Apply(pairOps(pairs)); err != nil {
			t.Fatal(err)
		}
	}
	v := st.View()
	defer v.Release()
	adj := sortedAdj(v.Snapshot())
	for u := range adj {
		want := append([]graph.V(nil), o.Neighbors(graph.V(u))...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !equalV(adj[u], want) {
			t.Fatalf("final adjacency(%d): cluster %v, oracle %v", u, adj[u], want)
		}
	}
}
