package graph

import "sync"

// Delta is the op stream applied between two generation cuts of a
// Journal — the contract incremental kernel maintainers consume. When
// Overflow is set the ops are unavailable (the journal's window was
// exceeded, a cut predates an invalidation, or the cuts are out of
// order) and the consumer must fall back to a full recompute over the
// current view; Ops is nil in that case.
//
// A valid delta is a multiset contract, not a sequence contract: the
// ops between the two cuts are all present, each exactly once, but
// their order may differ from backend application order when producers
// record concurrently (the serve tier's sharded ingest does). Every
// maintainer in internal/analytics is order-insensitive for exactly
// this reason — it folds a delta into per-vertex net multiset changes
// before touching any state.
type Delta struct {
	// Ops are the mutations applied between the From and To cuts.
	// nil when Overflow is set. The slice is a copy owned by the caller.
	Ops []Op
	// From and To are the journal cut sequence numbers bounding the
	// delta: ops with sequence in [From, To).
	From, To uint64
	// Overflow marks the delta as unavailable: the window between the
	// cuts was trimmed, invalidated, or never existed. Consumers must
	// recompute from the full view.
	Overflow bool
}

// Journal is a bounded log of the graph.Op stream flowing through a
// Store (or any other Applier the producer wraps), cut into generations
// by its consumers. It is the seam between the mutation path — which
// appends ops as batches are acknowledged — and incremental analytics,
// which ask for the exact delta between the generation they maintain
// and the generation they are moving to.
//
// The journal is bounded: it retains at most the configured window of
// ops, trimming the oldest beyond it. A consumer whose last cut has
// been trimmed gets Delta.Overflow instead of a partial stream, which
// is the signal to recompute from scratch — bounded memory traded for
// an occasional full refresh, never for a wrong incremental one.
//
// Invalidate poisons everything recorded so far: deltas from any cut
// taken before the invalidation come back Overflow. Producers call it
// when the backend mutated in a way the recorded stream does not
// explain — an Apply error (an arbitrary subset of the batch may have
// landed), or any out-of-band mutation. Store.Apply, once a journal is
// attached with Store.Watch, does both halves of this automatically.
//
// Record, Cut, Between and Invalidate are individually safe for
// concurrent use. What the journal cannot provide by itself is
// atomicity between recording and snapshotting: an op applied to the
// backend but recorded after a concurrent Cut-plus-snapshot would leave
// that snapshot ahead of its cut. Producers that need exact deltas
// bracket {apply, Record} and {snapshot, Cut} in their own critical
// sections — see serve.Server, which does this so lease-generation
// deltas are exact even under sharded concurrent ingest.
type Journal struct {
	mu    sync.Mutex
	limit int
	ops   []Op   // ops[i] has sequence base+i
	base  uint64 // sequence of ops[0]
	next  uint64 // sequence the next recorded op gets
	// invalid is the sequence at the latest Invalidate: cuts taken
	// before it cannot anchor a valid delta.
	invalid uint64
	// invalidations and overflows count Invalidate calls and Overflow
	// answers handed out by Between — the journal's health counters
	// (every overflow costs a consumer one full recompute).
	invalidations int64
	overflows     int64
}

// JournalStats is a point-in-time snapshot of a journal's occupancy and
// health counters, the shape the observability registry exposes as
// graph.journal.* instruments.
type JournalStats struct {
	// Len is the current op occupancy (at most Window).
	Len int
	// Window is the configured op capacity.
	Window int
	// Recorded is the total ops ever recorded, including trimmed ones.
	Recorded int64
	// Invalidations counts Invalidate calls.
	Invalidations int64
	// Overflows counts Between answers that came back Overflow — each
	// one cost some consumer a full recompute.
	Overflows int64
}

// DefaultJournalWindow is the op window NewJournal(0) selects: large
// enough to span many lease generations of serve-tier traffic, small
// enough (~¾ MB of ops) to be a rounding error next to any graph.
const DefaultJournalWindow = 1 << 16

// NewJournal returns a journal retaining at most window ops
// (0 selects DefaultJournalWindow).
func NewJournal(window int) *Journal {
	if window <= 0 {
		window = DefaultJournalWindow
	}
	return &Journal{limit: window}
}

// Window returns the journal's op capacity.
func (j *Journal) Window() int { return j.limit }

// Record appends an acknowledged op batch to the log, trimming the
// oldest ops beyond the window. Call it only for batches the backend
// has durably applied — a failed batch is Invalidate's job.
func (j *Journal) Record(ops []Op) {
	if len(ops) == 0 {
		return
	}
	j.mu.Lock()
	j.ops = append(j.ops, ops...)
	j.next += uint64(len(ops))
	if over := len(j.ops) - j.limit; over > 0 {
		j.base += uint64(over)
		// Slide rather than re-slice so trimmed ops do not pin the
		// backing array forever.
		n := copy(j.ops, j.ops[over:])
		j.ops = j.ops[:n]
	}
	j.mu.Unlock()
}

// Invalidate marks everything recorded so far as untrustworthy: the
// backend changed in a way the log does not explain (a failed Apply
// leaves an arbitrary subset of its batch behind; an out-of-band
// mutation leaves no trace at all). Deltas anchored at cuts taken
// before the invalidation come back Overflow; cuts taken after are
// clean.
func (j *Journal) Invalidate() {
	j.mu.Lock()
	j.invalid = j.next
	j.invalidations++
	j.mu.Unlock()
}

// Stats snapshots the journal's occupancy and health counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		Len:           len(j.ops),
		Window:        j.limit,
		Recorded:      int64(j.next),
		Invalidations: j.invalidations,
		Overflows:     j.overflows,
	}
}

// Cut marks a generation boundary at the current position of the
// stream and returns its sequence number. Consumers take one cut per
// snapshot generation and later ask Between(prev, cur) for the exact
// ops separating them.
func (j *Journal) Cut() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Between returns the delta between two cuts: the ops recorded in
// [from, to). The delta comes back Overflow when the window no longer
// holds it — from was trimmed past, an Invalidate landed at or after
// from, or the cuts are out of order (a consumer trying to rewind).
func (j *Journal) Between(from, to uint64) Delta {
	d := Delta{From: from, To: to}
	j.mu.Lock()
	defer j.mu.Unlock()
	if from > to || from < j.base || from < j.invalid || to > j.next {
		d.Overflow = true
		j.overflows++
		return d
	}
	if from == to {
		return d
	}
	d.Ops = make([]Op, to-from)
	copy(d.Ops, j.ops[from-j.base:to-j.base])
	return d
}
