package graph_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dgap/internal/bal"
	"dgap/internal/chunkadj"
	"dgap/internal/csr"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/graphone"
	"dgap/internal/llama"
	"dgap/internal/pmem"
	"dgap/internal/xpgraph"
)

// chunkSys adapts the chunked DRAM adjacency (the structure GraphOne
// and XPGraph build on) into a graph.System, making it the seventh
// backend of the capability conformance sweep: a scalar-only Deleter
// with a native bulk snapshot and no batch surfaces — the profile the
// Store's fallback adapters exist for.
type chunkSys struct{ a *chunkadj.Adj }

func (c chunkSys) Name() string { return "chunkadj" }

func (c chunkSys) InsertEdge(src, dst graph.V) error {
	c.a.Ensure(int(max(src, dst)) + 1)
	c.a.Append(src, dst)
	return nil
}

func (c chunkSys) DeleteEdge(src, dst graph.V) error {
	if int(src) >= c.a.NumVertices() || !c.a.Delete(src, dst) {
		return graph.ErrEdgeNotFound
	}
	return nil
}

func (c chunkSys) Snapshot() graph.Snapshot { return c.a.Snapshot() }

// storeBackend is one backend under the capability conformance sweep.
type storeBackend struct {
	name string
	// build returns a fresh empty instance (CSR: prebuilt, static).
	build func(t *testing.T, nVert, nEdges int) graph.System
	// settle flushes framework-internal batches before reads.
	settle func(t *testing.T, sys graph.System)
	// caps is the expected — and pinned — capability bitset.
	caps graph.Caps
}

func storeBackends() []storeBackend {
	noop := func(*testing.T, graph.System) {}
	return []storeBackend{
		{
			name: "dgap",
			build: func(t *testing.T, nVert, nEdges int) graph.System {
				cfg := dgap.DefaultConfig(nVert, int64(nEdges))
				cfg.SectionSlots = 64
				cfg.ELogSize = 512
				g, err := dgap.New(pmem.New(256<<20), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return g
			},
			settle: noop,
			caps: graph.CapBatch | graph.CapDelete | graph.CapBatchDelete |
				graph.CapApply | graph.CapBulk | graph.CapSweep | graph.CapClose |
				graph.CapRecover,
		},
		{
			name: "bal",
			build: func(t *testing.T, nVert, nEdges int) graph.System {
				return bal.New(pmem.New(256<<20), nVert)
			},
			settle: noop,
			caps:   graph.CapBatch | graph.CapDelete | graph.CapBatchDelete | graph.CapBulk,
		},
		{
			name: "llama",
			build: func(t *testing.T, nVert, nEdges int) graph.System {
				return llama.New(pmem.New(256<<20), nVert, nEdges/50+1)
			},
			settle: func(t *testing.T, sys graph.System) {
				if err := sys.(*llama.Graph).Freeze(); err != nil {
					t.Fatal(err)
				}
			},
			caps: graph.CapBatch | graph.CapBulk,
		},
		{
			name: "graphone",
			build: func(t *testing.T, nVert, nEdges int) graph.System {
				g, err := graphone.New(pmem.New(256<<20), nVert, 1<<10)
				if err != nil {
					t.Fatal(err)
				}
				return g
			},
			settle: func(t *testing.T, sys graph.System) {
				if err := sys.(*graphone.Graph).Flush(); err != nil {
					t.Fatal(err)
				}
			},
			caps: graph.CapBatch | graph.CapDelete | graph.CapBatchDelete | graph.CapBulk,
		},
		{
			name: "xpgraph",
			build: func(t *testing.T, nVert, nEdges int) graph.System {
				g, err := xpgraph.New(pmem.New(256<<20), nVert, xpgraph.Config{Threshold: 128, LogCapEdges: 4096})
				if err != nil {
					t.Fatal(err)
				}
				return g
			},
			settle: noop,
			caps:   graph.CapBatch | graph.CapDelete | graph.CapBatchDelete | graph.CapBulk,
		},
		{
			name: "csr",
			build: func(t *testing.T, nVert, nEdges int) graph.System {
				g, err := csr.Build(pmem.New(64<<20), nVert, graphgen.Uniform(nVert, 4, 7))
				if err != nil {
					t.Fatal(err)
				}
				return g
			},
			settle: noop,
			caps:   graph.CapBatch | graph.CapBulk | graph.CapSweep,
		},
		{
			name: "chunkadj",
			build: func(t *testing.T, nVert, nEdges int) graph.System {
				return chunkSys{chunkadj.New(nVert)}
			},
			settle: noop,
			caps:   graph.CapDelete | graph.CapBulk,
		},
	}
}

// TestStoreCapsTruthful pins every backend's resolved Caps bitset and
// cross-checks the behavior-defining bits against observed behavior:
// CapDelete iff a delete through Apply actually succeeds (and its edge
// actually disappears), CapSweep iff the View's underlying snapshot
// carries a native Sweeper, CapBulk iff it carries a native bulk path,
// CapApply iff the system exposes a native mixed Applier, CapClose iff
// it has a shutdown path.
func TestStoreCapsTruthful(t *testing.T) {
	for _, b := range storeBackends() {
		t.Run(b.name, func(t *testing.T) {
			sys := b.build(t, 32, 256)
			st := graph.Open(sys)
			if got := st.Caps(); got != b.caps {
				t.Fatalf("Caps = %v, want %v", got, b.caps)
			}
			// The rendered form is conformance surface too (logs and the
			// serve banner print it): exactly the set bits' names, no
			// more, no fewer.
			rendered := map[string]bool{}
			for _, p := range strings.Split(strings.TrimSuffix(strings.TrimPrefix(st.Caps().String(), "caps("), ")"), "|") {
				rendered[p] = true
			}
			for bit, name := range map[graph.Caps]string{
				graph.CapBatch: "batch", graph.CapDelete: "delete",
				graph.CapBatchDelete: "batchdelete", graph.CapApply: "apply",
				graph.CapBulk: "bulk", graph.CapSweep: "sweep",
				graph.CapClose: "close", graph.CapRecover: "recover",
			} {
				if rendered[name] != st.Caps().Has(bit) {
					t.Errorf("Caps.String() = %q: name %q rendered=%v, bit set=%v",
						st.Caps(), name, rendered[name], st.Caps().Has(bit))
				}
			}

			// Read bits against the actual snapshot type behind a View.
			view := st.View()
			if _, ok := view.Snapshot().(graph.BulkSnapshot); ok != st.Caps().Has(graph.CapBulk) {
				t.Errorf("CapBulk = %v but native BulkSnapshot = %v", st.Caps().Has(graph.CapBulk), ok)
			}
			if _, ok := view.Snapshot().(graph.Sweeper); ok != st.Caps().Has(graph.CapSweep) {
				t.Errorf("CapSweep = %v but native Sweeper = %v", st.Caps().Has(graph.CapSweep), ok)
			}
			view.Release()

			// Write bits against the actual interface surfaces.
			if _, ok := sys.(graph.BatchWriter); ok != st.Caps().Has(graph.CapBatch) {
				t.Errorf("CapBatch = %v but native BatchWriter = %v", st.Caps().Has(graph.CapBatch), ok)
			}
			if _, ok := sys.(graph.BatchDeleter); ok != st.Caps().Has(graph.CapBatchDelete) {
				t.Errorf("CapBatchDelete = %v but native BatchDeleter = %v", st.Caps().Has(graph.CapBatchDelete), ok)
			}
			if _, ok := sys.(graph.Applier); ok != st.Caps().Has(graph.CapApply) {
				t.Errorf("CapApply = %v but native Applier = %v", st.Caps().Has(graph.CapApply), ok)
			}
			if _, ok := sys.(graph.Closer); ok != st.Caps().Has(graph.CapClose) {
				t.Errorf("CapClose = %v but native Closer = %v", st.Caps().Has(graph.CapClose), ok)
			}
			if _, ok := sys.(graph.Recoverable); ok != st.Caps().Has(graph.CapRecover) {
				t.Errorf("CapRecover = %v but native Recoverable = %v", st.Caps().Has(graph.CapRecover), ok)
			}
			// CapRecover ⇔ Checkpoint observably works; without it the
			// sentinel names the refusal.
			if err := st.Checkpoint(); st.Caps().Has(graph.CapRecover) {
				if err != nil {
					t.Errorf("CapRecover set but Checkpoint failed: %v", err)
				}
			} else if !errors.Is(err, graph.ErrRecoveryUnsupported) {
				t.Errorf("Checkpoint without CapRecover = %v, want ErrRecoveryUnsupported", err)
			}

			// CapDelete ⇔ deletes observably succeed. CSR also rejects
			// inserts, so the mutation probe only runs on systems that
			// accept the insert first.
			ins := st.Apply([]graph.Op{graph.OpInsert(1, 2)})
			if b.name == "csr" {
				if ins == nil {
					t.Fatal("static CSR accepted an insert through Apply")
				}
				return
			}
			if ins != nil {
				t.Fatalf("insert through Apply: %v", ins)
			}
			err := st.Apply([]graph.Op{graph.OpDelete(1, 2)})
			if st.Caps().Has(graph.CapDelete) {
				if err != nil {
					t.Fatalf("CapDelete set but delete failed: %v", err)
				}
				b.settle(t, sys)
				v := st.View()
				if d := v.Degree(1); d != 0 {
					t.Fatalf("CapDelete set but deleted edge still visible (degree %d)", d)
				}
				v.Release()
				// A second delete has no live copy to cancel.
				if err := st.Apply([]graph.Op{graph.OpDelete(1, 2)}); !errors.Is(err, graph.ErrEdgeNotFound) {
					t.Fatalf("delete with no live copy: %v, want ErrEdgeNotFound", err)
				}
			} else if !errors.Is(err, graph.ErrDeletesUnsupported) {
				t.Fatalf("CapDelete unset but delete returned %v, want ErrDeletesUnsupported", err)
			}
		})
	}
}

// oracleSys pairs a backend instance with a scalar twin: the property
// test applies the same op stream to both — batched mixed Apply against
// one-InsertEdge/DeleteEdge-per-op stream order — and the visible
// per-vertex destination sequences must agree exactly.
func TestApplyMatchesScalarOracle(t *testing.T) {
	const nVert = 48
	rng := rand.New(rand.NewSource(23))
	for _, b := range storeBackends() {
		if b.name == "csr" {
			continue // static: no mutation path to compare
		}
		t.Run(b.name, func(t *testing.T) {
			batched := b.build(t, nVert, 4096)
			scalar := b.build(t, nVert, 4096)
			st := graph.Open(batched)
			withDeletes := st.Caps().Has(graph.CapDelete)

			// A valid mixed stream over the live multiset: inserts of
			// random edges, deletes of a random currently-live edge
			// (skipped entirely for append-only backends).
			const nOps = 1500
			ops := make([]graph.Op, 0, nOps)
			var live []graph.Edge
			for len(ops) < nOps {
				if withDeletes && len(live) > 0 && rng.Float64() < 0.4 {
					i := rng.Intn(len(live))
					e := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					ops = append(ops, graph.Op{Edge: e, Del: true})
				} else {
					e := graph.Edge{Src: graph.V(rng.Intn(nVert)), Dst: graph.V(rng.Intn(nVert))}
					live = append(live, e)
					ops = append(ops, graph.Op{Edge: e})
				}
			}

			// Batched mixed application in random-size batches…
			for i := 0; i < len(ops); {
				n := min(1+rng.Intn(64), len(ops)-i)
				if err := st.Apply(ops[i : i+n]); err != nil {
					t.Fatalf("Apply ops[%d:%d]: %v", i, i+n, err)
				}
				i += n
			}
			// …against the scalar oracle in stream order.
			for _, o := range ops {
				var err error
				if o.Del {
					err = scalar.(graph.Deleter).DeleteEdge(o.Edge.Src, o.Edge.Dst)
				} else {
					err = scalar.InsertEdge(o.Edge.Src, o.Edge.Dst)
				}
				if err != nil {
					t.Fatalf("oracle %v: %v", o, err)
				}
			}
			b.settle(t, batched)
			b.settle(t, scalar)

			got := graph.Adjacency(graph.Open(batched).View())
			want := graph.Adjacency(graph.Open(scalar).View())
			if len(got) != len(want) {
				t.Fatalf("vertex counts differ: %d vs %d", len(got), len(want))
			}
			for v := range want {
				if !equalV(got[v], want[v]) {
					t.Fatalf("vertex %d: Apply %v, scalar oracle %v", v, got[v], want[v])
				}
			}
		})
	}
}

// batchRecorder records the sub-batch sequence Store.Apply emits, so
// the per-source-order contract of the adapter is testable directly.
type batchRecorder struct {
	calls []recordedCall
}

type recordedCall struct {
	del   bool
	edges []graph.Edge
}

func (r *batchRecorder) Name() string                      { return "recorder" }
func (r *batchRecorder) InsertEdge(src, dst graph.V) error { return nil }
func (r *batchRecorder) Snapshot() graph.Snapshot          { return nil }
func (r *batchRecorder) InsertBatch(edges []graph.Edge) error {
	r.calls = append(r.calls, recordedCall{edges: append([]graph.Edge(nil), edges...)})
	return nil
}
func (r *batchRecorder) DeleteBatch(edges []graph.Edge) error {
	r.calls = append(r.calls, recordedCall{del: true, edges: append([]graph.Edge(nil), edges...)})
	return nil
}

// TestStoreApplyAdapterSplitsOnce: the adapter dispatches any mixed
// stream as exactly one InsertBatch (the batch's inserts, stream
// order) followed by one DeleteBatch (its deletes, stream order) — the
// multiset-exact two-call shape the sharded router's throughput
// depends on, never fragmented by hot (src, dst) recurrence.
func TestStoreApplyAdapterSplitsOnce(t *testing.T) {
	rec := &batchRecorder{}
	st := graph.Open(rec)
	err := st.Apply([]graph.Op{
		graph.OpInsert(1, 2),
		graph.OpDelete(1, 9),
		graph.OpInsert(5, 6),
		graph.OpDelete(1, 2), // same edge as the first insert: still one split
		graph.OpInsert(1, 2), // hot edge recurs: still one split
		graph.OpDelete(7, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []recordedCall{
		{edges: []graph.Edge{{Src: 1, Dst: 2}, {Src: 5, Dst: 6}, {Src: 1, Dst: 2}}},
		{del: true, edges: []graph.Edge{{Src: 1, Dst: 9}, {Src: 1, Dst: 2}, {Src: 7, Dst: 8}}},
	}
	if len(rec.calls) != len(want) {
		t.Fatalf("adapter emitted %d sub-batches %+v, want %d (one insert + one delete)", len(rec.calls), rec.calls, len(want))
	}
	for i, w := range want {
		g := rec.calls[i]
		if g.del != w.del || len(g.edges) != len(w.edges) {
			t.Fatalf("sub-batch %d = %+v, want %+v", i, g, w)
		}
		for j := range w.edges {
			if g.edges[j] != w.edges[j] {
				t.Fatalf("sub-batch %d = %+v, want %+v", i, g, w)
			}
		}
	}

	// Delete-only and insert-only streams stay single calls.
	rec.calls = nil
	if err := st.Apply([]graph.Op{graph.OpDelete(1, 2), graph.OpDelete(3, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply([]graph.Op{graph.OpInsert(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if len(rec.calls) != 2 || !rec.calls[0].del || rec.calls[1].del {
		t.Fatalf("single-kind streams emitted %+v, want one call each", rec.calls)
	}
}

// TestGroupBySrcDeterministicOrder pins the fix for nondeterministic
// batch application: runs appear in first-appearance stream order with
// per-source destinations in stream order, so backends that iterate the
// grouping lay edges out identically run-to-run.
func TestGroupBySrcDeterministicOrder(t *testing.T) {
	edges := []graph.Edge{
		{Src: 9, Dst: 1}, {Src: 2, Dst: 7}, {Src: 9, Dst: 3},
		{Src: 5, Dst: 0}, {Src: 2, Dst: 8}, {Src: 9, Dst: 2},
	}
	runs := graph.GroupBySrc(edges)
	wantSrc := []graph.V{9, 2, 5}
	if len(runs) != len(wantSrc) {
		t.Fatalf("got %d runs, want %d", len(runs), len(wantSrc))
	}
	for i, w := range wantSrc {
		if runs[i].Src != w {
			t.Fatalf("run %d source = %d, want %d (first-appearance order)", i, runs[i].Src, w)
		}
	}
	if !equalV(runs[0].Dsts, []graph.V{1, 3, 2}) {
		t.Fatalf("run for source 9 = %v, want stream order [1 3 2]", runs[0].Dsts)
	}
	// Shuffled duplicates of the same stream must group identically.
	again := graph.GroupBySrc(edges)
	for i := range runs {
		if again[i].Src != runs[i].Src || !equalV(again[i].Dsts, runs[i].Dsts) {
			t.Fatal("GroupBySrc not deterministic across calls")
		}
	}
}
