package graph

import (
	"fmt"
	"slices"
)

// Oracle is a DRAM reference adjacency used to verify what a recovered
// image makes visible. It applies the same op semantics the persistent
// systems implement — inserts append in per-source stream order, a
// delete cancels the earliest remaining occurrence of its destination
// (the kill-table order snapshots use) and requires a live match — and
// its two check methods encode the recovery contract of Recoverable:
// everything acknowledged survives, and of an in-flight batch only a
// per-source prefix (or, under torn-line chaos crashes, a per-source
// op subset bounded by the batch's own ops) may surface.
type Oracle struct {
	adj  map[V][]V
	nOps int64
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle { return &Oracle{adj: make(map[V][]V)} }

// Ops returns the number of ops applied so far (the acknowledged
// count, when the caller applies exactly the acked stream).
func (o *Oracle) Ops() int64 { return o.nOps }

// Apply replays ops into the reference adjacency. A delete with no
// live match fails — on the acked stream that means the driver
// acknowledged an op the backend must have rejected.
func (o *Oracle) Apply(ops []Op) error {
	for _, op := range ops {
		if err := o.apply1(op); err != nil {
			return err
		}
		o.nOps++
	}
	return nil
}

func (o *Oracle) apply1(op Op) error {
	if !op.Del {
		o.adj[op.Edge.Src] = append(o.adj[op.Edge.Src], op.Edge.Dst)
		return nil
	}
	return deleteFirst(o.adj, op.Edge)
}

// deleteFirst removes the earliest occurrence of e.Dst from e.Src's
// list, failing when there is none.
func deleteFirst(adj map[V][]V, e Edge) error {
	l := adj[e.Src]
	for i, d := range l {
		if d == e.Dst {
			adj[e.Src] = append(l[:i:i], l[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("oracle: delete %d->%d: %w", e.Src, e.Dst, ErrEdgeNotFound)
}

// Neighbors returns the oracle's visible neighbor sequence of v.
func (o *Oracle) Neighbors(v V) []V { return o.adj[v] }

// groupBySrc splits an op stream per source, preserving stream order.
func groupBySrc(ops []Op) map[V][]Op {
	m := make(map[V][]Op)
	for _, op := range ops {
		m[op.Edge.Src] = append(m[op.Edge.Src], op)
	}
	return m
}

// vertexSpan returns one past the largest vertex id either side knows.
func (o *Oracle) vertexSpan(s Snapshot, inflight []Op) V {
	n := V(s.NumVertices())
	for v := range o.adj {
		if v+1 > n {
			n = v + 1
		}
	}
	for _, op := range inflight {
		if op.Edge.Src+1 > n {
			n = op.Edge.Src + 1
		}
	}
	return n
}

// CheckPrefix asserts that, for every vertex, the neighbor sequence s
// makes visible equals the oracle's acknowledged sequence extended by
// some prefix of that source's in-flight ops. This is the deterministic
// power-cut contract: group boundaries are fenced and per-source order
// is preserved, so recovery surfaces each source's in-flight ops in
// order up to some cut, never beyond or out of order.
func (o *Oracle) CheckPrefix(s Snapshot, inflight []Op) error {
	bySrc := groupBySrc(inflight)
	var buf []V
	for v := V(0); v < o.vertexSpan(s, inflight); v++ {
		buf = buf[:0]
		s.Neighbors(v, func(d V) bool { buf = append(buf, d); return true })
		want := o.adj[v]
		if slices.Equal(buf, want) {
			continue
		}
		// Extend the acked sequence op by op through the source's
		// in-flight tail, accepting the first prefix that matches.
		seq := slices.Clone(want)
		scratch := map[V][]V{v: seq}
		matched := false
		for _, op := range bySrc[v] {
			if op.Del {
				if deleteFirst(scratch, op.Edge) != nil {
					break // no live match: no longer a valid prefix
				}
			} else {
				scratch[v] = append(scratch[v], op.Edge.Dst)
			}
			if slices.Equal(buf, scratch[v]) {
				matched = true
				break
			}
		}
		if !matched {
			return fmt.Errorf("oracle: vertex %d: visible %v, want acked %v plus a prefix of in-flight %v",
				v, buf, want, bySrc[v])
		}
	}
	return nil
}

// CheckMultiset asserts that every vertex's visible neighbor multiset
// equals the oracle's acknowledged multiset adjusted by a subset of
// that source's in-flight ops: for each destination d,
//
//	acked(d) - inflightDeletes(d) <= visible(d) <= acked(d) + inflightInserts(d)
//
// and no destination outside that envelope appears at all. This is the
// torn-line (ChaosCrash) contract: within the one unfenced in-flight
// group, individual line persists may land independently, so per-op
// order across the array/log split is not recoverable — but acked ops
// never vanish beyond in-flight tombstones, and nothing the batch
// never wrote can surface.
func (o *Oracle) CheckMultiset(s Snapshot, inflight []Op) error {
	bySrc := groupBySrc(inflight)
	var buf []V
	for v := V(0); v < o.vertexSpan(s, inflight); v++ {
		buf = buf[:0]
		s.Neighbors(v, func(d V) bool { buf = append(buf, d); return true })
		acked := counts(o.adj[v])
		vis := counts(buf)
		ins, del := map[V]int64{}, map[V]int64{}
		for _, op := range bySrc[v] {
			if op.Del {
				del[op.Edge.Dst]++
			} else {
				ins[op.Edge.Dst]++
			}
		}
		for d := range vis {
			if acked[d]+ins[d] == 0 {
				return fmt.Errorf("oracle: vertex %d: phantom neighbor %d (never acked or in flight)", v, d)
			}
		}
		for d, a := range acked {
			lo, hi := a-del[d], a+ins[d]
			if lo < 0 {
				lo = 0
			}
			if got := vis[d]; got < lo || got > hi {
				return fmt.Errorf("oracle: vertex %d: neighbor %d visible %d times, want %d..%d (acked %d, in-flight +%d/-%d)",
					v, d, got, lo, hi, a, ins[d], del[d])
			}
		}
		for d, i := range ins {
			if acked[d] == 0 && vis[d] > i {
				return fmt.Errorf("oracle: vertex %d: neighbor %d visible %d times but only %d in flight", v, d, vis[d], i)
			}
		}
	}
	return nil
}

func counts(l []V) map[V]int64 {
	m := make(map[V]int64, len(l))
	for _, d := range l {
		m[d]++
	}
	return m
}
