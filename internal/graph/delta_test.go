package graph

import (
	"errors"
	"testing"
)

func opsN(lo, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = OpInsert(V(lo+i), V(lo+i+1))
	}
	return ops
}

func TestJournalBetween(t *testing.T) {
	j := NewJournal(100)
	c0 := j.Cut()
	j.Record(opsN(0, 5))
	c1 := j.Cut()
	j.Record(opsN(5, 3))
	c2 := j.Cut()

	d := j.Between(c0, c1)
	if d.Overflow || len(d.Ops) != 5 || d.From != 0 || d.To != 5 {
		t.Fatalf("Between(c0,c1) = %+v, want 5 ops [0,5)", d)
	}
	if d.Ops[0].Edge.Src != 0 || d.Ops[4].Edge.Src != 4 {
		t.Fatalf("wrong ops: %v", d.Ops)
	}
	if d := j.Between(c1, c2); d.Overflow || len(d.Ops) != 3 {
		t.Fatalf("Between(c1,c2) = %+v, want 3 ops", d)
	}
	if d := j.Between(c0, c2); d.Overflow || len(d.Ops) != 8 {
		t.Fatalf("Between(c0,c2) = %+v, want 8 ops", d)
	}
	if d := j.Between(c2, c2); d.Overflow || len(d.Ops) != 0 {
		t.Fatalf("empty delta = %+v, want valid empty", d)
	}
	// Rewinding (from > to) is an overflow, not a panic.
	if d := j.Between(c2, c0); !d.Overflow {
		t.Fatalf("backwards delta = %+v, want overflow", d)
	}
	// A cut from the future is an overflow.
	if d := j.Between(c0, c2+10); !d.Overflow {
		t.Fatalf("future delta = %+v, want overflow", d)
	}
}

func TestJournalDeltaIsACopy(t *testing.T) {
	j := NewJournal(4)
	c0 := j.Cut()
	j.Record(opsN(0, 3))
	d := j.Between(c0, j.Cut())
	// Recording more (and trimming) must not mutate a handed-out delta.
	j.Record(opsN(50, 4))
	if d.Ops[0].Edge.Src != 0 || d.Ops[2].Edge.Src != 2 {
		t.Fatalf("delta mutated by later Record: %v", d.Ops)
	}
}

func TestJournalOverflow(t *testing.T) {
	j := NewJournal(6)
	c0 := j.Cut()
	j.Record(opsN(0, 4))
	c1 := j.Cut()
	j.Record(opsN(4, 4)) // 8 ops total: the first 2 are trimmed
	c2 := j.Cut()

	if d := j.Between(c0, c2); !d.Overflow {
		t.Fatalf("trimmed-anchor delta = %+v, want overflow", d)
	}
	// c1 = seq 4, base = 2: still anchored inside the window.
	d := j.Between(c1, c2)
	if d.Overflow || len(d.Ops) != 4 || d.Ops[0].Edge.Src != 4 {
		t.Fatalf("Between(c1,c2) = %+v, want ops 4..7", d)
	}
}

func TestJournalInvalidate(t *testing.T) {
	j := NewJournal(100)
	c0 := j.Cut()
	j.Record(opsN(0, 3))
	j.Invalidate()
	c1 := j.Cut()
	j.Record(opsN(3, 2))
	c2 := j.Cut()

	if d := j.Between(c0, c2); !d.Overflow {
		t.Fatalf("delta across invalidation = %+v, want overflow", d)
	}
	if d := j.Between(c0, c1); !d.Overflow {
		t.Fatalf("delta anchored before invalidation = %+v, want overflow", d)
	}
	// A consumer that resynced at a cut after the invalidation is clean.
	if d := j.Between(c1, c2); d.Overflow || len(d.Ops) != 2 {
		t.Fatalf("post-invalidation delta = %+v, want 2 ops", d)
	}
}

// watchSys is a minimal System whose InsertEdge can be made to fail,
// for exercising the Store.Watch seam on both Apply outcomes.
type watchSys struct {
	fail  bool
	edges []Edge
}

func (w *watchSys) Name() string { return "watchsys" }
func (w *watchSys) InsertEdge(src, dst V) error {
	if w.fail {
		return errors.New("watchsys: injected failure")
	}
	w.edges = append(w.edges, Edge{Src: src, Dst: dst})
	return nil
}
func (w *watchSys) Snapshot() Snapshot { return emptySnap{} }

type emptySnap struct{}

func (emptySnap) NumVertices() int              { return 0 }
func (emptySnap) NumEdges() int64               { return 0 }
func (emptySnap) Degree(V) int                  { return 0 }
func (emptySnap) Neighbors(V, func(dst V) bool) {}

func TestStoreWatchRecordsAndInvalidates(t *testing.T) {
	sys := &watchSys{}
	st := Open(sys)
	j := NewJournal(100)
	st.Watch(j)

	c0 := j.Cut()
	if err := st.Apply(opsN(0, 4)); err != nil {
		t.Fatal(err)
	}
	c1 := j.Cut()
	if d := j.Between(c0, c1); d.Overflow || len(d.Ops) != 4 {
		t.Fatalf("watched Apply recorded %+v, want 4 ops", d)
	}

	// A failed Apply leaves an unexplained subset behind: the journal
	// must be invalidated, and a fresh cut must be clean again.
	sys.fail = true
	if err := st.Apply(opsN(4, 2)); err == nil {
		t.Fatal("injected failure not surfaced")
	}
	c2 := j.Cut()
	if d := j.Between(c0, c2); !d.Overflow {
		t.Fatalf("delta across failed Apply = %+v, want overflow", d)
	}
	sys.fail = false
	if err := st.Apply(opsN(6, 3)); err != nil {
		t.Fatal(err)
	}
	if d := j.Between(c2, j.Cut()); d.Overflow || len(d.Ops) != 3 {
		t.Fatalf("post-failure delta = %+v, want 3 ops", d)
	}

	// Deletes rejected before any mutation must NOT invalidate: the
	// backend was not touched.
	c3 := j.Cut()
	if err := st.Apply([]Op{OpDelete(0, 1)}); !errors.Is(err, ErrDeletesUnsupported) {
		t.Fatalf("delete on delete-incapable system: %v", err)
	}
	if d := j.Between(c3, j.Cut()); d.Overflow {
		t.Fatalf("clean rejection invalidated the journal: %+v", d)
	}
}
