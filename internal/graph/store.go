package graph

import (
	"fmt"
	"strings"
	"sync"
)

// Caps is the capability bitset of an opened Store, resolved once by
// Open: consumers branch on bits instead of re-asserting interface
// types at every call site. The bits are truthful — a set bit means the
// behavior is observable (deletes succeed, the native sweep is taken),
// which the conformance suite in store_conformance_test.go pins for
// every in-tree backend.
type Caps uint32

const (
	// CapBatch: the system ingests insert batches natively (InsertBatch
	// amortizes locks/fences) rather than through the scalar-loop
	// fallback.
	CapBatch Caps = 1 << iota
	// CapDelete: the system supports edge deletion at all (natively
	// batched or per edge). Without it, Apply rejects delete ops with
	// ErrDeletesUnsupported.
	CapDelete
	// CapBatchDelete: deletion is natively batched (DeleteBatch), not a
	// scalar DeleteEdge loop.
	CapBatchDelete
	// CapApply: the system applies mixed insert/delete streams natively
	// (Applier) — inserts and tombstones of one batch share lock,
	// flush, fence and maintenance sessions.
	CapApply
	// CapBulk: snapshots implement the bulk read path (BulkSnapshot)
	// natively; Views copy neighbors without the callback adapter.
	CapBulk
	// CapSweep: snapshots amortize per-vertex synchronization across
	// ascending ranges (Sweeper); View.Sweep takes the native path.
	CapSweep
	// CapClose: the system has a graceful-shutdown path (Closer).
	CapClose
	// CapRecover: the system persists across process lifetimes — it can
	// checkpoint gracefully and report how a reopen attached
	// (Recoverable). Truthfully absent on DRAM-only backends.
	CapRecover
)

// Has reports whether every bit of want is set.
func (c Caps) Has(want Caps) bool { return c&want == want }

// CapsReporter lets a composite System cap the capabilities Open would
// resolve from its method set alone. A Cluster, for example, implements
// every write surface so that one mixed batch stays one dispatch under
// its consistent-cut bracket, yet must not claim CapDelete when any
// member lacks it: Open intersects the asserted bits with StoreCaps,
// keeping the truthfulness contract the conformance suite pins.
type CapsReporter interface {
	StoreCaps() Caps
}

func (c Caps) String() string {
	names := []struct {
		bit  Caps
		name string
	}{
		{CapBatch, "batch"},
		{CapDelete, "delete"},
		{CapBatchDelete, "batchdelete"},
		{CapApply, "apply"},
		{CapBulk, "bulk"},
		{CapSweep, "sweep"},
		{CapClose, "close"},
		{CapRecover, "recover"},
	}
	var parts []string
	for _, n := range names {
		if c.Has(n.bit) {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "caps()"
	}
	return "caps(" + strings.Join(parts, "|") + ")"
}

// Store is the one resolved handle consumers mutate a graph system
// through. Open performs every capability type-assertion exactly once;
// afterwards the Store exposes a single mutation entry point — Apply,
// over mixed insert/delete op streams — and mints read Views whose
// bulk/sweep fast paths are likewise pre-resolved. The legacy per-
// feature surfaces (InsertBatch, DeleteBatch, the scalar loops) are
// internals behind it.
type Store struct {
	sys  System
	caps Caps
	bw   BatchWriter  // insert path: native or scalar-loop fallback
	bd   BatchDeleter // delete path: native, scalar fallback, or nil
	ap   Applier      // native mixed path, nil when unimplemented
	rc   Recoverable  // checkpoint/recovery path, nil when unimplemented
	mask Caps         // CapsReporter ceiling; ^0 for ordinary systems

	// The read bits (CapBulk, CapSweep) are snapshot properties, so
	// resolving them costs one throwaway snapshot; the probe is
	// deferred to the first Caps() call so the many Stores opened only
	// to mutate (bench loaders, router drivers) never pay it.
	readOnce sync.Once
	readCaps Caps

	// journal, when attached with Watch, receives every op stream
	// Apply acknowledges (and an Invalidate for every Apply failure).
	journal *Journal
}

// Open resolves sys's capabilities and returns its Store: the write and
// shutdown surfaces by interface assertion here, the read bits (CapBulk,
// CapSweep) from one throwaway snapshot probed on the first Caps() call
// and released immediately where the backend supports an explicit
// release.
func Open(sys System) *Store {
	st := &Store{sys: sys}
	if bw, ok := sys.(BatchWriter); ok {
		st.bw = bw
		st.caps |= CapBatch
	} else {
		st.bw = scalarBatch{sys}
	}
	if bd, ok := sys.(BatchDeleter); ok {
		st.bd = bd
		st.caps |= CapDelete | CapBatchDelete
	} else if d, ok := sys.(Deleter); ok {
		st.bd = scalarDeletes{d}
		st.caps |= CapDelete
	}
	if ap, ok := sys.(Applier); ok {
		st.ap = ap
		st.caps |= CapApply
	}
	if _, ok := sys.(Closer); ok {
		st.caps |= CapClose
	}
	if rc, ok := sys.(Recoverable); ok {
		st.rc = rc
		st.caps |= CapRecover
	}
	st.mask = ^Caps(0)
	if cr, ok := sys.(CapsReporter); ok {
		st.mask = cr.StoreCaps()
		st.caps &= st.mask
		if !st.caps.Has(CapDelete) {
			st.bd = nil
		}
		if !st.caps.Has(CapRecover) {
			st.rc = nil
		}
		// st.ap deliberately survives masking: a composite's ApplyOps
		// is how one mixed batch stays a single dispatch under its
		// consistent-cut bracket. Splitting it here into insert/delete
		// rounds would let a snapshot land between them — the exact
		// anomaly the composite exists to rule out. CapApply still
		// reads as masked; only the dispatch path keeps the seam.
	}
	return st
}

// System returns the wrapped system (backend-specific escape hatch;
// prefer the Store surface).
func (st *Store) System() System { return st.sys }

// Name returns the wrapped system's name.
func (st *Store) Name() string { return st.sys.Name() }

// Caps returns the capability bitset: write and shutdown bits resolved
// at Open, read bits probed once on first call.
func (st *Store) Caps() Caps {
	st.readOnce.Do(func() {
		if probe := st.sys.Snapshot(); probe != nil {
			if _, ok := probe.(BulkSnapshot); ok {
				st.readCaps |= CapBulk
			}
			if _, ok := probe.(Sweeper); ok {
				st.readCaps |= CapSweep
			}
			if r, ok := probe.(SnapshotReleaser); ok {
				r.ReleaseSnapshot()
			}
		}
	})
	return st.caps | (st.readCaps & st.mask)
}

// Watch attaches a Journal to the Store's mutation path: from now on
// every op stream Apply acknowledges is recorded, and every Apply
// failure invalidates the journal (an arbitrary subset of a failed
// batch may have landed, which the recorded stream cannot explain).
// Attach before the first concurrent Apply; Watch itself is not
// synchronized against in-flight calls. Mutations that bypass this
// Store — per-shard native handles such as dgap.Writer, or direct
// System calls — are invisible to the seam; producers driving those
// must Record/Invalidate on the journal themselves, as the serve
// tier's counted sinks do.
func (st *Store) Watch(j *Journal) { st.journal = j }

// View takes a consistent snapshot and returns it as a read handle with
// the bulk and sweep fast paths pre-resolved. Callers that care about
// snapshot-gated maintenance (DGAP's tombstone compaction) should
// Release the View when done; others may let the GC backstop it.
func (st *Store) View() *View { return ViewOf(st.sys.Snapshot()) }

// Close runs the system's graceful-shutdown path when it has one
// (CapClose) and is a no-op otherwise. Close is idempotent — repeated
// calls return the first call's result without re-running the shutdown
// dump, so a successful close stays nil on retry and a failed one is
// not masked as success — and crash-safe: after an injected crash has
// poisoned the instance, Close refuses to dump rather than risk
// marking a torn image as gracefully shut down (see dgap.ErrPoisoned).
func (st *Store) Close() error {
	if c, ok := st.sys.(Closer); ok {
		return c.Close()
	}
	return nil
}

// Apply applies a mixed insert/delete op stream: the one mutation entry
// point. Systems with a native mixed path (CapApply) get the stream
// unsplit — DGAP applies the ops in per-source stream order within
// shared section groups. For the rest, Apply splits the stream into
// one insert sub-batch and one delete sub-batch (stream order within
// each) and applies the inserts first. That reordering is
// multiset-exact: a delete cancels an unspecified live (src, dst) copy
// and only requires one live match, so applying a batch's inserts
// ahead of its deletes preserves every final per-(src, dst) live count
// — a delete never loses sight of an insert that preceded it, and
// validation can only get more permissive (a delete whose only
// matching insert shares its batch succeeds here and would fail
// interleaved), never stricter. The per-vertex visible order within a
// batch window was never part of the batched contract (cross-shard
// delivery already permutes it; see Router.RunOps), and flushing
// same-kind sub-batches any finer was measured to fragment skewed
// churn streams into tens of tiny calls per batch — hot (src, dst)
// pairs recur constantly — destroying exactly the lock/fence
// amortization batching exists for. Delete ops against a system
// without CapDelete fail with an error wrapping ErrDeletesUnsupported.
// Errors from the underlying batch paths pass through unchanged
// (scalar fallbacks wrap the failing op in BatchError, indexed within
// its sub-batch); on error an arbitrary subset of the stream may have
// been applied.
//
// Apply is safe for concurrent use exactly when the underlying system's
// batch paths are; per-shard handles (dgap.Writer) implement Applier
// themselves and should be used directly as router sinks.
func (st *Store) Apply(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	if st.ap != nil {
		return st.journaled(ops, st.ap.ApplyOps(ops))
	}
	nDel := 0
	for _, o := range ops {
		if o.Del {
			nDel++
		}
	}
	if nDel == 0 {
		return st.journaled(ops, st.bw.InsertBatch(edgesOf(ops)))
	}
	if st.bd == nil {
		// Rejected before any mutation: the journal stays clean.
		return fmt.Errorf("graph: %s: %w", st.sys.Name(), ErrDeletesUnsupported)
	}
	// One backing array serves both sub-batches: the counts are exact,
	// so neither append ever reallocates past its region.
	buf := make([]Edge, len(ops))
	ins := buf[: 0 : len(ops)-nDel]
	del := buf[len(ops)-nDel:][:0]
	for _, o := range ops {
		if o.Del {
			del = append(del, o.Edge)
		} else {
			ins = append(ins, o.Edge)
		}
	}
	if len(ins) > 0 {
		if err := st.bw.InsertBatch(ins); err != nil {
			return st.journaled(ops, err)
		}
	}
	return st.journaled(ops, st.bd.DeleteBatch(del))
}

// journaled forwards one Apply outcome into the attached journal:
// acknowledged streams are recorded, failures invalidate it (the
// backend holds an arbitrary subset of the batch the log cannot
// explain). A nil journal makes both a no-op.
func (st *Store) journaled(ops []Op, err error) error {
	if st.journal != nil {
		if err != nil {
			st.journal.Invalidate()
		} else {
			st.journal.Record(ops)
		}
	}
	return err
}

// ApplyOps makes the Store itself an Applier, so shared-handle router
// sinks and per-shard native handles are interchangeable.
func (st *Store) ApplyOps(ops []Op) error { return st.Apply(ops) }

// edgesOf materializes an op stream's edges (kinds ignored).
func edgesOf(ops []Op) []Edge {
	edges := make([]Edge, len(ops))
	for i, o := range ops {
		edges[i] = o.Edge
	}
	return edges
}
