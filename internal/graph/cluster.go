package graph

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"dgap/internal/obs"
)

// Cluster federates N member Systems into one System: each member is
// opened as its own Store partition, ops are placed by source-vertex
// ownership (see Partitioner), and Snapshot pins one snapshot per shard
// at a consistent op-stream cut. A Cluster is opened like any backend —
// graph.Open(cluster) — and reports only the capability intersection of
// its members (via CapsReporter), so composing a delete-incapable
// member truthfully strips CapDelete from the whole.
//
// Consistency contract: ApplyOps holds the cut bracket in read mode for
// the entire multi-shard dispatch, and Snapshot holds it in write mode
// while snapshotting every member. A composite view therefore observes
// every Apply batch entirely or not at all — an edge's insert on one
// shard is never visible while its mirror on another shard is still in
// flight. This is the same bracket discipline serve.Server's ingest
// lock applies one level up; the Cluster enforces it internally so that
// direct Store users get it too.
type Cluster struct {
	stores []*Store
	part   Partitioner
	name   string
	caps   Caps

	// mu is the consistent-cut bracket: writers (ApplyOps, InsertEdge)
	// hold it in read mode across their whole multi-shard dispatch;
	// Snapshot and Checkpoint hold it in write mode. Member stores
	// still provide their own internal synchronization — the bracket
	// only orders multi-shard dispatch against composite cuts.
	mu sync.RWMutex

	// gens[i] counts acknowledged dispatches into shard i; the vector
	// captured at Snapshot time names the composite cut (ClusterView.Gens).
	gens []atomic.Uint64
	// ops[i] counts acknowledged ops applied to shard i (observability).
	ops []atomic.Int64
}

// NewCluster opens every member as a Store partition under p (nil means
// BlockCyclic with the default block). Members must be distinct
// instances; at least one is required.
func NewCluster(members []System, p Partitioner) (*Cluster, error) {
	if len(members) == 0 {
		return nil, errors.New("graph: cluster needs at least one member")
	}
	if p == nil {
		p = BlockCyclic{}
	}
	c := &Cluster{
		part:   p,
		stores: make([]*Store, len(members)),
		gens:   make([]atomic.Uint64, len(members)),
		ops:    make([]atomic.Int64, len(members)),
	}
	names := make([]string, len(members))
	uniform := true
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("graph: cluster member %d is nil", i)
		}
		c.stores[i] = Open(m)
		names[i] = m.Name()
		if names[i] != names[0] {
			uniform = false
		}
	}
	if uniform {
		c.name = fmt.Sprintf("Cluster[%sx%d]", names[0], len(members))
	} else {
		c.name = "Cluster[" + strings.Join(names, ",") + "]"
	}
	caps := c.stores[0].Caps()
	for _, st := range c.stores[1:] {
		caps &= st.Caps()
	}
	c.caps = caps
	return c, nil
}

// Name reports the composite identity, e.g. "Cluster[DGAPx4]".
func (c *Cluster) Name() string { return c.name }

// Shards reports the partition count.
func (c *Cluster) Shards() int { return len(c.stores) }

// Shard exposes member i's Store — for tests and shard-local
// introspection, not for routing writes around the Cluster (doing so
// bypasses the consistent-cut bracket).
func (c *Cluster) Shard(i int) *Store { return c.stores[i] }

// Partitioner reports the placement in force.
func (c *Cluster) Partitioner() Partitioner { return c.part }

// StoreCaps reports the truthful intersection of member capabilities;
// graph.Open consults it (CapsReporter) to mask the bits the composite
// surface would otherwise claim.
func (c *Cluster) StoreCaps() Caps { return c.caps }

// Gens returns the current per-shard generation vector (a copy).
func (c *Cluster) Gens() []uint64 {
	g := make([]uint64, len(c.gens))
	for i := range c.gens {
		g[i] = c.gens[i].Load()
	}
	return g
}

// InsertEdge routes one edge to its owner shard under the cut bracket.
func (c *Cluster) InsertEdge(src, dst V) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sh := c.part.Owner(src, len(c.stores))
	if err := c.stores[sh].sys.InsertEdge(src, dst); err != nil {
		return fmt.Errorf("graph: cluster shard %d: %w", sh, err)
	}
	c.gens[sh].Add(1)
	c.ops[sh].Add(1)
	return nil
}

// ApplyOps splits a mixed op stream per shard (preserving per-shard
// stream order) and dispatches every partition under one cut bracket,
// so no composite snapshot can observe the batch half-applied. Deletes
// are rejected up front when any member lacks CapDelete — before any
// shard has been mutated.
func (c *Cluster) ApplyOps(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	if !c.caps.Has(CapDelete) {
		for _, o := range ops {
			if o.Del {
				return fmt.Errorf("graph: %s: %w", c.name, ErrDeletesUnsupported)
			}
		}
	}
	n := len(c.stores)
	parts := PartitionOps(ops, n, RouteByOwner(n, c.part))
	c.mu.RLock()
	defer c.mu.RUnlock()
	for sh, p := range parts {
		if len(p) == 0 {
			continue
		}
		if err := c.stores[sh].Apply(p); err != nil {
			return fmt.Errorf("graph: cluster shard %d: %w", sh, err)
		}
		c.gens[sh].Add(1)
		c.ops[sh].Add(int64(len(p)))
	}
	return nil
}

// InsertBatch applies an insert-only batch through the op path.
func (c *Cluster) InsertBatch(edges []Edge) error {
	return c.ApplyOps(Inserts(edges))
}

// DeleteBatch applies a delete-only batch through the op path.
func (c *Cluster) DeleteBatch(edges []Edge) error {
	ops := make([]Op, len(edges))
	for i, e := range edges {
		ops[i] = Op{Edge: e, Del: true}
	}
	return c.ApplyOps(ops)
}

// Snapshot pins one snapshot per shard under the write side of the cut
// bracket and returns them as a single composite ClusterView. The
// captured per-shard generation vector names the cut.
func (c *Cluster) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.stores)
	cv := &ClusterView{
		part:  c.part,
		views: make([]*View, n),
		nv:    make([]int, n),
		gens:  make([]uint64, n),
	}
	for i, st := range c.stores {
		v := st.View()
		cv.views[i] = v
		cv.nv[i] = v.NumVertices()
		if cv.nv[i] > cv.verts {
			cv.verts = cv.nv[i]
		}
		cv.edges += v.NumEdges()
		cv.gens[i] = c.gens[i].Load()
	}
	return cv
}

// Checkpoint quiesces dispatch and checkpoints every recover-capable
// member at one cut.
func (c *Cluster) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, st := range c.stores {
		if err := st.Checkpoint(); err != nil {
			return fmt.Errorf("graph: cluster shard %d: %w", i, err)
		}
	}
	return nil
}

// Recovery aggregates member recovery reports: available when every
// member reports one, graceful only if all shards were, counters
// summed, attach time the slowest shard's.
func (c *Cluster) Recovery() (RecoveryStats, bool) {
	var agg RecoveryStats
	agg.Graceful = true
	for _, st := range c.stores {
		rs, ok := st.Recovery()
		if !ok {
			return RecoveryStats{}, false
		}
		agg.Graceful = agg.Graceful && rs.Graceful
		agg.UndoRangesReplayed += rs.UndoRangesReplayed
		agg.ReplayedOps += rs.ReplayedOps
		agg.DroppedTorn += rs.DroppedTorn
		if rs.AttachTime > agg.AttachTime {
			agg.AttachTime = rs.AttachTime
		}
	}
	return agg, true
}

// Close closes every member, reporting all failures.
func (c *Cluster) Close() error {
	var errs []error
	for i, st := range c.stores {
		if err := st.Close(); err != nil {
			errs = append(errs, fmt.Errorf("graph: cluster shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// RegisterObs wires cluster-level dispatch counters and forwards each
// instrumented member into a per-shard instance scope, so N shards of
// the same backend expose dgap.shard<i>.* series instead of silently
// sharing one global set.
func (c *Cluster) RegisterObs(r *obs.Registry) {
	r.GaugeFunc("graph.cluster.shards", func() int64 { return int64(len(c.stores)) })
	for i, st := range c.stores {
		r.CounterFunc(fmt.Sprintf("graph.cluster.shard%d.applied", i), c.ops[i].Load)
		sh := i
		r.GaugeFunc(fmt.Sprintf("graph.cluster.shard%d.generation", i), func() int64 {
			return int64(c.gens[sh].Load())
		})
		if in, ok := st.sys.(obs.Instrumented); ok {
			in.RegisterObs(r.Instance(fmt.Sprintf("shard%d", i)))
		}
	}
}

// ClusterView is the composite snapshot a Cluster pins: one member View
// per shard, all taken at a single op-stream cut. It satisfies the same
// read surfaces ViewOf resolves (Snapshot, BulkSnapshot, Sweeper,
// SnapshotReleaser), so analytics kernels traverse shard boundaries
// through the ordinary graph.View without knowing the store is
// partitioned.
type ClusterView struct {
	views []*View
	part  Partitioner
	// nv[i] is shard i's vertex-id bound at the cut. The composite
	// vertex space is the max over shards, so reads of vertices a
	// member has never seen are answered empty here rather than
	// indexing past that member's tables.
	nv    []int
	verts int
	edges int64
	gens  []uint64

	released atomic.Bool
}

var (
	_ Snapshot         = (*ClusterView)(nil)
	_ BulkSnapshot     = (*ClusterView)(nil)
	_ Sweeper          = (*ClusterView)(nil)
	_ SnapshotReleaser = (*ClusterView)(nil)
)

func (cv *ClusterView) owner(v V) int { return cv.part.Owner(v, len(cv.views)) }

// Gens returns the per-shard generation vector naming this view's cut
// (a copy). Two ClusterViews with equal vectors pin identical composite
// states.
func (cv *ClusterView) Gens() []uint64 {
	g := make([]uint64, len(cv.gens))
	copy(g, cv.gens)
	return g
}

// NumVertices is the composite vertex-id bound: the max over shards.
func (cv *ClusterView) NumVertices() int { return cv.verts }

// NumEdges sums live edges over all shards at the cut.
func (cv *ClusterView) NumEdges() int64 { return cv.edges }

// Degree reads the owner shard, or 0 beyond that shard's id bound.
func (cv *ClusterView) Degree(v V) int {
	o := cv.owner(v)
	if int(v) >= cv.nv[o] {
		return 0
	}
	return cv.views[o].Degree(v)
}

// Neighbors streams the owner shard's adjacency for v.
func (cv *ClusterView) Neighbors(v V, fn func(dst V) bool) {
	o := cv.owner(v)
	if int(v) >= cv.nv[o] {
		return
	}
	cv.views[o].Neighbors(v, fn)
}

// CopyNeighbors appends the owner shard's adjacency for v to buf.
func (cv *ClusterView) CopyNeighbors(v V, buf []V) []V {
	o := cv.owner(v)
	if int(v) >= cv.nv[o] {
		return buf
	}
	return cv.views[o].CopyNeighbors(v, buf)
}

// SweepNeighbors fans a [lo, hi) range out to the owning shards in
// maximal same-owner runs, so each member's native sweep keeps its
// per-run amortization (the reason BlockCyclic is the default
// placement). Vertices beyond a shard's id bound are reported with nil
// adjacency, preserving the dense-range contract kernels iterate by.
func (cv *ClusterView) SweepNeighbors(lo, hi V, buf []V, fn func(v V, dsts []V)) []V {
	for lo < hi {
		o := cv.owner(lo)
		end := lo + 1
		for end < hi && cv.owner(end) == o {
			end++
		}
		run := end
		if bound := V(cv.nv[o]); run > bound {
			run = bound
		}
		if lo < run {
			buf = cv.views[o].Sweep(lo, run, buf, fn)
		} else {
			run = lo
		}
		for u := run; u < end; u++ {
			fn(u, nil)
		}
		lo = end
	}
	return buf
}

// ReleaseSnapshot releases every member snapshot exactly once.
func (cv *ClusterView) ReleaseSnapshot() {
	if !cv.released.CompareAndSwap(false, true) {
		return
	}
	for _, v := range cv.views {
		v.Release()
	}
}

// ViewGens extracts the composite generation vector from a View pinned
// over a Cluster, or nil when the view wraps a single-shard snapshot.
// Serving tiers use it to key caches by composite cut identity.
func ViewGens(v *View) []uint64 {
	if v == nil {
		return nil
	}
	if cv, ok := v.Snapshot().(*ClusterView); ok {
		return cv.Gens()
	}
	return nil
}
