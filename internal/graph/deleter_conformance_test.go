package graph_test

import (
	"errors"
	"testing"

	"dgap/internal/csr"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

// TestDeleterConformance is the delete-support conformance check, gated
// on each system's graph.Deleter assertion: systems that implement it
// must provide tombstone semantics with snapshot isolation across
// generations (covered by this file and churn_conformance_test.go);
// systems that do not are thereby documented as rejecting deletes.
// DGAP, BAL, GraphOne and XPGraph support deletion — each natively on
// the batched path too — while LLAMA's append-only levels and the
// static CSR reject it, so graph.Deletes must return nil for them. If
// a backend's support changes, this test fails until the conformance
// suite covers the new state.
func TestDeleterConformance(t *testing.T) {
	const V = 32
	edges := graphgen.Uniform(V, 6, 19)
	for name, sys := range buildAll(t, V, edges) {
		_, scalar := sys.(graph.Deleter)
		_, batched := sys.(graph.BatchDeleter)
		switch name {
		case "dgap", "bal", "graphone", "xpgraph":
			if !scalar {
				t.Errorf("%s must implement graph.Deleter", name)
			}
			if !batched {
				t.Errorf("%s must implement graph.BatchDeleter natively", name)
			}
			if graph.Deletes(sys) == nil {
				t.Errorf("graph.Deletes(%s) = nil for a deleting system", name)
			}
		default:
			if scalar || batched {
				t.Errorf("%s unexpectedly implements deletion: add its semantics to the conformance suite", name)
			}
			if graph.Deletes(sys) != nil {
				t.Errorf("graph.Deletes(%s) != nil for a non-deleting system", name)
			}
		}
	}
	g, err := csr.Build(pmem.New(64<<20), V, edges)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := any(g).(graph.Deleter); ok {
		t.Error("static CSR unexpectedly implements graph.Deleter")
	}
	if graph.Deletes(g) != nil {
		t.Error("graph.Deletes(csr) != nil for the static baseline")
	}
}

// TestDGAPDeleteSnapshotGenerations pins DGAP's tombstone visibility
// rules across snapshot generations: a snapshot taken before a delete
// keeps seeing the edge (its visible-entry prefix is immutable
// history), the next generation sees one fewer copy per delete, and an
// insert after a delete is a fresh edge the older tombstone does not
// cancel.
func TestDGAPDeleteSnapshotGenerations(t *testing.T) {
	const V = 16
	a := pmem.New(128 << 20)
	cfg := dgap.DefaultConfig(V, 64)
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	g, err := dgap.New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 1 carries a duplicate destination so deletes must cancel
	// exactly one copy at a time.
	for _, e := range []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 1, Dst: 2}, {Src: 4, Dst: 5}} {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	dsts := func(s graph.Snapshot) []graph.V {
		var out []graph.V
		s.Neighbors(1, func(d graph.V) bool { out = append(out, d); return true })
		return out
	}

	s1 := g.Snapshot()
	if got := dsts(s1); len(got) != 3 {
		t.Fatalf("gen1 sees %v, want 3 entries", got)
	}

	if err := g.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	s2 := g.Snapshot()
	if got := dsts(s2); len(got) != 2 || countOf(got, 2) != 1 {
		t.Fatalf("gen2 after one delete sees %v, want one 2 and one 3", got)
	}
	// The older generation's view is immutable history.
	if got := dsts(s1); len(got) != 3 || countOf(got, 2) != 2 {
		t.Fatalf("gen1 changed after later delete: %v", got)
	}
	if s2.Degree(1) != 2 || s1.Degree(1) != 3 {
		t.Fatalf("degrees: gen1 %d (want 3), gen2 %d (want 2)", s1.Degree(1), s2.Degree(1))
	}

	if err := g.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	s3 := g.Snapshot()
	if got := dsts(s3); len(got) != 1 || countOf(got, 2) != 0 {
		t.Fatalf("gen3 after both deletes sees %v, want only 3", got)
	}

	// A fresh insert after the tombstones is a new edge, and the prior
	// generation does not see it.
	if err := g.InsertEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	s4 := g.Snapshot()
	if got := dsts(s4); len(got) != 2 || countOf(got, 2) != 1 {
		t.Fatalf("gen4 after re-insert sees %v, want 3 and one 2", got)
	}
	if got := dsts(s3); len(got) != 1 {
		t.Fatalf("gen3 changed after later insert: %v", got)
	}

	// Deleting from a vertex with no live edges is rejected.
	if err := g.DeleteEdge(9, 9); !errors.Is(err, dgap.ErrNoEdge) {
		t.Errorf("delete on empty vertex: %v, want ErrNoEdge", err)
	}

	// Bulk and callback paths agree on every generation.
	for i, s := range []graph.Snapshot{s1, s2, s3, s4} {
		t.Logf("checking generation %d", i+1)
		checkBulkMatchesCallback(t, s)
	}
}

func countOf(ds []graph.V, want graph.V) int {
	n := 0
	for _, d := range ds {
		if d == want {
			n++
		}
	}
	return n
}
