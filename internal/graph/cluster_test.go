package graph_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/llama"
	"dgap/internal/pmem"
)

// allCaps is every capability bit the Caps stringer must name.
var allCaps = []struct {
	bit  graph.Caps
	name string
}{
	{graph.CapBatch, "batch"},
	{graph.CapDelete, "delete"},
	{graph.CapBatchDelete, "batchdelete"},
	{graph.CapApply, "apply"},
	{graph.CapBulk, "bulk"},
	{graph.CapSweep, "sweep"},
	{graph.CapClose, "close"},
	{graph.CapRecover, "recover"},
}

// TestCapsStringEveryBit pins the stringer over the full bitset: every
// bit renders its own distinct name (CapRecover included, the bit PR 6
// added), the all-bits rendering names all eight, and the empty set
// renders "caps()". A new Caps bit without a stringer entry fails the
// popcount here.
func TestCapsStringEveryBit(t *testing.T) {
	if got := graph.Caps(0).String(); got != "caps()" {
		t.Fatalf("empty Caps = %q", got)
	}
	var all graph.Caps
	seen := map[string]bool{}
	for _, c := range allCaps {
		all |= c.bit
		s := c.bit.String()
		if s != "caps("+c.name+")" {
			t.Errorf("Caps(%s).String() = %q, want caps(%s)", c.name, s, c.name)
		}
		if seen[s] {
			t.Errorf("duplicate stringer name %q", s)
		}
		seen[s] = true
	}
	want := "caps(batch|delete|batchdelete|apply|bulk|sweep|close|recover)"
	if got := all.String(); got != want {
		t.Fatalf("all-bits Caps = %q, want %q", got, want)
	}
	if bits := strings.Count(all.String(), "|") + 1; bits != len(allCaps) {
		t.Fatalf("all-bits stringer names %d bits, want %d", bits, len(allCaps))
	}
}

func dgapMember(t *testing.T, nVert, nEdges int) graph.System {
	t.Helper()
	cfg := dgap.DefaultConfig(nVert, int64(nEdges))
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	g, err := dgap.New(pmem.New(256<<20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func dgapCluster(t *testing.T, shards, nVert, nEdges int, p graph.Partitioner) *graph.Cluster {
	t.Helper()
	members := make([]graph.System, shards)
	for i := range members {
		members[i] = dgapMember(t, nVert, nEdges)
	}
	c, err := graph.NewCluster(members, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClusterCapsTruthful extends the capability-truthfulness sweep to
// the Cluster composite: a uniform Cluster reports its members' full
// bitset, a mixed Cluster reports the intersection — and the masked
// bits are behaviorally absent (deletes rejected before any shard
// mutates, checkpoint unsupported), which is what distinguishes
// CapsReporter masking from mere bookkeeping.
func TestClusterCapsTruthful(t *testing.T) {
	t.Run("uniform-dgap", func(t *testing.T) {
		c := dgapCluster(t, 2, 64, 512, nil)
		st := graph.Open(c)
		want := graph.CapBatch | graph.CapDelete | graph.CapBatchDelete |
			graph.CapApply | graph.CapBulk | graph.CapSweep | graph.CapClose |
			graph.CapRecover
		if got := st.Caps(); got != want {
			t.Fatalf("Caps = %v, want %v", got, want)
		}
		wantStr := "caps(batch|delete|batchdelete|apply|bulk|sweep|close|recover)"
		if got := st.Caps().String(); got != wantStr {
			t.Fatalf("Caps.String() = %q, want %q", got, wantStr)
		}
		if c.Name() != "Cluster[DGAPx2]" {
			t.Fatalf("Name = %q", c.Name())
		}
		// The composite's read surface is native: the View's snapshot
		// is the ClusterView itself.
		view := st.View()
		if _, ok := view.Snapshot().(*graph.ClusterView); !ok {
			t.Fatalf("View snapshot is %T, want *graph.ClusterView", view.Snapshot())
		}
		view.Release()
		// CapRecover is real: checkpoint succeeds on every shard.
		if err := st.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		// CapDelete is real: a mixed batch round-trips.
		ops := []graph.Op{
			graph.OpInsert(1, 2), graph.OpInsert(2, 1), graph.OpDelete(1, 2),
		}
		if err := st.Apply(ops); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		v := st.View()
		if got := v.Degree(1); got != 0 {
			t.Fatalf("Degree(1) = %d after delete, want 0", got)
		}
		if got := v.Degree(2); got != 1 {
			t.Fatalf("Degree(2) = %d, want 1", got)
		}
		v.Release()
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})

	t.Run("mixed-dgap-llama", func(t *testing.T) {
		members := []graph.System{
			dgapMember(t, 64, 512),
			llama.New(pmem.New(256<<20), 64, 16),
		}
		c, err := graph.NewCluster(members, nil)
		if err != nil {
			t.Fatal(err)
		}
		st := graph.Open(c)
		// llama's bitset is CapBatch|CapBulk; the composite must not
		// claim more even though Cluster implements every interface.
		want := graph.CapBatch | graph.CapBulk
		if got := st.Caps(); got != want {
			t.Fatalf("Caps = %v, want intersection %v", got, want)
		}
		if got := st.Caps().String(); got != "caps(batch|bulk)" {
			t.Fatalf("Caps.String() = %q, want caps(batch|bulk)", got)
		}
		// Masked CapDelete is behaviorally absent, rejected before any
		// shard has been touched.
		err = st.Apply([]graph.Op{graph.OpInsert(1, 2), graph.OpDelete(1, 2)})
		if !errors.Is(err, graph.ErrDeletesUnsupported) {
			t.Fatalf("Apply with delete: %v, want ErrDeletesUnsupported", err)
		}
		if g := c.Gens(); g[0] != 0 || g[1] != 0 {
			t.Fatalf("gens %v after rejected batch, want all zero", g)
		}
		// Masked CapRecover is behaviorally absent.
		if err := st.Checkpoint(); !errors.Is(err, graph.ErrRecoveryUnsupported) {
			t.Fatalf("Checkpoint: %v, want ErrRecoveryUnsupported", err)
		}
		// Insert-only apply still works through the intersection.
		if err := st.Apply([]graph.Op{graph.OpInsert(1, 2)}); err != nil {
			t.Fatalf("insert-only Apply: %v", err)
		}
	})
}

// TestClusterPlacementAndCompositeView pins placement (every source
// vertex's adjacency lives wholly on its owner shard) and the composite
// read surface: Degree/CopyNeighbors/NumEdges/Sweep over the
// ClusterView agree with a flat oracle of the same op stream.
func TestClusterPlacementAndCompositeView(t *testing.T) {
	const nVert = 96
	part := graph.BlockCyclic{Block: 8}
	c := dgapCluster(t, 3, nVert, 4096, part)
	st := graph.Open(c)
	oracle := graph.NewOracle()

	var ops []graph.Op
	for i := 0; i < 900; i++ {
		src := graph.V(i*37) % nVert
		dst := graph.V(i*53+11) % nVert
		ops = append(ops, graph.OpInsert(src, dst))
		if i%7 == 3 {
			ops = append(ops, graph.OpDelete(src, dst))
		}
	}
	for start := 0; start < len(ops); start += 128 {
		end := min(start+128, len(ops))
		if err := st.Apply(ops[start:end]); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Apply(ops[start:end]); err != nil {
			t.Fatal(err)
		}
	}

	view := st.View()
	defer view.Release()
	cv := view.Snapshot().(*graph.ClusterView)

	if got, want := graph.CountEdges(cv), cv.NumEdges(); got != want {
		t.Fatalf("CountEdges = %d, NumEdges = %d", got, want)
	}

	// Every shard holds exactly the vertices it owns.
	for sh := 0; sh < c.Shards(); sh++ {
		sv := c.Shard(sh).View()
		for v := graph.V(0); int(v) < sv.NumVertices(); v++ {
			if sv.Degree(v) > 0 && part.Owner(v, c.Shards()) != sh {
				t.Fatalf("vertex %d (owner %d) has adjacency on shard %d",
					v, part.Owner(v, c.Shards()), sh)
			}
		}
		sv.Release()
	}

	// Composite reads match the oracle.
	var buf []graph.V
	for v := graph.V(0); v < nVert; v++ {
		want := append([]graph.V(nil), oracle.Neighbors(v)...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := append([]graph.V(nil), view.CopyNeighbors(v, buf[:0])...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !equalV(got, want) {
			t.Fatalf("CopyNeighbors(%d) = %v, oracle %v", v, got, want)
		}
		if view.Degree(v) != len(want) {
			t.Fatalf("Degree(%d) = %d, oracle %d", v, view.Degree(v), len(want))
		}
	}

	// The composite sweep visits every vertex of the dense range once,
	// with the same adjacency the per-vertex path reports.
	visited := make(map[graph.V]int)
	view.Sweep(0, graph.V(view.NumVertices()), nil, func(u graph.V, dsts []graph.V) {
		visited[u]++
		got := append([]graph.V(nil), dsts...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := append([]graph.V(nil), oracle.Neighbors(u)...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !equalV(got, want) {
			t.Fatalf("Sweep(%d) = %v, oracle %v", u, got, want)
		}
	})
	for v := graph.V(0); int(v) < view.NumVertices(); v++ {
		if visited[v] != 1 {
			t.Fatalf("sweep visited vertex %d %d times", v, visited[v])
		}
	}

	// The generation vector names the cut and is stable per snapshot.
	g1 := cv.Gens()
	if len(g1) != c.Shards() {
		t.Fatalf("Gens len %d, want %d", len(g1), c.Shards())
	}
	if err := st.Apply([]graph.Op{graph.OpInsert(1, 5)}); err != nil {
		t.Fatal(err)
	}
	v2 := st.View()
	g2 := v2.Snapshot().(*graph.ClusterView).Gens()
	v2.Release()
	if fmt.Sprint(g1) == fmt.Sprint(g2) {
		t.Fatalf("generation vector unchanged across a dispatch: %v", g1)
	}
}

// TestClusterRecoveryAggregates pins the composite recovery report:
// after a graceful checkpoint-and-reopen of every member, the Cluster
// reports one aggregated RecoveryStats.
func TestClusterRecoveryAggregates(t *testing.T) {
	cfg := dgap.DefaultConfig(64, 512)
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	arenas := make([]*pmem.Arena, 2)
	members := make([]graph.System, 2)
	for i := range members {
		arenas[i] = pmem.New(256 << 20)
		g, err := dgap.New(arenas[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = g
	}
	c, err := graph.NewCluster(members, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := graph.Open(c)
	if err := st.Apply([]graph.Op{graph.OpInsert(1, 2), graph.OpInsert(70, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	for i := range members {
		g, err := dgap.Open(arenas[i], cfg)
		if err != nil {
			t.Fatalf("reopen shard %d: %v", i, err)
		}
		members[i] = g
	}
	c2, err := graph.NewCluster(members, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2 := graph.Open(c2)
	rs, ok := st2.Recovery()
	if !ok {
		t.Fatal("no recovery report from reopened cluster")
	}
	if !rs.Graceful {
		t.Fatalf("recovery not graceful: %+v", rs)
	}
	v := st2.View()
	if got := v.NumEdges(); got != 2 {
		t.Fatalf("NumEdges after reopen = %d, want 2", got)
	}
	v.Release()
}

// TestPartitionOpsMatchesRoutes pins the hoisted splitter: per-shard
// order preservation, exact multiset coverage, and agreement with the
// route function for each built-in route.
func TestPartitionOpsMatchesRoutes(t *testing.T) {
	var ops []graph.Op
	for i := 0; i < 500; i++ {
		ops = append(ops, graph.Op{
			Edge: graph.Edge{Src: graph.V(i * 7 % 97), Dst: graph.V(i)},
			Del:  i%5 == 0,
		})
	}
	routes := map[string]func(graph.Op, int) int{
		"src":        graph.RouteBySrc(4),
		"roundrobin": graph.RouteRoundRobin(4),
		"owner":      graph.RouteByOwner(4, graph.BlockCyclic{Block: 8}),
		"resource":   graph.RouteByResource(4, func(e graph.Edge) int { return int(e.Dst) / 3 }),
	}
	for name, route := range routes {
		t.Run(name, func(t *testing.T) {
			parts := graph.PartitionOps(ops, 4, route)
			total := 0
			cursor := 0
			idx := make([]int, 4)
			for i, o := range ops {
				sh := route(o, i)
				if parts[sh][idx[sh]] != o {
					t.Fatalf("op %d out of order on shard %d", i, sh)
				}
				idx[sh]++
				cursor++
			}
			for sh, p := range parts {
				total += len(p)
				if idx[sh] != len(p) {
					t.Fatalf("shard %d has %d extra ops", sh, len(p)-idx[sh])
				}
			}
			if total != len(ops) {
				t.Fatalf("partitions carry %d ops, want %d", total, len(ops))
			}
		})
	}
}
