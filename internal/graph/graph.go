// Package graph defines the vertex/edge types and the snapshot interface
// shared by every graph system in this repository (DGAP and the baselines
// it is evaluated against) and consumed by the analytics kernels.
package graph

// V is a vertex identifier. DGAP stores destination ids in 4 bytes and
// reserves the top two bits for the pivot and tombstone flags, so valid
// ids are below 1<<30.
type V = uint32

// MaxV is the largest usable vertex id (2^30 - 1).
const MaxV V = 1<<30 - 1

// Edge is a directed edge. Undirected graphs are represented by storing
// both directions, as the GAP benchmark suite does.
type Edge struct {
	Src, Dst V
}

// Snapshot is a consistent, immutable view of a graph at a point in time.
// Analysis kernels run against Snapshots only, so a framework's update
// path can proceed concurrently (frameworks differ in how stale the
// snapshot is allowed to be — that difference is part of what the paper
// evaluates).
type Snapshot interface {
	// NumVertices returns the size of the vertex id space (ids are dense
	// in [0, NumVertices)).
	NumVertices() int
	// NumEdges returns the number of directed edges visible in this
	// snapshot.
	NumEdges() int64
	// Degree returns the out-degree of v in this snapshot.
	Degree(v V) int
	// Neighbors calls fn for each out-neighbor of v in this snapshot
	// until fn returns false.
	Neighbors(v V, fn func(dst V) bool)
}

// System is a dynamic graph framework: it ingests edges and serves
// consistent snapshots for analysis.
type System interface {
	Name() string
	// InsertEdge adds a directed edge. It returns once the edge is
	// durable under the framework's own guarantee (which, for some
	// baselines, is deliberately weaker than DGAP's).
	InsertEdge(src, dst V) error
	// Snapshot returns a consistent view of the graph as of now.
	Snapshot() Snapshot
	// NoopRelease: snapshots are garbage-collected; systems that hold
	// update locks during snapshot creation release them before
	// returning.
}

// Deleter is implemented by systems that support edge deletion.
type Deleter interface {
	DeleteEdge(src, dst V) error
}

// Closer is implemented by systems with a graceful-shutdown path.
type Closer interface {
	Close() error
}

// CountEdges iterates a snapshot and counts visible directed edges; a
// testing helper that cross-checks NumEdges.
func CountEdges(s Snapshot) int64 {
	var n int64
	for v := 0; v < s.NumVertices(); v++ {
		s.Neighbors(V(v), func(V) bool { n++; return true })
	}
	return n
}

// Adjacency materializes a snapshot into a plain adjacency list; a
// testing helper for equivalence checks between systems.
func Adjacency(s Snapshot) [][]V {
	out := make([][]V, s.NumVertices())
	for v := 0; v < s.NumVertices(); v++ {
		s.Neighbors(V(v), func(d V) bool {
			out[v] = append(out[v], d)
			return true
		})
	}
	return out
}
