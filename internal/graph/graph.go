// Package graph defines the vertex/edge types, the backend SPI
// (System and its optional capability interfaces) shared by every graph
// system in this repository, and the two resolved handles every
// consumer works through:
//
//   - Store — opened once via Open(sys) — is the mutation handle. It
//     resolves the system's capabilities into a Caps bitset (CapBatch,
//     CapDelete, CapSweep, CapClose, ...) exactly once and exposes one
//     mutation entry point, Apply, over mixed insert/delete op streams
//     (Op, OpInsert, OpDelete). Backends with a native mixed path
//     (Applier — DGAP) get the stream unsplit; the rest get its
//     inserts and deletes as one batch each, inserts first — the
//     multiset-exact split the sharded router has always dispatched.
//   - View — returned by Store.View() or ViewOf(snapshot) — is the read
//     handle: one consistent snapshot with the bulk and sweep fast
//     paths resolved at construction and an explicit Release that
//     threads the backend's snapshot accounting (DGAP's compaction
//     gate).
//
// Underneath, the backend SPI keeps its symmetric two-tier shape, now
// as internals behind Store and View:
//
//	Neighbors   ↔ InsertEdge            (scalar, universal)
//	Bulk/Sweep  ↔ Batch/Deletes/Apply   (bulk, amortized where implemented)
//
// On the read side, Neighbors is the classic per-edge callback — simple,
// universal, one closure invocation per edge; BulkSnapshot.CopyNeighbors
// appends a vertex's whole adjacency into caller scratch in one pass,
// and Sweeper amortizes per-vertex synchronization across ascending
// ranges. On the write side, InsertEdge pays locking, durability fencing
// and trigger bookkeeping per edge; BatchWriter.InsertBatch amortizes
// all three across a batch (DGAP per PMA-section group, BAL and XPGraph
// per block fill, LLAMA and GraphOne per ingestion-lock round), with
// BatchDeleter the delete-side twin. Deletion support is optional: a
// delete cancels one live (src, dst) edge, fails with ErrEdgeNotFound
// when no live copy exists, and is rejected wholesale by the static CSR
// and LLAMA's append-only levels (ErrDeletesUnsupported). The uniform
// free-function adapters (Bulk, Sweep, Batch, Deletes) remain for the
// implementation and its tests; external code resolves capabilities
// through Open instead of re-asserting them at call sites.
//
// # Clusters
//
// Cluster scales the Store surface across partitions: NewCluster opens
// N member Stores and is itself a System, so Open(cluster) yields a
// Store indistinguishable from a single-backend one. The contract:
//
//   - Placement. A Partitioner (default BlockCyclic, block
//     DefaultPartitionBlock) maps each vertex id to its owning shard;
//     an edge lives on Owner(Src), so one vertex's whole adjacency is
//     answered by one member. PartitionOps is the shared splitting
//     primitive — workload.Router routes through the same functions,
//     so ingest sharding and storage sharding agree by construction.
//   - Mutation. Apply splits a mixed op stream per shard and
//     dispatches per-shard batches with per-shard sequencing; a batch
//     that mixes shards is applied under the cluster's cut bracket so
//     no concurrent snapshot can observe half of it.
//   - Reads. Snapshot returns a ClusterView pinning one member
//     snapshot per shard at a consistent op-stream cut, named by a
//     generation vector (ViewGens). ClusterView satisfies the bulk and
//     sweep fast paths, so kernels and point reads run unchanged over
//     the composite; SweepNeighbors forwards maximal same-owner vertex
//     runs to each member's native sweep.
//   - Capabilities. A Cluster's Caps are the truthful intersection of
//     its members' — it reports CapsReporter so Open masks exactly the
//     bits every member supports. Checkpoint/Recovery fan out and
//     aggregate when every member is recoverable.
package graph

import (
	"errors"
	"fmt"
)

// V is a vertex identifier. DGAP stores destination ids in 4 bytes and
// reserves the top two bits for the pivot and tombstone flags, so valid
// ids are below 1<<30.
type V = uint32

// MaxV is the largest usable vertex id (2^30 - 1).
const MaxV V = 1<<30 - 1

// Edge is a directed edge. Undirected graphs are represented by storing
// both directions, as the GAP benchmark suite does.
type Edge struct {
	Src, Dst V
}

// Snapshot is a consistent, immutable view of a graph at a point in time.
// Analysis kernels run against Snapshots only, so a framework's update
// path can proceed concurrently (frameworks differ in how stale the
// snapshot is allowed to be — that difference is part of what the paper
// evaluates).
type Snapshot interface {
	// NumVertices returns the size of the vertex id space (ids are dense
	// in [0, NumVertices)).
	NumVertices() int
	// NumEdges returns the number of directed edges visible in this
	// snapshot.
	NumEdges() int64
	// Degree returns the out-degree of v in this snapshot.
	Degree(v V) int
	// Neighbors calls fn for each out-neighbor of v in this snapshot
	// until fn returns false.
	Neighbors(v V, fn func(dst V) bool)
}

// BulkSnapshot extends Snapshot with an append-style bulk neighbor copy.
// It is the fast path for analytics: one call per vertex instead of one
// callback per edge, with the caller's scratch buffer reused across
// vertices so the steady state allocates nothing.
type BulkSnapshot interface {
	Snapshot
	// CopyNeighbors appends v's out-neighbors to buf — in exactly the
	// order Neighbors would deliver them — and returns the extended
	// slice. The caller owns buf; passing the previous return value
	// re-sliced to its prefix (buf[:0] for a fresh vertex) makes the
	// copy amortized zero-allocation once the buffer has grown to the
	// maximum degree.
	CopyNeighbors(v V, buf []V) []V
}

// Sweeper is optionally implemented by snapshots that can amortize
// per-vertex synchronization (locks, epoch pins) across an ascending
// vertex range — DGAP takes each PM section lock once per run of
// consecutive vertices instead of once per vertex. fn receives each
// vertex's destinations in a slice that is only valid during the call.
type Sweeper interface {
	// SweepNeighbors calls fn once for every vertex in [lo, hi), using
	// buf as scratch, and returns the (possibly grown) scratch for
	// reuse by the next range.
	SweepNeighbors(lo, hi V, buf []V, fn func(v V, dsts []V)) []V
}

// Bulk returns s as a BulkSnapshot: s itself when it has a native bulk
// path, otherwise an adapter that materializes Neighbors callbacks into
// the scratch buffer (correct everywhere, fast where implemented).
func Bulk(s Snapshot) BulkSnapshot {
	if bs, ok := s.(BulkSnapshot); ok {
		return bs
	}
	return bulkAdapter{s}
}

type bulkAdapter struct{ Snapshot }

func (b bulkAdapter) CopyNeighbors(v V, buf []V) []V {
	b.Snapshot.Neighbors(v, func(d V) bool {
		buf = append(buf, d)
		return true
	})
	return buf
}

// Sweep iterates every vertex in [lo, hi) through the snapshot's fastest
// available path: the backend's own Sweeper when present, a per-vertex
// CopyNeighbors loop otherwise. It returns the scratch buffer for reuse.
func Sweep(bs BulkSnapshot, lo, hi V, buf []V, fn func(v V, dsts []V)) []V {
	if sw, ok := bs.(Sweeper); ok {
		return sw.SweepNeighbors(lo, hi, buf, fn)
	}
	for v := lo; v < hi; v++ {
		buf = bs.CopyNeighbors(v, buf[:0])
		fn(v, buf)
	}
	return buf
}

// System is a dynamic graph framework: it ingests edges and serves
// consistent snapshots for analysis.
type System interface {
	Name() string
	// InsertEdge adds a directed edge. It returns once the edge is
	// durable under the framework's own guarantee (which, for some
	// baselines, is deliberately weaker than DGAP's).
	InsertEdge(src, dst V) error
	// Snapshot returns a consistent view of the graph as of now.
	Snapshot() Snapshot
	// NoopRelease: snapshots are garbage-collected; systems that hold
	// update locks during snapshot creation release them before
	// returning.
}

// BatchWriter is the bulk write path, the symmetric counterpart of
// BulkSnapshot: one call ingests a whole edge slice, so a backend can
// take its write locks once per group of edges, coalesce durability
// flushes, and defer maintenance (rebalance checks, archiving) to batch
// boundaries instead of paying all three per edge. When InsertBatch
// returns nil every edge in the batch is durable under the framework's
// own guarantee; on error an arbitrary subset of the batch may have
// been applied (implementations reorder internally — by PMA section, by
// source vertex — so the applied subset is not a stream prefix, and
// resubmitting the batch can duplicate edges). The batch slice is
// read-only to the implementation and not retained.
type BatchWriter interface {
	InsertBatch(edges []Edge) error
}

// Batch returns sys's bulk write path: sys itself when it implements
// BatchWriter natively, otherwise a scalar-loop adapter (correct
// everywhere, fast where implemented) — the write-side twin of Bulk.
func Batch(sys System) BatchWriter {
	if bw, ok := sys.(BatchWriter); ok {
		return bw
	}
	return scalarBatch{sys}
}

type scalarBatch struct{ System }

func (s scalarBatch) InsertBatch(edges []Edge) error {
	return scalarLoop(edges, s.System.InsertEdge)
}

// scalarLoop is the one stream-order fallback loop both scalar batch
// adapters share: it drives every edge through the per-edge call and
// wraps the first failure in BatchError, so Index names both the
// failing edge and the applied prefix (edges[:Index] landed,
// edges[Index:] did not).
func scalarLoop(edges []Edge, apply func(src, dst V) error) error {
	for i, e := range edges {
		if err := apply(e.Src, e.Dst); err != nil {
			return &BatchError{Index: i, Edge: e, Err: err}
		}
	}
	return nil
}

// BatchError decorates a failure on the scalar batch fallback path with
// the index (and value) of the edge that failed — the batch-level twin
// of workload.ShardError, which names the failing shard. Because the
// fallback applies edges in stream order, Index also tells the caller
// exactly which prefix of the batch was applied: edges[:Index] landed,
// edges[Index:] did not. (Native InsertBatch implementations reorder
// internally and so cannot offer this; see BatchWriter.)
type BatchError struct {
	Index int
	Edge  Edge
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("graph: batch edge %d (%d->%d): %v", e.Index, e.Edge.Src, e.Edge.Dst, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// ErrEdgeNotFound reports a delete naming an edge with no live copy:
// deletes cancel exactly one live (src, dst) occurrence, so a delete
// that matches nothing is an error, not a no-op (systems wrap this
// sentinel; match with errors.Is).
var ErrEdgeNotFound = errors.New("graph: no live edge to delete")

// ErrDeletesUnsupported reports a delete routed at a system that does
// not implement deletion at all (CSR is static, LLAMA's levels are
// append-only).
var ErrDeletesUnsupported = errors.New("graph: system does not support deletes")

// Deleter is implemented by systems that support edge deletion.
// DeleteEdge cancels one live (src, dst) edge — snapshots taken before
// the delete keep seeing it; snapshots taken after do not — and fails
// with an error wrapping ErrEdgeNotFound when no live copy exists.
type Deleter interface {
	DeleteEdge(src, dst V) error
}

// BatchDeleter is the bulk delete path, the delete-side twin of
// BatchWriter: one call cancels a whole edge slice, letting a backend
// amortize locking and durability fencing across the batch (DGAP
// groups tombstones by PMA section exactly as InsertBatch groups
// inserts). The same partial-application contract applies: on error an
// arbitrary subset of the batch may have been applied unless the
// implementation documents stream order.
type BatchDeleter interface {
	DeleteBatch(edges []Edge) error
}

// BatchMutator combines both single-kind bulk write paths. Mixed
// streams flow through Applier/Store.Apply instead; this surface
// remains for backends that implement both kinds natively without a
// mixed path.
type BatchMutator interface {
	BatchWriter
	BatchDeleter
}

// Deletes returns sys's bulk delete path: sys itself when it
// implements BatchDeleter natively, a scalar-loop adapter over its
// Deleter otherwise, or nil when sys cannot delete at all — the
// delete-side twin of Batch, except that rejection is a real state
// here (callers must check for nil rather than assume support).
func Deletes(sys System) BatchDeleter {
	if bd, ok := sys.(BatchDeleter); ok {
		return bd
	}
	if d, ok := sys.(Deleter); ok {
		return scalarDeletes{d}
	}
	return nil
}

type scalarDeletes struct{ d Deleter }

// DeleteBatch applies the batch through one DeleteEdge per edge via the
// same stream-order scalarLoop the insert fallback uses, so a failure's
// BatchError names the failing edge index and the applied prefix for
// deletes too (workload.ShardError surfaces it per shard).
func (s scalarDeletes) DeleteBatch(edges []Edge) error {
	return scalarLoop(edges, s.d.DeleteEdge)
}

// Closer is implemented by systems with a graceful-shutdown path.
type Closer interface {
	Close() error
}

// TombBit marks a raw adjacency word as a tombstone. Vertex ids stay
// below 1<<30 (MaxV), leaving the bit free; every tombstone-appending
// backend (DGAP's PM slots, BAL's blocks, chunkadj's chunks) shares
// this encoding so the kill-table filter below applies uniformly.
const TombBit = uint32(1) << 30

// FilterTombs compacts staged raw adjacency words in place: buf[base:]
// holds a vertex's visible physical entries in order (edges, and
// tombstones flagged with TombBit); each tombstone is removed together
// with one earliest remaining occurrence of its destination, and the
// truncated buffer of surviving live destinations is returned. This is
// the one kill-table pass every tombstone-filtering snapshot read path
// uses — the semantics the churn conformance suite pins across
// backends, so a change here changes all of them together.
func FilterTombs(buf []V, base int) []V {
	var kills map[uint32]int
	for _, r := range buf[base:] {
		if uint32(r)&TombBit != 0 {
			if kills == nil {
				kills = make(map[uint32]int)
			}
			kills[uint32(r)&uint32(MaxV)]++
		}
	}
	if kills == nil {
		return buf
	}
	w := base
	for _, r := range buf[base:] {
		rv := uint32(r)
		if rv&TombBit != 0 {
			continue
		}
		d := rv & uint32(MaxV)
		if kills[d] > 0 {
			kills[d]--
			continue
		}
		buf[w] = V(d)
		w++
	}
	return buf[:w]
}

// SrcRun is one source vertex's grouped destinations, in stream order.
type SrcRun struct {
	Src  V
	Dsts []V
}

// GroupBySrc buckets an edge slice by source vertex — the grouping
// every per-vertex batched write path (block fills, chunk fills, level
// fragments) starts from. Stream order is preserved twice over: within
// each source's destination run, and across runs (sources appear in
// first-appearance order), so batch application — and with it physical
// layout — is deterministic run-to-run instead of following Go's
// randomized map iteration.
func GroupBySrc(edges []Edge) []SrcRun {
	idx := make(map[V]int, 16)
	runs := make([]SrcRun, 0, 16)
	for _, e := range edges {
		i, ok := idx[e.Src]
		if !ok {
			i = len(runs)
			idx[e.Src] = i
			runs = append(runs, SrcRun{Src: e.Src})
		}
		runs[i].Dsts = append(runs[i].Dsts, e.Dst)
	}
	return runs
}

// CountEdges iterates a snapshot and counts visible directed edges; a
// testing helper that cross-checks NumEdges.
func CountEdges(s Snapshot) int64 {
	var n int64
	for v := 0; v < s.NumVertices(); v++ {
		s.Neighbors(V(v), func(V) bool { n++; return true })
	}
	return n
}

// Adjacency materializes a snapshot into a plain adjacency list; a
// testing helper for equivalence checks between systems.
func Adjacency(s Snapshot) [][]V {
	out := make([][]V, s.NumVertices())
	for v := 0; v < s.NumVertices(); v++ {
		s.Neighbors(V(v), func(d V) bool {
			out[v] = append(out[v], d)
			return true
		})
	}
	return out
}
