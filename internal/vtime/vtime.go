// Package vtime provides a virtual-time execution model for the
// scalability experiments. The paper's testbed has 18 physical cores;
// this environment has one, so wall-clock multi-thread speedups are
// physically impossible here. Instead, logical threads advance private
// virtual clocks: each operation executes serially (so data structures
// stay correct and measurable) while its measured duration is charged to
// the logical thread that issued it, and lock acquisitions serialize in
// virtual time. The simulated elapsed time of the parallel phase is the
// maximum thread clock, which reproduces the scaling *shape* —
// contention, skewed partitions, serial sections — without parallel
// hardware.
//
// Two models are provided:
//
//   - Runner: a discrete-event driver for update workloads (writer
//     threads inserting edges under per-resource locks).
//
//   - Pool: a parallel-for executor for analysis kernels, with a real
//     goroutine mode (used by correctness tests) and a virtual mode that
//     assigns measured chunk durations to logical threads using greedy
//     (LPT-style) load balancing plus a per-phase barrier.
package vtime

import (
	"sort"
	"sync"
	"time"
)

// Runner simulates n logical writer threads issuing operations that
// contend on named resources (e.g. PMA sections). Operations run
// serially in causal order: at each step the thread with the smallest
// virtual clock executes its next operation.
type Runner struct {
	clocks []time.Duration
	locks  map[int]time.Duration
	// LockOverhead approximates the cost of one contended handoff.
	LockOverhead time.Duration
}

// NewRunner creates a Runner with n logical threads.
func NewRunner(n int) *Runner {
	return &Runner{
		clocks:       make([]time.Duration, n),
		locks:        make(map[int]time.Duration),
		LockOverhead: 100 * time.Nanosecond,
	}
}

// Threads returns the logical thread count.
func (r *Runner) Threads() int { return len(r.clocks) }

// NextThread returns the id of the logical thread that should issue the
// next operation (the one with the smallest virtual clock).
func (r *Runner) NextThread() int {
	best, bt := 0, r.clocks[0]
	for i, c := range r.clocks {
		if c < bt {
			best, bt = i, c
		}
	}
	return best
}

// Exec runs op on logical thread t while holding the named resources:
// the thread's clock first advances to each resource's free time (lock
// wait), the operation's real measured duration is added, and the
// resources become free at the resulting clock.
func (r *Runner) Exec(t int, resources []int, op func()) {
	clock := r.clocks[t]
	for _, res := range resources {
		if free, ok := r.locks[res]; ok && free > clock {
			clock = free + r.LockOverhead
		}
	}
	t0 := time.Now()
	op()
	clock += time.Since(t0)
	for _, res := range resources {
		r.locks[res] = clock
	}
	r.clocks[t] = clock
}

// Elapsed returns the simulated parallel makespan.
func (r *Runner) Elapsed() time.Duration {
	var m time.Duration
	for _, c := range r.clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// Pool executes parallel-for loops for the analysis kernels.
type Pool struct {
	// Threads is the logical (virtual mode) or real (goroutine mode)
	// worker count.
	Threads int
	// Virtual selects virtual-time accounting: the body runs serially,
	// chunk durations are LPT-assigned to logical threads.
	Virtual bool
	// BarrierOverhead is charged per For call in virtual mode (the cost
	// of one synchronization point).
	BarrierOverhead time.Duration

	mu     sync.Mutex
	vclock time.Duration // accumulated virtual elapsed time
}

// NewPool returns a Pool with t workers. Virtual mode is selected
// automatically when t exceeds the real CPU count available — callers can
// override the field afterwards.
func NewPool(t int, virtual bool) *Pool {
	return &Pool{Threads: t, Virtual: virtual, BarrierOverhead: 5 * time.Microsecond}
}

// For splits [0, n) into chunks of size grain and runs body(lo, hi) for
// each. It is a barrier: all chunks complete before For returns. In
// virtual mode the chunks execute serially and their measured durations
// are packed onto Threads logical workers; the makespan (plus barrier
// overhead) accrues to the pool's virtual clock.
func (p *Pool) For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p.Threads <= 1 && !p.Virtual {
		t0 := time.Now()
		body(0, n)
		p.addClock(time.Since(t0))
		return
	}
	nChunks := (n + grain - 1) / grain
	bounds := make([]int, nChunks+1)
	for c := 1; c < nChunks; c++ {
		bounds[c] = c * grain
	}
	bounds[nChunks] = n
	p.ForRanges(bounds, func(_, lo, hi int) { body(lo, hi) })
}

// ForRanges runs body(c, lo, hi) for every range [bounds[c], bounds[c+1])
// of the (ascending) boundary list. It is the irregular-chunk counterpart
// of For — the analytics kernels pass degree-aware equal-edge boundaries
// so skewed graphs do not serialize on hub-heavy chunks — and, like For,
// a barrier: all ranges complete before it returns. In virtual mode each
// range's measured duration is packed onto the logical workers.
func (p *Pool) ForRanges(bounds []int, body func(c, lo, hi int)) {
	nChunks := len(bounds) - 1
	if nChunks <= 0 {
		return
	}
	if p.Threads <= 1 && !p.Virtual {
		t0 := time.Now()
		for c := 0; c < nChunks; c++ {
			body(c, bounds[c], bounds[c+1])
		}
		p.addClock(time.Since(t0))
		return
	}
	if p.Virtual {
		durs := make([]time.Duration, nChunks)
		for c := 0; c < nChunks; c++ {
			t0 := time.Now()
			body(c, bounds[c], bounds[c+1])
			durs[c] = time.Since(t0)
		}
		p.addClock(makespan(durs, p.Threads) + p.BarrierOverhead)
		return
	}
	// Real goroutine mode.
	t0 := time.Now()
	var wg sync.WaitGroup
	next := make(chan int, nChunks)
	for c := 0; c < nChunks; c++ {
		next <- c
	}
	close(next)
	for w := 0; w < p.Threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				body(c, bounds[c], bounds[c+1])
			}
		}()
	}
	wg.Wait()
	p.addClock(time.Since(t0))
}

// Serial runs a non-parallelizable region, charging its real duration.
func (p *Pool) Serial(body func()) {
	t0 := time.Now()
	body()
	p.addClock(time.Since(t0))
}

func (p *Pool) addClock(d time.Duration) {
	p.mu.Lock()
	p.vclock += d
	p.mu.Unlock()
}

// Elapsed returns the accumulated (virtual or real) time of all For and
// Serial phases since the last Reset.
func (p *Pool) Elapsed() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vclock
}

// Reset zeroes the pool's clock.
func (p *Pool) Reset() {
	p.mu.Lock()
	p.vclock = 0
	p.mu.Unlock()
}

// makespan packs chunk durations onto t workers using the
// longest-processing-time-first heuristic and returns the resulting
// parallel finish time.
func makespan(durs []time.Duration, t int) time.Duration {
	if t < 1 {
		t = 1
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	loads := make([]time.Duration, t)
	for _, d := range sorted {
		mi := 0
		for i := 1; i < t; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += d
	}
	var m time.Duration
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}
