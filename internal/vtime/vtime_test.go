package vtime

import (
	"sync/atomic"
	"testing"
	"time"
)

func busy(d time.Duration) {
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

func TestRunnerNoContentionScales(t *testing.T) {
	// Independent resources: 4 threads doing equal work should finish in
	// ~1/4 the serial time.
	serial := NewRunner(1)
	for i := 0; i < 40; i++ {
		serial.Exec(0, []int{i}, func() { busy(100 * time.Microsecond) })
	}
	par := NewRunner(4)
	for i := 0; i < 40; i++ {
		par.Exec(par.NextThread(), []int{i}, func() { busy(100 * time.Microsecond) })
	}
	ratio := float64(serial.Elapsed()) / float64(par.Elapsed())
	if ratio < 3.0 || ratio > 5.0 {
		t.Errorf("speedup = %.2f, want ~4", ratio)
	}
}

func TestRunnerFullContentionSerializes(t *testing.T) {
	// One shared resource: more threads must not help.
	par := NewRunner(8)
	for i := 0; i < 40; i++ {
		par.Exec(par.NextThread(), []int{7}, func() { busy(100 * time.Microsecond) })
	}
	serial := NewRunner(1)
	for i := 0; i < 40; i++ {
		serial.Exec(0, []int{7}, func() { busy(100 * time.Microsecond) })
	}
	ratio := float64(serial.Elapsed()) / float64(par.Elapsed())
	if ratio > 1.2 {
		t.Errorf("contended speedup = %.2f, want ~1", ratio)
	}
}

func TestRunnerNextThreadBalances(t *testing.T) {
	r := NewRunner(3)
	counts := make([]int, 3)
	for i := 0; i < 30; i++ {
		th := r.NextThread()
		counts[th]++
		r.Exec(th, nil, func() { busy(10 * time.Microsecond) })
	}
	for i, c := range counts {
		if c < 8 || c > 12 {
			t.Errorf("thread %d executed %d ops, want ~10", i, c)
		}
	}
}

func TestPoolRealModeRunsAllChunks(t *testing.T) {
	p := NewPool(4, false)
	var sum atomic.Int64
	p.For(1000, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if sum.Load() != 499500 {
		t.Errorf("sum = %d", sum.Load())
	}
}

func TestPoolVirtualModeRunsAllChunksSerially(t *testing.T) {
	p := NewPool(16, true)
	var sum int64 // no atomics needed: virtual mode is serial
	p.For(1000, 10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += int64(i)
		}
	})
	if sum != 499500 {
		t.Errorf("sum = %d", sum)
	}
}

func TestPoolVirtualSpeedup(t *testing.T) {
	// Timing-based: on a loaded single-CPU box individual chunk
	// measurements can be polluted by scheduler hiccups, so retry a few
	// times and accept a generous band around the ideal 16x.
	for attempt := 0; attempt < 5; attempt++ {
		work := func(lo, hi int) { busy(time.Duration(hi-lo) * 10 * time.Microsecond) }
		p1 := NewPool(1, true)
		p1.For(160, 10, work)
		p16 := NewPool(16, true)
		p16.For(160, 10, work)
		ratio := float64(p1.Elapsed()) / float64(p16.Elapsed())
		if ratio >= 4 && ratio <= 40 {
			return
		}
		t.Logf("attempt %d: speedup = %.1f, retrying", attempt, ratio)
	}
	t.Error("virtual 16-thread speedup never landed in [4,40]")
}

func TestPoolSerialSectionLimitsScaling(t *testing.T) {
	// Amdahl: half the work serial -> 16 threads give < 2x.
	run := func(threads int) time.Duration {
		p := NewPool(threads, true)
		p.Serial(func() { busy(2 * time.Millisecond) })
		p.For(16, 1, func(lo, hi int) { busy(time.Duration(hi-lo) * 125 * time.Microsecond) })
		return p.Elapsed()
	}
	t1, t16 := run(1), run(16)
	ratio := float64(t1) / float64(t16)
	if ratio > 2.2 {
		t.Errorf("Amdahl violated: speedup %.2f with 50%% serial fraction", ratio)
	}
}

func TestPoolReset(t *testing.T) {
	p := NewPool(2, true)
	p.For(10, 1, func(lo, hi int) { busy(10 * time.Microsecond) })
	if p.Elapsed() == 0 {
		t.Fatal("no time accrued")
	}
	p.Reset()
	if p.Elapsed() != 0 {
		t.Fatal("Reset did not zero the clock")
	}
}

func TestMakespanLPT(t *testing.T) {
	durs := []time.Duration{8, 7, 6, 5, 4, 3, 2, 1}
	if got := makespan(durs, 1); got != 36 {
		t.Errorf("t=1 makespan = %d", got)
	}
	got := makespan(durs, 4)
	if got != 9 { // LPT: {8,1} {7,2} {6,3} {5,4}
		t.Errorf("t=4 makespan = %d, want 9", got)
	}
	if got := makespan(durs, 100); got != 8 {
		t.Errorf("t=100 makespan = %d, want 8 (longest chunk)", got)
	}
}

func TestPoolZeroAndNegativeN(t *testing.T) {
	p := NewPool(4, false)
	called := false
	p.For(0, 10, func(lo, hi int) { called = true })
	p.For(-5, 10, func(lo, hi int) { called = true })
	if called {
		t.Error("body called for empty range")
	}
}
