// Package bal implements the Blocked Adjacency List baseline on
// (emulated) persistent memory: per-vertex chains of fixed-size edge
// blocks. Appending to a block tail makes insertion extremely cheap —
// one 4-byte persistent store — which is why the paper uses BAL as the
// insertion-speed yardstick; analysis suffers from pointer chasing
// across blocks, the opposite trade-off from CSR. Per-vertex locks give
// it finer-grained concurrency than DGAP's per-section locks, which is
// why it scales slightly better at high thread counts in Table 3.
//
// Durability: blocks are initialized to an empty-slot sentinel, so an
// append is durable with a single flush+fence of the edge slot — a
// recovery scan derives each block's fill level from the sentinels
// (there is no per-insert counter write, which would re-flush the same
// cache line on every insert and hit PM's in-place-update penalty).
package bal

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"dgap/internal/graph"
	"dgap/internal/pmem"
)

// BlockEdges is the number of edges per persistent block.
const BlockEdges = 60

// Block layout: [next u64][reserved u64][edges BlockEdges*4].
const blockBytes = 16 + BlockEdges*4

const emptySlot = uint32(0xFFFFFFFF)

// tombBit marks a block word as a tombstone cancelling one earlier
// occurrence of the same destination (vertex ids stay below 1<<30, so
// the bit is free — the same encoding DGAP's slots use). Deletion is
// append-only: block chains are shared with existing snapshots, whose
// visibility is a per-vertex word-count prefix, so words are never
// rewritten in place.
const tombBit = uint32(1) << 30

const idMask = tombBit - 1

// Graph is a blocked adjacency list.
type Graph struct {
	a  *pmem.Arena
	mu sync.RWMutex // guards the vertex table during growth

	verts  []vertex
	edges  atomic.Int64 // live edges
	blocks atomic.Int64 // blocks allocated (space accounting)
}

type vertex struct {
	mu    sync.Mutex
	head  pmem.Off // first block (0 = none)
	tail  pmem.Off // last block, where appends go
	count int64    // physical words acknowledged (edges + tombstones)
	live  int64    // live out-degree
	tombs int32    // tombstone words appended
}

// New creates a BAL over nVert vertices.
func New(a *pmem.Arena, nVert int) *Graph {
	return &Graph{a: a, verts: make([]vertex, nVert)}
}

// Name implements graph.System.
func (g *Graph) Name() string { return "BAL" }

func (g *Graph) ensure(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n <= len(g.verts) {
		return
	}
	nv := make([]vertex, n)
	for i := range g.verts {
		nv[i].head = g.verts[i].head
		nv[i].tail = g.verts[i].tail
		nv[i].count = g.verts[i].count
		nv[i].live = g.verts[i].live
		nv[i].tombs = g.verts[i].tombs
	}
	g.verts = nv
}

// appendWord appends one raw word (edge or tombstone) to the vertex's
// tail block with the scalar persistence discipline. The paper's BAL
// port keeps per-block metadata crash-consistent ("journaling and
// transaction for crash consistency makes it slower in many cases"):
// the word is flushed and fenced, then the block count is persisted in
// place, ordered after it — two flush+fence rounds per word. Called
// with the vertex lock held.
func (g *Graph) appendWord(v *vertex, val uint32) error {
	fill := v.count % BlockEdges
	if v.tail == 0 || (fill == 0 && v.count > 0) {
		blk, err := g.newBlock()
		if err != nil {
			return err
		}
		if v.tail == 0 {
			v.head = blk
		} else {
			// Persist the link before any edge lands in the new block.
			g.a.PersistU64(v.tail, blk)
		}
		v.tail = blk
		fill = 0
	}
	slot := v.tail + 16 + pmem.Off(fill)*4
	g.a.WriteU32(slot, val)
	g.a.Flush(slot, 4)
	g.a.Fence()
	g.a.PersistU64(v.tail+8, uint64(fill+1))
	v.count++
	return nil
}

// InsertEdge appends dst to src's tail block — one 4-byte persistent
// store — allocating and linking a new sentinel-initialized block when
// the tail is full.
func (g *Graph) InsertEdge(src, dst graph.V) error {
	if int(src) >= len(g.verts) || int(dst) >= len(g.verts) {
		g.ensure(int(max(src, dst)) + 1)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	v := &g.verts[src]
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := g.appendWord(v, dst); err != nil {
		return err
	}
	v.live++
	g.edges.Add(1)
	return nil
}

// DeleteEdge implements graph.Deleter: one live (src, dst) copy is
// cancelled by appending a tombstone word to the block chain — the same
// one-store append as an insert, so existing snapshots (word-count
// prefixes over the append-only chain) keep their history.
func (g *Graph) DeleteEdge(src, dst graph.V) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if int(src) >= len(g.verts) {
		return fmt.Errorf("bal: delete %d->%d: %w", src, dst, graph.ErrEdgeNotFound)
	}
	v := &g.verts[src]
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.live <= 0 || g.liveMatches(v, dst) <= 0 {
		return fmt.Errorf("bal: delete %d->%d: %w", src, dst, graph.ErrEdgeNotFound)
	}
	if err := g.appendWord(v, uint32(dst)|tombBit); err != nil {
		return err
	}
	v.live--
	v.tombs++
	g.edges.Add(-1)
	return nil
}

// liveMatches counts the live copies of dst in v's chain: edge
// occurrences minus tombstones for the same destination. Called with
// the vertex lock held.
func (g *Graph) liveMatches(v *vertex, dst graph.V) int64 {
	var n int64
	remaining := v.count
	blk := v.head
	for blk != 0 && remaining > 0 {
		k := min(int64(BlockEdges), remaining)
		view := g.a.Slice(blk+16, uint64(k)*4)
		for i := int64(0); i < k; i++ {
			w := binary.LittleEndian.Uint32(view[i*4:])
			if w&idMask == uint32(dst) {
				if w&tombBit != 0 {
					n--
				} else {
					n++
				}
			}
		}
		remaining -= k
		blk = g.a.ReadU64(blk)
	}
	return n
}

// InsertBatch implements graph.BatchWriter: edges are grouped by source
// vertex (stream order preserved within each source), each vertex lock
// is taken once per group, and each touched block pays two flush+fence
// rounds — slots, then the covering count — instead of two per edge:
// the same amortization the paper credits XPGraph's archiving threshold
// with.
func (g *Graph) InsertBatch(edges []graph.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	maxID := graph.V(0)
	for _, e := range edges {
		maxID = max(maxID, e.Src, e.Dst)
	}
	if int(maxID) >= len(g.verts) {
		g.ensure(int(maxID) + 1)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, run := range graph.GroupBySrc(edges) {
		// appendRun accounts live and edge counts itself, from the words
		// that actually landed.
		if err := g.appendRun(run.Src, run.Dsts); err != nil {
			return err
		}
	}
	return nil
}

// appendRun appends a source's pending destinations into its block
// chain under one vertex-lock acquisition, filling each block with one
// write burst and persisting per touched block, not per edge.
func (g *Graph) appendRun(src graph.V, dsts []graph.V) error {
	v := &g.verts[src]
	v.mu.Lock()
	defer v.mu.Unlock()
	n, err := g.fillRun(v, dsts)
	v.live += int64(n)
	g.edges.Add(int64(n))
	return err
}

// fillRun block-fills raw words (edges or tombstones) into v's chain,
// persisting per touched block, and reports how many words landed —
// callers must account live/tombstone counts from that number even on
// error (a mid-run block-allocation failure leaves the already-filled
// blocks counted in v.count, and a snapshot taken afterwards decodes
// them).
func (g *Graph) fillRun(v *vertex, dsts []graph.V) (int, error) {
	filled := 0
	for len(dsts) > 0 {
		fill := v.count % BlockEdges
		if v.tail == 0 || (fill == 0 && v.count > 0) {
			blk, err := g.newBlock()
			if err != nil {
				return filled, err
			}
			if v.tail == 0 {
				v.head = blk
			} else {
				g.a.PersistU64(v.tail, blk)
			}
			v.tail = blk
			fill = 0
		}
		n := min(int64(BlockEdges)-fill, int64(len(dsts)))
		first := v.tail + 16 + pmem.Off(fill)*4
		for i := int64(0); i < n; i++ {
			g.a.WriteU32(first+pmem.Off(i)*4, dsts[i])
		}
		// Same crash-consistency ordering as the scalar path, amortized
		// per block instead of per edge: the slots are durable before
		// the count that covers them is persisted.
		g.a.Flush(first, uint64(n)*4)
		g.a.Fence()
		g.a.PersistU64(v.tail+8, uint64(fill+n))
		v.count += n
		filled += int(n)
		dsts = dsts[n:]
	}
	return filled, nil
}

// DeleteBatch implements graph.BatchDeleter: tombstones are grouped by
// source vertex (stream order preserved within each source), each
// vertex lock is taken once, the group's live matches are counted in a
// single chain scan, and the tombstone words are block-filled with
// per-block persistence — the same amortization InsertBatch gets. On a
// failed live-match the batch aborts with an error wrapping
// graph.ErrEdgeNotFound; whole source groups applied before it stay
// applied (grouping reorders across sources, so no index is reported —
// the scalar fallback path is the one that names indices).
func (g *Graph) DeleteBatch(edges []graph.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	maxID := graph.V(0)
	for _, e := range edges {
		maxID = max(maxID, e.Src)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if int(maxID) >= len(g.verts) {
		return fmt.Errorf("bal: delete names vertex %d beyond %d: %w", maxID, len(g.verts), graph.ErrEdgeNotFound)
	}
	for _, run := range graph.GroupBySrc(edges) {
		if err := g.deleteRun(run.Src, run.Dsts); err != nil {
			return err
		}
	}
	return nil
}

// deleteRun validates and appends a source's tombstones under one
// vertex-lock acquisition. One chain scan bounds every delete in the
// group: a tombstone only cancels edges already in the chain, so
// match counts taken up front stay exact as the group's own tombstones
// are consumed from them in stream order.
func (g *Graph) deleteRun(src graph.V, dsts []graph.V) error {
	v := &g.verts[src]
	v.mu.Lock()
	defer v.mu.Unlock()
	matches := make(map[graph.V]int64, len(dsts))
	for _, d := range dsts {
		matches[d] = 0
	}
	remaining := v.count
	blk := v.head
	for blk != 0 && remaining > 0 {
		k := min(int64(BlockEdges), remaining)
		view := g.a.Slice(blk+16, uint64(k)*4)
		for i := int64(0); i < k; i++ {
			w := binary.LittleEndian.Uint32(view[i*4:])
			if c, ok := matches[graph.V(w&idMask)]; ok {
				if w&tombBit != 0 {
					matches[graph.V(w&idMask)] = c - 1
				} else {
					matches[graph.V(w&idMask)] = c + 1
				}
			}
		}
		remaining -= k
		blk = g.a.ReadU64(blk)
	}
	words := make([]graph.V, 0, len(dsts))
	for _, d := range dsts {
		if matches[d] <= 0 {
			return fmt.Errorf("bal: delete %d->%d: %w", src, d, graph.ErrEdgeNotFound)
		}
		matches[d]--
		words = append(words, d|graph.V(tombBit))
	}
	n, err := g.fillRun(v, words)
	v.live -= int64(n)
	v.tombs += int32(n)
	g.edges.Add(-int64(n))
	return err
}

// SpaceBytes reports the block-chain footprint (tombstone words
// included — BAL never reclaims them), the churn benchmark's space
// metric.
func (g *Graph) SpaceBytes() int64 { return g.blocks.Load() * blockBytes }

// newBlock allocates a block with all edge slots set to the empty
// sentinel (one bulk write + flush, amortized over BlockEdges inserts).
func (g *Graph) newBlock() (pmem.Off, error) {
	blk, err := g.a.AllocRegion("bal: edge block", blockBytes, pmem.CacheLineSize)
	if err != nil {
		return 0, err
	}
	g.blocks.Add(1)
	ff := make([]byte, BlockEdges*4)
	for i := range ff {
		ff[i] = 0xFF
	}
	g.a.WriteBytes(blk+16, ff)
	g.a.Flush(blk, blockBytes)
	g.a.Fence()
	return blk, nil
}

// Snapshot captures per-vertex counts; block chains are append-only so a
// count bounds exactly which words are visible.
func (g *Graph) Snapshot() graph.Snapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := len(g.verts)
	s := &Snapshot{g: g, counts: make([]int64, n), lives: make([]int64, n),
		tombs: make([]int32, n), heads: make([]pmem.Off, n)}
	var total int64
	for v := 0; v < n; v++ {
		g.verts[v].mu.Lock()
		s.counts[v] = g.verts[v].count
		s.lives[v] = g.verts[v].live
		s.tombs[v] = g.verts[v].tombs
		s.heads[v] = g.verts[v].head
		g.verts[v].mu.Unlock()
		total += s.lives[v]
	}
	s.edges = total
	return s
}

// Snapshot is a consistent view of a BAL graph.
type Snapshot struct {
	g      *Graph
	counts []int64 // physical words per vertex (edges + tombstones)
	lives  []int64
	tombs  []int32
	heads  []pmem.Off
	edges  int64
}

// NumVertices implements graph.Snapshot.
func (s *Snapshot) NumVertices() int { return len(s.counts) }

// NumEdges implements graph.Snapshot.
func (s *Snapshot) NumEdges() int64 { return s.edges }

// Degree implements graph.Snapshot (live out-degree).
func (s *Snapshot) Degree(v graph.V) int { return int(s.lives[v]) }

// Neighbors walks the block chain — the pointer chasing that hurts BAL's
// whole-graph analysis performance. Vertices with tombstones take the
// filtering path.
func (s *Snapshot) Neighbors(v graph.V, fn func(graph.V) bool) {
	if s.tombs[v] != 0 {
		for _, d := range s.filtered(v, nil) {
			if !fn(d) {
				return
			}
		}
		return
	}
	remaining := s.counts[v]
	blk := s.heads[v]
	a := s.g.a
	for blk != 0 && remaining > 0 {
		n := int64(BlockEdges)
		if n > remaining {
			n = remaining
		}
		view := a.Slice(blk+16, uint64(n)*4)
		for i := int64(0); i < n; i++ {
			d := binary.LittleEndian.Uint32(view[i*4:])
			if d == emptySlot {
				return
			}
			if !fn(graph.V(d)) {
				return
			}
		}
		remaining -= n
		blk = a.ReadU64(blk)
	}
}

// CopyNeighbors implements graph.BulkSnapshot: the same block-chain walk
// as Neighbors, decoded block-at-a-time into the caller's scratch.
func (s *Snapshot) CopyNeighbors(v graph.V, buf []graph.V) []graph.V {
	if s.tombs[v] != 0 {
		return s.filtered(v, buf)
	}
	remaining := s.counts[v]
	blk := s.heads[v]
	a := s.g.a
	for blk != 0 && remaining > 0 {
		n := min(int64(BlockEdges), remaining)
		view := a.Slice(blk+16, uint64(n)*4)
		for i := int64(0); i < n; i++ {
			d := binary.LittleEndian.Uint32(view[i*4:])
			if d == emptySlot {
				return buf
			}
			buf = append(buf, graph.V(d))
		}
		remaining -= n
		blk = a.ReadU64(blk)
	}
	return buf
}

// filtered appends v's live destinations to buf: the visible word
// prefix is staged raw, then compacted by the shared kill-table pass
// (graph.FilterTombs).
func (s *Snapshot) filtered(v graph.V, buf []graph.V) []graph.V {
	base := len(buf)
	remaining := s.counts[v]
	blk := s.heads[v]
	a := s.g.a
	for blk != 0 && remaining > 0 {
		n := min(int64(BlockEdges), remaining)
		view := a.Slice(blk+16, uint64(n)*4)
		for i := int64(0); i < n; i++ {
			w := binary.LittleEndian.Uint32(view[i*4:])
			if w == emptySlot {
				break
			}
			buf = append(buf, graph.V(w))
		}
		remaining -= n
		blk = a.ReadU64(blk)
	}
	return graph.FilterTombs(buf, base)
}
