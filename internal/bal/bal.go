// Package bal implements the Blocked Adjacency List baseline on
// (emulated) persistent memory: per-vertex chains of fixed-size edge
// blocks. Appending to a block tail makes insertion extremely cheap —
// one 4-byte persistent store — which is why the paper uses BAL as the
// insertion-speed yardstick; analysis suffers from pointer chasing
// across blocks, the opposite trade-off from CSR. Per-vertex locks give
// it finer-grained concurrency than DGAP's per-section locks, which is
// why it scales slightly better at high thread counts in Table 3.
//
// Durability: blocks are initialized to an empty-slot sentinel, so an
// append is durable with a single flush+fence of the edge slot — a
// recovery scan derives each block's fill level from the sentinels
// (there is no per-insert counter write, which would re-flush the same
// cache line on every insert and hit PM's in-place-update penalty).
package bal

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"dgap/internal/graph"
	"dgap/internal/pmem"
)

// BlockEdges is the number of edges per persistent block.
const BlockEdges = 60

// Block layout: [next u64][reserved u64][edges BlockEdges*4].
const blockBytes = 16 + BlockEdges*4

const emptySlot = uint32(0xFFFFFFFF)

// Graph is a blocked adjacency list.
type Graph struct {
	a  *pmem.Arena
	mu sync.RWMutex // guards the vertex table during growth

	verts []vertex
	edges atomic.Int64
}

type vertex struct {
	mu    sync.Mutex
	head  pmem.Off // first block (0 = none)
	tail  pmem.Off // last block, where appends go
	count int64    // edges acknowledged (DRAM; recovery re-scans blocks)
}

// New creates a BAL over nVert vertices.
func New(a *pmem.Arena, nVert int) *Graph {
	return &Graph{a: a, verts: make([]vertex, nVert)}
}

// Name implements graph.System.
func (g *Graph) Name() string { return "BAL" }

func (g *Graph) ensure(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n <= len(g.verts) {
		return
	}
	nv := make([]vertex, n)
	for i := range g.verts {
		nv[i].head = g.verts[i].head
		nv[i].tail = g.verts[i].tail
		nv[i].count = g.verts[i].count
	}
	g.verts = nv
}

// InsertEdge appends dst to src's tail block — one 4-byte persistent
// store — allocating and linking a new sentinel-initialized block when
// the tail is full.
func (g *Graph) InsertEdge(src, dst graph.V) error {
	if int(src) >= len(g.verts) || int(dst) >= len(g.verts) {
		g.ensure(int(max(src, dst)) + 1)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	v := &g.verts[src]
	v.mu.Lock()
	defer v.mu.Unlock()

	fill := v.count % BlockEdges
	if v.tail == 0 || (fill == 0 && v.count > 0) {
		blk, err := g.newBlock()
		if err != nil {
			return err
		}
		if v.tail == 0 {
			v.head = blk
		} else {
			// Persist the link before any edge lands in the new block.
			g.a.PersistU64(v.tail, blk)
		}
		v.tail = blk
		fill = 0
	}
	slot := v.tail + 16 + pmem.Off(fill)*4
	g.a.WriteU32(slot, dst)
	g.a.Flush(slot, 4)
	g.a.Fence()
	// The paper's BAL port keeps per-block metadata crash-consistent
	// ("journaling and transaction for crash consistency makes it slower
	// in many cases"): the block count is persisted in place, ordered
	// after the edge — a second flush+fence on every insert.
	g.a.PersistU64(v.tail+8, uint64(fill+1))
	v.count++
	g.edges.Add(1)
	return nil
}

// InsertBatch implements graph.BatchWriter: edges are grouped by source
// vertex (stream order preserved within each source), each vertex lock
// is taken once per group, and each touched block pays two flush+fence
// rounds — slots, then the covering count — instead of two per edge:
// the same amortization the paper credits XPGraph's archiving threshold
// with.
func (g *Graph) InsertBatch(edges []graph.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	maxID := graph.V(0)
	for _, e := range edges {
		maxID = max(maxID, e.Src, e.Dst)
	}
	if int(maxID) >= len(g.verts) {
		g.ensure(int(maxID) + 1)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	for src, dsts := range graph.GroupBySrc(edges) {
		if err := g.appendRun(src, dsts); err != nil {
			return err
		}
		g.edges.Add(int64(len(dsts)))
	}
	return nil
}

// appendRun appends a source's pending destinations into its block
// chain under one vertex-lock acquisition, filling each block with one
// write burst and persisting per touched block, not per edge.
func (g *Graph) appendRun(src graph.V, dsts []graph.V) error {
	v := &g.verts[src]
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(dsts) > 0 {
		fill := v.count % BlockEdges
		if v.tail == 0 || (fill == 0 && v.count > 0) {
			blk, err := g.newBlock()
			if err != nil {
				return err
			}
			if v.tail == 0 {
				v.head = blk
			} else {
				g.a.PersistU64(v.tail, blk)
			}
			v.tail = blk
			fill = 0
		}
		n := min(int64(BlockEdges)-fill, int64(len(dsts)))
		first := v.tail + 16 + pmem.Off(fill)*4
		for i := int64(0); i < n; i++ {
			g.a.WriteU32(first+pmem.Off(i)*4, dsts[i])
		}
		// Same crash-consistency ordering as the scalar path, amortized
		// per block instead of per edge: the slots are durable before
		// the count that covers them is persisted.
		g.a.Flush(first, uint64(n)*4)
		g.a.Fence()
		g.a.PersistU64(v.tail+8, uint64(fill+n))
		v.count += n
		dsts = dsts[n:]
	}
	return nil
}

// newBlock allocates a block with all edge slots set to the empty
// sentinel (one bulk write + flush, amortized over BlockEdges inserts).
func (g *Graph) newBlock() (pmem.Off, error) {
	blk, err := g.a.AllocRegion("bal: edge block", blockBytes, pmem.CacheLineSize)
	if err != nil {
		return 0, err
	}
	ff := make([]byte, BlockEdges*4)
	for i := range ff {
		ff[i] = 0xFF
	}
	g.a.WriteBytes(blk+16, ff)
	g.a.Flush(blk, blockBytes)
	g.a.Fence()
	return blk, nil
}

// Snapshot captures per-vertex counts; block chains are append-only so a
// count bounds exactly which edges are visible.
func (g *Graph) Snapshot() graph.Snapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := len(g.verts)
	s := &Snapshot{g: g, counts: make([]int64, n), heads: make([]pmem.Off, n)}
	var total int64
	for v := 0; v < n; v++ {
		g.verts[v].mu.Lock()
		s.counts[v] = g.verts[v].count
		s.heads[v] = g.verts[v].head
		g.verts[v].mu.Unlock()
		total += s.counts[v]
	}
	s.edges = total
	return s
}

// Snapshot is a consistent view of a BAL graph.
type Snapshot struct {
	g      *Graph
	counts []int64
	heads  []pmem.Off
	edges  int64
}

// NumVertices implements graph.Snapshot.
func (s *Snapshot) NumVertices() int { return len(s.counts) }

// NumEdges implements graph.Snapshot.
func (s *Snapshot) NumEdges() int64 { return s.edges }

// Degree implements graph.Snapshot.
func (s *Snapshot) Degree(v graph.V) int { return int(s.counts[v]) }

// Neighbors walks the block chain — the pointer chasing that hurts BAL's
// whole-graph analysis performance.
func (s *Snapshot) Neighbors(v graph.V, fn func(graph.V) bool) {
	remaining := s.counts[v]
	blk := s.heads[v]
	a := s.g.a
	for blk != 0 && remaining > 0 {
		n := int64(BlockEdges)
		if n > remaining {
			n = remaining
		}
		view := a.Slice(blk+16, uint64(n)*4)
		for i := int64(0); i < n; i++ {
			d := binary.LittleEndian.Uint32(view[i*4:])
			if d == emptySlot {
				return
			}
			if !fn(graph.V(d)) {
				return
			}
		}
		remaining -= n
		blk = a.ReadU64(blk)
	}
}

// CopyNeighbors implements graph.BulkSnapshot: the same block-chain walk
// as Neighbors, decoded block-at-a-time into the caller's scratch.
func (s *Snapshot) CopyNeighbors(v graph.V, buf []graph.V) []graph.V {
	remaining := s.counts[v]
	blk := s.heads[v]
	a := s.g.a
	for blk != 0 && remaining > 0 {
		n := min(int64(BlockEdges), remaining)
		view := a.Slice(blk+16, uint64(n)*4)
		for i := int64(0); i < n; i++ {
			d := binary.LittleEndian.Uint32(view[i*4:])
			if d == emptySlot {
				return buf
			}
			buf = append(buf, graph.V(d))
		}
		remaining -= n
		blk = a.ReadU64(blk)
	}
	return buf
}
