package bal

import (
	"testing"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

func TestInsertAndIterateAcrossBlocks(t *testing.T) {
	g := New(pmem.New(64<<20), 4)
	want := make([]graph.V, 0, BlockEdges*3+5)
	for i := 0; i < BlockEdges*3+5; i++ {
		d := graph.V(i % 4)
		if err := g.InsertEdge(2, d); err != nil {
			t.Fatal(err)
		}
		want = append(want, d)
	}
	s := g.Snapshot()
	var got []graph.V
	s.Neighbors(2, func(d graph.V) bool { got = append(got, d); return true })
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestVertexGrowth(t *testing.T) {
	g := New(pmem.New(64<<20), 2)
	if err := g.InsertEdge(100, 5); err != nil {
		t.Fatal(err)
	}
	s := g.Snapshot()
	if s.NumVertices() != 101 {
		t.Errorf("NumVertices = %d", s.NumVertices())
	}
	if s.Degree(100) != 1 {
		t.Errorf("Degree(100) = %d", s.Degree(100))
	}
}

func TestSnapshotBoundsVisibility(t *testing.T) {
	g := New(pmem.New(64<<20), 8)
	for i := 0; i < 10; i++ {
		mustInsert(t, g, 1, graph.V(i%8))
	}
	s := g.Snapshot()
	for i := 0; i < 50; i++ {
		mustInsert(t, g, 1, graph.V(i%8))
	}
	n := 0
	s.Neighbors(1, func(graph.V) bool { n++; return true })
	if n != 10 {
		t.Errorf("snapshot saw %d edges, want 10", n)
	}
}

func TestAckedEdgesSurviveCrashImage(t *testing.T) {
	// BAL's durability contract in this repo: the edge slot is flushed
	// and fenced before ack, and the block count is persisted after, so
	// the media image contains every acked edge.
	a := pmem.New(64 << 20)
	g := New(a, 16)
	edges := graphgen.Uniform(16, 6, 9)
	for _, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
	}
	img := a.Crash()
	// No recovery path is implemented for BAL (it is a baseline); verify
	// at the media level that block chains are intact: walk from the
	// stored heads of the ORIGINAL graph against the crashed image.
	s := g.Snapshot().(*Snapshot)
	re := New(img, 16)
	re.verts = make([]vertex, 16)
	total := 0
	for v := 0; v < 16; v++ {
		blk := s.heads[v]
		for blk != 0 {
			for i := 0; i < BlockEdges; i++ {
				val := img.ReadU32(blk + 16 + pmem.Off(i)*4)
				if val == emptySlot {
					break
				}
				total++
			}
			blk = img.ReadU64(blk)
		}
	}
	if total != len(edges) {
		t.Errorf("crash image holds %d edges, want %d", total, len(edges))
	}
}

func mustInsert(t *testing.T, g *Graph, s, d graph.V) {
	t.Helper()
	if err := g.InsertEdge(s, d); err != nil {
		t.Fatal(err)
	}
}
