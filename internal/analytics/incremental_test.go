package analytics_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dgap/internal/analytics"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

// TestIncrementalMatchesFullUnderChurn is the incremental-vs-full
// equivalence property test (seeded, seed printed on failure — parity
// with the dgap ChaosCrash suite): after arbitrary mixed insert/delete
// churn across many generations, the incrementally maintained PageRank
// must stay within its Eps tolerance of a fully recomputed (converged)
// vector, and the dynamic connected-components labels must match the
// full kernel exactly. Even seeds run with a journal window smaller
// than the churn per generation, so the Overflow → full-recompute
// fallback is exercised on the same assertions.
func TestIncrementalMatchesFullUnderChurn(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			testIncrementalChurn(t, seed)
		})
	}
}

func testIncrementalChurn(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nVert := 80 + rng.Intn(120)
	base := graphgen.Uniform(nVert, 8+rng.Intn(8), seed)

	g, err := dgap.New(pmem.New(256<<20), dgap.DefaultConfig(nVert, int64(4*len(base))))
	if err != nil {
		t.Fatalf("seed=%d: %v", seed, err)
	}
	st := graph.Open(g)

	window := 1 << 20
	if seed%2 == 0 {
		window = 16 // smaller than one generation's churn: forces Overflow
	}
	j := graph.NewJournal(window)
	st.Watch(j)

	if err := st.Apply(graph.Inserts(base)); err != nil {
		t.Fatalf("seed=%d: load: %v", seed, err)
	}
	// live tracks undirected edge copies: the generator emits every
	// edge in both directions (the symmetry contract the PageRank
	// kernels — full and incremental — are written against), so churn
	// below inserts and deletes mirror pairs too. One live entry per
	// undirected copy: the Src<Dst orientation of each mirrored pair.
	var live []graph.Edge
	for _, e := range base {
		if e.Src < e.Dst {
			live = append(live, e)
		}
	}

	cut := j.Cut()
	view := st.View()
	pr, _ := analytics.NewPRMaintainer(view, analytics.PROpts{})
	cc, _ := analytics.NewCCMaintainer(view, analytics.CCOpts{})
	checkIncremental(t, seed, -1, view, pr, cc)

	sawIncrPR, sawFullPR := false, false
	for gen := 0; gen < 8; gen++ {
		var ops []graph.Op
		for i := 0; i < 5+rng.Intn(15); i++ {
			src := graph.V(rng.Intn(nVert))
			dst := graph.V(rng.Intn(nVert))
			if src == dst {
				dst = (dst + 1) % graph.V(nVert)
			}
			ops = append(ops, graph.OpInsert(src, dst), graph.OpInsert(dst, src))
			if src > dst {
				src, dst = dst, src
			}
			live = append(live, graph.Edge{Src: src, Dst: dst})
		}
		for i := 0; i < rng.Intn(12) && len(live) > 1; i++ {
			k := rng.Intn(len(live))
			e := live[k]
			ops = append(ops, graph.OpDelete(e.Src, e.Dst), graph.OpDelete(e.Dst, e.Src))
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if err := st.Apply(ops); err != nil {
			t.Fatalf("seed=%d gen=%d: apply: %v", seed, gen, err)
		}

		next := j.Cut()
		delta := j.Between(cut, next)
		cut = next
		view.Release()
		view = st.View()

		prStats := pr.Update(view, delta)
		ccStats := cc.Update(view, delta)
		if delta.Overflow && (!prStats.Full || !ccStats.Full) {
			t.Fatalf("seed=%d gen=%d: overflowed delta did not force full recompute (pr=%+v cc=%+v)",
				seed, gen, prStats, ccStats)
		}
		if prStats.Full {
			sawFullPR = true
		} else {
			sawIncrPR = true
		}
		checkIncremental(t, seed, gen, view, pr, cc)
	}
	view.Release()

	// The sweep must have exercised the path it is named for: small-
	// window seeds the fallback, large-window seeds the delta path.
	if seed%2 == 0 && !sawFullPR {
		t.Fatalf("seed=%d: tiny journal window never forced a full recompute", seed)
	}
	if seed%2 == 1 && !sawIncrPR {
		t.Fatalf("seed=%d: no generation took the incremental path", seed)
	}
}

// checkIncremental compares the maintained results against full
// recomputes over the same view: PageRank against a converged pull
// iteration (300 iterations ≈ machine precision at d=0.85) within the
// maintainer's Eps budget, components exactly.
func checkIncremental(t *testing.T, seed int64, gen int, view *graph.View, pr *analytics.PRMaintainer, cc *analytics.CCMaintainer) {
	t.Helper()
	const tol = 1e-6 // PROpts default Eps 1e-7, with float-order slack

	ref, _ := analytics.PageRank(view, 300, analytics.Serial)
	got := pr.Ranks()
	if len(got) != len(ref) {
		t.Fatalf("seed=%d gen=%d: %d maintained ranks, want %d", seed, gen, len(got), len(ref))
	}
	for v := range ref {
		if d := math.Abs(got[v] - ref[v]); d > tol {
			t.Fatalf("seed=%d gen=%d: PR[%d] = %.12g, want %.12g (|diff| %.3g > %g)",
				seed, gen, v, got[v], ref[v], d, tol)
		}
	}

	refCC, _ := analytics.CC(view, analytics.Serial)
	labels := cc.Labels()
	if len(labels) != len(refCC) {
		t.Fatalf("seed=%d gen=%d: %d maintained labels, want %d", seed, gen, len(labels), len(refCC))
	}
	for v := range refCC {
		if labels[v] != refCC[v] {
			t.Fatalf("seed=%d gen=%d: CC[%d] = %d, want %d", seed, gen, v, labels[v], refCC[v])
		}
	}
}
