package analytics

import (
	"sort"
	"time"

	"dgap/internal/graph"
)

// This file holds the point-query helpers the serving layer
// (internal/serve) multiplexes alongside the whole-graph kernels:
// bounded k-hop expansion and top-k-degree ranking. Like the kernels,
// both read adjacency through the View's pre-resolved bulk path, so a
// query over a DGAP snapshot touches destinations through slice loops
// with amortized zero allocations per edge, and both charge their time
// to a vtime.Pool so the scalability experiments can account for them.

// KHop returns the number of distinct vertices reachable from src in at
// most k hops, including src itself. It is a plain breadth-first
// expansion bounded at depth k over the bulk read path (or the per-edge
// callback path when cfg.Callback is set). The second return value is
// the pool-accounted elapsed time.
func KHop(g *graph.View, src graph.V, k int, cfg Config) (int, time.Duration) {
	n := g.NumVertices()
	if int(src) >= n || k < 0 {
		return 0, 0
	}
	p := cfg.pool()
	reached := 1
	p.Serial(func() {
		visited := newBitmap(n)
		visited.set(int(src))
		frontier := []graph.V{src}
		var next []graph.V
		scratch := getScratch()
		defer putScratch(scratch)
		buf := *scratch
		for hop := 0; hop < k && len(frontier) > 0; hop++ {
			next = next[:0]
			for _, u := range frontier {
				if !cfg.Callback {
					buf = g.CopyNeighbors(u, buf[:0])
				} else {
					buf = buf[:0]
					g.Neighbors(u, func(d graph.V) bool {
						buf = append(buf, d)
						return true
					})
				}
				for _, d := range buf {
					if !visited.get(int(d)) {
						visited.set(int(d))
						next = append(next, d)
						reached++
					}
				}
			}
			frontier, next = next, frontier
		}
		*scratch = buf
	})
	return reached, p.Elapsed()
}

// vdeg pairs a vertex with its degree for top-k ranking.
type vdeg struct {
	v graph.V
	d int
}

// less orders candidates by higher degree first, lower id on ties — the
// deterministic ranking TopKDegree returns.
func (a vdeg) less(b vdeg) bool {
	if a.d != b.d {
		return a.d > b.d
	}
	return a.v < b.v
}

// TopKDegree returns the ids of the k highest-degree vertices, ordered
// by descending degree (ascending id on ties). The degree scan is
// chunked across the pool's workers, each keeping a local top-k that a
// serial pass merges, so the parallel phase never materializes more
// than workers*k candidates.
func TopKDegree(g *graph.View, k int, cfg Config) ([]graph.V, time.Duration) {
	n := g.NumVertices()
	if k <= 0 || n == 0 {
		return nil, 0
	}
	if k > n {
		k = n
	}
	p := cfg.pool()
	bounds := vertexBounds(n, max(n/cfg.chunks(n), 1))
	locals := make([][]vdeg, len(bounds)-1)
	p.ForRanges(bounds, func(c, lo, hi int) {
		var acc []vdeg
		for v := lo; v < hi; v++ {
			acc = topkInsert(acc, vdeg{v: graph.V(v), d: g.Degree(graph.V(v))}, k)
		}
		locals[c] = acc
	})
	var out []graph.V
	p.Serial(func() {
		var all []vdeg
		for _, l := range locals {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].less(all[j]) })
		if len(all) > k {
			all = all[:k]
		}
		out = make([]graph.V, len(all))
		for i, c := range all {
			out[i] = c.v
		}
	})
	return out, p.Elapsed()
}

// topkInsert keeps acc as the best-first top-k candidate list while
// inserting c: a linear insertion, cheap because k is small.
func topkInsert(acc []vdeg, c vdeg, k int) []vdeg {
	i := len(acc)
	for i > 0 && c.less(acc[i-1]) {
		i--
	}
	if i == len(acc) {
		if len(acc) < k {
			return append(acc, c)
		}
		return acc
	}
	if len(acc) < k {
		acc = append(acc, vdeg{})
	}
	copy(acc[i+1:], acc[i:])
	acc[i] = c
	return acc
}
