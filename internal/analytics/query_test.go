package analytics

import (
	"sort"
	"testing"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
)

// bruteKHop counts vertices within k hops of src by repeated relaxation
// over the callback read path.
func bruteKHop(s graph.Snapshot, src graph.V, k int) int {
	dist := make([]int, s.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []graph.V{src}
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []graph.V
		for _, u := range frontier {
			s.Neighbors(u, func(d graph.V) bool {
				if dist[d] < 0 {
					dist[d] = hop + 1
					next = append(next, d)
				}
				return true
			})
		}
		frontier = next
	}
	n := 0
	for _, d := range dist {
		if d >= 0 {
			n++
		}
	}
	return n
}

func TestKHopPath(t *testing.T) {
	s := pathGraph(t, 10)
	for k, want := range map[int]int{0: 1, 1: 2, 2: 3, 9: 10, 20: 10} {
		if got, _ := KHop(s, 0, k, Serial); got != want {
			t.Errorf("KHop(0, %d) = %d, want %d", k, got, want)
		}
	}
	// From the middle both directions open up.
	if got, _ := KHop(s, 5, 2, Serial); got != 5 {
		t.Errorf("KHop(5, 2) = %d, want 5", got)
	}
}

func TestKHopMatchesBruteForce(t *testing.T) {
	const V = 200
	edges := graphgen.Uniform(V, 6, 97)
	s := buildSnap(t, V, edges)
	for _, src := range []graph.V{0, 7, 113} {
		for k := 0; k <= 4; k++ {
			want := bruteKHop(s, src, k)
			if got, _ := KHop(s, src, k, Serial); got != want {
				t.Errorf("KHop(%d, %d) = %d, brute force %d", src, k, got, want)
			}
			// Callback path must agree with the bulk path.
			if got, _ := KHop(s, src, k, Config{Threads: 1, Callback: true}); got != want {
				t.Errorf("KHop callback(%d, %d) = %d, want %d", src, k, got, want)
			}
		}
	}
}

func TestTopKDegree(t *testing.T) {
	const V = 300
	edges := graphgen.Uniform(V, 9, 41)
	s := buildSnap(t, V, edges)
	want := make([]vdeg, V)
	for v := 0; v < V; v++ {
		want[v] = vdeg{v: graph.V(v), d: s.Degree(graph.V(v))}
	}
	sort.Slice(want, func(i, j int) bool { return want[i].less(want[j]) })
	for _, k := range []int{1, 5, 50, V, V + 10} {
		got, _ := TopKDegree(s, k, Serial)
		n := min(k, V)
		if len(got) != n {
			t.Fatalf("TopKDegree(%d) returned %d ids, want %d", k, len(got), n)
		}
		for i := 0; i < n; i++ {
			if got[i] != want[i].v {
				t.Fatalf("TopKDegree(%d)[%d] = %d (deg %d), want %d (deg %d)",
					k, i, got[i], s.Degree(got[i]), want[i].v, want[i].d)
			}
		}
	}
	// Parallel chunking must produce the identical ranking.
	got, _ := TopKDegree(s, 25, Config{Threads: 4})
	for i := 0; i < 25; i++ {
		if got[i] != want[i].v {
			t.Fatalf("parallel TopKDegree[%d] = %d, want %d", i, got[i], want[i].v)
		}
	}
}

func TestTopKInsertKeepsOrder(t *testing.T) {
	var acc []vdeg
	for _, c := range []vdeg{{1, 5}, {2, 9}, {3, 5}, {4, 1}, {5, 9}} {
		acc = topkInsert(acc, c, 3)
	}
	want := []vdeg{{2, 9}, {5, 9}, {1, 5}}
	if len(acc) != len(want) {
		t.Fatalf("acc = %v, want %v", acc, want)
	}
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("acc = %v, want %v", acc, want)
		}
	}
}
