package analytics

import (
	"math"
	"testing"

	"dgap/internal/csr"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

// buildSnap makes a CSR read View from an edge stream (CSR is the
// simplest correct Snapshot implementation; cross-system agreement is
// covered separately). Views implement graph.Snapshot, so the
// reference implementations below read the same handle.
func buildSnap(t *testing.T, nVert int, edges []graph.Edge) *graph.View {
	t.Helper()
	g, err := csr.Build(pmem.New(256<<20), nVert, edges)
	if err != nil {
		t.Fatal(err)
	}
	return graph.ViewOf(g)
}

// pathGraph builds the symmetric path 0-1-2-...-n-1.
func pathGraph(t *testing.T, n int) *graph.View {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges,
			graph.Edge{Src: graph.V(i), Dst: graph.V(i + 1)},
			graph.Edge{Src: graph.V(i + 1), Dst: graph.V(i)})
	}
	return buildSnap(t, n, edges)
}

func TestBFSPath(t *testing.T) {
	s := pathGraph(t, 6)
	parent, _ := BFS(s, 0, Serial)
	want := []int32{0, 0, 1, 2, 3, 4}
	for i, p := range parent {
		if p != want[i] {
			t.Errorf("parent[%d] = %d, want %d", i, p, want[i])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	s := buildSnap(t, 4, edges)
	parent, _ := BFS(s, 0, Serial)
	if parent[2] != NoParent || parent[3] != NoParent {
		t.Error("unreachable vertices must stay NoParent")
	}
	if parent[1] != 0 {
		t.Errorf("parent[1] = %d", parent[1])
	}
}

// bfsDepths converts a parent array into hop distances for validation.
func bfsDepths(parent []int32, src graph.V) []int {
	depth := make([]int, len(parent))
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	for changed := true; changed; {
		changed = false
		for v, p := range parent {
			if p == NoParent || depth[v] != -1 || depth[p] == -1 {
				continue
			}
			depth[v] = depth[p] + 1
			changed = true
		}
	}
	return depth
}

// refBFSDepths computes distances by textbook BFS.
func refBFSDepths(s graph.Snapshot, src graph.V) []int {
	n := s.NumVertices()
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []graph.V{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		s.Neighbors(v, func(u graph.V) bool {
			if depth[u] == -1 {
				depth[u] = depth[v] + 1
				queue = append(queue, u)
			}
			return true
		})
	}
	return depth
}

func TestBFSDistancesMatchReferenceOnRandomGraph(t *testing.T) {
	edges := graphgen.Uniform(300, 6, 81)
	s := buildSnap(t, 300, edges)
	for _, src := range []graph.V{0, 7, 150} {
		parent, _ := BFS(s, src, Serial)
		got := bfsDepths(parent, src)
		want := refBFSDepths(s, src)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("src %d: depth[%d] = %d, want %d", src, v, got[v], want[v])
			}
		}
	}
}

func TestBFSDirectionOptimizingMatchesOnDenseGraph(t *testing.T) {
	// Dense graph: forces the bottom-up switch.
	edges := graphgen.Uniform(200, 40, 83)
	s := buildSnap(t, 200, edges)
	parent, _ := BFS(s, 3, Serial)
	got := bfsDepths(parent, 3)
	want := refBFSDepths(s, 3)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSParallelMatchesSerial(t *testing.T) {
	edges := graphgen.Uniform(400, 8, 87)
	s := buildSnap(t, 400, edges)
	pSer, _ := BFS(s, 1, Serial)
	pPar, _ := BFS(s, 1, Config{Threads: 4})
	dSer := bfsDepths(pSer, 1)
	dPar := bfsDepths(pPar, 1)
	for v := range dSer {
		if dSer[v] != dPar[v] {
			t.Fatalf("parallel BFS diverged at %d: %d vs %d", v, dPar[v], dSer[v])
		}
	}
}

func TestCCPathIsOneComponent(t *testing.T) {
	s := pathGraph(t, 10)
	comp, _ := CC(s, Serial)
	for v, c := range comp {
		if c != comp[0] {
			t.Errorf("vertex %d in component %d, want %d", v, c, comp[0])
		}
	}
}

func TestCCTwoComponents(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	}
	s := buildSnap(t, 4, edges)
	comp, _ := CC(s, Serial)
	if comp[0] != comp[1] || comp[2] != comp[3] {
		t.Error("edges within components not joined")
	}
	if comp[0] == comp[2] {
		t.Error("separate components merged")
	}
}

// refCC labels components by flood fill.
func refCC(s graph.Snapshot) []int {
	n := s.NumVertices()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		stack := []graph.V{graph.V(v)}
		comp[v] = next
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			s.Neighbors(x, func(u graph.V) bool {
				if comp[u] == -1 {
					comp[u] = next
					stack = append(stack, u)
				}
				return true
			})
		}
		next++
	}
	return comp
}

func TestCCMatchesReferenceOnRandomGraph(t *testing.T) {
	edges := graphgen.Uniform(500, 3, 91) // sparse: many components
	s := buildSnap(t, 500, edges)
	got, _ := CC(s, Serial)
	want := refCC(s)
	// Same partition: equal labels iff equal reference labels.
	seen := map[graph.V]int{}
	for v := range want {
		if w, ok := seen[got[v]]; ok {
			if w != want[v] {
				t.Fatalf("partition mismatch at %d", v)
			}
		} else {
			seen[got[v]] = want[v]
		}
	}
	rev := map[int]graph.V{}
	for v := range want {
		if g, ok := rev[want[v]]; ok {
			if g != got[v] {
				t.Fatalf("reference component split at %d", v)
			}
		} else {
			rev[want[v]] = got[v]
		}
	}
}

func TestCCParallelMatchesSerial(t *testing.T) {
	edges := graphgen.Uniform(300, 4, 93)
	s := buildSnap(t, 300, edges)
	a, _ := CC(s, Serial)
	b, _ := CC(s, Config{Threads: 4})
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("parallel CC diverged at %d", v)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	edges := graphgen.Uniform(200, 10, 95)
	s := buildSnap(t, 200, edges)
	ranks, _ := PageRank(s, PageRankIters, Serial)
	var sum float64
	for _, r := range ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Symmetric graphs with no degree-0 vertices conserve rank mass.
	if math.Abs(sum-1) > 0.02 {
		t.Errorf("rank sum = %f", sum)
	}
}

func TestPageRankStarCenterRanksHighest(t *testing.T) {
	var edges []graph.Edge
	for i := 1; i < 20; i++ {
		edges = append(edges,
			graph.Edge{Src: 0, Dst: graph.V(i)},
			graph.Edge{Src: graph.V(i), Dst: 0})
	}
	s := buildSnap(t, 20, edges)
	ranks, _ := PageRank(s, PageRankIters, Serial)
	for v := 1; v < 20; v++ {
		if ranks[v] >= ranks[0] {
			t.Fatalf("leaf %d ranks above hub: %f >= %f", v, ranks[v], ranks[0])
		}
	}
}

func TestPageRankParallelMatchesSerial(t *testing.T) {
	edges := graphgen.Uniform(300, 8, 97)
	s := buildSnap(t, 300, edges)
	a, _ := PageRank(s, 10, Serial)
	b, _ := PageRank(s, 10, Config{Threads: 4})
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-12 {
			t.Fatalf("parallel PR diverged at %d: %g vs %g", v, a[v], b[v])
		}
	}
}

// refBC computes Brandes from scratch with simple data structures.
func refBC(s graph.Snapshot, src graph.V) []float64 {
	n := s.NumVertices()
	depth := make([]int, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	sigma[src] = 1
	var order []graph.V
	queue := []graph.V{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		s.Neighbors(v, func(u graph.V) bool {
			if depth[u] == -1 {
				depth[u] = depth[v] + 1
				queue = append(queue, u)
			}
			if depth[u] == depth[v]+1 {
				sigma[u] += sigma[v]
			}
			return true
		})
	}
	scores := make([]float64, n)
	for i := len(order) - 1; i >= 1; i-- {
		v := order[i]
		s.Neighbors(v, func(u graph.V) bool {
			if depth[u] == depth[v]-1 {
				delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
			}
			return true
		})
		scores[v] = delta[v]
	}
	// refBC accumulates delta onto predecessors; align definitions: our
	// kernel reports delta[v] per vertex.
	return scores
}

func TestBCPathCenterHighest(t *testing.T) {
	s := pathGraph(t, 5)
	scores, _ := BC(s, 0, Serial)
	// From source 0 on a path, dependency decreases along the path.
	if !(scores[1] > scores[2] && scores[2] > scores[3]) {
		t.Errorf("path BC scores not decreasing: %v", scores)
	}
	if scores[4] != 0 {
		t.Errorf("endpoint score = %f, want 0", scores[4])
	}
}

func TestBCMatchesReferenceOnRandomGraph(t *testing.T) {
	edges := graphgen.Uniform(150, 6, 99)
	s := buildSnap(t, 150, edges)
	for _, src := range []graph.V{0, 42} {
		got, _ := BC(s, src, Serial)
		want := refBC(s, src)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("src %d: BC[%d] = %g, want %g", src, v, got[v], want[v])
			}
		}
	}
}

func TestBCParallelMatchesSerial(t *testing.T) {
	edges := graphgen.Uniform(200, 8, 101)
	s := buildSnap(t, 200, edges)
	a, _ := BC(s, 5, Serial)
	b, _ := BC(s, 5, Config{Threads: 4})
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-9 {
			t.Fatalf("parallel BC diverged at %d: %g vs %g", v, a[v], b[v])
		}
	}
}

func TestKernelsVirtualModeMatchesReal(t *testing.T) {
	edges := graphgen.Uniform(200, 8, 103)
	s := buildSnap(t, 200, edges)
	vc := Config{Threads: 16, Virtual: true}
	pr1, _ := PageRank(s, 5, Serial)
	pr2, _ := PageRank(s, 5, vc)
	for v := range pr1 {
		if math.Abs(pr1[v]-pr2[v]) > 1e-12 {
			t.Fatal("virtual-mode PR diverged")
		}
	}
	c1, _ := CC(s, Serial)
	c2, _ := CC(s, vc)
	for v := range c1 {
		if c1[v] != c2[v] {
			t.Fatal("virtual-mode CC diverged")
		}
	}
	p1, _ := BFS(s, 0, Serial)
	p2, _ := BFS(s, 0, vc)
	d1, d2 := bfsDepths(p1, 0), bfsDepths(p2, 0)
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatal("virtual-mode BFS diverged")
		}
	}
}

func TestKernelsOnEmptyGraph(t *testing.T) {
	s := buildSnap(t, 5, nil)
	if p, _ := BFS(s, 0, Serial); p[1] != NoParent {
		t.Error("BFS on empty graph")
	}
	if c, _ := CC(s, Serial); c[0] == c[1] {
		t.Error("CC merged isolated vertices")
	}
	if r, _ := PageRank(s, 3, Serial); len(r) != 5 {
		t.Error("PR length")
	}
	if b, _ := BC(s, 0, Serial); b[0] != 0 {
		t.Error("BC on empty graph")
	}
}
