package analytics

import (
	"sync/atomic"
	"time"

	"dgap/internal/graph"
)

// CC computes connected components with the Shiloach-Vishkin algorithm
// (Table 1 of the paper): repeated hooking of higher labels onto lower
// ones followed by pointer-jumping compression, iterating to a fixed
// point. Label updates use atomic-min so the kernel is race-free under
// real goroutine parallelism (GAPBS relies on benign x86 races instead).
// The hooking sweep reads adjacency through the View's bulk path with
// equal-edge chunking. It returns the component label of each vertex.
func CC(g *graph.View, cfg Config) ([]graph.V, time.Duration) {
	n := g.NumVertices()
	p := cfg.pool()
	comp := make([]uint32, n)
	p.Serial(func() {
		for v := range comp {
			comp[v] = uint32(v)
		}
	})
	bounds := cfg.bounds(n, func(i int) int { return g.Degree(graph.V(i)) })
	hookEdge := func(v int, u graph.V, c *int32) {
		cv := atomic.LoadUint32(&comp[v])
		cu := atomic.LoadUint32(&comp[u])
		switch {
		case cu < cv:
			if atomicMin(&comp[cv], cu) {
				*c++
			}
			atomicMin(&comp[v], cu)
		case cv < cu:
			if atomicMin(&comp[cu], cv) {
				*c++
			}
			atomicMin(&comp[u], cv)
		}
	}
	for {
		changes := make([]int32, len(bounds))
		// Hooking: adopt the smaller label across each edge.
		p.ForRanges(bounds, func(ci, lo, hi int) {
			var c int32
			if cfg.Callback {
				for v := lo; v < hi; v++ {
					g.Neighbors(graph.V(v), func(u graph.V) bool {
						hookEdge(v, u, &c)
						return true
					})
				}
			} else {
				scratch := getScratch()
				*scratch = g.Sweep(graph.V(lo), graph.V(hi), *scratch, func(v graph.V, dsts []graph.V) {
					for _, u := range dsts {
						hookEdge(int(v), u, &c)
					}
				})
				putScratch(scratch)
			}
			changes[ci] = c
		})
		// Compression: pointer jumping.
		p.ForRanges(bounds, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				for {
					c := atomic.LoadUint32(&comp[v])
					cc := atomic.LoadUint32(&comp[c])
					if c == cc {
						break
					}
					atomic.StoreUint32(&comp[v], cc)
				}
			}
		})
		var changed int32
		p.Serial(func() {
			for _, c := range changes {
				changed += c
			}
		})
		if changed == 0 {
			break
		}
	}
	out := make([]graph.V, n)
	for v := range out {
		out[v] = graph.V(comp[v])
	}
	return out, elapsed(p)
}

// atomicMin lowers *addr to val if val is smaller; reports whether it
// changed anything.
func atomicMin(addr *uint32, val uint32) bool {
	for {
		cur := atomic.LoadUint32(addr)
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, cur, val) {
			return true
		}
	}
}
