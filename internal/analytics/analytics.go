// Package analytics implements the four GAP Benchmark Suite kernels the
// DGAP paper evaluates (Table 1) — PageRank, direction-optimizing BFS,
// Brandes betweenness centrality, and Shiloach-Vishkin connected
// components — against the backend-neutral graph.Snapshot interface, so
// the same kernel code runs over DGAP, CSR, BAL, LLAMA, GraphOne and
// XPGraph, exactly as the paper uses one GAPBS implementation across all
// frameworks.
//
// Parallelism goes through vtime.Pool, which provides both a real
// goroutine mode (correctness on this machine) and a virtual-time mode
// used by the scalability experiments (the evaluation host has one CPU;
// see the vtime package documentation). Each kernel returns its output
// and the pool's elapsed time, which is wall-clock time in real mode and
// the simulated parallel makespan in virtual mode.
package analytics

import (
	"time"

	"dgap/internal/vtime"
)

// Config selects the execution mode for a kernel run.
type Config struct {
	// Threads is the worker count (1 = serial).
	Threads int
	// Virtual selects virtual-time accounting for multi-thread runs.
	Virtual bool
	// Grain is the parallel-for chunk size in vertices (0 = default).
	Grain int
}

// Serial is the default single-thread configuration.
var Serial = Config{Threads: 1}

func (c Config) pool() *vtime.Pool {
	t := c.Threads
	if t < 1 {
		t = 1
	}
	return vtime.NewPool(t, c.Virtual)
}

func (c Config) grain(n int) int {
	if c.Grain > 0 {
		return c.Grain
	}
	g := n / 256
	if g < 64 {
		g = 64
	}
	return g
}

func elapsed(p *vtime.Pool) time.Duration { return p.Elapsed() }
