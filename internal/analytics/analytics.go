// Package analytics implements the four GAP Benchmark Suite kernels the
// DGAP paper evaluates (Table 1) — PageRank, direction-optimizing BFS,
// Brandes betweenness centrality, and Shiloach-Vishkin connected
// components — against the backend-neutral graph.View read handle, so
// the same kernel code runs over DGAP, CSR, BAL, LLAMA, GraphOne and
// XPGraph, exactly as the paper uses one GAPBS implementation across all
// frameworks.
//
// The kernels read adjacency through the View's pre-resolved bulk path
// (CopyNeighbors / Sweep): each vertex's destinations arrive as one
// slice copied into reusable scratch rather than one callback per edge,
// which removes the closure invocation, per-vertex lock round-trip and
// edge-log chain allocation that otherwise dominate kernel time on the
// DGAP backend — and because the View resolved the fast paths once at
// construction, the kernels themselves never type-assert a snapshot.
// Config.Callback restores the per-edge callback path so benchmarks can
// quantify the difference.
//
// Parallel work is partitioned degree-aware: parallel-for ranges are
// split at boundaries computed from a prefix sum of degrees (equal-edge
// chunks) instead of equal vertex counts, so the hub vertices of skewed
// graphs (orkut/rmat presets) spread across workers instead of
// serializing one chunk.
//
// Parallelism goes through vtime.Pool, which provides both a real
// goroutine mode (correctness on this machine) and a virtual-time mode
// used by the scalability experiments (the evaluation host has one CPU;
// see the vtime package documentation). Each kernel returns its output
// and the pool's elapsed time, which is wall-clock time in real mode and
// the simulated parallel makespan in virtual mode.
//
// # Incremental maintenance
//
// Beyond the one-shot kernels, PRMaintainer and CCMaintainer keep a
// kernel result current across graph.Delta batches (the bounded op logs
// a graph.Journal records between two snapshot cuts) instead of
// recomputing per snapshot. The delta contract: Update(view, delta)
// requires delta to be exactly the multiset of ops separating the
// maintainer's last-synced snapshot from view — op order within the
// delta may differ from application order (sharded ingest), but the
// multiset must match, and for PageRank every logical edge must appear
// in both directions (the symmetry the pull kernels assume). An
// overflowed delta, a vertex-count change, or incremental work
// exceeding its budget (a fraction of the estimated full-rebuild cost)
// falls back to a full rebuild inside Update — the result is always
// the same as recomputing over view, only the cost differs.
// UpdateStats reports which path ran and what it cost.
package analytics

import (
	"time"

	"dgap/internal/vtime"
)

// Config selects the execution mode for a kernel run.
type Config struct {
	// Threads is the worker count (1 = serial).
	Threads int
	// Virtual selects virtual-time accounting for multi-thread runs.
	Virtual bool
	// Grain is the equal-vertex parallel-for chunk size (0 = default);
	// it only applies to the legacy scheduler selected by Callback.
	Grain int
	// Callback disables the bulk read path and the degree-aware
	// scheduler, restoring the original per-edge callback kernels with
	// equal-vertex chunking. Benchmarks use it as the baseline the bulk
	// path is measured against.
	Callback bool
	// EdgeChunks overrides how many equal-edge ranges the degree-aware
	// scheduler produces (0 = automatic: enough chunks for the worker
	// count to load-balance, clamped to the vertex count).
	EdgeChunks int
}

// Serial is the default single-thread configuration.
var Serial = Config{Threads: 1}

func (c Config) pool() *vtime.Pool {
	t := c.Threads
	if t < 1 {
		t = 1
	}
	return vtime.NewPool(t, c.Virtual)
}

func (c Config) grain(n int) int {
	if c.Grain > 0 {
		return c.Grain
	}
	g := n / 256
	if g < 64 {
		g = 64
	}
	return g
}

func (c Config) threads() int {
	if c.Threads < 1 {
		return 1
	}
	return c.Threads
}

// chunks is the equal-edge range count the degree-aware scheduler aims
// for: enough surplus over the worker count that LPT packing (virtual
// mode) and work stealing (real mode) can even out residual imbalance.
func (c Config) chunks(n int) int {
	ch := c.EdgeChunks
	if ch <= 0 {
		ch = max(8*c.threads(), 32)
	}
	return min(ch, n)
}

// bounds returns the parallel-for range boundaries for n vertices whose
// work is proportional to deg(i): equal-edge chunks from a degree prefix
// sum, or legacy equal-vertex chunks when Callback selects the old
// scheduler.
func (c Config) bounds(n int, deg func(i int) int) []int {
	if c.Callback {
		return vertexBounds(n, c.grain(n))
	}
	return edgeBounds(n, c.chunks(n), deg)
}

// vertexBounds chops [0, n) into equal-vertex ranges of size grain (the
// legacy scheduler).
func vertexBounds(n, grain int) []int {
	if n <= 0 {
		return nil
	}
	nChunks := (n + grain - 1) / grain
	b := make([]int, nChunks+1)
	for c := 1; c < nChunks; c++ {
		b[c] = c * grain
	}
	b[nChunks] = n
	return b
}

// edgeBounds chops [0, n) into at most chunks ranges of roughly equal
// edge weight using a single pass over the degree prefix sum. Every
// vertex also carries one unit of fixed weight so ranges of zero-degree
// vertices still split across workers.
func edgeBounds(n, chunks int, deg func(i int) int) []int {
	if n <= 0 {
		return nil
	}
	total := n
	for i := 0; i < n; i++ {
		total += deg(i)
	}
	target := (total + chunks - 1) / chunks
	b := make([]int, 1, chunks+1)
	acc := 0
	for i := 0; i < n; i++ {
		acc += deg(i) + 1
		if acc >= target {
			b = append(b, i+1)
			acc = 0
		}
	}
	if b[len(b)-1] != n {
		b = append(b, n)
	}
	return b
}

func elapsed(p *vtime.Pool) time.Duration { return p.Elapsed() }
