package analytics_test

import (
	"testing"

	"dgap/internal/analytics"
	"dgap/internal/csr"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

// bulkTestSnapshots builds a DGAP and a CSR read View of the same
// skewed graph: one backend with a native bulk/sweep path, one that
// only gains the CopyNeighbors fast path.
func bulkTestSnapshots(t *testing.T) map[string]*graph.View {
	t.Helper()
	spec, err := graphgen.Preset("orkut")
	if err != nil {
		t.Fatal(err)
	}
	edges := spec.Generate(0.00005, 99)
	nVert := graphgen.MaxVertex(edges)
	out := map[string]*graph.View{}
	{
		g, err := dgap.New(pmem.New(256<<20), dgap.DefaultConfig(nVert, int64(len(edges))))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range edges {
			if err := g.InsertEdge(e.Src, e.Dst); err != nil {
				t.Fatal(err)
			}
		}
		out["dgap"] = graph.Open(g).View()
	}
	{
		g, err := csr.Build(pmem.New(128<<20), nVert, edges)
		if err != nil {
			t.Fatal(err)
		}
		out["csr"] = graph.Open(g).View()
	}
	return out
}

// TestKernelsBulkEqualsCallback proves the bulk read path and the
// degree-aware scheduler change performance only: every kernel must
// produce outputs identical to the legacy per-edge callback path with
// equal-vertex chunking.
func TestKernelsBulkEqualsCallback(t *testing.T) {
	bulk := analytics.Serial
	callback := analytics.Config{Threads: 1, Callback: true}
	for name, s := range bulkTestSnapshots(t) {
		t.Run(name, func(t *testing.T) {
			src := graph.V(0)
			prB, _ := analytics.PageRank(s, analytics.PageRankIters, bulk)
			prC, _ := analytics.PageRank(s, analytics.PageRankIters, callback)
			for v := range prB {
				if prB[v] != prC[v] {
					t.Fatalf("PageRank[%d]: bulk %v, callback %v", v, prB[v], prC[v])
				}
			}
			bfsB, _ := analytics.BFS(s, src, bulk)
			bfsC, _ := analytics.BFS(s, src, callback)
			for v := range bfsB {
				if bfsB[v] != bfsC[v] {
					t.Fatalf("BFS parent[%d]: bulk %d, callback %d", v, bfsB[v], bfsC[v])
				}
			}
			ccB, _ := analytics.CC(s, bulk)
			ccC, _ := analytics.CC(s, callback)
			for v := range ccB {
				if ccB[v] != ccC[v] {
					t.Fatalf("CC[%d]: bulk %d, callback %d", v, ccB[v], ccC[v])
				}
			}
			bcB, _ := analytics.BC(s, src, bulk)
			bcC, _ := analytics.BC(s, src, callback)
			for v := range bcB {
				if bcB[v] != bcC[v] {
					t.Fatalf("BC[%d]: bulk %v, callback %v", v, bcB[v], bcC[v])
				}
			}
		})
	}
}

// TestKernelsBulkParallelMatchesSerial runs the bulk-path kernels with
// real goroutine workers over degree-aware chunks and checks the
// deterministic outputs against the serial run.
func TestKernelsBulkParallelMatchesSerial(t *testing.T) {
	par := analytics.Config{Threads: 4}
	for name, s := range bulkTestSnapshots(t) {
		t.Run(name, func(t *testing.T) {
			prS, _ := analytics.PageRank(s, analytics.PageRankIters, analytics.Serial)
			prP, _ := analytics.PageRank(s, analytics.PageRankIters, par)
			for v := range prS {
				if prS[v] != prP[v] {
					t.Fatalf("PageRank[%d]: serial %v, parallel %v", v, prS[v], prP[v])
				}
			}
			ccS, _ := analytics.CC(s, analytics.Serial)
			ccP, _ := analytics.CC(s, par)
			for v := range ccS {
				if ccS[v] != ccP[v] {
					t.Fatalf("CC[%d]: serial %d, parallel %d", v, ccS[v], ccP[v])
				}
			}
			// BFS parents are run-dependent under real parallelism; depths
			// are not. Compare depths via parent-chain lengths.
			bfsS, _ := analytics.BFS(s, 0, analytics.Serial)
			bfsP, _ := analytics.BFS(s, 0, par)
			dS := chainDepths(bfsS)
			dP := chainDepths(bfsP)
			for v := range dS {
				if dS[v] != dP[v] {
					t.Fatalf("BFS depth[%d]: serial %d, parallel %d", v, dS[v], dP[v])
				}
			}
		})
	}
}

// chainDepths converts a BFS parent array into hop counts (-1 =
// unreached).
func chainDepths(parent []int32) []int {
	out := make([]int, len(parent))
	for v := range parent {
		if parent[v] == analytics.NoParent {
			out[v] = -1
			continue
		}
		d := 0
		for u := int32(v); parent[u] != u; u = parent[u] {
			d++
		}
		out[v] = d
	}
	return out
}
