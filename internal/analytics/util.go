package analytics

import (
	"sync"
	"sync/atomic"

	"dgap/internal/graph"
	"dgap/internal/vtime"
)

type pool = *vtime.Pool

// scratchPool recycles the per-chunk neighbor buffers of the bulk read
// path, so a kernel's steady state does one pool round-trip per chunk
// and zero allocations per vertex or edge.
var scratchPool = sync.Pool{New: func() any {
	s := make([]graph.V, 0, 1024)
	return &s
}}

func getScratch() *[]graph.V { return scratchPool.Get().(*[]graph.V) }

func putScratch(s *[]graph.V) { scratchPool.Put(s) }

// atomicClaimParent sets parent[u] = val if it is still NoParent,
// returning true on success; the primitive top-down BFS uses to claim
// vertices under real parallelism.
func atomicClaimParent(parent []int32, u uint32, val int32) bool {
	return atomic.CompareAndSwapInt32(&parent[u], NoParent, val)
}

// bitmap is a fixed-size bit set used by bottom-up BFS frontiers.
type bitmap struct {
	words []uint64
}

func newBitmap(n int) *bitmap {
	return &bitmap{words: make([]uint64, (n+63)/64)}
}

func (b *bitmap) set(i int)      { b.words[i/64] |= 1 << (i % 64) }
func (b *bitmap) get(i int) bool { return b.words[i/64]&(1<<(i%64)) != 0 }
func (b *bitmap) clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}
