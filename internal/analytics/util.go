package analytics

import (
	"sync/atomic"

	"dgap/internal/vtime"
)

type pool = *vtime.Pool

// atomicClaimParent sets parent[u] = val if it is still NoParent,
// returning true on success; the primitive top-down BFS uses to claim
// vertices under real parallelism.
func atomicClaimParent(parent []int32, u uint32, val int32) bool {
	return atomic.CompareAndSwapInt32(&parent[u], NoParent, val)
}

// bitmap is a fixed-size bit set used by bottom-up BFS frontiers.
type bitmap struct {
	words []uint64
}

func newBitmap(n int) *bitmap {
	return &bitmap{words: make([]uint64, (n+63)/64)}
}

func (b *bitmap) set(i int)      { b.words[i/64] |= 1 << (i % 64) }
func (b *bitmap) get(i int) bool { return b.words[i/64]&(1<<(i%64)) != 0 }
func (b *bitmap) clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}
