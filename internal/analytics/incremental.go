package analytics

import (
	"time"

	"dgap/internal/graph"
)

// This file implements the incremental kernel maintainers driven by
// the graph.Delta op stream: delta-PageRank (push-style residual
// propagation seeded from the vertices a delta touched) and dynamic
// connected components (a min-label union-find with tombstone-triggered
// recompute islands). Both expose the same result types as the full
// kernels and both keep the full recompute as their correctness
// fallback — a delta marked Overflow, a vertex-space change, or delta
// work approaching full-sweep cost all route through it, so an
// incremental answer is never a wrong answer.

// UpdateStats reports what one maintainer update cost — the evidence
// the serving tier and the refresh benchmark record to show refresh
// cost scaling with churn rather than graph size.
type UpdateStats struct {
	// Full reports that the update fell back to a full recompute
	// (overflowed delta, resized vertex space, or delta work exceeding
	// the incremental budget).
	Full bool
	// Ops is the number of delta ops consumed.
	Ops int
	// Touched counts vertices whose state the update rewrote: pushed
	// vertices for PageRank, island vertices for components.
	Touched int
	// EdgeWork counts adjacency entries scanned — the actual cost
	// driver, comparable against the view's NumEdges for a full sweep.
	EdgeWork int
	// Elapsed is the wall-clock compute time of the update.
	Elapsed time.Duration
}

// PROpts tunes a PRMaintainer.
type PROpts struct {
	// Eps is the total L1 error budget of the maintained vector against
	// the exact stationary PageRank (0 selects 1e-7). The push threshold
	// derives from it: residuals are drained below Eps·(1−d)/n per
	// vertex, which bounds ‖maintained − exact‖₁ ≤ Eps at all times —
	// the error does not accumulate across generations, because
	// residuals carry the exact discrepancy forward.
	Eps float64
	// MaxCostFrac is the incremental work budget as a fraction of the
	// estimated full-rebuild cost (0 selects 0.25). A rebuild is not
	// one sweep — it is a power iteration to the push threshold, about
	// log(1/θ)/log(1/d) sweeps of the whole adjacency — so the budget
	// scales with that: when a delta's residual seeding plus push
	// propagation exceeds the fraction of it, the update abandons the
	// incremental path and pays for the rebuild directly instead of
	// approaching its cost edge-by-edge.
	MaxCostFrac float64
}

func (o PROpts) eps() float64 {
	if o.Eps > 0 {
		return o.Eps
	}
	return 1e-7
}

func (o PROpts) costFrac() float64 {
	if o.MaxCostFrac > 0 {
		return o.MaxCostFrac
	}
	return 0.25
}

// prMaxFullIters caps the full-rebuild power iteration; at the default
// damping each iteration shrinks the residual by 0.85, so ~250
// iterations reach ~1e-18 — any realistic threshold is hit long before.
const prMaxFullIters = 300

// PRMaintainer maintains a converged PageRank vector incrementally
// across snapshot generations. It holds the estimate p and its exact
// residual r (the per-vertex defect of the PageRank fixed-point
// equation), so the invariant p = (1−d)/n + d·Mp − r is exact at every
// generation: an Update folds a delta's edge changes into r at the
// touched vertices and their frontiers, then pushes residual mass
// through the new view's adjacency until every |r[v]| is below the
// threshold. Work is proportional to the churn (touched degrees plus
// propagated mass), not the graph.
//
// The maintainer inherits the full kernel's symmetry contract: the
// adjacency stores every edge in both directions (as the generators
// and ingest streams in this repo do), so a vertex's out-neighbors
// are exactly the vertices whose pull sum its rank feeds. Residual
// pushes rely on that identity — on an asymmetric adjacency they
// would credit the wrong vertices — so deltas must carry both
// directions of each logical edge, like every other mutation here.
//
// The maintained vector is the stationary PageRank within the Eps
// budget — a slightly different truncation than the fixed-iteration
// full kernel (PageRank with PageRankIters), whose own truncation
// error at 20 iterations is orders of magnitude larger than Eps. A
// consumer switching between the two paths (serve's kernel cache)
// therefore sees the incremental answer as the more converged of the
// pair, with the difference bounded by the full kernel's truncation.
//
// A PRMaintainer is not safe for concurrent use; the serving tier
// serializes updates behind its kernel-cache mutex.
type PRMaintainer struct {
	opts PROpts
	n    int
	p, r []float64

	// Push worklist: queue holds vertices whose residual exceeded the
	// threshold, inq dedupes membership.
	queue   []graph.V
	inq     []bool
	scratch []graph.V
	// contrib and next are full-rebuild scratch, kept across rebuilds.
	contrib, next []float64
}

// NewPRMaintainer builds a maintainer over an initial view with one
// full computation (stats.Full is always true for the build).
func NewPRMaintainer(view *graph.View, opts PROpts) (*PRMaintainer, UpdateStats) {
	m := &PRMaintainer{opts: opts}
	t0 := time.Now()
	st := UpdateStats{Full: true}
	m.rebuild(view, &st)
	st.Elapsed = time.Since(t0)
	return m, st
}

// Ranks returns a copy of the maintained PageRank vector (the caller
// may hold it across future updates).
func (m *PRMaintainer) Ranks() []float64 {
	out := make([]float64, m.n)
	copy(out, m.p)
	return out
}

// theta is the per-vertex residual threshold the maintainer drains to.
func (m *PRMaintainer) theta() float64 {
	return m.opts.eps() * (1 - dampingFactor) / float64(max(m.n, 1))
}

// rebuildCost estimates the edge-work of a full rebuild over a view
// with e edges: one adjacency sweep per power iteration until the
// per-vertex delta reaches θ/2 (each iteration contracts error by d),
// plus the exact-residual sweep. This is the yardstick the incremental
// budget is a fraction of.
func (m *PRMaintainer) rebuildCost(e int64) int {
	theta := m.theta()
	iters := 1
	for err := 1.0; err > theta/2 && iters < prMaxFullIters; iters++ {
		err *= dampingFactor
	}
	return int(e) * (iters + 1)
}

// rebuild is the full-recompute fallback: converge the pull iteration,
// then compute the exact residual in one more sweep so the incremental
// invariant starts (or restarts) exact.
func (m *PRMaintainer) rebuild(view *graph.View, st *UpdateStats) {
	n := view.NumVertices()
	m.n = n
	m.p = resizeF(m.p, n)
	m.r = resizeF(m.r, n)
	m.next = resizeF(m.next, n)
	m.contrib = resizeF(m.contrib, n)
	m.inq = resizeB(m.inq, n)
	m.queue = m.queue[:0]
	st.Touched += n
	if n == 0 {
		return
	}
	theta := m.theta()
	init := 1 / float64(n)
	for v := range m.p {
		m.p[v] = init
	}
	for it := 0; it < prMaxFullIters; it++ {
		m.pullSweep(view, m.p, m.next, st)
		maxd := 0.0
		for v, nv := range m.next {
			if d := abs(nv - m.p[v]); d > maxd {
				maxd = d
			}
		}
		m.p, m.next = m.next, m.p
		if maxd <= theta/2 {
			break
		}
	}
	// r = b + d·Mp − p, exactly, for the final iterate.
	m.pullSweep(view, m.p, m.r, st)
	for v := range m.r {
		m.r[v] -= m.p[v]
		m.inq[v] = false
	}
	m.seedQueue()
	// Residuals are already at the threshold's edge; the drain mops up
	// stragglers. No budget: a rebuild must land in invariant state.
	m.drain(view, int(^uint(0)>>1), st)
}

// pullSweep computes out = (1−d)/n + d·M·in over the view's bulk path.
func (m *PRMaintainer) pullSweep(view *graph.View, in, out []float64, st *UpdateStats) {
	n := m.n
	base := (1 - dampingFactor) / float64(n)
	for v := 0; v < n; v++ {
		if d := view.Degree(graph.V(v)); d > 0 {
			m.contrib[v] = dampingFactor * in[v] / float64(d)
		} else {
			m.contrib[v] = 0
		}
	}
	m.scratch = view.Sweep(0, graph.V(n), m.scratch, func(v graph.V, dsts []graph.V) {
		sum := 0.0
		for _, u := range dsts {
			sum += m.contrib[u]
		}
		out[v] = base + sum
		st.EdgeWork += len(dsts)
	})
}

func (m *PRMaintainer) seedQueue() {
	theta := m.theta()
	for v, rv := range m.r {
		if abs(rv) > theta && !m.inq[v] {
			m.inq[v] = true
			m.queue = append(m.queue, graph.V(v))
		}
	}
}

// bump adds x to r[w], enqueueing w when its residual crosses the
// threshold.
func (m *PRMaintainer) bump(w graph.V, x, theta float64) {
	m.r[w] += x
	if abs(m.r[w]) > theta && !m.inq[w] {
		m.inq[w] = true
		m.queue = append(m.queue, w)
	}
}

// drain pushes residual mass until every |r| is below the threshold or
// the edge-work budget is exhausted (returning false so the caller can
// fall back to a full rebuild). Each push moves a vertex's residual
// into its rank and spreads the damped share onto its current
// out-neighbors — local push on the PageRank linear system, which
// contracts total residual mass by (1−d) per unit pushed. The worklist
// is FIFO (Andersen–Chung–Lang order): a popped vertex has absorbed
// the pushes of the whole previous frontier, so each push moves an
// accumulated residual — LIFO order was measured to re-push freshly
// bumped vertices with tiny amounts, costing orders of magnitude more
// edge-work for the same threshold.
func (m *PRMaintainer) drain(view *graph.View, budget int, st *UpdateStats) bool {
	theta := m.theta()
	head := 0
	for head < len(m.queue) {
		v := m.queue[head]
		head++
		// Compact the drained prefix once it dominates the worklist, so
		// a long cascade does not grow the backing array unboundedly.
		if head > 1024 && head*2 > len(m.queue) {
			n := copy(m.queue, m.queue[head:])
			m.queue = m.queue[:n]
			head = 0
		}
		m.inq[v] = false
		rv := m.r[v]
		if abs(rv) <= theta {
			continue
		}
		m.p[v] += rv
		m.r[v] = 0
		st.Touched++
		deg := view.Degree(v)
		if deg == 0 {
			continue // dangling: mass leaks, as in the full kernel
		}
		st.EdgeWork += deg
		if st.EdgeWork > budget {
			// Restore the popped residual so state stays coherent even
			// though the caller will rebuild anyway.
			m.p[v] -= rv
			m.r[v] = rv
			return false
		}
		c := dampingFactor * rv / float64(deg)
		m.scratch = view.CopyNeighbors(v, m.scratch[:0])
		for _, w := range m.scratch {
			m.bump(w, c, theta)
		}
	}
	m.queue = m.queue[:0]
	return true
}

// prSrcDelta is one touched source's net change within a delta.
type prSrcDelta struct {
	net      int // inserted minus deleted out-edges
	ins, del []graph.V
}

// Update advances the maintained vector to the state of view, which
// must be separated from the previously synced view by exactly the
// ops in delta (a Journal cut pair). Overflowed deltas, vertex-space
// changes, op ids outside the space, or incremental work past the
// budget all fall back to a full rebuild — stats.Full reports which
// path ran.
func (m *PRMaintainer) Update(view *graph.View, delta graph.Delta) (st UpdateStats) {
	t0 := time.Now()
	st.Ops = len(delta.Ops)
	// Named return: the deferred stamp must land on the value the
	// caller sees, not a dead local.
	defer func() { st.Elapsed = time.Since(t0) }()

	n := view.NumVertices()
	if delta.Overflow || n != m.n {
		st.Full = true
		m.rebuild(view, &st)
		return st
	}
	if len(delta.Ops) == 0 {
		return st
	}

	// Fold the delta into per-source net multiset changes: deltas are
	// multiset contracts (recording order may differ from application
	// order under sharded ingest), and the residual adjustment below
	// only needs each source's old-degree reconstruction and net
	// destination changes.
	touched := make(map[graph.V]*prSrcDelta, len(delta.Ops))
	for _, o := range delta.Ops {
		if int(o.Edge.Src) >= n || int(o.Edge.Dst) >= n {
			st.Full = true
			m.rebuild(view, &st)
			return st
		}
		sd := touched[o.Edge.Src]
		if sd == nil {
			sd = &prSrcDelta{}
			touched[o.Edge.Src] = sd
		}
		if o.Del {
			sd.net--
			sd.del = append(sd.del, o.Edge.Dst)
		} else {
			sd.net++
			sd.ins = append(sd.ins, o.Edge.Dst)
		}
	}

	// Budget check before doing any work: seeding scans each touched
	// source's new adjacency once. The budget is a fraction of the
	// estimated rebuild cost (iterations × edges, not one sweep), the
	// actual alternative the incremental path competes with.
	budget := int(m.opts.costFrac() * float64(m.rebuildCost(max(view.NumEdges(), 1))))
	seedWork := len(delta.Ops)
	for u := range touched {
		seedWork += view.Degree(u)
	}
	if seedWork > budget {
		st.Full = true
		m.rebuild(view, &st)
		return st
	}

	// Residual seeding: a source u whose out-degree moved from D0 to D1
	// changes its contribution to every current neighbor by
	// d·p[u]·(1/D1 − 1/D0) and adds/removes d·p[u]/D0 at inserted and
	// deleted destinations (the algebra of new−old contribution with
	// old multiset = new − ins + del). Dangling endpoints collapse the
	// terms whose degree is zero.
	theta := m.theta()
	for u, sd := range touched {
		d1 := view.Degree(u)
		d0 := d1 - sd.net
		coef := dampingFactor * m.p[u]
		switch {
		case d0 > 0 && d1 > 0:
			if adj := coef * (1/float64(d1) - 1/float64(d0)); adj != 0 {
				m.scratch = view.CopyNeighbors(u, m.scratch[:0])
				st.EdgeWork += len(m.scratch)
				for _, w := range m.scratch {
					m.bump(w, adj, theta)
				}
			}
			inv0 := coef / float64(d0)
			for _, w := range sd.ins {
				m.bump(w, inv0, theta)
			}
			for _, w := range sd.del {
				m.bump(w, -inv0, theta)
			}
		case d1 > 0: // d0 == 0: the source had no old contribution
			inv1 := coef / float64(d1)
			m.scratch = view.CopyNeighbors(u, m.scratch[:0])
			st.EdgeWork += len(m.scratch)
			for _, w := range m.scratch {
				m.bump(w, inv1, theta)
			}
		case d0 > 0: // d1 == 0: every old contribution disappears
			inv0 := coef / float64(d0)
			for _, w := range sd.ins {
				m.bump(w, inv0, theta)
			}
			for _, w := range sd.del {
				m.bump(w, -inv0, theta)
			}
		}
	}

	if !m.drain(view, budget, &st) {
		st.Full = true
		m.rebuild(view, &st)
	}
	return st
}

// CCOpts tunes a CCMaintainer.
type CCOpts struct {
	// MaxIslandFrac is the island-size budget as a fraction of the
	// vertex count (0 selects 0.5): when the components containing
	// deleted edges cover more than this fraction of the graph, the
	// update recomputes fully instead of rebuilding the islands.
	MaxIslandFrac float64
}

func (o CCOpts) islandFrac() float64 {
	if o.MaxIslandFrac > 0 {
		return o.MaxIslandFrac
	}
	return 0.5
}

// CCMaintainer maintains connected-component labels incrementally: a
// union-find whose root is always the minimum vertex id of its
// component (so materialized labels match the full CC kernel exactly),
// updated in place for inserts, with deletions handled by recompute
// islands — a union-find cannot split, so every component containing a
// deleted edge is reset and re-derived from the new view's adjacency.
// Island recompute is closed by construction: any live edge incident
// to an island vertex leads to a vertex of the same (pre-split)
// component, because old edges connected their endpoints and this
// delta's inserts were unioned first.
//
// Like PRMaintainer, a CCMaintainer is not safe for concurrent use.
type CCMaintainer struct {
	opts   CCOpts
	n      int
	parent []graph.V

	scratch []graph.V
	island  []graph.V
}

// NewCCMaintainer builds a maintainer over an initial view with one
// full computation.
func NewCCMaintainer(view *graph.View, opts CCOpts) (*CCMaintainer, UpdateStats) {
	m := &CCMaintainer{opts: opts}
	t0 := time.Now()
	st := UpdateStats{Full: true}
	m.rebuild(view, &st)
	st.Elapsed = time.Since(t0)
	return m, st
}

// Labels materializes the maintained component labels: label[v] is the
// minimum vertex id of v's component, exactly what the full CC kernel
// returns.
func (m *CCMaintainer) Labels() []graph.V {
	out := make([]graph.V, m.n)
	for v := range out {
		out[v] = m.find(graph.V(v))
	}
	return out
}

// find returns v's root (the component's minimum id), halving paths as
// it walks.
func (m *CCMaintainer) find(v graph.V) graph.V {
	for m.parent[v] != v {
		m.parent[v] = m.parent[m.parent[v]]
		v = m.parent[v]
	}
	return v
}

// union hooks the larger root under the smaller, preserving the
// root-is-minimum invariant (union by minimum rather than by rank —
// path halving keeps finds cheap regardless).
func (m *CCMaintainer) union(a, b graph.V) {
	ra, rb := m.find(a), m.find(b)
	switch {
	case ra < rb:
		m.parent[rb] = ra
	case rb < ra:
		m.parent[ra] = rb
	}
}

// rebuild derives the union-find from the whole view.
func (m *CCMaintainer) rebuild(view *graph.View, st *UpdateStats) {
	n := view.NumVertices()
	m.n = n
	if cap(m.parent) < n {
		m.parent = make([]graph.V, n)
	}
	m.parent = m.parent[:n]
	for v := range m.parent {
		m.parent[v] = graph.V(v)
	}
	st.Touched += n
	if n == 0 {
		return
	}
	m.scratch = view.Sweep(0, graph.V(n), m.scratch, func(v graph.V, dsts []graph.V) {
		st.EdgeWork += len(dsts)
		for _, w := range dsts {
			m.union(v, w)
		}
	})
}

// Update advances the maintained labels to the state of view across
// delta (the same contract as PRMaintainer.Update). Inserts are plain
// unions; deletes mark their components dirty, and every dirty
// component is rebuilt from the new view's adjacency — work
// proportional to the islands, not the graph, unless the islands
// cover more than the budget fraction of it.
func (m *CCMaintainer) Update(view *graph.View, delta graph.Delta) (st UpdateStats) {
	t0 := time.Now()
	st.Ops = len(delta.Ops)
	// Named return: the deferred stamp must land on the value the
	// caller sees, not a dead local.
	defer func() { st.Elapsed = time.Since(t0) }()

	n := view.NumVertices()
	if delta.Overflow || n != m.n {
		st.Full = true
		m.rebuild(view, &st)
		return st
	}

	var dels []graph.Edge
	for _, o := range delta.Ops {
		if int(o.Edge.Src) >= n || int(o.Edge.Dst) >= n {
			st.Full = true
			m.rebuild(view, &st)
			return st
		}
		if o.Del {
			dels = append(dels, o.Edge)
		} else {
			m.union(o.Edge.Src, o.Edge.Dst)
		}
	}
	if len(dels) == 0 {
		return st
	}

	// Dirty roots are resolved after all of the delta's inserts have
	// been unioned, so an island is a whole post-insert component.
	dirty := make(map[graph.V]bool, len(dels))
	for _, e := range dels {
		dirty[m.find(e.Src)] = true
		dirty[m.find(e.Dst)] = true
	}
	m.island = m.island[:0]
	for v := 0; v < n; v++ {
		if dirty[m.find(graph.V(v))] {
			m.island = append(m.island, graph.V(v))
		}
	}
	if float64(len(m.island)) > m.opts.islandFrac()*float64(n) {
		st.Full = true
		m.rebuild(view, &st)
		return st
	}
	st.Touched += len(m.island)
	for _, v := range m.island {
		m.parent[v] = v
	}
	for _, v := range m.island {
		m.scratch = view.CopyNeighbors(v, m.scratch[:0])
		st.EdgeWork += len(m.scratch)
		for _, w := range m.scratch {
			m.union(v, w)
		}
	}
	return st
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func resizeF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
