package analytics

import (
	"time"

	"dgap/internal/graph"
)

// BC computes single-source betweenness centrality with Brandes'
// algorithm (the approximation the paper uses runs it from one or a few
// sources): a BFS builds the shortest-path DAG with path counts, then a
// reverse sweep accumulates dependencies. It returns the centrality
// score of every vertex for the given source.
func BC(s graph.Snapshot, src graph.V, cfg Config) ([]float64, time.Duration) {
	n := s.NumVertices()
	p := cfg.pool()
	scores := make([]float64, n)
	if int(src) >= n {
		return scores, elapsed(p)
	}
	depth := make([]int32, n)
	sigma := make([]float64, n) // shortest-path counts
	delta := make([]float64, n) // dependency accumulators
	p.Serial(func() {
		for i := range depth {
			depth[i] = -1
		}
		depth[src] = 0
		sigma[src] = 1
	})

	grain := cfg.grain(n)
	// Forward phase: level-synchronous BFS recording sigma and levels.
	levels := [][]graph.V{{src}}
	for {
		cur := levels[len(levels)-1]
		if len(cur) == 0 {
			levels = levels[:len(levels)-1]
			break
		}
		d := int32(len(levels))
		nextLocal := make([][]graph.V, (len(cur)+grain-1)/grain)
		p.For(len(cur), grain, func(lo, hi int) {
			var local []graph.V
			for i := lo; i < hi; i++ {
				v := cur[i]
				s.Neighbors(v, func(u graph.V) bool {
					if depth[u] == -1 {
						// Benign duplicate discovery across chunks under
						// real parallelism is resolved by the dedup below.
						depth[u] = d
						local = append(local, u)
					}
					return true
				})
			}
			nextLocal[lo/grain] = local
		})
		var next []graph.V
		p.Serial(func() {
			seen := map[graph.V]bool{}
			for _, l := range nextLocal {
				for _, u := range l {
					if !seen[u] {
						seen[u] = true
						next = append(next, u)
					}
				}
			}
			// Sigma accumulates over all shortest predecessors, computed
			// once per discovered vertex.
			for _, u := range next {
				var sum float64
				s.Neighbors(u, func(w graph.V) bool {
					if depth[w] == d-1 {
						sum += sigma[w]
					}
					return true
				})
				sigma[u] = sum
			}
		})
		levels = append(levels, next)
	}

	// Backward phase: accumulate dependencies level by level.
	for l := len(levels) - 1; l >= 1; l-- {
		cur := levels[l]
		p.For(len(cur), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := cur[i]
				var acc float64
				s.Neighbors(v, func(u graph.V) bool {
					if depth[u] == int32(l+1) && sigma[u] > 0 {
						acc += sigma[v] / sigma[u] * (1 + delta[u])
					}
					return true
				})
				delta[v] = acc
				scores[v] += acc
			}
		})
	}
	return scores, elapsed(p)
}
