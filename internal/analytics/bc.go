package analytics

import (
	"time"

	"dgap/internal/graph"
)

// BC computes single-source betweenness centrality with Brandes'
// algorithm (the approximation the paper uses runs it from one or a few
// sources): a BFS builds the shortest-path DAG with path counts, then a
// reverse sweep accumulates dependencies. Both sweeps read adjacency
// through the View's bulk path and partition each level by its degree
// prefix sum. It returns the centrality score of every vertex for the
// given source.
func BC(g *graph.View, src graph.V, cfg Config) ([]float64, time.Duration) {
	n := g.NumVertices()
	p := cfg.pool()
	scores := make([]float64, n)
	if int(src) >= n {
		return scores, elapsed(p)
	}
	depth := make([]int32, n)
	sigma := make([]float64, n) // shortest-path counts
	delta := make([]float64, n) // dependency accumulators
	p.Serial(func() {
		for i := range depth {
			depth[i] = -1
		}
		depth[src] = 0
		sigma[src] = 1
	})

	levelBounds := func(level []graph.V) []int {
		return cfg.bounds(len(level), func(i int) int { return g.Degree(level[i]) })
	}
	// forEachNeighbor visits v's destinations through whichever read path
	// the configuration selected, reusing buf on the bulk path.
	forEachNeighbor := func(v graph.V, buf *[]graph.V, fn func(u graph.V)) {
		if cfg.Callback {
			g.Neighbors(v, func(u graph.V) bool { fn(u); return true })
			return
		}
		*buf = g.CopyNeighbors(v, (*buf)[:0])
		for _, u := range *buf {
			fn(u)
		}
	}

	// Forward phase: level-synchronous BFS recording sigma and levels.
	levels := [][]graph.V{{src}}
	for {
		cur := levels[len(levels)-1]
		if len(cur) == 0 {
			levels = levels[:len(levels)-1]
			break
		}
		d := int32(len(levels))
		bounds := levelBounds(cur)
		nextLocal := make([][]graph.V, len(bounds)-1)
		p.ForRanges(bounds, func(c, lo, hi int) {
			var local []graph.V
			scratch := getScratch()
			for i := lo; i < hi; i++ {
				forEachNeighbor(cur[i], scratch, func(u graph.V) {
					if depth[u] == -1 {
						// Benign duplicate discovery across chunks under
						// real parallelism is resolved by the dedup below.
						depth[u] = d
						local = append(local, u)
					}
				})
			}
			putScratch(scratch)
			nextLocal[c] = local
		})
		var next []graph.V
		p.Serial(func() {
			seen := map[graph.V]bool{}
			for _, l := range nextLocal {
				for _, u := range l {
					if !seen[u] {
						seen[u] = true
						next = append(next, u)
					}
				}
			}
			// Sigma accumulates over all shortest predecessors, computed
			// once per discovered vertex.
			scratch := getScratch()
			for _, u := range next {
				var sum float64
				forEachNeighbor(u, scratch, func(w graph.V) {
					if depth[w] == d-1 {
						sum += sigma[w]
					}
				})
				sigma[u] = sum
			}
			putScratch(scratch)
		})
		levels = append(levels, next)
	}

	// Backward phase: accumulate dependencies level by level.
	for l := len(levels) - 1; l >= 1; l-- {
		cur := levels[l]
		p.ForRanges(levelBounds(cur), func(_, lo, hi int) {
			scratch := getScratch()
			for i := lo; i < hi; i++ {
				v := cur[i]
				var acc float64
				forEachNeighbor(v, scratch, func(u graph.V) {
					if depth[u] == int32(l+1) && sigma[u] > 0 {
						acc += sigma[v] / sigma[u] * (1 + delta[u])
					}
				})
				delta[v] = acc
				scores[v] += acc
			}
			putScratch(scratch)
		})
	}
	return scores, elapsed(p)
}
