package analytics_test

import (
	"math"
	"testing"

	"dgap/internal/analytics"
	"dgap/internal/bal"
	"dgap/internal/csr"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/graphone"
	"dgap/internal/llama"
	"dgap/internal/pmem"
	"dgap/internal/xpgraph"
)

// TestKernelsAgreeAcrossAllSystems is the end-to-end integration check:
// the same kernels over every framework's snapshot of the same graph
// must produce identical results (PR within float tolerance, identical
// BFS depths, identical CC partitions, identical BC scores).
func TestKernelsAgreeAcrossAllSystems(t *testing.T) {
	spec, err := graphgen.Preset("citpatents")
	if err != nil {
		t.Fatal(err)
	}
	edges := spec.Generate(0.0001, 77)
	nVert := graphgen.MaxVertex(edges)

	snaps := map[string]*graph.View{}
	{
		g, err := csr.Build(pmem.New(128<<20), nVert, edges)
		if err != nil {
			t.Fatal(err)
		}
		snaps["csr"] = graph.ViewOf(g.Snapshot())
	}
	{
		g, err := dgap.New(pmem.New(256<<20), dgap.DefaultConfig(nVert, int64(len(edges))))
		if err != nil {
			t.Fatal(err)
		}
		load(t, g, edges)
		snaps["dgap"] = graph.ViewOf(g.Snapshot())
	}
	{
		g := bal.New(pmem.New(256<<20), nVert)
		load(t, g, edges)
		snaps["bal"] = graph.ViewOf(g.Snapshot())
	}
	{
		g := llama.New(pmem.New(256<<20), nVert, len(edges)/50+1)
		load(t, g, edges)
		if err := g.Freeze(); err != nil {
			t.Fatal(err)
		}
		snaps["llama"] = graph.ViewOf(g.Snapshot())
	}
	{
		g, err := graphone.New(pmem.New(128<<20), nVert, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		load(t, g, edges)
		snaps["graphone"] = graph.ViewOf(g.Snapshot())
	}
	{
		g, err := xpgraph.New(pmem.New(256<<20), nVert, xpgraph.Config{Threshold: 512, LogCapEdges: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		load(t, g, edges)
		snaps["xpgraph"] = graph.ViewOf(g.Snapshot())
	}

	ref := snaps["csr"]
	refPR, _ := analytics.PageRank(ref, 10, analytics.Serial)
	refBFS, _ := analytics.BFS(ref, 3, analytics.Serial)
	refCC, _ := analytics.CC(ref, analytics.Serial)
	refBC, _ := analytics.BC(ref, 3, analytics.Serial)
	refDepth := depths(ref, refBFS, 3)

	for name, s := range snaps {
		if name == "csr" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			pr, _ := analytics.PageRank(s, 10, analytics.Serial)
			for v := range refPR {
				if math.Abs(pr[v]-refPR[v]) > 1e-9 {
					t.Fatalf("PR[%d] = %g, want %g", v, pr[v], refPR[v])
				}
			}
			bfs, _ := analytics.BFS(s, 3, analytics.Serial)
			d := depths(s, bfs, 3)
			for v := range refDepth {
				if d[v] != refDepth[v] {
					t.Fatalf("BFS depth[%d] = %d, want %d", v, d[v], refDepth[v])
				}
			}
			cc, _ := analytics.CC(s, analytics.Serial)
			if !samePartition(cc, refCC) {
				t.Fatal("CC partition differs")
			}
			bc, _ := analytics.BC(s, 3, analytics.Serial)
			for v := range refBC {
				if math.Abs(bc[v]-refBC[v]) > 1e-9 {
					t.Fatalf("BC[%d] = %g, want %g", v, bc[v], refBC[v])
				}
			}
		})
	}
}

func load(t *testing.T, sys graph.System, edges []graph.Edge) {
	t.Helper()
	for _, e := range edges {
		if err := sys.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
}

func depths(s graph.Snapshot, parent []int32, src graph.V) []int {
	depth := make([]int, len(parent))
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	for changed := true; changed; {
		changed = false
		for v, p := range parent {
			if p < 0 || depth[v] != -1 || depth[p] == -1 {
				continue
			}
			depth[v] = depth[p] + 1
			changed = true
		}
	}
	return depth
}

func samePartition(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[graph.V]graph.V{}
	rev := map[graph.V]graph.V{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := rev[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// TestKernelsOverLiveDGAPSnapshot: kernels keep producing the frozen
// result while the graph continues to mutate underneath — the paper's
// central consistency scenario (long PageRank concurrent with updates).
func TestKernelsOverLiveDGAPSnapshot(t *testing.T) {
	edges := graphgen.Uniform(200, 12, 55)
	half := len(edges) / 2
	g, err := dgap.New(pmem.New(256<<20), dgap.DefaultConfig(200, int64(len(edges))))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges[:half] {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	view := graph.ViewOf(g.ConsistentView())
	before, _ := analytics.PageRank(view, 5, analytics.Serial)

	done := make(chan error, 1)
	go func() {
		w, err := g.NewWriter()
		if err != nil {
			done <- err
			return
		}
		defer w.Close()
		for _, e := range edges[half:] {
			if err := w.InsertEdge(e.Src, e.Dst); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	after, _ := analytics.PageRank(view, 5, analytics.Serial) // racing the writer
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for v := range before {
		if math.Abs(before[v]-after[v]) > 1e-12 {
			t.Fatalf("snapshot PR drifted at %d under concurrent writes", v)
		}
	}
}
