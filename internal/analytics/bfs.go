package analytics

import (
	"sync/atomic"
	"time"

	"dgap/internal/graph"
)

// NoParent marks unreached vertices in a BFS parent array.
const NoParent = int32(-1)

// BFS runs the direction-optimizing breadth-first search of Beamer et
// al. (the GAPBS implementation the paper uses): top-down while the
// frontier is small, switching to bottom-up when the frontier's edge
// count grows past a fraction of the remaining edges. Frontier expansion
// reads adjacency through the View's bulk path, and each parallel phase
// is partitioned by the frontier's degree prefix sum so one hub vertex
// does not serialize its chunk. It returns the parent array.
func BFS(g *graph.View, src graph.V, cfg Config) ([]int32, time.Duration) {
	n := g.NumVertices()
	p := cfg.pool()
	parent := make([]int32, n)
	p.Serial(func() {
		for i := range parent {
			parent[i] = NoParent
		}
	})
	if int(src) >= n {
		return parent, elapsed(p)
	}
	parent[src] = int32(src)

	const alpha = 15 // GAPBS direction-switch heuristic
	frontier := []graph.V{src}
	inFrontier := newBitmap(n)
	totalEdges := g.NumEdges()
	var exploredEdges int64

	vertBounds := cfg.bounds(n, func(i int) int { return g.Degree(graph.V(i)) })
	for len(frontier) > 0 {
		// Estimate work on each side of the switch.
		var frontierEdges int64
		p.Serial(func() {
			for _, v := range frontier {
				frontierEdges += int64(g.Degree(v))
			}
		})
		remaining := totalEdges - exploredEdges
		if frontierEdges*alpha > remaining {
			frontier = bfsBottomUp(g, p, parent, frontier, inFrontier, vertBounds)
		} else {
			frontier = bfsTopDown(g, p, parent, frontier, cfg)
		}
		exploredEdges += frontierEdges
	}
	return parent, elapsed(p)
}

// bfsTopDown expands the frontier by scanning each frontier vertex's
// out-edges; vertices are claimed with a CAS on the parent array, so
// each lands in exactly one chunk's local next-frontier.
func bfsTopDown(g *graph.View, p pool, parent []int32, frontier []graph.V, cfg Config) []graph.V {
	bounds := cfg.bounds(len(frontier), func(i int) int { return g.Degree(frontier[i]) })
	nextLocal := make([][]graph.V, len(bounds)-1)
	p.ForRanges(bounds, func(c, lo, hi int) {
		var local []graph.V
		if cfg.Callback {
			for i := lo; i < hi; i++ {
				v := frontier[i]
				g.Neighbors(v, func(u graph.V) bool {
					if atomicClaimParent(parent, u, int32(v)) {
						local = append(local, u)
					}
					return true
				})
			}
		} else {
			scratch := getScratch()
			buf := *scratch
			for i := lo; i < hi; i++ {
				v := frontier[i]
				buf = g.CopyNeighbors(v, buf[:0])
				for _, u := range buf {
					if atomicClaimParent(parent, u, int32(v)) {
						local = append(local, u)
					}
				}
			}
			*scratch = buf
			putScratch(scratch)
		}
		nextLocal[c] = local
	})
	var next []graph.V
	p.Serial(func() {
		for _, l := range nextLocal {
			next = append(next, l...)
		}
	})
	return next
}

// bfsBottomUp scans all unreached vertices, adopting any in-frontier
// neighbor as parent. Each unreached vertex is written by exactly one
// chunk, so plain stores suffice; the frontier bitmap is read-only
// during the sweep. This phase deliberately keeps the per-edge callback
// even in bulk mode: bottom-up runs exactly when the frontier is large,
// so most scans hit an in-frontier neighbor within the first few edges,
// and the early exit (stop at the first hit) saves far more than a bulk
// copy of each hub's full adjacency would.
func bfsBottomUp(g *graph.View, p pool, parent []int32, frontier []graph.V, inFrontier *bitmap, vertBounds []int) []graph.V {
	p.Serial(func() {
		inFrontier.clear()
		for _, v := range frontier {
			inFrontier.set(int(v))
		}
	})
	nextLocal := make([][]graph.V, len(vertBounds)-1)
	p.ForRanges(vertBounds, func(c, lo, hi int) {
		var local []graph.V
		for v := lo; v < hi; v++ {
			if atomic.LoadInt32(&parent[v]) != NoParent {
				continue
			}
			g.Neighbors(graph.V(v), func(u graph.V) bool {
				if inFrontier.get(int(u)) {
					atomic.StoreInt32(&parent[v], int32(u))
					local = append(local, graph.V(v))
					return false
				}
				return true
			})
		}
		nextLocal[c] = local
	})
	var next []graph.V
	p.Serial(func() {
		for _, l := range nextLocal {
			next = append(next, l...)
		}
	})
	return next
}
