package analytics

import (
	"sync/atomic"
	"time"

	"dgap/internal/graph"
)

// NoParent marks unreached vertices in a BFS parent array.
const NoParent = int32(-1)

// BFS runs the direction-optimizing breadth-first search of Beamer et
// al. (the GAPBS implementation the paper uses): top-down while the
// frontier is small, switching to bottom-up when the frontier's edge
// count grows past a fraction of the remaining edges. It returns the
// parent array.
func BFS(s graph.Snapshot, src graph.V, cfg Config) ([]int32, time.Duration) {
	n := s.NumVertices()
	p := cfg.pool()
	parent := make([]int32, n)
	p.Serial(func() {
		for i := range parent {
			parent[i] = NoParent
		}
	})
	if int(src) >= n {
		return parent, elapsed(p)
	}
	parent[src] = int32(src)

	const alpha = 15 // GAPBS direction-switch heuristic
	frontier := []graph.V{src}
	inFrontier := newBitmap(n)
	grain := cfg.grain(n)
	totalEdges := s.NumEdges()
	var exploredEdges int64

	for len(frontier) > 0 {
		// Estimate work on each side of the switch.
		var frontierEdges int64
		p.Serial(func() {
			for _, v := range frontier {
				frontierEdges += int64(s.Degree(v))
			}
		})
		remaining := totalEdges - exploredEdges
		if frontierEdges*alpha > remaining {
			frontier = bfsBottomUp(s, p, parent, frontier, inFrontier, grain)
		} else {
			frontier = bfsTopDown(s, p, parent, frontier, grain)
		}
		exploredEdges += frontierEdges
	}
	return parent, elapsed(p)
}

// bfsTopDown expands the frontier by scanning each frontier vertex's
// out-edges; vertices are claimed with a CAS on the parent array, so
// each lands in exactly one chunk's local next-frontier.
func bfsTopDown(s graph.Snapshot, p pool, parent []int32, frontier []graph.V, grain int) []graph.V {
	nextLocal := make([][]graph.V, (len(frontier)+grain-1)/grain)
	p.For(len(frontier), grain, func(lo, hi int) {
		var local []graph.V
		for i := lo; i < hi; i++ {
			v := frontier[i]
			s.Neighbors(v, func(u graph.V) bool {
				if atomicClaimParent(parent, u, int32(v)) {
					local = append(local, u)
				}
				return true
			})
		}
		nextLocal[lo/grain] = local
	})
	var next []graph.V
	p.Serial(func() {
		for _, l := range nextLocal {
			next = append(next, l...)
		}
	})
	return next
}

// bfsBottomUp scans all unreached vertices, adopting any in-frontier
// neighbor as parent. Each unreached vertex is written by exactly one
// chunk, so plain stores suffice; the frontier bitmap is read-only
// during the sweep.
func bfsBottomUp(s graph.Snapshot, p pool, parent []int32, frontier []graph.V, inFrontier *bitmap, grain int) []graph.V {
	n := s.NumVertices()
	p.Serial(func() {
		inFrontier.clear()
		for _, v := range frontier {
			inFrontier.set(int(v))
		}
	})
	nextLocal := make([][]graph.V, (n+grain-1)/grain)
	p.For(n, grain, func(lo, hi int) {
		var local []graph.V
		for v := lo; v < hi; v++ {
			if atomic.LoadInt32(&parent[v]) != NoParent {
				continue
			}
			s.Neighbors(graph.V(v), func(u graph.V) bool {
				if inFrontier.get(int(u)) {
					atomic.StoreInt32(&parent[v], int32(u))
					local = append(local, graph.V(v))
					return false
				}
				return true
			})
		}
		nextLocal[lo/grain] = local
	})
	var next []graph.V
	p.Serial(func() {
		for _, l := range nextLocal {
			next = append(next, l...)
		}
	})
	return next
}
