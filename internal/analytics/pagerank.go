package analytics

import (
	"time"

	"dgap/internal/graph"
)

// PageRankIters is the fixed iteration count the paper uses (Table 1).
const PageRankIters = 20

const dampingFactor = 0.85

// PageRank runs the fixed-iteration pull-style PageRank of GAPBS over a
// snapshot. The graph is treated as symmetric (every edge stored in both
// directions, as the generators produce), so pulling over out-neighbors
// equals pulling over in-neighbors.
func PageRank(s graph.Snapshot, iters int, cfg Config) ([]float64, time.Duration) {
	n := s.NumVertices()
	p := cfg.pool()
	ranks := make([]float64, n)
	contrib := make([]float64, n)
	base := (1 - dampingFactor) / float64(n)
	p.Serial(func() {
		init := 1 / float64(n)
		for v := range ranks {
			ranks[v] = init
		}
	})
	grain := cfg.grain(n)
	for it := 0; it < iters; it++ {
		p.For(n, grain, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if d := s.Degree(graph.V(v)); d > 0 {
					contrib[v] = ranks[v] / float64(d)
				} else {
					contrib[v] = 0
				}
			}
		})
		p.For(n, grain, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				var sum float64
				s.Neighbors(graph.V(v), func(u graph.V) bool {
					sum += contrib[u]
					return true
				})
				ranks[v] = base + dampingFactor*sum
			}
		})
	}
	return ranks, elapsed(p)
}
