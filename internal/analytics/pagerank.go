package analytics

import (
	"math"
	"time"

	"dgap/internal/graph"
)

// PageRankIters is the fixed iteration count the paper uses (Table 1).
const PageRankIters = 20

const dampingFactor = 0.85

// FixedIterTol bounds the L1 truncation error of the fixed-iteration
// kernel: the power iteration contracts by the damping factor per
// sweep, so PageRankIters sweeps leave at most d^iters of the initial
// error mass (~4e-2 at the paper's 20 iterations). A consumer that
// maintains a PageRank vector incrementally (PRMaintainer) can target
// this as its PROpts.Eps to match — not exceed — the accuracy of the
// fixed-iteration path it replaces; a tighter target makes the
// incremental path pay for precision the full path never had.
var FixedIterTol = math.Pow(dampingFactor, PageRankIters)

// PageRank runs the fixed-iteration pull-style PageRank of GAPBS over a
// read View. The graph is treated as symmetric (every edge stored in
// both directions, as the generators produce), so pulling over
// out-neighbors equals pulling over in-neighbors. The pull phase sweeps
// the vertex range through the View's bulk read path with equal-edge
// chunking; degrees are fixed for the snapshot's lifetime, so the
// boundaries are computed once and reused by every iteration.
func PageRank(g *graph.View, iters int, cfg Config) ([]float64, time.Duration) {
	n := g.NumVertices()
	p := cfg.pool()
	ranks := make([]float64, n)
	contrib := make([]float64, n)
	base := (1 - dampingFactor) / float64(n)
	p.Serial(func() {
		init := 1 / float64(n)
		for v := range ranks {
			ranks[v] = init
		}
	})
	bounds := cfg.bounds(n, func(i int) int { return g.Degree(graph.V(i)) })
	for it := 0; it < iters; it++ {
		p.ForRanges(bounds, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				if d := g.Degree(graph.V(v)); d > 0 {
					contrib[v] = ranks[v] / float64(d)
				} else {
					contrib[v] = 0
				}
			}
		})
		p.ForRanges(bounds, func(_, lo, hi int) {
			if cfg.Callback {
				for v := lo; v < hi; v++ {
					var sum float64
					g.Neighbors(graph.V(v), func(u graph.V) bool {
						sum += contrib[u]
						return true
					})
					ranks[v] = base + dampingFactor*sum
				}
				return
			}
			scratch := getScratch()
			*scratch = g.Sweep(graph.V(lo), graph.V(hi), *scratch, func(v graph.V, dsts []graph.V) {
				var sum float64
				for _, u := range dsts {
					sum += contrib[u]
				}
				ranks[v] = base + dampingFactor*sum
			})
			putScratch(scratch)
		})
	}
	return ranks, elapsed(p)
}
