package pmem_test

import (
	"fmt"

	"dgap/internal/pmem"
)

// The canonical persistent-write pattern: store, flush, fence. Only what
// was flushed before a crash survives it.
func Example() {
	a := pmem.New(1 << 20)
	off := a.MustAlloc(64, 64)

	a.WriteU64(off, 42)
	a.Flush(off, 8)
	a.Fence()
	a.WriteU64(off+8, 99) // never flushed

	recovered := a.Crash()
	fmt.Println(recovered.ReadU64(off), recovered.ReadU64(off+8))
	// Output: 42 0
}

// Transactions roll partial updates back after a crash.
func Example_transaction() {
	a := pmem.New(1 << 20)
	off := a.MustAlloc(16, 64)
	a.WriteU64(off, 1)
	a.WriteU64(off+8, 2)
	a.Flush(off, 16)
	a.Fence()

	tx, _ := pmem.Begin(a, 256)
	_ = tx.Add(off, 16)
	a.WriteU64(off, 10) // both fields must change together
	a.WriteU64(off+8, 20)
	a.Flush(off, 8) // ...but only one was flushed before the crash
	a.Fence()

	recovered := a.Crash()
	pmem.RecoverTx(recovered)
	fmt.Println(recovered.ReadU64(off), recovered.ReadU64(off+8))
	// Output: 1 2
}
