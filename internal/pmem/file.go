package pmem

import (
	"encoding/binary"
	"fmt"
	"os"
)

// Image persistence: the media image can be saved to and restored from a
// regular file, giving the emulated device durability across process
// restarts (the role the DAX-mounted pool file plays for PMDK).

const imageMagic = 0x50474147 // "GAPP"

// SaveImage writes the media image (the persistent state only — the
// volatile view is deliberately not saved, matching power-loss semantics)
// to path.
func (a *Arena) SaveImage(path string) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr, imageMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(a.plat))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(a.media)))
	a.allocMu.Lock()
	binary.LittleEndian.PutUint64(hdr[16:], a.next)
	a.allocMu.Unlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(hdr); err != nil {
		return err
	}
	if _, err := f.Write(a.media); err != nil {
		return err
	}
	return f.Close()
}

// LoadImage restores an arena from a file produced by SaveImage. The
// returned arena behaves exactly like one returned by Crash: only
// persisted state is present.
func LoadImage(path string, opts ...Option) (*Arena, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 24 {
		return nil, fmt.Errorf("pmem: image %s truncated", path)
	}
	if binary.LittleEndian.Uint32(data) != imageMagic {
		return nil, fmt.Errorf("pmem: image %s has bad magic", path)
	}
	plat := Platform(binary.LittleEndian.Uint32(data[4:]))
	size := binary.LittleEndian.Uint64(data[8:])
	next := binary.LittleEndian.Uint64(data[16:])
	if uint64(len(data)-24) != size {
		return nil, fmt.Errorf("pmem: image %s size mismatch: header %d, payload %d", path, size, len(data)-24)
	}
	a := New(int(size), append(opts, WithPlatform(plat))...)
	copy(a.buf, data[24:])
	copy(a.media, data[24:])
	a.next = next
	return a, nil
}
