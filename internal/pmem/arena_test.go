package pmem

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	a := New(1 << 20)
	off1 := a.MustAlloc(10, 64)
	if off1%64 != 0 {
		t.Fatalf("offset %d not 64-aligned", off1)
	}
	if off1 < SuperblockSize {
		t.Fatalf("allocation %d overlaps superblock", off1)
	}
	off2 := a.MustAlloc(1, 1)
	if off2 < off1+10 {
		t.Fatalf("overlapping allocations: %d after [%d,%d)", off2, off1, off1+10)
	}
	off3 := a.MustAlloc(8, 256)
	if off3%256 != 0 {
		t.Fatalf("offset %d not 256-aligned", off3)
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := New(SuperblockSize + 128)
	if _, err := a.Alloc(128, 1); err != nil {
		t.Fatalf("first alloc should fit: %v", err)
	}
	if _, err := a.Alloc(1, 1); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(64, 8)
	a.WriteU32(off, 0xDEADBEEF)
	a.WriteU64(off+8, 0x0123456789ABCDEF)
	a.WriteBytes(off+16, []byte("hello pmem"))
	if got := a.ReadU32(off); got != 0xDEADBEEF {
		t.Errorf("ReadU32 = %#x", got)
	}
	if got := a.ReadU64(off + 8); got != 0x0123456789ABCDEF {
		t.Errorf("ReadU64 = %#x", got)
	}
	if got := a.ReadBytes(off+16, 10); string(got) != "hello pmem" {
		t.Errorf("ReadBytes = %q", got)
	}
}

func TestCrashDropsUnflushedWrites(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(64, 64)
	a.WriteU32(off, 111)
	a.Flush(off, 4)
	a.Fence()
	a.WriteU32(off+4, 222) // never flushed

	b := a.Crash()
	if got := b.ReadU32(off); got != 111 {
		t.Errorf("flushed value lost: got %d", got)
	}
	if got := b.ReadU32(off + 4); got != 0 {
		t.Errorf("unflushed value survived crash: got %d", got)
	}
}

func TestCrashKeepsWholeFlushedLine(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(128, 64)
	for i := uint64(0); i < 16; i++ {
		a.WriteU32(off+i*4, uint32(i+1))
	}
	a.Flush(off, 64)
	a.Fence()
	b := a.Crash()
	for i := uint64(0); i < 16; i++ {
		if got := b.ReadU32(off + i*4); got != uint32(i+1) {
			t.Fatalf("slot %d: got %d", i, got)
		}
	}
}

func TestEADRCrashKeepsAllStores(t *testing.T) {
	a := New(1<<16, WithPlatform(EADR))
	off := a.MustAlloc(64, 64)
	a.WriteU32(off, 7) // no flush: eADR caches are persistent
	b := a.Crash()
	if got := b.ReadU32(off); got != 7 {
		t.Errorf("eADR store lost on crash: got %d", got)
	}
}

func TestChaosCrashAtomicUnit(t *testing.T) {
	// Each 8-byte word must be either fully old or fully new.
	a := New(1 << 16)
	off := a.MustAlloc(64, 64)
	a.WriteU64(off, 0x1111111111111111)
	a.Flush(off, 8)
	a.Fence()
	a.WriteU64(off, 0x2222222222222222) // dirty, not flushed
	for seed := int64(0); seed < 20; seed++ {
		b := a.ChaosCrash(seed)
		got := b.ReadU64(off)
		if got != 0x1111111111111111 && got != 0x2222222222222222 {
			t.Fatalf("seed %d: torn 8-byte word %#x", seed, got)
		}
	}
}

func TestChaosCrashCoversBothOutcomes(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(64, 64)
	a.WriteU64(off, 42) // dirty
	sawOld, sawNew := false, false
	for seed := int64(0); seed < 64 && !(sawOld && sawNew); seed++ {
		b := a.ChaosCrash(seed)
		switch b.ReadU64(off) {
		case 0:
			sawOld = true
		case 42:
			sawNew = true
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("chaos crash not exploring outcomes: old=%v new=%v", sawOld, sawNew)
	}
}

func TestCopyWithinOverlap(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(64, 8)
	a.WriteBytes(off, []byte("abcdefgh"))
	a.CopyWithin(off+2, off, 8) // overlapping shift right by 2
	if got := string(a.ReadBytes(off, 10)); got != "ababcdefgh" {
		t.Errorf("CopyWithin overlap = %q", got)
	}
}

func TestWriteAmplificationAccounting(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(4096, 64)
	// A 4-byte logical write forces a 64-byte media write: amplification 16.
	a.WriteU32(off, 1)
	a.Flush(off, 4)
	a.Fence()
	s := a.Stats()
	if s.LogicalBytes != 4 {
		t.Errorf("LogicalBytes = %d", s.LogicalBytes)
	}
	if s.MediaBytes != 64 {
		t.Errorf("MediaBytes = %d", s.MediaBytes)
	}
	if wa := s.WriteAmplification(); wa != 16 {
		t.Errorf("amplification = %v", wa)
	}
}

func TestFlushCleanLineIsFree(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(64, 64)
	a.WriteU32(off, 1)
	a.Flush(off, 4)
	before := a.Stats().MediaBytes
	a.Flush(off, 4) // clean: no media traffic
	if got := a.Stats().MediaBytes; got != before {
		t.Errorf("clean-line flush wrote media: %d -> %d", before, got)
	}
}

func TestHotFlushDetection(t *testing.T) {
	a := New(1<<16, WithLatency(LatencyModel{HotWindow: 8}))
	off := a.MustAlloc(64, 64)
	for i := 0; i < 5; i++ {
		a.WriteU32(off, uint32(i))
		a.Flush(off, 4)
	}
	if hot := a.Stats().HotFlushes; hot != 4 {
		t.Errorf("HotFlushes = %d, want 4", hot)
	}
}

func TestPersistU64Atomic(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(8, 8)
	a.PersistU64(off, 99)
	b := a.Crash()
	if got := b.ReadU64(off); got != 99 {
		t.Errorf("PersistU64 not durable: got %d", got)
	}
}

func TestConcurrentDisjointWrites(t *testing.T) {
	a := New(1 << 20)
	const workers = 8
	const per = 1000
	base := a.MustAlloc(workers*per*8, 64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				off := base + uint64(w*per+i)*8
				a.WriteU64(off, uint64(w*per+i))
				a.Flush(off, 8)
			}
			a.Fence()
		}(w)
	}
	wg.Wait()
	b := a.Crash()
	for i := 0; i < workers*per; i++ {
		if got := b.ReadU64(base + uint64(i)*8); got != uint64(i) {
			t.Fatalf("slot %d lost: got %d", i, got)
		}
	}
}

func TestDirtyLines(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(256, 64)
	a.WriteBytes(off, make([]byte, 200)) // 4 lines
	if got := a.DirtyLines(); got != 4 {
		t.Errorf("DirtyLines = %d, want 4", got)
	}
	a.Flush(off, 200)
	if got := a.DirtyLines(); got != 0 {
		t.Errorf("DirtyLines after flush = %d", got)
	}
}

func TestSaveLoadImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.img")
	a := New(1 << 16)
	off := a.MustAlloc(64, 64)
	a.WriteBytes(off, []byte("durable"))
	a.Flush(off, 7)
	a.Fence()
	a.WriteBytes(off+32, []byte("volatile")) // unflushed: must not be saved
	if err := a.SaveImage(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b.ReadBytes(off, 7)); got != "durable" {
		t.Errorf("loaded image: %q", got)
	}
	if got := b.ReadBytes(off+32, 8); !bytes.Equal(got, make([]byte, 8)) {
		t.Errorf("unflushed data leaked into image: %q", got)
	}
	// Allocator high-water mark must survive so recovery does not hand
	// out already-used space.
	if _, err := b.Alloc(1, 1); err != nil {
		t.Fatal(err)
	}
	off2 := b.MustAlloc(8, 8)
	if off2 <= off {
		t.Errorf("allocator reset: new offset %d below old %d", off2, off)
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.img")
	writeFile(t, path, []byte("not an image at all........."))
	if _, err := LoadImage(path); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := osWriteFile(path, data); err != nil {
		t.Fatal(err)
	}
}

// Property: for any sequence of writes and flushes, a crash preserves
// exactly the flushed prefix state — reading back from the crashed arena
// equals reading from a model that only applies flushed writes.
func TestPropertyFlushedWritesSurvive(t *testing.T) {
	f := func(vals []uint32, flushMask []bool) bool {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		a := New(1 << 16)
		off := a.MustAlloc(64*CacheLineSize, CacheLineSize)
		model := make(map[uint64]uint32)
		for i, v := range vals {
			// one value per cache line so flush decisions are independent
			o := off + uint64(i)*CacheLineSize
			a.WriteU32(o, v)
			if i < len(flushMask) && flushMask[i] {
				a.Flush(o, 4)
				model[o] = v
			}
		}
		a.Fence()
		b := a.Crash()
		for i := range vals {
			o := off + uint64(i)*CacheLineSize
			want := model[o] // zero when unflushed
			if b.ReadU32(o) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAllocExhaustionTypedError(t *testing.T) {
	a := New(1 << 13)
	_, err := a.AllocRegion("test: widget pool", 1<<20, CacheLineSize)
	if err == nil {
		t.Fatal("oversized alloc must fail")
	}
	var oom *OutOfMemoryError
	if !errors.As(err, &oom) {
		t.Fatalf("error %v is not an *OutOfMemoryError", err)
	}
	if oom.Region != "test: widget pool" || oom.Requested != 1<<20 || oom.Capacity != a.Size() {
		t.Errorf("error lacks context: %+v", oom)
	}
	if !strings.Contains(err.Error(), "test: widget pool") {
		t.Errorf("message %q does not name the region", err.Error())
	}
	// Unlabeled Alloc carries the same type with an empty region.
	_, err = a.Alloc(1<<20, CacheLineSize)
	if !errors.As(err, &oom) {
		t.Fatalf("Alloc error %v is not an *OutOfMemoryError", err)
	}
	if oom.Region != "" {
		t.Errorf("unlabeled alloc reported region %q", oom.Region)
	}
	// The failed requests must not move the cursor.
	if _, err := a.Alloc(64, CacheLineSize); err != nil {
		t.Errorf("small alloc after failures: %v", err)
	}
}
