package pmem

import "time"

// LatencyModel describes the cost of persistence operations on the
// emulated device. Costs are charged as busy-wait delays so that they
// compose naturally with real computation time in wall-clock benchmarks.
// The defaults are derived from published Optane DCPMM measurements
// (Izraelevitz et al. 2019; Yang et al., FAST'20) scaled to the
// DRAM-relative ratios the DGAP paper quotes: persistent writes ~7-8x
// DRAM, fences tens of nanoseconds, and repeated flushes of one line
// blocking on the previous drain.
type LatencyModel struct {
	// Enabled turns latency injection on. When false the arena still
	// tracks dirtiness, media content and statistics, but operations run
	// at DRAM speed (the mode unit tests use).
	Enabled bool
	// FlushPerLine is the media-write cost of flushing one dirty 64 B
	// cache line.
	FlushPerLine time.Duration
	// Fence is the cost of SFENCE draining outstanding flushes.
	Fence time.Duration
	// HotLinePenalty is added when a line is flushed again within
	// HotWindow flushes of its previous flush (in-place update penalty:
	// the new flush blocks on the previous one and on media wear
	// levelling).
	HotLinePenalty time.Duration
	// HotWindow is the flush-sequence distance within which a re-flush
	// counts as hot.
	HotWindow uint64
	// RandomAccess is added when a flushed line is not sequential with
	// the previously flushed one (an XPBuffer miss: small random writes
	// cannot ride the 256 B write-combining buffer).
	RandomAccess time.Duration
	// Alloc is the cost of a persistent allocation (PMDK's allocator is a
	// significant overhead for transaction journals).
	Alloc time.Duration
}

// DefaultLatency returns the calibrated model used by the benchmark
// harness.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		Enabled:        true,
		FlushPerLine:   150 * time.Nanosecond,
		Fence:          30 * time.Nanosecond,
		HotLinePenalty: 1400 * time.Nanosecond,
		HotWindow:      8,
		RandomAccess:   100 * time.Nanosecond,
		Alloc:          400 * time.Nanosecond,
	}
}

// NoLatency returns a disabled model (DRAM speed); this is also the zero
// value, provided for readability.
func NoLatency() LatencyModel { return LatencyModel{} }

// spin busy-waits for d. time.Sleep cannot express sub-microsecond waits,
// and yielding would distort single-thread benchmarks, so we burn cycles.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}
