// Package pmem emulates byte-addressable persistent memory (Intel Optane
// DCPMM in App Direct mode) for systems that would normally be built on
// PMDK. No real PMEM hardware is available to this repository, so the
// package provides a synthetic equivalent that exercises the same code
// paths and cost structure:
//
//   - An Arena holds two images of the same address space: a volatile view
//     (the CPU caches + ADR-protected buffers that programs read and write)
//     and a media image (what survives power loss). Store operations land
//     in the volatile view and mark 64-byte cache lines dirty; Flush copies
//     dirty lines to the media image, and Fence orders flushes, mirroring
//     CLWB/CLFLUSHOPT + SFENCE.
//
//   - A LatencyModel charges calibrated busy-wait delays for media writes,
//     fences, repeated flushes of the same (hot) line, and grants a
//     write-combining discount for sequential lines within one 256-byte
//     XPBuffer block, reproducing the asymmetric and buffered behaviour of
//     Optane media that the DGAP paper's Figure 1 motivates.
//
//   - Crash discards the volatile view, keeping only flushed lines —
//     exactly ADR semantics, where CPU caches are lost on power failure.
//     ChaosCrash additionally persists a random subset of dirty lines at
//     8-byte granularity, modelling uncontrolled cache eviction, so that
//     recovery code can be tested against torn writes.
//
//   - Tx implements a PMDK-style undo-journal transaction, including the
//     journal-allocation and ordering overheads that make such
//     transactions expensive on PM; it serves as the comparison baseline
//     for DGAP's lighter per-thread undo log.
//
// Statistics (logical bytes written, media bytes written, flushes, fences,
// hot flushes) feed the write-amplification and component-ablation
// experiments.
package pmem
