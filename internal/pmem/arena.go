package pmem

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Off is a byte offset into an Arena's address space. Persistent data
// structures store Offs, never Go pointers, so the garbage collector never
// sees (and never moves or frees) anything reachable only from "persistent
// memory" — the same discipline PMDK imposes with its PMEMoid handles.
type Off = uint64

const (
	// CacheLineSize is the granularity of dirtiness tracking and flushing.
	CacheLineSize = 64
	// XPBufferSize is the Optane internal write-combining buffer size.
	// Sequential flushes within one XPBuffer block receive a latency
	// discount; flushes that hop across blocks pay full media cost.
	XPBufferSize = 256
	// AtomicUnit is the largest store that persists atomically on PM.
	AtomicUnit = 8
	// InvalidOff marks an unset offset. Offset 0 is reserved for the
	// superblock, so it is never handed out by Alloc.
	InvalidOff Off = ^Off(0)
)

// Platform selects the persistence domain of the emulated device.
type Platform int

const (
	// ADR: only flushed lines survive a crash (CPU caches are volatile).
	ADR Platform = iota
	// EADR: CPU caches are inside the power-fail protected domain, so
	// every store is persistent the moment it completes and Flush is a
	// no-op from a durability standpoint (it still updates the media
	// image eagerly and costs nothing).
	EADR
)

// SuperblockSize bytes at offset 0 are reserved for root metadata that
// persistent systems must be able to find again after a crash.
const SuperblockSize = 4096

// Arena is one emulated persistent-memory device.
//
// Concurrency: distinct goroutines may concurrently access disjoint byte
// ranges (the usage pattern of every system in this repository, which
// partitions the arena into sections guarded by DRAM locks). Dirty-line
// tracking and statistics use atomics, so overlapping flushes are safe;
// overlapping unsynchronized stores are a data race exactly as they would
// be on real hardware.
type Arena struct {
	buf   []byte // volatile view: what load/store sees
	media []byte // persistent image: what survives a crash

	dirty    []uint64 // bitmap, one bit per cache line
	lastSeq  []uint32 // per-line sequence of the last flush (hot-line model)
	flushSeq atomic.Uint64

	lastLine atomic.Uint64 // last flushed line index + 1 (0 = none), for XPBuffer discount

	// pendingNs accumulates the media cost of issued-but-undrained
	// flushes; Fence pays it. This mirrors the hardware: CLWB is
	// asynchronous, SFENCE blocks until the write-pending queue drains.
	pendingNs atomic.Int64

	allocMu sync.Mutex
	next    Off // bump-allocator cursor

	lat   LatencyModel
	plat  Platform
	stats Stats
}

// Option configures a new Arena.
type Option func(*config)

type config struct {
	lat  LatencyModel
	plat Platform
}

// WithLatency installs a latency model (see DefaultLatency).
func WithLatency(m LatencyModel) Option { return func(c *config) { c.lat = m } }

// WithPlatform selects ADR (default) or EADR persistence semantics.
func WithPlatform(p Platform) Option { return func(c *config) { c.plat = p } }

// New creates an Arena with the given capacity in bytes. Capacity is
// rounded up to a whole number of cache lines. The first SuperblockSize
// bytes are reserved for the superblock.
func New(capacity int, opts ...Option) *Arena {
	if capacity < SuperblockSize {
		capacity = SuperblockSize
	}
	lines := (capacity + CacheLineSize - 1) / CacheLineSize
	capacity = lines * CacheLineSize
	var c config
	for _, o := range opts {
		o(&c)
	}
	return &Arena{
		buf:     make([]byte, capacity),
		media:   make([]byte, capacity),
		dirty:   make([]uint64, (lines+63)/64),
		lastSeq: make([]uint32, lines),
		next:    SuperblockSize,
		lat:     c.lat,
		plat:    c.plat,
	}
}

// Size returns the arena capacity in bytes.
func (a *Arena) Size() int { return len(a.buf) }

// Remaining returns the number of unallocated bytes.
func (a *Arena) Remaining() uint64 {
	a.allocMu.Lock()
	defer a.allocMu.Unlock()
	return uint64(len(a.buf)) - a.next
}

// Platform reports the persistence domain the arena emulates.
func (a *Arena) Platform() Platform { return a.plat }

// OutOfMemoryError is returned by Alloc when the arena cannot satisfy a
// request. It carries the requesting region label and the exact sizes so
// higher layers — in particular the multi-shard ingest router — can
// report which persistent region exhausted the device and how far over
// capacity the request ran, instead of surfacing a bare string.
type OutOfMemoryError struct {
	// Region names what the allocation was growing ("dgap: edge array",
	// "bal: edge block", ...); empty when the caller did not label it.
	Region string
	// Requested is the allocation size in bytes.
	Requested uint64
	// Offset is the aligned cursor the request would have started at.
	Offset Off
	// Capacity is the arena size in bytes.
	Capacity int
}

func (e *OutOfMemoryError) Error() string {
	if e.Region == "" {
		return fmt.Sprintf("pmem: arena exhausted: want %d bytes at %d, capacity %d",
			e.Requested, e.Offset, e.Capacity)
	}
	return fmt.Sprintf("pmem: arena exhausted growing %s: want %d bytes at %d, capacity %d",
		e.Region, e.Requested, e.Offset, e.Capacity)
}

// Alloc reserves n bytes aligned to align (which must be a power of two,
// at least 1) and returns the offset. Allocation is bump-only: persistent
// allocators in this repository never free, matching the fixed
// pre-allocated pools the DGAP paper uses. Alloc returns an
// *OutOfMemoryError when the arena is exhausted.
func (a *Arena) Alloc(n uint64, align uint64) (Off, error) {
	return a.AllocRegion("", n, align)
}

// AllocRegion is Alloc with a region label attached to any exhaustion
// error, so growth failures identify the structure that hit the wall.
func (a *Arena) AllocRegion(region string, n uint64, align uint64) (Off, error) {
	if align == 0 {
		align = 1
	}
	a.allocMu.Lock()
	defer a.allocMu.Unlock()
	off := (a.next + align - 1) &^ (align - 1)
	if off+n > uint64(len(a.buf)) {
		return 0, &OutOfMemoryError{Region: region, Requested: n, Offset: off, Capacity: len(a.buf)}
	}
	a.next = off + n
	a.stats.AllocBytes.Add(int64(n))
	a.stats.AllocCalls.Add(1)
	if a.lat.Enabled {
		spin(a.lat.Alloc)
	}
	return off, nil
}

// MustAlloc is Alloc that panics on exhaustion; used at initialization
// time where exhaustion is a programming error (capacity sizing bug).
func (a *Arena) MustAlloc(n uint64, align uint64) Off {
	off, err := a.Alloc(n, align)
	if err != nil {
		panic(err)
	}
	return off
}

func (a *Arena) check(off Off, n uint64) {
	if off+n > uint64(len(a.buf)) || off+n < off {
		panic(fmt.Sprintf("pmem: access out of range: [%d,%d) of %d", off, off+n, len(a.buf)))
	}
}

func (a *Arena) markDirty(off Off, n uint64) {
	first := off / CacheLineSize
	last := (off + n - 1) / CacheLineSize
	for l := first; l <= last; l++ {
		w := l / 64
		bit := uint64(1) << (l % 64)
		for {
			old := atomic.LoadUint64(&a.dirty[w])
			if old&bit != 0 {
				break
			}
			if atomic.CompareAndSwapUint64(&a.dirty[w], old, old|bit) {
				break
			}
		}
	}
}

// --- store operations (land in the volatile view) ---

// WriteU32 stores a little-endian uint32 at off.
func (a *Arena) WriteU32(off Off, v uint32) {
	a.check(off, 4)
	binary.LittleEndian.PutUint32(a.buf[off:], v)
	a.markDirty(off, 4)
	a.stats.LogicalBytes.Add(4)
}

// WriteU64 stores a little-endian uint64 at off.
func (a *Arena) WriteU64(off Off, v uint64) {
	a.check(off, 8)
	binary.LittleEndian.PutUint64(a.buf[off:], v)
	a.markDirty(off, 8)
	a.stats.LogicalBytes.Add(8)
}

// WriteBytes copies p into the arena at off.
func (a *Arena) WriteBytes(off Off, p []byte) {
	if len(p) == 0 {
		return
	}
	a.check(off, uint64(len(p)))
	copy(a.buf[off:], p)
	a.markDirty(off, uint64(len(p)))
	a.stats.LogicalBytes.Add(int64(len(p)))
}

// CopyWithin copies n bytes from src to dst inside the arena (memmove
// semantics: the ranges may overlap). It is the primitive used by PMA
// shifts and rebalancing.
func (a *Arena) CopyWithin(dst, src Off, n uint64) {
	if n == 0 {
		return
	}
	a.check(dst, n)
	a.check(src, n)
	copy(a.buf[dst:dst+n], a.buf[src:src+n])
	a.markDirty(dst, n)
	a.stats.LogicalBytes.Add(int64(n))
}

// --- load operations ---

// ReadU32 loads a little-endian uint32 from off.
func (a *Arena) ReadU32(off Off) uint32 {
	a.check(off, 4)
	return binary.LittleEndian.Uint32(a.buf[off:])
}

// ReadU64 loads a little-endian uint64 from off.
func (a *Arena) ReadU64(off Off) uint64 {
	a.check(off, 8)
	return binary.LittleEndian.Uint64(a.buf[off:])
}

// ReadBytes copies n bytes starting at off into a fresh slice.
func (a *Arena) ReadBytes(off Off, n uint64) []byte {
	a.check(off, n)
	out := make([]byte, n)
	copy(out, a.buf[off:off+n])
	return out
}

// Slice returns a direct view of the volatile image. It is valid only for
// reads, and only while the caller holds whatever lock protects the range;
// it must not be retained across operations that may move data.
func (a *Arena) Slice(off Off, n uint64) []byte {
	a.check(off, n)
	return a.buf[off : off+n : off+n]
}

// hostLittle32 reports whether the host stores uint32 in the arena's
// on-device byte order (little-endian), which makes a reinterpreted
// []uint32 view of the byte image read the same values the per-element
// binary.LittleEndian decode would.
var hostLittle32 = func() bool {
	x := uint32(0x01020304)
	return *(*byte)(unsafe.Pointer(&x)) == 0x04
}()

// ViewU32 returns a zero-copy view of n little-endian uint32 values at
// off, or ok=false when the host byte order or the offset's alignment
// rules it out (callers fall back to the decoding path). The same
// validity rules as Slice apply: reads only, under whatever lock
// protects the range, never retained across data movement.
func (a *Arena) ViewU32(off Off, n uint64) (view []uint32, ok bool) {
	if !hostLittle32 || off%4 != 0 {
		return nil, false
	}
	if n == 0 {
		return nil, true
	}
	a.check(off, n*4)
	return unsafe.Slice((*uint32)(unsafe.Pointer(&a.buf[off])), n), true
}

// --- persistence operations ---

// Flush persists the cache lines covering [off, off+n) to the media image
// (CLWB/CLFLUSHOPT). Latency is charged per line, with an XPBuffer
// write-combining discount for lines sequential to the previous flush and
// a hot-line penalty for lines flushed again shortly after a prior flush.
func (a *Arena) Flush(off Off, n uint64) {
	if n == 0 {
		return
	}
	a.check(off, n)
	first := off / CacheLineSize
	last := (off + n - 1) / CacheLineSize
	for l := first; l <= last; l++ {
		a.flushLine(l)
	}
	a.stats.FlushCalls.Add(1)
}

func (a *Arena) flushLine(l uint64) {
	w := l / 64
	bit := uint64(1) << (l % 64)
	wasDirty := false
	for {
		old := atomic.LoadUint64(&a.dirty[w])
		if old&bit == 0 {
			break // clean line: CLWB of a clean line is ~free
		}
		if atomic.CompareAndSwapUint64(&a.dirty[w], old, old&^bit) {
			wasDirty = true
			break
		}
	}
	if !wasDirty {
		return
	}
	start := l * CacheLineSize
	copy(a.media[start:start+CacheLineSize], a.buf[start:start+CacheLineSize])
	a.stats.MediaBytes.Add(CacheLineSize)
	a.stats.LinesFlushed.Add(1)

	seq := a.flushSeq.Add(1)
	prev := atomic.LoadUint32(&a.lastSeq[l])
	atomic.StoreUint32(&a.lastSeq[l], uint32(seq))

	if a.plat == EADR || !a.lat.Enabled {
		if prev != 0 && uint64(prev)+a.lat.HotWindow >= seq {
			a.stats.HotFlushes.Add(1)
		}
		return
	}
	cost := a.lat.FlushPerLine
	// XPBuffer write combining: a line immediately following the
	// previously flushed line inside the same 256 B block rides the same
	// media write; a non-sequential line pays the buffer-miss penalty.
	lastPlus1 := a.lastLine.Swap(l + 1)
	if lastPlus1 == l && (l%(XPBufferSize/CacheLineSize)) != 0 {
		cost = a.lat.FlushPerLine / 4
	} else if lastPlus1 != l {
		cost += a.lat.RandomAccess
	}
	// Hot-line (in-place update) penalty: flushing the same line again
	// while the previous flush is still draining blocks the pipeline.
	if prev != 0 && uint64(prev)+a.lat.HotWindow >= seq {
		cost += a.lat.HotLinePenalty
		a.stats.HotFlushes.Add(1)
	}
	// CLWB itself is asynchronous: the cost is queued and paid when a
	// fence drains the write-pending queue.
	a.pendingNs.Add(int64(cost))
}

// Fence orders preceding flushes (SFENCE). On return, every line flushed
// before the fence is guaranteed to be on media; the accumulated drain
// cost of those flushes is paid here.
func (a *Arena) Fence() {
	a.stats.Fences.Add(1)
	if a.lat.Enabled && a.plat != EADR {
		drain := a.pendingNs.Swap(0)
		spin(time.Duration(drain) + a.lat.Fence)
	}
}

// Persist is the common store-flush pattern: flush the lines covering the
// range. Callers still issue Fence to order against subsequent stores.
func (a *Arena) Persist(off Off, n uint64) {
	a.Flush(off, n)
}

// PersistU64 writes an 8-byte value and immediately flushes and fences it;
// 8-byte aligned stores persist atomically on PM, so this is the primitive
// for commit flags and log heads.
func (a *Arena) PersistU64(off Off, v uint64) {
	a.WriteU64(off, v)
	a.Flush(off, 8)
	a.Fence()
}

// --- crash simulation ---

// Crash simulates a power failure: the volatile view is discarded and a
// new arena is built whose content is exactly the media image (plus, on
// EADR platforms, every completed store). Allocator state is reset to the
// high-water mark so recovery code re-derives structure from superblock
// roots, exactly as a restart would.
func (a *Arena) Crash() *Arena {
	n := &Arena{
		buf:     make([]byte, len(a.buf)),
		media:   make([]byte, len(a.media)),
		dirty:   make([]uint64, len(a.dirty)),
		lastSeq: make([]uint32, len(a.lastSeq)),
		lat:     a.lat,
		plat:    a.plat,
	}
	src := a.media
	if a.plat == EADR {
		src = a.buf // caches are in the persistence domain
	}
	copy(n.buf, src)
	copy(n.media, src)
	a.allocMu.Lock()
	n.next = a.next
	a.allocMu.Unlock()
	return n
}

// ChaosCrash is Crash with uncontrolled cache eviction: each dirty line
// has each of its 8-byte words independently persisted with probability
// 1/2, modelling the hardware's freedom to evict any cached line (at
// AtomicUnit granularity) before the power fails. Recovery code must be
// correct for every such subset.
func (a *Arena) ChaosCrash(seed int64) *Arena {
	rng := rand.New(rand.NewSource(seed))
	n := a.Crash()
	if a.plat == EADR {
		return n
	}
	for li := range a.lastSeq {
		w := li / 64
		bit := uint64(1) << (uint(li) % 64)
		if atomic.LoadUint64(&a.dirty[w])&bit == 0 {
			continue
		}
		start := uint64(li) * CacheLineSize
		for word := uint64(0); word < CacheLineSize; word += AtomicUnit {
			if rng.Intn(2) == 0 {
				copy(n.buf[start+word:start+word+AtomicUnit], a.buf[start+word:start+word+AtomicUnit])
				copy(n.media[start+word:start+word+AtomicUnit], a.buf[start+word:start+word+AtomicUnit])
			}
		}
	}
	return n
}

// DirtyLines reports how many cache lines are dirty (unflushed). Useful in
// tests asserting that a structure was fully persisted.
func (a *Arena) DirtyLines() int {
	total := 0
	for i := range a.dirty {
		w := atomic.LoadUint64(&a.dirty[i])
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}

// Stats returns a snapshot of the arena's counters.
func (a *Arena) Stats() StatsSnapshot { return a.stats.snapshot() }

// ResetStats zeroes all counters (used between warm-up and timed phases).
func (a *Arena) ResetStats() { a.stats.reset() }
