package pmem

import (
	"os"
	"testing"
)

func osWriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

func TestTxCommit(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(64, 64)
	a.WriteU64(off, 1)
	a.Flush(off, 8)
	a.Fence()

	tx, err := Begin(a, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(off, 8); err != nil {
		t.Fatal(err)
	}
	a.WriteU64(off, 2)
	tx.Commit()

	b := a.Crash()
	if got := b.ReadU64(off); got != 2 {
		t.Errorf("committed value = %d, want 2", got)
	}
}

func TestTxAbortRollsBack(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(64, 64)
	a.WriteU64(off, 1)
	a.Flush(off, 8)
	a.Fence()

	tx, err := Begin(a, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(off, 8); err != nil {
		t.Fatal(err)
	}
	a.WriteU64(off, 2)
	tx.Abort()
	if got := a.ReadU64(off); got != 1 {
		t.Errorf("after abort = %d, want 1", got)
	}
}

func TestTxCrashMidTransactionRecovers(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(128, 64)
	for i := uint64(0); i < 2; i++ {
		a.WriteU64(off+i*64, 10+i)
		a.Flush(off+i*64, 8)
	}
	a.Fence()

	tx, err := Begin(a, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(off, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(off+64, 8); err != nil {
		t.Fatal(err)
	}
	a.WriteU64(off, 99)
	a.WriteU64(off+64, 98)
	a.Flush(off, 8) // partially persisted new data, then crash before commit
	a.Fence()

	b := a.Crash()
	if !RecoverTx(b) {
		t.Fatal("RecoverTx found no active journal")
	}
	if got := b.ReadU64(off); got != 10 {
		t.Errorf("range 0 after recovery = %d, want 10", got)
	}
	if got := b.ReadU64(off + 64); got != 11 {
		t.Errorf("range 1 after recovery = %d, want 11", got)
	}
	// Second recovery is a no-op.
	if RecoverTx(b) {
		t.Error("journal not retired after recovery")
	}
}

func TestTxCrashAfterCommitIsDurable(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(64, 64)
	a.WriteU64(off, 1)
	a.Flush(off, 8)
	a.Fence()

	tx, _ := Begin(a, 256)
	if err := tx.Add(off, 8); err != nil {
		t.Fatal(err)
	}
	a.WriteU64(off, 5)
	tx.Commit()

	b := a.Crash()
	if RecoverTx(b) {
		t.Error("recovery rolled back a committed transaction")
	}
	if got := b.ReadU64(off); got != 5 {
		t.Errorf("value = %d, want 5", got)
	}
}

func TestTxJournalFull(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(4096, 64)
	tx, _ := Begin(a, 64)
	if err := tx.Add(off, 64); err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(off+64, 1); err == nil {
		t.Fatal("expected journal-full error")
	}
	tx.Commit()
}

func TestTxAccountsJournalBytes(t *testing.T) {
	a := New(1 << 16)
	off := a.MustAlloc(256, 64)
	tx, _ := Begin(a, 256)
	_ = tx.Add(off, 100)
	tx.Commit()
	s := a.Stats()
	if s.TxCount != 1 {
		t.Errorf("TxCount = %d", s.TxCount)
	}
	if s.TxJournal < 100 {
		t.Errorf("TxJournal = %d, want >= 100", s.TxJournal)
	}
}

func TestRecoverTxNoJournal(t *testing.T) {
	a := New(1 << 16)
	if RecoverTx(a) {
		t.Error("recovered nonexistent transaction")
	}
}
