package pmem

// Tx is a PMDK-style undo-journal transaction. Before a range is modified
// inside the transaction it must be Added; the old content is journaled to
// freshly allocated persistent space with a flush+fence per entry (PMDK's
// "excessive ordering"), and the journal itself costs an allocation. On
// Commit the modified ranges are flushed, fenced, and the journal is
// atomically invalidated. If a crash happens mid-transaction, Recover
// applies the journal, restoring every Added range.
//
// This deliberately reproduces the two bottlenecks the DGAP paper cites
// for PMDK transactions — journal allocation cost and per-entry ordering —
// and serves as the baseline that DGAP's per-thread undo log is compared
// against (Table 5, "No EL&UL").
type Tx struct {
	a       *Arena
	head    Off // journal header: [state u64][entries u64]
	entries []txEntry
	cap     uint64
	used    uint64
}

type txEntry struct {
	off Off
	n   uint64
}

const (
	txStateActive    = 0xA11CE
	txStateCommitted = 0
	txHeaderSize     = 16
	txEntryHeader    = 16 // off u64 + len u64
)

// TxRegistryOff is the superblock slot (offset within the superblock)
// where the most recent transaction journal head is published so Recover
// can find it after a crash. Systems using Tx must reserve it.
const TxRegistryOff Off = 8

// Begin opens a transaction able to journal up to capacity bytes of
// old data. The journal space is allocated persistently per transaction,
// as PMDK does.
func Begin(a *Arena, capacity uint64) (*Tx, error) {
	head, err := a.Alloc(txHeaderSize+capacity+64*txEntryHeader, CacheLineSize)
	if err != nil {
		return nil, err
	}
	t := &Tx{a: a, head: head, cap: capacity}
	a.stats.TxCount.Add(1)
	// Publish the journal location, then mark it active. Two ordered
	// 8-byte persists, exactly the handshake PMDK performs.
	a.PersistU64(SuperblockOff(TxRegistryOff), head)
	a.WriteU64(head, txStateActive)
	a.WriteU64(head+8, 0)
	a.Flush(head, txHeaderSize)
	a.Fence()
	return t, nil
}

// Add journals the current content of [off, off+n) so it can be rolled
// back. Each Add persists its journal entry before returning (undo
// logging must be ordered before the data is modified).
func (t *Tx) Add(off Off, n uint64) error {
	if t.used+n > t.cap {
		return errTxFull{}
	}
	// Entry layout: [off u64][len u64][data n]
	ent := t.head + txHeaderSize + t.used + uint64(len(t.entries))*txEntryHeader
	t.a.WriteU64(ent, off)
	t.a.WriteU64(ent+8, n)
	t.a.WriteBytes(ent+txEntryHeader, t.a.Slice(off, n))
	t.a.Flush(ent, txEntryHeader+n)
	t.a.Fence()
	t.used += n
	t.entries = append(t.entries, txEntry{off, n})
	t.a.WriteU64(t.head+8, uint64(len(t.entries)))
	t.a.Flush(t.head+8, 8)
	t.a.Fence()
	t.a.stats.TxJournal.Add(int64(n) + txEntryHeader)
	return nil
}

type errTxFull struct{}

func (errTxFull) Error() string { return "pmem: transaction journal full" }

// Commit flushes every range modified under the transaction and retires
// the journal.
func (t *Tx) Commit() {
	for _, e := range t.entries {
		t.a.Flush(e.off, e.n)
	}
	t.a.Fence()
	t.a.PersistU64(t.head, txStateCommitted)
	t.a.PersistU64(SuperblockOff(TxRegistryOff), 0)
}

// Abort rolls the transaction back in place (without crashing).
func (t *Tx) Abort() {
	replayJournal(t.a, t.head)
	t.a.PersistU64(t.head, txStateCommitted)
	t.a.PersistU64(SuperblockOff(TxRegistryOff), 0)
}

// RecoverTx inspects the transaction registry after a crash and, if an
// active journal is found, rolls its ranges back. It returns true when a
// rollback happened.
func RecoverTx(a *Arena) bool {
	head := a.ReadU64(SuperblockOff(TxRegistryOff))
	if head == 0 || head+txHeaderSize > uint64(a.Size()) {
		return false
	}
	if a.ReadU64(head) != txStateActive {
		return false
	}
	replayJournal(a, head)
	a.PersistU64(head, txStateCommitted)
	a.PersistU64(SuperblockOff(TxRegistryOff), 0)
	return true
}

func replayJournal(a *Arena, head Off) {
	count := a.ReadU64(head + 8)
	ent := head + txHeaderSize
	for i := uint64(0); i < count; i++ {
		off := a.ReadU64(ent)
		n := a.ReadU64(ent + 8)
		if off+n > uint64(a.Size()) {
			return // torn entry header: entry was not fully persisted
		}
		a.WriteBytes(off, a.ReadBytes(ent+txEntryHeader, n))
		a.Flush(off, n)
		ent += txEntryHeader + n
	}
	a.Fence()
}

// SuperblockOff maps a slot offset inside the superblock to an arena
// offset, panicking if it escapes the reserved region. The superblock is
// the fixed place recovery code looks for root pointers.
func SuperblockOff(slot Off) Off {
	if slot+8 > SuperblockSize {
		panic("pmem: superblock slot out of range")
	}
	return slot
}
