package pmem

import "sync/atomic"

// Stats holds the arena's operation counters. All fields are updated with
// atomics so concurrent writers do not contend on a lock.
type Stats struct {
	LogicalBytes atomic.Int64 // bytes the application asked to store
	MediaBytes   atomic.Int64 // bytes actually written to media (lines * 64)
	LinesFlushed atomic.Int64 // dirty cache lines written back
	FlushCalls   atomic.Int64 // Flush invocations
	Fences       atomic.Int64 // Fence invocations
	HotFlushes   atomic.Int64 // flushes that hit the hot-line penalty
	AllocBytes   atomic.Int64 // bytes handed out by Alloc
	AllocCalls   atomic.Int64
	TxCount      atomic.Int64 // transactions begun
	TxJournal    atomic.Int64 // bytes journaled by transactions
}

// StatsSnapshot is an immutable copy of Stats.
type StatsSnapshot struct {
	LogicalBytes int64
	MediaBytes   int64
	LinesFlushed int64
	FlushCalls   int64
	Fences       int64
	HotFlushes   int64
	AllocBytes   int64
	AllocCalls   int64
	TxCount      int64
	TxJournal    int64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		LogicalBytes: s.LogicalBytes.Load(),
		MediaBytes:   s.MediaBytes.Load(),
		LinesFlushed: s.LinesFlushed.Load(),
		FlushCalls:   s.FlushCalls.Load(),
		Fences:       s.Fences.Load(),
		HotFlushes:   s.HotFlushes.Load(),
		AllocBytes:   s.AllocBytes.Load(),
		AllocCalls:   s.AllocCalls.Load(),
		TxCount:      s.TxCount.Load(),
		TxJournal:    s.TxJournal.Load(),
	}
}

func (s *Stats) reset() {
	s.LogicalBytes.Store(0)
	s.MediaBytes.Store(0)
	s.LinesFlushed.Store(0)
	s.FlushCalls.Store(0)
	s.Fences.Store(0)
	s.HotFlushes.Store(0)
	s.AllocBytes.Store(0)
	s.AllocCalls.Store(0)
	s.TxCount.Store(0)
	s.TxJournal.Store(0)
}

// WriteAmplification is the ratio of media bytes to logical bytes; the
// quantity Figure 1(a) of the DGAP paper reports. It returns 0 when no
// logical writes happened.
func (s StatsSnapshot) WriteAmplification() float64 {
	if s.LogicalBytes == 0 {
		return 0
	}
	return float64(s.MediaBytes) / float64(s.LogicalBytes)
}

// Sub returns s - prev field-by-field; useful for measuring one phase.
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		LogicalBytes: s.LogicalBytes - prev.LogicalBytes,
		MediaBytes:   s.MediaBytes - prev.MediaBytes,
		LinesFlushed: s.LinesFlushed - prev.LinesFlushed,
		FlushCalls:   s.FlushCalls - prev.FlushCalls,
		Fences:       s.Fences - prev.Fences,
		HotFlushes:   s.HotFlushes - prev.HotFlushes,
		AllocBytes:   s.AllocBytes - prev.AllocBytes,
		AllocCalls:   s.AllocCalls - prev.AllocCalls,
		TxCount:      s.TxCount - prev.TxCount,
		TxJournal:    s.TxJournal - prev.TxJournal,
	}
}
