// Package workload drives graph-insertion experiments the way the
// paper's evaluation does: the first 10% of the shuffled edge stream
// warms the system up (YCSB-style), then the remaining 90% is timed.
//
// Two write paths are driven, mirroring the read-path split in package
// graph. The scalar drivers (InsertSerial, InsertParallel,
// InsertParallelDGAP) issue one InsertEdge per edge; every driver shares
// the same insert loop and the same causal virtual-time dispatcher
// instead of the four hand-rolled copies earlier revisions carried. The
// batched drivers (InsertBatchedSerial, InsertBatched,
// InsertBatchedDGAP, and the mixed ChurnRouted/ChurnRoutedDGAP) route
// the stream through a sharded Router (see router.go) that partitions
// op streams by lock resource and feeds fixed-size batches to
// graph.Applier sinks — per-shard native handles or a shared
// graph.Store — so each shard's batches take their locks once per group
// instead of once per edge.
//
// Multi-writer runs execute on the vtime discrete-event runner (this
// machine has one CPU; see package vtime), with lock scopes chosen per
// system: DGAP serializes on PMA sections, BAL and XPGraph on vertices,
// GraphOne and LLAMA on a global ingestion lock — the granularity
// differences behind Table 3's scaling shapes.
package workload

import (
	"time"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/vtime"
)

// WarmupFraction is the fraction of the stream inserted before timing
// starts.
const WarmupFraction = 0.10

// Split divides an edge stream into warm-up and timed parts.
func Split(edges []graph.Edge) (warm, timed []graph.Edge) {
	cut := int(float64(len(edges)) * WarmupFraction)
	return edges[:cut], edges[cut:]
}

// InsertResult reports one insertion run.
type InsertResult struct {
	Edges   int
	Elapsed time.Duration
}

// MEPS returns million edges per second.
func (r InsertResult) MEPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Edges) / r.Elapsed.Seconds() / 1e6
}

// insertAll drives every edge through ins, stopping at the first error —
// the one scalar insert loop every driver shares.
func insertAll(ins func(src, dst graph.V) error, edges []graph.Edge) error {
	for _, e := range edges {
		if err := ins(e.Src, e.Dst); err != nil {
			return err
		}
	}
	return nil
}

// InsertSerial inserts the timed stream with a single writer and real
// wall-clock timing (after warming up).
func InsertSerial(sys graph.System, edges []graph.Edge) (InsertResult, error) {
	warm, timed := Split(edges)
	if err := insertAll(sys.InsertEdge, warm); err != nil {
		return InsertResult{}, err
	}
	t0 := time.Now()
	if err := insertAll(sys.InsertEdge, timed); err != nil {
		return InsertResult{}, err
	}
	return InsertResult{Edges: len(timed), Elapsed: time.Since(t0)}, nil
}

// InsertBatchedSerial inserts the timed stream through the system's
// resolved mutation handle — graph.Open / Store.Apply, so systems
// without native batch paths fall back to scalar loops — in batchSize
// chunks, with real wall-clock timing. The scalar-vs-batched
// single-writer comparison in BENCH_ingest.json is InsertSerial against
// this function.
func InsertBatchedSerial(sys graph.System, edges []graph.Edge, batchSize int) (InsertResult, error) {
	if batchSize < 1 {
		batchSize = DefaultBatchSize
	}
	warm, timed := Split(edges)
	if err := insertAll(sys.InsertEdge, warm); err != nil {
		return InsertResult{}, err
	}
	st := graph.Open(sys)
	ops := graph.Inserts(timed)
	t0 := time.Now()
	for len(ops) > 0 {
		n := min(batchSize, len(ops))
		if err := st.Apply(ops[:n]); err != nil {
			return InsertResult{}, err
		}
		ops = ops[n:]
	}
	return InsertResult{Edges: len(timed), Elapsed: time.Since(t0)}, nil
}

// LockScope classifies a system's write-lock granularity for the
// virtual-time contention model.
type LockScope int

const (
	// ScopeSection: writers contend per PMA section (DGAP).
	ScopeSection LockScope = iota
	// ScopeVertex: writers contend per source vertex (BAL, XPGraph's
	// vertex-centric buffers).
	ScopeVertex
	// ScopeGlobal: a single ingestion lock (GraphOne's edge list,
	// LLAMA's delta buffer).
	ScopeGlobal
)

// ScopeFor maps a system's Name() to its insert-path lock granularity:
// DGAP serializes on PMA sections, BAL and XPGraph on source vertices
// (blocked/vertex-centric buffers), GraphOne and LLAMA on a global
// ingestion lock. The one mapping every driver (bench experiments, the
// serving layer, cmd/dgap-serve) partitions by.
func ScopeFor(systemName string) LockScope {
	switch systemName {
	case "DGAP":
		return ScopeSection
	case "BAL", "XPGraph":
		return ScopeVertex
	default:
		return ScopeGlobal
	}
}

// sectionResolution approximates DGAP's vertex->section mapping for the
// contention model: adjacent vertex ids share sections.
const sectionResolution = 8

// Resource maps an edge to the virtual lock id a system's insert path
// serializes on.
func (s LockScope) Resource(e graph.Edge) int {
	switch s {
	case ScopeSection:
		return int(e.Src) / sectionResolution
	case ScopeVertex:
		return int(e.Src)
	default:
		return 0
	}
}

// roundRobin partitions edges across n streams the way the scalar
// parallel drivers always have: edge i goes to stream i%n.
func roundRobin(edges []graph.Edge, n int) [][]graph.Edge {
	parts := make([][]graph.Edge, n)
	for i, e := range edges {
		parts[i%n] = append(parts[i%n], e)
	}
	return parts
}

// causalDrive runs per-shard work streams on the virtual-time runner in
// causal order — always advancing the thread with the smallest virtual
// clock — executing each item under its resource set. It is the one
// dispatcher shared by the scalar parallel drivers and the batched
// router (replacing the near-duplicate loops each driver used to
// hand-roll).
func causalDrive[T any](r *vtime.Runner, parts [][]T, resources func(T) []int, exec func(th int, item T) error) error {
	cursor := make([]int, len(parts))
	remaining := 0
	for _, p := range parts {
		remaining += len(p)
	}
	var firstErr error
	for remaining > 0 && firstErr == nil {
		th := r.NextThread()
		if cursor[th] >= len(parts[th]) {
			// This thread is done; pick the next one with work left.
			th = -1
			for i := range parts {
				if cursor[i] < len(parts[i]) {
					th = i
					break
				}
			}
			if th < 0 {
				break
			}
		}
		item := parts[th][cursor[th]]
		cursor[th]++
		remaining--
		r.Exec(th, resources(item), func() {
			if err := exec(th, item); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	return firstErr
}

// edgeResources returns the single-resource set of one edge under the
// scope; the scalar drivers reuse one backing array across calls.
func edgeResources(scope LockScope) func(graph.Edge) []int {
	buf := make([]int, 1)
	return func(e graph.Edge) []int {
		buf[0] = scope.Resource(e)
		return buf
	}
}

// InsertParallel inserts the timed stream on n logical writer threads
// using virtual-time contention accounting. The returned Elapsed is the
// simulated parallel makespan.
func InsertParallel(sys graph.System, edges []graph.Edge, n int, scope LockScope) (InsertResult, error) {
	warm, timed := Split(edges)
	if err := insertAll(sys.InsertEdge, warm); err != nil {
		return InsertResult{}, err
	}
	r := vtime.NewRunner(n)
	err := causalDrive(r, roundRobin(timed, n), edgeResources(scope),
		func(_ int, e graph.Edge) error { return sys.InsertEdge(e.Src, e.Dst) })
	if err != nil {
		return InsertResult{}, err
	}
	return InsertResult{Edges: len(timed), Elapsed: r.Elapsed()}, nil
}

// InsertParallelDGAP uses real writer handles so each logical thread has
// its own per-thread undo log, matching the paper's writer-thread model.
func InsertParallelDGAP(g *dgap.Graph, edges []graph.Edge, n int) (InsertResult, error) {
	warm, timed := Split(edges)
	writers, release, err := dgapWriters(g, n)
	if err != nil {
		return InsertResult{}, err
	}
	defer release()
	if err := insertAll(writers[0].InsertEdge, warm); err != nil {
		return InsertResult{}, err
	}
	r := vtime.NewRunner(n)
	err = causalDrive(r, roundRobin(timed, n), edgeResources(ScopeSection),
		func(th int, e graph.Edge) error { return writers[th].InsertEdge(e.Src, e.Dst) })
	if err != nil {
		return InsertResult{}, err
	}
	return InsertResult{Edges: len(timed), Elapsed: r.Elapsed()}, nil
}

// dgapWriters allocates n writer handles and a release func closing all
// of them.
func dgapWriters(g *dgap.Graph, n int) ([]*dgap.Writer, func(), error) {
	writers := make([]*dgap.Writer, 0, n)
	release := func() {
		for _, w := range writers {
			w.Close()
		}
	}
	for i := 0; i < n; i++ {
		w, err := g.NewWriter()
		if err != nil {
			release()
			return nil, nil, err
		}
		writers = append(writers, w)
	}
	return writers, release, nil
}
