// Package workload drives graph-insertion experiments the way the
// paper's evaluation does: the first 10% of the shuffled edge stream
// warms the system up (YCSB-style), then the remaining 90% is timed.
// Multi-writer runs partition the stream round-robin and execute on the
// vtime discrete-event runner (this machine has one CPU; see package
// vtime), with lock scopes chosen per system: DGAP serializes on PMA
// sections, BAL and XPGraph on vertices, GraphOne and LLAMA on a global
// ingestion lock — the granularity differences behind Table 3's scaling
// shapes.
package workload

import (
	"time"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/vtime"
)

// WarmupFraction is the fraction of the stream inserted before timing
// starts.
const WarmupFraction = 0.10

// Split divides an edge stream into warm-up and timed parts.
func Split(edges []graph.Edge) (warm, timed []graph.Edge) {
	cut := int(float64(len(edges)) * WarmupFraction)
	return edges[:cut], edges[cut:]
}

// InsertResult reports one insertion run.
type InsertResult struct {
	Edges   int
	Elapsed time.Duration
}

// MEPS returns million edges per second.
func (r InsertResult) MEPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Edges) / r.Elapsed.Seconds() / 1e6
}

// InsertSerial inserts the timed stream with a single writer and real
// wall-clock timing (after warming up).
func InsertSerial(sys graph.System, edges []graph.Edge) (InsertResult, error) {
	warm, timed := Split(edges)
	for _, e := range warm {
		if err := sys.InsertEdge(e.Src, e.Dst); err != nil {
			return InsertResult{}, err
		}
	}
	t0 := time.Now()
	for _, e := range timed {
		if err := sys.InsertEdge(e.Src, e.Dst); err != nil {
			return InsertResult{}, err
		}
	}
	return InsertResult{Edges: len(timed), Elapsed: time.Since(t0)}, nil
}

// LockScope classifies a system's write-lock granularity for the
// virtual-time contention model.
type LockScope int

const (
	// ScopeSection: writers contend per PMA section (DGAP).
	ScopeSection LockScope = iota
	// ScopeVertex: writers contend per source vertex (BAL, XPGraph's
	// vertex-centric buffers).
	ScopeVertex
	// ScopeGlobal: a single ingestion lock (GraphOne's edge list,
	// LLAMA's delta buffer).
	ScopeGlobal
)

// sectionResolution approximates DGAP's vertex->section mapping for the
// contention model: adjacent vertex ids share sections.
const sectionResolution = 8

// Resource maps an edge to the virtual lock id a system's insert path
// serializes on.
func (s LockScope) Resource(e graph.Edge) int {
	switch s {
	case ScopeSection:
		return int(e.Src) / sectionResolution
	case ScopeVertex:
		return int(e.Src)
	default:
		return 0
	}
}

// InsertParallel inserts the timed stream on n logical writer threads
// using virtual-time contention accounting. The returned Elapsed is the
// simulated parallel makespan.
func InsertParallel(sys graph.System, edges []graph.Edge, n int, scope LockScope) (InsertResult, error) {
	warm, timed := Split(edges)
	for _, e := range warm {
		if err := sys.InsertEdge(e.Src, e.Dst); err != nil {
			return InsertResult{}, err
		}
	}
	// Partition round-robin, then drive causally: always advance the
	// thread with the smallest virtual clock.
	parts := make([][]graph.Edge, n)
	for i, e := range timed {
		parts[i%n] = append(parts[i%n], e)
	}
	cursor := make([]int, n)
	r := vtime.NewRunner(n)
	var firstErr error
	remaining := len(timed)
	for remaining > 0 && firstErr == nil {
		th := r.NextThread()
		if cursor[th] >= len(parts[th]) {
			// This thread is done; pick the busiest remaining one.
			th = -1
			for i := range parts {
				if cursor[i] < len(parts[i]) {
					th = i
					break
				}
			}
			if th < 0 {
				break
			}
		}
		e := parts[th][cursor[th]]
		cursor[th]++
		remaining--
		r.Exec(th, []int{scope.Resource(e)}, func() {
			if err := sys.InsertEdge(e.Src, e.Dst); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	if firstErr != nil {
		return InsertResult{}, firstErr
	}
	return InsertResult{Edges: len(timed), Elapsed: r.Elapsed()}, nil
}

// InsertParallelDGAP uses real writer handles so each logical thread has
// its own per-thread undo log, matching the paper's writer-thread model.
func InsertParallelDGAP(g *dgap.Graph, edges []graph.Edge, n int) (InsertResult, error) {
	warm, timed := Split(edges)
	w0, err := g.NewWriter()
	if err != nil {
		return InsertResult{}, err
	}
	defer w0.Close()
	for _, e := range warm {
		if err := w0.InsertEdge(e.Src, e.Dst); err != nil {
			return InsertResult{}, err
		}
	}
	writers := make([]*dgap.Writer, n)
	for i := range writers {
		w, err := g.NewWriter()
		if err != nil {
			return InsertResult{}, err
		}
		defer w.Close()
		writers[i] = w
	}
	parts := make([][]graph.Edge, n)
	for i, e := range timed {
		parts[i%n] = append(parts[i%n], e)
	}
	cursor := make([]int, n)
	r := vtime.NewRunner(n)
	var firstErr error
	remaining := len(timed)
	for remaining > 0 && firstErr == nil {
		th := r.NextThread()
		if cursor[th] >= len(parts[th]) {
			th = -1
			for i := range parts {
				if cursor[i] < len(parts[i]) {
					th = i
					break
				}
			}
			if th < 0 {
				break
			}
		}
		e := parts[th][cursor[th]]
		cursor[th]++
		remaining--
		w := writers[th]
		r.Exec(th, []int{ScopeSection.Resource(e)}, func() {
			if err := w.InsertEdge(e.Src, e.Dst); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	if firstErr != nil {
		return InsertResult{}, firstErr
	}
	return InsertResult{Edges: len(timed), Elapsed: r.Elapsed()}, nil
}
