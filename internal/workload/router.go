package workload

import (
	"fmt"
	"sort"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/obs"
	"dgap/internal/vtime"
)

// DefaultBatchSize is the router's batch granularity when the caller
// does not choose one: large enough to amortize lock acquisitions and
// fences across a section group, small enough that per-shard batches
// stay cache-resident.
const DefaultBatchSize = 512

// MaxBatchSize caps adaptive batches at XPGraph's largest archiving
// threshold (2^16, the top of the paper's Figure 5 sweep).
const MaxBatchSize = 1 << 16

// AdaptiveBatchSize picks a batch size for a stream of nEdges edges:
// about 1/32 of the stream, clamped to [DefaultBatchSize, MaxBatchSize].
// Section-grouped batching only amortizes when a batch lands several
// edges per PMA section, and section count grows with the graph — so
// larger streams need proportionally larger batches, the same
// bigger-batches-win shape as XPGraph's archiving-threshold sweep.
func AdaptiveBatchSize(nEdges int) int {
	bs := nEdges / 32
	if bs < DefaultBatchSize {
		return DefaultBatchSize
	}
	if bs > MaxBatchSize {
		return MaxBatchSize
	}
	return bs
}

// ShardError decorates a batch-apply failure with the ingest shard it
// happened on, so multi-shard runs report which writer hit the wall.
// Unwrap exposes the cause — typically a *pmem.OutOfMemoryError naming
// the exhausted region, or a *graph.BatchError naming the failing op —
// to errors.As.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("workload: ingest shard %d: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Router is the sharded ingest path: it partitions an op stream across
// Shards writer shards by lock resource — every op of one PMA section
// (or source vertex, per Scope) lands on the same shard, so a shard's
// batches touch few, disjoint resources and its sink can take each lock
// once per group — then drives fixed-size batches through per-shard
// graph.Applier sinks on the virtual-time runner. Sinks are the unified
// mutation surface: per-shard native handles (dgap.Writer) or a shared
// graph.Store, interchangeably.
type Router struct {
	Shards    int
	BatchSize int
	Scope     LockScope
	// Obs, when set, receives the router's dispatch instruments:
	// workload.router.shard<i>.ops (per-shard op throughput),
	// workload.router.batch.size (dispatch batch sizes, in ops) and
	// workload.router.batches (dispatch calls). Handles are resolved
	// once per dispatch call, so the per-batch cost is one atomic add
	// and one histogram observation.
	Obs *obs.Registry
	// Instance, when non-empty, scopes this router's instrument names
	// by an obs instance label (workload.<Instance>.router.*), so two
	// routers sharing one registry — or N Cluster shards each with
	// their own ingest path — keep distinct series instead of silently
	// sharing counters. Empty keeps the single-instance names.
	Instance string
}

// opBatch is one dispatch unit: a shard-local op slice plus the
// distinct virtual lock resources its execution serializes on.
type opBatch struct {
	ops []graph.Op
	res []int
}

// partition routes each op to its shard through the partition logic
// hoisted into internal/graph (graph.PartitionOps — the same splitter
// graph.Cluster dispatches with): by lock resource for section- and
// vertex-scoped systems (co-locating each resource's ops, and with
// them each vertex's stream order, on one shard), and — for the global
// scope, where hashing by the single shared resource would starve every
// shard but one — round-robin by stream index for insert-only streams,
// or by source vertex for mixed streams (index round-robin would split
// an edge's insert and delete across shards; hashing by source keeps
// them in order on one shard while work still spreads).
func (rt Router) partition(ops []graph.Op, insertOnly bool) [][]graph.Op {
	var route func(graph.Op, int) int
	switch {
	case rt.Scope != ScopeGlobal:
		route = graph.RouteByResource(rt.Shards, rt.Scope.Resource)
	case insertOnly:
		route = graph.RouteRoundRobin(rt.Shards)
	default:
		route = graph.RouteBySrc(rt.Shards)
	}
	return graph.PartitionOps(ops, rt.Shards, route)
}

// batches cuts each shard's stream into BatchSize dispatch units and
// computes each unit's distinct resource set.
func (rt Router) batches(ops []graph.Op, insertOnly bool) [][]opBatch {
	parts := rt.partition(ops, insertOnly)
	out := make([][]opBatch, rt.Shards)
	for sh, p := range parts {
		for len(p) > 0 {
			n := min(rt.BatchSize, len(p))
			out[sh] = append(out[sh], opBatch{ops: p[:n], res: distinctResources(rt.Scope, p[:n])})
			p = p[n:]
		}
	}
	return out
}

// distinctResources returns the sorted distinct lock resources a batch
// serializes on under the scope.
func distinctResources(scope LockScope, ops []graph.Op) []int {
	seen := map[int]bool{}
	res := make([]int, 0, 4)
	for _, o := range ops {
		r := scope.Resource(o.Edge)
		if !seen[r] {
			seen[r] = true
			res = append(res, r)
		}
	}
	sort.Ints(res)
	return res
}

// dispatch drives the partitioned, batched op stream through sinks in
// causal virtual-time order, each batch executing — as one ApplyOps
// call on its shard's sink — under its distinct resource set.
func (rt Router) dispatch(sinks []graph.Applier, ops []graph.Op, insertOnly bool) (InsertResult, error) {
	if rt.BatchSize < 1 {
		rt.BatchSize = DefaultBatchSize
	}
	if len(sinks) != rt.Shards {
		return InsertResult{}, fmt.Errorf("workload: %d sinks for %d shards", len(sinks), rt.Shards)
	}
	// Pre-resolve the dispatch instruments once per call; nil Obs costs
	// the batch loop nothing but a pointer check.
	var shardOps []*obs.Counter
	var batchSize *obs.Hist
	var batches *obs.Counter
	if rt.Obs != nil {
		reg := rt.Obs
		if rt.Instance != "" {
			reg = reg.Instance(rt.Instance)
		}
		shardOps = make([]*obs.Counter, rt.Shards)
		for i := range shardOps {
			shardOps[i] = reg.Counter(fmt.Sprintf("workload.router.shard%d.ops", i))
		}
		batchSize = reg.Hist("workload.router.batch.size")
		batches = reg.Counter("workload.router.batches")
	}
	r := vtime.NewRunner(rt.Shards)
	err := causalDrive(r, rt.batches(ops, insertOnly),
		func(b opBatch) []int { return b.res },
		func(th int, b opBatch) error {
			if err := sinks[th].ApplyOps(b.ops); err != nil {
				return &ShardError{Shard: th, Err: err}
			}
			if rt.Obs != nil {
				shardOps[th].Add(int64(len(b.ops)))
				batchSize.ObserveValue(int64(len(b.ops)))
				batches.Inc()
			}
			return nil
		})
	if err != nil {
		return InsertResult{}, err
	}
	return InsertResult{Edges: len(ops), Elapsed: r.Elapsed()}, nil
}

// Run drives an insert-only edge stream through sinks — one
// graph.Applier per shard. The returned Elapsed is the simulated
// parallel makespan.
func (rt Router) Run(sinks []graph.Applier, timed []graph.Edge) (InsertResult, error) {
	return rt.dispatch(sinks, graph.Inserts(timed), true)
}

// RunOps drives a mixed insert/delete op stream through sinks with the
// same lock-scope sharding and causal virtual-time dispatch as Run.
// Each dispatch batch lands as one ApplyOps call, so sinks with a
// native mixed path (dgap.Writer) apply its inserts and tombstones in
// shared section groups, and graph.Store sinks split it into the
// multiset-exact insert-first two-call dispatch (see Store.Apply). The
// per-vertex visible order within and across batch windows is not part
// of the router contract — cross-shard delivery already permutes it,
// see TestBatchOutOfOrderDelivery.
// Failures arrive as ShardError; when a sink bottoms out in a scalar
// fallback, the wrapped graph.BatchError names the failing op's index
// within its sub-batch.
func (rt Router) RunOps(sinks []graph.Applier, ops []graph.Op) (InsertResult, error) {
	return rt.dispatch(sinks, ops, false)
}

// sharedSinks replicates one shared handle across n shards.
func sharedSinks(ap graph.Applier, n int) []graph.Applier {
	sinks := make([]graph.Applier, n)
	for i := range sinks {
		sinks[i] = ap
	}
	return sinks
}

// InsertBatched inserts the timed stream through n router shards
// feeding batchSize batches into the system's resolved mutation handle
// (graph.Open: native batch paths where implemented, scalar loops
// otherwise). All shards share one Store; the system's own internal
// locking arbitrates, exactly as the scalar InsertParallel drivers
// share one System.
func InsertBatched(sys graph.System, edges []graph.Edge, n int, scope LockScope, batchSize int) (InsertResult, error) {
	warm, timed := Split(edges)
	if err := insertAll(sys.InsertEdge, warm); err != nil {
		return InsertResult{}, err
	}
	rt := Router{Shards: n, BatchSize: batchSize, Scope: scope}
	return rt.Run(sharedSinks(graph.Open(sys), n), timed)
}

// DGAPSinks allocates n per-shard dgap.Writer sinks — each owning its
// own persistent undo log, so the shards never contend on
// crash-protection state — plus a release func closing all of them.
// Callers that drive a Router themselves (the serving layer's ingest
// path) use this to get the same shard shape InsertBatchedDGAP builds
// internally. Writers implement graph.Applier natively, so the sinks
// serve mixed op streams too.
func DGAPSinks(g *dgap.Graph, n int) ([]graph.Applier, func(), error) {
	writers, release, err := dgapWriters(g, n)
	if err != nil {
		return nil, nil, err
	}
	sinks := make([]graph.Applier, n)
	for i := range sinks {
		sinks[i] = writers[i]
	}
	return sinks, release, nil
}

// InsertBatchedDGAP routes the stream across n per-shard dgap.Writers,
// so every shard owns its own persistent undo log and the batches it
// receives are section-grouped by construction (the router's section
// partitioning matches DGAP's lock granularity).
func InsertBatchedDGAP(g *dgap.Graph, edges []graph.Edge, n int, batchSize int) (InsertResult, error) {
	warm, timed := Split(edges)
	writers, release, err := dgapWriters(g, n)
	if err != nil {
		return InsertResult{}, err
	}
	defer release()
	if err := insertAll(writers[0].InsertEdge, warm); err != nil {
		return InsertResult{}, err
	}
	sinks := make([]graph.Applier, n)
	for i := range sinks {
		sinks[i] = writers[i]
	}
	rt := Router{Shards: n, BatchSize: batchSize, Scope: ScopeSection}
	return rt.Run(sinks, timed)
}
