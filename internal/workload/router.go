package workload

import (
	"fmt"
	"sort"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/vtime"
)

// DefaultBatchSize is the router's batch granularity when the caller
// does not choose one: large enough to amortize lock acquisitions and
// fences across a section group, small enough that per-shard batches
// stay cache-resident.
const DefaultBatchSize = 512

// MaxBatchSize caps adaptive batches at XPGraph's largest archiving
// threshold (2^16, the top of the paper's Figure 5 sweep).
const MaxBatchSize = 1 << 16

// AdaptiveBatchSize picks a batch size for a stream of nEdges edges:
// about 1/32 of the stream, clamped to [DefaultBatchSize, MaxBatchSize].
// Section-grouped batching only amortizes when a batch lands several
// edges per PMA section, and section count grows with the graph — so
// larger streams need proportionally larger batches, the same
// bigger-batches-win shape as XPGraph's archiving-threshold sweep.
func AdaptiveBatchSize(nEdges int) int {
	bs := nEdges / 32
	if bs < DefaultBatchSize {
		return DefaultBatchSize
	}
	if bs > MaxBatchSize {
		return MaxBatchSize
	}
	return bs
}

// ShardError decorates a batch-insert failure with the ingest shard it
// happened on, so multi-shard runs report which writer hit the wall.
// Unwrap exposes the cause — typically a *pmem.OutOfMemoryError naming
// the exhausted region — to errors.As.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("workload: ingest shard %d: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Router is the sharded ingest path: it partitions an edge stream
// across Shards writer shards by lock resource — every edge of one PMA
// section (or source vertex, per Scope) lands on the same shard, so a
// shard's batches touch few, disjoint resources and its BatchWriter can
// take each lock once per group — then drives fixed-size batches
// through per-shard graph.BatchWriter sinks on the virtual-time runner.
// It replaces the hand-rolled per-writer goroutine loops the drivers in
// workload.go used to duplicate.
type Router struct {
	Shards    int
	BatchSize int
	Scope     LockScope
}

// routedBatch is one dispatch unit: a shard-local edge slice plus the
// distinct virtual lock resources its execution serializes on.
type routedBatch struct {
	edges []graph.Edge
	res   []int
}

// partition routes each edge to its shard: by lock resource for
// section- and vertex-scoped systems (co-locating each resource's
// edges, and with them each vertex's stream order, on one shard), and
// round-robin for the global scope, where hashing by the single shared
// resource would starve every shard but one.
func (rt Router) partition(edges []graph.Edge) [][]graph.Edge {
	parts := make([][]graph.Edge, rt.Shards)
	for i, e := range edges {
		sh := i % rt.Shards
		if rt.Scope != ScopeGlobal {
			sh = rt.Scope.Resource(e) % rt.Shards
		}
		parts[sh] = append(parts[sh], e)
	}
	return parts
}

// batches cuts each shard's stream into BatchSize dispatch units and
// computes each unit's distinct resource set.
func (rt Router) batches(edges []graph.Edge) [][]routedBatch {
	parts := rt.partition(edges)
	out := make([][]routedBatch, rt.Shards)
	for sh, p := range parts {
		for len(p) > 0 {
			n := min(rt.BatchSize, len(p))
			out[sh] = append(out[sh], routedBatch{edges: p[:n], res: distinctResources(rt.Scope, p[:n])})
			p = p[n:]
		}
	}
	return out
}

// distinctResources returns the sorted distinct lock resources a batch
// serializes on under the scope.
func distinctResources(scope LockScope, edges []graph.Edge) []int {
	seen := map[int]bool{}
	res := make([]int, 0, 4)
	for _, e := range edges {
		r := scope.Resource(e)
		if !seen[r] {
			seen[r] = true
			res = append(res, r)
		}
	}
	sort.Ints(res)
	return res
}

// Run drives the timed stream through sinks — one graph.BatchWriter per
// shard — in causal virtual-time order, each batch executing under its
// distinct resource set. The returned Elapsed is the simulated parallel
// makespan.
func (rt Router) Run(sinks []graph.BatchWriter, timed []graph.Edge) (InsertResult, error) {
	if rt.BatchSize < 1 {
		rt.BatchSize = DefaultBatchSize
	}
	if len(sinks) != rt.Shards {
		return InsertResult{}, fmt.Errorf("workload: %d sinks for %d shards", len(sinks), rt.Shards)
	}
	r := vtime.NewRunner(rt.Shards)
	err := causalDrive(r, rt.batches(timed),
		func(b routedBatch) []int { return b.res },
		func(th int, b routedBatch) error {
			if err := sinks[th].InsertBatch(b.edges); err != nil {
				return &ShardError{Shard: th, Err: err}
			}
			return nil
		})
	if err != nil {
		return InsertResult{}, err
	}
	return InsertResult{Edges: len(timed), Elapsed: r.Elapsed()}, nil
}

// InsertBatched inserts the timed stream through n router shards
// feeding batchSize batches into the system's bulk write path
// (graph.Batch: native InsertBatch where implemented, a scalar loop
// otherwise). All shards share one sink handle; the system's own
// internal locking arbitrates, exactly as the scalar InsertParallel
// drivers share one System.
func InsertBatched(sys graph.System, edges []graph.Edge, n int, scope LockScope, batchSize int) (InsertResult, error) {
	warm, timed := Split(edges)
	if err := insertAll(sys.InsertEdge, warm); err != nil {
		return InsertResult{}, err
	}
	bw := graph.Batch(sys)
	sinks := make([]graph.BatchWriter, n)
	for i := range sinks {
		sinks[i] = bw
	}
	rt := Router{Shards: n, BatchSize: batchSize, Scope: scope}
	return rt.Run(sinks, timed)
}

// DGAPSinks allocates n per-shard dgap.Writer sinks — each owning its
// own persistent undo log, so the shards never contend on
// crash-protection state — plus a release func closing all of them.
// Callers that drive a Router themselves (the serving layer's ingest
// path) use this to get the same shard shape InsertBatchedDGAP builds
// internally.
func DGAPSinks(g *dgap.Graph, n int) ([]graph.BatchWriter, func(), error) {
	writers, release, err := dgapWriters(g, n)
	if err != nil {
		return nil, nil, err
	}
	sinks := make([]graph.BatchWriter, n)
	for i := range sinks {
		sinks[i] = writers[i]
	}
	return sinks, release, nil
}

// InsertBatchedDGAP routes the stream across n per-shard dgap.Writers,
// so every shard owns its own persistent undo log and the batches it
// receives are section-grouped by construction (the router's section
// partitioning matches DGAP's lock granularity).
func InsertBatchedDGAP(g *dgap.Graph, edges []graph.Edge, n int, batchSize int) (InsertResult, error) {
	warm, timed := Split(edges)
	writers, release, err := dgapWriters(g, n)
	if err != nil {
		return InsertResult{}, err
	}
	defer release()
	if err := insertAll(writers[0].InsertEdge, warm); err != nil {
		return InsertResult{}, err
	}
	sinks := make([]graph.BatchWriter, n)
	for i := range sinks {
		sinks[i] = writers[i]
	}
	rt := Router{Shards: n, BatchSize: batchSize, Scope: ScopeSection}
	return rt.Run(sinks, timed)
}
