package workload

import (
	"errors"
	"testing"

	"dgap/internal/bal"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

// TestChurnOpsShape: every edge is inserted in order, deletes start
// exactly once the window is full and always name the edge inserted
// window positions earlier, and the steady-state live set stays at the
// window size.
func TestChurnOpsShape(t *testing.T) {
	edges := graphgen.Uniform(64, 8, 3)
	const window = 100
	ops := ChurnOps(edges, window)
	ins, del := graph.SplitOps(ops)
	if ins != len(edges) {
		t.Fatalf("inserts = %d, want %d", ins, len(edges))
	}
	if want := len(edges) - window; del != want {
		t.Fatalf("deletes = %d, want %d", del, want)
	}
	live := map[graph.Edge]int{}
	maxLive, insSeen := 0, 0
	for _, o := range ops {
		if o.Del {
			if live[o.Edge] <= 0 {
				t.Fatalf("delete of %v with no live copy", o.Edge)
			}
			live[o.Edge]--
			if want := edges[insSeen-window-1]; o.Edge != want {
				t.Fatalf("delete names %v, want the window tail %v", o.Edge, want)
			}
		} else {
			if o.Edge != edges[insSeen] {
				t.Fatalf("insert %d out of stream order", insSeen)
			}
			live[o.Edge]++
			insSeen++
		}
		n := 0
		for _, c := range live {
			n += c
		}
		maxLive = max(maxLive, n)
	}
	if maxLive != window+1 {
		t.Fatalf("peak live set %d, want window+1 = %d", maxLive, window+1)
	}
}

// churnModel applies an op stream to a reference multiset.
func churnModel(ops []graph.Op) map[graph.Edge]int {
	m := map[graph.Edge]int{}
	for _, o := range ops {
		if o.Del {
			m[o.Edge]--
		} else {
			m[o.Edge]++
		}
	}
	return m
}

func checkModel(t *testing.T, s graph.Snapshot, model map[graph.Edge]int) {
	t.Helper()
	got := map[graph.Edge]int{}
	for v := 0; v < s.NumVertices(); v++ {
		s.Neighbors(graph.V(v), func(d graph.V) bool {
			got[graph.Edge{Src: graph.V(v), Dst: d}]++
			return true
		})
	}
	for e, c := range model {
		if got[e] != c {
			t.Fatalf("edge %v: %d copies, want %d", e, got[e], c)
		}
	}
	for e, c := range got {
		if model[e] != c {
			t.Fatalf("phantom edge %v (%d copies)", e, c)
		}
	}
}

// TestRunOpsDGAP routes a sliding-window churn stream across per-shard
// dgap.Writers and checks the final graph against the op model.
func TestRunOpsDGAP(t *testing.T) {
	edges := graphgen.Uniform(128, 12, 21)
	ops := ChurnOps(edges, len(edges)/4)
	a := pmem.New(256 << 20)
	cfg := dgap.DefaultConfig(128, int64(len(edges)))
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	g, err := dgap.New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChurnRoutedDGAP(g, ops, 4, 97)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(ops) {
		t.Fatalf("applied %d ops, want %d", res.Edges, len(ops))
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual makespan")
	}
	checkModel(t, g.Snapshot(), churnModel(ops))
}

// TestRunOpsGlobalScope: mixed streams on a global-lock system hash by
// source (index round-robin would split an edge's insert and delete
// across shards), so a churn stream applies cleanly.
func TestRunOpsGlobalScope(t *testing.T) {
	edges := graphgen.Uniform(96, 10, 13)
	ops := ChurnOps(edges, len(edges)/3)
	g := bal.New(pmem.New(128<<20), 96)
	res, err := ChurnRouted(g, ops, 4, ScopeGlobal, 57)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(ops) {
		t.Fatalf("applied %d ops, want %d", res.Edges, len(ops))
	}
	checkModel(t, g.Snapshot(), churnModel(ops))
}

// scalarDeleteSys is a Deleter without native batch paths, whose
// deletes fail after failAt — so graph.Open must resolve the scalar
// fallback adapters for both directions.
type scalarDeleteSys struct {
	inserted, deleted, failAt int
	cause                     error
}

func (f *scalarDeleteSys) Name() string { return "scalar-delete" }
func (f *scalarDeleteSys) InsertEdge(src, dst graph.V) error {
	f.inserted++
	return nil
}
func (f *scalarDeleteSys) DeleteEdge(src, dst graph.V) error {
	if f.deleted >= f.failAt {
		return f.cause
	}
	f.deleted++
	return nil
}
func (f *scalarDeleteSys) Snapshot() graph.Snapshot { return nil }

// TestShardErrorNamesDeleteIndex: a delete failing on the scalar
// fallback surfaces as ShardError wrapping graph.BatchError with the
// failing edge's index — the insert/delete error parity the resolved
// Store keeps intact.
func TestShardErrorNamesDeleteIndex(t *testing.T) {
	sys := &scalarDeleteSys{failAt: 2, cause: errors.New("backend refused")}
	st := graph.Open(sys)
	if !st.Caps().Has(graph.CapDelete) || st.Caps().Has(graph.CapBatchDelete) {
		t.Fatalf("caps = %v, want scalar-fallback delete", st.Caps())
	}
	ops := make([]graph.Op, 0, 8)
	for i := 0; i < 8; i++ {
		// All deletes on one source so they share a shard and
		// sub-batch; the third delete fails.
		ops = append(ops, graph.OpDelete(3, graph.V(i)))
	}
	rt := Router{Shards: 2, BatchSize: 16, Scope: ScopeVertex}
	_, err := rt.RunOps([]graph.Applier{st, st}, ops)
	if err == nil {
		t.Fatal("failing delete stream succeeded")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %T does not wrap ShardError: %v", err, err)
	}
	var be *graph.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %v does not wrap graph.BatchError", err)
	}
	if be.Index != 2 {
		t.Errorf("BatchError.Index = %d, want 2", be.Index)
	}
	if be.Edge.Dst != 2 {
		t.Errorf("BatchError.Edge = %v, want dst 2", be.Edge)
	}
	if !errors.Is(err, sys.cause) {
		t.Errorf("cause not unwrapped: %v", err)
	}
}

// TestChurnRoutedRejectsNonDeleters: the resolved Store's missing
// CapDelete surfaces as graph.ErrDeletesUnsupported for append-only
// systems before any op is applied.
func TestChurnRoutedRejectsNonDeleters(t *testing.T) {
	ops := []graph.Op{graph.OpInsert(0, 1), graph.OpDelete(0, 1)}
	if _, err := ChurnRouted(insertOnlySys{}, ops, 2, ScopeGlobal, 4); !errors.Is(err, graph.ErrDeletesUnsupported) {
		t.Fatalf("err = %v, want ErrDeletesUnsupported", err)
	}
}

type insertOnlySys struct{}

func (insertOnlySys) Name() string                      { return "insert-only" }
func (insertOnlySys) InsertEdge(src, dst graph.V) error { return nil }
func (insertOnlySys) Snapshot() graph.Snapshot          { return nil }
