package workload

import (
	"sync/atomic"
	"testing"

	"dgap/internal/graph"
	"dgap/internal/obs"
)

type countSink struct{ ops atomic.Int64 }

func (s *countSink) ApplyOps(ops []graph.Op) error {
	s.ops.Add(int64(len(ops)))
	return nil
}

// TestRouterInstanceScopesObs is the multi-instance regression test:
// two Routers sharing one registry used to write the same global
// workload.router.* instruments; with Instance labels each keeps its
// own series, and an unlabeled Router keeps the legacy single-instance
// names (which CI greps from the live /metrics endpoint).
func TestRouterInstanceScopesObs(t *testing.T) {
	reg := obs.NewRegistry()
	edges := make([]graph.Edge, 64)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.V(i % 8), Dst: graph.V(i % 5)}
	}
	run := func(instance string, n int) {
		sink := &countSink{}
		rt := Router{Shards: 2, BatchSize: 8, Scope: ScopeVertex, Obs: reg, Instance: instance}
		if _, err := rt.Run(sharedSinks(sink, 2), edges[:n]); err != nil {
			t.Fatal(err)
		}
		if got := sink.ops.Load(); got != int64(n) {
			t.Fatalf("instance %q sink saw %d ops, want %d", instance, got, n)
		}
	}
	run("a", 64)
	run("b", 32)
	run("", 16)

	want := map[string]int64{
		"workload.a.router.batches": 8,
		"workload.b.router.batches": 4,
		"workload.router.batches":   2,
	}
	vals := map[string]int64{}
	for _, m := range reg.Snapshot() {
		vals[m.Name] = m.Value
	}
	for name, n := range want {
		if vals[name] != n {
			t.Errorf("%s = %d, want %d (snapshot %v)", name, vals[name], n, vals)
		}
	}
	shard := map[string]int64{
		"workload.a.router.shard0.ops": 0,
		"workload.a.router.shard1.ops": 0,
		"workload.b.router.shard0.ops": 0,
		"workload.router.shard0.ops":   0,
	}
	for name := range shard {
		if _, ok := vals[name]; !ok {
			t.Errorf("missing per-shard instrument %s", name)
		}
	}
	if got := vals["workload.a.router.shard0.ops"] + vals["workload.a.router.shard1.ops"]; got != 64 {
		t.Errorf("instance a shard ops sum = %d, want 64", got)
	}
}
