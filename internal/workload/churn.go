package workload

import (
	"fmt"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/vtime"
)

// Op is one mutation of a mixed insert/delete stream.
type Op struct {
	Edge graph.Edge
	Del  bool
}

// Inserts wraps an edge slice as an insert-only op stream.
func Inserts(edges []graph.Edge) []Op {
	ops := make([]Op, len(edges))
	for i, e := range edges {
		ops[i] = Op{Edge: e}
	}
	return ops
}

// SplitOps counts a mixed stream's composition.
func SplitOps(ops []Op) (inserts, deletes int) {
	for _, o := range ops {
		if o.Del {
			deletes++
		} else {
			inserts++
		}
	}
	return inserts, deletes
}

// ChurnOps turns an edge stream into a sliding-window churn stream:
// every edge is inserted in stream order, and once window inserts have
// landed, each further insert is followed by the deletion of the edge
// inserted window positions earlier — the live set slides over the
// stream at a steady size while total mutations double, the
// steady-state serving traffic (user adds, user removes) the
// append-only ingest experiments cannot model. Every delete names an
// edge inserted exactly window ops before it, so on any path that
// preserves per-edge causal order the delete always finds its live
// copy.
func ChurnOps(edges []graph.Edge, window int) []Op {
	if window < 1 {
		window = 1
	}
	ops := make([]Op, 0, 2*len(edges)-min(window, len(edges)))
	for i, e := range edges {
		ops = append(ops, Op{Edge: e})
		if i >= window {
			ops = append(ops, Op{Edge: edges[i-window], Del: true})
		}
	}
	return ops
}

// opBatch is one mixed dispatch unit: a shard-local op slice plus the
// distinct virtual lock resources its execution serializes on.
type opBatch struct {
	ops []Op
	res []int
}

// partitionOps routes each op to its shard by the lock resource of its
// edge — the same sharding Router.partition applies to pure insert
// streams — so an edge's insert and its later delete always land on
// the same shard, in stream order; a delete can then never race ahead
// of the insert it cancels. The one divergence from the insert-only
// partition is the global scope: round-robin by stream index would
// split an edge's insert and delete across shards, so mixed streams
// hash by source vertex instead (work still spreads; the single shared
// lock resource still serializes every batch in virtual time).
func (rt Router) partitionOps(ops []Op) [][]Op {
	parts := make([][]Op, rt.Shards)
	for _, o := range ops {
		var sh int
		if rt.Scope != ScopeGlobal {
			sh = rt.Scope.Resource(o.Edge) % rt.Shards
		} else {
			sh = int(o.Edge.Src) % rt.Shards
		}
		parts[sh] = append(parts[sh], o)
	}
	return parts
}

// opBatches cuts each shard's stream into BatchSize dispatch units.
func (rt Router) opBatches(ops []Op) [][]opBatch {
	parts := rt.partitionOps(ops)
	out := make([][]opBatch, rt.Shards)
	for sh, p := range parts {
		for len(p) > 0 {
			n := min(rt.BatchSize, len(p))
			b := opBatch{ops: p[:n]}
			seen := map[int]bool{}
			for _, o := range b.ops {
				if r := rt.Scope.Resource(o.Edge); !seen[r] {
					seen[r] = true
					b.res = append(b.res, r)
				}
			}
			out[sh] = append(out[sh], b)
			p = p[n:]
		}
	}
	return out
}

// RunOps drives a mixed insert/delete stream through sinks — one
// graph.BatchMutator per shard — with the same lock-scope sharding and
// causal virtual-time dispatch as Run. Each dispatch batch is applied
// as one InsertBatch of its inserts followed by one DeleteBatch of its
// deletes. That reordering is multiset-exact: a delete cancels an
// unspecified live (src, dst) occurrence and only requires one live
// match, so moving a batch's inserts ahead of its deletes preserves
// every final per-(src, dst) live count; validation can only get more
// permissive (a delete whose matching insert shares its batch succeeds
// here and would fail interleaved), never stricter. The per-vertex
// visible ORDER inside one batch window is likewise not part of the
// router contract — cross-shard delivery already permutes it, see
// TestBatchOutOfOrderDelivery. Failures arrive as ShardError; when a
// sink's delete path is the scalar fallback, the wrapped
// graph.BatchError names the failing op's index within its sub-batch.
func (rt Router) RunOps(sinks []graph.BatchMutator, ops []Op) (InsertResult, error) {
	if rt.BatchSize < 1 {
		rt.BatchSize = DefaultBatchSize
	}
	if len(sinks) != rt.Shards {
		return InsertResult{}, fmt.Errorf("workload: %d sinks for %d shards", len(sinks), rt.Shards)
	}
	r := vtime.NewRunner(rt.Shards)
	ins := make([][]graph.Edge, rt.Shards)
	del := make([][]graph.Edge, rt.Shards)
	err := causalDrive(r, rt.opBatches(ops),
		func(b opBatch) []int { return b.res },
		func(th int, b opBatch) error {
			ins[th] = ins[th][:0]
			del[th] = del[th][:0]
			for _, o := range b.ops {
				if o.Del {
					del[th] = append(del[th], o.Edge)
				} else {
					ins[th] = append(ins[th], o.Edge)
				}
			}
			if len(ins[th]) > 0 {
				if err := sinks[th].InsertBatch(ins[th]); err != nil {
					return &ShardError{Shard: th, Err: err}
				}
			}
			if len(del[th]) > 0 {
				if err := sinks[th].DeleteBatch(del[th]); err != nil {
					return &ShardError{Shard: th, Err: err}
				}
			}
			return nil
		})
	if err != nil {
		return InsertResult{}, err
	}
	return InsertResult{Edges: len(ops), Elapsed: r.Elapsed()}, nil
}

// Mutator bundles a system's two bulk write paths into the
// graph.BatchMutator the mixed router drives: the native surfaces where
// implemented, scalar fallbacks otherwise. Returns an error wrapping
// graph.ErrDeletesUnsupported for systems that cannot delete at all.
func Mutator(sys graph.System) (graph.BatchMutator, error) {
	bd := graph.Deletes(sys)
	if bd == nil {
		return nil, fmt.Errorf("workload: %s: %w", sys.Name(), graph.ErrDeletesUnsupported)
	}
	return mutator{graph.Batch(sys), bd}, nil
}

type mutator struct {
	graph.BatchWriter
	graph.BatchDeleter
}

// ChurnRouted drives a mixed op stream across n router shards into the
// system's bulk write paths — the mixed-workload counterpart of
// InsertBatched. All shards share one mutator handle; the system's own
// locking arbitrates.
func ChurnRouted(sys graph.System, ops []Op, n int, scope LockScope, batchSize int) (InsertResult, error) {
	mut, err := Mutator(sys)
	if err != nil {
		return InsertResult{}, err
	}
	sinks := make([]graph.BatchMutator, n)
	for i := range sinks {
		sinks[i] = mut
	}
	rt := Router{Shards: n, BatchSize: batchSize, Scope: scope}
	return rt.RunOps(sinks, ops)
}

// ChurnRoutedDGAP routes a mixed op stream across n per-shard
// dgap.Writers (each implementing both batched paths natively over its
// own undo log), section-sharded like InsertBatchedDGAP.
func ChurnRoutedDGAP(g *dgap.Graph, ops []Op, n int, batchSize int) (InsertResult, error) {
	writers, release, err := dgapWriters(g, n)
	if err != nil {
		return InsertResult{}, err
	}
	defer release()
	sinks := make([]graph.BatchMutator, n)
	for i := range sinks {
		sinks[i] = writers[i]
	}
	rt := Router{Shards: n, BatchSize: batchSize, Scope: ScopeSection}
	return rt.RunOps(sinks, ops)
}
