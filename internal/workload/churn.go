package workload

import (
	"fmt"

	"dgap/internal/dgap"
	"dgap/internal/graph"
)

// ChurnOps turns an edge stream into a sliding-window churn stream:
// every edge is inserted in stream order, and once window inserts have
// landed, each further insert is followed by the deletion of the edge
// inserted window positions earlier — the live set slides over the
// stream at a steady size while total mutations double, the
// steady-state serving traffic (user adds, user removes) the
// append-only ingest experiments cannot model. Every delete names an
// edge inserted exactly window ops before it, so on any path that
// preserves per-edge causal order the delete always finds its live
// copy.
func ChurnOps(edges []graph.Edge, window int) []graph.Op {
	if window < 1 {
		window = 1
	}
	ops := make([]graph.Op, 0, 2*len(edges)-min(window, len(edges)))
	for i, e := range edges {
		ops = append(ops, graph.Op{Edge: e})
		if i >= window {
			ops = append(ops, graph.Op{Edge: edges[i-window], Del: true})
		}
	}
	return ops
}

// ChurnRouted drives a mixed op stream across n router shards into the
// system's resolved mutation handle — the mixed-workload counterpart of
// InsertBatched. All shards share one graph.Store; the system's own
// locking arbitrates. Fails with an error wrapping
// graph.ErrDeletesUnsupported when the system cannot delete at all.
func ChurnRouted(sys graph.System, ops []graph.Op, n int, scope LockScope, batchSize int) (InsertResult, error) {
	st := graph.Open(sys)
	if !st.Caps().Has(graph.CapDelete) {
		return InsertResult{}, fmt.Errorf("workload: %s: %w", st.Name(), graph.ErrDeletesUnsupported)
	}
	rt := Router{Shards: n, BatchSize: batchSize, Scope: scope}
	return rt.RunOps(sharedSinks(st, n), ops)
}

// ChurnRoutedDGAP routes a mixed op stream across n per-shard
// dgap.Writers — each applying mixed batches through the native
// section-grouped ApplyOps over its own undo log — section-sharded like
// InsertBatchedDGAP.
func ChurnRoutedDGAP(g *dgap.Graph, ops []graph.Op, n int, batchSize int) (InsertResult, error) {
	sinks, release, err := DGAPSinks(g, n)
	if err != nil {
		return InsertResult{}, err
	}
	defer release()
	rt := Router{Shards: n, BatchSize: batchSize, Scope: ScopeSection}
	return rt.RunOps(sinks, ops)
}
