package workload

import (
	"testing"

	"dgap/internal/bal"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

func TestSplitFraction(t *testing.T) {
	edges := make([]graph.Edge, 1000)
	warm, timed := Split(edges)
	if len(warm) != 100 || len(timed) != 900 {
		t.Errorf("split = %d/%d, want 100/900", len(warm), len(timed))
	}
}

func TestMEPS(t *testing.T) {
	r := InsertResult{Edges: 2_000_000, Elapsed: 1e9} // 1s
	if got := r.MEPS(); got != 2 {
		t.Errorf("MEPS = %v", got)
	}
	if (InsertResult{}).MEPS() != 0 {
		t.Error("zero result must not divide by zero")
	}
}

func TestInsertSerialLoadsEverything(t *testing.T) {
	edges := graphgen.Uniform(64, 8, 3)
	g := bal.New(pmem.New(64<<20), 64)
	res, err := InsertSerial(g, edges)
	if err != nil {
		t.Fatal(err)
	}
	_, timed := Split(edges)
	if res.Edges != len(timed) {
		t.Errorf("timed edges = %d, want %d", res.Edges, len(timed))
	}
	if got := g.Snapshot().NumEdges(); got != int64(len(edges)) {
		t.Errorf("system holds %d edges, want %d", got, len(edges))
	}
}

func TestInsertParallelSameGraphAsSerial(t *testing.T) {
	edges := graphgen.Uniform(64, 10, 5)
	ser := bal.New(pmem.New(64<<20), 64)
	if _, err := InsertSerial(ser, edges); err != nil {
		t.Fatal(err)
	}
	par := bal.New(pmem.New(64<<20), 64)
	res, err := InsertParallel(par, edges, 8, ScopeVertex)
	if err != nil {
		t.Fatal(err)
	}
	if _, timed := Split(edges); res.Edges != len(timed) {
		t.Errorf("timed edges = %d, want %d", res.Edges, len(timed))
	}
	ss, sp := ser.Snapshot(), par.Snapshot()
	if ss.NumEdges() != sp.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", ss.NumEdges(), sp.NumEdges())
	}
	for v := 0; v < 64; v++ {
		if ss.Degree(graph.V(v)) != sp.Degree(graph.V(v)) {
			t.Fatalf("degree of %d differs", v)
		}
	}
}

func TestInsertParallelDGAP(t *testing.T) {
	edges := graphgen.Uniform(64, 10, 7)
	cfg := dgap.DefaultConfig(64, int64(len(edges)))
	g, err := dgap.New(pmem.New(128<<20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := InsertParallelDGAP(g, edges, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("no virtual time accrued")
	}
	if got := g.ConsistentView().NumEdges(); got != int64(len(edges)) {
		t.Errorf("graph holds %d edges, want %d", got, len(edges))
	}
}

func TestLockScopeResources(t *testing.T) {
	e := graph.Edge{Src: 42, Dst: 7}
	if ScopeGlobal.Resource(e) != 0 {
		t.Error("global scope must map to one resource")
	}
	if ScopeVertex.Resource(e) != 42 {
		t.Error("vertex scope must map to the source id")
	}
	if ScopeSection.Resource(e) != 42/sectionResolution {
		t.Error("section scope must group adjacent sources")
	}
}

func TestParallelScalingShape(t *testing.T) {
	// Per-vertex locks over many vertices must yield a shorter simulated
	// makespan than a single global lock for the same work.
	edges := graphgen.Uniform(256, 16, 9)
	run := func(scope LockScope) int64 {
		g := bal.New(pmem.New(128<<20, pmem.WithLatency(pmem.DefaultLatency())), 256)
		res, err := InsertParallel(g, edges, 8, scope)
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Elapsed)
	}
	vertexTime := run(ScopeVertex)
	globalTime := run(ScopeGlobal)
	if vertexTime >= globalTime {
		t.Errorf("vertex-scoped locking (%d ns) not faster than global (%d ns)", vertexTime, globalTime)
	}
}
