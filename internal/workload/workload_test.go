package workload

import (
	"errors"
	"testing"

	"dgap/internal/bal"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

func TestSplitFraction(t *testing.T) {
	edges := make([]graph.Edge, 1000)
	warm, timed := Split(edges)
	if len(warm) != 100 || len(timed) != 900 {
		t.Errorf("split = %d/%d, want 100/900", len(warm), len(timed))
	}
}

func TestMEPS(t *testing.T) {
	r := InsertResult{Edges: 2_000_000, Elapsed: 1e9} // 1s
	if got := r.MEPS(); got != 2 {
		t.Errorf("MEPS = %v", got)
	}
	if (InsertResult{}).MEPS() != 0 {
		t.Error("zero result must not divide by zero")
	}
}

func TestInsertSerialLoadsEverything(t *testing.T) {
	edges := graphgen.Uniform(64, 8, 3)
	g := bal.New(pmem.New(64<<20), 64)
	res, err := InsertSerial(g, edges)
	if err != nil {
		t.Fatal(err)
	}
	_, timed := Split(edges)
	if res.Edges != len(timed) {
		t.Errorf("timed edges = %d, want %d", res.Edges, len(timed))
	}
	if got := g.Snapshot().NumEdges(); got != int64(len(edges)) {
		t.Errorf("system holds %d edges, want %d", got, len(edges))
	}
}

func TestInsertParallelSameGraphAsSerial(t *testing.T) {
	edges := graphgen.Uniform(64, 10, 5)
	ser := bal.New(pmem.New(64<<20), 64)
	if _, err := InsertSerial(ser, edges); err != nil {
		t.Fatal(err)
	}
	par := bal.New(pmem.New(64<<20), 64)
	res, err := InsertParallel(par, edges, 8, ScopeVertex)
	if err != nil {
		t.Fatal(err)
	}
	if _, timed := Split(edges); res.Edges != len(timed) {
		t.Errorf("timed edges = %d, want %d", res.Edges, len(timed))
	}
	ss, sp := ser.Snapshot(), par.Snapshot()
	if ss.NumEdges() != sp.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", ss.NumEdges(), sp.NumEdges())
	}
	for v := 0; v < 64; v++ {
		if ss.Degree(graph.V(v)) != sp.Degree(graph.V(v)) {
			t.Fatalf("degree of %d differs", v)
		}
	}
}

func TestInsertParallelDGAP(t *testing.T) {
	edges := graphgen.Uniform(64, 10, 7)
	cfg := dgap.DefaultConfig(64, int64(len(edges)))
	g, err := dgap.New(pmem.New(128<<20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := InsertParallelDGAP(g, edges, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("no virtual time accrued")
	}
	if got := g.ConsistentView().NumEdges(); got != int64(len(edges)) {
		t.Errorf("graph holds %d edges, want %d", got, len(edges))
	}
}

func TestLockScopeResources(t *testing.T) {
	e := graph.Edge{Src: 42, Dst: 7}
	if ScopeGlobal.Resource(e) != 0 {
		t.Error("global scope must map to one resource")
	}
	if ScopeVertex.Resource(e) != 42 {
		t.Error("vertex scope must map to the source id")
	}
	if ScopeSection.Resource(e) != 42/sectionResolution {
		t.Error("section scope must group adjacent sources")
	}
}

func TestRouterPartitionByResource(t *testing.T) {
	edges := graphgen.Uniform(256, 8, 13)
	rt := Router{Shards: 4, BatchSize: 32, Scope: ScopeSection}
	parts := rt.partition(graph.Inserts(edges), true)
	total := 0
	for sh, p := range parts {
		total += len(p)
		for _, o := range p {
			if ScopeSection.Resource(o.Edge)%4 != sh {
				t.Fatalf("edge %v routed to shard %d, resource %d", o.Edge, sh, ScopeSection.Resource(o.Edge))
			}
		}
	}
	if total != len(edges) {
		t.Fatalf("partition dropped edges: %d of %d", total, len(edges))
	}
	// Global scope must still spread load across shards.
	gparts := Router{Shards: 4, BatchSize: 32, Scope: ScopeGlobal}.partition(graph.Inserts(edges), true)
	for sh, p := range gparts {
		if len(p) == 0 {
			t.Fatalf("global-scope shard %d starved", sh)
		}
	}
}

func TestRouterBatchResources(t *testing.T) {
	rt := Router{Shards: 1, BatchSize: 4, Scope: ScopeVertex}
	edges := []graph.Edge{{Src: 3, Dst: 1}, {Src: 3, Dst: 2}, {Src: 9, Dst: 1}, {Src: 3, Dst: 4}, {Src: 5, Dst: 0}}
	bs := rt.batches(graph.Inserts(edges), true)
	if len(bs) != 1 || len(bs[0]) != 2 {
		t.Fatalf("batches = %v", bs)
	}
	if got := bs[0][0].res; len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Fatalf("first batch resources = %v, want [3 9]", got)
	}
}

func TestInsertBatchedSameGraphAsSerial(t *testing.T) {
	edges := graphgen.Uniform(64, 10, 5)
	ser := bal.New(pmem.New(64<<20), 64)
	if _, err := InsertSerial(ser, edges); err != nil {
		t.Fatal(err)
	}
	bat := bal.New(pmem.New(64<<20), 64)
	res, err := InsertBatched(bat, edges, 4, ScopeVertex, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, timed := Split(edges); res.Edges != len(timed) {
		t.Errorf("timed edges = %d, want %d", res.Edges, len(timed))
	}
	if res.Elapsed <= 0 {
		t.Error("no virtual time accrued")
	}
	ss, sb := ser.Snapshot(), bat.Snapshot()
	if ss.NumEdges() != sb.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", ss.NumEdges(), sb.NumEdges())
	}
	for v := 0; v < 64; v++ {
		if ss.Degree(graph.V(v)) != sb.Degree(graph.V(v)) {
			t.Fatalf("degree of %d differs", v)
		}
	}
}

func TestInsertBatchedDGAP(t *testing.T) {
	edges := graphgen.Uniform(64, 10, 7)
	cfg := dgap.DefaultConfig(64, int64(len(edges)))
	g, err := dgap.New(pmem.New(128<<20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := InsertBatchedDGAP(g, edges, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("no virtual time accrued")
	}
	if got := g.ConsistentView().NumEdges(); got != int64(len(edges)) {
		t.Errorf("graph holds %d edges, want %d", got, len(edges))
	}
}

// TestShardErrorSurfacesRegion: a shard whose batch insert fails must
// surface which shard failed and, for arena exhaustion, which region
// ran out — the typed chain ShardError -> pmem.OutOfMemoryError.
func TestShardErrorSurfacesRegion(t *testing.T) {
	edges := graphgen.Uniform(64, 12, 3)
	// An arena too small for the stream: BAL exhausts it growing blocks.
	g := bal.New(pmem.New(1<<13), 64)
	rt := Router{Shards: 2, BatchSize: 16, Scope: ScopeVertex}
	st := graph.Open(g)
	_, err := rt.Run([]graph.Applier{st, st}, edges)
	if err == nil {
		t.Fatal("expected shard failure on an exhausted arena")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ShardError", err)
	}
	var oom *pmem.OutOfMemoryError
	if !errors.As(err, &oom) {
		t.Fatalf("error %v does not unwrap to pmem.OutOfMemoryError", err)
	}
	if oom.Region != "bal: edge block" {
		t.Errorf("exhausted region = %q, want %q", oom.Region, "bal: edge block")
	}
	if oom.Requested == 0 || oom.Capacity == 0 {
		t.Errorf("error lacks size context: %+v", oom)
	}
}

func TestParallelScalingShape(t *testing.T) {
	// Per-vertex locks over many vertices must yield a shorter simulated
	// makespan than a single global lock for the same work.
	edges := graphgen.Uniform(256, 16, 9)
	run := func(scope LockScope) int64 {
		g := bal.New(pmem.New(128<<20, pmem.WithLatency(pmem.DefaultLatency())), 256)
		res, err := InsertParallel(g, edges, 8, scope)
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Elapsed)
	}
	vertexTime := run(ScopeVertex)
	globalTime := run(ScopeGlobal)
	if vertexTime >= globalTime {
		t.Errorf("vertex-scoped locking (%d ns) not faster than global (%d ns)", vertexTime, globalTime)
	}
}
