package obs

import (
	"sync"
	"time"
)

// SlowEntry is one retained slow-query span, stamped with the sequence
// number of its admission to the log (monotonic across the log's
// lifetime, so a reader polling Entries can tell new entries from ones
// it has already seen even after the ring wraps).
type SlowEntry struct {
	Seq  uint64 `json:"seq"`
	Span Span   `json:"span"`
}

// SlowLog is a bounded ring buffer of over-threshold request spans —
// the always-on slow-query log. Writers pay one threshold comparison
// per request and, only for retained spans, one short mutex-guarded
// ring store; memory is fixed at capacity entries regardless of how
// many slow requests ever occur. Safe for concurrent use.
type SlowLog struct {
	threshold time.Duration

	mu   sync.Mutex
	ring []SlowEntry
	next uint64 // sequence of the next retained span; ring[next%cap] is the oldest slot
}

// DefaultSlowLogSize is the ring capacity NewSlowLog(0, ·) selects.
const DefaultSlowLogSize = 128

// NewSlowLog returns a slow log retaining the most recent capacity
// spans whose Total is at least threshold (capacity <= 0 selects
// DefaultSlowLogSize). A zero threshold retains every observed span —
// the trace-everything setting tests and interactive debugging use.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogSize
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, capacity)}
}

// Threshold returns the retention threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Cap returns the ring capacity.
func (l *SlowLog) Cap() int { return len(l.ring) }

// Observe offers one span to the log, retaining it (and evicting the
// oldest entry once the ring is full) when its Total meets the
// threshold. Reports whether the span was retained.
func (l *SlowLog) Observe(sp Span) bool {
	if sp.Total < l.threshold {
		return false
	}
	l.mu.Lock()
	l.ring[l.next%uint64(len(l.ring))] = SlowEntry{Seq: l.next, Span: sp}
	l.next++
	l.mu.Unlock()
	return true
}

// Observed returns how many spans have ever been retained (including
// entries since evicted by the ring).
func (l *SlowLog) Observed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Entries snapshots the retained spans, newest first. The slice is the
// caller's.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := min(l.next, uint64(len(l.ring)))
	out := make([]SlowEntry, 0, n)
	for i := uint64(1); i <= n; i++ {
		out = append(out, l.ring[(l.next-i)%uint64(len(l.ring))])
	}
	return out
}
