package obs

import (
	"encoding/json"
	"net/http"
	"strings"
)

// writeJSON encodes v indented onto w, ignoring transport errors the
// handler could not act on anyway.
func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteJSONResponse sets the JSON content type and encodes v indented
// onto w — the helper sibling packages mounting their own snapshot
// endpoints next to MetricsHandler use (serve's /stats).
func WriteJSONResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, v)
}

// MetricsHandler serves a registry's exposition over HTTP: flat text by
// default, the full JSON snapshot (histogram buckets included) when the
// request asks for it with ?format=json or an Accept header naming
// application/json.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// SlowLogHandler serves a slow log's retained entries as JSON, newest
// first.
func SlowLogHandler(l *SlowLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		entries := []SlowEntry{}
		if l != nil {
			entries = l.Entries()
		}
		writeJSON(w, entries)
	})
}

func wantJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}
