package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level. The zero value is ready to use; all
// methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Instrumented is implemented by components owning internal counters a
// serving tier should expose — backends register their own instruments
// when a registry is wired through the stack (dgap.Graph registers its
// compaction, PMA and recovery counters this way, without the serving
// tier importing the backend).
type Instrumented interface {
	RegisterObs(r *Registry)
}

// Metric is one named instrument's exported state, the unit of the
// Snapshot and JSON expositions. Exactly one of Value (counter, gauge)
// or Hist (hist) is meaningful, selected by Kind.
type Metric struct {
	Name  string        `json:"name"`
	Kind  string        `json:"kind"` // "counter", "gauge" or "hist"
	Value int64         `json:"value,omitempty"`
	Hist  *HistSnapshot `json:"hist,omitempty"`
}

// Registry is a namespace of metric instruments. Registration methods
// are idempotent — the same name always yields the same instrument —
// and return pre-resolved handles the owner keeps, so hot paths never
// touch the registry map. Names follow the layer.subsystem.metric
// convention (see the package documentation); registering one name as
// two different kinds panics, since the second caller would silently
// observe into a dead instrument otherwise.
type Registry struct {
	// parent/label make this handle an instance scope over a shared
	// root (see Instance); both are nil/empty on a root registry.
	parent *Registry
	label  string

	mu    sync.Mutex
	kinds map[string]string
	ctrs  map[string]*Counter
	gaug  map[string]*Gauge
	funcs map[string]func() int64
	hists map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds: map[string]string{},
		ctrs:  map[string]*Counter{},
		gaug:  map[string]*Gauge{},
		funcs: map[string]func() int64{},
		hists: map[string]*Hist{},
	}
}

func (r *Registry) claim(name, kind string) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: instrument %q registered as both %s and %s", name, prev, kind))
	}
	r.kinds[name] = kind
}

// Instance returns a handle on the same registry that scopes every
// instrument name by label, inserted after the leading layer segment:
// r.Instance("shard0").Counter("dgap.pma.log_appends") registers
// dgap.shard0.pma.log_appends. This is how multi-instance wiring — N
// Cluster shards of one backend, two Routers on one server — keeps
// per-instance series instead of silently sharing (or, for func-backed
// instruments, overwriting) one global name. Instances nest, share the
// root's storage and exposition, and an empty label returns r itself.
func (r *Registry) Instance(label string) *Registry {
	if label == "" {
		return r
	}
	return &Registry{parent: r, label: label}
}

// resolve rewrites name through every instance scope between r and the
// root, returning the root registry and the fully scoped name.
func (r *Registry) resolve(name string) (*Registry, string) {
	for r.parent != nil {
		name = scopeName(name, r.label)
		r = r.parent
	}
	return r, name
}

func scopeName(name, label string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i+1] + label + name[i:]
	}
	return name + "." + label
}

// root returns the backing registry an instance handle writes through.
func (r *Registry) root() *Registry {
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r, name = r.resolve(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter")
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r, name = r.resolve(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge")
	g := r.gaug[name]
	if g == nil {
		g = &Gauge{}
		r.gaug[name] = g
	}
	return g
}

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Hist {
	r, name = r.resolve(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "hist")
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a counter whose value is read on demand at
// exposition time — the adapter for monotonic atomics a component
// already maintains, costing its hot path nothing. Re-registering a
// name replaces the function.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r, name = r.resolve(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter")
	r.funcs[name] = fn
}

// GaugeFunc registers a gauge whose level is read on demand at
// exposition time. Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r, name = r.resolve(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge")
	r.funcs[name] = fn
}

// Names returns every registered instrument name, sorted. Instance
// handles report the shared root's full namespace.
func (r *Registry) Names() []string {
	r = r.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.kinds))
	for n := range r.kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot exports every instrument's current state, sorted by name.
// Func-backed instruments are read here, under no registry-wide
// freeze: the snapshot is per-instrument atomic, not cross-instrument
// consistent, which is the usual exposition contract. Instance handles
// expose the shared root's full namespace.
func (r *Registry) Snapshot() []Metric {
	r = r.root()
	r.mu.Lock()
	type entry struct {
		name, kind string
		ctr        *Counter
		gauge      *Gauge
		fn         func() int64
		hist       *Hist
	}
	entries := make([]entry, 0, len(r.kinds))
	for name, kind := range r.kinds {
		e := entry{name: name, kind: kind}
		e.ctr, e.gauge, e.fn, e.hist = r.ctrs[name], r.gaug[name], r.funcs[name], r.hists[name]
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	out := make([]Metric, 0, len(entries))
	for _, e := range entries {
		m := Metric{Name: e.name, Kind: e.kind}
		switch {
		case e.hist != nil:
			s := e.hist.Snapshot()
			m.Hist = &s
		case e.fn != nil:
			m.Value = e.fn()
		case e.ctr != nil:
			m.Value = e.ctr.Load()
		case e.gauge != nil:
			m.Value = e.gauge.Load()
		}
		out = append(out, m)
	}
	return out
}

// WriteText writes the flat-text exposition: one "name value" line per
// counter and gauge, and derived .count/.mean/.p50/.p99/.p999/.max
// series per histogram, in the histogram's own unit. Lines are sorted
// by instrument name.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		var err error
		if m.Hist != nil {
			s := m.Hist
			_, err = fmt.Fprintf(w, "%s.count %d\n%s.mean %d\n%s.p50 %d\n%s.p99 %d\n%s.p999 %d\n%s.max %d\n",
				m.Name, s.Count, m.Name, s.Mean(), m.Name, s.Quantile(0.50),
				m.Name, s.Quantile(0.99), m.Name, s.Quantile(0.999), m.Name, s.Max)
		} else {
			_, err = fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the Snapshot as an indented JSON array, histogram
// buckets included.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
