package obs

import (
	"sync"
	"testing"
	"time"
)

// TestSlowLogThreshold: only spans at or over the threshold are
// retained, newest first.
func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond)
	if l.Threshold() != 10*time.Millisecond || l.Cap() != 8 {
		t.Fatalf("threshold %v cap %d", l.Threshold(), l.Cap())
	}
	if l.Observe(Span{Class: "fast", Total: 9 * time.Millisecond}) {
		t.Fatal("sub-threshold span retained")
	}
	if !l.Observe(Span{Class: "edge", Total: 10 * time.Millisecond}) {
		t.Fatal("at-threshold span dropped")
	}
	if !l.Observe(Span{Class: "slow", Total: time.Second}) {
		t.Fatal("over-threshold span dropped")
	}
	es := l.Entries()
	if len(es) != 2 || es[0].Span.Class != "slow" || es[1].Span.Class != "edge" {
		t.Fatalf("entries = %+v", es)
	}
	if es[0].Seq != 1 || es[1].Seq != 0 {
		t.Fatalf("sequence numbers = %d, %d", es[0].Seq, es[1].Seq)
	}
	if l.Observed() != 2 {
		t.Fatalf("observed = %d", l.Observed())
	}
	if NewSlowLog(0, 0).Cap() != DefaultSlowLogSize {
		t.Fatal("zero capacity must select the default")
	}
}

// TestSlowLogBounded: the ring never grows beyond its capacity no
// matter how many spans land, and retains exactly the newest.
func TestSlowLogBounded(t *testing.T) {
	const capacity = 16
	l := NewSlowLog(capacity, 0)
	for i := 0; i < 10*capacity; i++ {
		l.Observe(Span{Total: time.Duration(i)})
	}
	es := l.Entries()
	if len(es) != capacity {
		t.Fatalf("ring holds %d entries, cap %d", len(es), capacity)
	}
	for i, e := range es {
		wantSeq := uint64(10*capacity - 1 - i)
		if e.Seq != wantSeq || e.Span.Total != time.Duration(wantSeq) {
			t.Fatalf("entry %d: seq %d total %v, want seq %d", i, e.Seq, e.Span.Total, wantSeq)
		}
	}
}

// TestSlowLogConcurrent: concurrent writers and readers race cleanly
// (run under -race in CI) and every retained span is accounted for.
func TestSlowLogConcurrent(t *testing.T) {
	const (
		writers = 8
		perW    = 500
	)
	l := NewSlowLog(64, 100)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if es := l.Entries(); len(es) > l.Cap() {
					t.Errorf("entries %d exceed cap %d", len(es), l.Cap())
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Half the spans are below the threshold of 100.
				l.Observe(Span{Class: "w", Total: time.Duration(50 + 100*(i%2))})
			}
		}(w)
	}
	// Wait for the writers (wg also covers the reader, stopped below).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for l.Observed() < writers*perW/2 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if got, want := l.Observed(), uint64(writers*perW/2); got != want {
		t.Fatalf("observed %d spans, want %d", got, want)
	}
	es := l.Entries()
	if len(es) != l.Cap() {
		t.Fatalf("ring holds %d, want full cap %d", len(es), l.Cap())
	}
	for i := 1; i < len(es); i++ {
		if es[i].Seq != es[i-1].Seq-1 {
			t.Fatalf("entries not contiguous newest-first: %d after %d", es[i].Seq, es[i-1].Seq)
		}
	}
	for _, e := range es {
		if e.Span.Total != 150 {
			t.Fatalf("sub-threshold span retained: %+v", e)
		}
	}
}
