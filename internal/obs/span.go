package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// Phase is one segment of a request's lifecycle. The serving tier
// stamps every query with a duration per phase; the four phases
// partition the end-to-end latency, so they sum to it (execution is
// recorded net of kernel compute).
type Phase int

const (
	// PhaseAdmission is the wait in the admission queue: submit to
	// worker pickup.
	PhaseAdmission Phase = iota
	// PhaseLease is the snapshot-lease pin: acquiring (and possibly
	// refreshing) the current lease generation.
	PhaseLease
	// PhaseExec is the query's execution on the worker net of kernel
	// compute: reading the view, copying results, dispatch overhead.
	PhaseExec
	// PhaseKernel is the analytics kernel's own measured compute time
	// (k-hop, top-k, PageRank refresh); zero for point reads.
	PhaseKernel

	// NumPhases is the phase count (sizing arrays).
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseAdmission:
		return "admission"
	case PhaseLease:
		return "lease"
	case PhaseExec:
		return "exec"
	case PhaseKernel:
		return "kernel"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Phases is a per-phase duration breakdown.
type Phases [NumPhases]time.Duration

// Total sums the phases.
func (p Phases) Total() time.Duration {
	var t time.Duration
	for _, d := range p {
		t += d
	}
	return t
}

// phasesJSON is the named-field JSON shape of a Phases breakdown.
type phasesJSON struct {
	AdmissionNs int64 `json:"admission_ns"`
	LeaseNs     int64 `json:"lease_ns"`
	ExecNs      int64 `json:"exec_ns"`
	KernelNs    int64 `json:"kernel_ns"`
}

// MarshalJSON renders the breakdown with named phase fields.
func (p Phases) MarshalJSON() ([]byte, error) {
	return json.Marshal(phasesJSON{
		AdmissionNs: p[PhaseAdmission].Nanoseconds(),
		LeaseNs:     p[PhaseLease].Nanoseconds(),
		ExecNs:      p[PhaseExec].Nanoseconds(),
		KernelNs:    p[PhaseKernel].Nanoseconds(),
	})
}

// UnmarshalJSON parses the named phase fields.
func (p *Phases) UnmarshalJSON(data []byte) error {
	var j phasesJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	p[PhaseAdmission] = time.Duration(j.AdmissionNs)
	p[PhaseLease] = time.Duration(j.LeaseNs)
	p[PhaseExec] = time.Duration(j.ExecNs)
	p[PhaseKernel] = time.Duration(j.KernelNs)
	return nil
}

// Span is one request's trace: what ran, when, how long end to end, and
// where the time went. The serving tier fills one per query; spans over
// the slow threshold are retained in the SlowLog with their breakdown.
type Span struct {
	// Class labels the request (the serving tier's query class).
	Class string `json:"class"`
	// Detail optionally narrows it (e.g. the subject vertex).
	Detail string `json:"detail,omitempty"`
	// Start is when the request was submitted.
	Start time.Time `json:"start"`
	// Total is the end-to-end latency, queue wait included.
	Total time.Duration `json:"total_ns"`
	// Phases is the per-phase breakdown; the phases sum to Total.
	Phases Phases `json:"phases"`
	// Gen is the lease generation the request was served from.
	Gen uint64 `json:"gen,omitempty"`
	// Err marks a request that failed.
	Err bool `json:"err,omitempty"`
}
