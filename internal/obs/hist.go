package obs

import (
	"math/bits"
	"sync"
	"time"
)

// histSubBits is the sub-bucket resolution of Hist: 2^histSubBits
// sub-buckets per power of two, bounding the quantile error at
// ~1/2^histSubBits of the reported value.
const histSubBits = 3

const histSub = 1 << histSubBits

// histBuckets covers values up to 2^62: histSub exact unit buckets for
// tiny values plus histSub log sub-buckets per power of two above.
const histBuckets = histSub + (63-histSubBits)*histSub

// Hist is a concurrency-safe log-bucketed histogram — the HDR-style
// shape services use for tail latency, sized down to one small fixed
// array. Values below histSub are recorded exactly; above, each power
// of two is split into histSub sub-buckets, so quantiles are accurate
// to ~12%. The unit is the caller's: latency instruments observe
// nanoseconds (Observe), size instruments observe raw int64 values
// (ObserveValue).
type Hist struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	max     int64
	buckets [histBuckets]int64
}

// histBucket maps a value to its bucket index.
func histBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	top := bits.Len64(uint64(v)) - 1 // v in [2^top, 2^top+1), top >= histSubBits
	minor := int(v>>(top-histSubBits)) & (histSub - 1)
	return histSub + (top-histSubBits)*histSub + minor
}

// histValue returns the midpoint of a bucket's value range, the value a
// quantile reports for samples landing in it.
func histValue(b int) int64 {
	if b < histSub {
		return int64(b)
	}
	g := (b - histSub) / histSub
	minor := int64((b - histSub) % histSub)
	top := g + histSubBits
	width := int64(1) << (top - histSubBits)
	lower := int64(1)<<top + minor*width
	return lower + width/2
}

// histLower returns the inclusive lower bound of a bucket's value range.
func histLower(b int) int64 {
	if b < histSub {
		return int64(b)
	}
	g := (b - histSub) / histSub
	minor := int64((b - histSub) % histSub)
	top := g + histSubBits
	width := int64(1) << (top - histSubBits)
	return int64(1)<<top + minor*width
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) { h.ObserveValue(d.Nanoseconds()) }

// ObserveValue records one sample in the histogram's own unit.
func (h *Hist) ObserveValue(v int64) {
	b := histBucket(v)
	h.mu.Lock()
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[b]++
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average recorded latency.
func (h *Hist) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest recorded latency exactly.
func (h *Hist) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Quantile returns the latency at quantile q in [0, 1] (0.5 = p50,
// 0.99 = p99), or 0 when nothing has been recorded. The answer is the
// midpoint of the bucket holding the q-th sample, clamped to the exact
// recorded maximum — a bucket's midpoint can exceed the largest sample
// that landed in it, and an unclamped answer would report p100 > Max.
func (h *Hist) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count-1))
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if n > 0 && seen > rank {
			return time.Duration(min(histValue(b), h.max))
		}
	}
	return time.Duration(h.max)
}

// HistBucket is one non-empty bucket of a histogram snapshot: the
// bucket's inclusive lower bound, the midpoint a quantile reports for
// it, and the sample count that landed in it, all in the histogram's
// own unit.
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Mid   int64 `json:"mid"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time export of a Hist: the aggregate
// counters plus every non-empty bucket in ascending value order. It is
// the exposition and aggregation surface — consumers read quantiles,
// merge shards, or serialize to JSON without reaching into Hist's
// private state.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Quantile returns the value at quantile q of the snapshot, with the
// same bucket-midpoint semantics (and max clamp) as Hist.Quantile.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count-1))
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen > rank {
			return min(b.Mid, s.Max)
		}
	}
	return s.Max
}

// Mean returns the snapshot's average value.
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Snapshot exports the histogram's current state: aggregate counters
// plus every non-empty bucket. The snapshot is an independent copy —
// concurrent observations after it returns do not alter it.
func (h *Hist) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.count, Sum: h.sum, Max: h.max}
	for b, n := range h.buckets {
		if n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Lo: histLower(b), Mid: histValue(b), Count: n})
		}
	}
	return s
}

// Merge folds other's samples into h, bucket by bucket — the
// aggregation path for per-shard or per-rep histograms. Both histograms
// must record the same unit. Merge snapshots other first (its own short
// lock), then folds under h's lock, so the two are never locked at
// once and h.Merge(o) concurrent with o.Merge(h) cannot deadlock;
// observations landing in other between the two steps are simply not
// part of this merge.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other == h {
		return
	}
	var buckets [histBuckets]int64
	other.mu.Lock()
	count, sum, omax := other.count, other.sum, other.max
	buckets = other.buckets
	other.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	h.count += count
	h.sum += sum
	if omax > h.max {
		h.max = omax
	}
	for b, n := range buckets {
		h.buckets[b] += n
	}
	h.mu.Unlock()
}
