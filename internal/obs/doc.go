// Package obs is the zero-dependency observability layer: a Registry
// of named metric instruments every tier of the stack registers into,
// per-query trace Spans with a fixed phase breakdown, and a bounded
// SlowLog ring retaining over-threshold spans. It turns the stack's
// internal state — admission queues, lease generations, kernel cache
// paths, compaction and recovery counters — from post-hoc bench dumps
// into something a running server exposes live.
//
// # Instruments
//
// A Registry holds four instrument kinds, all safe for concurrent use:
//
//   - Counter: a monotonically increasing atomic count (ops applied,
//     loads shed). CounterFunc adapts an existing atomic the owner
//     already maintains.
//   - Gauge: an instantaneous level (queue depth, occupancy).
//     GaugeFunc reads the level on demand at exposition time, so
//     registering one costs nothing on any hot path.
//   - Hist: a log-bucketed histogram (see below) for latency or size
//     distributions, with quantile, snapshot and merge APIs.
//
// Registration is idempotent — asking for an existing name returns the
// same instrument — and hot paths hold pre-resolved instrument handles:
// the map lookup happens once at wiring time, after which an
// observation is one atomic add or one short mutex-guarded bucket
// increment. Exposition (Snapshot, WriteText, MetricsHandler) walks the
// registry without blocking writers beyond those same short sections.
//
// # Naming convention
//
// Instrument names are dot-separated layer.subsystem.metric paths,
// lowercase, with the owning layer first:
//
//	serve.queue.depth            admission queue occupancy (gauge)
//	serve.queue.wait             admission wait distribution (hist, ns)
//	serve.query.degree.latency   per-class end-to-end latency (hist, ns)
//	serve.kernel.path.cached     kernel cache hits (counter)
//	serve.lease.generation       current lease generation (gauge)
//	workload.router.shard0.ops   per-shard ops dispatched (counter)
//	workload.router.batch.size   dispatch batch sizes (hist, ops)
//	graph.journal.occupancy      delta-journal window fill (gauge)
//	dgap.compact.pairs_dropped   tombstone pairs reclaimed (counter)
//
// Histograms observe int64 values whose unit is the instrument's own
// (nanoseconds for latency, ops for sizes); the flat-text exposition
// derives .count/.mean/.p50/.p99/.p999/.max series per histogram in
// that unit.
//
// When several instances of one component register into a shared
// registry — the members of a graph.Cluster, multiple routers — each
// takes a scoped handle via Registry.Instance(label). The label is
// spliced in after the layer segment, so the instance's registrations
// of the same code path land on distinct names instead of colliding on
// (or worse, silently sharing) one instrument:
//
//	dgap.shard0.pma.log_appends  member 0's appends, via Instance("shard0")
//	dgap.shard1.pma.log_appends  member 1's, same registration code
//	workload.a.router.batches    router with Instance "a"
//
// Nested Instance calls compose outermost label first. Instance handles
// write through to the root registry: Names, Snapshot and the HTTP
// exposition see every scoped instrument.
//
// # Spans and the slow-query log
//
// A Span is one request's trace: a class label, a start time, the
// end-to-end duration, and a fixed per-phase breakdown
// (admission wait, lease pin, execution, kernel compute — see Phase).
// The serving tier fills one per query and feeds both the latency
// histograms and the SlowLog: a bounded ring buffer retaining only
// spans over a configurable threshold, newest first, so the
// investigation surface for a tail-latency incident is one bounded,
// always-on structure instead of a debug rebuild.
//
// # Exposition
//
// MetricsHandler serves a registry over HTTP as flat text
// ("name value" lines, histograms expanded into derived series) or as
// JSON (?format=json: the full Snapshot, histogram buckets included).
// Components that own backend-specific counters implement Instrumented
// to register them when a serving tier wires a registry through the
// stack.
package obs
