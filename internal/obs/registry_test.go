package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.ops.total")
	c.Inc()
	c.Add(4)
	if r.Counter("test.ops.total") != c {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	if c.Load() != 5 {
		t.Fatalf("counter = %d", c.Load())
	}
	g := r.Gauge("test.queue.depth")
	g.Set(7)
	g.Add(-2)
	if g.Load() != 5 || r.Gauge("test.queue.depth") != g {
		t.Fatalf("gauge = %d", g.Load())
	}
	h := r.Hist("test.latency")
	h.Observe(3 * time.Millisecond)
	if r.Hist("test.latency") != h {
		t.Fatal("re-registering a hist must return the same instrument")
	}
	level := int64(42)
	r.GaugeFunc("test.live.level", func() int64 { return level })
	r.CounterFunc("test.live.count", func() int64 { return 9 })

	byName := map[string]Metric{}
	for _, m := range r.Snapshot() {
		byName[m.Name] = m
	}
	if len(byName) != 5 {
		t.Fatalf("snapshot has %d metrics: %v", len(byName), r.Names())
	}
	if m := byName["test.ops.total"]; m.Kind != "counter" || m.Value != 5 {
		t.Fatalf("counter metric %+v", m)
	}
	if m := byName["test.queue.depth"]; m.Kind != "gauge" || m.Value != 5 {
		t.Fatalf("gauge metric %+v", m)
	}
	if m := byName["test.live.level"]; m.Kind != "gauge" || m.Value != 42 {
		t.Fatalf("gauge-func metric %+v", m)
	}
	if m := byName["test.live.count"]; m.Kind != "counter" || m.Value != 9 {
		t.Fatalf("counter-func metric %+v", m)
	}
	m := byName["test.latency"]
	if m.Kind != "hist" || m.Hist == nil || m.Hist.Count != 1 {
		t.Fatalf("hist metric %+v", m)
	}
	// Func values are read at exposition time, not registration time.
	level = 77
	for _, m := range r.Snapshot() {
		if m.Name == "test.live.level" && m.Value != 77 {
			t.Fatalf("gauge func read stale value %d", m.Value)
		}
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two kinds must panic")
		}
	}()
	r.Gauge("test.x")
}

// TestRegistryExpositionRoundTrip: every registered instrument appears
// in both the flat-text and the JSON exposition, and the JSON parses
// back into the same snapshot.
func TestRegistryExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b.total").Add(3)
	r.Gauge("a.b.depth").Set(-4)
	r.Hist("a.b.latency").Observe(time.Millisecond)
	r.GaugeFunc("a.c.level", func() int64 { return 11 })

	var text strings.Builder
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.b.total 3", "a.b.depth -4", "a.c.level 11",
		"a.b.latency.count 1", "a.b.latency.p50 ", "a.b.latency.p999 ", "a.b.latency.max "} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text exposition missing %q:\n%s", want, text.String())
		}
	}

	var jsonOut strings.Builder
	if err := r.WriteJSON(&jsonOut); err != nil {
		t.Fatal(err)
	}
	var metrics []Metric
	if err := json.Unmarshal([]byte(jsonOut.String()), &metrics); err != nil {
		t.Fatal(err)
	}
	want := r.Snapshot()
	if len(metrics) != len(want) {
		t.Fatalf("JSON round-trip: %d metrics, want %d", len(metrics), len(want))
	}
	for i := range want {
		if metrics[i].Name != want[i].Name || metrics[i].Kind != want[i].Kind || metrics[i].Value != want[i].Value {
			t.Errorf("metric %d round-tripped to %+v, want %+v", i, metrics[i], want[i])
		}
	}
	if metrics[1].Hist == nil || metrics[1].Hist.Count != 1 || len(metrics[1].Hist.Buckets) != 1 {
		t.Errorf("hist did not round-trip: %+v", metrics[1])
	}
}

// TestRegistryInstanceScoping pins the multi-instance wiring contract:
// an Instance handle rewrites names by inserting its label after the
// leading layer segment, two instances of one component keep distinct
// instruments (the regression: func-backed instruments used to be
// silently overwritten registry-wide), and instance handles share the
// root's storage and exposition.
func TestRegistryInstanceScoping(t *testing.T) {
	r := NewRegistry()
	s0 := r.Instance("shard0")
	s1 := r.Instance("shard1")

	c0 := s0.Counter("dgap.pma.log_appends")
	c1 := s1.Counter("dgap.pma.log_appends")
	if c0 == c1 {
		t.Fatal("two instances share one counter")
	}
	c0.Add(3)
	c1.Add(5)
	if got := r.Counter("dgap.shard0.pma.log_appends").Load(); got != 3 {
		t.Fatalf("dgap.shard0.pma.log_appends = %d, want 3", got)
	}
	if got := r.Counter("dgap.shard1.pma.log_appends").Load(); got != 5 {
		t.Fatalf("dgap.shard1.pma.log_appends = %d, want 5", got)
	}

	// Func-backed instruments: each instance keeps its own function
	// instead of the last registration winning globally.
	s0.GaugeFunc("dgap.graph.vertices", func() int64 { return 10 })
	s1.GaugeFunc("dgap.graph.vertices", func() int64 { return 20 })
	vals := map[string]int64{}
	for _, m := range r.Snapshot() {
		vals[m.Name] = m.Value
	}
	if vals["dgap.shard0.graph.vertices"] != 10 || vals["dgap.shard1.graph.vertices"] != 20 {
		t.Fatalf("per-instance gauge funcs collided: %v", vals)
	}

	// Dot-less names append the label; nested instances compose.
	if s0.Counter("up") != r.Counter("up.shard0") {
		t.Fatal("dot-less name not scoped by suffix")
	}
	nested := s0.Instance("w3")
	if nested.Counter("dgap.rebalances") != r.Counter("dgap.shard0.w3.rebalances") {
		t.Fatal("nested instance scopes did not compose outer-label-first")
	}

	// Instance handles expose the shared root namespace.
	names := s1.Names()
	if len(names) != len(r.Names()) {
		t.Fatalf("instance Names() = %v, root %v", names, r.Names())
	}
	// Kind conflicts are still detected across instance boundaries.
	defer func() {
		if recover() == nil {
			t.Fatal("cross-instance kind conflict did not panic")
		}
	}()
	r.Gauge("dgap.shard0.pma.log_appends")
}
