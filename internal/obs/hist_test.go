package obs

import (
	"math"
	"testing"
	"time"
)

// TestHistBucketRoundTrip: the reported bucket midpoint stays within
// the documented ~12% relative error for values across the range.
func TestHistBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 8, 9, 100, 1023, 4096, 1e6, 123456789, 1e12} {
		b := histBucket(v)
		got := histValue(b)
		if v < histSub {
			if got != v {
				t.Errorf("histValue(histBucket(%d)) = %d, want exact", v, got)
			}
			continue
		}
		if err := math.Abs(float64(got-v)) / float64(v); err > 0.125 {
			t.Errorf("histValue(histBucket(%d)) = %d, relative error %.3f", v, got, err)
		}
		if lo := histLower(b); lo > v || histLower(b+1) <= v {
			t.Errorf("histLower: %d not in [%d, %d)", v, lo, histLower(b+1))
		}
	}
	// Buckets are monotone in value.
	prev := -1
	for _, v := range []int64{0, 1, 5, 8, 12, 16, 31, 32, 1000, 1e6, 1e9} {
		b := histBucket(v)
		if b < prev {
			t.Fatalf("histBucket(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 1..1000 microseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.99, 990 * time.Microsecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if err := math.Abs(float64(got-c.want)) / float64(c.want); err > 0.15 {
			t.Errorf("q%.2f = %v, want ~%v (err %.3f)", c.q, got, c.want, err)
		}
	}
	if h.Max() != time.Millisecond {
		t.Errorf("max = %v, want 1ms", h.Max())
	}
	if mean := h.Mean(); mean < 450*time.Microsecond || mean > 550*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", mean)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles not monotone")
	}
}

// TestQuantileClampedToMax: a bucket's midpoint can exceed the largest
// sample that landed in it, so the top quantile must clamp to the
// exact recorded maximum — p100 ≤ Max always.
func TestQuantileClampedToMax(t *testing.T) {
	var h Hist
	// 2^20+1 ns sits at the bottom of its bucket: the midpoint
	// (2^20 + 2^16) overshoots the true maximum by ~6%.
	v := time.Duration(1<<20 + 1)
	if mid := histValue(histBucket(v.Nanoseconds())); mid <= v.Nanoseconds() {
		t.Fatalf("test premise broken: bucket midpoint %d does not exceed sample %d", mid, v)
	}
	h.Observe(v)
	h.Observe(v / 4)
	if p100, max := h.Quantile(1.0), h.Max(); p100 > max {
		t.Errorf("Quantile(1.0) = %v exceeds Max() = %v", p100, max)
	}
	if got := h.Quantile(1.0); got != v {
		t.Errorf("Quantile(1.0) = %v, want the exact max %v", got, v)
	}
	// Lower quantiles stay bucket-midpoint answers.
	if h.Quantile(0) >= v/2 {
		t.Errorf("Quantile(0) = %v looks clamped to the max", h.Quantile(0))
	}
}

// TestHistSnapshot: the snapshot reproduces the histogram's aggregates
// and quantiles without access to private state, and is an independent
// copy.
func TestHistSnapshot(t *testing.T) {
	var h Hist
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	for i := 1; i <= 1000; i++ {
		h.ObserveValue(int64(i) * 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Max != 1e6 || s.Sum != h.Count()*s.Mean() {
		t.Fatalf("snapshot aggregates: %+v", s)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := s.Quantile(q), h.Quantile(q).Nanoseconds(); got != want {
			t.Errorf("snapshot q%.2f = %d, hist says %d", q, got, want)
		}
	}
	var total int64
	for i, b := range s.Buckets {
		if b.Count <= 0 {
			t.Fatalf("bucket %d empty in snapshot: %+v", i, b)
		}
		if i > 0 && b.Lo <= s.Buckets[i-1].Lo {
			t.Fatalf("buckets not ascending at %d: %+v", i, s.Buckets)
		}
		if b.Mid < b.Lo {
			t.Fatalf("bucket %d midpoint below lower bound: %+v", i, b)
		}
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
	// Snapshot is a copy: later observations don't alter it.
	h.ObserveValue(1 << 40)
	if s.Max == h.Max().Nanoseconds() {
		t.Fatal("snapshot aliased live histogram state")
	}
}

// TestHistMerge: merging two histograms equals observing both sample
// sets into one.
func TestHistMerge(t *testing.T) {
	var a, b, both Hist
	for i := 1; i <= 500; i++ {
		v := int64(i) * 977
		a.ObserveValue(v)
		both.ObserveValue(v)
	}
	for i := 1; i <= 300; i++ {
		v := int64(i) * 104729
		b.ObserveValue(v)
		both.ObserveValue(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Max() != both.Max() || a.Mean() != both.Mean() {
		t.Fatalf("merge aggregates: count %d/%d max %v/%v mean %v/%v",
			a.Count(), both.Count(), a.Max(), both.Max(), a.Mean(), both.Mean())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.999} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("merge q%.3f = %v, want %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
	// Merging from an empty or self histogram is a no-op.
	before := a.Snapshot()
	var empty Hist
	a.Merge(&empty)
	a.Merge(&a)
	a.Merge(nil)
	if after := a.Snapshot(); after.Count != before.Count || after.Sum != before.Sum {
		t.Fatalf("no-op merges changed state: %+v vs %+v", after, before)
	}
}
