package graphone

import (
	"testing"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

func TestInsertAndSnapshot(t *testing.T) {
	g, err := New(pmem.New(64<<20), 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	edges := graphgen.Uniform(8, 8, 41)
	for _, e := range edges {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	s := g.Snapshot()
	if s.NumEdges() != int64(len(edges)) {
		t.Errorf("NumEdges = %d", s.NumEdges())
	}
	if graph.CountEdges(s) != int64(len(edges)) {
		t.Error("iteration count mismatch")
	}
}

func TestDurableLogFlushInterval(t *testing.T) {
	a := pmem.New(64 << 20)
	g, err := New(a, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	a.ResetStats()
	for i := 0; i < 31; i++ {
		if err := g.InsertEdge(graph.V(i%8), graph.V((i+1)%8)); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().MediaBytes; got != 0 {
		t.Errorf("PM written before the interval: %d bytes", got)
	}
	if err := g.InsertEdge(0, 1); err != nil { // 32nd: flush fires
		t.Fatal(err)
	}
	if got := a.Stats().MediaBytes; got == 0 {
		t.Error("no PM write at the flush interval")
	}
}

// TestDataLossWindow documents GraphOne-FD's weaker durability (the
// paper's criticism): edges inserted after the last flush are absent
// from the crash image.
func TestDataLossWindow(t *testing.T) {
	a := pmem.New(64 << 20)
	g, err := New(a, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ { // one flush at 16; 4 at risk
		if err := g.InsertEdge(graph.V(i%8), graph.V((i+1)%8)); err != nil {
			t.Fatal(err)
		}
	}
	img := a.Crash()
	durable := img.Stats() // media content only
	_ = durable
	// 16 edges * 8 bytes were flushed; the trailing 4 are lost.
	persisted := 0
	for off := pmem.Off(0); off < pmem.Off(img.Size()); off += 8 {
		if off >= pmem.SuperblockSize && img.ReadU64(off) != 0 {
			persisted++
		}
	}
	if persisted < 16 || persisted > 17 {
		t.Errorf("crash image holds ~%d log records, want 16", persisted)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFrozen(t *testing.T) {
	g, err := New(pmem.New(64<<20), 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := g.InsertEdge(1, graph.V(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	s := g.Snapshot()
	for i := 0; i < 100; i++ {
		if err := g.InsertEdge(1, graph.V(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Degree(1) != 10 {
		t.Errorf("snapshot degree = %d, want 10", s.Degree(1))
	}
}
