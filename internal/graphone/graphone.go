// Package graphone implements the GraphOne-FD baseline of the paper's
// evaluation: GraphOne's hybrid store — an append-only edge list for
// ingestion plus an adjacency list for analysis — ported to persistent
// memory the way the paper ports it ("Flushing-DRAM"): both structures
// live in DRAM for speed, and the edge list is flushed to a PM durable
// log every 2^16 insertions. Edges between flushes can be lost on a
// crash, the weaker durability the paper calls out; in exchange,
// ingestion is a DRAM append and analysis runs at DRAM speed over the
// adjacency list (which is why GraphOne wins BFS in Figure 8 and loses
// whole-graph kernels like PageRank to DGAP's CSR locality).
package graphone

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"dgap/internal/chunkadj"
	"dgap/internal/graph"
	"dgap/internal/pmem"
)

// DefaultFlushInterval is the paper's 2^16-edge durability interval.
const DefaultFlushInterval = 1 << 16

// IngestCPUCost models GraphOne's per-edge ingestion-path software
// overhead (atomic edge-array claim, per-vertex degree bookkeeping,
// snapshot machinery, adjacency-unit management). The Go reimplementation
// of the hot path is far leaner than the original C++ engine, so this
// constant is calibrated against GraphOne-FD's published single-thread
// throughput (~1.2 MEPS in the paper's Figure 6); DESIGN.md records the
// calibration.
var IngestCPUCost = 750 * time.Nanosecond

// Graph is a GraphOne-FD store.
type Graph struct {
	a *pmem.Arena

	mu       sync.RWMutex
	adj      *chunkadj.Adj // DRAM adjacency list (chained units, as in GraphOne)
	elog     []graph.Edge  // DRAM edge list pending archive to PM
	interval int

	pmHead pmem.Off // PM durable log write cursor
	pmCap  pmem.Off
	edges  int64
}

// New creates a GraphOne-FD store flushing every interval edges.
func New(a *pmem.Arena, nVert, interval int) (*Graph, error) {
	if interval < 1 {
		interval = DefaultFlushInterval
	}
	// Pre-allocate a generous PM log region; grows by re-allocation.
	capBytes := uint64(1 << 20)
	off, err := a.AllocRegion("graphone: durable log", capBytes, pmem.CacheLineSize)
	if err != nil {
		return nil, err
	}
	return &Graph{
		a:        a,
		adj:      chunkadj.New(nVert),
		interval: interval,
		pmHead:   off,
		pmCap:    off + capBytes,
	}, nil
}

// Name implements graph.System.
func (g *Graph) Name() string { return "GraphOne-FD" }

// InsertEdge appends to the DRAM edge list and adjacency list; every
// interval edges the pending batch is flushed to the PM durable log.
func (g *Graph) InsertEdge(src, dst graph.V) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n := int(max(src, dst)) + 1; n > g.adj.NumVertices() {
		g.adj.Ensure(n)
	}
	g.adj.Append(src, dst)
	g.elog = append(g.elog, graph.Edge{Src: src, Dst: dst})
	g.edges++
	busy(IngestCPUCost)
	if len(g.elog) >= g.interval {
		return g.flushLocked()
	}
	return nil
}

// InsertBatch implements graph.BatchWriter: one ingestion-lock
// acquisition for the whole batch, per-source chunk fills through
// chunkadj.AppendRun (stream order preserved within each source), and
// one calibrated CPU-cost charge for the batch's total software work.
// The interval check runs at batch granularity: one durable-log flush
// covers everything pending, so batches larger than `interval` flush
// once per batch instead of once per interval — the at-risk window on a
// crash grows to a whole batch, a weaker guarantee GraphOne-FD's
// flush-every-2^16 design already accepts for single edges.
func (g *Graph) InsertBatch(edges []graph.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	maxID := graph.V(0)
	for _, e := range edges {
		maxID = max(maxID, e.Src, e.Dst)
	}
	if n := int(maxID) + 1; n > g.adj.NumVertices() {
		g.adj.Ensure(n)
	}
	for _, run := range graph.GroupBySrc(edges) {
		g.adj.AppendRun(run.Src, run.Dsts)
	}
	g.elog = append(g.elog, edges...)
	g.edges += int64(len(edges))
	busy(time.Duration(len(edges)) * IngestCPUCost)
	if len(g.elog) >= g.interval {
		return g.flushLocked()
	}
	return nil
}

// busy spins for the calibrated software-path cost (time.Sleep cannot
// express sub-microsecond delays).
func busy(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// delTag marks a durable-log record as a deletion: vertex ids stay
// below 1<<30, so the top bit of the Src word is free. The tag is set
// when the record is staged and flows into the PM log bytes unchanged.
const delTag = graph.V(1) << 31

// DeleteEdge implements graph.Deleter: the DRAM adjacency appends a
// tombstone (chunkadj.Delete) and the deletion is staged into the
// durable edge list with the delete tag — same weak FD durability as
// inserts (deletes since the last flush are lost on a crash).
func (g *Graph) DeleteEdge(src, dst graph.V) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if int(src) >= g.adj.NumVertices() || !g.adj.Delete(src, dst) {
		return fmt.Errorf("graphone: delete %d->%d: %w", src, dst, graph.ErrEdgeNotFound)
	}
	g.elog = append(g.elog, graph.Edge{Src: src | delTag, Dst: dst})
	g.edges--
	busy(IngestCPUCost)
	if len(g.elog) >= g.interval {
		return g.flushLocked()
	}
	return nil
}

// DeleteBatch implements graph.BatchDeleter: one ingestion-lock
// acquisition for the whole batch, applied in stream order (so a
// failure reports the exact index via graph.BatchError, with the
// preceding prefix applied), one calibrated CPU-cost charge, and at
// most one durable-log flush at the batch boundary.
func (g *Graph) DeleteBatch(edges []graph.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, e := range edges {
		if int(e.Src) >= g.adj.NumVertices() || !g.adj.Delete(e.Src, e.Dst) {
			return &graph.BatchError{Index: i, Edge: e,
				Err: fmt.Errorf("graphone: %w", graph.ErrEdgeNotFound)}
		}
		g.elog = append(g.elog, graph.Edge{Src: e.Src | delTag, Dst: e.Dst})
		g.edges--
	}
	busy(time.Duration(len(edges)) * IngestCPUCost)
	if len(g.elog) >= g.interval {
		return g.flushLocked()
	}
	return nil
}

// SpaceBytes reports the DRAM adjacency footprint (tombstones included
// — GraphOne never reclaims them), the churn benchmark's space metric.
func (g *Graph) SpaceBytes() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.adj.SpaceBytes()
}

// Flush forces pending edges to the PM durable log.
func (g *Graph) Flush() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flushLocked()
}

func (g *Graph) flushLocked() error {
	if len(g.elog) == 0 {
		return nil
	}
	need := uint64(len(g.elog)) * 8
	if g.pmHead+need > g.pmCap {
		capBytes := need * 2
		if capBytes < 1<<20 {
			capBytes = 1 << 20
		}
		off, err := g.a.AllocRegion("graphone: durable log", capBytes, pmem.CacheLineSize)
		if err != nil {
			return err
		}
		g.pmHead, g.pmCap = off, off+capBytes
	}
	buf := make([]byte, need)
	for i, e := range g.elog {
		binary.LittleEndian.PutUint32(buf[i*8:], e.Src)
		binary.LittleEndian.PutUint32(buf[i*8+4:], e.Dst)
	}
	g.a.WriteBytes(g.pmHead, buf)
	g.a.Flush(g.pmHead, need)
	g.a.Fence()
	g.pmHead += need
	g.elog = g.elog[:0]
	return nil
}

// Snapshot freezes the chunked adjacency view (GraphOne serves analysis
// from its DRAM adjacency units). The returned snapshot supports the
// graph.BulkSnapshot read path through chunkadj.
func (g *Graph) Snapshot() graph.Snapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.adj.Snapshot()
}
