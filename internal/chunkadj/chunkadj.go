// Package chunkadj provides the chained-chunk DRAM adjacency structure
// that GraphOne and XPGraph build their analysis views from: per vertex,
// a linked list of fixed-size edge chunks ("units"). Compared to CSR's
// single contiguous run, iteration hops between chunks scattered across
// the heap — the cache-locality gap that makes whole-graph kernels
// (PageRank, CC) slower on adjacency-list systems even when the data is
// in DRAM, while per-vertex access (BFS) stays cheap. Both effects are
// central to Figures 7 and 8 of the DGAP paper.
package chunkadj

import "dgap/internal/graph"

// ChunkEdges is the number of edges per chunk (GraphOne-style unit).
const ChunkEdges = 62

const chunkWords = ChunkEdges + 2 // [next][count][edges...]

// Adj is a growable chunked adjacency list. The chunk pool is a single
// slice indexed by chunk number; chunks are appended and never moved,
// but — deliberately — consecutive chunks of one vertex are interleaved
// with other vertices' chunks, reproducing the heap scatter of the
// original allocators.
type Adj struct {
	pool   []uint32
	heads  []int32 // first chunk per vertex, -1 = none
	tails  []int32
	counts []int64 // edges per vertex
	edges  int64
}

// New creates an adjacency over nVert vertices.
func New(nVert int) *Adj {
	a := &Adj{heads: make([]int32, nVert), tails: make([]int32, nVert), counts: make([]int64, nVert)}
	for i := range a.heads {
		a.heads[i] = -1
		a.tails[i] = -1
	}
	return a
}

// Ensure grows the vertex table to n.
func (a *Adj) Ensure(n int) {
	for len(a.heads) < n {
		a.heads = append(a.heads, -1)
		a.tails = append(a.tails, -1)
		a.counts = append(a.counts, 0)
	}
}

// NumVertices returns the vertex-table size.
func (a *Adj) NumVertices() int { return len(a.heads) }

// NumEdges returns the total edge count.
func (a *Adj) NumEdges() int64 { return a.edges }

// Count returns one vertex's edge count.
func (a *Adj) Count(v graph.V) int64 { return a.counts[v] }

// Append adds an edge to v's chain.
func (a *Adj) Append(v graph.V, dst graph.V) {
	fill := a.counts[v] % ChunkEdges
	if a.tails[v] < 0 || (fill == 0 && a.counts[v] > 0) {
		c := a.newChunk()
		if a.tails[v] < 0 {
			a.heads[v] = c
		} else {
			a.pool[int(a.tails[v])*chunkWords] = uint32(c)
		}
		a.tails[v] = c
	}
	base := int(a.tails[v]) * chunkWords
	a.pool[base+2+int(fill)] = dst
	a.pool[base+1] = uint32(fill + 1)
	a.counts[v]++
	a.edges++
}

// AppendRun appends a run of destinations to v's chain, filling each
// tail chunk with one copy instead of a tail lookup and count store per
// edge — the DRAM analogue of the persistent backends' batched block
// fills. Equivalent to calling Append(v, d) for each d in order.
func (a *Adj) AppendRun(v graph.V, dsts []graph.V) {
	for len(dsts) > 0 {
		fill := a.counts[v] % ChunkEdges
		if a.tails[v] < 0 || (fill == 0 && a.counts[v] > 0) {
			c := a.newChunk()
			if a.tails[v] < 0 {
				a.heads[v] = c
			} else {
				a.pool[int(a.tails[v])*chunkWords] = uint32(c)
			}
			a.tails[v] = c
			fill = 0
		}
		base := int(a.tails[v]) * chunkWords
		n := min(int64(ChunkEdges)-fill, int64(len(dsts)))
		copy(a.pool[base+2+int(fill):base+2+int(fill)+int(n)], dsts[:n])
		a.pool[base+1] = uint32(fill + n)
		a.counts[v] += n
		a.edges += n
		dsts = dsts[n:]
	}
}

func (a *Adj) newChunk() int32 {
	idx := int32(len(a.pool) / chunkWords)
	a.pool = append(a.pool, make([]uint32, chunkWords)...)
	base := int(idx) * chunkWords
	a.pool[base] = 0 // no next (chunk 0 is never a successor: it is a head or unused)
	return idx
}

// Snapshot freezes the current counts; the chunk pool is append-only so
// a count bounds exactly which edges are visible. The pool slice header
// is captured too (appends may reallocate the backing array; the
// captured header keeps the old one alive and consistent).
func (a *Adj) Snapshot() *Snapshot {
	s := &Snapshot{
		pool:   a.pool,
		heads:  append([]int32(nil), a.heads...),
		counts: append([]int64(nil), a.counts...),
		edges:  a.edges,
	}
	return s
}

// Snapshot is a frozen view of an Adj.
type Snapshot struct {
	pool   []uint32
	heads  []int32
	counts []int64
	edges  int64
}

// NumVertices implements graph.Snapshot.
func (s *Snapshot) NumVertices() int { return len(s.heads) }

// NumEdges implements graph.Snapshot.
func (s *Snapshot) NumEdges() int64 { return s.edges }

// Degree implements graph.Snapshot.
func (s *Snapshot) Degree(v graph.V) int { return int(s.counts[v]) }

// Neighbors walks v's chunk chain.
func (s *Snapshot) Neighbors(v graph.V, fn func(graph.V) bool) {
	remaining := s.counts[v]
	c := s.heads[v]
	for c >= 0 && remaining > 0 {
		base := int(c) * chunkWords
		n := int64(ChunkEdges)
		if n > remaining {
			n = remaining
		}
		for i := int64(0); i < n; i++ {
			if !fn(graph.V(s.pool[base+2+int(i)])) {
				return
			}
		}
		remaining -= n
		next := s.pool[base]
		if next == 0 {
			return
		}
		c = int32(next)
	}
}

// CopyNeighbors implements graph.BulkSnapshot for the chunked adjacency
// (and therefore for the GraphOne and XPGraph snapshots built on it):
// each chunk's edge words are appended with one tight copy loop instead
// of a callback per edge.
func (s *Snapshot) CopyNeighbors(v graph.V, buf []graph.V) []graph.V {
	remaining := s.counts[v]
	c := s.heads[v]
	for c >= 0 && remaining > 0 {
		base := int(c) * chunkWords
		n := min(int64(ChunkEdges), remaining)
		buf = append(buf, s.pool[base+2:base+2+int(n)]...)
		remaining -= n
		next := s.pool[base]
		if next == 0 {
			return buf
		}
		c = int32(next)
	}
	return buf
}
