// Package chunkadj provides the chained-chunk DRAM adjacency structure
// that GraphOne and XPGraph build their analysis views from: per vertex,
// a linked list of fixed-size edge chunks ("units"). Compared to CSR's
// single contiguous run, iteration hops between chunks scattered across
// the heap — the cache-locality gap that makes whole-graph kernels
// (PageRank, CC) slower on adjacency-list systems even when the data is
// in DRAM, while per-vertex access (BFS) stays cheap. Both effects are
// central to Figures 7 and 8 of the DGAP paper.
//
// Deletion is append-only, exactly like DGAP's: Delete appends a
// tombstone word (the destination with TombBit set) to the vertex's
// chain, so existing snapshots — whose visibility is a per-vertex
// physical-word prefix — keep seeing the edge, and snapshots taken
// afterwards cancel one earlier occurrence per tombstone. In-place
// removal is impossible here: old snapshots share the chunk pool's
// backing array, so mutating a word would rewrite their history.
package chunkadj

import "dgap/internal/graph"

// ChunkEdges is the number of edges per chunk (GraphOne-style unit).
const ChunkEdges = 62

const chunkWords = ChunkEdges + 2 // [next][count][edges...]

// TombBit marks a chunk word as a tombstone cancelling one earlier
// occurrence of the same destination — the shared graph.TombBit
// encoding, re-exported for the backends built on this structure.
const TombBit = graph.TombBit

const idMask = TombBit - 1

// Adj is a growable chunked adjacency list. The chunk pool is a single
// slice indexed by chunk number; chunks are appended and never moved,
// but — deliberately — consecutive chunks of one vertex are interleaved
// with other vertices' chunks, reproducing the heap scatter of the
// original allocators.
type Adj struct {
	pool   []uint32
	heads  []int32 // first chunk per vertex, -1 = none
	tails  []int32
	counts []int64 // physical words per vertex (edges + tombstones)
	lives  []int64 // live out-degree per vertex
	tombs  []int32 // tombstone words per vertex
	edges  int64   // live edges in total
}

// New creates an adjacency over nVert vertices.
func New(nVert int) *Adj {
	a := &Adj{
		heads:  make([]int32, nVert),
		tails:  make([]int32, nVert),
		counts: make([]int64, nVert),
		lives:  make([]int64, nVert),
		tombs:  make([]int32, nVert),
	}
	for i := range a.heads {
		a.heads[i] = -1
		a.tails[i] = -1
	}
	return a
}

// Ensure grows the vertex table to n.
func (a *Adj) Ensure(n int) {
	for len(a.heads) < n {
		a.heads = append(a.heads, -1)
		a.tails = append(a.tails, -1)
		a.counts = append(a.counts, 0)
		a.lives = append(a.lives, 0)
		a.tombs = append(a.tombs, 0)
	}
}

// NumVertices returns the vertex-table size.
func (a *Adj) NumVertices() int { return len(a.heads) }

// NumEdges returns the live edge count.
func (a *Adj) NumEdges() int64 { return a.edges }

// Count returns one vertex's physical word count (edges + tombstones).
func (a *Adj) Count(v graph.V) int64 { return a.counts[v] }

// Live returns one vertex's live out-degree.
func (a *Adj) Live(v graph.V) int64 { return a.lives[v] }

// SpaceBytes returns the chunk pool's footprint — the number the churn
// benchmark reports as post-churn space (tombstones included: this
// structure never reclaims them).
func (a *Adj) SpaceBytes() int64 { return int64(len(a.pool)) * 4 }

// appendWord appends one raw word (edge or tombstone) to v's chain,
// allocating and linking a chunk when the tail is full.
func (a *Adj) appendWord(v graph.V, w uint32) {
	fill := a.counts[v] % ChunkEdges
	if a.tails[v] < 0 || (fill == 0 && a.counts[v] > 0) {
		c := a.newChunk()
		if a.tails[v] < 0 {
			a.heads[v] = c
		} else {
			a.pool[int(a.tails[v])*chunkWords] = uint32(c)
		}
		a.tails[v] = c
	}
	base := int(a.tails[v]) * chunkWords
	a.pool[base+2+int(fill)] = w
	a.pool[base+1] = uint32(fill + 1)
	a.counts[v]++
}

// Append adds an edge to v's chain.
func (a *Adj) Append(v graph.V, dst graph.V) {
	a.appendWord(v, uint32(dst))
	a.lives[v]++
	a.edges++
}

// AppendRun appends a run of destinations to v's chain, filling each
// tail chunk with one copy instead of a tail lookup and count store per
// edge — the DRAM analogue of the persistent backends' batched block
// fills. Equivalent to calling Append(v, d) for each d in order.
func (a *Adj) AppendRun(v graph.V, dsts []graph.V) {
	for len(dsts) > 0 {
		fill := a.counts[v] % ChunkEdges
		if a.tails[v] < 0 || (fill == 0 && a.counts[v] > 0) {
			c := a.newChunk()
			if a.tails[v] < 0 {
				a.heads[v] = c
			} else {
				a.pool[int(a.tails[v])*chunkWords] = uint32(c)
			}
			a.tails[v] = c
			fill = 0
		}
		base := int(a.tails[v]) * chunkWords
		n := min(int64(ChunkEdges)-fill, int64(len(dsts)))
		copy(a.pool[base+2+int(fill):base+2+int(fill)+int(n)], dsts[:n])
		a.pool[base+1] = uint32(fill + n)
		a.counts[v] += n
		a.lives[v] += n
		a.edges += n
		dsts = dsts[n:]
	}
}

// Delete cancels one live (v, dst) edge by appending a tombstone word.
// It returns false — appending nothing — when no live copy exists: the
// chain's edge occurrences of dst, minus its tombstones, must be
// positive.
func (a *Adj) Delete(v graph.V, dst graph.V) bool {
	if int(v) >= len(a.heads) || a.lives[v] <= 0 {
		return false
	}
	var match int64
	a.scan(v, a.counts[v], func(w uint32) bool {
		if w&idMask == uint32(dst) {
			if w&TombBit != 0 {
				match--
			} else {
				match++
			}
		}
		return true
	})
	if match <= 0 {
		return false
	}
	a.appendWord(v, uint32(dst)|TombBit)
	a.lives[v]--
	a.tombs[v]++
	a.edges--
	return true
}

// scan walks the first n physical words of v's chain.
func (a *Adj) scan(v graph.V, n int64, fn func(w uint32) bool) {
	c := a.heads[v]
	for c >= 0 && n > 0 {
		base := int(c) * chunkWords
		k := min(int64(ChunkEdges), n)
		for i := int64(0); i < k; i++ {
			if !fn(a.pool[base+2+int(i)]) {
				return
			}
		}
		n -= k
		next := a.pool[base]
		if next == 0 {
			return
		}
		c = int32(next)
	}
}

func (a *Adj) newChunk() int32 {
	idx := int32(len(a.pool) / chunkWords)
	a.pool = append(a.pool, make([]uint32, chunkWords)...)
	base := int(idx) * chunkWords
	a.pool[base] = 0 // no next (chunk 0 is never a successor: it is a head or unused)
	return idx
}

// Snapshot freezes the current counts; the chunk pool is append-only so
// a count bounds exactly which words are visible. The pool slice header
// is captured too (appends may reallocate the backing array; the
// captured header keeps the old one alive and consistent).
func (a *Adj) Snapshot() *Snapshot {
	s := &Snapshot{
		pool:   a.pool,
		heads:  append([]int32(nil), a.heads...),
		counts: append([]int64(nil), a.counts...),
		lives:  append([]int64(nil), a.lives...),
		tombs:  append([]int32(nil), a.tombs...),
		edges:  a.edges,
	}
	return s
}

// Snapshot is a frozen view of an Adj.
type Snapshot struct {
	pool   []uint32
	heads  []int32
	counts []int64
	lives  []int64
	tombs  []int32
	edges  int64
}

// NumVertices implements graph.Snapshot.
func (s *Snapshot) NumVertices() int { return len(s.heads) }

// NumEdges implements graph.Snapshot.
func (s *Snapshot) NumEdges() int64 { return s.edges }

// Degree implements graph.Snapshot (live out-degree).
func (s *Snapshot) Degree(v graph.V) int { return int(s.lives[v]) }

// Neighbors walks v's chunk chain, filtering cancelled pairs when the
// vertex carries tombstones.
func (s *Snapshot) Neighbors(v graph.V, fn func(graph.V) bool) {
	if s.tombs[v] != 0 {
		for _, d := range s.filtered(v, nil) {
			if !fn(d) {
				return
			}
		}
		return
	}
	remaining := s.counts[v]
	c := s.heads[v]
	for c >= 0 && remaining > 0 {
		base := int(c) * chunkWords
		n := int64(ChunkEdges)
		if n > remaining {
			n = remaining
		}
		for i := int64(0); i < n; i++ {
			if !fn(graph.V(s.pool[base+2+int(i)])) {
				return
			}
		}
		remaining -= n
		next := s.pool[base]
		if next == 0 {
			return
		}
		c = int32(next)
	}
}

// CopyNeighbors implements graph.BulkSnapshot for the chunked adjacency
// (and therefore for the GraphOne and XPGraph snapshots built on it):
// each chunk's edge words are appended with one tight copy loop instead
// of a callback per edge. Vertices with tombstones take the filtering
// path.
func (s *Snapshot) CopyNeighbors(v graph.V, buf []graph.V) []graph.V {
	if s.tombs[v] != 0 {
		return s.filtered(v, buf)
	}
	remaining := s.counts[v]
	c := s.heads[v]
	for c >= 0 && remaining > 0 {
		base := int(c) * chunkWords
		n := min(int64(ChunkEdges), remaining)
		buf = append(buf, s.pool[base+2:base+2+int(n)]...)
		remaining -= n
		next := s.pool[base]
		if next == 0 {
			return buf
		}
		c = int32(next)
	}
	return buf
}

// filtered appends v's live destinations to buf: the visible physical
// prefix is staged raw, then compacted by the shared kill-table pass
// (graph.FilterTombs).
func (s *Snapshot) filtered(v graph.V, buf []graph.V) []graph.V {
	base := len(buf)
	remaining := s.counts[v]
	c := s.heads[v]
	for c >= 0 && remaining > 0 {
		cb := int(c) * chunkWords
		n := min(int64(ChunkEdges), remaining)
		buf = append(buf, s.pool[cb+2:cb+2+int(n)]...)
		remaining -= n
		next := s.pool[cb]
		if next == 0 {
			break
		}
		c = int32(next)
	}
	return graph.FilterTombs(buf, base)
}
