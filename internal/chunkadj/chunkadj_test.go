package chunkadj

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgap/internal/graph"
)

func TestAppendAndIterate(t *testing.T) {
	a := New(4)
	want := []graph.V{}
	for i := 0; i < 200; i++ { // spans several chunks
		a.Append(1, graph.V(i))
		want = append(want, graph.V(i))
	}
	s := a.Snapshot()
	var got []graph.V
	s.Neighbors(1, func(d graph.V) bool { got = append(got, d); return true })
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %d, want %d", i, got[i], want[i])
		}
	}
	if s.Degree(1) != 200 || s.NumEdges() != 200 {
		t.Error("counts wrong")
	}
}

func TestInterleavedVerticesKeepOrder(t *testing.T) {
	a := New(3)
	for i := 0; i < 150; i++ {
		a.Append(graph.V(i%3), graph.V(i))
	}
	s := a.Snapshot()
	for v := graph.V(0); v < 3; v++ {
		prev := -1
		s.Neighbors(v, func(d graph.V) bool {
			if int(d) <= prev {
				t.Fatalf("vertex %d: order broken at %d", v, d)
			}
			prev = int(d)
			return true
		})
	}
}

func TestSnapshotFrozenUnderAppends(t *testing.T) {
	a := New(2)
	for i := 0; i < 100; i++ {
		a.Append(0, graph.V(i))
	}
	s := a.Snapshot()
	for i := 100; i < 400; i++ { // grows the pool (reallocation)
		a.Append(0, graph.V(i))
	}
	n := 0
	s.Neighbors(0, func(d graph.V) bool {
		if int(d) != n {
			t.Fatalf("snapshot drifted at %d", n)
		}
		n++
		return true
	})
	if n != 100 {
		t.Fatalf("snapshot saw %d edges, want 100", n)
	}
}

func TestEnsureGrows(t *testing.T) {
	a := New(1)
	a.Ensure(10)
	a.Append(9, 1)
	if a.Count(9) != 1 {
		t.Error("append after Ensure failed")
	}
	a.Ensure(5) // shrink request is a no-op
	if a.NumVertices() != 10 {
		t.Errorf("NumVertices = %d", a.NumVertices())
	}
}

func TestEarlyStop(t *testing.T) {
	a := New(1)
	for i := 0; i < 100; i++ {
		a.Append(0, graph.V(i))
	}
	n := 0
	a.Snapshot().Neighbors(0, func(graph.V) bool { n++; return n < 70 })
	if n != 70 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestPropertyMatchesReference(t *testing.T) {
	f := func(ops []uint16) bool {
		const V = 8
		a := New(V)
		ref := make([][]graph.V, V)
		for _, o := range ops {
			v := graph.V(o % V)
			d := graph.V(o / V)
			a.Append(v, d)
			ref[v] = append(ref[v], d)
		}
		s := a.Snapshot()
		for v := 0; v < V; v++ {
			var got []graph.V
			s.Neighbors(graph.V(v), func(d graph.V) bool { got = append(got, d); return true })
			if len(got) != len(ref[v]) {
				return false
			}
			for i := range got {
				if got[i] != ref[v][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAppendRunMatchesAppend(t *testing.T) {
	const V = 24
	one, run := New(V), New(V)
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 50; round++ {
		v := graph.V(rng.Intn(V))
		n := rng.Intn(2*ChunkEdges + 3)
		dsts := make([]graph.V, n)
		for i := range dsts {
			dsts[i] = graph.V(rng.Intn(V))
		}
		for _, d := range dsts {
			one.Append(v, d)
		}
		run.AppendRun(v, dsts)
	}
	if one.NumEdges() != run.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", one.NumEdges(), run.NumEdges())
	}
	so, sr := one.Snapshot(), run.Snapshot()
	for v := 0; v < V; v++ {
		var a, b []graph.V
		so.Neighbors(graph.V(v), func(d graph.V) bool { a = append(a, d); return true })
		sr.Neighbors(graph.V(v), func(d graph.V) bool { b = append(b, d); return true })
		if len(a) != len(b) {
			t.Fatalf("vertex %d: %d vs %d edges", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d differs at %d: %v vs %v", v, i, a, b)
			}
		}
	}
}
