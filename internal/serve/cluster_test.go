package serve

import (
	"testing"

	"dgap/internal/graph"
)

func buildCluster(t *testing.T, shards, nVert, nEdges int) *graph.Cluster {
	t.Helper()
	members := make([]graph.System, shards)
	for i := range members {
		members[i] = buildDGAP(t, nVert, nEdges)
	}
	c, err := graph.NewCluster(members, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestServeOverCluster opens a graph.Cluster like any Store: mixed
// ingest through IngestOps lands routed per shard, leases pin composite
// views whose generation vector keys the kernel cache, queries of every
// class answer from the composite, and the registry carries per-shard
// backend instruments plus the cluster's own dispatch series.
func TestServeOverCluster(t *testing.T) {
	const nVert = 96
	c := buildCluster(t, 2, nVert, 8192)
	srv, err := New(c, Config{
		Workers:           2,
		IngestShards:      2,
		MaxStalenessEdges: 1,
		MaxStalenessAge:   -1,
		DeltaWindow:       1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Mirrored mixed churn: whole pairs per batch, so every lease must
	// see symmetric adjacency.
	var ops []graph.Op
	for i := 0; i < 400; i++ {
		u, v := graph.V(i%nVert), graph.V((i*31+7)%nVert)
		if u == v {
			v = (v + 1) % nVert
		}
		ops = append(ops, graph.OpInsert(u, v), graph.OpInsert(v, u))
		if i%9 == 5 {
			ops = append(ops, graph.OpDelete(u, v), graph.OpDelete(v, u))
		}
	}
	if _, err := srv.IngestOps(ops); err != nil {
		t.Fatal(err)
	}

	// The lease is composite: its view's snapshot is a ClusterView and
	// the mint captured its generation vector.
	l := srv.Acquire()
	cv, ok := l.View.Snapshot().(*graph.ClusterView)
	if !ok {
		t.Fatalf("lease snapshot is %T, want *graph.ClusterView", l.View.Snapshot())
	}
	gens := cv.Gens()
	if len(gens) != 2 || gens[0] == 0 || gens[1] == 0 {
		t.Fatalf("composite generation vector %v: expected both shards dispatched", gens)
	}
	for u := graph.V(0); u < nVert; u++ {
		l.View.Neighbors(u, func(d graph.V) bool {
			found := false
			l.View.Neighbors(d, func(b graph.V) bool {
				if b == u {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("lease view saw %d→%d without its mirror", u, d)
			}
			return true
		})
	}
	l.Release()

	// Every query class answers over the composite; the second kernel
	// query on an unchanged lease takes the cached path (keyed by the
	// generation vector), and ingest after it forces a non-cached sync.
	for _, q := range []Query{
		{Class: ClassDegree, V: 3},
		{Class: ClassNeighbors, V: 70},
		{Class: ClassKHop, V: 5, K: 2},
		{Class: ClassTopK, K: 4},
	} {
		if res := srv.Do(q); res.Err != nil {
			t.Fatalf("%v: %v", q.Class, res.Err)
		}
	}
	if res := srv.Do(Query{Class: ClassKernel}); res.Err != nil || res.Kernel == KernelCached {
		t.Fatalf("first kernel: err %v, path %v", res.Err, res.Kernel)
	}
	if res := srv.Do(Query{Class: ClassKernel}); res.Err != nil || res.Kernel != KernelCached {
		t.Fatalf("second kernel: err %v, path %v, want cached", res.Err, res.Kernel)
	}
	if _, err := srv.IngestOps([]graph.Op{graph.OpInsert(1, 2), graph.OpInsert(2, 1)}); err != nil {
		t.Fatal(err)
	}
	if res := srv.Do(Query{Class: ClassKernel}); res.Err != nil || res.Kernel == KernelCached {
		t.Fatalf("kernel after ingest: err %v, path %v, want non-cached", res.Err, res.Kernel)
	}

	// Per-shard backend instruments and cluster dispatch series are
	// registered under instance-scoped names.
	names := map[string]bool{}
	for _, n := range srv.Obs().Names() {
		names[n] = true
	}
	for _, want := range []string{
		"graph.cluster.shards",
		"graph.cluster.shard0.applied",
		"graph.cluster.shard1.applied",
		"graph.cluster.shard0.generation",
		"dgap.shard0.pma.log_appends",
		"dgap.shard1.pma.log_appends",
		"dgap.shard0.graph.vertices",
		"dgap.shard1.graph.vertices",
	} {
		if !names[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}
