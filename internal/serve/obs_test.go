package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/obs"
)

// TestSpanPhasesPartitionLatency: under concurrent load (and -race),
// every query's four trace phases — admission wait, lease pin,
// execution, kernel compute — sum to within 5% of its end-to-end
// latency. The phases are a partition of the measured span, so a
// breakdown that doesn't re-add is an instrumentation bug, not noise.
func TestSpanPhasesPartitionLatency(t *testing.T) {
	const V = 128
	edges := graphgen.Uniform(V, 8, 11)
	g := buildDGAP(t, V, len(edges))
	if err := g.InsertBatch(edges); err != nil {
		t.Fatal(err)
	}
	srv, err := New(g, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var checked int
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := Query{Class: Class(i % 4), V: graph.V((c*17 + i) % V), K: 2}
				res := srv.Do(q)
				if res.Err != nil {
					t.Errorf("query failed: %v", res.Err)
					return
				}
				sum, lat := res.Phases.Total(), res.Latency
				diff := sum - lat
				if diff < 0 {
					diff = -diff
				}
				if slack := lat/20 + time.Microsecond; diff > slack {
					t.Errorf("%v: phases %v sum to %v, latency %v (off by %v > %v)",
						q.Class, res.Phases, sum, lat, diff, slack)
					return
				}
				mu.Lock()
				checked++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if checked == 0 {
		t.Fatal("no spans checked")
	}
}

// TestSlowLogCapturesSpans: a negative threshold retains every span, the
// ring stays bounded at its configured capacity, entries come back
// newest-first, and each retained span's phase breakdown re-adds to its
// total.
func TestSlowLogCapturesSpans(t *testing.T) {
	const V = 64
	edges := graphgen.Uniform(V, 6, 3)
	g := buildDGAP(t, V, len(edges))
	if err := g.InsertBatch(edges); err != nil {
		t.Fatal(err)
	}
	srv, err := New(g, Config{Workers: 1, SlowThreshold: -1, SlowLogSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 20
	for i := 0; i < n; i++ {
		if res := srv.Do(Query{Class: ClassDegree, V: graph.V(i % V)}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	l := srv.Slow()
	if l == nil {
		t.Fatal("Slow() = nil with obs on")
	}
	if got := l.Observed(); got != n {
		t.Fatalf("Observed = %d, want %d (threshold<0 retains all)", got, n)
	}
	entries := l.Entries()
	if len(entries) != 8 {
		t.Fatalf("ring holds %d entries, want capacity 8", len(entries))
	}
	for i, e := range entries {
		if i > 0 && e.Seq >= entries[i-1].Seq {
			t.Fatalf("entries not newest-first: seq[%d]=%d after seq[%d]=%d", i, e.Seq, i-1, entries[i-1].Seq)
		}
		if e.Span.Class != "degree" {
			t.Errorf("entry class %q, want degree", e.Span.Class)
		}
		if !strings.HasPrefix(e.Span.Detail, "v=") {
			t.Errorf("degree span detail %q, want v=<vertex>", e.Span.Detail)
		}
		sum, tot := e.Span.Phases.Total(), e.Span.Total
		diff := sum - tot
		if diff < 0 {
			diff = -diff
		}
		if diff > tot/20+time.Microsecond {
			t.Errorf("retained span phases %v vs total %v", sum, tot)
		}
	}
}

// TestSlowLogThresholdFilters: healthy queries below the threshold are
// never retained.
func TestSlowLogThresholdFilters(t *testing.T) {
	srv, err := New(&fakeSys{}, Config{SlowThreshold: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 10; i++ {
		if res := srv.Do(Query{Class: ClassDegree}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if got := srv.Slow().Observed(); got != 0 {
		t.Errorf("hour threshold retained %d spans", got)
	}
}

// TestNoObsDisablesPerQueryPath: the ablation baseline serves correctly
// with no slow log and zero phases, while the registry (and exposition)
// still exists.
func TestNoObsDisablesPerQueryPath(t *testing.T) {
	srv, err := New(&fakeSys{}, Config{NoObs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res := srv.Do(Query{Class: ClassDegree})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Phases.Total() != 0 {
		t.Errorf("NoObs query carries phases %v", res.Phases)
	}
	if srv.Slow() != nil {
		t.Error("NoObs server has a slow log")
	}
	if srv.Obs() == nil {
		t.Fatal("NoObs server lost its registry")
	}
	found := false
	for _, n := range srv.Obs().Names() {
		if n == "serve.queue.depth" {
			found = true
		}
	}
	if !found {
		t.Error("serve.queue.depth missing from NoObs registry")
	}
	if srv.Stats().Classes[ClassDegree].Count != 1 {
		t.Error("latency histogram lost under NoObs")
	}
}

// TestMetricsExposition: the debug mux's /metrics endpoint round-trips
// every registered instrument — each name appears in the text format,
// and the JSON format decodes to exactly the registered name set —
// after real traffic has touched the serve, router, journal and backend
// layers.
func TestMetricsExposition(t *testing.T) {
	const V = 96
	edges := graphgen.Uniform(V, 8, 17)
	g := buildDGAP(t, V, len(edges))
	srv, err := New(g, Config{Workers: 2, IngestShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if res := srv.Do(Query{Class: ClassDegree, V: graph.V(i)}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if res := srv.Do(Query{Class: ClassKernel}); res.Err != nil {
		t.Fatal(res.Err)
	}

	names := srv.Obs().Names()
	// Every layer registered: serve, router, journal, backend.
	for _, want := range []string{
		"serve.queue.depth", "serve.queue.wait", "serve.query.degree.latency",
		"serve.lease.outstanding", "serve.kernel.path.full",
		"workload.router.shard0.ops", "workload.router.batch.size",
		"graph.journal.occupancy", "graph.journal.window",
		"dgap.compact.count", "dgap.pma.log_appends", "dgap.snapshot.outstanding",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("instrument %q not registered", want)
		}
	}

	mux := srv.DebugMux()

	// Text exposition: every instrument name appears (histograms as
	// derived name.count series).
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	text := rec.Body.String()
	for _, n := range names {
		if !strings.Contains(text, n+" ") && !strings.Contains(text, n+".count ") {
			t.Errorf("instrument %q missing from text exposition", n)
		}
	}

	// JSON exposition decodes to exactly the registered name set.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var ms []obs.Metric
	if err := json.Unmarshal(rec.Body.Bytes(), &ms); err != nil {
		t.Fatalf("/metrics?format=json: %v", err)
	}
	if len(ms) != len(names) {
		t.Fatalf("JSON exposition has %d metrics, registry has %d", len(ms), len(names))
	}
	for i, m := range ms {
		if m.Name != names[i] {
			t.Errorf("JSON metric[%d] = %q, want %q", i, m.Name, names[i])
		}
		if m.Kind == "hist" && m.Hist == nil {
			t.Errorf("hist %q has no snapshot in JSON", m.Name)
		}
	}

	// /stats carries the Stats snapshot, queue fields included.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var st map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	for _, k := range []string{"queue_depth", "in_flight", "shed_total", "applied", "classes"} {
		if _, ok := st[k]; !ok {
			t.Errorf("/stats missing %q", k)
		}
	}

	// /slow serves a JSON array (empty here — nothing crossed the
	// default threshold, or entries if something did).
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
	var slow []obs.SlowEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &slow); err != nil {
		t.Fatalf("/slow: %v", err)
	}

	// /debug/pprof is mounted.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/: %d", rec.Code)
	}
}

// TestLeaseOutstandingGauge: the outstanding-views gauge tracks minted
// generations and drains to zero once the server closes.
func TestLeaseOutstandingGauge(t *testing.T) {
	srv, err := New(&fakeSys{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res := srv.Do(Query{Class: ClassDegree}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := gaugeValue(t, srv.Obs(), "serve.lease.outstanding"); got != 1 {
		t.Errorf("outstanding = %d with a live lease, want 1", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := gaugeValue(t, srv.Obs(), "serve.lease.outstanding"); got != 0 {
		t.Errorf("outstanding = %d after Close, want 0", got)
	}
}

func gaugeValue(t *testing.T, r *obs.Registry, name string) int64 {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("gauge %q not registered", name)
	return 0
}
