package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dgap/internal/analytics"
	"dgap/internal/graph"
	"dgap/internal/obs"
	"dgap/internal/vtime"
	"dgap/internal/workload"
)

// Staleness-bound defaults: refresh the shared snapshot after this many
// edges have landed underneath it or this much wall-clock time, which-
// ever trips first. Both are loose enough that a refresh amortizes over
// many point queries and tight enough that served answers track an
// active ingest stream.
const (
	DefaultStalenessEdges = 4096
	DefaultStalenessAge   = 200 * time.Millisecond
)

// DefaultSlowThreshold is the slow-query log's retention threshold when
// Config.SlowThreshold is zero: an order of magnitude above a healthy
// point query, low enough to catch every tail event worth a look.
const DefaultSlowThreshold = 10 * time.Millisecond

// Config shapes a Server.
type Config struct {
	// MaxStalenessEdges retires the lease after this many edges have
	// been applied through the Server since its snapshot was taken.
	// 0 selects DefaultStalenessEdges; negative disables the bound.
	MaxStalenessEdges int64
	// MaxStalenessAge retires the lease at this wall-clock age.
	// 0 selects DefaultStalenessAge; negative disables the bound.
	MaxStalenessAge time.Duration

	// Workers is the query worker count (0 = 4).
	Workers int
	// QueueDepth bounds the admission queue (0 = 64): TrySubmit sheds
	// load beyond it, Do blocks.
	QueueDepth int
	// AnalyticsThreads is the vtime.Pool worker count kernel-refresh and
	// k-hop queries run with (0 = 1; they execute inside one query
	// worker, so >1 adds goroutines per in-flight query).
	AnalyticsThreads int

	// IngestShards is the Router shard count for Ingest (0 = 4).
	IngestShards int
	// IngestBatch is the Router batch size (0 = workload.DefaultBatchSize).
	IngestBatch int
	// Scope is the wrapped system's lock granularity for the Router's
	// partitioning (DGAP: ScopeSection, the zero value).
	Scope workload.LockScope
	// NoIngestYield disables the cooperative scheduler yield Ingest
	// makes after each applied batch. The yield is the serving tier's
	// ingest fairness: on the paper's multi-core testbed queries and
	// ingest run on separate cores, but on a single-CPU host an Ingest
	// call would otherwise hold the processor for whole preemption
	// quanta and starve the query workers' latency.
	NoIngestYield bool
	// Sinks optionally provides one graph.Applier per ingest shard
	// (e.g. per-shard dgap.Writers from workload.DGAPSinks, which apply
	// mixed op streams natively). Empty means all shards share the
	// Server's resolved graph.Store handle.
	Sinks []graph.Applier

	// NoIncremental disables incremental kernel maintenance: every
	// ClassKernel query recomputes the full fixed-iteration PageRank
	// over its leased snapshot, and no delta journal is kept. This is
	// the refresh benchmark's baseline mode; leave it unset to serve
	// maintained vectors (see the package documentation).
	NoIncremental bool
	// DeltaWindow bounds the delta journal backing incremental kernel
	// maintenance, in ops (0 selects graph.DefaultJournalWindow). A
	// generation gap wider than the window overflows the journal and
	// costs one full recompute — bounded memory, never a wrong answer.
	DeltaWindow int
	// KernelEps is the incremental PageRank maintainer's total L1 error
	// budget. Zero selects analytics.FixedIterTol — the truncation
	// error of the fixed-iteration full kernel — so by default the
	// maintained vector matches the accuracy of the path it replaces
	// instead of paying (orders of magnitude more drain work) for
	// precision the full path never had. Tests that assert tight
	// incremental-vs-converged equivalence set it explicitly.
	KernelEps float64

	// SlowThreshold is the slow-query log's retention bound: a query
	// whose end-to-end latency reaches it is retained in the bounded
	// ring with its per-phase breakdown (admission wait, lease pin,
	// execution, kernel compute). 0 selects DefaultSlowThreshold;
	// negative retains every span — the trace-everything setting tests
	// and interactive debugging use.
	SlowThreshold time.Duration
	// SlowLogSize bounds the slow-query ring in entries
	// (0 = obs.DefaultSlowLogSize). Memory is fixed at this capacity no
	// matter how many slow queries ever occur.
	SlowLogSize int
	// NoObs disables the per-query observability hot path — trace
	// spans, the slow-query log, the admission-wait histogram and the
	// in-flight/queue-wait instruments — leaving only the pre-existing
	// per-class latency histograms. This is the overhead ablation's
	// baseline mode; the metrics registry itself still exists so
	// exposition endpoints keep working.
	NoObs bool

	// Clock overrides the wall clock the server reads — lease ages for
	// the MaxStalenessAge bound, latency observations, uptime. nil
	// selects time.Now; tests inject a fake so age-driven refreshes are
	// deterministic instead of sleep-and-hope.
	Clock func() time.Time
}

func (c Config) defaults() Config {
	switch {
	case c.MaxStalenessEdges == 0:
		c.MaxStalenessEdges = DefaultStalenessEdges
	case c.MaxStalenessEdges < 0:
		c.MaxStalenessEdges = 0
	}
	switch {
	case c.MaxStalenessAge == 0:
		c.MaxStalenessAge = DefaultStalenessAge
	case c.MaxStalenessAge < 0:
		c.MaxStalenessAge = 0
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.AnalyticsThreads <= 0 {
		c.AnalyticsThreads = 1
	}
	if c.IngestShards <= 0 {
		c.IngestShards = 4
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = workload.DefaultBatchSize
	}
	switch {
	case c.SlowThreshold == 0:
		c.SlowThreshold = DefaultSlowThreshold
	case c.SlowThreshold < 0:
		c.SlowThreshold = 0
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.KernelEps == 0 {
		c.KernelEps = analytics.FixedIterTol
	}
	return c
}

// Server errors.
var (
	ErrClosed     = errors.New("serve: server closed")
	ErrOverloaded = errors.New("serve: query queue full")
)

// Server multiplexes concurrent queries and kernel refreshes over
// refcounted snapshot leases of one wrapped graph.System while edge
// batches ingest underneath. See the package documentation.
type Server struct {
	sys graph.System
	// store is the system's capability-resolved handle, opened once at
	// New: leases mint Views from it, Ingest/IngestOps mutate through
	// it, and Close runs its shutdown path.
	store *graph.Store
	cfg   Config

	// applied counts edges applied through Ingest — the clock the
	// edge-staleness bound runs on.
	applied atomic.Int64

	// journal is the bounded op log feeding incremental kernel
	// maintenance (nil when Config.NoIncremental is set): counted sinks
	// record every acknowledged ingest batch into it, and each lease
	// generation carries the journal cut taken with its snapshot.
	journal *graph.Journal
	// ingestMu is the delta-exactness bracket: counted sinks hold it
	// shared across {apply batch, record in journal}, and lease minting
	// holds it exclusively across {take snapshot, cut journal}. Without
	// it a batch applied before a concurrent snapshot but recorded
	// after the cut would leave that generation's delta missing ops the
	// snapshot already sees. Appliers never take leaseMu, so the
	// leaseMu → ingestMu ordering in Acquire cannot deadlock.
	ingestMu sync.RWMutex
	// kern is the per-server kernel cache: one PageRank maintainer
	// synced to a lease generation, advanced by that generation's delta.
	kern kernelCache

	leaseMu sync.Mutex
	lease   *Lease
	gen     atomic.Uint64
	// leasesClosed stops Acquire from minting generations once Close has
	// begun retiring the last one (set after the workers drain, so
	// already-queued queries are still served).
	leasesClosed atomic.Bool

	// subMu guards queue sends against Close's channel close: senders
	// hold it shared, Close exclusively.
	subMu    sync.RWMutex
	closed   bool
	queue    chan *task
	workers  *vtime.Pool
	wg       sync.WaitGroup
	rejected atomic.Int64
	// shed breaks the rejected total out per query class, so a QoS layer
	// above the pool can attribute which class paid for an overload
	// (serve.class.<name>.shed in obs, ClassStats.Shed in Stats).
	shed [nClasses]atomic.Int64
	born time.Time

	hist [nClasses]*obs.Hist
	// compute holds per-class kernel compute-time histograms: the
	// durations the analytics kernels measure and return (pure compute,
	// no queue wait or lease acquisition), which used to be discarded.
	compute [nClasses]*obs.Hist

	// reg is the server's metrics registry: every instrument above plus
	// the router, journal, lease and backend instruments registered at
	// New. Always non-nil, so exposition endpoints work in every mode.
	reg *obs.Registry
	// obsOn gates the per-query observability hot path (spans, slow
	// log, queue-wait/in-flight observations); false under Config.NoObs.
	obsOn bool
	// slow is the bounded slow-query ring (nil under Config.NoObs).
	slow *obs.SlowLog
	// queueWait is the admission-wait histogram (serve.queue.wait),
	// pre-resolved and sampled 1-in-queueWaitSample per worker so the
	// mutex observe stays off the common path (the per-query span still
	// carries the exact admission wait).
	queueWait *obs.Hist
	// slots holds one padded in-flight flag per worker, single-writer so
	// the serve.query.inflight gauge costs the hot path two plain atomic
	// stores instead of contended read-modify-writes; views counts lease
	// Views minted but not yet released (retired-but-held generations
	// included).
	slots []workerSlot
	views atomic.Int64

	// since measures elapsed time from a timestamp taken on the server's
	// clock. With the real clock it is time.Since — a monotonic-only
	// read, about half the cost of time.Now on hosts with slow wall-clock
	// reads — and the per-query hot path only ever needs durations, so it
	// never pays for a wall reading it would throw away. With an injected
	// Config.Clock it defers to that clock so fake-clock tests stay
	// deterministic.
	since func(time.Time) time.Duration
}

// workerSlot is one worker's in-flight flag, padded out to its own
// cache line so the single-writer stores never false-share between
// workers.
type workerSlot struct {
	busy atomic.Int64
	_    [56]byte
}

// queueWaitSample is the admission-wait histogram's sampling stride:
// each worker observes its first query and every queueWaitSample-th
// after that. The distribution is position-sampled (queries don't know
// their arrival index), so the histogram stays unbiased while the
// common path pays no histogram mutex at all.
const queueWaitSample = 8

// inflightNow sums the per-worker in-flight flags — the value behind
// the serve.query.inflight gauge and Stats.InFlight.
func (s *Server) inflightNow() int64 {
	var n int64
	for i := range s.slots {
		n += s.slots[i].busy.Load()
	}
	return n
}

type task struct {
	q    Query
	enq  time.Time
	done chan Result
}

// New starts a Server over sys: the query workers launch immediately
// and run until Close.
func New(sys graph.System, cfg Config) (*Server, error) {
	injected := cfg.Clock != nil
	cfg = cfg.defaults()
	if len(cfg.Sinks) != 0 && len(cfg.Sinks) != cfg.IngestShards {
		return nil, fmt.Errorf("serve: %d sinks for %d ingest shards", len(cfg.Sinks), cfg.IngestShards)
	}
	s := &Server{
		sys:   sys,
		store: graph.Open(sys),
		cfg:   cfg,
		queue: make(chan *task, cfg.QueueDepth),
		born:  cfg.Clock(),
	}
	if injected {
		clk := cfg.Clock
		s.since = func(t time.Time) time.Duration { return clk().Sub(t) }
	} else {
		s.since = time.Since
	}
	s.reg = obs.NewRegistry()
	s.obsOn = !cfg.NoObs
	if s.obsOn {
		s.slow = obs.NewSlowLog(cfg.SlowLogSize, cfg.SlowThreshold)
	}
	// The per-class histograms live in the registry (one instrument per
	// class and dimension) with the handles pre-resolved here, so the
	// hot path never touches the registry map.
	for c := Class(0); c < nClasses; c++ {
		s.hist[c] = s.reg.Hist("serve.query." + c.String() + ".latency")
		s.compute[c] = s.reg.Hist("serve.query." + c.String() + ".compute")
		s.reg.CounterFunc("serve.class."+c.String()+".shed", s.shed[c].Load)
	}
	s.queueWait = s.reg.Hist("serve.queue.wait")
	s.slots = make([]workerSlot, cfg.Workers)
	if !cfg.NoIncremental {
		s.journal = graph.NewJournal(cfg.DeltaWindow)
	}
	s.registerInstruments()
	// The bounded worker pool is vtime.Pool in real goroutine mode: one
	// ForRanges call whose unit ranges are the worker loops, so exactly
	// cfg.Workers goroutines drain the queue for the Server's lifetime.
	s.workers = vtime.NewPool(cfg.Workers, false)
	bounds := make([]int, cfg.Workers+1)
	for i := range bounds {
		bounds[i] = i
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.workers.ForRanges(bounds, func(w, _, _ int) { s.worker(w) })
	}()
	return s, nil
}

// registerInstruments wires the serving tier's state into the metrics
// registry. Everything here is a func-backed instrument reading atomics
// the server already maintains (or a pre-registered histogram), so
// registration costs the hot paths nothing; the backend registers its
// own counters when it is obs.Instrumented.
func (s *Server) registerInstruments() {
	r := s.reg
	r.GaugeFunc("serve.queue.depth", func() int64 { return int64(len(s.queue)) })
	r.GaugeFunc("serve.queue.capacity", func() int64 { return int64(cap(s.queue)) })
	r.CounterFunc("serve.queue.shed", s.rejected.Load)
	r.GaugeFunc("serve.query.inflight", s.inflightNow)
	r.CounterFunc("serve.ingest.applied", s.applied.Load)
	r.CounterFunc("serve.kernel.path.full", s.kern.full.Load)
	r.CounterFunc("serve.kernel.path.incremental", s.kern.incr.Load)
	r.CounterFunc("serve.kernel.path.cached", s.kern.cached.Load)
	r.CounterFunc("serve.kernel.delta_ops", s.kern.deltaOps.Load)
	r.GaugeFunc("serve.lease.generation", func() int64 { return int64(s.gen.Load()) })
	r.GaugeFunc("serve.lease.outstanding", s.views.Load)
	r.GaugeFunc("serve.lease.age_ns", func() int64 {
		s.leaseMu.Lock()
		l := s.lease
		s.leaseMu.Unlock()
		if l == nil {
			return 0
		}
		return l.Age().Nanoseconds()
	})
	if j := s.journal; j != nil {
		r.GaugeFunc("graph.journal.occupancy", func() int64 { return int64(j.Stats().Len) })
		r.GaugeFunc("graph.journal.window", func() int64 { return int64(j.Window()) })
		r.CounterFunc("graph.journal.recorded", func() int64 { return j.Stats().Recorded })
		r.CounterFunc("graph.journal.invalidations", func() int64 { return j.Stats().Invalidations })
		r.CounterFunc("graph.journal.overflows", func() int64 { return j.Stats().Overflows })
	}
	if in, ok := s.sys.(obs.Instrumented); ok {
		in.RegisterObs(r)
	}
}

// Obs returns the server's metrics registry — the exposition surface
// DebugMux and the STATS protocol command read. Never nil.
func (s *Server) Obs() *obs.Registry { return s.reg }

// Slow returns the slow-query log, or nil when Config.NoObs disabled
// the per-query observability path.
func (s *Server) Slow() *obs.SlowLog { return s.slow }

func (s *Server) worker(w int) {
	slot := &s.slots[w]
	sampled := 0
	for t := range s.queue {
		if !s.obsOn {
			res := s.execute(t.q)
			res.Latency = s.since(t.enq)
			s.hist[t.q.Class].Observe(res.Latency)
			t.done <- res
			continue
		}
		wait := s.since(t.enq)
		if sampled == 0 {
			s.queueWait.Observe(wait)
			sampled = queueWaitSample
		}
		sampled--
		slot.busy.Store(1)
		res := s.execute(t.q)
		res.Latency = s.since(t.enq)
		slot.busy.Store(0)
		// The four phases partition the latency: admission is the queue
		// wait, lease was stamped by execute, kernel is the analytics
		// kernel's own measured compute, and exec is the remainder
		// (clamped — the kernel clocks itself, so sub-nanosecond skew
		// against the server clock cannot drive the remainder negative).
		res.Phases[obs.PhaseAdmission] = wait
		res.Phases[obs.PhaseKernel] = res.Compute
		exec := res.Latency - wait - res.Phases[obs.PhaseLease] - res.Compute
		if exec < 0 {
			exec = 0
		}
		res.Phases[obs.PhaseExec] = exec
		if res.Latency >= s.slow.Threshold() {
			s.slow.Observe(obs.Span{
				Class:  t.q.Class.String(),
				Detail: t.q.detail(),
				Start:  t.enq,
				Total:  res.Latency,
				Phases: res.Phases,
				Gen:    res.Gen,
				Err:    res.Err != nil,
			})
		}
		s.hist[t.q.Class].Observe(res.Latency)
		t.done <- res
	}
}

// Do submits a query and blocks for its result (including queue wait —
// the latency histograms measure the same span).
func (s *Server) Do(q Query) Result {
	t, err := s.enqueue(q, true)
	if err != nil {
		return Result{Query: q, Err: err}
	}
	return <-t.done
}

// TrySubmit submits a query without blocking: the result channel
// receives exactly one Result, or ErrOverloaded is returned when the
// admission queue is full.
func (s *Server) TrySubmit(q Query) (<-chan Result, error) {
	t, err := s.enqueue(q, false)
	if err != nil {
		return nil, err
	}
	return t.done, nil
}

func (s *Server) enqueue(q Query, block bool) (*task, error) {
	if q.Class < 0 || q.Class >= nClasses {
		return nil, fmt.Errorf("serve: unknown query class %d", q.Class)
	}
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t := &task{q: q, enq: s.cfg.Clock(), done: make(chan Result, 1)}
	if block {
		s.queue <- t
		return t, nil
	}
	select {
	case s.queue <- t:
		return t, nil
	default:
		s.rejected.Add(1)
		s.shed[q.Class].Add(1)
		return nil, ErrOverloaded
	}
}

// sinks builds the per-shard counted Appliers one ingest call drives:
// the configured per-shard sinks, or the Server's shared Store.
func (s *Server) sinks(n int) []graph.Applier {
	out := make([]graph.Applier, n)
	for i := range out {
		var ap graph.Applier = s.store
		if len(s.cfg.Sinks) != 0 {
			ap = s.cfg.Sinks[i]
		}
		out[i] = &countedSink{s: s, ap: ap}
	}
	return out
}

// Ingest streams edges underneath the serving layer: the stream is
// partitioned and batched by the workload.Router (by the configured
// lock scope) into the Server's resolved Store handle or the configured
// per-shard sinks, and every applied batch advances the applied-edge
// counter the staleness bound measures. Safe to run concurrently with
// queries; concurrent Ingest calls are safe when the sinks are (the
// shared Store path serializes on the system's own locks).
func (s *Server) Ingest(edges []graph.Edge) (workload.InsertResult, error) {
	rt := workload.Router{Shards: s.cfg.IngestShards, BatchSize: s.cfg.IngestBatch, Scope: s.cfg.Scope, Obs: s.routerObs()}
	return rt.Run(s.sinks(rt.Shards), edges)
}

// routerObs is the registry ingest routers record into (per-shard op
// throughput, batch sizes), nil when the observability hot path is off.
func (s *Server) routerObs() *obs.Registry {
	if !s.obsOn {
		return nil
	}
	return s.reg
}

// IngestOps streams a mixed insert/delete stream underneath the
// serving layer, sharded and batched by the workload.Router exactly
// like Ingest. Deletes are applied under live leases safely by
// construction: a lease's snapshot sees an immutable per-vertex prefix,
// so a tombstone landing underneath never changes an answer served
// from the current generation — the deleted edge vanishes at the next
// lease generation, whose snapshot is taken after the delete. Every
// applied op (insert or delete) advances the staleness clock, so a
// delete-heavy stream retires leases at the same cadence an
// insert-heavy one does. Fails with graph.ErrDeletesUnsupported (or a
// per-shard sink error) when the wrapped system cannot delete.
func (s *Server) IngestOps(ops []graph.Op) (workload.InsertResult, error) {
	if _, dels := graph.SplitOps(ops); dels > 0 {
		// Reject delete-incapable paths up front rather than failing
		// mid-stream with whole insert sub-batches already applied: the
		// shared path via the Store's resolved caps, configured sinks
		// via the same caps when they can report them (graph.Store
		// sinks); other Appliers (dgap.Writer, wrappers) claim the full
		// mixed contract and surface any rejection per shard.
		if len(s.cfg.Sinks) == 0 {
			if !s.store.Caps().Has(graph.CapDelete) {
				return workload.InsertResult{}, fmt.Errorf("serve: %s: %w", s.store.Name(), graph.ErrDeletesUnsupported)
			}
		} else {
			for i, ap := range s.cfg.Sinks {
				if cr, ok := ap.(interface{ Caps() graph.Caps }); ok && !cr.Caps().Has(graph.CapDelete) {
					return workload.InsertResult{}, fmt.Errorf("serve: ingest shard %d sink: %w", i, graph.ErrDeletesUnsupported)
				}
			}
		}
	}
	rt := workload.Router{Shards: s.cfg.IngestShards, BatchSize: s.cfg.IngestBatch, Scope: s.cfg.Scope, Obs: s.routerObs()}
	return rt.RunOps(s.sinks(rt.Shards), ops)
}

// countedSink advances the server's applied-edge counter after each op
// batch lands, so lease staleness tracks acknowledged mutations only,
// and yields the processor at the batch boundary so in-flight queries
// keep making progress while ingest streams (see Config.NoIngestYield).
// When the server keeps a delta journal, the sink is also its recording
// seam: apply and record happen under the shared side of ingestMu, so a
// lease minted concurrently (exclusive side) sees either both or
// neither — its generation delta is exact. The journal is fed here
// rather than through graph.Store.Watch because per-shard sinks
// (dgap.Writer) bypass the Store entirely.
type countedSink struct {
	s  *Server
	ap graph.Applier
}

func (c *countedSink) ApplyOps(ops []graph.Op) error {
	s := c.s
	var err error
	if s.journal != nil {
		s.ingestMu.RLock()
		err = c.ap.ApplyOps(ops)
		if err != nil {
			// An arbitrary subset of the batch may have landed; the
			// journal can no longer explain the backend's state.
			s.journal.Invalidate()
		} else {
			s.journal.Record(ops)
		}
		s.ingestMu.RUnlock()
	} else {
		err = c.ap.ApplyOps(ops)
	}
	if err != nil {
		return err
	}
	s.applied.Add(int64(len(ops)))
	if !s.cfg.NoIngestYield {
		runtime.Gosched()
	}
	return nil
}

// Applied returns the number of edges applied through Ingest so far.
func (s *Server) Applied() int64 { return s.applied.Load() }

// Generations returns how many lease generations have been created.
func (s *Server) Generations() uint64 { return s.gen.Load() }

// Close drains the query queue, stops the workers and retires the
// current lease. Queries submitted after Close fail with ErrClosed.
func (s *Server) Close() error {
	s.subMu.Lock()
	if s.closed {
		s.subMu.Unlock()
		return ErrClosed
	}
	s.closed = true
	close(s.queue)
	s.subMu.Unlock()
	s.wg.Wait()
	s.retireLease()
	return s.store.Close()
}

// ClassStats summarizes one query class's latency histogram.
type ClassStats struct {
	Class string        `json:"class"`
	Count int64         `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
	QPS   float64       `json:"qps"` // completed queries per second of server uptime
	// Shed counts this class's queries rejected with ErrOverloaded —
	// the per-class breakdown of Stats.ShedTotal, so admission decisions
	// made above the pool (the wire QoS layer) stay attributable.
	Shed int64 `json:"shed,omitempty"`

	// Compute summarizes the class's kernel compute-time histogram —
	// the duration the analytics kernel itself measured, excluding
	// queue wait and lease acquisition. Zero for classes that run no
	// kernel (degree, neighbors).
	ComputeP50  time.Duration `json:"compute_p50_ns,omitempty"`
	ComputeP99  time.Duration `json:"compute_p99_ns,omitempty"`
	ComputeMean time.Duration `json:"compute_mean_ns,omitempty"`
}

// KernelStats counts which path each ClassKernel query was answered
// through, and how much delta the incremental path consumed.
type KernelStats struct {
	// Full counts full recomputes: the baseline path (NoIncremental),
	// maintainer (re)builds, and fallbacks on overflowed deltas or
	// over-budget updates.
	Full int64 `json:"full"`
	// Incremental counts refreshes answered by advancing the maintained
	// vector with a generation delta.
	Incremental int64 `json:"incremental"`
	// Cached counts queries answered from the maintained vector without
	// any recompute (lease generation already synced).
	Cached int64 `json:"cached"`
	// DeltaOps totals the journal ops consumed by incremental refreshes.
	DeltaOps int64 `json:"delta_ops"`
}

// Stats is a point-in-time view of the Server's serving metrics.
type Stats struct {
	Uptime      time.Duration `json:"uptime_ns"`
	Applied     int64         `json:"applied"`
	Generations uint64        `json:"generations"`
	// Rejected is the shed count; ShedTotal is its canonical name (the
	// two report the same counter during the migration).
	Rejected int64 `json:"rejected"`
	// QueueDepth is the admission queue's occupancy at the snapshot:
	// queries accepted but not yet picked up by a worker.
	QueueDepth int `json:"queue_depth"`
	// InFlight is the number of queries executing on workers at the
	// snapshot.
	InFlight int64 `json:"in_flight"`
	// ShedTotal counts queries shed by TrySubmit with ErrOverloaded
	// since the server started.
	ShedTotal int64       `json:"shed_total"`
	Kernel    KernelStats `json:"kernel"`
	// Classes is indexed by Class, ClassDegree..ClassKernel.
	Classes []ClassStats `json:"classes"`
}

// Stats snapshots the serving metrics.
func (s *Server) Stats() Stats {
	st := Stats{
		Uptime:      s.cfg.Clock().Sub(s.born),
		Applied:     s.applied.Load(),
		Generations: s.gen.Load(),
		Rejected:    s.rejected.Load(),
		QueueDepth:  len(s.queue),
		InFlight:    s.inflightNow(),
		ShedTotal:   s.rejected.Load(),
		Kernel: KernelStats{
			Full:        s.kern.full.Load(),
			Incremental: s.kern.incr.Load(),
			Cached:      s.kern.cached.Load(),
			DeltaOps:    s.kern.deltaOps.Load(),
		},
	}
	for c := Class(0); c < nClasses; c++ {
		h, ch := s.hist[c], s.compute[c]
		cs := ClassStats{
			Class:       c.String(),
			Shed:        s.shed[c].Load(),
			Count:       h.Count(),
			P50:         h.Quantile(0.50),
			P99:         h.Quantile(0.99),
			P999:        h.Quantile(0.999),
			Max:         h.Max(),
			Mean:        h.Mean(),
			ComputeP50:  ch.Quantile(0.50),
			ComputeP99:  ch.Quantile(0.99),
			ComputeMean: ch.Mean(),
		}
		if secs := st.Uptime.Seconds(); secs > 0 {
			cs.QPS = float64(cs.Count) / secs
		}
		st.Classes = append(st.Classes, cs)
	}
	return st
}
