package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dgap/internal/analytics"
	"dgap/internal/graph"
	"dgap/internal/vtime"
	"dgap/internal/workload"
)

// Staleness-bound defaults: refresh the shared snapshot after this many
// edges have landed underneath it or this much wall-clock time, which-
// ever trips first. Both are loose enough that a refresh amortizes over
// many point queries and tight enough that served answers track an
// active ingest stream.
const (
	DefaultStalenessEdges = 4096
	DefaultStalenessAge   = 200 * time.Millisecond
)

// Config shapes a Server.
type Config struct {
	// MaxStalenessEdges retires the lease after this many edges have
	// been applied through the Server since its snapshot was taken.
	// 0 selects DefaultStalenessEdges; negative disables the bound.
	MaxStalenessEdges int64
	// MaxStalenessAge retires the lease at this wall-clock age.
	// 0 selects DefaultStalenessAge; negative disables the bound.
	MaxStalenessAge time.Duration

	// Workers is the query worker count (0 = 4).
	Workers int
	// QueueDepth bounds the admission queue (0 = 64): TrySubmit sheds
	// load beyond it, Do blocks.
	QueueDepth int
	// AnalyticsThreads is the vtime.Pool worker count kernel-refresh and
	// k-hop queries run with (0 = 1; they execute inside one query
	// worker, so >1 adds goroutines per in-flight query).
	AnalyticsThreads int

	// IngestShards is the Router shard count for Ingest (0 = 4).
	IngestShards int
	// IngestBatch is the Router batch size (0 = workload.DefaultBatchSize).
	IngestBatch int
	// Scope is the wrapped system's lock granularity for the Router's
	// partitioning (DGAP: ScopeSection, the zero value).
	Scope workload.LockScope
	// NoIngestYield disables the cooperative scheduler yield Ingest
	// makes after each applied batch. The yield is the serving tier's
	// ingest fairness: on the paper's multi-core testbed queries and
	// ingest run on separate cores, but on a single-CPU host an Ingest
	// call would otherwise hold the processor for whole preemption
	// quanta and starve the query workers' latency.
	NoIngestYield bool
	// Sinks optionally provides one graph.Applier per ingest shard
	// (e.g. per-shard dgap.Writers from workload.DGAPSinks, which apply
	// mixed op streams natively). Empty means all shards share the
	// Server's resolved graph.Store handle.
	Sinks []graph.Applier

	// NoIncremental disables incremental kernel maintenance: every
	// ClassKernel query recomputes the full fixed-iteration PageRank
	// over its leased snapshot, and no delta journal is kept. This is
	// the refresh benchmark's baseline mode; leave it unset to serve
	// maintained vectors (see the package documentation).
	NoIncremental bool
	// DeltaWindow bounds the delta journal backing incremental kernel
	// maintenance, in ops (0 selects graph.DefaultJournalWindow). A
	// generation gap wider than the window overflows the journal and
	// costs one full recompute — bounded memory, never a wrong answer.
	DeltaWindow int
	// KernelEps is the incremental PageRank maintainer's total L1 error
	// budget. Zero selects analytics.FixedIterTol — the truncation
	// error of the fixed-iteration full kernel — so by default the
	// maintained vector matches the accuracy of the path it replaces
	// instead of paying (orders of magnitude more drain work) for
	// precision the full path never had. Tests that assert tight
	// incremental-vs-converged equivalence set it explicitly.
	KernelEps float64

	// Clock overrides the wall clock the server reads — lease ages for
	// the MaxStalenessAge bound, latency observations, uptime. nil
	// selects time.Now; tests inject a fake so age-driven refreshes are
	// deterministic instead of sleep-and-hope.
	Clock func() time.Time
}

func (c Config) defaults() Config {
	switch {
	case c.MaxStalenessEdges == 0:
		c.MaxStalenessEdges = DefaultStalenessEdges
	case c.MaxStalenessEdges < 0:
		c.MaxStalenessEdges = 0
	}
	switch {
	case c.MaxStalenessAge == 0:
		c.MaxStalenessAge = DefaultStalenessAge
	case c.MaxStalenessAge < 0:
		c.MaxStalenessAge = 0
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.AnalyticsThreads <= 0 {
		c.AnalyticsThreads = 1
	}
	if c.IngestShards <= 0 {
		c.IngestShards = 4
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = workload.DefaultBatchSize
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.KernelEps == 0 {
		c.KernelEps = analytics.FixedIterTol
	}
	return c
}

// Server errors.
var (
	ErrClosed     = errors.New("serve: server closed")
	ErrOverloaded = errors.New("serve: query queue full")
)

// Server multiplexes concurrent queries and kernel refreshes over
// refcounted snapshot leases of one wrapped graph.System while edge
// batches ingest underneath. See the package documentation.
type Server struct {
	sys graph.System
	// store is the system's capability-resolved handle, opened once at
	// New: leases mint Views from it, Ingest/IngestOps mutate through
	// it, and Close runs its shutdown path.
	store *graph.Store
	cfg   Config

	// applied counts edges applied through Ingest — the clock the
	// edge-staleness bound runs on.
	applied atomic.Int64

	// journal is the bounded op log feeding incremental kernel
	// maintenance (nil when Config.NoIncremental is set): counted sinks
	// record every acknowledged ingest batch into it, and each lease
	// generation carries the journal cut taken with its snapshot.
	journal *graph.Journal
	// ingestMu is the delta-exactness bracket: counted sinks hold it
	// shared across {apply batch, record in journal}, and lease minting
	// holds it exclusively across {take snapshot, cut journal}. Without
	// it a batch applied before a concurrent snapshot but recorded
	// after the cut would leave that generation's delta missing ops the
	// snapshot already sees. Appliers never take leaseMu, so the
	// leaseMu → ingestMu ordering in Acquire cannot deadlock.
	ingestMu sync.RWMutex
	// kern is the per-server kernel cache: one PageRank maintainer
	// synced to a lease generation, advanced by that generation's delta.
	kern kernelCache

	leaseMu sync.Mutex
	lease   *Lease
	gen     atomic.Uint64
	// leasesClosed stops Acquire from minting generations once Close has
	// begun retiring the last one (set after the workers drain, so
	// already-queued queries are still served).
	leasesClosed atomic.Bool

	// subMu guards queue sends against Close's channel close: senders
	// hold it shared, Close exclusively.
	subMu    sync.RWMutex
	closed   bool
	queue    chan *task
	workers  *vtime.Pool
	wg       sync.WaitGroup
	rejected atomic.Int64
	born     time.Time

	hist [nClasses]*Hist
	// compute holds per-class kernel compute-time histograms: the
	// durations the analytics kernels measure and return (pure compute,
	// no queue wait or lease acquisition), which used to be discarded.
	compute [nClasses]*Hist
}

type task struct {
	q    Query
	enq  time.Time
	done chan Result
}

// New starts a Server over sys: the query workers launch immediately
// and run until Close.
func New(sys graph.System, cfg Config) (*Server, error) {
	cfg = cfg.defaults()
	if len(cfg.Sinks) != 0 && len(cfg.Sinks) != cfg.IngestShards {
		return nil, fmt.Errorf("serve: %d sinks for %d ingest shards", len(cfg.Sinks), cfg.IngestShards)
	}
	s := &Server{
		sys:   sys,
		store: graph.Open(sys),
		cfg:   cfg,
		queue: make(chan *task, cfg.QueueDepth),
		born:  cfg.Clock(),
	}
	for c := range s.hist {
		s.hist[c] = &Hist{}
		s.compute[c] = &Hist{}
	}
	if !cfg.NoIncremental {
		s.journal = graph.NewJournal(cfg.DeltaWindow)
	}
	// The bounded worker pool is vtime.Pool in real goroutine mode: one
	// ForRanges call whose unit ranges are the worker loops, so exactly
	// cfg.Workers goroutines drain the queue for the Server's lifetime.
	s.workers = vtime.NewPool(cfg.Workers, false)
	bounds := make([]int, cfg.Workers+1)
	for i := range bounds {
		bounds[i] = i
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.workers.ForRanges(bounds, func(w, _, _ int) { s.worker(w) })
	}()
	return s, nil
}

func (s *Server) worker(int) {
	for t := range s.queue {
		res := s.execute(t.q)
		res.Latency = s.cfg.Clock().Sub(t.enq)
		s.hist[t.q.Class].Observe(res.Latency)
		t.done <- res
	}
}

// Do submits a query and blocks for its result (including queue wait —
// the latency histograms measure the same span).
func (s *Server) Do(q Query) Result {
	t, err := s.enqueue(q, true)
	if err != nil {
		return Result{Query: q, Err: err}
	}
	return <-t.done
}

// TrySubmit submits a query without blocking: the result channel
// receives exactly one Result, or ErrOverloaded is returned when the
// admission queue is full.
func (s *Server) TrySubmit(q Query) (<-chan Result, error) {
	t, err := s.enqueue(q, false)
	if err != nil {
		return nil, err
	}
	return t.done, nil
}

func (s *Server) enqueue(q Query, block bool) (*task, error) {
	if q.Class < 0 || q.Class >= nClasses {
		return nil, fmt.Errorf("serve: unknown query class %d", q.Class)
	}
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t := &task{q: q, enq: s.cfg.Clock(), done: make(chan Result, 1)}
	if block {
		s.queue <- t
		return t, nil
	}
	select {
	case s.queue <- t:
		return t, nil
	default:
		s.rejected.Add(1)
		return nil, ErrOverloaded
	}
}

// sinks builds the per-shard counted Appliers one ingest call drives:
// the configured per-shard sinks, or the Server's shared Store.
func (s *Server) sinks(n int) []graph.Applier {
	out := make([]graph.Applier, n)
	for i := range out {
		var ap graph.Applier = s.store
		if len(s.cfg.Sinks) != 0 {
			ap = s.cfg.Sinks[i]
		}
		out[i] = &countedSink{s: s, ap: ap}
	}
	return out
}

// Ingest streams edges underneath the serving layer: the stream is
// partitioned and batched by the workload.Router (by the configured
// lock scope) into the Server's resolved Store handle or the configured
// per-shard sinks, and every applied batch advances the applied-edge
// counter the staleness bound measures. Safe to run concurrently with
// queries; concurrent Ingest calls are safe when the sinks are (the
// shared Store path serializes on the system's own locks).
func (s *Server) Ingest(edges []graph.Edge) (workload.InsertResult, error) {
	rt := workload.Router{Shards: s.cfg.IngestShards, BatchSize: s.cfg.IngestBatch, Scope: s.cfg.Scope}
	return rt.Run(s.sinks(rt.Shards), edges)
}

// IngestOps streams a mixed insert/delete stream underneath the
// serving layer, sharded and batched by the workload.Router exactly
// like Ingest. Deletes are applied under live leases safely by
// construction: a lease's snapshot sees an immutable per-vertex prefix,
// so a tombstone landing underneath never changes an answer served
// from the current generation — the deleted edge vanishes at the next
// lease generation, whose snapshot is taken after the delete. Every
// applied op (insert or delete) advances the staleness clock, so a
// delete-heavy stream retires leases at the same cadence an
// insert-heavy one does. Fails with graph.ErrDeletesUnsupported (or a
// per-shard sink error) when the wrapped system cannot delete.
func (s *Server) IngestOps(ops []graph.Op) (workload.InsertResult, error) {
	if _, dels := graph.SplitOps(ops); dels > 0 {
		// Reject delete-incapable paths up front rather than failing
		// mid-stream with whole insert sub-batches already applied: the
		// shared path via the Store's resolved caps, configured sinks
		// via the same caps when they can report them (graph.Store
		// sinks); other Appliers (dgap.Writer, wrappers) claim the full
		// mixed contract and surface any rejection per shard.
		if len(s.cfg.Sinks) == 0 {
			if !s.store.Caps().Has(graph.CapDelete) {
				return workload.InsertResult{}, fmt.Errorf("serve: %s: %w", s.store.Name(), graph.ErrDeletesUnsupported)
			}
		} else {
			for i, ap := range s.cfg.Sinks {
				if cr, ok := ap.(interface{ Caps() graph.Caps }); ok && !cr.Caps().Has(graph.CapDelete) {
					return workload.InsertResult{}, fmt.Errorf("serve: ingest shard %d sink: %w", i, graph.ErrDeletesUnsupported)
				}
			}
		}
	}
	rt := workload.Router{Shards: s.cfg.IngestShards, BatchSize: s.cfg.IngestBatch, Scope: s.cfg.Scope}
	return rt.RunOps(s.sinks(rt.Shards), ops)
}

// countedSink advances the server's applied-edge counter after each op
// batch lands, so lease staleness tracks acknowledged mutations only,
// and yields the processor at the batch boundary so in-flight queries
// keep making progress while ingest streams (see Config.NoIngestYield).
// When the server keeps a delta journal, the sink is also its recording
// seam: apply and record happen under the shared side of ingestMu, so a
// lease minted concurrently (exclusive side) sees either both or
// neither — its generation delta is exact. The journal is fed here
// rather than through graph.Store.Watch because per-shard sinks
// (dgap.Writer) bypass the Store entirely.
type countedSink struct {
	s  *Server
	ap graph.Applier
}

func (c *countedSink) ApplyOps(ops []graph.Op) error {
	s := c.s
	var err error
	if s.journal != nil {
		s.ingestMu.RLock()
		err = c.ap.ApplyOps(ops)
		if err != nil {
			// An arbitrary subset of the batch may have landed; the
			// journal can no longer explain the backend's state.
			s.journal.Invalidate()
		} else {
			s.journal.Record(ops)
		}
		s.ingestMu.RUnlock()
	} else {
		err = c.ap.ApplyOps(ops)
	}
	if err != nil {
		return err
	}
	s.applied.Add(int64(len(ops)))
	if !s.cfg.NoIngestYield {
		runtime.Gosched()
	}
	return nil
}

// Applied returns the number of edges applied through Ingest so far.
func (s *Server) Applied() int64 { return s.applied.Load() }

// Generations returns how many lease generations have been created.
func (s *Server) Generations() uint64 { return s.gen.Load() }

// Close drains the query queue, stops the workers and retires the
// current lease. Queries submitted after Close fail with ErrClosed.
func (s *Server) Close() error {
	s.subMu.Lock()
	if s.closed {
		s.subMu.Unlock()
		return ErrClosed
	}
	s.closed = true
	close(s.queue)
	s.subMu.Unlock()
	s.wg.Wait()
	s.retireLease()
	return s.store.Close()
}

// ClassStats summarizes one query class's latency histogram.
type ClassStats struct {
	Class string
	Count int64
	P50   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
	Mean  time.Duration
	QPS   float64 // completed queries per second of server uptime

	// Compute summarizes the class's kernel compute-time histogram —
	// the duration the analytics kernel itself measured, excluding
	// queue wait and lease acquisition. Zero for classes that run no
	// kernel (degree, neighbors).
	ComputeP50  time.Duration
	ComputeP99  time.Duration
	ComputeMean time.Duration
}

// KernelStats counts which path each ClassKernel query was answered
// through, and how much delta the incremental path consumed.
type KernelStats struct {
	// Full counts full recomputes: the baseline path (NoIncremental),
	// maintainer (re)builds, and fallbacks on overflowed deltas or
	// over-budget updates.
	Full int64
	// Incremental counts refreshes answered by advancing the maintained
	// vector with a generation delta.
	Incremental int64
	// Cached counts queries answered from the maintained vector without
	// any recompute (lease generation already synced).
	Cached int64
	// DeltaOps totals the journal ops consumed by incremental refreshes.
	DeltaOps int64
}

// Stats is a point-in-time view of the Server's serving metrics.
type Stats struct {
	Uptime      time.Duration
	Applied     int64
	Generations uint64
	Rejected    int64
	Kernel      KernelStats
	Classes     []ClassStats // indexed by Class, ClassDegree..ClassKernel
}

// Stats snapshots the serving metrics.
func (s *Server) Stats() Stats {
	st := Stats{
		Uptime:      s.cfg.Clock().Sub(s.born),
		Applied:     s.applied.Load(),
		Generations: s.gen.Load(),
		Rejected:    s.rejected.Load(),
		Kernel: KernelStats{
			Full:        s.kern.full.Load(),
			Incremental: s.kern.incr.Load(),
			Cached:      s.kern.cached.Load(),
			DeltaOps:    s.kern.deltaOps.Load(),
		},
	}
	for c := Class(0); c < nClasses; c++ {
		h, ch := s.hist[c], s.compute[c]
		cs := ClassStats{
			Class:       c.String(),
			Count:       h.Count(),
			P50:         h.Quantile(0.50),
			P99:         h.Quantile(0.99),
			P999:        h.Quantile(0.999),
			Max:         h.Max(),
			Mean:        h.Mean(),
			ComputeP50:  ch.Quantile(0.50),
			ComputeP99:  ch.Quantile(0.99),
			ComputeMean: ch.Mean(),
		}
		if secs := st.Uptime.Seconds(); secs > 0 {
			cs.QPS = float64(cs.Count) / secs
		}
		st.Classes = append(st.Classes, cs)
	}
	return st
}
