package serve

import (
	"errors"
	"testing"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/pmem"
	"dgap/internal/workload"
)

func newServedDGAP(t *testing.T, nVert int, cfg Config) (*dgap.Graph, *Server) {
	t.Helper()
	a := pmem.New(256 << 20)
	dcfg := dgap.DefaultConfig(nVert, 4096)
	dcfg.SectionSlots = 64
	dcfg.ELogSize = 512
	g, err := dgap.New(a, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, srv
}

func neighborsOf(s *graph.View, v graph.V) []graph.V {
	return s.CopyNeighbors(v, nil)
}

// TestIngestOpsDeleteVisibility pins the serving-tier delete contract:
// a delete applied through IngestOps under a live lease never changes
// answers served from that generation — the edge vanishes at the next
// lease generation, taken after the delete.
func TestIngestOpsDeleteVisibility(t *testing.T) {
	g, srv := newServedDGAP(t, 16, Config{
		MaxStalenessEdges: 4, // a 6-op stream forces a refreshable lease
		MaxStalenessAge:   -1,
		IngestShards:      2,
		Workers:           2,
	})
	defer srv.Close()
	if _, err := srv.Ingest([]graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 4, Dst: 5}}); err != nil {
		t.Fatal(err)
	}

	held := srv.Acquire()
	if got := len(neighborsOf(held.View, 1)); got != 2 {
		t.Fatalf("lease sees %d neighbors of 1, want 2", got)
	}

	// Mixed stream under the live lease: one insert, deletes of an old
	// edge — all count toward the staleness clock.
	ops := []graph.Op{
		{Edge: graph.Edge{Src: 6, Dst: 7}},
		{Edge: graph.Edge{Src: 1, Dst: 2}, Del: true},
		{Edge: graph.Edge{Src: 4, Dst: 5}, Del: true},
		{Edge: graph.Edge{Src: 6, Dst: 8}},
	}
	if _, err := srv.IngestOps(ops); err != nil {
		t.Fatal(err)
	}
	if got := srv.Applied(); got != 7 {
		t.Errorf("Applied = %d after 3 inserts + 4 ops, want 7 (deletes must advance the staleness clock)", got)
	}

	// Mid-snapshot invariance: the held generation still answers from
	// its immutable prefix.
	if got := neighborsOf(held.View, 1); len(got) != 2 {
		t.Fatalf("held lease changed mid-generation: neighbors of 1 = %v", got)
	}
	if held.View.Degree(4) != 1 {
		t.Fatalf("held lease Degree(4) = %d, want 1", held.View.Degree(4))
	}

	// The next generation (the ops tripped MaxStalenessEdges) must not
	// see the deleted edges and must see the new ones.
	fresh := srv.Acquire()
	if fresh.Gen == held.Gen {
		t.Fatal("staleness bound did not refresh the lease")
	}
	if got := neighborsOf(fresh.View, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("fresh lease neighbors of 1 = %v, want [3]", got)
	}
	if fresh.View.Degree(4) != 0 {
		t.Fatalf("fresh lease Degree(4) = %d, want 0", fresh.View.Degree(4))
	}
	if got := neighborsOf(fresh.View, 6); len(got) != 2 {
		t.Fatalf("fresh lease neighbors of 6 = %v, want two", got)
	}
	held.Release()
	fresh.Release()
	_ = g
}

// TestIngestOpsPerShardSinks: dgap per-shard Writer sinks apply the
// mixed op batches natively (they implement graph.Applier), and the
// routed mixed stream lands exactly.
func TestIngestOpsPerShardSinks(t *testing.T) {
	a := pmem.New(256 << 20)
	dcfg := dgap.DefaultConfig(32, 4096)
	dcfg.SectionSlots = 64
	dcfg.ELogSize = 512
	g, err := dgap.New(a, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	sinks, release, err := workload.DGAPSinks(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	srv, err := New(g, Config{IngestShards: 2, Sinks: sinks, MaxStalenessEdges: -1, MaxStalenessAge: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var ops []graph.Op
	for i := 0; i < 64; i++ {
		ops = append(ops, graph.Op{Edge: graph.Edge{Src: graph.V(i % 8), Dst: graph.V(i % 31)}})
	}
	for i := 0; i < 64; i += 2 {
		ops = append(ops, graph.Op{Edge: graph.Edge{Src: graph.V(i % 8), Dst: graph.V(i % 31)}, Del: true})
	}
	if _, err := srv.IngestOps(ops); err != nil {
		t.Fatal(err)
	}
	if got := srv.Applied(); got != int64(len(ops)) {
		t.Errorf("Applied = %d, want %d", got, len(ops))
	}
	l := srv.Acquire()
	defer l.Release()
	if got, want := l.View.NumEdges(), int64(64-32); got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
}

// TestIngestOpsRejectsNonDeleters: a server over an append-only system
// fails a mixed stream with graph.ErrDeletesUnsupported instead of
// silently dropping the deletes — up front, before any sub-batch is
// applied, on both the shared-Store path and configured Store sinks.
func TestIngestOpsRejectsNonDeleters(t *testing.T) {
	sys := &fakeSys{} // fakeSys has no DeleteEdge
	srv, err := New(sys, Config{IngestShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mixed := []graph.Op{{Edge: graph.Edge{Src: 1, Dst: 2}}, {Edge: graph.Edge{Src: 1, Dst: 2}, Del: true}}
	_, err = srv.IngestOps(mixed)
	if !errors.Is(err, graph.ErrDeletesUnsupported) {
		t.Fatalf("err = %v, want ErrDeletesUnsupported", err)
	}
	if n := sys.edges.Load(); n != 0 {
		t.Fatalf("rejected stream applied %d inserts; want up-front rejection", n)
	}

	sys2 := &fakeSys{}
	srv2, err := New(sys2, Config{IngestShards: 1, Sinks: []graph.Applier{graph.Open(sys2)}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	_, err = srv2.IngestOps(mixed)
	if !errors.Is(err, graph.ErrDeletesUnsupported) {
		t.Fatalf("Store-sink err = %v, want ErrDeletesUnsupported", err)
	}
	if n := sys2.edges.Load(); n != 0 {
		t.Fatalf("rejected stream applied %d inserts through sinks; want up-front rejection", n)
	}
}
