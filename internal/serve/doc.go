// Package serve is the concurrent query-serving layer: a long-lived
// Server that opens one capability-resolved graph.Store over any
// graph.System and multiplexes point queries (degree, neighbor lists,
// k-hop expansion, top-k-degree ranking) and kernel refreshes
// (PageRank) over refcounted leases of graph.View read handles while
// an op stream ingests underneath through the sharded workload.Router.
//
// The paper's core promise — analysis against consistent snapshots
// while the mutation stream continues — is exercised here for real:
// queries and ingest share one Server and run concurrently, not in
// alternating phases.
//
// # Snapshot leases
//
// Taking a snapshot is the expensive part of a read (DGAP's
// ConsistentView quiesces writers and copies the degree cache), so the
// Server does not take one per query. Instead it maintains one lease
// generation at a time: a Lease pins a single shared graph.View (the
// bulk fast paths resolved once when the generation is minted), every
// query acquires the current lease (one atomic refcount increment) and
// releases it when done, and the lease is refreshed — a new generation
// with a fresh View — only when a configurable staleness bound is
// exceeded: MaxStalenessEdges ops applied through the Server since the
// snapshot was taken, or MaxStalenessAge of wall-clock age. A retired
// generation's View is held until its last in-flight query releases it
// — and only then released back through graph.SnapshotReleaser into
// the backend's snapshot accounting (DGAP's compaction gate) — so a
// query never observes its snapshot being torn down; the bound, in
// turn, caps how far behind the ingest frontier any served answer can
// be.
//
// # Query workers and admission control
//
// Queries execute on a bounded worker pool — vtime.Pool in its real
// goroutine mode, reused as the executor: one ForRanges call whose
// ranges are the long-lived worker loops — fed by a bounded queue.
// Do blocks for a result; TrySubmit sheds load instead, returning
// ErrOverloaded when the queue is full (the admission control a
// serving tier needs to survive traffic it cannot absorb). Per-class
// latency histograms (log-bucketed, p50/p99/mean, QPS) accumulate in
// Stats.
//
// # Ingest
//
// Server.Ingest drives an edge stream through the workload.Router —
// partitioned by lock resource, batched per shard — into the Server's
// resolved Store handle (or caller-provided per-shard graph.Applier
// sinks, e.g. per-shard dgap.Writers from workload.DGAPSinks). Each
// applied batch advances the Server's applied-edge counter, which is
// what the edge-staleness bound measures.
//
// Server.IngestOps extends the same path to mixed insert/delete
// streams (graph.Op): each dispatch batch lands as one ApplyOps call,
// so DGAP applies its inserts and tombstones in shared section groups.
// Deletes are applied under live leases — safe because every supported
// backend's deletion is an appended tombstone, so a held generation's
// immutable snapshot prefix never changes — and become visible at the
// next lease generation. Deletes advance the staleness clock like
// inserts, so delete-heavy traffic retires leases at the same cadence.
//
// # Incremental kernel maintenance
//
// ClassKernel queries do not recompute PageRank from scratch per
// refresh. The Server keeps a bounded graph.Journal of the ingested op
// stream and one analytics.PRMaintainer synced to a lease generation:
// every lease carries the journal cut taken atomically with its
// snapshot, so the ops between two leases' cuts are exactly the
// mutations separating their snapshots — the delta contract. A kernel
// query whose lease matches the maintainer's generation is answered
// from the maintained vector with no compute at all (KernelCached); a
// newer lease advances the maintainer by its generation delta
// (KernelIncremental), costing work proportional to the churn rather
// than the graph; and everything the delta cannot explain — journal
// overflow past the DeltaWindow, a failed ingest batch invalidating
// the log, incremental work exceeding its budget — falls back to a
// full recompute (KernelFull), so an incremental answer is never a
// wrong answer. Result.Kernel, Result.DeltaOps and Result.Compute
// report the path taken and its cost per query; Stats.Kernel
// aggregates them. Config.NoIncremental restores the recompute-always
// baseline the refresh benchmark compares against. The maintained
// vector targets Config.KernelEps total error, by default the full
// kernel's own truncation (analytics.FixedIterTol), so the incremental
// path matches the accuracy of the path it replaces rather than paying
// drain work for precision the baseline never had.
//
// The exactness bracket is ingestMu: counted sinks apply a batch and
// record it in the journal under the shared side, lease minting takes
// the snapshot and cuts the journal under the exclusive side. Either a
// batch is in both the snapshot and the delta, or in neither.
//
// # Restart after a crash
//
// The serving stack restarts in two halves. The system half reopens the
// backend from its media image (dgap.Open over the survivor of a power
// cut); the serving half is Reopen, which verifies the backend actually
// attached from media — graph.Recoverable with Recovery() stats, not a
// freshly created (empty) system — starts a new Server, and mints the
// first lease generation before returning, so a nil error means queries
// are being answered, not that they will be at first use. A Server that
// was attached to the crashed instance is abandoned: its Close surfaces
// the backend's poison error (e.g. dgap.ErrPoisoned) instead of
// stamping a half-applied structural operation as a clean shutdown.
// BENCH_recover.json measures this path end to end — time from reopen
// to first answered query and to full query throughput, per crash
// point.
package serve
