package serve

import (
	"math"
	"testing"

	"dgap/internal/analytics"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
)

// symmetricChurn builds a mirrored op stream (every logical edge in
// both directions — the adjacency symmetry the PageRank kernels are
// written against): n fresh inserts beyond vertex base, and deletes of
// the first nDel base edges with Src < Dst.
func symmetricChurn(base []graph.Edge, nVert, n, nDel int) []graph.Op {
	var ops []graph.Op
	for i := 0; i < n; i++ {
		src := graph.V((i * 7) % nVert)
		dst := graph.V((i*13 + 1) % nVert)
		if src == dst {
			dst = (dst + 1) % graph.V(nVert)
		}
		ops = append(ops, graph.OpInsert(src, dst), graph.OpInsert(dst, src))
	}
	for _, e := range base {
		if nDel == 0 {
			break
		}
		if e.Src < e.Dst {
			ops = append(ops, graph.OpDelete(e.Src, e.Dst), graph.OpDelete(e.Dst, e.Src))
			nDel--
		}
	}
	return ops
}

// TestKernelCachePaths drives one kernel query through each answer
// path — build (full), cached, incremental — and checks the maintained
// vector against a converged full recompute at every step, plus the
// kernel counters and provenance fields along the way.
func TestKernelCachePaths(t *testing.T) {
	const V = 150
	base := graphgen.Uniform(V, 12, 7)
	g := buildDGAP(t, V, 4*len(base))
	if err := g.InsertBatch(base); err != nil {
		t.Fatal(err)
	}
	srv, err := New(g, Config{
		Workers:           1,
		MaxStalenessEdges: 1,    // any applied op retires the lease at next acquire
		MaxStalenessAge:   -1,   // age never triggers: generations move only on ingest
		KernelEps:         1e-7, // tight budget so ranks pin against a converged reference
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	checkRanks := func(res Result, label string) {
		t.Helper()
		if res.Err != nil {
			t.Fatalf("%s: %v", label, res.Err)
		}
		view := graph.ViewOf(g.Snapshot())
		defer view.Release()
		ref, _ := analytics.PageRank(view, 300, analytics.Serial)
		if len(res.Ranks) != len(ref) {
			t.Fatalf("%s: %d ranks, want %d", label, len(res.Ranks), len(ref))
		}
		for v := range ref {
			if d := math.Abs(res.Ranks[v] - ref[v]); d > 1e-6 {
				t.Fatalf("%s: rank[%d] = %.12g, want %.12g (diff %.3g)", label, v, res.Ranks[v], ref[v], d)
			}
		}
	}

	res := srv.Do(Query{Class: ClassKernel})
	if res.Kernel != KernelFull {
		t.Fatalf("first kernel query path = %v, want full (maintainer build)", res.Kernel)
	}
	checkRanks(res, "build")

	res = srv.Do(Query{Class: ClassKernel})
	if res.Kernel != KernelCached {
		t.Fatalf("same-generation kernel query path = %v, want cached", res.Kernel)
	}
	if res.DeltaOps != 0 || res.Compute != 0 {
		t.Fatalf("cached path reported work: delta=%d compute=%v", res.DeltaOps, res.Compute)
	}
	checkRanks(res, "cached")

	ops := symmetricChurn(base, V, 20, 6)
	if _, err := srv.IngestOps(ops); err != nil {
		t.Fatal(err)
	}
	res = srv.Do(Query{Class: ClassKernel})
	if res.Kernel != KernelIncremental {
		t.Fatalf("post-ingest kernel query path = %v, want incremental", res.Kernel)
	}
	if res.DeltaOps != len(ops) {
		t.Fatalf("incremental refresh consumed %d delta ops, want %d", res.DeltaOps, len(ops))
	}
	checkRanks(res, "incremental")

	st := srv.Stats()
	if st.Kernel.Full != 1 || st.Kernel.Cached != 1 || st.Kernel.Incremental != 1 {
		t.Fatalf("kernel counters = %+v, want full=1 cached=1 incremental=1", st.Kernel)
	}
	if st.Kernel.DeltaOps != int64(len(ops)) {
		t.Fatalf("kernel delta ops = %d, want %d", st.Kernel.DeltaOps, len(ops))
	}
	ks := st.Classes[ClassKernel]
	if ks.Count != 3 || ks.Max <= 0 || ks.P999 <= 0 {
		t.Fatalf("kernel class stats missing tails: %+v", ks)
	}
	if ks.ComputeMean <= 0 {
		t.Fatalf("kernel compute time not recorded: %+v", ks)
	}
}

// TestKernelJournalOverflow: a generation gap wider than the configured
// delta window costs one full recompute — never a wrong vector.
func TestKernelJournalOverflow(t *testing.T) {
	const V = 120
	base := graphgen.Uniform(V, 10, 11)
	g := buildDGAP(t, V, 4*len(base))
	if err := g.InsertBatch(base); err != nil {
		t.Fatal(err)
	}
	srv, err := New(g, Config{
		Workers:           1,
		MaxStalenessEdges: 1,
		MaxStalenessAge:   -1,
		DeltaWindow:       8,    // far below one churn burst
		KernelEps:         1e-7, // tight budget so ranks pin against a converged reference
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if res := srv.Do(Query{Class: ClassKernel}); res.Kernel != KernelFull {
		t.Fatalf("build path = %v, want full", res.Kernel)
	}
	if _, err := srv.IngestOps(symmetricChurn(base, V, 30, 0)); err != nil {
		t.Fatal(err)
	}
	res := srv.Do(Query{Class: ClassKernel})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Kernel != KernelFull {
		t.Fatalf("overflowed-delta refresh path = %v, want full fallback", res.Kernel)
	}
	view := graph.ViewOf(g.Snapshot())
	defer view.Release()
	ref, _ := analytics.PageRank(view, 300, analytics.Serial)
	for v := range ref {
		if d := math.Abs(res.Ranks[v] - ref[v]); d > 1e-6 {
			t.Fatalf("post-overflow rank[%d] off by %.3g", v, d)
		}
	}
}

// TestKernelBaselineMode: NoIncremental reverts ClassKernel to the
// fixed-iteration full kernel on every query — no cache, no journal.
func TestKernelBaselineMode(t *testing.T) {
	const V = 100
	base := graphgen.Uniform(V, 8, 13)
	g := buildDGAP(t, V, 2*len(base))
	if err := g.InsertBatch(base); err != nil {
		t.Fatal(err)
	}
	srv, err := New(g, Config{Workers: 1, NoIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 2; i++ {
		res := srv.Do(Query{Class: ClassKernel})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Kernel != KernelFull {
			t.Fatalf("baseline query %d path = %v, want full", i, res.Kernel)
		}
	}
	st := srv.Stats()
	if st.Kernel.Full != 2 || st.Kernel.Cached != 0 || st.Kernel.Incremental != 0 {
		t.Fatalf("baseline kernel counters = %+v, want full=2 only", st.Kernel)
	}
}
