package serve

import (
	"math"
	"testing"
	"time"
)

// TestHistBucketRoundTrip: the reported bucket midpoint stays within
// the documented ~12% relative error for values across the range.
func TestHistBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 8, 9, 100, 1023, 4096, 1e6, 123456789, 1e12} {
		b := histBucket(v)
		got := histValue(b)
		if v < histSub {
			if got != v {
				t.Errorf("histValue(histBucket(%d)) = %d, want exact", v, got)
			}
			continue
		}
		if err := math.Abs(float64(got-v)) / float64(v); err > 0.125 {
			t.Errorf("histValue(histBucket(%d)) = %d, relative error %.3f", v, got, err)
		}
	}
	// Buckets are monotone in value.
	prev := -1
	for _, v := range []int64{0, 1, 5, 8, 12, 16, 31, 32, 1000, 1e6, 1e9} {
		b := histBucket(v)
		if b < prev {
			t.Fatalf("histBucket(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 1..1000 microseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.99, 990 * time.Microsecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if err := math.Abs(float64(got-c.want)) / float64(c.want); err > 0.15 {
			t.Errorf("q%.2f = %v, want ~%v (err %.3f)", c.q, got, c.want, err)
		}
	}
	if h.Max() != time.Millisecond {
		t.Errorf("max = %v, want 1ms", h.Max())
	}
	if mean := h.Mean(); mean < 450*time.Microsecond || mean > 550*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", mean)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles not monotone")
	}
}

// TestQuantileClampedToMax: a bucket's midpoint can exceed the largest
// sample that landed in it, so the top quantile must clamp to the
// exact recorded maximum — p100 ≤ Max always (the bug this PR fixes:
// Quantile(1.0) used to report the unclamped midpoint).
func TestQuantileClampedToMax(t *testing.T) {
	var h Hist
	// 2^20+1 ns sits at the bottom of its bucket: the midpoint
	// (2^20 + 2^16) overshoots the true maximum by ~6%.
	v := time.Duration(1<<20 + 1)
	if mid := histValue(histBucket(v.Nanoseconds())); mid <= v.Nanoseconds() {
		t.Fatalf("test premise broken: bucket midpoint %d does not exceed sample %d", mid, v)
	}
	h.Observe(v)
	h.Observe(v / 4)
	if p100, max := h.Quantile(1.0), h.Max(); p100 > max {
		t.Errorf("Quantile(1.0) = %v exceeds Max() = %v", p100, max)
	}
	if got := h.Quantile(1.0); got != v {
		t.Errorf("Quantile(1.0) = %v, want the exact max %v", got, v)
	}
	// Lower quantiles stay bucket-midpoint answers.
	if h.Quantile(0) >= v/2 {
		t.Errorf("Quantile(0) = %v looks clamped to the max", h.Quantile(0))
	}
}
