package serve

import (
	"math"
	"testing"
	"time"
)

// TestHistBucketRoundTrip: the reported bucket midpoint stays within
// the documented ~12% relative error for values across the range.
func TestHistBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 8, 9, 100, 1023, 4096, 1e6, 123456789, 1e12} {
		b := histBucket(v)
		got := histValue(b)
		if v < histSub {
			if got != v {
				t.Errorf("histValue(histBucket(%d)) = %d, want exact", v, got)
			}
			continue
		}
		if err := math.Abs(float64(got-v)) / float64(v); err > 0.125 {
			t.Errorf("histValue(histBucket(%d)) = %d, relative error %.3f", v, got, err)
		}
	}
	// Buckets are monotone in value.
	prev := -1
	for _, v := range []int64{0, 1, 5, 8, 12, 16, 31, 32, 1000, 1e6, 1e9} {
		b := histBucket(v)
		if b < prev {
			t.Fatalf("histBucket(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 1..1000 microseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.99, 990 * time.Microsecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if err := math.Abs(float64(got-c.want)) / float64(c.want); err > 0.15 {
			t.Errorf("q%.2f = %v, want ~%v (err %.3f)", c.q, got, c.want, err)
		}
	}
	if h.Max() != time.Millisecond {
		t.Errorf("max = %v, want 1ms", h.Max())
	}
	if mean := h.Mean(); mean < 450*time.Microsecond || mean > 550*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", mean)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles not monotone")
	}
}
