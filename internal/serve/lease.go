package serve

import (
	"sync/atomic"
	"time"

	"dgap/internal/graph"
)

// Lease is one pinned generation of the Server's shared snapshot.
// Acquire hands the same *Lease to every query until the staleness
// bound retires it; each holder must call Release exactly once. The
// underlying View outlives the generation: it is released — threading
// graph.SnapshotReleaser into the backend's snapshot accounting, DGAP's
// compaction gate — only when the Server has retired the lease AND the
// last in-flight holder has released it.
type Lease struct {
	// View is the generation's shared read handle, with the bulk and
	// sweep fast paths pre-resolved (graph.View).
	View *graph.View
	// Gen is the lease generation, monotonically increasing from 1.
	Gen uint64

	// refs counts holders plus one reference owned by the Server itself
	// until the lease is retired; the View is released when it hits
	// zero.
	refs      atomic.Int64
	born      time.Time
	now       func() time.Time // the Server's clock (Config.Clock)
	appliedAt int64            // Server.Applied() when the snapshot was taken
	// cut is the delta-journal sequence taken atomically with the
	// snapshot (under the exclusive side of Server.ingestMu), so the
	// ops between two leases' cuts are exactly the mutations separating
	// their snapshots. Zero when the server keeps no journal.
	cut uint64
	// gens is the per-shard generation vector of a composite
	// (graph.Cluster) view at mint time, nil over a single Store. Two
	// leases with equal vectors pin identical composite cuts; the
	// kernel cache keys on it alongside Gen.
	gens []uint64
	// released, when set, runs after the View is released — the hook
	// the Server's outstanding-view gauge (serve.lease.outstanding)
	// decrements through.
	released func()
}

// Age returns how long ago the lease's snapshot was taken, measured on
// the Server's clock (so tests with an injected Config.Clock observe
// deterministic ages).
func (l *Lease) Age() time.Duration { return l.now().Sub(l.born) }

// Release drops one holder reference. The last drop after retirement
// releases the View.
func (l *Lease) Release() { l.unpin() }

func (l *Lease) unpin() {
	if n := l.refs.Add(-1); n == 0 {
		l.View.Release()
		if l.released != nil {
			l.released()
		}
	} else if n < 0 {
		panic("serve: lease over-released")
	}
}

// Acquire pins and returns the current lease, refreshing it first when
// the configured staleness bound is exceeded, or nil once the Server
// has been closed (the wrapped system may be shut down, so no new
// snapshot may be taken). Callers must Release a non-nil lease when
// done with its View; queries submitted through Do/TrySubmit have this
// done for them.
func (s *Server) Acquire() *Lease {
	l, _ := s.acquireTimed()
	return l
}

// acquireTimed is Acquire plus the lease-pin trace phase: the returned
// duration is the snapshot-refresh cost this call paid, measured only
// when a mint actually happens (and obs is on) so the fast path — pin
// an existing lease under a mutex, ~tens of nanoseconds — never pays a
// clock read for a phase that would round to zero anyway. Queries that
// ride an existing lease report PhaseLease 0 and the pin cost stays
// inside PhaseExec; the query that triggers a refresh carries the whole
// mint in its span, which is exactly the tail event worth seeing.
func (s *Server) acquireTimed() (*Lease, time.Duration) {
	var leaseDur time.Duration
	s.leaseMu.Lock()
	if s.leasesClosed.Load() {
		s.leaseMu.Unlock()
		return nil, 0
	}
	l := s.lease
	if l == nil || s.staleLocked(l) {
		var t0 time.Time
		if s.obsOn {
			t0 = s.cfg.Clock()
		}
		// Load the applied counter before taking the snapshot so edges
		// racing with snapshot creation count toward the next refresh
		// rather than silently extending this lease's budget.
		appliedAt := s.applied.Load()
		var view *graph.View
		var cut uint64
		if s.journal != nil {
			// Snapshot and journal cut must be one atomic step against
			// the counted sinks' {apply, record} (ingestMu's shared
			// side), or this generation's delta would not match what
			// the snapshot sees.
			s.ingestMu.Lock()
			view = s.store.View()
			cut = s.journal.Cut()
			s.ingestMu.Unlock()
		} else {
			view = s.store.View()
		}
		nl := &Lease{
			View:      view,
			Gen:       s.gen.Add(1),
			born:      s.cfg.Clock(),
			now:       s.cfg.Clock,
			appliedAt: appliedAt,
			cut:       cut,
			gens:      graph.ViewGens(view),
			released:  func() { s.views.Add(-1) },
		}
		s.views.Add(1)
		nl.refs.Store(1) // the Server's own reference, dropped on retire
		if l != nil {
			l.unpin()
		}
		s.lease = nl
		l = nl
		if s.obsOn {
			leaseDur = s.cfg.Clock().Sub(t0)
		}
	}
	l.refs.Add(1)
	s.leaseMu.Unlock()
	return l, leaseDur
}

// staleLocked reports whether the lease has exceeded either staleness
// bound. Called with leaseMu held.
func (s *Server) staleLocked(l *Lease) bool {
	if e := s.cfg.MaxStalenessEdges; e > 0 && s.applied.Load()-l.appliedAt >= e {
		return true
	}
	if a := s.cfg.MaxStalenessAge; a > 0 && l.Age() >= a {
		return true
	}
	return false
}

// retireLease stops further lease creation and drops the Server's own
// reference so the View can be released once in-flight holders drain;
// called on Close after the workers have stopped. An Acquire that
// slipped in before the flag lands is still retired here (the leaseMu
// critical sections order the two), so no generation leaks.
func (s *Server) retireLease() {
	s.leasesClosed.Store(true)
	s.leaseMu.Lock()
	l := s.lease
	s.lease = nil
	s.leaseMu.Unlock()
	if l != nil {
		l.unpin()
	}
}
