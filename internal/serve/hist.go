package serve

import (
	"math/bits"
	"sync"
	"time"
)

// histSubBits is the sub-bucket resolution of Hist: 2^histSubBits
// sub-buckets per power of two, bounding the quantile error at
// ~1/2^histSubBits of the reported value.
const histSubBits = 3

const histSub = 1 << histSubBits

// histBuckets covers values up to 2^62 ns: histSub exact unit buckets
// for tiny values plus histSub log sub-buckets per power of two above.
const histBuckets = histSub + (63-histSubBits)*histSub

// Hist is a concurrency-safe log-bucketed latency histogram — the
// HDR-style shape services use for tail latency, sized down to one
// small fixed array. Values below histSub nanoseconds are recorded
// exactly; above, each power of two is split into histSub sub-buckets,
// so quantiles are accurate to ~12%.
type Hist struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	max     int64
	buckets [histBuckets]int64
}

// histBucket maps a nanosecond value to its bucket index.
func histBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	top := bits.Len64(uint64(v)) - 1 // v in [2^top, 2^top+1), top >= histSubBits
	minor := int(v>>(top-histSubBits)) & (histSub - 1)
	return histSub + (top-histSubBits)*histSub + minor
}

// histValue returns the midpoint of a bucket's value range, the value a
// quantile reports for samples landing in it.
func histValue(b int) int64 {
	if b < histSub {
		return int64(b)
	}
	g := (b - histSub) / histSub
	minor := int64((b - histSub) % histSub)
	top := g + histSubBits
	width := int64(1) << (top - histSubBits)
	lower := int64(1)<<top + minor*width
	return lower + width/2
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	v := d.Nanoseconds()
	b := histBucket(v)
	h.mu.Lock()
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[b]++
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average recorded latency.
func (h *Hist) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest recorded latency exactly.
func (h *Hist) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Quantile returns the latency at quantile q in [0, 1] (0.5 = p50,
// 0.99 = p99), or 0 when nothing has been recorded. The answer is the
// midpoint of the bucket holding the q-th sample, clamped to the exact
// recorded maximum — a bucket's midpoint can exceed the largest sample
// that landed in it, and an unclamped answer would report p100 > Max.
func (h *Hist) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count-1))
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if n > 0 && seen > rank {
			return time.Duration(min(histValue(b), h.max))
		}
	}
	return time.Duration(h.max)
}
