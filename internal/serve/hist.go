package serve

import "dgap/internal/obs"

// Hist is the per-class latency histogram type, re-homed as obs.Hist so
// the observability layer owns one histogram implementation with
// snapshot/merge/exposition APIs. The alias keeps every existing caller
// and test compiling during the migration; new code should name
// obs.Hist directly.
type Hist = obs.Hist
