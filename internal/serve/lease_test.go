package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgap/internal/graph"
)

// fakeSys is an instrumented graph.System whose snapshots report
// lifetime violations: a read after ReleaseSnapshot, or a double
// release. It implements graph.BulkSnapshot natively so the lease keeps
// the SnapshotReleaser signal (graph.Bulk would otherwise wrap it).
type fakeSys struct {
	edges atomic.Int64

	mu    sync.Mutex
	snaps []*fakeSnap
}

type fakeSnap struct {
	edges int64
	gen   int

	released      atomic.Bool
	readAfterFree atomic.Int64
	doubleFree    atomic.Int64
}

func (f *fakeSys) Name() string { return "fake" }

func (f *fakeSys) InsertEdge(src, dst graph.V) error {
	f.edges.Add(1)
	return nil
}

func (f *fakeSys) InsertBatch(edges []graph.Edge) error {
	f.edges.Add(int64(len(edges)))
	return nil
}

func (f *fakeSys) Snapshot() graph.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := &fakeSnap{edges: f.edges.Load(), gen: len(f.snaps)}
	f.snaps = append(f.snaps, s)
	return s
}

func (f *fakeSys) all() []*fakeSnap {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*fakeSnap(nil), f.snaps...)
}

func (s *fakeSnap) checkLive() {
	if s.released.Load() {
		s.readAfterFree.Add(1)
	}
}

func (s *fakeSnap) NumVertices() int { s.checkLive(); return 8 }
func (s *fakeSnap) NumEdges() int64  { s.checkLive(); return s.edges }
func (s *fakeSnap) Degree(v graph.V) int {
	s.checkLive()
	return int(s.edges % 7)
}
func (s *fakeSnap) Neighbors(v graph.V, fn func(graph.V) bool) { s.checkLive() }
func (s *fakeSnap) CopyNeighbors(v graph.V, buf []graph.V) []graph.V {
	s.checkLive()
	return buf
}

func (s *fakeSnap) ReleaseSnapshot() {
	if !s.released.CompareAndSwap(false, true) {
		s.doubleFree.Add(1)
	}
}

func checkNoViolations(t *testing.T, sys *fakeSys, wantAllReleased bool) {
	t.Helper()
	for _, s := range sys.all() {
		if n := s.readAfterFree.Load(); n > 0 {
			t.Errorf("snapshot gen %d: %d reads after release", s.gen, n)
		}
		if n := s.doubleFree.Load(); n > 0 {
			t.Errorf("snapshot gen %d: released %d extra times", s.gen, n)
		}
		if wantAllReleased && !s.released.Load() {
			t.Errorf("snapshot gen %d: never released", s.gen)
		}
	}
}

// edgeStream builds n distinct edges for Ingest calls.
func edgeStream(n int, seed int) []graph.Edge {
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = graph.Edge{Src: graph.V((seed + i) % 8), Dst: graph.V(i % 8)}
	}
	return out
}

// TestLeaseNeverReleasedWhileHeld hammers Acquire/Release from many
// reader goroutines while ingest advances the staleness clock and
// forces refreshes, then proves (under -race) that no snapshot was ever
// read after release, none was released twice, and every generation was
// released by the time the server closed.
func TestLeaseNeverReleasedWhileHeld(t *testing.T) {
	sys := &fakeSys{}
	srv, err := New(sys, Config{
		MaxStalenessEdges: 16,
		MaxStalenessAge:   -1,
		Workers:           4,
		IngestShards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const iters = 300
	var readersWG sync.WaitGroup
	stop := make(chan struct{})
	ingestIdle := make(chan struct{})

	// Ingest loop: keeps tripping the edge-staleness bound.
	go func() {
		defer close(ingestIdle)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := srv.Ingest(edgeStream(8, i)); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()

	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			for i := 0; i < iters; i++ {
				if r%2 == 0 {
					// Through the query path.
					res := srv.Do(Query{Class: ClassDegree, V: graph.V(i % 8)})
					if res.Err != nil {
						t.Errorf("reader %d: %v", r, res.Err)
						return
					}
				} else {
					// Raw lease usage: hold across a yield so a refresh
					// has every chance to race with the read.
					l := srv.Acquire()
					l.View.Degree(graph.V(i % 8))
					runtime.Gosched()
					l.View.NumEdges()
					l.Release()
				}
			}
		}(r)
	}

	// Let readers finish, then stop ingest and close.
	readersWG.Wait()
	close(stop)
	<-ingestIdle
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	if g := srv.Generations(); g < 2 {
		t.Fatalf("only %d lease generations — staleness bound never tripped, test proved nothing", g)
	}
	checkNoViolations(t, sys, true)
}

// TestRefreshRespectsEdgeStalenessBound: the lease survives exactly up
// to the configured applied-edge budget and is replaced on the acquire
// that first sees it exceeded.
func TestRefreshRespectsEdgeStalenessBound(t *testing.T) {
	sys := &fakeSys{}
	srv, err := New(sys, Config{MaxStalenessEdges: 100, MaxStalenessAge: -1, IngestShards: 1, IngestBatch: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	l1 := srv.Acquire()
	gen1 := l1.Gen
	l1.Release()

	if _, err := srv.Ingest(edgeStream(99, 0)); err != nil {
		t.Fatal(err)
	}
	l2 := srv.Acquire()
	if l2.Gen != gen1 {
		t.Fatalf("lease refreshed at 99/100 edges: gen %d -> %d", gen1, l2.Gen)
	}
	l2.Release()

	if _, err := srv.Ingest(edgeStream(1, 99)); err != nil {
		t.Fatal(err)
	}
	l3 := srv.Acquire()
	if l3.Gen == gen1 {
		t.Fatalf("lease not refreshed at 100/100 edges (gen still %d)", gen1)
	}
	// The retired generation must be released now that nobody holds it,
	// and the live one must not be.
	snaps := sys.all()
	if !snaps[0].released.Load() {
		t.Error("retired snapshot still unreleased with no holders")
	}
	if snaps[len(snaps)-1].released.Load() {
		t.Error("live lease's snapshot was released")
	}
	l3.Release()
	checkNoViolations(t, sys, false)
}

// fakeClock is a manually advanced clock injected through Config.Clock
// so age-bound tests are deterministic instead of sleep-and-hope (the
// timing-dependence this PR's bugfix satellite removes).
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestRefreshRespectsAgeBound: with the edge bound disabled, a lease
// older than MaxStalenessAge is refreshed on the next acquire — proven
// on an injected clock, exactly at the bound, with no real sleeping.
func TestRefreshRespectsAgeBound(t *testing.T) {
	sys := &fakeSys{}
	clk := newFakeClock()
	srv, err := New(sys, Config{MaxStalenessEdges: -1, MaxStalenessAge: 20 * time.Millisecond, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	l1 := srv.Acquire()
	gen1 := l1.Gen
	if l1.Age() != 0 {
		t.Fatalf("fresh lease age = %v on the fake clock, want 0", l1.Age())
	}
	l1.Release()

	// One tick short of the bound: same generation, exact age.
	clk.Advance(20*time.Millisecond - time.Nanosecond)
	l2 := srv.Acquire()
	if l2.Gen != gen1 {
		t.Fatalf("lease refreshed before the age bound: gen %d -> %d", gen1, l2.Gen)
	}
	if want := 20*time.Millisecond - time.Nanosecond; l2.Age() != want {
		t.Fatalf("lease age = %v, want exactly %v", l2.Age(), want)
	}
	l2.Release()

	// Crossing the bound by the last nanosecond refreshes.
	clk.Advance(time.Nanosecond)
	l3 := srv.Acquire()
	if l3.Gen == gen1 {
		t.Fatal("lease not refreshed at MaxStalenessAge")
	}
	l3.Release()
	checkNoViolations(t, sys, false)
}

// TestLeaseHolderOutlivesRefresh pins a lease, forces a refresh, and
// proves the pinned generation's snapshot stays readable until its
// holder releases it — and is released promptly afterwards.
func TestLeaseHolderOutlivesRefresh(t *testing.T) {
	sys := &fakeSys{}
	srv, err := New(sys, Config{MaxStalenessEdges: 10, MaxStalenessAge: -1, IngestShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	held := srv.Acquire()
	if _, err := srv.Ingest(edgeStream(32, 0)); err != nil {
		t.Fatal(err)
	}
	fresh := srv.Acquire()
	if fresh.Gen == held.Gen {
		t.Fatal("refresh did not happen")
	}
	// The held generation is retired but must still be readable.
	held.View.NumEdges()
	old := sys.all()[0]
	if old.released.Load() {
		t.Fatal("retired snapshot released while still held")
	}
	held.Release()
	if !old.released.Load() {
		t.Fatal("retired snapshot not released after the last holder dropped it")
	}
	fresh.Release()
	checkNoViolations(t, sys, false)
}
