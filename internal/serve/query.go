package serve

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dgap/internal/analytics"
	"dgap/internal/graph"
	"dgap/internal/obs"
)

// Class is a query class; each class has its own latency histogram.
type Class int

const (
	// ClassDegree answers one vertex's out-degree.
	ClassDegree Class = iota
	// ClassNeighbors copies one vertex's neighbor list.
	ClassNeighbors
	// ClassKHop counts the vertices within K hops of V.
	ClassKHop
	// ClassTopK ranks the K highest-degree vertices.
	ClassTopK
	// ClassKernel refreshes a PageRank vector over the leased snapshot.
	ClassKernel
	// ClassBatch answers several point reads (degree, neighbors) under
	// one admission ticket and one lease pin — the amortization a
	// pipelined wire frame carrying batched point reads buys: the queue
	// wait, lease acquisition and response fan-out are paid once for the
	// whole group, and every answer comes from the same snapshot.
	ClassBatch

	nClasses
)

// NumClasses is the query-class count (histograms, benchmark sweeps).
const NumClasses = int(nClasses)

func (c Class) String() string {
	switch c {
	case ClassDegree:
		return "degree"
	case ClassNeighbors:
		return "neighbors"
	case ClassKHop:
		return "khop"
	case ClassTopK:
		return "topk"
	case ClassKernel:
		return "kernel"
	case ClassBatch:
		return "batch"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Query is one request against the served graph.
type Query struct {
	Class Class
	// V is the subject vertex (ClassDegree, ClassNeighbors, ClassKHop).
	V graph.V
	// K is the hop bound (ClassKHop) or ranking size (ClassTopK).
	K int
	// Points are the grouped point reads of a ClassBatch query, answered
	// together under one lease pin. Each point must be ClassDegree or
	// ClassNeighbors; anything heavier belongs in its own query.
	Points []BatchPoint
	// Tenant identifies the principal the query was submitted for — the
	// wire front end extracts it from the frame header and plumbs it
	// through so shed decisions and slow-log entries are attributable.
	// Zero means unattributed (direct API callers, the line protocol).
	Tenant uint32
}

// BatchPoint is one point read inside a ClassBatch query.
type BatchPoint struct {
	// Class selects the read: ClassDegree or ClassNeighbors.
	Class Class
	// V is the subject vertex.
	V graph.V
}

// PointResult is one BatchPoint's answer inside a ClassBatch Result.
type PointResult struct {
	// Value is the out-degree (ClassDegree points).
	Value int64
	// Verts is the neighbor list (ClassNeighbors points).
	Verts []graph.V
}

// detail renders the query's arguments for the slow-query log. Only
// called for spans already selected for retention, so the formatting
// cost never lands on a healthy query.
func (q Query) detail() string {
	switch q.Class {
	case ClassDegree, ClassNeighbors:
		return fmt.Sprintf("v=%d", q.V)
	case ClassKHop:
		return fmt.Sprintf("v=%d k=%d", q.V, q.K)
	case ClassTopK:
		return fmt.Sprintf("k=%d", q.K)
	case ClassBatch:
		return fmt.Sprintf("n=%d tenant=%d", len(q.Points), q.Tenant)
	default:
		return ""
	}
}

// KernelPath records which path answered a ClassKernel query.
type KernelPath int

const (
	// KernelNone: the query ran no kernel (every class but ClassKernel).
	KernelNone KernelPath = iota
	// KernelFull: a full recompute — the NoIncremental baseline, a
	// maintainer (re)build, or a fallback on an overflowed delta or an
	// over-budget incremental update.
	KernelFull
	// KernelIncremental: the maintained vector advanced by the lease
	// generation's delta.
	KernelIncremental
	// KernelCached: the maintained vector returned as-is — the lease
	// generation was already synced, so no compute ran at all.
	KernelCached
)

func (k KernelPath) String() string {
	switch k {
	case KernelNone:
		return "none"
	case KernelFull:
		return "full"
	case KernelIncremental:
		return "incremental"
	case KernelCached:
		return "cached"
	default:
		return fmt.Sprintf("kernelpath(%d)", int(k))
	}
}

// Result is a query's answer, tagged with the lease generation and
// snapshot edge count it was served from — the bounded-staleness
// provenance a caller (or the mixed benchmark's concurrency check) can
// inspect.
type Result struct {
	Query Query
	// Gen is the lease generation the query was served from.
	Gen uint64
	// Edges is the snapshot's visible edge count — fixed per generation,
	// so it grows across generations while ingest runs underneath.
	Edges int64
	// Value carries scalar answers: the degree (ClassDegree) or the
	// k-hop reach count (ClassKHop).
	Value int64
	// Verts carries vertex-list answers: the neighbor list
	// (ClassNeighbors) or the top-k ranking (ClassTopK).
	Verts []graph.V
	// Degrees holds each ranked vertex's degree (ClassTopK), read from
	// the same snapshot as the ranking so the pair is self-consistent
	// even while leases refresh underneath.
	Degrees []int
	// Ranks is the refreshed PageRank vector (ClassKernel).
	Ranks []float64
	// Points holds one answer per BatchPoint (ClassBatch), index-aligned
	// with Query.Points and all read from the same snapshot.
	Points []PointResult
	// Kernel is the path a ClassKernel query was answered through
	// (KernelNone for every other class).
	Kernel KernelPath
	// DeltaOps is the size of the generation delta a ClassKernel query
	// consumed (zero on the cached, baseline, and overflow paths).
	DeltaOps int
	// Compute is the kernel's own measured compute time (ClassKHop,
	// ClassTopK, ClassKernel) — the duration the analytics kernels
	// return, without queue wait or lease acquisition. Latency minus
	// Compute is the serving tier's overhead.
	Compute time.Duration
	// Latency is the submit-to-completion time, queue wait included.
	Latency time.Duration
	// Phases is the query's trace-span breakdown — admission wait,
	// lease pin, execution (net of kernel compute), kernel compute —
	// partitioning Latency. Zero when Config.NoObs disabled spans.
	Phases obs.Phases
	Err    error
}

// ErrBadVertex rejects queries naming a vertex outside the snapshot's
// id space — backends index their degree tables unchecked, so the
// serving tier must not let a malformed query reach them.
var ErrBadVertex = errors.New("serve: vertex out of range")

// execute runs one query against the current lease's View. The lease is
// held exactly for the query's execution, so a refresh triggered by a
// concurrent query can never tear this query's snapshot down; the
// View's bulk fast path was resolved once when the lease was minted.
func (s *Server) execute(q Query) Result {
	l, leaseDur := s.acquireTimed()
	if l == nil {
		return Result{Query: q, Err: ErrClosed}
	}
	defer l.Release()
	view := l.View
	res := Result{Query: q, Gen: l.Gen, Edges: view.NumEdges()}
	res.Phases[obs.PhaseLease] = leaseDur
	perVertex := q.Class == ClassDegree || q.Class == ClassNeighbors || q.Class == ClassKHop
	if perVertex && int(q.V) >= view.NumVertices() {
		res.Err = fmt.Errorf("%w: %d >= %d", ErrBadVertex, q.V, view.NumVertices())
		return res
	}
	acfg := analytics.Config{Threads: s.cfg.AnalyticsThreads}
	switch q.Class {
	case ClassDegree:
		res.Value = int64(view.Degree(q.V))
	case ClassNeighbors:
		res.Verts = view.CopyNeighbors(q.V, nil)
	case ClassKHop:
		n, el := analytics.KHop(view, q.V, q.K, acfg)
		res.Value = int64(n)
		res.Compute = el
	case ClassTopK:
		var el time.Duration
		res.Verts, el = analytics.TopKDegree(view, q.K, acfg)
		res.Compute = el
		res.Degrees = make([]int, len(res.Verts))
		for i, v := range res.Verts {
			res.Degrees[i] = view.Degree(v)
		}
	case ClassKernel:
		s.kernel(l, &res, acfg)
	case ClassBatch:
		// Validate the whole group before answering any of it, so a
		// malformed point fails the batch atomically instead of handing
		// back a half-filled answer slice.
		for i, p := range q.Points {
			if p.Class != ClassDegree && p.Class != ClassNeighbors {
				res.Err = fmt.Errorf("serve: batch point %d: class %s not batchable", i, p.Class)
				return res
			}
			if int(p.V) >= view.NumVertices() {
				res.Err = fmt.Errorf("%w: batch point %d: %d >= %d", ErrBadVertex, i, p.V, view.NumVertices())
				return res
			}
		}
		res.Points = make([]PointResult, len(q.Points))
		for i, p := range q.Points {
			if p.Class == ClassDegree {
				res.Points[i].Value = int64(view.Degree(p.V))
			} else {
				res.Points[i].Verts = view.CopyNeighbors(p.V, nil)
			}
		}
	default:
		res.Err = fmt.Errorf("serve: unknown query class %d", q.Class)
	}
	if q.Class == ClassKHop || q.Class == ClassTopK || q.Class == ClassKernel {
		s.compute[q.Class].Observe(res.Compute)
	}
	return res
}

// kernelCache is the per-server PageRank maintainer synced to a lease
// generation: ClassKernel queries whose lease matches are answered from
// it without compute, newer generations advance it by their journal
// delta, and everything else (first query, overflow, budget, older
// lease) recomputes fully. The mutex serializes maintainer access; the
// counters feed Stats.Kernel.
type kernelCache struct {
	mu  sync.Mutex
	pr  *analytics.PRMaintainer
	gen uint64 // lease generation pr is synced to
	cut uint64 // that generation's journal cut
	// gens is the composite per-shard generation vector pr is synced
	// to when the store is a graph.Cluster (nil otherwise). Keying on
	// it alongside gen makes the cached path's identity the composite
	// cut itself, not merely the lease counter.
	gens []uint64

	full, incr, cached atomic.Int64
	deltaOps           atomic.Int64
}

// kernel answers a ClassKernel query: the maintained vector when the
// incremental path is on, the full fixed-iteration kernel otherwise.
// The two paths differ in truncation, not in target: the maintainer
// drains to Config.KernelEps of the stationary PageRank, which
// defaults to the fixed-iteration kernel's own truncation error
// (analytics.FixedIterTol) — so switching paths stays within the
// accuracy the full path already serves, and the incremental path
// never pays drain work for precision the baseline never had.
func (s *Server) kernel(l *Lease, res *Result, acfg analytics.Config) {
	k := &s.kern
	if s.journal == nil {
		res.Ranks, res.Compute = analytics.PageRank(l.View, analytics.PageRankIters, acfg)
		res.Kernel = KernelFull
		k.full.Add(1)
		return
	}
	k.mu.Lock()
	switch {
	case k.pr != nil && k.gen == l.Gen && slices.Equal(k.gens, l.gens):
		res.Ranks = k.pr.Ranks()
		k.mu.Unlock()
		res.Kernel = KernelCached
		k.cached.Add(1)
		return
	case k.pr == nil:
		pr, st := analytics.NewPRMaintainer(l.View, analytics.PROpts{Eps: s.cfg.KernelEps})
		k.pr, k.gen, k.cut, k.gens = pr, l.Gen, l.cut, l.gens
		res.Ranks = pr.Ranks()
		k.mu.Unlock()
		res.Compute = st.Elapsed
		res.Kernel = KernelFull
		k.full.Add(1)
		return
	case l.Gen < k.gen:
		// A query still holding an older generation than the cache:
		// the maintainer cannot rewind, so recompute over the old view
		// outside the cache lock and leave the cache alone.
		k.mu.Unlock()
		res.Ranks, res.Compute = analytics.PageRank(l.View, analytics.PageRankIters, acfg)
		res.Kernel = KernelFull
		k.full.Add(1)
		return
	}
	delta := s.journal.Between(k.cut, l.cut)
	st := k.pr.Update(l.View, delta)
	k.gen, k.cut, k.gens = l.Gen, l.cut, l.gens
	res.Ranks = k.pr.Ranks()
	k.mu.Unlock()
	res.Compute = st.Elapsed
	res.DeltaOps = st.Ops
	if st.Full {
		res.Kernel = KernelFull
		k.full.Add(1)
	} else {
		res.Kernel = KernelIncremental
		k.incr.Add(1)
		k.deltaOps.Add(int64(st.Ops))
	}
}
