package serve

import (
	"errors"
	"fmt"
	"time"

	"dgap/internal/analytics"
	"dgap/internal/graph"
)

// Class is a query class; each class has its own latency histogram.
type Class int

const (
	// ClassDegree answers one vertex's out-degree.
	ClassDegree Class = iota
	// ClassNeighbors copies one vertex's neighbor list.
	ClassNeighbors
	// ClassKHop counts the vertices within K hops of V.
	ClassKHop
	// ClassTopK ranks the K highest-degree vertices.
	ClassTopK
	// ClassKernel refreshes a PageRank vector over the leased snapshot.
	ClassKernel

	nClasses
)

// NumClasses is the query-class count (histograms, benchmark sweeps).
const NumClasses = int(nClasses)

func (c Class) String() string {
	switch c {
	case ClassDegree:
		return "degree"
	case ClassNeighbors:
		return "neighbors"
	case ClassKHop:
		return "khop"
	case ClassTopK:
		return "topk"
	case ClassKernel:
		return "kernel"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Query is one request against the served graph.
type Query struct {
	Class Class
	// V is the subject vertex (ClassDegree, ClassNeighbors, ClassKHop).
	V graph.V
	// K is the hop bound (ClassKHop) or ranking size (ClassTopK).
	K int
}

// Result is a query's answer, tagged with the lease generation and
// snapshot edge count it was served from — the bounded-staleness
// provenance a caller (or the mixed benchmark's concurrency check) can
// inspect.
type Result struct {
	Query Query
	// Gen is the lease generation the query was served from.
	Gen uint64
	// Edges is the snapshot's visible edge count — fixed per generation,
	// so it grows across generations while ingest runs underneath.
	Edges int64
	// Value carries scalar answers: the degree (ClassDegree) or the
	// k-hop reach count (ClassKHop).
	Value int64
	// Verts carries vertex-list answers: the neighbor list
	// (ClassNeighbors) or the top-k ranking (ClassTopK).
	Verts []graph.V
	// Degrees holds each ranked vertex's degree (ClassTopK), read from
	// the same snapshot as the ranking so the pair is self-consistent
	// even while leases refresh underneath.
	Degrees []int
	// Ranks is the refreshed PageRank vector (ClassKernel).
	Ranks []float64
	// Latency is the submit-to-completion time, queue wait included.
	Latency time.Duration
	Err     error
}

// ErrBadVertex rejects queries naming a vertex outside the snapshot's
// id space — backends index their degree tables unchecked, so the
// serving tier must not let a malformed query reach them.
var ErrBadVertex = errors.New("serve: vertex out of range")

// execute runs one query against the current lease's View. The lease is
// held exactly for the query's execution, so a refresh triggered by a
// concurrent query can never tear this query's snapshot down; the
// View's bulk fast path was resolved once when the lease was minted.
func (s *Server) execute(q Query) Result {
	l := s.Acquire()
	if l == nil {
		return Result{Query: q, Err: ErrClosed}
	}
	defer l.Release()
	view := l.View
	res := Result{Query: q, Gen: l.Gen, Edges: view.NumEdges()}
	if q.Class != ClassTopK && q.Class != ClassKernel && int(q.V) >= view.NumVertices() {
		res.Err = fmt.Errorf("%w: %d >= %d", ErrBadVertex, q.V, view.NumVertices())
		return res
	}
	acfg := analytics.Config{Threads: s.cfg.AnalyticsThreads}
	switch q.Class {
	case ClassDegree:
		res.Value = int64(view.Degree(q.V))
	case ClassNeighbors:
		res.Verts = view.CopyNeighbors(q.V, nil)
	case ClassKHop:
		n, _ := analytics.KHop(view, q.V, q.K, acfg)
		res.Value = int64(n)
	case ClassTopK:
		res.Verts, _ = analytics.TopKDegree(view, q.K, acfg)
		res.Degrees = make([]int, len(res.Verts))
		for i, v := range res.Verts {
			res.Degrees[i] = view.Degree(v)
		}
	case ClassKernel:
		res.Ranks, _ = analytics.PageRank(view, analytics.PageRankIters, acfg)
	default:
		res.Err = fmt.Errorf("serve: unknown query class %d", q.Class)
	}
	return res
}
