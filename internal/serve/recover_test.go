package serve

import (
	"errors"
	"testing"

	"dgap/internal/bal"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
	"dgap/internal/workload"
)

// servedCrash is the injected-crash panic payload for the serving-tier
// restart tests.
type servedCrash struct{ point string }

// crashyDGAP builds a deliberately small DGAP so a modest churn stream
// hits merges, rebalances and restructures while being served.
func crashyDGAP(t *testing.T, nVert int) (*dgap.Graph, dgap.Config) {
	t.Helper()
	cfg := dgap.DefaultConfig(nVert, 256)
	cfg.SectionSlots = 32
	cfg.ELogSize = 256
	cfg.ULogSize = 256
	g, err := dgap.New(pmem.New(256<<20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, cfg
}

// ingestUntilCrash streams ops through srv.IngestOps chunk by chunk,
// mirroring acknowledged chunks into the oracle, until the armed hook
// fires. Returns the chunk in flight at the crash, or nil when the
// stream completed without firing.
func ingestUntilCrash(t *testing.T, srv *Server, oracle *graph.Oracle, ops []graph.Op, chunk int) []graph.Op {
	t.Helper()
	for i := 0; i < len(ops); i += chunk {
		end := i + chunk
		if end > len(ops) {
			end = len(ops)
		}
		part := ops[i:end]
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(servedCrash); ok {
						crashed = true
						return
					}
					panic(r)
				}
			}()
			if _, err := srv.IngestOps(part); err != nil {
				t.Fatalf("IngestOps: %v", err)
			}
		}()
		if crashed {
			return part
		}
		if err := oracle.Apply(part); err != nil {
			t.Fatalf("oracle rejected an acknowledged chunk: %v", err)
		}
	}
	return nil
}

// TestReopenServesAckedOpsAfterCrash is the full restart drill: kill the
// stack mid-churn at an Apply boundary, abandon the old server (whose
// shutdown must refuse to stamp a clean checkpoint), power-cut the
// arena, reopen the system, re-attach a Server with Reopen, and verify
// the served view holds exactly the acknowledged op stream plus at most
// a per-source prefix of the in-flight chunk.
func TestReopenServesAckedOpsAfterCrash(t *testing.T) {
	const V = 96
	g, dcfg := crashyDGAP(t, V)
	srv, err := New(g, Config{Workers: 2, IngestShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	g.SetCrashHook(func(p string) {
		if p == "apply:flushed" {
			fired++
			if fired == 5 {
				panic(servedCrash{p})
			}
		}
	})
	edges := graphgen.Uniform(V, 16, 53)
	ops := workload.ChurnOps(edges, 192)
	oracle := graph.NewOracle()
	inflight := ingestUntilCrash(t, srv, oracle, ops, 64)
	if inflight == nil {
		t.Fatal("crash hook never fired; test is vacuous")
	}
	// The old server is attached to a poisoned instance: shutting it
	// down must surface the poison, not certify a clean shutdown.
	if err := srv.Close(); !errors.Is(err, dgap.ErrPoisoned) {
		t.Fatalf("Close of crashed server = %v, want dgap.ErrPoisoned", err)
	}

	g2, err := dgap.Open(g.Arena().Crash(), dcfg)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	srv2, rs, err := Reopen(g2, Config{Workers: 2, IngestShards: 2})
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	defer srv2.Close()
	if rs.Graceful {
		t.Fatalf("recovery stats %+v claim graceful shutdown after a crash", rs)
	}
	l := srv2.Acquire()
	if l == nil {
		t.Fatal("no lease after Reopen")
	}
	if err := oracle.CheckPrefix(l.View, inflight); err != nil {
		t.Fatalf("served view after reopen: %v", err)
	}
	l.Release()
	// The re-attached stack both serves and ingests.
	if res := srv2.Do(Query{Class: ClassDegree, V: 1}); res.Err != nil {
		t.Fatalf("query after reopen: %v", res.Err)
	}
	if _, err := srv2.IngestOps([]graph.Op{graph.OpInsert(2, 3)}); err != nil {
		t.Fatalf("ingest after reopen: %v", err)
	}
}

// TestReopenAfterChaosCrash repeats the drill with a chaotic power cut
// (each dirty line persists per-word with p=1/2), where only the
// multiset envelope is guaranteed. The chaos seed appears in every
// failure message so a failing interleaving replays exactly.
func TestReopenAfterChaosCrash(t *testing.T) {
	const V, chaosSeed = 80, int64(6871)
	g, dcfg := crashyDGAP(t, V)
	srv, err := New(g, Config{Workers: 2, IngestShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	g.SetCrashHook(func(p string) {
		if p == "rebalance:mid-move" {
			fired++
			if fired == 2 {
				panic(servedCrash{p})
			}
		}
	})
	edges := graphgen.Uniform(V, 14, 59)
	ops := workload.ChurnOps(edges, 160)
	oracle := graph.NewOracle()
	inflight := ingestUntilCrash(t, srv, oracle, ops, 48)
	if inflight == nil {
		t.Fatal("crash hook never fired; test is vacuous")
	}
	g2, err := dgap.Open(g.Arena().ChaosCrash(chaosSeed), dcfg)
	if err != nil {
		t.Fatalf("crashseed=%d: Open after chaos crash: %v", chaosSeed, err)
	}
	srv2, rs, err := Reopen(g2, Config{Workers: 2})
	if err != nil {
		t.Fatalf("crashseed=%d: Reopen: %v", chaosSeed, err)
	}
	defer srv2.Close()
	if rs.Graceful {
		t.Fatalf("crashseed=%d: stats %+v claim graceful shutdown", chaosSeed, rs)
	}
	l := srv2.Acquire()
	if err := oracle.CheckMultiset(l.View, inflight); err != nil {
		t.Fatalf("crashseed=%d: served view after chaos reopen: %v", chaosSeed, err)
	}
	l.Release()
}

// TestReopenGraceful: a checkpointed shutdown reopens on the fast path
// and Reopen reports it as such.
func TestReopenGraceful(t *testing.T) {
	cfg := dgap.DefaultConfig(16, 64)
	g, err := dgap.New(pmem.New(64<<20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InsertEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := dgap.Open(g.Arena().Crash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, rs, err := Reopen(g2, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !rs.Graceful {
		t.Fatalf("stats %+v after graceful shutdown, want Graceful", rs)
	}
	if res := srv.Do(Query{Class: ClassDegree, V: 1}); res.Err != nil || res.Value != 1 {
		t.Fatalf("degree(1) = %d (err %v), want 1", res.Value, res.Err)
	}
}

// TestReopenRejections: Reopen refuses both a backend with no recovery
// capability and a recoverable backend that was created fresh rather
// than attached from a media image.
func TestReopenRejections(t *testing.T) {
	if _, _, err := Reopen(bal.New(pmem.New(4<<20), 8), Config{}); !errors.Is(err, graph.ErrRecoveryUnsupported) {
		t.Fatalf("Reopen of non-recoverable system = %v, want ErrRecoveryUnsupported", err)
	}
	g, err := dgap.New(pmem.New(64<<20), dgap.DefaultConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Reopen(g, Config{}); err == nil || errors.Is(err, graph.ErrRecoveryUnsupported) {
		t.Fatalf("Reopen of fresh system = %v, want created-fresh rejection", err)
	}
}
