package serve

import (
	"fmt"

	"dgap/internal/graph"
)

// Reopen attaches a fresh Server to a graph system that was just
// recovered from its media image — the serving half of a restart after
// power failure.
//
// The caller is responsible for the system half first: reopen the
// backend from its arena image (e.g. dgap.Open over pmem.Arena.Crash's
// survivor) and hand the result here. A Server that was attached to the
// crashed instance must simply be abandoned — an injected or real crash
// leaves the old instance's locks in an undefined state, and its
// Close/Checkpoint refuse with the backend's poison error rather than
// stamp a half-applied structural operation as a clean shutdown.
//
// Reopen verifies the handoff rather than trusting it: the system must
// implement graph.Recoverable (else graph.ErrRecoveryUnsupported), and
// its Recovery() stats must report an actual attach from media — a
// freshly created system is rejected, because "serving an empty graph"
// is the classic silent failure mode of a restart path. On success the
// first lease generation is already minted, so a nil error means the
// server is answering queries now, not at first use; the returned stats
// are the backend's own attach report (graceful or crash path, replayed
// ops, scrubbed torn writes, attach time).
func Reopen(sys graph.System, cfg Config) (*Server, graph.RecoveryStats, error) {
	rc, ok := sys.(graph.Recoverable)
	if !ok {
		return nil, graph.RecoveryStats{}, fmt.Errorf("serve: reopen %s: %w", sys.Name(), graph.ErrRecoveryUnsupported)
	}
	rs, attached := rc.Recovery()
	if !attached {
		return nil, graph.RecoveryStats{}, fmt.Errorf("serve: reopen %s: system was created fresh, not attached from a media image", sys.Name())
	}
	srv, err := New(sys, cfg)
	if err != nil {
		return nil, rs, err
	}
	// Prime the first lease: a recovery-surfaced failure in snapshot
	// construction fails Reopen instead of the first customer query, and
	// that query pays no snapshot-minting latency.
	l := srv.Acquire()
	if l == nil {
		srv.Close()
		return nil, rs, ErrClosed
	}
	l.Release()
	return srv, rs, nil
}
