package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgap/internal/analytics"
	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
	"dgap/internal/workload"
)

func buildDGAP(t *testing.T, nVert int, nEdges int) *dgap.Graph {
	t.Helper()
	a := pmem.New(256 << 20)
	cfg := dgap.DefaultConfig(nVert, int64(nEdges))
	cfg.SectionSlots = 64
	cfg.ELogSize = 512
	g, err := dgap.New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestQueriesMatchDirectSnapshot: every query class answered through
// the server agrees with the same computation run directly against a
// snapshot of the loaded graph.
func TestQueriesMatchDirectSnapshot(t *testing.T) {
	const V = 120
	edges := graphgen.Uniform(V, 10, 31)
	g := buildDGAP(t, V, len(edges))
	if err := g.InsertBatch(edges); err != nil {
		t.Fatal(err)
	}
	srv, err := New(g, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	direct := graph.ViewOf(g.Snapshot())
	for v := graph.V(0); v < 8; v++ {
		if res := srv.Do(Query{Class: ClassDegree, V: v}); res.Err != nil || res.Value != int64(direct.Degree(v)) {
			t.Fatalf("degree(%d) = %d (err %v), want %d", v, res.Value, res.Err, direct.Degree(v))
		}
		res := srv.Do(Query{Class: ClassNeighbors, V: v})
		want := direct.CopyNeighbors(v, nil)
		if res.Err != nil || len(res.Verts) != len(want) {
			t.Fatalf("neighbors(%d) = %v (err %v), want %v", v, res.Verts, res.Err, want)
		}
		for i := range want {
			if res.Verts[i] != want[i] {
				t.Fatalf("neighbors(%d)[%d] = %d, want %d", v, i, res.Verts[i], want[i])
			}
		}
	}
	wantHop, _ := analytics.KHop(direct, 3, 2, analytics.Serial)
	if res := srv.Do(Query{Class: ClassKHop, V: 3, K: 2}); res.Err != nil || res.Value != int64(wantHop) {
		t.Fatalf("khop(3,2) = %d (err %v), want %d", res.Value, res.Err, wantHop)
	}
	wantTop, _ := analytics.TopKDegree(direct, 5, analytics.Serial)
	res := srv.Do(Query{Class: ClassTopK, K: 5})
	if res.Err != nil || len(res.Verts) != len(wantTop) {
		t.Fatalf("topk(5) = %v (err %v), want %v", res.Verts, res.Err, wantTop)
	}
	for i := range wantTop {
		if res.Verts[i] != wantTop[i] {
			t.Fatalf("topk[%d] = %d, want %d", i, res.Verts[i], wantTop[i])
		}
	}
	if res := srv.Do(Query{Class: ClassKernel}); res.Err != nil || len(res.Ranks) != V {
		t.Fatalf("kernel refresh: %d ranks (err %v), want %d", len(res.Ranks), res.Err, V)
	}
	// Every result carries its provenance.
	if res := srv.Do(Query{Class: ClassDegree, V: 0}); res.Gen == 0 || res.Edges != int64(len(edges)) {
		t.Fatalf("provenance gen=%d edges=%d, want gen>0 edges=%d", res.Gen, res.Edges, len(edges))
	}
	if res := srv.Do(Query{Class: Class(99)}); res.Err == nil {
		t.Fatal("unknown class accepted")
	}
	// Out-of-range vertices are rejected with an error, not a panic in
	// a worker (backends index their degree tables unchecked).
	for _, c := range []Class{ClassDegree, ClassNeighbors, ClassKHop} {
		if res := srv.Do(Query{Class: c, V: graph.V(1 << 28), K: 2}); !errors.Is(res.Err, ErrBadVertex) {
			t.Errorf("%v with huge vertex: err = %v, want ErrBadVertex", c, res.Err)
		}
	}
	// TopK degrees come from the same snapshot as the ranking.
	if res := srv.Do(Query{Class: ClassTopK, K: 3}); res.Err != nil || len(res.Degrees) != len(res.Verts) {
		t.Fatalf("topk degrees %v for verts %v (err %v)", res.Degrees, res.Verts, res.Err)
	} else {
		for i, v := range res.Verts {
			if res.Degrees[i] != direct.Degree(v) {
				t.Errorf("topk degree[%d] = %d, want %d", i, res.Degrees[i], direct.Degree(v))
			}
		}
	}
}

// TestMixedReadWriteConcurrency is the subsystem's reason to exist,
// checked under -race: ingest streams through the router's per-shard
// DGAP writers while query clients hammer the server, and the results
// prove genuine overlap — queries complete while ingest is mid-stream,
// lease generations advance, and successive generations observe the
// edge count growing.
func TestMixedReadWriteConcurrency(t *testing.T) {
	const V = 512
	edges := graphgen.Uniform(V, 12, 7)
	g := buildDGAP(t, V, len(edges))

	warm, timed := workload.Split(edges)
	if err := g.InsertBatch(warm); err != nil {
		t.Fatal(err)
	}

	const shards = 4
	sinks, release, err := workload.DGAPSinks(g, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Pace each batch slightly so the ingest window reliably spans many
	// query completions regardless of scheduler timing; the pause is a
	// yield point, not a phase barrier — queries run throughout.
	paced := make([]graph.Applier, shards)
	for i := range paced {
		paced[i] = pacedSink{sinks[i]}
	}
	srv, err := New(g, Config{
		MaxStalenessEdges: 128,
		MaxStalenessAge:   -1,
		Workers:           4,
		IngestShards:      shards,
		IngestBatch:       64,
		Scope:             workload.ScopeSection,
		Sinks:             paced,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Hold ingest until the serving side is demonstrably live, so the
	// overlap check cannot be defeated by ingest winning the initial
	// scheduling race.
	served := make(chan struct{})
	var once sync.Once
	var ingesting atomic.Bool
	ingestDone := make(chan error, 1)
	ingesting.Store(true)
	go func() {
		<-served
		_, err := srv.Ingest(timed)
		ingesting.Store(false)
		ingestDone <- err
	}()

	var (
		mu               sync.Mutex
		duringIngest     int
		minGen, maxGen   uint64
		minEdge, maxEdge int64
	)
	minGen, minEdge = ^uint64(0), int64(1)<<62
	record := func(res Result) {
		if res.Err != nil {
			t.Errorf("query failed: %v", res.Err)
			return
		}
		once.Do(func() { close(served) })
		mid := ingesting.Load()
		mu.Lock()
		if mid {
			duringIngest++
		}
		minGen, maxGen = min(minGen, res.Gen), max(maxGen, res.Gen)
		minEdge, maxEdge = min(minEdge, res.Edges), max(maxEdge, res.Edges)
		mu.Unlock()
	}

	const clients = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ingesting.Load() || i < 50; i++ {
				q := Query{Class: Class(i % 3), V: graph.V((c*31 + i) % V), K: 2}
				record(srv.Do(q))
			}
		}(c)
	}
	if err := <-ingestDone; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	if duringIngest == 0 {
		t.Error("no query completed while ingest was active — the workload phase-alternated")
	}
	if maxGen <= minGen {
		t.Errorf("lease generations never advanced under ingest (gen %d..%d)", minGen, maxGen)
	}
	if maxEdge <= minEdge {
		t.Errorf("queries never observed the graph growing (edges %d..%d)", minEdge, maxEdge)
	}
	// The finished graph must contain exactly the full stream.
	if got := g.Snapshot().NumEdges(); got != int64(len(edges)) {
		t.Errorf("after mixed run: %d edges, want %d", got, len(edges))
	}
}

// pacedSink inserts a short pause after each applied batch (see
// TestMixedReadWriteConcurrency).
type pacedSink struct{ ap graph.Applier }

func (p pacedSink) ApplyOps(ops []graph.Op) error {
	if err := p.ap.ApplyOps(ops); err != nil {
		return err
	}
	time.Sleep(100 * time.Microsecond)
	return nil
}

// slowSys serves 1ms degree reads, for admission-control tests.
type slowSys struct{ fakeSys }

type slowSnap struct{ *fakeSnap }

func (s *slowSys) Snapshot() graph.Snapshot {
	return slowSnap{s.fakeSys.Snapshot().(*fakeSnap)}
}

func (s slowSnap) Degree(v graph.V) int {
	time.Sleep(time.Millisecond)
	return s.fakeSnap.Degree(v)
}

func TestAdmissionControl(t *testing.T) {
	srv, err := New(&slowSys{}, Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var accepted []<-chan Result
	rejected := 0
	for i := 0; i < 12; i++ {
		ch, err := srv.TrySubmit(Query{Class: ClassDegree})
		switch {
		case err == nil:
			accepted = append(accepted, ch)
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Fatal(err)
		}
	}
	if rejected == 0 {
		t.Error("12 instant submits against workers=1 depth=1 never shed load")
	}
	for _, ch := range accepted {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := srv.Stats()
	if st.Rejected != int64(rejected) {
		t.Errorf("Stats.Rejected = %d, want %d", st.Rejected, rejected)
	}
	if st.ShedTotal != st.Rejected {
		t.Errorf("Stats.ShedTotal = %d, want %d (canonical name for the same counter)", st.ShedTotal, st.Rejected)
	}
	if st.QueueDepth < 0 || st.QueueDepth > 1 {
		t.Errorf("Stats.QueueDepth = %d with depth-1 queue", st.QueueDepth)
	}
	if st.InFlight < 0 || st.InFlight > 1 {
		t.Errorf("Stats.InFlight = %d with one worker", st.InFlight)
	}
}

func TestClosedServerRejects(t *testing.T) {
	srv, err := New(&fakeSys{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if res := srv.Do(Query{Class: ClassDegree}); !errors.Is(res.Err, ErrClosed) {
		t.Errorf("Do after Close: %v, want ErrClosed", res.Err)
	}
	if _, err := srv.TrySubmit(Query{Class: ClassDegree}); !errors.Is(err, ErrClosed) {
		t.Errorf("TrySubmit after Close: %v, want ErrClosed", err)
	}
	if err := srv.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close: %v, want ErrClosed", err)
	}
	// Raw lease acquisition is also shut off: a post-Close Acquire would
	// mint a generation nothing ever retires (and snapshot a system that
	// may already be closed).
	if l := srv.Acquire(); l != nil {
		t.Error("Acquire after Close returned a live lease")
	}
}

func TestStatsHistograms(t *testing.T) {
	const V = 64
	edges := graphgen.Uniform(V, 8, 13)
	g := buildDGAP(t, V, len(edges))
	if err := g.InsertBatch(edges); err != nil {
		t.Fatal(err)
	}
	srv, err := New(g, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if res := srv.Do(Query{Class: ClassDegree, V: graph.V(i % V)}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := srv.Stats()
	cs := st.Classes[ClassDegree]
	if cs.Count != n {
		t.Fatalf("degree count = %d, want %d", cs.Count, n)
	}
	if cs.P50 <= 0 || cs.P99 < cs.P50 || cs.QPS <= 0 {
		t.Errorf("degenerate stats: p50=%v p99=%v qps=%v", cs.P50, cs.P99, cs.QPS)
	}
	if st.Classes[ClassKernel].Count != 0 {
		t.Errorf("kernel histogram polluted: %d", st.Classes[ClassKernel].Count)
	}
	if st.Generations == 0 {
		t.Error("no lease generation recorded")
	}
}
