package serve

import (
	"net/http"
	"net/http/pprof"

	"dgap/internal/obs"
)

// DebugMux returns the server's live introspection surface, ready to
// hand to http.Serve on whatever listener the operator chose:
//
//	/metrics     every registered instrument, flat text (?format=json
//	             or an Accept: application/json header selects JSON)
//	/stats       the Stats() snapshot as JSON — the same shape
//	             dgap-bench records per serve row
//	/slow        the slow-query ring as JSON, newest first, each entry
//	             carrying its per-phase trace span
//	/debug/pprof the stdlib profiler endpoints
//
// The mux only reads: it holds no locks across requests and exposes no
// mutation, so exposing it costs the serving path nothing beyond the
// instruments it already maintains.
func (s *Server) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(s.reg))
	mux.Handle("/slow", obs.SlowLogHandler(s.slow))
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		obs.WriteJSONResponse(w, s.Stats())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
