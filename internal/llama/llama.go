// Package llama implements the LLAMA-like baseline: a multi-versioned
// CSR. Updates accumulate in a DRAM delta buffer; every batch boundary
// (the paper snapshots after each 1% of the graph) freezes the buffer
// into an immutable CSR *snapshot level* on persistent memory. A
// per-level vertex indirection table points either at the level's own
// adjacency fragment — chained to the previous level's fragment — or
// transparently falls through to older levels. Analysis reads the newest
// level and walks fragment chains (the version-chasing that costs LLAMA
// analysis performance in Figures 7-8), and updates buffered since the
// last batch are invisible to analysis (the staleness the paper
// criticizes).
//
// Porting note (mirrors the paper's methodology): LLAMA's snapshot files
// simply live on the PM arena — a "naive port" of a block-device design
// to persistent memory.
package llama

import (
	"encoding/binary"
	"sync"
	"time"

	"dgap/internal/graph"
	"dgap/internal/pmem"
)

// IngestCPUCost models LLAMA's per-edge buffering overhead (delta-map
// maintenance, multiversion bookkeeping) that the lean Go buffer append
// does not reproduce. Calibrated against LLAMA's published single-thread
// insert throughput (0.4-2.1 MEPS depending on graph, Figure 6 of the
// DGAP paper); DESIGN.md records the calibration.
var IngestCPUCost = 350 * time.Nanosecond

func busy(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// Graph is a multi-versioned CSR.
type Graph struct {
	a *pmem.Arena

	mu        sync.RWMutex
	nVert     int
	batchSize int // edges per snapshot level
	buffer    []graph.Edge
	levels    []*level
	edges     int64 // edges across all frozen levels
}

// level is one immutable snapshot delta on PM.
type level struct {
	// frag[v] = offset of v's fragment in this level, or 0.
	// Fragment layout: [prev u64][deg u64][dst u32 * deg]
	frag map[graph.V]pmem.Off
}

// New creates a LLAMA-like store. batchSize is the number of buffered
// edges per snapshot (the paper uses 1% of the target graph).
func New(a *pmem.Arena, nVert, batchSize int) *Graph {
	if batchSize < 1 {
		batchSize = 1
	}
	return &Graph{a: a, nVert: nVert, batchSize: batchSize}
}

// Name implements graph.System.
func (g *Graph) Name() string { return "LLAMA" }

// InsertEdge buffers the edge in DRAM; durability only comes at the next
// snapshot boundary (LLAMA's design point, and its weakness on PM).
func (g *Graph) InsertEdge(src, dst graph.V) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if int(src) >= g.nVert {
		g.nVert = int(src) + 1
	}
	if int(dst) >= g.nVert {
		g.nVert = int(dst) + 1
	}
	g.buffer = append(g.buffer, graph.Edge{Src: src, Dst: dst})
	busy(IngestCPUCost)
	if len(g.buffer) >= g.batchSize {
		return g.freezeLocked()
	}
	return nil
}

// InsertBatch implements graph.BatchWriter: the delta buffer takes the
// whole batch under one lock acquisition and one calibrated CPU-cost
// charge, freezing a snapshot level at exactly the same batchSize
// boundaries the scalar path would — so the level structure (and hence
// per-vertex iteration order) is identical to edge-at-a-time insertion.
func (g *Graph) InsertBatch(edges []graph.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range edges {
		if int(e.Src) >= g.nVert {
			g.nVert = int(e.Src) + 1
		}
		if int(e.Dst) >= g.nVert {
			g.nVert = int(e.Dst) + 1
		}
	}
	busy(time.Duration(len(edges)) * IngestCPUCost)
	for len(edges) > 0 {
		room := g.batchSize - len(g.buffer)
		if room > len(edges) {
			room = len(edges)
		}
		g.buffer = append(g.buffer, edges[:room]...)
		edges = edges[room:]
		if len(g.buffer) >= g.batchSize {
			if err := g.freezeLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Freeze forces the current buffer into a snapshot level (exposed so
// benchmarks can flush trailing edges before analysis).
func (g *Graph) Freeze() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.buffer) == 0 {
		return nil
	}
	return g.freezeLocked()
}

func (g *Graph) freezeLocked() error {
	bysrc := graph.GroupBySrc(g.buffer)
	lv := &level{frag: make(map[graph.V]pmem.Off, len(bysrc))}
	var prevLevel *level
	if len(g.levels) > 0 {
		prevLevel = g.levels[len(g.levels)-1]
	}
	for _, run := range bysrc {
		v, dsts := run.Src, run.Dsts
		size := 16 + uint64(len(dsts))*4
		off, err := g.a.AllocRegion("llama: level fragment", size, pmem.CacheLineSize)
		if err != nil {
			return err
		}
		var prev pmem.Off
		if prevLevel != nil {
			prev = g.chainHead(prevLevel, v)
		} else if len(g.levels) > 0 {
			prev = g.chainHead(g.levels[len(g.levels)-1], v)
		}
		g.a.WriteU64(off, prev)
		g.a.WriteU64(off+8, uint64(len(dsts)))
		buf := make([]byte, len(dsts)*4)
		for i, d := range dsts {
			binary.LittleEndian.PutUint32(buf[i*4:], d)
		}
		g.a.WriteBytes(off+16, buf)
		g.a.Flush(off, size)
		lv.frag[v] = off
	}
	g.a.Fence()
	g.levels = append(g.levels, lv)
	g.edges += int64(len(g.buffer))
	g.buffer = g.buffer[:0]
	return nil
}

// chainHead finds v's newest fragment at or before the given level.
func (g *Graph) chainHead(from *level, v graph.V) pmem.Off {
	if off, ok := from.frag[v]; ok {
		return off
	}
	for i := len(g.levels) - 1; i >= 0; i-- {
		if off, ok := g.levels[i].frag[v]; ok {
			return off
		}
	}
	return 0
}

// Snapshot returns a view over the frozen levels. Buffered edges are NOT
// visible — analysis in LLAMA can only read created snapshots, which is
// why its graph analysis may miss up to one batch of edges.
func (g *Graph) Snapshot() graph.Snapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := &Snapshot{g: g, nVert: g.nVert, edges: g.edges, heads: make([]pmem.Off, g.nVert)}
	for i := len(g.levels) - 1; i >= 0; i-- {
		for v, off := range g.levels[i].frag {
			if int(v) < g.nVert && s.heads[v] == 0 {
				s.heads[v] = off
			}
		}
	}
	for v := 0; v < g.nVert; v++ {
		n := int64(0)
		for off := s.heads[v]; off != 0; off = g.a.ReadU64(off) {
			n += int64(g.a.ReadU64(off + 8))
		}
		s.deg = append(s.deg, int(n))
	}
	return s
}

// Snapshot is a frozen multi-version view.
type Snapshot struct {
	g     *Graph
	nVert int
	edges int64
	heads []pmem.Off
	deg   []int
}

// NumVertices implements graph.Snapshot.
func (s *Snapshot) NumVertices() int { return s.nVert }

// NumEdges implements graph.Snapshot.
func (s *Snapshot) NumEdges() int64 { return s.edges }

// Degree implements graph.Snapshot.
func (s *Snapshot) Degree(v graph.V) int { return s.deg[v] }

// Neighbors walks the version chain newest-to-oldest; within a fragment
// edges stream sequentially, but each hop is a dependent PM read.
func (s *Snapshot) Neighbors(v graph.V, fn func(graph.V) bool) {
	a := s.g.a
	for off := s.heads[v]; off != 0; off = a.ReadU64(off) {
		deg := a.ReadU64(off + 8)
		view := a.Slice(off+16, deg*4)
		for i := uint64(0); i < deg; i++ {
			if !fn(graph.V(binary.LittleEndian.Uint32(view[i*4:]))) {
				return
			}
		}
	}
}

// CopyNeighbors implements graph.BulkSnapshot: the same newest-to-oldest
// version-chain walk as Neighbors, with each fragment copied in one
// memmove through the arena's zero-copy u32 view (per-slot decode on
// non-little-endian hosts).
func (s *Snapshot) CopyNeighbors(v graph.V, buf []graph.V) []graph.V {
	a := s.g.a
	for off := s.heads[v]; off != 0; off = a.ReadU64(off) {
		deg := a.ReadU64(off + 8)
		if u32, ok := a.ViewU32(off+16, deg); ok {
			buf = append(buf, u32...)
			continue
		}
		view := a.Slice(off+16, deg*4)
		for i := uint64(0); i < deg; i++ {
			buf = append(buf, graph.V(binary.LittleEndian.Uint32(view[i*4:])))
		}
	}
	return buf
}
