package llama

import (
	"testing"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

func TestBatchingFreezesAutomatically(t *testing.T) {
	g := New(pmem.New(64<<20), 8, 10)
	for i := 0; i < 25; i++ {
		if err := g.InsertEdge(graph.V(i%8), graph.V((i+1)%8)); err != nil {
			t.Fatal(err)
		}
	}
	// 25 inserts with batch 10: two frozen levels (20 edges), 5 buffered.
	s := g.Snapshot()
	if got := graph.CountEdges(s); got != 20 {
		t.Errorf("visible edges = %d, want 20 (two frozen batches)", got)
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	if got := graph.CountEdges(g.Snapshot()); got != 25 {
		t.Errorf("after Freeze: %d, want 25", got)
	}
}

func TestVersionChainAccumulates(t *testing.T) {
	g := New(pmem.New(64<<20), 4, 2)
	// Vertex 1 receives edges across many levels.
	dsts := []graph.V{0, 2, 3, 0, 2, 3}
	for _, d := range dsts {
		if err := g.InsertEdge(1, d); err != nil {
			t.Fatal(err)
		}
		if err := g.InsertEdge(d, 1); err != nil { // interleave other sources
			t.Fatal(err)
		}
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	s := g.Snapshot()
	if s.Degree(1) != len(dsts) {
		t.Errorf("Degree(1) = %d, want %d", s.Degree(1), len(dsts))
	}
	got := map[graph.V]int{}
	s.Neighbors(1, func(d graph.V) bool { got[d]++; return true })
	want := map[graph.V]int{0: 2, 2: 2, 3: 2}
	for d, n := range want {
		if got[d] != n {
			t.Errorf("1->%d: %d, want %d", d, got[d], n)
		}
	}
}

func TestFrozenLevelsSurviveCrashImage(t *testing.T) {
	a := pmem.New(64 << 20)
	g := New(a, 16, 8)
	edges := graphgen.Uniform(16, 4, 21)
	for _, e := range edges {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot().(*Snapshot)
	img := a.Crash()
	// Fragments live on PM and were flushed at freeze time: re-walk the
	// chains against the crashed image.
	total := int64(0)
	for v := 0; v < 16; v++ {
		for off := snap.heads[v]; off != 0; off = img.ReadU64(off) {
			total += int64(img.ReadU64(off + 8))
		}
	}
	if total != int64(len(edges)) {
		t.Errorf("crash image fragments hold %d edges, want %d", total, len(edges))
	}
}

func TestVertexGrowthViaInsert(t *testing.T) {
	g := New(pmem.New(64<<20), 2, 4)
	if err := g.InsertEdge(50, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	if g.Snapshot().NumVertices() != 51 {
		t.Errorf("NumVertices = %d", g.Snapshot().NumVertices())
	}
}
