package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

func randFrame(rng *rand.Rand) Frame {
	f := Frame{Header: Header{
		Version: byte(rng.Intn(4)),
		Op:      Op(rng.Intn(256)),
		Class:   Class(rng.Intn(4)),
		Flags:   byte(rng.Intn(2)),
		Tenant:  rng.Uint32(),
		ID:      rng.Uint64(),
	}}
	if n := rng.Intn(512); n > 0 {
		f.Payload = make([]byte, n)
		rng.Read(f.Payload)
	}
	return f
}

func framesEqual(a, b Frame) bool {
	return a.Header == b.Header && bytes.Equal(a.Payload, b.Payload)
}

// TestFrameRoundTrip: random frames survive Append → Decode and
// Append → ReadFrame byte-exactly, including multi-frame buffers.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		f := randFrame(rng)
		enc := AppendFrame(nil, &f)
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if !framesEqual(f, got) {
			t.Fatalf("decode mismatch: %+v != %+v", got, f)
		}
		rf, err := ReadFrame(bytes.NewReader(enc), 0)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !framesEqual(f, rf) {
			t.Fatalf("read mismatch: %+v != %+v", rf, f)
		}
	}

	// A pipelined buffer of several frames decodes in order.
	var buf []byte
	var want []Frame
	for i := 0; i < 20; i++ {
		f := randFrame(rng)
		want = append(want, f)
		buf = AppendFrame(buf, &f)
	}
	rest := buf
	for i, w := range want {
		f, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !framesEqual(w, f) {
			t.Fatalf("frame %d mismatch", i)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

// TestFrameDecodeErrors: truncated, oversized and undersized prefixes
// fail with their typed errors and never panic.
func TestFrameDecodeErrors(t *testing.T) {
	f := Frame{Header: Header{Version: 1, Op: OpDegree, ID: 7}, Payload: make([]byte, 32)}
	enc := AppendFrame(nil, &f)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeFrame(enc[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err %v, want ErrTruncated", cut, err)
		}
		_, err := ReadFrame(bytes.NewReader(enc[:cut]), 0)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("empty read: %v, want io.EOF", err)
			}
		} else if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d read: %v, want unexpected EOF", cut, err)
		}
	}
	// Length prefix below the header size.
	small := []byte{0, 0, 0, HeaderLen - 1}
	if _, _, err := DecodeFrame(small); !errors.Is(err, ErrBadLength) {
		t.Fatalf("short length: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(small), 0); !errors.Is(err, ErrBadLength) {
		t.Fatalf("short length read: %v", err)
	}
	// Length prefix beyond the limit: rejected before any body read.
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := DecodeFrame(big); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(big), 1<<16); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized read: %v", err)
	}
	// The per-connection limit applies even below the hard cap.
	mid := AppendFrame(nil, &Frame{Header: Header{Version: 1, Op: OpPing}, Payload: make([]byte, 4096)})
	if _, err := ReadFrame(bytes.NewReader(mid), 1024); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("per-conn limit: %v", err)
	}
}
