// Package wire is dgap-serve's production network front end: a
// length-prefixed binary protocol with pipelining and batching, a
// per-tenant QoS admission layer over the serving tier's worker pool,
// and a compatibility listener for the legacy line protocol.
//
// # Architecture
//
// Three layers sit between the socket and serve.Server:
//
//	socket → conn (reader/writer, in-flight window) → QoS scheduler → serve.Do
//
// Each accepted connection runs one reader and one writer goroutine.
// The reader decodes frames and acquires a window slot per request
// before it goes anywhere; a full window (Config.Window, default 64
// in-flight requests) stops the reader, the socket buffer fills, and
// TCP flow control carries the backpressure to the client. The writer
// drains a bounded response channel, releasing the slot per response
// and flushing whenever the channel momentarily empties — pipelined
// bursts coalesce into few syscalls, an idle connection's answer is
// never delayed by a timer.
//
// Between the connections and the serving layer sits the QoS
// scheduler: per-class bounded admission queues with per-tenant
// occupancy caps, dispatched by smooth weighted round-robin (defaults:
// interactive 8, analytics 1) onto a fixed dispatcher pool that calls
// into serve.Server. Arrivals beyond a class queue — or beyond one
// tenant's share of it — are shed immediately with a typed overload
// error carrying a retry-after hint derived from the queue depth and
// the class's observed service time, instead of silently blocking the
// connection.
//
// # Frame layout
//
// Every frame — request or response, both directions — is:
//
//	u32  body length N (big-endian; HeaderLen ≤ N ≤ MaxFrame)
//	u8   version      (ProtoVersion)
//	u8   opcode       (Op; high bit set on responses)
//	u8   class        (QoS class; echoed on responses)
//	u8   flags        (must be zero in version 1)
//	u32  tenant       (big-endian; echoed on responses)
//	u64  request id   (big-endian; echoed on responses)
//	...  payload      (N - 16 bytes, opcode-specific)
//
// The request id is assigned by the client and echoed verbatim, so a
// pipelined connection matches responses — which may arrive in any
// order — to requests. All integers are big-endian; floats are IEEE
// 754 bit patterns in a u64.
//
// # Opcodes
//
// Requests (payloads in parentheses):
//
//	0x01 ping       ()                        liveness probe, skips QoS
//	0x02 degree     (v u64)                   out-degree of v
//	0x03 neighbors  (v u64)                   neighbor list of v
//	0x04 khop       (v u64, k u32)            vertices within k hops
//	0x05 topk       (k u32)                   k highest-degree vertices
//	0x06 pagerank   ()                        refresh + summarize ranks
//	0x07 batch      (n u16, n×{op u8, v u64}) grouped point reads
//
// Responses:
//
//	0x81 pong       ()
//	0x82 value      (gen u64, edges u64, value i64)
//	0x83 verts      (gen u64, edges u64, n u32, n×vertex u64)
//	0x84 topk       (gen u64, edges u64, n u32, n×{vertex u64, degree u64})
//	0x85 rank       (gen u64, edges u64, nRanks u32, top u64, score f64)
//	0x86 batch      (gen u64, edges u64, n u16, n×{op u8, answer})
//	0xFF error      (code u16, retryAfter u32 µs, msgLen u16, msg)
//
// Every success response (pong excepted) leads with the lease
// generation and snapshot edge count it was served from — the bounded-
// staleness provenance the line protocol prints as "gen=G edges=E".
// A batch is answered under one admission ticket and one snapshot:
// every point answer shares the frame's provenance.
//
// # Error codes
//
//	1 bad-frame    protocol violation in the frame (connection stays up)
//	2 bad-vertex   vertex outside the snapshot's id space
//	3 overloaded   shed by admission; retryAfter carries the backoff hint
//	4 shutdown     server draining, no longer admitting
//	5 version      protocol version not served
//	6 unknown-op   opcode not recognized
//	7 internal     the serving layer failed the query
//
// Errors are responses, not connection faults: after any typed error
// the connection remains usable, because the frame boundary (the
// length prefix) is decodable regardless of whether the body was
// understood. The one exception is a violated frame boundary itself
// (length below the header size or above the limit): the stream can no
// longer be trusted, and the server drains in-flight responses and
// closes.
//
// # Versioning rules
//
// The version byte is per-frame. A server receiving a version it does
// not serve answers error code 5 (version) and keeps the connection
// open — framing is version-independent, so resynchronization is never
// needed. Within a version, unknown request opcodes answer code 6
// (unknown-op); new opcodes may therefore be added without a version
// bump, and a version bump is reserved for changes to the frame layout
// or to an existing opcode's payload. Flags must be zero in version 1;
// a future version may assign them.
//
// # QoS classes
//
// Class 0 (interactive) is for point reads a user is waiting on; class
// 1 (analytics) is for k-hop expansions, top-k scans and kernel
// refreshes. The class is declared by the client per frame — it
// selects the admission queue and dispatch weight, not the executed
// query — so a tenant can run an analytics refresh at interactive
// priority if it is willing to spend its tenant share on it.
package wire
