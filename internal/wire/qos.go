package wire

import (
	"sync"
	"sync/atomic"
	"time"
)

// QoS defaults. Interactive gets the dominant admission weight so point
// reads a user is waiting on keep flowing while analytics refreshes
// absorb the shedding under overload.
const (
	DefaultDispatchers = 4
	DefaultQueueDepth  = 256
	// DefaultTenantShare caps one tenant's share of a class queue.
	DefaultTenantShare = 0.5
)

// DefaultWeights is the per-class admission weight vector: when both
// queues are backed up, interactive receives roughly eight shares of
// dispatcher time per analytics share. Weights divide time, not
// dispatch slots — see pickLocked and chargeLocked.
var DefaultWeights = [NumClasses]int{8, 1}

// QoSConfig shapes the scheduler between the connection readers and the
// serving layer's worker pool.
type QoSConfig struct {
	// Dispatchers is the number of goroutines pulling admitted requests
	// into the serving layer (0 = DefaultDispatchers). It bounds the
	// wire front end's concurrency against serve.Server the same way
	// serve's own workers bound query concurrency against the store.
	Dispatchers int
	// QueueDepth bounds each class's admission queue (0 =
	// DefaultQueueDepth). Arrivals beyond it are shed with a typed
	// CodeOverloaded error carrying a retry-after hint.
	QueueDepth int
	// QueueDepths overrides QueueDepth per class (zero entries fall
	// back to QueueDepth). Admission depth is the lever that bounds
	// time-in-queue, so it should scale inversely with a class's job
	// cost: a ring sized for point-read bursts holds seconds of backlog
	// when its jobs are analytics kernels, and a queue that deep never
	// sheds — it converts overload into unbounded latency instead of a
	// typed retryable answer.
	QueueDepths [NumClasses]int
	// Weights is the per-class dispatch weight vector; a zero vector
	// selects DefaultWeights. Dispatch is weighted fair queuing over
	// the nonempty classes: each class is charged its jobs' measured
	// service time divided by its weight, and the least-charged class
	// dispatches next. Weights therefore split dispatcher TIME, not
	// dispatch counts, and a backed-up low-weight class still
	// progresses (no starvation) while the high-weight class dominates.
	Weights [NumClasses]int
	// TenantShare caps the fraction of one class queue a single tenant
	// may occupy, in (0, 1] (0 = DefaultTenantShare). A tenant at its
	// cap is shed even while the queue has room, so one flooding tenant
	// cannot lock out the rest of its class.
	TenantShare float64
	// Clock overrides the wall clock (nil = time.Now); tests inject it.
	Clock func() time.Time
}

func (c QoSConfig) defaults() QoSConfig {
	if c.Dispatchers <= 0 {
		c.Dispatchers = DefaultDispatchers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	for i := range c.QueueDepths {
		if c.QueueDepths[i] <= 0 {
			c.QueueDepths[i] = c.QueueDepth
		}
	}
	if c.Weights == ([NumClasses]int{}) {
		c.Weights = DefaultWeights
	}
	for i, w := range c.Weights {
		if w <= 0 {
			c.Weights[i] = 1
		}
	}
	if c.TenantShare <= 0 || c.TenantShare > 1 {
		c.TenantShare = DefaultTenantShare
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// qosJob is one admitted request waiting for a dispatcher.
type qosJob struct {
	tenant uint32
	run    func()
}

// qosQueue is one class's bounded FIFO ring.
type qosQueue struct {
	buf        []qosJob
	head, size int
}

func (q *qosQueue) push(j qosJob) bool {
	if q.size == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = j
	q.size++
	return true
}

func (q *qosQueue) pop() qosJob {
	j := q.buf[q.head]
	q.buf[q.head] = qosJob{}
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return j
}

// scheduler is the QoS layer: per-class bounded admission queues with
// per-tenant occupancy caps in front, weighted fair queuing over
// measured service time behind, and a fixed dispatcher pool pulling
// admitted work into the serving layer. Shed decisions happen here —
// above serve's own queue — so the typed overload answer can carry a
// per-class retry-after hint derived from that class's queue depth and
// observed service time.
type scheduler struct {
	cfg QoSConfig

	mu      sync.Mutex
	cond    *sync.Cond
	queues  [NumClasses]qosQueue
	tenants [NumClasses]map[uint32]int
	queued  int
	closing bool

	// vtime is each class's virtual clock: service nanoseconds charged,
	// divided by the class's weight. The least-charged nonempty class
	// dispatches next, so over a backlog the classes' service time
	// converges to the weight ratio regardless of per-class job sizes —
	// a class of millisecond kernels cannot hog the pool from behind a
	// count-based 8:1 the way it could under slot round-robin, because
	// every kernel dispatch charges it ~the cost of hundreds of point
	// reads. vnow trails the frontier (the largest charged clock):
	// a class rejoining after idling resumes from vnow rather than its
	// stale clock, so idle time never banks into a service burst.
	vtime [NumClasses]int64
	vnow  int64

	// inService counts each class's jobs currently running on a
	// dispatcher; conc caps it at the class's weight share of the pool
	// (minimum one). Fair queuing alone divides time but is
	// work-conserving: a momentarily empty interactive queue lets every
	// dispatcher grab an analytics kernel, and the whole pool then sits
	// behind multi-millisecond jobs while interactive arrivals pile up.
	// The cap bounds that stall to the slots the class's weight earns.
	inService [NumClasses]int
	conc      [NumClasses]int

	// ewma tracks each class's dispatched service time (nanoseconds,
	// exponentially weighted): the basis of the retry-after hint.
	ewma [NumClasses]atomic.Int64

	admitted   [NumClasses]atomic.Int64
	shed       [NumClasses]atomic.Int64
	tenantShed [NumClasses]atomic.Int64

	wg sync.WaitGroup
}

// ewmaSeed is the service-time estimate before any dispatch completes;
// retry-after hints start from it rather than zero.
const ewmaSeed = int64(100 * time.Microsecond)

func newScheduler(cfg QoSConfig) *scheduler {
	s := &scheduler{cfg: cfg.defaults()}
	s.cond = sync.NewCond(&s.mu)
	sumW := 0
	for _, w := range s.cfg.Weights {
		sumW += w
	}
	for c := range s.queues {
		s.queues[c].buf = make([]qosJob, s.cfg.QueueDepths[c])
		s.tenants[c] = make(map[uint32]int)
		s.ewma[c].Store(ewmaSeed)
		// Weight share of the dispatcher pool, rounded up, at least one.
		s.conc[c] = (s.cfg.Dispatchers*s.cfg.Weights[c] + sumW - 1) / sumW
	}
	s.wg.Add(s.cfg.Dispatchers)
	for i := 0; i < s.cfg.Dispatchers; i++ {
		go s.dispatch()
	}
	return s
}

// tenantCap is the per-tenant occupancy bound within class c's queue.
func (s *scheduler) tenantCap(c Class) int {
	cap := int(s.cfg.TenantShare * float64(s.cfg.QueueDepths[c]))
	if cap < 1 {
		cap = 1
	}
	return cap
}

// retryAfter estimates how long until a shed class's queue has drained:
// the queue depth behind the arrival, at the class's observed service
// time, across the dispatcher pool. A hint, not a promise — but one
// that scales with the actual backlog instead of a fixed constant.
func (s *scheduler) retryAfter(c Class, depth int) time.Duration {
	est := time.Duration(int64(depth+1) * s.ewma[c].Load() / int64(s.cfg.Dispatchers))
	if est < time.Microsecond {
		est = time.Microsecond
	}
	return est
}

// Submit admits run under (class, tenant) or sheds it with a typed
// *Error: CodeOverloaded (queue or tenant cap, retry-after populated)
// or CodeShutdown. run executes on a dispatcher goroutine.
func (s *scheduler) Submit(class Class, tenant uint32, run func()) *Error {
	if class >= NumClasses {
		return &Error{Code: CodeBadFrame, Msg: "unknown QoS class " + class.String()}
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return &Error{Code: CodeShutdown, Msg: "server draining"}
	}
	q := &s.queues[class]
	if s.tenants[class][tenant] >= s.tenantCap(class) {
		depth := q.size
		s.tenantShed[class].Add(1)
		s.shed[class].Add(1)
		s.mu.Unlock()
		return &Error{
			Code:       CodeOverloaded,
			RetryAfter: s.retryAfter(class, depth),
			Msg:        "tenant over its " + class.String() + " queue share",
		}
	}
	if !q.push(qosJob{tenant: tenant, run: run}) {
		depth := q.size
		s.shed[class].Add(1)
		s.mu.Unlock()
		return &Error{
			Code:       CodeOverloaded,
			RetryAfter: s.retryAfter(class, depth),
			Msg:        class.String() + " admission queue full",
		}
	}
	s.tenants[class][tenant]++
	s.queued++
	if q.size == 1 && s.vtime[class] < s.vnow {
		// The class rejoins after an idle stretch: catch its clock up to
		// the frontier so the idle time doesn't bank into a burst that
		// would starve the classes that kept working.
		s.vtime[class] = s.vnow
	}
	s.admitted[class].Add(1)
	s.mu.Unlock()
	s.cond.Signal()
	return nil
}

// pickLocked selects the nonempty, under-cap class with the smallest
// virtual clock (ties break toward the lower class index, i.e.
// interactive), or -1 when every backlogged class is at its
// concurrency cap.
func (s *scheduler) pickLocked() int {
	best := -1
	for c := range s.queues {
		if s.queues[c].size == 0 || s.inService[c] >= s.conc[c] {
			continue
		}
		if best < 0 || s.vtime[c] < s.vtime[best] {
			best = c
		}
	}
	return best
}

// chargeCostFloor keeps fair queuing meaningful for jobs too fast to
// measure: every dispatch charges at least a microsecond of virtual
// service, so a stream of near-zero-cost jobs still interleaves at the
// weight ratio instead of degenerating into tie-break order.
const chargeCostFloor = int64(time.Microsecond)

// chargeLocked advances class c's virtual clock by ns of service time,
// weight-scaled. ns is negative when a completion settles a
// dispatch-time estimate that ran too high.
func (s *scheduler) chargeLocked(c Class, ns int64) {
	ch := ns / int64(s.cfg.Weights[c])
	if ch == 0 && ns != 0 {
		if ns > 0 {
			ch = 1
		} else {
			ch = -1
		}
	}
	s.vtime[c] += ch
}

// settleLocked replaces a dispatch-time estimate with the measured cost
// and advances the frontier. vnow moves only on settled work: folding
// provisional charges into the frontier would let a class that submits
// while another's estimate is in flight bank that estimate as a head
// start through the rejoin catch-up.
func (s *scheduler) settleLocked(c Class, est, el int64) {
	s.chargeLocked(c, flooredCost(el)-est)
	if s.vtime[c] > s.vnow {
		s.vnow = s.vtime[c]
	}
}

// flooredCost clamps a service-time observation (or estimate) to the
// charge floor.
func flooredCost(ns int64) int64 {
	if ns < chargeCostFloor {
		return chargeCostFloor
	}
	return ns
}

func (s *scheduler) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		pick := -1
		for {
			if s.queued == 0 {
				if s.closing {
					// Closing with nothing queued: drain is complete.
					// Admitted work is never abandoned — closing only
					// stops Submit. Wake the other dispatchers so they
					// observe the drained state and exit too.
					s.cond.Broadcast()
					s.mu.Unlock()
					return
				}
			} else if pick = s.pickLocked(); pick >= 0 {
				break
			}
			// Either nothing is queued, or every backlogged class is at
			// its concurrency cap; a settle or a Submit will signal.
			// No deadlock: all-dispatchers-waiting implies no job in
			// service, and with every cap at least one no class is
			// capped then.
			s.cond.Wait()
		}
		c := Class(pick)
		s.inService[c]++
		j := s.queues[c].pop()
		if n := s.tenants[c][j.tenant] - 1; n > 0 {
			s.tenants[c][j.tenant] = n
		} else {
			delete(s.tenants[c], j.tenant)
		}
		s.queued--
		// Charge the class's expected cost NOW, before running the job,
		// and settle the difference against the measured cost afterward.
		// Charging only on completion would leave the virtual clock stale
		// for the whole service time — long enough for every dispatcher
		// to pick the same cheap-looking class and wedge the entire pool
		// behind a few concurrent analytics kernels.
		est := flooredCost(s.ewma[c].Load())
		s.chargeLocked(c, est)
		s.mu.Unlock()

		start := s.cfg.Clock()
		j.run()
		el := s.cfg.Clock().Sub(start).Nanoseconds()
		if el < 0 {
			el = 0
		}
		// Plain load/store EWMA: dispatchers race benignly on the
		// estimate (it feeds a hint, not an invariant), atomics keep the
		// race defined.
		old := s.ewma[c].Load()
		s.ewma[c].Store(old + (el-old)/8)
		s.mu.Lock()
		s.inService[c]--
		s.settleLocked(c, est, el)
		s.mu.Unlock()
		// The freed concurrency slot may unblock a capped-out waiter.
		s.cond.Signal()
	}
}

// Depth returns class c's current admission-queue occupancy.
func (s *scheduler) Depth(c Class) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queues[c].size
}

// Close stops admission, lets the dispatchers drain everything already
// admitted, and returns when they have exited.
func (s *scheduler) Close() {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closing = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}
