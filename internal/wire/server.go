package wire

import (
	"errors"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dgap/internal/graph"
	"dgap/internal/serve"
)

// DefaultWindow is the per-connection in-flight window: how many
// decoded requests one connection may have outstanding (queued, being
// served, or awaiting write) before its reader stops pulling frames off
// the socket — at which point TCP flow control pushes the backpressure
// all the way to the client.
const DefaultWindow = 64

// Config shapes a wire Server.
type Config struct {
	// MaxFrame bounds one inbound frame's body length
	// (0 = DefaultMaxFrame; clamped to MaxFrame).
	MaxFrame uint32
	// Window bounds a connection's in-flight requests (0 = DefaultWindow).
	Window int
	// QoS shapes the admission scheduler between connections and the
	// serving layer.
	QoS QoSConfig
}

func (c Config) defaults() Config {
	if c.MaxFrame == 0 || c.MaxFrame > MaxFrame {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.MaxFrame < HeaderLen {
		c.MaxFrame = HeaderLen
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	return c
}

// Server is the wire front end: it accepts framed-protocol connections,
// admits their requests through the QoS scheduler and serves them from
// a serve.Server. One Server can serve any number of listeners.
type Server struct {
	srv *serve.Server
	cfg Config
	sch *scheduler

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	connWG    sync.WaitGroup
	draining  bool

	accepted  atomic.Int64
	open      atomic.Int64
	framesIn  atomic.Int64
	framesOut atomic.Int64
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	badFrames atomic.Int64
}

// NewServer builds a wire front end over srv and registers its
// instruments (wire.conn.*, wire.frames.*, wire.qos.*) in srv's metrics
// registry, so the /metrics exposition covers the network edge too.
func NewServer(srv *serve.Server, cfg Config) *Server {
	s := &Server{
		srv:       srv,
		cfg:       cfg.defaults(),
		sch:       newScheduler(cfg.QoS),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}
	r := srv.Obs()
	r.GaugeFunc("wire.conn.open", s.open.Load)
	r.CounterFunc("wire.conn.accepted", s.accepted.Load)
	r.CounterFunc("wire.frames.in", s.framesIn.Load)
	r.CounterFunc("wire.frames.out", s.framesOut.Load)
	r.CounterFunc("wire.bytes.in", s.bytesIn.Load)
	r.CounterFunc("wire.bytes.out", s.bytesOut.Load)
	r.CounterFunc("wire.frames.bad", s.badFrames.Load)
	for c := Class(0); c < NumClasses; c++ {
		c := c
		r.CounterFunc("wire.qos."+c.String()+".admitted", s.sch.admitted[c].Load)
		r.CounterFunc("wire.qos."+c.String()+".shed", s.sch.shed[c].Load)
		r.CounterFunc("wire.qos."+c.String()+".tenant_shed", s.sch.tenantShed[c].Load)
		r.GaugeFunc("wire.qos."+c.String()+".depth", func() int64 { return int64(s.sch.Depth(c)) })
	}
	return s
}

// Serve accepts connections on l until the listener closes (Shutdown
// closes every registered listener). It returns nil on a shutdown-
// driven close and the accept error otherwise.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("wire: server draining")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.accepted.Add(1)
		tuneConn(nc)
		c := s.newConn(nc)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.open.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				s.open.Add(-1)
				s.connWG.Done()
			}()
			c.serve()
		}()
	}
}

// Shutdown drains the front end gracefully: stop accepting, stop
// reading new frames, let every in-flight request finish and its
// response reach the socket, then stop the QoS dispatchers. Connections
// still open past the drain deadline are force-closed. The underlying
// serve.Server is not closed — that remains the caller's to sequence
// after the front end has quiesced.
func (s *Server) Shutdown(drain time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.connWG.Wait()
		s.sch.Close()
		return
	}
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	now := time.Now()
	for c := range s.conns {
		// Kick the reader out of its blocking read: in-flight requests
		// keep draining, no new frame is accepted.
		c.nc.SetReadDeadline(now)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	if drain > 0 {
		select {
		case <-done:
		case <-time.After(drain):
			s.mu.Lock()
			for c := range s.conns {
				c.nc.Close()
			}
			s.mu.Unlock()
			<-done
		}
	} else {
		<-done
	}
	s.sch.Close()
}

// mapQuery translates a decoded request into a serving-layer query.
func mapQuery(req *Request, tenant uint32) (serve.Query, *Error) {
	q := serve.Query{Tenant: tenant}
	switch req.Op {
	case OpDegree, OpNeighbors, OpKHop:
		if req.V > math.MaxUint32 {
			return q, &Error{Code: CodeBadVertex, Msg: "vertex beyond id space"}
		}
		q.V = graph.V(req.V)
		switch req.Op {
		case OpDegree:
			q.Class = serve.ClassDegree
		case OpNeighbors:
			q.Class = serve.ClassNeighbors
		default:
			q.Class = serve.ClassKHop
			q.K = int(req.K)
		}
	case OpTopK:
		q.Class = serve.ClassTopK
		q.K = int(req.K)
	case OpPageRank:
		q.Class = serve.ClassKernel
	case OpBatch:
		q.Class = serve.ClassBatch
		q.Points = make([]serve.BatchPoint, len(req.Points))
		for i, p := range req.Points {
			if p.V > math.MaxUint32 {
				return q, &Error{Code: CodeBadVertex, Msg: "vertex beyond id space"}
			}
			cls := serve.ClassDegree
			if p.Op == OpNeighbors {
				cls = serve.ClassNeighbors
			}
			q.Points[i] = serve.BatchPoint{Class: cls, V: graph.V(p.V)}
		}
	default:
		return q, &Error{Code: CodeUnknownOp, Msg: "opcode " + req.Op.String()}
	}
	return q, nil
}

// mapServeErr translates a serving-layer failure into a typed wire error.
func mapServeErr(err error) *Error {
	switch {
	case errors.Is(err, serve.ErrBadVertex):
		return &Error{Code: CodeBadVertex, Msg: err.Error()}
	case errors.Is(err, serve.ErrOverloaded):
		return &Error{Code: CodeOverloaded, Msg: err.Error()}
	case errors.Is(err, serve.ErrClosed):
		return &Error{Code: CodeShutdown, Msg: err.Error()}
	default:
		return &Error{Code: CodeInternal, Msg: err.Error()}
	}
}

// answer executes req against the serving layer and builds its typed
// response body.
func (s *Server) answer(req *Request, tenant uint32) Response {
	q, werr := mapQuery(req, tenant)
	if werr != nil {
		return Response{Op: RespError, Err: werr}
	}
	r := s.srv.Do(q)
	if r.Err != nil {
		return Response{Op: RespError, Err: mapServeErr(r.Err)}
	}
	resp := Response{Gen: r.Gen, Edges: uint64(r.Edges)}
	switch req.Op {
	case OpDegree, OpKHop:
		resp.Op = RespValue
		resp.Value = r.Value
	case OpNeighbors:
		resp.Op = RespVerts
		resp.Verts = make([]uint64, len(r.Verts))
		for i, v := range r.Verts {
			resp.Verts[i] = uint64(v)
		}
	case OpTopK:
		resp.Op = RespTopK
		resp.Verts = make([]uint64, len(r.Verts))
		resp.Degrees = make([]uint64, len(r.Verts))
		for i, v := range r.Verts {
			resp.Verts[i] = uint64(v)
			resp.Degrees[i] = uint64(r.Degrees[i])
		}
	case OpPageRank:
		resp.Op = RespRank
		resp.NRanks = uint32(len(r.Ranks))
		for v, sc := range r.Ranks {
			if sc > resp.Score {
				resp.Top, resp.Score = uint64(v), sc
			}
		}
	case OpBatch:
		resp.Op = RespBatch
		resp.Points = make([]PointAnswer, len(r.Points))
		for i, p := range r.Points {
			pa := PointAnswer{Op: req.Points[i].Op, Value: p.Value}
			if pa.Op == OpNeighbors {
				pa.Verts = make([]uint64, len(p.Verts))
				for j, v := range p.Verts {
					pa.Verts[j] = uint64(v)
				}
			}
			resp.Points[i] = pa
		}
	}
	return resp
}
