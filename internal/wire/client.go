package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// ErrClientClosed fails submissions after Close, and outstanding
// callbacks when the connection dies underneath them.
var ErrClientClosed = errors.New("wire: client closed")

// ClientConfig shapes a Client.
type ClientConfig struct {
	// Class is the QoS class stamped on every request (overridable per
	// submission with SubmitClass).
	Class Class
	// Tenant is the tenant id stamped on every request.
	Tenant uint32
	// MaxFrame bounds one inbound response frame (0 = DefaultMaxFrame).
	MaxFrame uint32
}

// Client is a pipelining wire-protocol client: submissions are assigned
// request ids and buffered, a background flusher coalesces them into
// few syscalls, and a reader goroutine matches responses — which may
// arrive in any order — back to their callbacks by id. Safe for
// concurrent use.
type Client struct {
	nc  net.Conn
	cfg ClientConfig

	mu     sync.Mutex
	bw     *bufio.Writer
	nextID uint64
	// inflight maps request id to its completion callback.
	inflight map[uint64]func(*Response, error)
	closed   bool
	buf      []byte

	flushCh chan struct{}
	done    chan struct{}
}

// Dial connects a Client to a wire server.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tuneConn(nc)
	return NewClient(nc, cfg), nil
}

// NewClient wraps an established connection. The Client owns nc.
func NewClient(nc net.Conn, cfg ClientConfig) *Client {
	if cfg.MaxFrame == 0 || cfg.MaxFrame > MaxFrame {
		cfg.MaxFrame = DefaultMaxFrame
	}
	c := &Client{
		nc:       nc,
		cfg:      cfg,
		bw:       bufio.NewWriterSize(nc, connBufSize),
		inflight: make(map[uint64]func(*Response, error)),
		flushCh:  make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go c.reader()
	go c.flusher()
	return c
}

// SubmitFunc submits req under the configured class and invokes fn
// exactly once with the matched response (or a transport error). fn
// runs on the client's reader goroutine: keep it short — record, signal
// — and do not submit from inside it.
func (c *Client) SubmitFunc(req *Request, fn func(*Response, error)) error {
	return c.SubmitClass(req, c.cfg.Class, fn)
}

// SubmitClass is SubmitFunc with an explicit QoS class.
func (c *Client) SubmitClass(req *Request, class Class, fn func(*Response, error)) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	f := Frame{Header: Header{
		Version: ProtoVersion,
		Op:      req.Op,
		Class:   class,
		Tenant:  c.cfg.Tenant,
		ID:      id,
	}}
	var err error
	f.Payload, err = AppendRequestPayload(nil, req)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	// Register before writing: a full bufio buffer can flush inside
	// Write, and the response may race back before Write returns.
	c.inflight[id] = fn
	c.buf = AppendFrame(c.buf[:0], &f)
	if _, err = c.bw.Write(c.buf); err != nil {
		delete(c.inflight, id)
		c.mu.Unlock()
		c.fail(err)
		return err
	}
	c.mu.Unlock()
	select {
	case c.flushCh <- struct{}{}:
	default:
	}
	return nil
}

// flusher pushes buffered requests to the socket. Because one flush
// holds the lock while further submissions buffer behind it, pipelined
// bursts coalesce naturally; an idle client's single request flushes
// immediately.
func (c *Client) flusher() {
	for {
		select {
		case <-c.flushCh:
		case <-c.done:
			return
		}
		c.mu.Lock()
		err := c.bw.Flush()
		c.mu.Unlock()
		if err != nil {
			c.fail(err)
			return
		}
	}
}

// Flush forces buffered requests onto the socket now.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	return c.bw.Flush()
}

// reader matches inbound responses to callbacks by request id.
func (c *Client) reader() {
	br := bufio.NewReaderSize(c.nc, connBufSize)
	for {
		f, err := ReadFrame(br, c.cfg.MaxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		resp, err := ParseResponse(f.Op, f.Payload)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		fn := c.inflight[f.ID]
		delete(c.inflight, f.ID)
		c.mu.Unlock()
		if fn != nil {
			fn(&resp, nil)
		}
	}
}

// fail tears the client down: the socket closes, and every outstanding
// callback is invoked with the transport error.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pending := c.inflight
	c.inflight = nil
	close(c.done)
	c.mu.Unlock()
	c.nc.Close()
	for _, fn := range pending {
		fn(nil, err)
	}
}

// Close shuts the client down; outstanding callbacks fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return nil
}

// call is the synchronous submission path under the sync helpers.
func (c *Client) call(req *Request, class Class) (*Response, error) {
	ch := make(chan struct{})
	var resp *Response
	var rerr error
	if err := c.SubmitClass(req, class, func(r *Response, err error) {
		resp, rerr = r, err
		close(ch)
	}); err != nil {
		return nil, err
	}
	<-ch
	if rerr != nil {
		return nil, rerr
	}
	if resp.Err != nil {
		return resp, resp.Err
	}
	return resp, nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: OpPing}, c.cfg.Class)
	return err
}

// Degree returns v's out-degree.
func (c *Client) Degree(v uint64) (int64, error) {
	r, err := c.call(&Request{Op: OpDegree, V: v}, c.cfg.Class)
	if err != nil {
		return 0, err
	}
	return r.Value, nil
}

// Neighbors returns v's neighbor list.
func (c *Client) Neighbors(v uint64) ([]uint64, error) {
	r, err := c.call(&Request{Op: OpNeighbors, V: v}, c.cfg.Class)
	if err != nil {
		return nil, err
	}
	return r.Verts, nil
}

// KHop returns the number of vertices within k hops of v.
func (c *Client) KHop(v uint64, k uint32) (int64, error) {
	r, err := c.call(&Request{Op: OpKHop, V: v, K: k}, c.cfg.Class)
	if err != nil {
		return 0, err
	}
	return r.Value, nil
}

// TopK returns the k highest-degree vertices and their degrees.
func (c *Client) TopK(k uint32) ([]uint64, []uint64, error) {
	r, err := c.call(&Request{Op: OpTopK, K: k}, c.cfg.Class)
	if err != nil {
		return nil, nil, err
	}
	return r.Verts, r.Degrees, nil
}

// PageRank refreshes the served PageRank vector and returns its
// summary response (rank count, top vertex, top score).
func (c *Client) PageRank() (*Response, error) {
	return c.call(&Request{Op: OpPageRank}, c.cfg.Class)
}

// Batch answers several point reads under one frame, one admission
// ticket and one snapshot.
func (c *Client) Batch(points []Point) ([]PointAnswer, error) {
	r, err := c.call(&Request{Op: OpBatch, Points: points}, c.cfg.Class)
	if err != nil {
		return nil, err
	}
	return r.Points, nil
}

// String renders a response for human-facing walkthroughs.
func (r *Response) String() string {
	switch r.Op {
	case RespPong:
		return "pong"
	case RespValue:
		return fmt.Sprintf("%d (gen=%d edges=%d)", r.Value, r.Gen, r.Edges)
	case RespVerts:
		return fmt.Sprintf("%v (gen=%d edges=%d)", r.Verts, r.Gen, r.Edges)
	case RespTopK:
		return fmt.Sprintf("top %d (gen=%d edges=%d)", len(r.Verts), r.Gen, r.Edges)
	case RespRank:
		return fmt.Sprintf("%d ranks, top %d (%.5f) (gen=%d edges=%d)", r.NRanks, r.Top, r.Score, r.Gen, r.Edges)
	case RespBatch:
		return fmt.Sprintf("%d answers (gen=%d edges=%d)", len(r.Points), r.Gen, r.Edges)
	case RespError:
		return r.Err.Error()
	default:
		return r.Op.String()
	}
}
