package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
	"dgap/internal/serve"
)

// testStack is one wired-up serving stack: graph → serve.Server →
// wire.Server on a loopback listener.
type testStack struct {
	srv  *serve.Server
	ws   *Server
	addr string
	// direct is a snapshot view for computing expected answers.
	direct *graph.View
}

func startStack(t *testing.T, nVert, deg int, scfg serve.Config, wcfg Config) *testStack {
	t.Helper()
	edges := graphgen.Uniform(nVert, deg, 31)
	a := pmem.New(256 << 20)
	gcfg := dgap.DefaultConfig(nVert, int64(2*len(edges)))
	gcfg.SectionSlots = 64
	gcfg.ELogSize = 512
	g, err := dgap.New(a, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InsertBatch(edges); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(g, scfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewServer(srv, wcfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	t.Cleanup(func() {
		ws.Shutdown(2 * time.Second)
		srv.Close()
	})
	return &testStack{srv: srv, ws: ws, addr: ln.Addr().String(), direct: graph.ViewOf(g.Snapshot())}
}

// TestWireQueriesMatchDirect: every opcode answered over the wire
// agrees with the same computation against a direct snapshot, and
// carries nonzero provenance.
func TestWireQueriesMatchDirect(t *testing.T) {
	st := startStack(t, 120, 10, serve.Config{Workers: 2}, Config{})
	c, err := Dial(st.addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	for v := uint64(0); v < 8; v++ {
		d, err := c.Degree(v)
		if err != nil {
			t.Fatalf("degree(%d): %v", v, err)
		}
		if want := int64(st.direct.Degree(graph.V(v))); d != want {
			t.Fatalf("degree(%d) = %d, want %d", v, d, want)
		}
		ns, err := c.Neighbors(v)
		if err != nil {
			t.Fatalf("neighbors(%d): %v", v, err)
		}
		want := st.direct.CopyNeighbors(graph.V(v), nil)
		if len(ns) != len(want) {
			t.Fatalf("neighbors(%d): %d results, want %d", v, len(ns), len(want))
		}
		for i := range want {
			if ns[i] != uint64(want[i]) {
				t.Fatalf("neighbors(%d)[%d] = %d, want %d", v, i, ns[i], want[i])
			}
		}
	}
	if n, err := c.KHop(3, 2); err != nil || n <= 0 {
		t.Fatalf("khop(3,2) = %d, %v", n, err)
	}
	vs, degs, err := c.TopK(5)
	if err != nil || len(vs) != 5 || len(degs) != 5 {
		t.Fatalf("topk(5) = %v/%v, %v", vs, degs, err)
	}
	pr, err := c.PageRank()
	if err != nil || pr.NRanks != 120 || pr.Score <= 0 {
		t.Fatalf("pagerank = %+v, %v", pr, err)
	}
	// A batch frame answers every point from one snapshot, matching the
	// individual queries.
	pts := []Point{{Op: OpDegree, V: 1}, {Op: OpNeighbors, V: 2}, {Op: OpDegree, V: 3}}
	ans, err := c.Batch(pts)
	if err != nil || len(ans) != 3 {
		t.Fatalf("batch: %v, %v", ans, err)
	}
	if ans[0].Value != int64(st.direct.Degree(1)) || ans[2].Value != int64(st.direct.Degree(3)) {
		t.Fatalf("batch degrees %d/%d mismatch", ans[0].Value, ans[2].Value)
	}
	if wantN := st.direct.CopyNeighbors(2, nil); len(ans[1].Verts) != len(wantN) {
		t.Fatalf("batch neighbors: %d, want %d", len(ans[1].Verts), len(wantN))
	}
}

// TestWireTypedErrors: protocol and query failures come back as typed
// error responses on a connection that stays usable.
func TestWireTypedErrors(t *testing.T) {
	st := startStack(t, 100, 8, serve.Config{Workers: 2}, Config{})
	c, err := Dial(st.addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var werr *Error
	if _, err := c.Degree(1 << 40); !errors.As(err, &werr) || werr.Code != CodeBadVertex {
		t.Fatalf("degree beyond id space: %v", err)
	}
	if _, err := c.Degree(99999); !errors.As(err, &werr) || werr.Code != CodeBadVertex {
		t.Fatalf("degree out of range: %v", err)
	}
	// The connection is still healthy after every typed error.
	if _, err := c.Degree(1); err != nil {
		t.Fatalf("degree after errors: %v", err)
	}

	// A frame with a bad version gets a typed version error; the raw
	// connection stays open for a correct follow-up.
	nc, err := net.Dial("tcp", st.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	bad := AppendFrame(nil, &Frame{Header: Header{Version: 9, Op: OpPing, ID: 1}})
	good := AppendFrame(nil, &Frame{Header: Header{Version: ProtoVersion, Op: OpPing, ID: 2}})
	if _, err := nc.Write(append(bad, good...)); err != nil {
		t.Fatal(err)
	}
	f1, err := ReadFrame(nc, 0)
	if err != nil || f1.ID != 1 || f1.Op != RespError {
		t.Fatalf("version-error frame: %+v, %v", f1, err)
	}
	resp, err := ParseResponse(f1.Op, f1.Payload)
	if err != nil || resp.Err.Code != CodeVersion {
		t.Fatalf("version error payload: %+v, %v", resp, err)
	}
	f2, err := ReadFrame(nc, 0)
	if err != nil || f2.ID != 2 || f2.Op != RespPong {
		t.Fatalf("pong after version error: %+v, %v", f2, err)
	}
	// An unknown request opcode answers unknown-op, connection intact.
	unk := AppendFrame(nil, &Frame{Header: Header{Version: ProtoVersion, Op: Op(0x70), ID: 3}})
	if _, err := nc.Write(unk); err != nil {
		t.Fatal(err)
	}
	f3, err := ReadFrame(nc, 0)
	if err != nil || f3.ID != 3 || f3.Op != RespError {
		t.Fatalf("unknown-op frame: %+v, %v", f3, err)
	}
	if resp, err := ParseResponse(f3.Op, f3.Payload); err != nil || resp.Err.Code != CodeUnknownOp {
		t.Fatalf("unknown-op payload: %+v, %v", resp, err)
	}
}

// TestWirePipeliningOrder: many concurrent pipelined submissions all
// complete, each response matched to its request id with the right
// answer. Run under -race this also exercises the client and conn
// concurrency.
func TestWirePipeliningOrder(t *testing.T) {
	st := startStack(t, 200, 12, serve.Config{Workers: 4}, Config{Window: 32})
	c, err := Dial(st.addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const N = 400
	var wg sync.WaitGroup
	errs := make([]error, N)
	wg.Add(N)
	for i := 0; i < N; i++ {
		i := i
		v := uint64(i % 64)
		want := int64(st.direct.Degree(graph.V(v)))
		err := c.SubmitFunc(&Request{Op: OpDegree, V: v}, func(r *Response, err error) {
			defer wg.Done()
			switch {
			case err != nil:
				errs[i] = err
			case r.Err != nil:
				errs[i] = r.Err
			case r.Value != want:
				errs[i] = fmt.Errorf("degree(%d) = %d, want %d", v, r.Value, want)
			}
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

// TestWireOverloadShedsAnalyticsNotInteractive: with one QoS dispatcher
// and a tiny analytics queue, an analytics flood is shed with typed
// overload errors (retry-after included) while every interactive
// request is still served — the weighted-admission guarantee end to end.
func TestWireOverloadShedsAnalyticsNotInteractive(t *testing.T) {
	st := startStack(t, 3000, 24, serve.Config{Workers: 2},
		Config{Window: 256, QoS: QoSConfig{Dispatchers: 1, QueueDepth: 8}})
	ana, err := Dial(st.addr, ClientConfig{Class: ClassAnalytics, Tenant: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ana.Close()
	inter, err := Dial(st.addr, ClientConfig{Class: ClassInteractive, Tenant: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer inter.Close()

	const floods = 120
	var wg sync.WaitGroup
	var mu sync.Mutex
	var shed, served int
	var sampleRetry time.Duration
	wg.Add(floods)
	for i := 0; i < floods; i++ {
		err := ana.SubmitFunc(&Request{Op: OpKHop, V: uint64(i % 100), K: 6}, func(r *Response, err error) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				// transport failure would be a test bug
			case r.Err != nil && r.Err.Code == CodeOverloaded:
				shed++
				if r.Err.RetryAfter > sampleRetry {
					sampleRetry = r.Err.RetryAfter
				}
			case r.Err == nil:
				served++
			}
		})
		if err != nil {
			t.Fatalf("flood %d: %v", i, err)
		}
	}
	// Interactive requests riding through the overload: all must be
	// served, none shed — their class queue is independent and their
	// dispatch weight dominates.
	for i := 0; i < 20; i++ {
		if _, err := inter.Degree(uint64(i)); err != nil {
			t.Fatalf("interactive %d during overload: %v", i, err)
		}
	}
	wg.Wait()
	if shed == 0 {
		t.Fatalf("no analytics shed under %dx flood (served %d)", floods, served)
	}
	if sampleRetry <= 0 {
		t.Fatalf("shed without retry-after hint")
	}
	if served == 0 {
		t.Fatalf("every analytics request shed — queue never drained")
	}
	if got := st.ws.sch.shed[ClassAnalytics].Load(); got != int64(shed) {
		t.Fatalf("scheduler counted %d analytics sheds, client saw %d", got, shed)
	}
	if got := st.ws.sch.shed[ClassInteractive].Load(); got != 0 {
		t.Fatalf("%d interactive sheds during analytics flood", got)
	}
}

// TestWireGracefulShutdown: a pipelined client with requests already
// accepted by the server receives every outstanding response before the
// socket closes.
func TestWireGracefulShutdown(t *testing.T) {
	st := startStack(t, 200, 12, serve.Config{Workers: 2}, Config{Window: 64})
	c, err := Dial(st.addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const N = 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := 0
	var firstErr error
	wg.Add(N)
	for i := 0; i < N; i++ {
		err := c.SubmitFunc(&Request{Op: OpNeighbors, V: uint64(i)}, func(r *Response, err error) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			got++
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Wait until the server has accepted every frame, so "outstanding"
	// is unambiguous, then shut down underneath the client.
	deadline := time.Now().Add(5 * time.Second)
	for st.ws.framesIn.Load() < N {
		if time.Now().After(deadline) {
			t.Fatalf("server read %d of %d frames", st.ws.framesIn.Load(), N)
		}
		time.Sleep(time.Millisecond)
	}
	st.ws.Shutdown(5 * time.Second)
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("callback error during graceful shutdown: %v (%d/%d responses)", firstErr, got, N)
	}
	if got != N {
		t.Fatalf("received %d of %d outstanding responses across shutdown", got, N)
	}
	// The drained server no longer accepts connections.
	if _, err := net.DialTimeout("tcp", st.addr, 200*time.Millisecond); err == nil {
		t.Fatalf("listener still accepting after shutdown")
	}
}

// TestLineServerBigToken: the legacy line listener survives input lines
// and replies far beyond bufio.Scanner's default 64KB token cap — the
// regression the explicit scanner buffer fixes.
func TestLineServerBigToken(t *testing.T) {
	ls := &LineServer{NewHandler: func() LineHandler {
		return func(line string) (string, error) {
			if strings.HasPrefix(line, "len ") {
				return fmt.Sprintf("%d", len(line)), nil
			}
			if strings.HasPrefix(line, "big ") {
				return strings.Repeat("x", 200<<10), nil
			}
			return "?", nil
		}
	}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ls.Serve(ln)
	defer ls.Shutdown(time.Second)

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A ~200KB input line: past the default token cap, within MaxLine.
	line := "len " + strings.Repeat("a", 200<<10) + "\n"
	if _, err := nc.Write([]byte(line)); err != nil {
		t.Fatal(err)
	}
	rd := newLineReader(nc)
	reply, err := rd()
	if err != nil {
		t.Fatalf("big input line killed the connection: %v", err)
	}
	if want := fmt.Sprintf("%d", len(line)-1); reply != want {
		t.Fatalf("reply %q, want %q", reply, want)
	}
	// A ~200KB reply line on the same connection.
	if _, err := nc.Write([]byte("big x\n")); err != nil {
		t.Fatal(err)
	}
	reply, err = rd()
	if err != nil {
		t.Fatalf("big reply killed the connection: %v", err)
	}
	if len(reply) != 200<<10 {
		t.Fatalf("reply %d bytes, want %d", len(reply), 200<<10)
	}
	// And the connection still works for a normal exchange.
	if _, err := nc.Write([]byte("len ab\n")); err != nil {
		t.Fatal(err)
	}
	if reply, err = rd(); err != nil || reply != "6" {
		t.Fatalf("post-big exchange: %q, %v", reply, err)
	}
}

// newLineReader returns a reader for \n-terminated replies with an
// explicitly sized buffer (the client side of the same regression).
func newLineReader(nc net.Conn) func() (string, error) {
	sc := bufio.NewScanner(nc)
	sc.Buffer(make([]byte, 64<<10), DefaultMaxLine)
	return func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", errors.New("eof")
		}
		return sc.Text(), nil
	}
}
