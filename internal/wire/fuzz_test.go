package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame: arbitrary bytes through the frame decoder and both
// payload parsers must error cleanly — no panic, no over-allocation
// (every slice a parser builds is bounded by the input length it
// validated first), and anything that decodes must re-encode to the
// bytes it was decoded from.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add(AppendFrame(nil, &Frame{Header: Header{Version: ProtoVersion, Op: OpPing, ID: 1}}))
	f.Add(AppendFrame(nil, &Frame{
		Header:  Header{Version: ProtoVersion, Op: OpDegree, Class: ClassInteractive, Tenant: 9, ID: 2},
		Payload: []byte{0, 0, 0, 0, 0, 0, 0, 5},
	}))
	f.Add(AppendFrame(nil, &Frame{
		Header:  Header{Version: ProtoVersion, Op: OpBatch, ID: 3},
		Payload: []byte{0, 1, byte(OpDegree), 0, 0, 0, 0, 0, 0, 0, 7},
	}))
	f.Add(AppendFrame(nil, &Frame{
		Header:  Header{Version: ProtoVersion, Op: RespError, ID: 4},
		Payload: []byte{0, 3, 0, 0, 1, 0, 0, 2, 'h', 'i'},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n < 4+HeaderLen || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		// A decoded frame re-encodes to exactly the bytes it came from.
		if enc := AppendFrame(nil, &fr); !bytes.Equal(enc, b[:n]) {
			t.Fatalf("re-encode mismatch")
		}
		// The typed parsers must also never panic; errors are fine.
		if fr.Op.IsResponse() {
			_, _ = ParseResponse(fr.Op, fr.Payload)
		} else {
			_, _ = ParseRequest(fr.Op, fr.Payload)
		}
	})
}
