package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ProtoVersion is the protocol version this package speaks. Every frame
// carries the sender's version; a server receiving a different version
// answers a typed CodeVersion error and keeps the connection open (the
// frame boundary is version-independent, so resynchronization is never
// needed). See the package documentation for the versioning rules.
const ProtoVersion = 1

// HeaderLen is the fixed frame-body header length: version, opcode,
// class, flags, tenant and request id.
const HeaderLen = 16

// MaxFrame is the hard upper bound on one frame's body length (header
// plus payload). Decoders reject a length field beyond it before
// allocating anything, so a hostile 4-byte prefix can never drive an
// allocation larger than this.
const MaxFrame = 1 << 24

// DefaultMaxFrame is the per-connection frame-size limit servers and
// clients apply unless configured otherwise — generous enough for a
// multi-thousand-entry neighbor list or batch, far below MaxFrame.
const DefaultMaxFrame = 1 << 20

// Op is a frame opcode. Request opcodes have the high bit clear,
// response opcodes have it set.
type Op byte

// Request opcodes.
const (
	// OpPing answers RespPong without touching the serving layer — the
	// liveness probe and the cheapest round-trip for latency floors.
	OpPing Op = 0x01
	// OpDegree asks one vertex's out-degree (payload: vertex u64).
	OpDegree Op = 0x02
	// OpNeighbors asks one vertex's neighbor list (payload: vertex u64).
	OpNeighbors Op = 0x03
	// OpKHop asks how many vertices lie within K hops of V
	// (payload: vertex u64, k u32).
	OpKHop Op = 0x04
	// OpTopK asks for the K highest-degree vertices (payload: k u32).
	OpTopK Op = 0x05
	// OpPageRank refreshes and summarizes the PageRank vector (empty
	// payload; the response carries the top-ranked vertex and vector
	// size, not the whole vector).
	OpPageRank Op = 0x06
	// OpBatch groups point reads (degree, neighbors) into one frame,
	// answered together under one admission ticket and one snapshot
	// (payload: count u16, then per point: op u8, vertex u64).
	OpBatch Op = 0x07
)

// Response opcodes.
const (
	// RespPong answers OpPing (empty payload).
	RespPong Op = 0x81
	// RespValue answers OpDegree and OpKHop
	// (payload: gen u64, edges u64, value i64).
	RespValue Op = 0x82
	// RespVerts answers OpNeighbors
	// (payload: gen u64, edges u64, n u32, then n vertex u64).
	RespVerts Op = 0x83
	// RespTopK answers OpTopK
	// (payload: gen u64, edges u64, n u32, then n of vertex u64, degree u64).
	RespTopK Op = 0x84
	// RespRank answers OpPageRank
	// (payload: gen u64, edges u64, nRanks u32, top u64, score f64 bits).
	RespRank Op = 0x85
	// RespBatch answers OpBatch (payload: gen u64, edges u64, count u16,
	// then per point: op u8 echoing the request point, and either
	// value i64 for OpDegree or n u32 + n vertex u64 for OpNeighbors).
	RespBatch Op = 0x86
	// RespError is the typed failure response for any request
	// (payload: code u16, retry-after u32 in microseconds — nonzero only
	// with CodeOverloaded — msg length u16, msg bytes).
	RespError Op = 0xFF
)

// IsResponse reports whether the opcode is a response (high bit set).
func (o Op) IsResponse() bool { return o&0x80 != 0 }

func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpDegree:
		return "degree"
	case OpNeighbors:
		return "neighbors"
	case OpKHop:
		return "khop"
	case OpTopK:
		return "topk"
	case OpPageRank:
		return "pagerank"
	case OpBatch:
		return "batch"
	case RespPong:
		return "pong"
	case RespValue:
		return "value"
	case RespVerts:
		return "verts"
	case RespTopK:
		return "topk-resp"
	case RespRank:
		return "rank"
	case RespBatch:
		return "batch-resp"
	case RespError:
		return "error"
	default:
		return fmt.Sprintf("op(0x%02x)", byte(o))
	}
}

// Class is a frame's QoS priority class, declared by the client in the
// frame header and used by the server's weighted admission.
type Class byte

const (
	// ClassInteractive is the latency-sensitive class: point reads a
	// user is waiting on. It gets the dominant admission weight.
	ClassInteractive Class = 0
	// ClassAnalytics is the throughput class: k-hop expansions, top-k
	// scans, kernel refreshes. It is deprioritized and shed first under
	// overload.
	ClassAnalytics Class = 1

	// NumClasses is the QoS class count.
	NumClasses = 2
)

func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassAnalytics:
		return "analytics"
	default:
		return fmt.Sprintf("class(%d)", byte(c))
	}
}

// Header is the fixed per-frame header following the length prefix.
type Header struct {
	// Version is the sender's protocol version (ProtoVersion).
	Version byte
	// Op is the frame opcode.
	Op Op
	// Class is the QoS priority class (requests; echoed on responses).
	Class Class
	// Flags is reserved and must be zero in version 1.
	Flags byte
	// Tenant identifies the submitting principal for QoS accounting
	// (requests; echoed on responses). Zero means unattributed.
	Tenant uint32
	// ID tags the request so a pipelined connection can match each
	// response — responses may arrive in any order — to its request.
	// The server echoes it verbatim.
	ID uint64
}

// Frame is one decoded frame: the header plus the opcode-specific
// payload.
type Frame struct {
	Header
	Payload []byte
}

// Framing errors.
var (
	// ErrTruncated: the buffer ends before the announced frame does.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrFrameTooBig: the length prefix exceeds the frame-size limit.
	ErrFrameTooBig = errors.New("wire: frame exceeds size limit")
	// ErrBadLength: the length prefix is shorter than the fixed header.
	ErrBadLength = errors.New("wire: frame length below header size")
)

// AppendFrame appends f's encoding — u32 big-endian body length, then
// the 16-byte header, then the payload — to dst and returns the
// extended slice.
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(HeaderLen+len(f.Payload)))
	dst = append(dst, f.Version, byte(f.Op), byte(f.Class), f.Flags)
	dst = binary.BigEndian.AppendUint32(dst, f.Tenant)
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	return append(dst, f.Payload...)
}

func parseBody(body []byte) Frame {
	f := Frame{Header: Header{
		Version: body[0],
		Op:      Op(body[1]),
		Class:   Class(body[2]),
		Flags:   body[3],
		Tenant:  binary.BigEndian.Uint32(body[4:8]),
		ID:      binary.BigEndian.Uint64(body[8:16]),
	}}
	if len(body) > HeaderLen {
		f.Payload = body[HeaderLen:]
	}
	return f
}

// DecodeFrame decodes the first frame in b, returning it and the number
// of bytes consumed. The returned payload aliases b. A short buffer
// fails with ErrTruncated; a length prefix beyond MaxFrame fails with
// ErrFrameTooBig; one below HeaderLen with ErrBadLength.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, ErrTruncated
	}
	n := binary.BigEndian.Uint32(b)
	if n < HeaderLen {
		return Frame{}, 0, fmt.Errorf("%w: %d < %d", ErrBadLength, n, HeaderLen)
	}
	if n > MaxFrame {
		return Frame{}, 0, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, n, MaxFrame)
	}
	if uint32(len(b)-4) < n {
		return Frame{}, 0, ErrTruncated
	}
	return parseBody(b[4 : 4+n]), 4 + int(n), nil
}

// ReadFrame reads one complete frame from r. The body allocation is
// bounded by max (0 or anything above MaxFrame selects MaxFrame), and
// happens only after the length prefix passed that bound — a hostile
// prefix can never force an over-allocation. A stream ending mid-frame
// fails with io.ErrUnexpectedEOF; a clean EOF before any byte of the
// next frame returns io.EOF.
func ReadFrame(r io.Reader, max uint32) (Frame, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n < HeaderLen {
		return Frame{}, fmt.Errorf("%w: %d < %d", ErrBadLength, n, HeaderLen)
	}
	if max == 0 || max > MaxFrame {
		max = MaxFrame
	}
	if n > max {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return parseBody(body), nil
}
