package wire

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
)

// connBufSize sizes each connection's read and write buffers: large
// enough that a pipelined burst coalesces into few syscalls.
const connBufSize = 64 << 10

// sockBufSize sizes the kernel socket buffers on both ends of a wire
// connection. The explicit size matters on Linux loopback: its ~64KB
// MSS against the default 128KB receive buffer leaves the advertisable
// window (half the buffer) above one MSS by only a few bytes, and the
// kernel advertises a zero window whenever free space drops under one
// MSS — so a pipelined response burst that lands before receive
// auto-tuning has grown the buffer can wedge the connection in a
// permanent zero-window state. Multi-MSS buffers keep the window well
// clear of that edge.
const sockBufSize = 1 << 20

// tuneConn applies sockBufSize where the transport supports it (TCP);
// in-memory test transports fall through untouched.
func tuneConn(nc net.Conn) {
	type bufConn interface {
		SetReadBuffer(int) error
		SetWriteBuffer(int) error
	}
	if bc, ok := nc.(bufConn); ok {
		bc.SetReadBuffer(sockBufSize)
		bc.SetWriteBuffer(sockBufSize)
	}
}

// conn is one accepted wire connection: a reader goroutine pulling
// frames off the socket under the in-flight window, and a writer
// goroutine draining the bounded response channel back out.
//
// Accounting invariants, which graceful drain depends on:
//   - the reader acquires one window slot per decoded frame, before the
//     request goes anywhere — a full window stops the reader, and TCP
//     flow control extends the backpressure to the client;
//   - every accepted frame produces exactly one response frame on out
//     (success or typed error), and pending counts accepted frames
//     whose response has not been queued yet;
//   - the writer releases the slot after writing the response, so
//     out's capacity (== window) always covers every in-flight
//     response: send never blocks;
//   - out closes only after the reader has stopped AND pending has
//     drained, so the writer flushes every outstanding response before
//     the socket closes.
type conn struct {
	s  *Server
	nc net.Conn

	out    chan []byte
	window chan struct{}

	pending    sync.WaitGroup
	writerDone chan struct{}
	// dead flips when a write fails: the writer keeps draining out (so
	// senders and slots never wedge) but stops touching the socket.
	dead atomic.Bool
}

func (s *Server) newConn(nc net.Conn) *conn {
	return &conn{
		s:          s,
		nc:         nc,
		out:        make(chan []byte, s.cfg.Window),
		window:     make(chan struct{}, s.cfg.Window),
		writerDone: make(chan struct{}),
	}
}

// serve runs the reader loop, then the drain: wait for every accepted
// frame's response to be queued, let the writer flush, close the socket.
func (c *conn) serve() {
	go c.writer()
	br := bufio.NewReaderSize(c.nc, connBufSize)
	for {
		f, err := ReadFrame(br, c.s.cfg.MaxFrame)
		if err != nil {
			// Everything lands here: clean EOF, the drain deadline,
			// a force-closed socket, or a framing violation. Framing
			// violations desynchronize the stream (the decoder cannot
			// trust the next length prefix), so the connection ends
			// after the drain either way; they are just counted.
			switch err {
			case ErrBadLength, ErrFrameTooBig:
				c.s.badFrames.Add(1)
			}
			break
		}
		c.s.framesIn.Add(1)
		c.s.bytesIn.Add(int64(4 + HeaderLen + len(f.Payload)))
		// The payload aliases the bufio buffer only within ReadFrame's
		// own allocation (ReadFrame copies), so handing it off is safe.
		c.handle(f)
	}
	c.pending.Wait()
	close(c.out)
	<-c.writerDone
	c.nc.Close()
}

// reply encodes one response frame — echoing the request's id, class
// and tenant — and queues it for the writer. Exactly one reply per
// accepted frame balances the pending counter.
func (c *conn) reply(h Header, resp *Response) {
	out := Frame{Header: Header{
		Version: ProtoVersion,
		Op:      resp.Op,
		Class:   h.Class,
		Flags:   0,
		Tenant:  h.Tenant,
		ID:      h.ID,
	}}
	var err error
	out.Payload, err = AppendResponsePayload(nil, resp)
	if err != nil {
		// A response the codec cannot encode (never expected): degrade
		// to a typed internal error rather than dropping the reply and
		// wedging the window slot.
		out.Op = RespError
		out.Payload, _ = AppendResponsePayload(nil, &Response{
			Op:  RespError,
			Err: &Error{Code: CodeInternal, Msg: "unencodable response"},
		})
	}
	c.out <- AppendFrame(nil, &out)
	c.pending.Done()
}

// handle admits one decoded frame: window slot first (read-side
// backpressure), then validation, then either an immediate reply (ping,
// protocol errors, sheds) or a QoS submission whose dispatcher replies.
func (c *conn) handle(f Frame) {
	c.window <- struct{}{}
	c.pending.Add(1)
	h := f.Header
	if h.Version != ProtoVersion {
		c.s.badFrames.Add(1)
		c.reply(h, &Response{Op: RespError, Err: &Error{
			Code: CodeVersion, Msg: "unsupported protocol version",
		}})
		return
	}
	if h.Flags != 0 || h.Class >= NumClasses || h.Op.IsResponse() {
		c.s.badFrames.Add(1)
		c.reply(h, &Response{Op: RespError, Err: &Error{
			Code: CodeBadFrame, Msg: "bad header (flags/class/opcode)",
		}})
		return
	}
	if h.Op == OpPing {
		// The liveness probe skips QoS and the serving layer entirely.
		c.reply(h, &Response{Op: RespPong})
		return
	}
	req, err := ParseRequest(h.Op, f.Payload)
	if err != nil {
		c.s.badFrames.Add(1)
		code := CodeBadFrame
		if !validRequestOp(h.Op) {
			code = CodeUnknownOp
		}
		c.reply(h, &Response{Op: RespError, Err: &Error{Code: code, Msg: err.Error()}})
		return
	}
	if werr := c.s.sch.Submit(h.Class, h.Tenant, func() {
		resp := c.s.answer(&req, h.Tenant)
		c.reply(h, &resp)
	}); werr != nil {
		c.reply(h, &Response{Op: RespError, Err: werr})
	}
}

func validRequestOp(op Op) bool {
	switch op {
	case OpPing, OpDegree, OpNeighbors, OpKHop, OpTopK, OpPageRank, OpBatch:
		return true
	}
	return false
}

// writer drains the response channel: write, release the request's
// window slot, flush when the channel momentarily empties (so pipelined
// bursts coalesce into few syscalls but an idle connection never waits
// on a timer for its answer).
func (c *conn) writer() {
	defer close(c.writerDone)
	bw := bufio.NewWriterSize(c.nc, connBufSize)
	for buf := range c.out {
		if !c.dead.Load() {
			if _, err := bw.Write(buf); err != nil {
				c.fail()
			} else {
				c.s.framesOut.Add(1)
				c.s.bytesOut.Add(int64(len(buf)))
			}
		}
		<-c.window
		if len(c.out) == 0 && !c.dead.Load() {
			if err := bw.Flush(); err != nil {
				c.fail()
			}
		}
	}
}

// fail marks the connection's write side broken and closes the socket,
// which also kicks the reader out of its blocking read. The writer
// keeps draining out so every in-flight sender completes and every
// window slot is released.
func (c *conn) fail() {
	if c.dead.CompareAndSwap(false, true) {
		c.nc.Close()
	}
}
