package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// DefaultMaxLine bounds one legacy-protocol line (input or reply).
// bufio.Scanner's default 64KB token cap is far too small for a
// neighbors reply on a hub vertex — a line past the cap must grow the
// buffer, not kill the connection.
const DefaultMaxLine = 4 << 20

// LineHandler answers one line of the legacy text protocol.
type LineHandler func(line string) (string, error)

// LineServer is the legacy line protocol as a network listener: one
// command per line, one reply per command, over the same dispatcher the
// stdin loop uses. It exists for compatibility — the framed protocol is
// the production path — so it stays deliberately simple: synchronous
// per-connection handling, no pipelining, no QoS.
type LineServer struct {
	// NewHandler builds one connection's handler. Per-connection state
	// (the interactive ingest seed, for instance) lives in the closure.
	NewHandler func() LineHandler
	// MaxLine bounds one line in bytes (0 = DefaultMaxLine).
	MaxLine int

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	draining  bool
}

// Serve accepts connections on l until the listener closes.
func (s *LineServer) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("wire: line server draining")
	}
	if s.listeners == nil {
		s.listeners = make(map[net.Listener]struct{})
		s.conns = make(map[net.Conn]struct{})
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		tuneConn(nc)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, nc)
				s.mu.Unlock()
				s.wg.Done()
			}()
			s.serveConn(nc)
		}()
	}
}

func (s *LineServer) serveConn(nc net.Conn) {
	defer nc.Close()
	h := s.NewHandler()
	maxLine := s.MaxLine
	if maxLine <= 0 {
		maxLine = DefaultMaxLine
	}
	sc := bufio.NewScanner(nc)
	// The explicit buffer is the whole point: Scanner's default token
	// cap is 64KB, and a long input line would otherwise end the scan
	// with ErrTooLong and silently kill the connection.
	sc.Buffer(make([]byte, 64<<10), maxLine)
	bw := bufio.NewWriterSize(nc, connBufSize)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		reply, err := h(line)
		if err != nil {
			reply = fmt.Sprintf("error: %v", err)
		}
		if _, err := bw.WriteString(reply + "\n"); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Shutdown stops accepting and closes every connection once its
// in-flight command (if any) has had drain time to finish. The line
// protocol is synchronous, so there is at most one outstanding command
// per connection.
func (s *LineServer) Shutdown(drain time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	now := time.Now()
	for nc := range s.conns {
		// Stop reading further commands; the in-flight reply still
		// writes out.
		nc.SetReadDeadline(now)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if drain > 0 {
		select {
		case <-done:
		case <-time.After(drain):
			s.mu.Lock()
			for nc := range s.conns {
				nc.Close()
			}
			s.mu.Unlock()
			<-done
		}
	} else {
		<-done
	}
}
