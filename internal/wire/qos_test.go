package wire

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockScheduler starts a scheduler with one dispatcher and parks it on
// a blocker job, so tests can fill the admission queues deterministically
// before any dispatch happens. Returns the release function.
func blockScheduler(t *testing.T, cfg QoSConfig) (*scheduler, func()) {
	t.Helper()
	cfg.Dispatchers = 1
	s := newScheduler(cfg)
	started := make(chan struct{})
	release := make(chan struct{})
	if err := s.Submit(ClassInteractive, 0, func() {
		close(started)
		<-release
	}); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	<-started
	return s, func() { close(release) }
}

// TestQoSWeightedDispatch: with both classes backed up and jobs of
// equal (negligible) cost, fair queuing falls back to the charge floor
// and dispatches roughly Weights[interactive]:Weights[analytics] — the
// interactive class dominates without starving analytics. The static
// clock keeps wall time out of the virtual charges.
func TestQoSWeightedDispatch(t *testing.T) {
	s, release := blockScheduler(t, QoSConfig{
		QueueDepth: 64,
		Clock:      func() time.Time { return time.Time{} },
	})
	var mu sync.Mutex
	var order []Class
	mark := func(c Class) func() {
		return func() {
			mu.Lock()
			order = append(order, c)
			mu.Unlock()
		}
	}
	const each = 18
	for i := 0; i < each; i++ {
		if err := s.Submit(ClassInteractive, 0, mark(ClassInteractive)); err != nil {
			t.Fatalf("interactive %d: %v", i, err)
		}
		if err := s.Submit(ClassAnalytics, 0, mark(ClassAnalytics)); err != nil {
			t.Fatalf("analytics %d: %v", i, err)
		}
	}
	release()
	s.Close()
	if len(order) != 2*each {
		t.Fatalf("dispatched %d of %d", len(order), 2*each)
	}
	var inter, ana int
	for _, c := range order[:each] {
		if c == ClassInteractive {
			inter++
		} else {
			ana++
		}
	}
	// 8:1 weights over the first 18 dispatches: interactive dominates
	// (≥14 of 18) but analytics is not starved.
	if inter < 14 {
		t.Fatalf("interactive got %d of first %d dispatches: %v", inter, each, order[:each])
	}
	if ana == 0 {
		t.Fatalf("analytics starved in first %d dispatches: %v", each, order[:each])
	}
	if got := s.admitted[ClassInteractive].Load(); got != each+1 { // +1 blocker
		t.Fatalf("admitted[interactive] = %d, want %d", got, each+1)
	}
}

// TestQoSTimeFairness: weights divide dispatcher TIME, not dispatch
// slots. With analytics jobs 200x the cost of interactive ones, a
// single analytics dispatch charges its class enough virtual time that
// the whole interactive backlog drains before analytics runs again —
// the failure mode of count-based round-robin (analytics hogging the
// pool from behind an 8:1 slot deficit) cannot happen.
func TestQoSTimeFairness(t *testing.T) {
	var now atomic.Int64 // fake nanosecond clock, advanced by the jobs
	s, release := blockScheduler(t, QoSConfig{
		QueueDepth:  128,
		TenantShare: 1,
		Clock:       func() time.Time { return time.Unix(0, now.Load()) },
	})
	var mu sync.Mutex
	var order []Class
	job := func(c Class, cost time.Duration) func() {
		return func() {
			now.Add(int64(cost))
			mu.Lock()
			order = append(order, c)
			mu.Unlock()
		}
	}
	const (
		nInter = 96
		nAna   = 12
		costI  = 10 * time.Microsecond
		costA  = 2 * time.Millisecond // ~200x a point read
	)
	for i := 0; i < nAna; i++ {
		if err := s.Submit(ClassAnalytics, 0, job(ClassAnalytics, costA)); err != nil {
			t.Fatalf("analytics %d: %v", i, err)
		}
	}
	for i := 0; i < nInter; i++ {
		if err := s.Submit(ClassInteractive, 0, job(ClassInteractive, costI)); err != nil {
			t.Fatalf("interactive %d: %v", i, err)
		}
	}
	release()
	s.Close()
	if len(order) != nInter+nAna {
		t.Fatalf("dispatched %d of %d", len(order), nInter+nAna)
	}
	// One analytics kernel costs 2ms; at 8:1 weights interactive must
	// accumulate 2ms of charged service (≥1600 dispatches at 10µs/8)
	// before analytics runs again — far more than the 96 queued. So at
	// most two analytics dispatches can appear before the interactive
	// backlog is fully drained.
	ana := 0
	for _, c := range order[:nInter] {
		if c == ClassAnalytics {
			ana++
		}
	}
	if ana > 2 {
		t.Fatalf("analytics got %d of the first %d dispatches despite 200x job cost", ana, nInter)
	}
	if ana == 0 {
		t.Fatalf("analytics fully starved: %v", order[:8])
	}
}

// TestQoSQueueShed: arrivals beyond a class queue are shed with a typed
// overload error carrying a positive retry-after hint, and the shed is
// counted per class.
func TestQoSQueueShed(t *testing.T) {
	s, release := blockScheduler(t, QoSConfig{QueueDepth: 2, TenantShare: 1})
	for i := 0; i < 2; i++ {
		if err := s.Submit(ClassAnalytics, 0, func() {}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	err := s.Submit(ClassAnalytics, 0, func() {})
	if err == nil || err.Code != CodeOverloaded {
		t.Fatalf("overflow: %v", err)
	}
	if err.RetryAfter <= 0 {
		t.Fatalf("retry-after hint %v, want > 0", err.RetryAfter)
	}
	if got := s.shed[ClassAnalytics].Load(); got != 1 {
		t.Fatalf("shed[analytics] = %d, want 1", got)
	}
	// The other class's queue is unaffected by the full one.
	if err := s.Submit(ClassInteractive, 0, func() {}); err != nil {
		t.Fatalf("interactive while analytics full: %v", err)
	}
	release()
	s.Close()
}

// TestQoSPerClassDepth: QueueDepths shortens one class's admission ring
// without touching the other's — the cost-aware sizing the bench uses
// (analytics rings far shorter than interactive ones), including the
// tenant cap, which follows the class's own depth.
func TestQoSPerClassDepth(t *testing.T) {
	s, release := blockScheduler(t, QoSConfig{
		QueueDepth:  8,
		QueueDepths: [NumClasses]int{ClassAnalytics: 2},
		TenantShare: 1,
	})
	for i := 0; i < 2; i++ {
		if err := s.Submit(ClassAnalytics, 0, func() {}); err != nil {
			t.Fatalf("analytics fill %d: %v", i, err)
		}
	}
	if err := s.Submit(ClassAnalytics, 0, func() {}); err == nil || err.Code != CodeOverloaded {
		t.Fatalf("analytics past short ring: %v", err)
	}
	// Interactive keeps the fallback depth of 8 (the blocker holds no
	// slot — it was dispatched, not queued).
	for i := 0; i < 8; i++ {
		if err := s.Submit(ClassInteractive, 0, func() {}); err != nil {
			t.Fatalf("interactive fill %d: %v", i, err)
		}
	}
	if err := s.Submit(ClassInteractive, 0, func() {}); err == nil || err.Code != CodeOverloaded {
		t.Fatalf("interactive past fallback ring: %v", err)
	}
	release()
	s.Close()
}

// TestQoSTenantCap: one tenant cannot occupy more than its share of a
// class queue; other tenants keep getting in.
func TestQoSTenantCap(t *testing.T) {
	s, release := blockScheduler(t, QoSConfig{QueueDepth: 10, TenantShare: 0.3})
	for i := 0; i < 3; i++ { // cap = 0.3 × 10 = 3
		if err := s.Submit(ClassInteractive, 7, func() {}); err != nil {
			t.Fatalf("tenant 7 #%d: %v", i, err)
		}
	}
	err := s.Submit(ClassInteractive, 7, func() {})
	if err == nil || err.Code != CodeOverloaded || !strings.Contains(err.Msg, "tenant") {
		t.Fatalf("tenant over share: %v", err)
	}
	if err.RetryAfter <= 0 {
		t.Fatalf("retry-after hint %v, want > 0", err.RetryAfter)
	}
	if got := s.tenantShed[ClassInteractive].Load(); got != 1 {
		t.Fatalf("tenantShed = %d, want 1", got)
	}
	if err := s.Submit(ClassInteractive, 8, func() {}); err != nil {
		t.Fatalf("tenant 8 blocked by tenant 7's cap: %v", err)
	}
	release()
	s.Close()
}

// TestQoSCloseDrains: Close stops admission but every already-admitted
// job still runs before the dispatchers exit.
func TestQoSCloseDrains(t *testing.T) {
	s, release := blockScheduler(t, QoSConfig{QueueDepth: 64})
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 20; i++ {
		if err := s.Submit(ClassAnalytics, 0, func() {
			mu.Lock()
			ran++
			mu.Unlock()
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	release()
	s.Close()
	if ran != 20 {
		t.Fatalf("ran %d of 20 admitted jobs after Close", ran)
	}
	if err := s.Submit(ClassInteractive, 0, func() {}); err == nil || err.Code != CodeShutdown {
		t.Fatalf("submit after close: %v", err)
	}
}

// TestQoSRetryAfterScalesWithDepth: the hint grows with the backlog.
func TestQoSRetryAfterScalesWithDepth(t *testing.T) {
	s := &scheduler{cfg: QoSConfig{Dispatchers: 2}.defaults()}
	s.ewma[ClassAnalytics].Store(int64(time.Millisecond))
	shallow := s.retryAfter(ClassAnalytics, 1)
	deep := s.retryAfter(ClassAnalytics, 100)
	if deep <= shallow {
		t.Fatalf("retry-after did not scale: depth 1 → %v, depth 100 → %v", shallow, deep)
	}
	if want := 101 * time.Millisecond / 2; deep != want {
		t.Fatalf("deep hint %v, want %v", deep, want)
	}
}
