package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// MaxBatch bounds the point count of one OpBatch frame. It keeps a
// single frame's service time comparable to a heavy point query rather
// than an unbounded scan, and bounds the decode allocation.
const MaxBatch = 4096

// ErrCode is a typed error code carried by RespError frames.
type ErrCode uint16

const (
	// CodeBadFrame: the frame violated the protocol (nonzero flags,
	// unknown class, malformed payload).
	CodeBadFrame ErrCode = 1
	// CodeBadVertex: the named vertex is outside the snapshot's id space.
	CodeBadVertex ErrCode = 2
	// CodeOverloaded: admission shed the request; RetryAfter carries the
	// server's backoff hint. The connection stays healthy — the client
	// should retry after the hint, not reconnect.
	CodeOverloaded ErrCode = 3
	// CodeShutdown: the server is draining and no longer admits work.
	CodeShutdown ErrCode = 4
	// CodeVersion: the frame's protocol version is not served.
	CodeVersion ErrCode = 5
	// CodeUnknownOp: the opcode is not recognized (a newer client
	// against an older server); the connection stays healthy.
	CodeUnknownOp ErrCode = 6
	// CodeInternal: the query failed inside the serving layer.
	CodeInternal ErrCode = 7
)

func (c ErrCode) String() string {
	switch c {
	case CodeBadFrame:
		return "bad-frame"
	case CodeBadVertex:
		return "bad-vertex"
	case CodeOverloaded:
		return "overloaded"
	case CodeShutdown:
		return "shutdown"
	case CodeVersion:
		return "version"
	case CodeUnknownOp:
		return "unknown-op"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("code(%d)", uint16(c))
	}
}

// Error is a decoded RespError: the typed, retryable failure a request
// can end with instead of a torn connection.
type Error struct {
	Code ErrCode
	// RetryAfter is the server's backoff hint (CodeOverloaded only):
	// roughly how long until the shed class's queue has drained at the
	// current service rate. Zero means no hint.
	RetryAfter time.Duration
	Msg        string
}

func (e *Error) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("wire: %s (retry after %v): %s", e.Code, e.RetryAfter, e.Msg)
	}
	return fmt.Sprintf("wire: %s: %s", e.Code, e.Msg)
}

// Request is one decoded request frame's typed body.
type Request struct {
	Op Op
	// V is the subject vertex (OpDegree, OpNeighbors, OpKHop).
	V uint64
	// K is the hop bound (OpKHop) or ranking size (OpTopK).
	K uint32
	// Points are OpBatch's grouped point reads.
	Points []Point
}

// Point is one point read inside an OpBatch request.
type Point struct {
	// Op is OpDegree or OpNeighbors.
	Op Op
	// V is the subject vertex.
	V uint64
}

// PointAnswer is one point's answer inside a RespBatch response.
type PointAnswer struct {
	// Op echoes the request point's opcode.
	Op Op
	// Value is the out-degree (OpDegree points).
	Value int64
	// Verts is the neighbor list (OpNeighbors points).
	Verts []uint64
}

// Response is one decoded response frame's typed body.
type Response struct {
	Op Op
	// Gen and Edges are the bounded-staleness provenance: the lease
	// generation and snapshot edge count the answer was served from.
	// Zero on RespPong and RespError, which touch no snapshot.
	Gen   uint64
	Edges uint64
	// Value carries scalar answers (RespValue).
	Value int64
	// Verts carries the neighbor list (RespVerts) or the ranked
	// vertices (RespTopK).
	Verts []uint64
	// Degrees is index-aligned with Verts on RespTopK.
	Degrees []uint64
	// NRanks, Top and Score summarize the PageRank vector (RespRank).
	NRanks uint32
	Top    uint64
	Score  float64
	// Points holds one answer per batched point (RespBatch).
	Points []PointAnswer
	// Err is the typed failure (RespError).
	Err *Error
}

// AppendRequestPayload appends r's opcode-specific payload encoding.
func AppendRequestPayload(dst []byte, r *Request) ([]byte, error) {
	switch r.Op {
	case OpPing, OpPageRank:
		return dst, nil
	case OpDegree, OpNeighbors:
		return binary.BigEndian.AppendUint64(dst, r.V), nil
	case OpKHop:
		dst = binary.BigEndian.AppendUint64(dst, r.V)
		return binary.BigEndian.AppendUint32(dst, r.K), nil
	case OpTopK:
		return binary.BigEndian.AppendUint32(dst, r.K), nil
	case OpBatch:
		if len(r.Points) == 0 || len(r.Points) > MaxBatch {
			return dst, fmt.Errorf("wire: batch of %d points (max %d)", len(r.Points), MaxBatch)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Points)))
		for _, p := range r.Points {
			if p.Op != OpDegree && p.Op != OpNeighbors {
				return dst, fmt.Errorf("wire: batch point op %s not batchable", p.Op)
			}
			dst = append(dst, byte(p.Op))
			dst = binary.BigEndian.AppendUint64(dst, p.V)
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("wire: unknown request op %s", r.Op)
	}
}

// ParseRequest decodes a request frame's payload against its opcode.
// Every length is validated before any allocation, and the payload must
// be exactly the announced size — trailing garbage is an error, so a
// frame can never smuggle bytes past the codec.
func ParseRequest(op Op, p []byte) (Request, error) {
	r := Request{Op: op}
	switch op {
	case OpPing, OpPageRank:
		if len(p) != 0 {
			return r, fmt.Errorf("wire: %s: %d trailing payload bytes", op, len(p))
		}
		return r, nil
	case OpDegree, OpNeighbors:
		if len(p) != 8 {
			return r, fmt.Errorf("wire: %s: payload %d bytes, want 8", op, len(p))
		}
		r.V = binary.BigEndian.Uint64(p)
		return r, nil
	case OpKHop:
		if len(p) != 12 {
			return r, fmt.Errorf("wire: %s: payload %d bytes, want 12", op, len(p))
		}
		r.V = binary.BigEndian.Uint64(p)
		r.K = binary.BigEndian.Uint32(p[8:])
		return r, nil
	case OpTopK:
		if len(p) != 4 {
			return r, fmt.Errorf("wire: %s: payload %d bytes, want 4", op, len(p))
		}
		r.K = binary.BigEndian.Uint32(p)
		return r, nil
	case OpBatch:
		if len(p) < 2 {
			return r, fmt.Errorf("wire: %s: payload %d bytes, want >= 2", op, len(p))
		}
		n := int(binary.BigEndian.Uint16(p))
		if n == 0 || n > MaxBatch {
			return r, fmt.Errorf("wire: batch of %d points (max %d)", n, MaxBatch)
		}
		if len(p) != 2+9*n {
			return r, fmt.Errorf("wire: batch payload %d bytes, want %d", len(p), 2+9*n)
		}
		r.Points = make([]Point, n)
		for i := range r.Points {
			it := p[2+9*i:]
			r.Points[i] = Point{Op: Op(it[0]), V: binary.BigEndian.Uint64(it[1:])}
			if r.Points[i].Op != OpDegree && r.Points[i].Op != OpNeighbors {
				return r, fmt.Errorf("wire: batch point %d op %s not batchable", i, r.Points[i].Op)
			}
		}
		return r, nil
	default:
		return r, fmt.Errorf("wire: unknown request op %s", op)
	}
}

// AppendResponsePayload appends r's opcode-specific payload encoding.
func AppendResponsePayload(dst []byte, r *Response) ([]byte, error) {
	prov := func(dst []byte) []byte {
		dst = binary.BigEndian.AppendUint64(dst, r.Gen)
		return binary.BigEndian.AppendUint64(dst, r.Edges)
	}
	switch r.Op {
	case RespPong:
		return dst, nil
	case RespValue:
		dst = prov(dst)
		return binary.BigEndian.AppendUint64(dst, uint64(r.Value)), nil
	case RespVerts:
		dst = prov(dst)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Verts)))
		for _, v := range r.Verts {
			dst = binary.BigEndian.AppendUint64(dst, v)
		}
		return dst, nil
	case RespTopK:
		if len(r.Degrees) != len(r.Verts) {
			return dst, fmt.Errorf("wire: topk response: %d degrees for %d verts", len(r.Degrees), len(r.Verts))
		}
		dst = prov(dst)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Verts)))
		for i, v := range r.Verts {
			dst = binary.BigEndian.AppendUint64(dst, v)
			dst = binary.BigEndian.AppendUint64(dst, r.Degrees[i])
		}
		return dst, nil
	case RespRank:
		dst = prov(dst)
		dst = binary.BigEndian.AppendUint32(dst, r.NRanks)
		dst = binary.BigEndian.AppendUint64(dst, r.Top)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Score)), nil
	case RespBatch:
		if len(r.Points) == 0 || len(r.Points) > MaxBatch {
			return dst, fmt.Errorf("wire: batch response of %d points (max %d)", len(r.Points), MaxBatch)
		}
		dst = prov(dst)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Points)))
		for _, p := range r.Points {
			dst = append(dst, byte(p.Op))
			switch p.Op {
			case OpDegree:
				dst = binary.BigEndian.AppendUint64(dst, uint64(p.Value))
			case OpNeighbors:
				dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Verts)))
				for _, v := range p.Verts {
					dst = binary.BigEndian.AppendUint64(dst, v)
				}
			default:
				return dst, fmt.Errorf("wire: batch answer op %s not batchable", p.Op)
			}
		}
		return dst, nil
	case RespError:
		e := r.Err
		if e == nil {
			return dst, fmt.Errorf("wire: error response without error")
		}
		msg := e.Msg
		if len(msg) > math.MaxUint16 {
			msg = msg[:math.MaxUint16]
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(e.Code))
		retry := e.RetryAfter.Microseconds()
		if retry < 0 {
			retry = 0
		}
		if retry > math.MaxUint32 {
			retry = math.MaxUint32
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(retry))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
		return append(dst, msg...), nil
	default:
		return dst, fmt.Errorf("wire: unknown response op %s", r.Op)
	}
}

// ParseResponse decodes a response frame's payload against its opcode,
// with the same exact-size discipline as ParseRequest. Element counts
// are validated against the remaining payload length before any
// allocation, so a hostile count can never force an over-allocation.
func ParseResponse(op Op, p []byte) (Response, error) {
	r := Response{Op: op}
	if op == RespPong {
		if len(p) != 0 {
			return r, fmt.Errorf("wire: pong: %d trailing payload bytes", len(p))
		}
		return r, nil
	}
	if op == RespError {
		if len(p) < 8 {
			return r, fmt.Errorf("wire: error response payload %d bytes, want >= 8", len(p))
		}
		e := &Error{
			Code:       ErrCode(binary.BigEndian.Uint16(p)),
			RetryAfter: time.Duration(binary.BigEndian.Uint32(p[2:])) * time.Microsecond,
		}
		n := int(binary.BigEndian.Uint16(p[6:]))
		if len(p) != 8+n {
			return r, fmt.Errorf("wire: error response payload %d bytes, want %d", len(p), 8+n)
		}
		e.Msg = string(p[8:])
		r.Err = e
		return r, nil
	}
	// Every remaining response starts with the 16-byte provenance.
	if len(p) < 16 {
		return r, fmt.Errorf("wire: %s: payload %d bytes, want >= 16", op, len(p))
	}
	r.Gen = binary.BigEndian.Uint64(p)
	r.Edges = binary.BigEndian.Uint64(p[8:])
	p = p[16:]
	switch op {
	case RespValue:
		if len(p) != 8 {
			return r, fmt.Errorf("wire: value response payload %d bytes, want 8", len(p))
		}
		r.Value = int64(binary.BigEndian.Uint64(p))
		return r, nil
	case RespVerts:
		if len(p) < 4 {
			return r, fmt.Errorf("wire: verts response payload %d bytes, want >= 4", len(p))
		}
		n := int(binary.BigEndian.Uint32(p))
		if len(p) != 4+8*n {
			return r, fmt.Errorf("wire: verts response payload %d bytes, want %d", len(p), 4+8*n)
		}
		r.Verts = make([]uint64, n)
		for i := range r.Verts {
			r.Verts[i] = binary.BigEndian.Uint64(p[4+8*i:])
		}
		return r, nil
	case RespTopK:
		if len(p) < 4 {
			return r, fmt.Errorf("wire: topk response payload %d bytes, want >= 4", len(p))
		}
		n := int(binary.BigEndian.Uint32(p))
		if len(p) != 4+16*n {
			return r, fmt.Errorf("wire: topk response payload %d bytes, want %d", len(p), 4+16*n)
		}
		r.Verts = make([]uint64, n)
		r.Degrees = make([]uint64, n)
		for i := range r.Verts {
			r.Verts[i] = binary.BigEndian.Uint64(p[4+16*i:])
			r.Degrees[i] = binary.BigEndian.Uint64(p[12+16*i:])
		}
		return r, nil
	case RespRank:
		if len(p) != 20 {
			return r, fmt.Errorf("wire: rank response payload %d bytes, want 20", len(p))
		}
		r.NRanks = binary.BigEndian.Uint32(p)
		r.Top = binary.BigEndian.Uint64(p[4:])
		r.Score = math.Float64frombits(binary.BigEndian.Uint64(p[12:]))
		return r, nil
	case RespBatch:
		if len(p) < 2 {
			return r, fmt.Errorf("wire: batch response payload %d bytes, want >= 2", len(p))
		}
		n := int(binary.BigEndian.Uint16(p))
		if n == 0 || n > MaxBatch {
			return r, fmt.Errorf("wire: batch response of %d points (max %d)", n, MaxBatch)
		}
		p = p[2:]
		r.Points = make([]PointAnswer, n)
		for i := range r.Points {
			if len(p) < 1 {
				return r, fmt.Errorf("wire: batch response truncated at point %d", i)
			}
			pa := PointAnswer{Op: Op(p[0])}
			p = p[1:]
			switch pa.Op {
			case OpDegree:
				if len(p) < 8 {
					return r, fmt.Errorf("wire: batch response truncated at point %d", i)
				}
				pa.Value = int64(binary.BigEndian.Uint64(p))
				p = p[8:]
			case OpNeighbors:
				if len(p) < 4 {
					return r, fmt.Errorf("wire: batch response truncated at point %d", i)
				}
				m := int(binary.BigEndian.Uint32(p))
				if len(p) < 4+8*m {
					return r, fmt.Errorf("wire: batch response truncated at point %d", i)
				}
				pa.Verts = make([]uint64, m)
				for j := range pa.Verts {
					pa.Verts[j] = binary.BigEndian.Uint64(p[4+8*j:])
				}
				p = p[4+8*m:]
			default:
				return r, fmt.Errorf("wire: batch response point %d op %s not batchable", i, pa.Op)
			}
			r.Points[i] = pa
		}
		if len(p) != 0 {
			return r, fmt.Errorf("wire: batch response: %d trailing payload bytes", len(p))
		}
		return r, nil
	default:
		return r, fmt.Errorf("wire: unknown response op %s", op)
	}
}
