package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func randRequest(rng *rand.Rand) Request {
	ops := []Op{OpPing, OpDegree, OpNeighbors, OpKHop, OpTopK, OpPageRank, OpBatch}
	r := Request{Op: ops[rng.Intn(len(ops))]}
	switch r.Op {
	case OpDegree, OpNeighbors:
		r.V = rng.Uint64()
	case OpKHop:
		r.V, r.K = rng.Uint64(), rng.Uint32()
	case OpTopK:
		r.K = rng.Uint32()
	case OpBatch:
		r.Points = make([]Point, 1+rng.Intn(32))
		for i := range r.Points {
			op := OpDegree
			if rng.Intn(2) == 1 {
				op = OpNeighbors
			}
			r.Points[i] = Point{Op: op, V: rng.Uint64()}
		}
	}
	return r
}

func randResponse(rng *rand.Rand) Response {
	ops := []Op{RespPong, RespValue, RespVerts, RespTopK, RespRank, RespBatch, RespError}
	r := Response{Op: ops[rng.Intn(len(ops))]}
	if r.Op != RespPong && r.Op != RespError {
		r.Gen, r.Edges = rng.Uint64(), rng.Uint64()
	}
	verts := func(n int) []uint64 {
		vs := make([]uint64, n)
		for i := range vs {
			vs[i] = rng.Uint64()
		}
		return vs
	}
	switch r.Op {
	case RespValue:
		r.Value = rng.Int63() - rng.Int63()
	case RespVerts:
		r.Verts = verts(rng.Intn(64))
	case RespTopK:
		n := rng.Intn(32)
		r.Verts, r.Degrees = verts(n), verts(n)
	case RespRank:
		r.NRanks, r.Top, r.Score = rng.Uint32(), rng.Uint64(), rng.Float64()
	case RespBatch:
		r.Points = make([]PointAnswer, 1+rng.Intn(16))
		for i := range r.Points {
			if rng.Intn(2) == 0 {
				r.Points[i] = PointAnswer{Op: OpDegree, Value: rng.Int63()}
			} else {
				r.Points[i] = PointAnswer{Op: OpNeighbors, Verts: verts(rng.Intn(8))}
			}
		}
	case RespError:
		r.Err = &Error{
			Code:       ErrCode(1 + rng.Intn(7)),
			RetryAfter: time.Duration(rng.Intn(1e6)) * time.Microsecond,
			Msg:        "m"[:rng.Intn(2)],
		}
	}
	return r
}

// normalize maps empty and nil slices together for comparison: the
// codec does not distinguish them.
func normEmpty[T any](s []T) []T {
	if len(s) == 0 {
		return nil
	}
	return s
}

// TestCodecRoundTrip: random typed requests and responses survive
// encode → decode exactly.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 2000; i++ {
		req := randRequest(rng)
		p, err := AppendRequestPayload(nil, &req)
		if err != nil {
			t.Fatalf("encode %s: %v", req.Op, err)
		}
		got, err := ParseRequest(req.Op, p)
		if err != nil {
			t.Fatalf("parse %s: %v", req.Op, err)
		}
		got.Points = normEmpty(got.Points)
		req.Points = normEmpty(req.Points)
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("request mismatch:\n got %+v\nwant %+v", got, req)
		}
	}
	for i := 0; i < 2000; i++ {
		resp := randResponse(rng)
		p, err := AppendResponsePayload(nil, &resp)
		if err != nil {
			t.Fatalf("encode %s: %v", resp.Op, err)
		}
		got, err := ParseResponse(resp.Op, p)
		if err != nil {
			t.Fatalf("parse %s: %v", resp.Op, err)
		}
		for _, r := range []*Response{&resp, &got} {
			r.Verts = normEmpty(r.Verts)
			r.Degrees = normEmpty(r.Degrees)
			for j := range r.Points {
				r.Points[j].Verts = normEmpty(r.Points[j].Verts)
			}
		}
		if !reflect.DeepEqual(resp, got) {
			t.Fatalf("response mismatch:\n got %+v\nwant %+v", got, resp)
		}
	}
}

// TestCodecRejects: malformed payloads fail with errors, never panic,
// and trailing bytes are always detected.
func TestCodecRejects(t *testing.T) {
	cases := []struct {
		op Op
		p  []byte
	}{
		{OpPing, []byte{1}},         // trailing bytes
		{OpDegree, make([]byte, 7)}, // short
		{OpDegree, make([]byte, 9)}, // long
		{OpKHop, make([]byte, 11)},  // short
		{OpTopK, nil},               // empty
		{OpBatch, nil},              // no count
		{OpBatch, []byte{0, 0}},     // zero points
		{OpBatch, []byte{0, 1, 9}},  // truncated point
		{OpBatch, []byte{255, 255}}, // count beyond MaxBatch
		{Op(0x70), make([]byte, 8)}, // unknown op
		{OpBatch, append([]byte{0, 1, byte(OpKHop)}, make([]byte, 8)...)}, // unbatchable point
	}
	for _, c := range cases {
		if _, err := ParseRequest(c.op, c.p); err == nil {
			t.Errorf("%s %v: accepted", c.op, c.p)
		}
	}
	respCases := []struct {
		op Op
		p  []byte
	}{
		{RespPong, []byte{0}},
		{RespValue, make([]byte, 16)},                     // provenance only, no value
		{RespVerts, make([]byte, 18)},                     // short count
		{RespVerts, append(make([]byte, 16), 0, 0, 0, 2)}, // count with no elements
		{RespTopK, append(make([]byte, 16), 0, 0, 0, 1)},
		{RespRank, make([]byte, 17)},
		{RespBatch, make([]byte, 16)},
		{RespError, make([]byte, 7)},
		{RespError, []byte{0, 3, 0, 0, 0, 0, 0, 9}}, // msg length beyond payload
		{Op(0xF0), make([]byte, 24)},
	}
	for _, c := range respCases {
		if _, err := ParseResponse(c.op, c.p); err == nil {
			t.Errorf("resp %s %v: accepted", c.op, c.p)
		}
	}
}
