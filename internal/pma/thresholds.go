package pma

// Thresholds holds the PMA density bounds, interpolated linearly between
// the leaf level and the root level as in Bender & Hu's adaptive PMA. A
// leaf may run quite full (gaps are cheap to recreate locally) while the
// root must stay sparser so that rebalances stay rare and local.
type Thresholds struct {
	UpperLeaf float64 // maximum density of a single section
	UpperRoot float64 // maximum density of the whole array before resize
	LowerLeaf float64 // minimum density of a single section
	LowerRoot float64 // minimum density of the whole array before shrink
}

// DefaultThresholds are the bounds used by DGAP's edge array.
func DefaultThresholds() Thresholds {
	return Thresholds{UpperLeaf: 0.90, UpperRoot: 0.75, LowerLeaf: 0.10, LowerRoot: 0.30}
}

// Upper returns the maximum allowed density for a window at the given
// level (0 = leaf) in a tree of the given height.
func (t Thresholds) Upper(level, height int) float64 {
	if height <= 0 {
		return t.UpperRoot
	}
	frac := float64(level) / float64(height)
	return t.UpperLeaf - (t.UpperLeaf-t.UpperRoot)*frac
}

// Lower returns the minimum allowed density for a window at the given
// level (0 = leaf).
func (t Thresholds) Lower(level, height int) float64 {
	if height <= 0 {
		return t.LowerRoot
	}
	frac := float64(level) / float64(height)
	return t.LowerLeaf + (t.LowerRoot-t.LowerLeaf)*frac
}
