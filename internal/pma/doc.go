// Package pma implements the Packed Memory Array machinery that DGAP's
// mutable CSR is built on: density thresholds, the binary PMA tree that
// tracks per-section occupancy and selects rebalancing windows, and a
// standalone sorted packed-memory array stored on emulated persistent
// memory (used directly by the Figure 1 motivation experiments and as a
// reference implementation for property tests).
//
// A PMA is a sorted array with gaps. Each leaf section keeps its density
// (occupied slots / capacity) between level-dependent thresholds; an
// insertion that pushes a section past its upper threshold triggers a
// rebalance of the smallest enclosing window whose density is back within
// bounds, redistributing gaps evenly. If even the root window is too
// dense the array is resized. Amortized insertion cost is O(log^2 N)
// element moves (O(log N) for the adaptive variant).
package pma
