package pma

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeleteBasic(t *testing.T) {
	p := newTestArray(t, 64, 16, false)
	for _, k := range []uint64{10, 20, 30, 20} {
		if err := p.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Delete(20) {
		t.Fatal("Delete(20) = false")
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
	if !p.Contains(20) {
		t.Error("second copy of 20 should remain")
	}
	if !p.Delete(20) || p.Contains(20) {
		t.Error("second delete failed")
	}
	if p.Delete(99) {
		t.Error("deleted a missing key")
	}
}

func TestDeletePreservesOrder(t *testing.T) {
	p := newTestArray(t, 64, 16, false)
	rng := rand.New(rand.NewSource(7))
	live := map[uint64]int{}
	for i := 0; i < 500; i++ {
		k := uint64(rng.Intn(300))
		if rng.Intn(3) == 0 && live[k] > 0 {
			if !p.Delete(k) {
				t.Fatalf("Delete(%d) failed with %d live", k, live[k])
			}
			live[k]--
		} else {
			if err := p.Insert(k); err != nil {
				t.Fatal(err)
			}
			live[k]++
		}
	}
	keys := p.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatal("unsorted after deletions")
		}
	}
	want := 0
	for _, n := range live {
		want += n
	}
	if len(keys) != want {
		t.Errorf("Len = %d, want %d", len(keys), want)
	}
}

func TestDeleteTriggersShrinkRebalance(t *testing.T) {
	p := newTestArray(t, 64, 8, false)
	for i := 0; i < 60; i++ {
		if err := p.Insert(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 55; i++ {
		if !p.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	got := p.Keys()
	want := []uint64{55, 56, 57, 58, 59}
	if len(got) != len(want) {
		t.Fatalf("Keys = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v", got)
		}
	}
}

// Property: interleaved inserts and deletes always leave a sorted array
// matching the reference multiset.
func TestPropertyInsertDeleteMatchesModel(t *testing.T) {
	type op struct {
		Del bool
		K   uint16
	}
	f := func(ops []op) bool {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		p := newTestArray(t, 32, 8, false)
		model := map[uint64]int{}
		for _, o := range ops {
			k := uint64(o.K % 500)
			if o.Del {
				wantOK := model[k] > 0
				if p.Delete(k) != wantOK {
					return false
				}
				if wantOK {
					model[k]--
				}
			} else {
				if p.Insert(k) != nil {
					return false
				}
				model[k]++
			}
		}
		var want []uint64
		for k, n := range model {
			for i := 0; i < n; i++ {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := p.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
