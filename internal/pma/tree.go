package pma

import "fmt"

// Tree is the binary PMA tree: it tracks the occupancy of each leaf
// section and answers "which window must be rebalanced after this section
// overflowed?". The tree lives in DRAM (DGAP deliberately keeps it off
// persistent memory because its counters are updated on every insert);
// after a crash it is rebuilt by scanning the edge array.
//
// Tree is not internally synchronized: DGAP serializes updates with its
// per-section locks, and a full rebuild happens only under the global
// resize lock.
type Tree struct {
	sectionSlots int
	nSec         int // power of two
	height       int // log2(nSec)
	counts       []int64
	total        int64
	th           Thresholds
}

// NewTree creates a tree over nSec sections (rounded up to a power of
// two) of sectionSlots slots each.
func NewTree(nSec, sectionSlots int, th Thresholds) *Tree {
	if nSec < 1 {
		nSec = 1
	}
	p := 1
	h := 0
	for p < nSec {
		p <<= 1
		h++
	}
	return &Tree{
		sectionSlots: sectionSlots,
		nSec:         p,
		height:       h,
		counts:       make([]int64, p),
		th:           th,
	}
}

// Sections returns the number of leaf sections.
func (t *Tree) Sections() int { return t.nSec }

// SectionSlots returns the capacity of one section in slots.
func (t *Tree) SectionSlots() int { return t.sectionSlots }

// Height returns the tree height (0 when there is a single section).
func (t *Tree) Height() int { return t.height }

// Total returns the number of occupied slots across the array.
func (t *Tree) Total() int64 { return t.total }

// Count returns the occupancy of one section.
func (t *Tree) Count(sec int) int64 { return t.counts[sec] }

// Add adjusts the occupancy of a section by delta (positive on insert,
// negative when a merge or rebalance frees slots).
func (t *Tree) Add(sec int, delta int64) {
	t.counts[sec] += delta
	t.total += delta
	if t.counts[sec] < 0 {
		panic(fmt.Sprintf("pma: section %d count went negative", sec))
	}
}

// Set overwrites the occupancy of a section (used by rebalance and
// recovery, which recompute counts from scratch).
func (t *Tree) Set(sec int, count int64) {
	t.total += count - t.counts[sec]
	t.counts[sec] = count
}

// Density returns the density of the window [lo, hi] of sections.
func (t *Tree) Density(lo, hi int) float64 {
	var c int64
	for s := lo; s <= hi; s++ {
		c += t.counts[s]
	}
	return float64(c) / float64((hi-lo+1)*t.sectionSlots)
}

// OverUpper reports whether a single section exceeds its leaf threshold.
func (t *Tree) OverUpper(sec int) bool {
	return float64(t.counts[sec]) > t.th.Upper(0, t.height)*float64(t.sectionSlots)
}

// FindWindow walks up from the given section looking for the smallest
// aligned window whose density, after accepting extra pending elements,
// is within the level threshold. It returns the window in sections and
// ok=false when even the root is too dense (the array must be resized).
// extra is the number of elements waiting to enter the window (DGAP
// counts per-section edge-log entries toward density, per the paper).
func (t *Tree) FindWindow(sec int, extra int64) (lo, hi int, ok bool) {
	lo, hi = sec, sec
	for level := 0; level <= t.height; level++ {
		span := 1 << level
		lo = sec &^ (span - 1)
		hi = lo + span - 1
		var c int64
		for s := lo; s <= hi; s++ {
			c += t.counts[s]
		}
		density := float64(c+extra) / float64(span*t.sectionSlots)
		if density <= t.th.Upper(level, t.height) {
			return lo, hi, true
		}
	}
	return 0, t.nSec - 1, false
}

// Thresholds returns the density bounds the tree enforces.
func (t *Tree) Thresholds() Thresholds { return t.th }
