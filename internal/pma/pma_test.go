package pma

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dgap/internal/pmem"
)

func TestThresholdInterpolation(t *testing.T) {
	th := DefaultThresholds()
	h := 8
	if got := th.Upper(0, h); got != th.UpperLeaf {
		t.Errorf("leaf upper = %v", got)
	}
	if got := th.Upper(h, h); got != th.UpperRoot {
		t.Errorf("root upper = %v", got)
	}
	prev := th.Upper(0, h)
	for l := 1; l <= h; l++ {
		cur := th.Upper(l, h)
		if cur > prev {
			t.Errorf("upper threshold not monotone at level %d: %v > %v", l, cur, prev)
		}
		prev = cur
	}
	prev = th.Lower(0, h)
	for l := 1; l <= h; l++ {
		cur := th.Lower(l, h)
		if cur < prev {
			t.Errorf("lower threshold not monotone at level %d", l)
		}
		prev = cur
	}
	if got := th.Upper(0, 0); got != th.UpperRoot {
		t.Errorf("degenerate height upper = %v", got)
	}
}

func TestTreeRoundsToPowerOfTwo(t *testing.T) {
	tr := NewTree(5, 16, DefaultThresholds())
	if tr.Sections() != 8 {
		t.Errorf("Sections = %d, want 8", tr.Sections())
	}
	if tr.Height() != 3 {
		t.Errorf("Height = %d, want 3", tr.Height())
	}
}

func TestTreeCountsAndDensity(t *testing.T) {
	tr := NewTree(4, 10, DefaultThresholds())
	tr.Add(0, 5)
	tr.Add(1, 10)
	if tr.Total() != 15 {
		t.Errorf("Total = %d", tr.Total())
	}
	if got := tr.Density(0, 1); got != 0.75 {
		t.Errorf("Density(0,1) = %v", got)
	}
	tr.Set(1, 2)
	if tr.Total() != 7 {
		t.Errorf("Total after Set = %d", tr.Total())
	}
}

func TestTreeFindWindowClimbs(t *testing.T) {
	tr := NewTree(4, 10, DefaultThresholds())
	// Fill section 0 to 100%, its buddy to 50%: level-1 window density
	// (10+5)/20 = 0.75 <= upper(1, 2)=0.825 -> window is sections 0-1.
	tr.Add(0, 10)
	tr.Add(1, 5)
	lo, hi, ok := tr.FindWindow(0, 0)
	if !ok || lo != 0 || hi != 1 {
		t.Errorf("FindWindow = [%d,%d] ok=%v, want [0,1] true", lo, hi, ok)
	}
	// Saturate everything: no window fits, resize needed.
	tr.Add(1, 5)
	tr.Add(2, 10)
	tr.Add(3, 10)
	if _, _, ok := tr.FindWindow(0, 0); ok {
		t.Error("expected resize signal on full array")
	}
}

func TestTreeExtraCountsTowardDensity(t *testing.T) {
	tr := NewTree(4, 10, DefaultThresholds())
	tr.Add(0, 6)
	// Without extra, the leaf itself is fine.
	lo, hi, ok := tr.FindWindow(0, 0)
	if !ok || lo != 0 || hi != 0 {
		t.Errorf("no-extra window = [%d,%d]", lo, hi)
	}
	// 5 pending edge-log entries push the leaf past 90%.
	lo, hi, ok = tr.FindWindow(0, 5)
	if !ok || lo != 0 || hi != 1 {
		t.Errorf("extra window = [%d,%d] ok=%v", lo, hi, ok)
	}
}

func TestTreeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative count")
		}
	}()
	tr := NewTree(2, 10, DefaultThresholds())
	tr.Add(0, -1)
}

func newTestArray(t *testing.T, capSlots, sectionSlots int, useTx bool) *Array {
	t.Helper()
	a := pmem.New(64 << 20)
	p, err := NewArray(a, capSlots, sectionSlots, DefaultThresholds(), useTx)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArrayInsertSortedOrder(t *testing.T) {
	p := newTestArray(t, 64, 16, false)
	in := []uint64{50, 10, 30, 20, 40, 25, 35, 5}
	for _, k := range in {
		if err := p.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Keys()
	want := append([]uint64(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("keys[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestArrayDuplicates(t *testing.T) {
	p := newTestArray(t, 64, 16, false)
	for i := 0; i < 10; i++ {
		if err := p.Insert(7); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 10 {
		t.Errorf("Len = %d", p.Len())
	}
	for _, k := range p.Keys() {
		if k != 7 {
			t.Errorf("unexpected key %d", k)
		}
	}
}

func TestArrayResize(t *testing.T) {
	p := newTestArray(t, 32, 16, false)
	for i := 0; i < 200; i++ {
		if err := p.Insert(uint64(i * 3)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Capacity() <= 32 {
		t.Errorf("capacity did not grow: %d", p.Capacity())
	}
	keys := p.Keys()
	if len(keys) != 200 {
		t.Fatalf("lost keys: %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("unsorted after resize at %d", i)
		}
	}
}

func TestArrayContains(t *testing.T) {
	p := newTestArray(t, 128, 16, false)
	rng := rand.New(rand.NewSource(1))
	present := map[uint64]bool{}
	for i := 0; i < 300; i++ {
		k := uint64(rng.Intn(10_000))
		present[k] = true
		if err := p.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := range present {
		if !p.Contains(k) {
			t.Errorf("Contains(%d) = false", k)
		}
	}
	misses := 0
	for k := uint64(0); k < 10_000; k++ {
		if !present[k] && p.Contains(k) {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d false positives", misses)
	}
}

func TestArrayTxModeEquivalent(t *testing.T) {
	plain := newTestArray(t, 64, 16, false)
	txed := newTestArray(t, 64, 16, true)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		k := uint64(rng.Intn(5000))
		if err := plain.Insert(k); err != nil {
			t.Fatal(err)
		}
		if err := txed.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	a, b := plain.Keys(), txed.Keys()
	if len(a) != len(b) {
		t.Fatalf("length mismatch %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tx mode diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestArrayTxCostsMore(t *testing.T) {
	aP := pmem.New(64 << 20)
	aT := pmem.New(64 << 20)
	plain, _ := NewArray(aP, 64, 16, DefaultThresholds(), false)
	txed, _ := NewArray(aT, 64, 16, DefaultThresholds(), true)
	aP.ResetStats()
	aT.ResetStats()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		k := uint64(rng.Intn(5000))
		_ = plain.Insert(k)
		_ = txed.Insert(k)
	}
	if aT.Stats().MediaBytes <= aP.Stats().MediaBytes {
		t.Errorf("tx mode should write more media: tx=%d plain=%d",
			aT.Stats().MediaBytes, aP.Stats().MediaBytes)
	}
	if aT.Stats().TxCount == 0 {
		t.Error("tx mode ran no transactions")
	}
}

func TestArrayRejectsSentinel(t *testing.T) {
	p := newTestArray(t, 32, 16, false)
	if err := p.Insert(Empty); err == nil {
		t.Error("expected error inserting sentinel")
	}
}

// Property: any insertion sequence yields a sorted array containing
// exactly the inserted multiset.
func TestPropertyArraySortedMultiset(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 400 {
			raw = raw[:400]
		}
		p := newTestArray(t, 32, 8, false)
		want := make([]uint64, 0, len(raw))
		for _, r := range raw {
			k := uint64(r)
			if p.Insert(k) != nil {
				return false
			}
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := p.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: after every insert, all leaf densities respect the tree's
// bookkeeping (counts match actual occupancy).
func TestPropertyTreeCountsMatchOccupancy(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		p := newTestArray(t, 32, 8, false)
		for _, r := range raw {
			if p.Insert(uint64(r)) != nil {
				return false
			}
		}
		ss := p.tree.SectionSlots()
		for s := 0; s < p.tree.Sections(); s++ {
			var c int64
			for i := s * ss; i < (s+1)*ss; i++ {
				if p.slot(i) != Empty {
					c++
				}
			}
			if c != p.tree.Count(s) {
				return false
			}
		}
		return int(p.tree.Total()) == p.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
