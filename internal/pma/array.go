package pma

import (
	"fmt"

	"dgap/internal/pmem"
)

// Empty is the slot sentinel; keys must be strictly smaller.
const Empty = ^uint64(0)

const slotBytes = 8

// Array is a sorted packed-memory array of uint64 keys stored on emulated
// persistent memory. It exists for three purposes: as the reference PMA
// for property tests, as the subject of the Figure 1(b) motivation
// experiment (inserting into a PMA on DRAM, on PM, and on PM under
// PMDK-style transactions), and as executable documentation of the shift
// and rebalance mechanics DGAP's edge array specializes.
//
// Array is single-writer; DGAP adds its own concurrency control on top of
// the same mechanics.
type Array struct {
	a    *pmem.Arena
	base pmem.Off
	cap  int // slots
	tree *Tree
	// index[i] is the smallest key in section i (or the previous
	// section's value when i is empty), kept in DRAM to locate the target
	// section in O(log S); it is rebuilt by rebalances.
	index []uint64
	useTx bool
	n     int
}

// NewArray allocates an Array with capSlots slots in sections of
// sectionSlots. When useTx is true every shift and rebalance runs under a
// PMDK-style transaction (the expensive baseline).
func NewArray(a *pmem.Arena, capSlots, sectionSlots int, th Thresholds, useTx bool) (*Array, error) {
	tree := NewTree((capSlots+sectionSlots-1)/sectionSlots, sectionSlots, th)
	capSlots = tree.Sections() * sectionSlots
	base, err := a.Alloc(uint64(capSlots)*slotBytes, pmem.CacheLineSize)
	if err != nil {
		return nil, err
	}
	p := &Array{a: a, base: base, cap: capSlots, tree: tree, useTx: useTx}
	p.index = make([]uint64, tree.Sections())
	p.clear(base, capSlots)
	for i := range p.index {
		p.index[i] = Empty
	}
	return p, nil
}

func (p *Array) clear(base pmem.Off, slots int) {
	ff := make([]byte, 4096)
	for i := range ff {
		ff[i] = 0xFF
	}
	for off := uint64(0); off < uint64(slots)*slotBytes; off += uint64(len(ff)) {
		n := uint64(len(ff))
		if off+n > uint64(slots)*slotBytes {
			n = uint64(slots)*slotBytes - off
		}
		p.a.WriteBytes(base+off, ff[:n])
	}
	p.a.Flush(base, uint64(slots)*slotBytes)
	p.a.Fence()
}

// Len returns the number of keys stored.
func (p *Array) Len() int { return p.n }

// Capacity returns the current slot capacity.
func (p *Array) Capacity() int { return p.cap }

func (p *Array) slot(i int) uint64       { return p.a.ReadU64(p.base + uint64(i)*slotBytes) }
func (p *Array) setSlot(i int, v uint64) { p.a.WriteU64(p.base+uint64(i)*slotBytes, v) }

// Insert adds a key (duplicates allowed), maintaining sorted order.
func (p *Array) Insert(key uint64) error {
	if key >= Empty {
		return fmt.Errorf("pma: key %#x reserved", key)
	}
	for {
		sec := p.findSection(key)
		if p.insertInSection(sec, key) {
			p.tree.Add(sec, 1)
			p.n++
			if key < p.index[sec] || p.index[sec] == Empty {
				p.index[sec] = key
			}
			if p.tree.OverUpper(sec) {
				if err := p.rebalanceAround(sec); err != nil {
					return err
				}
			}
			return nil
		}
		// Section full: make room, then retry.
		if err := p.rebalanceAround(sec); err != nil {
			return err
		}
	}
}

// findSection binary-searches the DRAM section index for the rightmost
// section whose smallest key is <= key.
func (p *Array) findSection(key uint64) int {
	lo, hi := 0, p.tree.Sections()-1
	ans := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		mv := p.sectionMin(mid)
		if mv == Empty || mv <= key {
			ans = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return ans
}

// sectionMin returns the effective lower bound of a section for the
// search: its own min, or the nearest non-empty predecessor's min.
func (p *Array) sectionMin(sec int) uint64 {
	for s := sec; s >= 0; s-- {
		if p.index[s] != Empty {
			return p.index[s]
		}
	}
	return Empty
}

// scanStart backs findSection's answer up to the section that actually
// holds the inherited minimum: an empty section inherits its
// predecessor's min, so a key equal to that min lives in the
// predecessor, not here.
func (p *Array) scanStart(sec int) int {
	for sec > 0 && p.index[sec] == Empty {
		sec--
	}
	return sec
}

// insertInSection places key into its sorted position inside section sec,
// shifting toward the nearest gap. Returns false when the section is full.
func (p *Array) insertInSection(sec int, key uint64) bool {
	ss := p.tree.SectionSlots()
	s0 := sec * ss
	s1 := s0 + ss - 1

	// Locate the neighbours: posLeft = last occupied slot with k <= key,
	// posRight = first occupied slot with k > key.
	posLeft, posRight := s0-1, s1+1
	for i := s0; i <= s1; i++ {
		v := p.slot(i)
		if v == Empty {
			continue
		}
		if v <= key {
			posLeft = i
		} else {
			posRight = i
			break
		}
	}
	// A gap strictly between the neighbours: no shift needed.
	for i := posLeft + 1; i < posRight && i <= s1; i++ {
		if i >= s0 && p.slot(i) == Empty {
			p.writeKey(i, key)
			return true
		}
	}
	// Nearest gap to the right, then to the left; shift toward it. This
	// "nearby shift" is the write-amplification source Figure 1(a)
	// quantifies.
	for g := posRight; g <= s1; g++ {
		if g >= s0 && p.slot(g) == Empty {
			p.shiftRight(max(posRight, s0), g, key)
			return true
		}
	}
	for g := posLeft; g >= s0; g-- {
		if p.slot(g) == Empty {
			p.shiftLeft(g, min(posLeft, s1), key)
			return true
		}
	}
	return false
}

func (p *Array) writeKey(i int, key uint64) {
	p.setSlot(i, key)
	p.a.Flush(p.base+uint64(i)*slotBytes, slotBytes)
	p.a.Fence()
}

// shiftRight moves [from, gap) one slot right and writes key at from.
func (p *Array) shiftRight(from, gap int, key uint64) {
	n := uint64(gap-from) * slotBytes
	src := p.base + uint64(from)*slotBytes
	if p.useTx {
		tx, err := pmem.Begin(p.a, n+slotBytes)
		if err == nil {
			_ = tx.Add(src, n+slotBytes)
			defer tx.Commit()
		}
	}
	p.a.CopyWithin(src+slotBytes, src, n)
	p.setSlot(from, key)
	p.a.Flush(src, n+slotBytes)
	p.a.Fence()
}

// shiftLeft moves (gap, to] one slot left and writes key at to.
func (p *Array) shiftLeft(gap, to int, key uint64) {
	n := uint64(to-gap) * slotBytes
	dst := p.base + uint64(gap)*slotBytes
	if p.useTx {
		tx, err := pmem.Begin(p.a, n+slotBytes)
		if err == nil {
			_ = tx.Add(dst, n+slotBytes)
			defer tx.Commit()
		}
	}
	p.a.CopyWithin(dst, dst+slotBytes, n)
	p.setSlot(to, key)
	p.a.Flush(dst, n+slotBytes)
	p.a.Fence()
}

// rebalanceAround redistributes gaps across the smallest window that can
// absorb the section's density, resizing when the root is full.
func (p *Array) rebalanceAround(sec int) error {
	lo, hi, ok := p.tree.FindWindow(sec, 0)
	if !ok {
		return p.resize()
	}
	p.redistribute(lo, hi)
	return nil
}

// redistribute rewrites the window [lo, hi] (in sections) with its
// elements evenly spread.
func (p *Array) redistribute(lo, hi int) {
	ss := p.tree.SectionSlots()
	start, end := lo*ss, (hi+1)*ss // slot range [start, end)
	keys := make([]uint64, 0, (end-start)/2)
	for i := start; i < end; i++ {
		if v := p.slot(i); v != Empty {
			keys = append(keys, v)
		}
	}
	winBytes := uint64(end-start) * slotBytes
	winOff := p.base + uint64(start)*slotBytes
	if p.useTx {
		tx, err := pmem.Begin(p.a, winBytes)
		if err == nil {
			_ = tx.Add(winOff, winBytes)
			defer tx.Commit()
		}
	}
	p.writeSpread(start, end, keys)
	p.a.Flush(winOff, winBytes)
	p.a.Fence()
	// Recompute tree counts and the section index for the window.
	for s := lo; s <= hi; s++ {
		var c int64
		mn := Empty
		for i := s * ss; i < (s+1)*ss; i++ {
			if v := p.slot(i); v != Empty {
				c++
				if v < mn {
					mn = v
				}
			}
		}
		p.tree.Set(s, c)
		p.index[s] = mn
	}
}

// writeSpread writes keys into [start, end) slots with even gaps.
func (p *Array) writeSpread(start, end int, keys []uint64) {
	slots := end - start
	for i := start; i < end; i++ {
		p.setSlot(i, Empty)
	}
	if len(keys) == 0 {
		return
	}
	stride := float64(slots) / float64(len(keys))
	if stride < 1 {
		panic("pma: window overflow during redistribute")
	}
	for k, key := range keys {
		p.setSlot(start+int(float64(k)*stride), key)
	}
}

// resize doubles the capacity and respreads every element.
func (p *Array) resize() error {
	ss := p.tree.SectionSlots()
	newCap := p.cap * 2
	newBase, err := p.a.Alloc(uint64(newCap)*slotBytes, pmem.CacheLineSize)
	if err != nil {
		return err
	}
	keys := make([]uint64, 0, p.n)
	for i := 0; i < p.cap; i++ {
		if v := p.slot(i); v != Empty {
			keys = append(keys, v)
		}
	}
	oldBase := p.base
	p.base, p.cap = newBase, newCap
	p.clear(newBase, newCap)
	p.tree = NewTree(newCap/ss, ss, p.tree.Thresholds())
	p.index = make([]uint64, p.tree.Sections())
	p.writeSpread(0, newCap, keys)
	p.a.Flush(newBase, uint64(newCap)*slotBytes)
	p.a.Fence()
	for s := 0; s < p.tree.Sections(); s++ {
		var c int64
		mn := Empty
		for i := s * ss; i < (s+1)*ss; i++ {
			if v := p.slot(i); v != Empty {
				c++
				if v < mn {
					mn = v
				}
			}
		}
		p.tree.Set(s, c)
		p.index[s] = mn
	}
	_ = oldBase // bump allocator: old region is abandoned, as in DGAP's resize
	return nil
}

// Delete removes one occurrence of key, reporting whether it was found.
// When a deletion drops the containing window below its lower density
// threshold, gaps are re-spread over the smallest window back within
// bounds (the adaptive PMA's shrink-side rebalance).
func (p *Array) Delete(key uint64) bool {
	sec := p.scanStart(p.findSection(key))
	ss := p.tree.SectionSlots()
	for s := sec; s < p.tree.Sections(); s++ {
		for i := s * ss; i < (s+1)*ss; i++ {
			v := p.slot(i)
			if v == Empty {
				continue
			}
			if v > key {
				return false
			}
			if v == key {
				p.setSlot(i, Empty)
				p.a.Flush(p.base+uint64(i)*slotBytes, slotBytes)
				p.a.Fence()
				p.tree.Add(s, -1)
				p.n--
				if uint64(key) == p.index[s] {
					p.refreshIndex(s)
				}
				p.maybeShrinkRebalance(s)
				return true
			}
		}
	}
	return false
}

// refreshIndex recomputes one section's minimum after its old minimum
// was deleted.
func (p *Array) refreshIndex(sec int) {
	ss := p.tree.SectionSlots()
	mn := Empty
	for i := sec * ss; i < (sec+1)*ss; i++ {
		if v := p.slot(i); v != Empty && v < mn {
			mn = v
		}
	}
	p.index[sec] = mn
}

// maybeShrinkRebalance re-spreads gaps when a section falls below its
// lower density threshold (skipped while the array is nearly empty,
// where thresholds are meaningless).
func (p *Array) maybeShrinkRebalance(sec int) {
	th := p.tree.Thresholds()
	h := p.tree.Height()
	ss := p.tree.SectionSlots()
	if p.n < ss || float64(p.tree.Count(sec)) >= th.Lower(0, h)*float64(ss) {
		return
	}
	// Climb to the smallest window whose density is back above its lower
	// bound, then even the gaps out across it.
	for level := 1; level <= h; level++ {
		span := 1 << level
		lo := sec &^ (span - 1)
		hi := lo + span - 1
		if p.tree.Density(lo, hi) >= th.Lower(level, h) {
			p.redistribute(lo, hi)
			return
		}
	}
	p.redistribute(0, p.tree.Sections()-1)
}

// Contains reports whether key is present.
func (p *Array) Contains(key uint64) bool {
	sec := p.scanStart(p.findSection(key))
	ss := p.tree.SectionSlots()
	// The key can only be in this section, but equal keys may also have
	// spilled into following sections after rebalances; scan forward
	// while section minimums do not exceed key.
	for s := sec; s < p.tree.Sections(); s++ {
		for i := s * ss; i < (s+1)*ss; i++ {
			v := p.slot(i)
			if v == Empty {
				continue
			}
			if v == key {
				return true
			}
			if v > key {
				return false
			}
		}
	}
	return false
}

// ForEach visits keys in sorted order until fn returns false.
func (p *Array) ForEach(fn func(uint64) bool) {
	for i := 0; i < p.cap; i++ {
		if v := p.slot(i); v != Empty {
			if !fn(v) {
				return
			}
		}
	}
}

// Keys returns all keys in order (testing helper).
func (p *Array) Keys() []uint64 {
	out := make([]uint64, 0, p.n)
	p.ForEach(func(k uint64) bool { out = append(out, k); return true })
	return out
}
