// Package graphgen produces the synthetic stand-ins for the SNAP datasets
// of the DGAP paper's Table 2. Real Orkut/Twitter/Friendster traces are
// not redistributable (and are orders of magnitude larger than this
// environment can hold), so each dataset is replaced by a deterministic
// R-MAT graph whose vertex count, average degree (|E|/|V|) and degree
// skew follow the original's published properties, scaled down by a
// configurable factor. The phenomena DGAP's evaluation studies — section
// fill, rebalance frequency, edge-log hit rate, CSR-vs-adjacency-list
// locality — depend on skew and density, which the presets preserve, not
// on absolute scale.
package graphgen

import (
	"fmt"
	"math/rand"

	"dgap/internal/graph"
)

// Spec describes a synthetic dataset.
type Spec struct {
	Name string
	// V is the number of vertices at scale 1.0 (the original dataset
	// size; Generate applies the scale factor).
	V int
	// AvgDeg is |E|/|V| of the original dataset (directed edges after
	// symmetrization, as the paper counts them).
	AvgDeg int
	// A, B, C are the R-MAT quadrant probabilities (D = 1-A-B-C);
	// larger A means heavier skew.
	A, B, C float64
	// Domain is a human-readable tag (Table 2's "Domain" column).
	Domain string
}

// Presets mirror Table 2 of the paper. |V| and |E|/|V| match the table;
// skew parameters are chosen per domain (social graphs use Graph500-like
// skew, citation graphs are flatter, the protein graph is dense).
var Presets = []Spec{
	{Name: "orkut", V: 3_072_626, AvgDeg: 76, A: 0.57, B: 0.19, C: 0.19, Domain: "social"},
	{Name: "livejournal", V: 4_847_570, AvgDeg: 18, A: 0.57, B: 0.19, C: 0.19, Domain: "social"},
	{Name: "citpatents", V: 6_009_554, AvgDeg: 6, A: 0.45, B: 0.22, C: 0.22, Domain: "citation"},
	{Name: "twitter", V: 61_578_414, AvgDeg: 39, A: 0.57, B: 0.19, C: 0.19, Domain: "social"},
	{Name: "friendster", V: 124_836_179, AvgDeg: 29, A: 0.55, B: 0.20, C: 0.20, Domain: "social"},
	{Name: "protein", V: 8_745_543, AvgDeg: 149, A: 0.50, B: 0.21, C: 0.21, Domain: "biology"},
}

// Preset returns the spec with the given name.
func Preset(name string) (Spec, error) {
	for _, s := range Presets {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("graphgen: unknown dataset %q", name)
}

// SmallPresets are the three "small" graphs the paper uses for the
// component and configuration studies (Table 5, Figure 9).
func SmallPresets() []Spec {
	return []Spec{mustPreset("orkut"), mustPreset("livejournal"), mustPreset("citpatents")}
}

func mustPreset(name string) Spec {
	s, err := Preset(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Generate produces the symmetrized edge stream of the dataset at the
// given scale, shuffled into random insertion order (the paper randomly
// shuffles all edges to build the insertion stream). The result contains
// both directions of every undirected edge; self-loops are suppressed.
// Generation is deterministic in (spec, scale, seed).
func (s Spec) Generate(scale float64, seed int64) []graph.Edge {
	v := int(float64(s.V) * scale)
	if v < 64 {
		v = 64
	}
	undirected := v * s.AvgDeg / 2
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, undirected*2)
	logV := 0
	for 1<<logV < v {
		logV++
	}
	for len(edges) < undirected*2 {
		src, dst := rmatEdge(rng, logV, s.A, s.B, s.C)
		if src >= v || dst >= v || src == dst {
			continue
		}
		edges = append(edges,
			graph.Edge{Src: graph.V(src), Dst: graph.V(dst)},
			graph.Edge{Src: graph.V(dst), Dst: graph.V(src)})
	}
	Shuffle(edges, seed^0x5DEECE66D)
	return edges
}

// NumVertices returns the vertex count Generate will use at this scale.
func (s Spec) NumVertices(scale float64) int {
	v := int(float64(s.V) * scale)
	if v < 64 {
		v = 64
	}
	return v
}

// rmatEdge draws one edge by recursive quadrant descent.
func rmatEdge(rng *rand.Rand, logV int, a, b, c float64) (int, int) {
	src, dst := 0, 0
	for bit := 0; bit < logV; bit++ {
		r := rng.Float64()
		switch {
		case r < a:
			// top-left: no bits set
		case r < a+b:
			dst |= 1 << bit
		case r < a+b+c:
			src |= 1 << bit
		default:
			src |= 1 << bit
			dst |= 1 << bit
		}
	}
	return src, dst
}

// Uniform generates an Erdős–Rényi style symmetric edge stream: v
// vertices, avgDeg directed edges per vertex, shuffled. Used by tests and
// microbenchmarks where skew is unwanted.
func Uniform(v, avgDeg int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	undirected := v * avgDeg / 2
	edges := make([]graph.Edge, 0, undirected*2)
	for len(edges) < undirected*2 {
		src := rng.Intn(v)
		dst := rng.Intn(v)
		if src == dst {
			continue
		}
		edges = append(edges,
			graph.Edge{Src: graph.V(src), Dst: graph.V(dst)},
			graph.Edge{Src: graph.V(dst), Dst: graph.V(src)})
	}
	Shuffle(edges, seed+1)
	return edges
}

// Shuffle permutes the edge stream deterministically.
func Shuffle(edges []graph.Edge, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
}

// MaxVertex returns 1 + the largest vertex id in the stream (the value
// frameworks receive as their INIT_VERTICES_SIZE hint).
func MaxVertex(edges []graph.Edge) int {
	maxV := graph.V(0)
	for _, e := range edges {
		if e.Src > maxV {
			maxV = e.Src
		}
		if e.Dst > maxV {
			maxV = e.Dst
		}
	}
	return int(maxV) + 1
}
