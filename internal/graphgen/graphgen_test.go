package graphgen

import (
	"reflect"
	"testing"
	"testing/quick"

	"dgap/internal/graph"
)

func TestPresetLookup(t *testing.T) {
	for _, want := range []string{"orkut", "livejournal", "citpatents", "twitter", "friendster", "protein"} {
		s, err := Preset(want)
		if err != nil {
			t.Fatalf("Preset(%q): %v", want, err)
		}
		if s.Name != want {
			t.Errorf("Preset(%q).Name = %q", want, s.Name)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("expected error for unknown preset")
	}
}

func TestPresetsMatchTable2(t *testing.T) {
	// |V| and |E|/|V| must match the paper's Table 2.
	want := map[string]struct{ v, deg int }{
		"orkut":       {3_072_626, 76},
		"livejournal": {4_847_570, 18},
		"citpatents":  {6_009_554, 6},
		"twitter":     {61_578_414, 39},
		"friendster":  {124_836_179, 29},
		"protein":     {8_745_543, 149},
	}
	for _, s := range Presets {
		w := want[s.Name]
		if s.V != w.v || s.AvgDeg != w.deg {
			t.Errorf("%s: V=%d deg=%d, want V=%d deg=%d", s.Name, s.V, s.AvgDeg, w.v, w.deg)
		}
	}
	if len(SmallPresets()) != 3 {
		t.Error("SmallPresets must return the three small graphs")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := Preset("orkut")
	a := spec.Generate(0.0001, 7)
	b := spec.Generate(0.0001, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (spec, scale, seed) produced different streams")
	}
	c := spec.Generate(0.0001, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateSymmetric(t *testing.T) {
	spec, _ := Preset("citpatents")
	edges := spec.Generate(0.0001, 3)
	cnt := map[graph.Edge]int{}
	for _, e := range edges {
		cnt[e]++
	}
	for e, n := range cnt {
		if cnt[graph.Edge{Src: e.Dst, Dst: e.Src}] != n {
			t.Fatalf("edge %v has no mirror", e)
		}
	}
}

func TestGenerateNoSelfLoops(t *testing.T) {
	edges := Uniform(100, 10, 5)
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatal("self loop generated")
		}
	}
	spec, _ := Preset("orkut")
	for _, e := range spec.Generate(0.0001, 5) {
		if e.Src == e.Dst {
			t.Fatal("self loop in RMAT stream")
		}
	}
}

func TestGenerateEdgeCountMatchesAvgDeg(t *testing.T) {
	spec, _ := Preset("livejournal")
	scale := 0.0005
	edges := spec.Generate(scale, 11)
	v := spec.NumVertices(scale)
	wantE := v * spec.AvgDeg
	got := len(edges)
	if got < wantE*9/10 || got > wantE*11/10 {
		t.Errorf("|E| = %d, want ~%d", got, wantE)
	}
}

func TestRMATSkewExceedsUniform(t *testing.T) {
	spec, _ := Preset("orkut")
	skewed := spec.Generate(0.0002, 13)
	v := MaxVertex(skewed)
	uniform := Uniform(v, len(skewed)/v, 13)
	maxDeg := func(edges []graph.Edge) int {
		deg := map[graph.V]int{}
		m := 0
		for _, e := range edges {
			deg[e.Src]++
			if deg[e.Src] > m {
				m = deg[e.Src]
			}
		}
		return m
	}
	if maxDeg(skewed) <= maxDeg(uniform)*2 {
		t.Errorf("RMAT max degree %d not meaningfully above uniform %d",
			maxDeg(skewed), maxDeg(uniform))
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	edges := Uniform(50, 6, 17)
	orig := append([]graph.Edge(nil), edges...)
	Shuffle(edges, 99)
	if reflect.DeepEqual(edges, orig) {
		t.Error("shuffle left stream unchanged (astronomically unlikely)")
	}
	cnt := map[graph.Edge]int{}
	for _, e := range orig {
		cnt[e]++
	}
	for _, e := range edges {
		cnt[e]--
	}
	for e, n := range cnt {
		if n != 0 {
			t.Fatalf("shuffle changed multiplicity of %v", e)
		}
	}
}

func TestMaxVertex(t *testing.T) {
	edges := []graph.Edge{{Src: 3, Dst: 9}, {Src: 1, Dst: 2}}
	if got := MaxVertex(edges); got != 10 {
		t.Errorf("MaxVertex = %d, want 10", got)
	}
}

func TestPropertyVerticesWithinRange(t *testing.T) {
	f := func(seedRaw uint16) bool {
		spec, _ := Preset("citpatents")
		scale := 0.00005
		edges := spec.Generate(scale, int64(seedRaw))
		v := spec.NumVertices(scale)
		for _, e := range edges {
			if int(e.Src) >= v || int(e.Dst) >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
