package csr

import (
	"testing"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

func TestBuildAndIterate(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 2}, {Src: 0, Dst: 1}, {Src: 2, Dst: 0}}
	g, err := Build(pmem.New(1<<20), 3, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("sizes: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	var got []graph.V
	g.Neighbors(0, func(d graph.V) bool { got = append(got, d); return true })
	// Per-source order follows the input stream.
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("neighbors of 0 = %v", got)
	}
	if g.Degree(1) != 0 || g.Degree(2) != 1 {
		t.Error("degrees wrong")
	}
}

func TestBuildEmptyGraph(t *testing.T) {
	g, err := Build(pmem.New(1<<20), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Error("empty graph has edges")
	}
	g.Neighbors(0, func(graph.V) bool { t.Error("callback on empty"); return true })
}

func TestImmutable(t *testing.T) {
	g, err := Build(pmem.New(1<<20), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InsertEdge(0, 1); err == nil {
		t.Error("CSR must reject inserts")
	}
	if g.Snapshot() != graph.Snapshot(g) {
		t.Error("snapshot must be the graph itself")
	}
}

func TestEdgeArraySurvivesCrash(t *testing.T) {
	// Build flushes everything; the whole structure must be on media.
	a := pmem.New(64 << 20)
	edges := graphgen.Uniform(50, 6, 5)
	g, err := Build(a, 50, edges)
	if err != nil {
		t.Fatal(err)
	}
	img := a.Crash()
	// Re-read the PM arrays from the crashed image directly.
	total := int64(0)
	for v := 0; v < 50; v++ {
		lo := img.ReadU64(g.vertOff + uint64(v)*8)
		hi := img.ReadU64(g.vertOff + uint64(v+1)*8)
		total += int64(hi - lo)
	}
	if total != int64(len(edges)) {
		t.Errorf("crash image offsets count %d edges, want %d", total, len(edges))
	}
}

func TestEarlyStop(t *testing.T) {
	edges := graphgen.Uniform(10, 8, 7)
	g, err := Build(pmem.New(1<<20), 10, edges)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	g.Neighbors(0, func(graph.V) bool { n++; return false })
	if n > 1 {
		t.Errorf("early stop visited %d", n)
	}
}
