// Package csr implements the static Compressed Sparse Row baseline of
// the paper's evaluation: the GAPBS-style CSR ported to (emulated)
// persistent memory. It cannot be updated incrementally — the whole
// structure is rebuilt from an edge list — but its compact, fully
// sequential layout makes it the optimal graph-analysis baseline every
// dynamic framework is normalized against (Figures 7 and 8).
package csr

import (
	"encoding/binary"

	"dgap/internal/graph"
	"dgap/internal/pmem"
)

// Graph is an immutable CSR on persistent memory: a vertex array of
// (start, degree) pairs and a packed edge array of destination ids.
type Graph struct {
	a        *pmem.Arena
	vertOff  pmem.Off // nVert+1 u64 offsets
	edgeOff  pmem.Off // nEdges u32 destinations
	nVert    int
	nEdges   int64
	offsets  []uint64 // DRAM copy of the offset array for fast Degree()
	edgeView []byte   // read-only view of the PM edge array
	edgeU32  []uint32 // zero-copy u32 view of the same array (nil on
	// hosts whose byte order forbids reinterpretation)
}

// Build constructs a CSR from an edge stream. Edges are grouped by
// source; per-source order follows the input stream.
func Build(a *pmem.Arena, nVert int, edges []graph.Edge) (*Graph, error) {
	deg := make([]uint64, nVert)
	for _, e := range edges {
		deg[e.Src]++
	}
	offsets := make([]uint64, nVert+1)
	var acc uint64
	for v := 0; v < nVert; v++ {
		offsets[v] = acc
		acc += deg[v]
	}
	offsets[nVert] = acc

	vertOff, err := a.AllocRegion("csr: vertex array", uint64(nVert+1)*8, pmem.CacheLineSize)
	if err != nil {
		return nil, err
	}
	edgeOff, err := a.AllocRegion("csr: edge array", acc*4+4, pmem.CacheLineSize)
	if err != nil {
		return nil, err
	}
	// Stage in DRAM, then one sequential persistent write each — the
	// optimal bulk-load pattern for PM.
	vbuf := make([]byte, (nVert+1)*8)
	for v, o := range offsets {
		binary.LittleEndian.PutUint64(vbuf[v*8:], o)
	}
	ebuf := make([]byte, acc*4)
	cursor := append([]uint64(nil), offsets[:nVert]...)
	for _, e := range edges {
		binary.LittleEndian.PutUint32(ebuf[cursor[e.Src]*4:], e.Dst)
		cursor[e.Src]++
	}
	a.WriteBytes(vertOff, vbuf)
	a.WriteBytes(edgeOff, ebuf)
	a.Flush(vertOff, uint64(len(vbuf)))
	a.Flush(edgeOff, uint64(len(ebuf)))
	a.Fence()

	g := &Graph{
		a:        a,
		vertOff:  vertOff,
		edgeOff:  edgeOff,
		nVert:    nVert,
		nEdges:   int64(acc),
		offsets:  offsets,
		edgeView: a.Slice(edgeOff, acc*4),
	}
	if view, ok := a.ViewU32(edgeOff, acc); ok {
		g.edgeU32 = view
	}
	return g, nil
}

// Name implements graph.System naming for the harness tables.
func (g *Graph) Name() string { return "CSR" }

// InsertEdge always fails: CSR is the static baseline.
func (g *Graph) InsertEdge(src, dst graph.V) error {
	return errImmutable{}
}

// InsertBatch implements graph.BatchWriter symmetrically with
// InsertEdge: the static baseline rejects all writes.
func (g *Graph) InsertBatch([]graph.Edge) error {
	return errImmutable{}
}

type errImmutable struct{}

func (errImmutable) Error() string { return "csr: immutable baseline, rebuild required" }

// Snapshot returns the graph itself (it never changes).
func (g *Graph) Snapshot() graph.Snapshot { return g }

// NumVertices implements graph.Snapshot.
func (g *Graph) NumVertices() int { return g.nVert }

// NumEdges implements graph.Snapshot.
func (g *Graph) NumEdges() int64 { return g.nEdges }

// Degree implements graph.Snapshot.
func (g *Graph) Degree(v graph.V) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors implements graph.Snapshot with a pure sequential scan of the
// PM edge array.
func (g *Graph) Neighbors(v graph.V, fn func(graph.V) bool) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	for i := lo; i < hi; i++ {
		if !fn(graph.V(binary.LittleEndian.Uint32(g.edgeView[i*4:]))) {
			return
		}
	}
}

// CopyNeighbors implements graph.BulkSnapshot: one memmove of the
// vertex's contiguous edge run (per-slot decode on non-little-endian
// hosts).
func (g *Graph) CopyNeighbors(v graph.V, buf []graph.V) []graph.V {
	lo, hi := g.offsets[v], g.offsets[v+1]
	if g.edgeU32 != nil {
		return append(buf, g.edgeU32[lo:hi]...)
	}
	for i := lo; i < hi; i++ {
		buf = append(buf, graph.V(binary.LittleEndian.Uint32(g.edgeView[i*4:])))
	}
	return buf
}

// SweepNeighbors implements graph.Sweeper: the CSR is immutable, so each
// vertex's destinations are handed out as a zero-copy subslice of the PM
// edge array view.
func (g *Graph) SweepNeighbors(lo, hi graph.V, buf []graph.V, fn func(v graph.V, dsts []graph.V)) []graph.V {
	if int(hi) > g.nVert {
		hi = graph.V(g.nVert)
	}
	if g.edgeU32 != nil {
		for v := lo; v < hi; v++ {
			fn(v, g.edgeU32[g.offsets[v]:g.offsets[v+1]])
		}
		return buf
	}
	for v := lo; v < hi; v++ {
		buf = g.CopyNeighbors(v, buf[:0])
		fn(v, buf)
	}
	return buf
}
