// Package dgap implements DGAP, the dynamic graph framework of Islam &
// Dai (SC 2023): a single mutable CSR stored directly on (emulated)
// persistent memory, augmented with three PM-specific designs.
//
//   - The edge array is a Packed Memory Array on PM. Every vertex's run
//     starts with a pivot element (the vertex id with the top bit set, the
//     paper's "-vertex-id") followed by its edges in insertion order.
//     Pivots let recovery rebuild all DRAM metadata by a single
//     sequential scan.
//
//   - A per-section edge log (ELOG_SZ bytes per PMA section) absorbs
//     inserts whose target slot is occupied, instead of shifting
//     neighbours — the write-amplification fix. Log entries carry a
//     back-pointer chaining all of a vertex's logged edges newest-to-
//     oldest; the DRAM vertex array holds the chain head. Logged edges
//     are merged back into the array during the next rebalance of their
//     section, preserving per-vertex insertion order.
//
//   - A per-thread undo log makes rebalancing crash-consistent with one
//     chunked backup + two fences instead of a PMDK transaction's
//     journal allocation and per-store ordering.
//
//   - Data placement: the vertex array (degree, start index, edge-log
//     head) and the PMA density tree live in DRAM, because they are
//     updated in place on every insert — the access pattern PM is worst
//     at. Both are reconstructed from the PM image after a crash.
//
// Consistency model: analysis tasks call ConsistentView, which briefly
// blocks writers while copying the per-vertex physical-entry counts into
// a task-private degree cache. Because merges preserve per-vertex
// insertion order, "the first n physical entries of v" is an immutable
// prefix, so long-running algorithms see a frozen graph while writers
// keep appending.
//
// Two write paths are exposed. Writer.InsertEdge is the scalar path:
// one section-lock round, one flush and one fence per edge.
// Writer.ApplyOps (graph.Applier) is the batched path, applied natively
// to mixed insert/delete streams: a batch is grouped by PMA section —
// inserts and tombstones together — and each group pays the section
// lock, the coalesced cache-line flushes of its slots and contiguous
// edge-log entries, the fence, and the rebalance-trigger check once —
// so at most one undo-log session runs per section group instead of
// potentially per edge. InsertBatch and DeleteBatch are the single-kind
// specializations of the same machinery. See batch.go.
//
// # Deletion and compaction
//
// Deletion is an append: DeleteEdge re-inserts the edge value with the
// tombstone bit set, after validating under the section lock that a
// live (src, dst) copy exists (liveMatches) — so every tombstone is
// matched to an edge, and an unmatched delete fails with ErrNoEdge.
// Snapshot reads cancel one earlier occurrence per tombstone (the
// kill-table passes in snapshot.go), which keeps the per-vertex
// physical-entry prefix immutable history: a snapshot taken before a
// delete keeps seeing the edge, the next one does not. Batched
// tombstones run through the same section-grouped apply machinery as
// inserts — in the same groups, when a mixed stream arrives through
// ApplyOps — one section lock, one coalesced flush, one fence and at
// most one rebalance session per group (batch.go).
//
// Tombstones would otherwise accumulate forever, so compaction
// piggybacks on the maintenance that rewrites windows anyway: when a
// rebalance or restructure stages a vertex's run, cancelled (edge,
// tombstone) pairs are physically dropped instead of copied
// (compactRun), the per-vertex live counter is untouched (it already
// excluded them), and a vertex left tombstone-free has its flag
// cleared — re-arming the zero-copy SweepNeighbors fast path that
// tombstones disable. Dropping entries shortens physical sequences,
// which would corrupt the immutable prefix of any live snapshot, so
// compaction is gated on an outstanding-snapshot counter: snapshots
// register at creation and deregister on ReleaseSnapshot (the serving
// tier's lease drop calls it; a GC finalizer backstops everyone else),
// and while the count is nonzero every rebalance copies tombstones
// verbatim. Compact() forces one full compacting restructure at a
// workload boundary; Compaction() and Footprint() expose the counters
// the churn benchmark reports. Config.NoCompaction preserves the old
// accumulate-forever behaviour as a space baseline.
//
// Ablation switches (Config.EnableEdgeLog, UseUndoLog, MetadataInDRAM)
// reproduce the paper's "No EL" / "No EL&UL" / "No EL&UL&DP" variants of
// Table 5.
package dgap
