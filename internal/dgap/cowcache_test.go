package dgap

import (
	"reflect"
	"runtime"
	"testing"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
)

func cowConfig(v int, e int64) Config {
	cfg := smallConfig(v, e)
	cfg.CoWDegreeCache = true
	return cfg
}

func TestCoWSnapshotMatchesFlat(t *testing.T) {
	edges := graphgen.Uniform(100, 12, 111)
	g := newTestGraph(t, cowConfig(100, int64(len(edges))))
	for _, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
	}
	flat := g.ConsistentView()
	cow := g.ConsistentViewCoW()
	if flat.NumEdges() != cow.NumEdges() || flat.NumVertices() != cow.NumVertices() {
		t.Fatalf("totals differ: flat %d/%d cow %d/%d",
			flat.NumEdges(), flat.NumVertices(), cow.NumEdges(), cow.NumVertices())
	}
	for v := graph.V(0); v < 100; v++ {
		var a, b []graph.V
		flat.Neighbors(v, func(d graph.V) bool { a = append(a, d); return true })
		cow.Neighbors(v, func(d graph.V) bool { b = append(b, d); return true })
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("vertex %d: flat %v vs cow %v", v, a, b)
		}
		if flat.Degree(v) != cow.Degree(v) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
	}
}

func TestCoWSnapshotIsolation(t *testing.T) {
	g := newTestGraph(t, cowConfig(16, 512))
	mustInsert(t, g, 1, 2)
	mustInsert(t, g, 1, 3)
	snap := g.ConsistentViewCoW()
	for i := 0; i < 400; i++ { // forces merges, rebalances, page clones
		mustInsert(t, g, graph.V(i%16), graph.V((i+1)%16))
	}
	var got []graph.V
	snap.Neighbors(1, func(d graph.V) bool { got = append(got, d); return true })
	if !reflect.DeepEqual(got, []graph.V{2, 3}) {
		t.Fatalf("CoW snapshot leaked later inserts: %v", got)
	}
	if snap.NumEdges() != 2 {
		t.Errorf("CoW snapshot NumEdges = %d", snap.NumEdges())
	}
}

func TestCoWPagesSharedWhenUntouched(t *testing.T) {
	// Two snapshots with no writes in between must share every page;
	// after touching one vertex, exactly one page diverges.
	g := newTestGraph(t, cowConfig(4*cowPageSize, 1024))
	mustInsert(t, g, 1, 2)
	s1 := g.ConsistentViewCoW()
	s2 := g.ConsistentViewCoW()
	shared := 0
	for i := range s1.pages {
		if s1.pages[i] == s2.pages[i] {
			shared++
		}
	}
	if shared != len(s1.pages) {
		t.Fatalf("idle snapshots share %d/%d pages", shared, len(s1.pages))
	}
	mustInsert(t, g, graph.V(3*cowPageSize), 1) // touches page 3 only
	s3 := g.ConsistentViewCoW()
	diverged := 0
	for i := range s2.pages {
		if s2.pages[i] != s3.pages[i] {
			diverged++
		}
	}
	if diverged != 1 {
		t.Fatalf("one write diverged %d pages, want 1", diverged)
	}
}

func TestCoWManySnapshotsProgress(t *testing.T) {
	g := newTestGraph(t, cowConfig(32, 2048))
	edges := graphgen.Uniform(32, 16, 113)
	var snaps []*Snapshot
	var checkpoints []int64
	for i, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
		if i%50 == 0 {
			snaps = append(snaps, g.ConsistentViewCoW())
			checkpoints = append(checkpoints, int64(i+1))
		}
	}
	for i, s := range snaps {
		if s.NumEdges() != checkpoints[i] {
			t.Fatalf("snapshot %d: NumEdges = %d, want %d", i, s.NumEdges(), checkpoints[i])
		}
		var n int64
		for v := 0; v < s.NumVertices(); v++ {
			s.Neighbors(graph.V(v), func(graph.V) bool { n++; return true })
		}
		if n != checkpoints[i] {
			t.Fatalf("snapshot %d iterated %d, want %d", i, n, checkpoints[i])
		}
	}
}

func TestCoWSurvivesVertexGrowthAndDeletes(t *testing.T) {
	g := newTestGraph(t, cowConfig(8, 256))
	mustInsert(t, g, 1, 2)
	mustInsert(t, g, 1, 2)
	if err := g.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, g, graph.V(5000), 1) // growth
	s := g.ConsistentViewCoW()
	if s.Degree(1) != 1 {
		t.Errorf("Degree(1) = %d after delete", s.Degree(1))
	}
	if s.Degree(5000) != 1 {
		t.Errorf("Degree(5000) = %d after growth", s.Degree(5000))
	}
	if s.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", s.NumEdges())
	}
}

func TestCoWAfterReopen(t *testing.T) {
	cfg := cowConfig(32, 512)
	g := newTestGraph(t, cfg)
	edges := graphgen.Uniform(32, 8, 117)
	for _, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
	}
	g2, err := Open(g.Arena().Crash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := g2.ConsistentViewCoW()
	if s.NumEdges() != int64(len(edges)) {
		t.Fatalf("CoW after crash: NumEdges = %d, want %d", s.NumEdges(), len(edges))
	}
	checkEqualAdj(t, refAdjacency(32, edges), s)
}

func TestCoWDisabledFallsBack(t *testing.T) {
	g := newTestGraph(t, smallConfig(8, 64)) // CoW off
	mustInsert(t, g, 1, 2)
	s := g.ConsistentViewCoW() // must fall back to the flat copy
	if s.pages != nil {
		t.Error("fallback snapshot should be flat")
	}
	if s.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", s.NumEdges())
	}
}

func TestCoWSnapshotCreationCheaper(t *testing.T) {
	// The design goal: snapshot creation copies page pointers, not one
	// entry per vertex. Compare allocation volume indirectly via
	// testing.AllocsPerRun-style measurement.
	const V = 64 * cowPageSize
	g := newTestGraph(t, func() Config {
		c := DefaultConfig(V, V)
		c.CoWDegreeCache = true
		return c
	}())
	mustInsert(t, g, 1, 2)
	flatBytes := testingAllocBytes(func() { g.ConsistentView() })
	cowBytes := testingAllocBytes(func() { g.ConsistentViewCoW() })
	if cowBytes*8 > flatBytes {
		t.Errorf("CoW snapshot not substantially cheaper: cow=%d flat=%d bytes", cowBytes, flatBytes)
	}
}

func testingAllocBytes(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}
