// Crash sweep over every injected crash point, driven by a mixed
// insert/delete churn stream and verified against graph.Oracle. This file
// lives in package dgap_test so it can use internal/workload (which itself
// imports dgap for its sinks).
package dgap_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dgap/internal/dgap"
	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
	"dgap/internal/workload"
)

// sweepCrash is the panic payload of an armed crash hook; distinct from
// the internal tests' crashPanic so a stray hook panic is never swallowed
// by the wrong recover.
type sweepCrash struct{ point string }

var errCrashed = errors.New("injected crash fired")

// sweepConfig deliberately undersizes the array so a modest churn stream
// exercises merges, window rebalances with tombstone compaction, and full
// restructures — every structural path a crash point guards.
func sweepConfig(v int) dgap.Config {
	cfg := dgap.DefaultConfig(v, 64)
	cfg.SectionSlots = 32
	cfg.ELogSize = 256 // 16 entries per section
	cfg.ULogSize = 256
	return cfg
}

// armAt returns how many firings of a point to let pass before crashing.
// Hot points (every apply group, every merge) crash on a later firing so
// the image holds real history; rarer structural points crash on the
// first.
func armAt(point string) int {
	switch point {
	case "compact:rewrite", "restructure:before-publish", "restructure:after-publish":
		return 1
	default:
		return 3
	}
}

// driveUntilCrash feeds ops through w in batches, mirroring acknowledged
// batches into the oracle, until the armed hook panics. It returns the
// batch in flight at the crash, or nil if the stream ran dry first.
func driveUntilCrash(t *testing.T, w *dgap.Writer, oracle *graph.Oracle, ops []graph.Op, batch int) []graph.Op {
	t.Helper()
	for i := 0; i < len(ops); i += batch {
		end := i + batch
		if end > len(ops) {
			end = len(ops)
		}
		chunk := ops[i:end]
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(sweepCrash); ok {
						err = errCrashed
						return
					}
					panic(r)
				}
			}()
			return w.ApplyOps(chunk)
		}()
		switch {
		case err == errCrashed:
			return chunk
		case err != nil:
			t.Fatalf("ApplyOps: %v", err)
		default:
			if err := oracle.Apply(chunk); err != nil {
				t.Fatalf("oracle rejected an acknowledged batch: %v", err)
			}
		}
	}
	return nil
}

// TestCrashSweepAtEveryHook kills the graph at each crash point in turn
// with a deterministic power cut and verifies the reopened image: every
// acknowledged op visible, at most a per-source prefix of the in-flight
// batch, nothing else — no torn Apply group is ever user-visible.
func TestCrashSweepAtEveryHook(t *testing.T) {
	const nVert = 96
	edges := graphgen.Uniform(nVert, 20, 41)
	ops := workload.ChurnOps(edges, 256)
	for _, point := range dgap.CrashPoints {
		t.Run(point, func(t *testing.T) {
			cfg := sweepConfig(nVert)
			a := pmem.New(256 << 20)
			g, err := dgap.New(a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			w, err := g.NewWriter()
			if err != nil {
				t.Fatal(err)
			}
			arm, fired := armAt(point), 0
			g.SetCrashHook(func(p string) {
				if p == point {
					fired++
					if fired == arm {
						panic(sweepCrash{p})
					}
				}
			})
			oracle := graph.NewOracle()
			inflight := driveUntilCrash(t, w, oracle, ops, 48)
			if inflight == nil {
				t.Fatalf("point %s never fired %d times over %d ops; retune the sweep workload", point, arm, len(ops))
			}
			g2, err := dgap.Open(g.Arena().Crash(), cfg)
			if err != nil {
				t.Fatalf("Open after crash at %s: %v", point, err)
			}
			rs, ok := g2.Recovery()
			if !ok || rs.Graceful {
				t.Fatalf("Recovery() = %+v, %v; want crash-path attach", rs, ok)
			}
			s := g2.ConsistentView()
			if err := oracle.CheckPrefix(s, inflight); err != nil {
				t.Fatalf("crash at %s (acked %d ops): %v", point, oracle.Ops(), err)
			}
			s.ReleaseSnapshot()
			// The reopened graph must accept new work.
			w2, err := g2.NewWriter()
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.ApplyOps([]graph.Op{graph.OpInsert(1, 2)}); err != nil {
				t.Fatalf("ApplyOps after recovery: %v", err)
			}
		})
	}
}

// TestChaosCrashRandomHookProperty is the randomized end of the sweep:
// random churn, a crash at a randomly chosen hook, then a chaotic power
// cut where each dirty line persists per-word with p=1/2. The reopened
// image must satisfy the multiset envelope: every acknowledged edge that
// the in-flight batch does not delete, no edge never acknowledged or
// in flight, and per-destination counts within the in-flight slack.
func TestChaosCrashRandomHookProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			point := dgap.CrashPoints[rng.Intn(len(dgap.CrashPoints))]
			chaosSeed := seed*977 + 13
			nVert := 64 + rng.Intn(64)
			edges := graphgen.Uniform(nVert, 12+rng.Intn(12), seed)
			ops := workload.ChurnOps(edges, 128+rng.Intn(256))

			cfg := sweepConfig(nVert)
			a := pmem.New(256 << 20)
			g, err := dgap.New(a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			w, err := g.NewWriter()
			if err != nil {
				t.Fatal(err)
			}
			arm, fired := 1+rng.Intn(3), 0
			g.SetCrashHook(func(p string) {
				if p == point {
					fired++
					if fired == arm {
						panic(sweepCrash{p})
					}
				}
			})
			oracle := graph.NewOracle()
			inflight := driveUntilCrash(t, w, oracle, ops, 32+rng.Intn(64))
			// If the randomly chosen point never fired the stream completed;
			// a chaos cut at quiescence is still a valid (fully-acked) case.
			g2, err := dgap.Open(g.Arena().ChaosCrash(chaosSeed), cfg)
			if err != nil {
				t.Fatalf("seed=%d crashseed=%d point=%s: Open: %v", seed, chaosSeed, point, err)
			}
			if _, ok := g2.Recovery(); !ok {
				t.Fatalf("seed=%d crashseed=%d: no recovery stats after chaos reopen", seed, chaosSeed)
			}
			s := g2.ConsistentView()
			if err := oracle.CheckMultiset(s, inflight); err != nil {
				t.Fatalf("seed=%d crashseed=%d point=%s arm=%d acked=%d: %v",
					seed, chaosSeed, point, arm, oracle.Ops(), err)
			}
			s.ReleaseSnapshot()
		})
	}
}
