package dgap

import (
	"sync"
	"sync/atomic"

	"dgap/internal/pmem"
)

// Slot encoding of the PM edge array (4 bytes per slot). Vertex ids are
// below 1<<30, leaving the top two bits for flags.
const (
	slotEmpty   = uint32(0xFFFFFFFF)
	pivotBit    = uint32(0x80000000) // the paper's "-vertex-id" pivot
	tombBit     = uint32(0x40000000) // deleted-edge marker
	idMask      = uint32(0x3FFFFFFF)
	slotBytes   = 4
	noEntry     = uint32(0xFFFFFFFF) // edge-log chain terminator
	logEntryMag = uint32(0x9E3779B9)
)

// Edge-log entry layout: 16 bytes {srcTag u32, dst u32, back u32, chk u32}.
// srcTag is src|pivotBit so a valid entry is never all-zero; chk detects
// torn (partially persisted) entries during recovery, since 16 bytes
// exceed the 8-byte atomic persist unit.
const (
	logEntrySize        = 16
	maxLogEntriesPerSec = 1 << 16
)

func logChecksum(srcTag, dst, back uint32) uint32 {
	return srcTag ^ dst ^ back ^ logEntryMag
}

func isPivot(s uint32) bool { return s != slotEmpty && s&pivotBit != 0 }
func isTomb(s uint32) bool  { return s != slotEmpty && s&pivotBit == 0 && s&tombBit != 0 }
func isEdge(s uint32) bool  { return s != slotEmpty && s&(pivotBit|tombBit) == 0 }

// Superblock slots (absolute arena offsets inside the pmem superblock;
// offsets 0-15 are reserved for pmem's own transaction registry).
const (
	sbMagic     = pmem.Off(16)
	sbShutdown  = pmem.Off(24) // NORMAL_SHUTDOWN flag
	sbRoot      = pmem.Off(32) // offset of the active root record
	sbUlogTable = pmem.Off(40) // offset of the undo-log table
	sbNVert     = pmem.Off(48) // persisted vertex count
	sbMetaDump  = pmem.Off(56) // offset of the graceful-shutdown dump (0 = none)

	dgapMagic = 0xD6A9_2023
)

// Root record: the atomically switchable description of the current edge
// array and edge-log regions. Resize writes a fresh record and flips the
// sbRoot pointer with one 8-byte persist.
const (
	rootArrayOff    = 0
	rootSlots       = 8
	rootSectionSl   = 16
	rootELogOff     = 24
	rootELogSecSize = 32
	rootRecSize     = 64
)

// epoch is the immutable-after-publish DRAM view of the current layout:
// the PM regions, the lock table, the PMA density counters, the edge-log
// high-water marks and the vertex metadata slice. Structural changes
// (edge-array resize, vertex growth) build a new epoch under a full lock
// sweep and publish it atomically; every reader and writer re-validates
// the epoch pointer after taking its section lock.
type epoch struct {
	arrayOff     pmem.Off
	slots        uint64
	sectionSlots uint64
	secShift     uint
	nSec         int
	elogOff      pmem.Off
	elogSecBytes uint64
	entriesPer   uint32

	locks    []sync.RWMutex
	secCount []atomic.Int64  // occupied array slots per section (PMA tree leaves)
	elogUsed []atomic.Uint32 // append high-water mark per section log
	elogLive []atomic.Uint32 // live (unmerged) entries per section log
	// lastTrig records each section's occupancy when it last took part
	// in a rebalance; the density trigger is suppressed until occupancy
	// grows meaningfully past it. Without this, a section that is
	// unavoidably dense (one giant run covering it) would re-trigger a
	// window rewrite on every insert.
	lastTrig []atomic.Int64

	meta []vertexMeta

	// mirror regions for the MetadataInDRAM=false ablation (0 when
	// the ablation is off).
	vertMirror pmem.Off
	treeMirror pmem.Off

	// rootRec is the PM offset of this epoch's root record; the
	// superblock points at it once the epoch's content is durable.
	rootRec pmem.Off
}

func (ep *epoch) secOf(slot uint64) int { return int(slot >> ep.secShift) }

func (ep *epoch) slotOff(slot uint64) pmem.Off {
	return ep.arrayOff + slot*slotBytes
}

// entryOff maps a global edge-log entry index to its arena offset.
func (ep *epoch) entryOff(idx uint32) pmem.Off {
	sec := idx / ep.entriesPer
	i := idx % ep.entriesPer
	return ep.elogOff + pmem.Off(sec)*ep.elogSecBytes + pmem.Off(i)*logEntrySize
}

// vertexMeta is the DRAM vertex array entry. All fields are atomics so
// analytics readers, writers and rebalancers can access them without a
// shared lock; semantic consistency comes from the section locks. counts
// packs the array-resident entry count (high 48 bits) with the edge-log
// entry count (low 16 bits) so a single load yields a coherent pair.
type vertexMeta struct {
	start  atomic.Uint64 // slot index of the pivot
	counts atomic.Uint64 // physArray<<16 | physLog
	live   atomic.Int64  // live out-degree (edges minus deletions)
	elHead atomic.Uint32 // newest edge-log entry (global index) or noEntry
	flags  atomic.Uint32 // bit 0: vertex has tombstones
}

const flagHasTomb = 1

func packCounts(arr uint64, lg uint32) uint64 { return arr<<16 | uint64(lg) }
func unpackCounts(c uint64) (arr uint64, lg uint32) {
	return c >> 16, uint32(c & 0xFFFF)
}

// copyMeta builds a fresh metadata slice of size n, transferring the
// first len(src) entries. Called only with all section locks held.
func copyMeta(src []vertexMeta, n int) []vertexMeta {
	dst := make([]vertexMeta, n)
	for i := range src {
		dst[i].start.Store(src[i].start.Load())
		dst[i].counts.Store(src[i].counts.Load())
		dst[i].live.Store(src[i].live.Load())
		dst[i].elHead.Store(src[i].elHead.Load())
		dst[i].flags.Store(src[i].flags.Load())
	}
	for i := len(src); i < n; i++ {
		dst[i].elHead.Store(noEntry)
	}
	return dst
}
