package dgap

import (
	"encoding/binary"

	"dgap/internal/graph"
)

// Snapshot is a consistent view of the graph at the time ConsistentView
// was called: the paper's per-task Degree Cache. It stores one number per
// vertex — the count of physical entries visible to this task. Because
// every vertex's physical entries form an append-only logical sequence
// (array run first, then edge-log chain, an order merges preserve), the
// first n entries are immutable history, so reads need no further
// coordination with writers beyond per-section read locks.
type Snapshot struct {
	g     *Graph
	nVert int
	edges int64

	// Flat degree cache (default): one entry per vertex.
	n    []uint64 // visible physical entries per vertex
	live []uint32 // live out-degree per vertex at snapshot time

	// Copy-on-Write degree cache (Config.CoWDegreeCache): shared pages.
	pages []*degPage
}

func (s *Snapshot) nOf(v graph.V) uint64 {
	if s.pages != nil {
		return s.pages[int(v)/cowPageSize].n[int(v)%cowPageSize]
	}
	return s.n[v]
}

func (s *Snapshot) liveOf(v graph.V) uint32 {
	if s.pages != nil {
		return s.pages[int(v)/cowPageSize].live[int(v)%cowPageSize]
	}
	return s.live[v]
}

// ConsistentView briefly quiesces writers and copies the degree cache.
// This is the paper's g.consistent_view().
func (g *Graph) ConsistentView() *Snapshot {
	g.snapMu.Lock()
	ep := g.ep.Load()
	nv := int(g.nVert.Load())
	s := &Snapshot{g: g, nVert: nv, n: make([]uint64, nv), live: make([]uint32, nv)}
	for v := 0; v < nv; v++ {
		arr, lg := unpackCounts(ep.meta[v].counts.Load())
		s.n[v] = arr + uint64(lg)
		lv := ep.meta[v].live.Load()
		if lv < 0 {
			lv = 0
		}
		s.live[v] = uint32(lv)
		s.edges += lv
	}
	g.snapMu.Unlock()
	return s
}

// Snapshot implements graph.System. It uses the CoW degree cache when
// enabled, the flat copy otherwise.
func (g *Graph) Snapshot() graph.Snapshot {
	if g.cow != nil {
		return g.ConsistentViewCoW()
	}
	return g.ConsistentView()
}

// NumVertices implements graph.Snapshot.
func (s *Snapshot) NumVertices() int { return s.nVert }

// NumEdges implements graph.Snapshot.
func (s *Snapshot) NumEdges() int64 { return s.edges }

// Degree implements graph.Snapshot.
func (s *Snapshot) Degree(v graph.V) int { return int(s.liveOf(v)) }

// Neighbors iterates v's live out-edges as of snapshot time. The paper's
// v.e(): read up to n entries from the edge array; if the array holds
// fewer than n (a chain has not been merged yet), continue through the
// edge-log chain via back-pointers.
func (s *Snapshot) Neighbors(v graph.V, fn func(dst graph.V) bool) {
	if int(v) >= s.nVert {
		return
	}
	n := s.nOf(v)
	if n == 0 {
		return
	}
	g := s.g
	for {
		ep := g.ep.Load()
		if int(v) >= len(ep.meta) {
			return
		}
		m := &ep.meta[v]
		start := m.start.Load()
		sec := ep.secOf(start)
		if sec >= len(ep.locks) {
			continue
		}
		l := &ep.locks[sec]
		l.RLock()
		if g.ep.Load() != ep || m.start.Load() != start {
			l.RUnlock()
			continue
		}
		s.iterate(ep, m, start, n, fn)
		l.RUnlock()
		return
	}
}

func (s *Snapshot) iterate(ep *epoch, m *vertexMeta, start, n uint64, fn func(graph.V) bool) {
	arr, lg := unpackCounts(m.counts.Load())
	k := min64(n, arr)
	if m.flags.Load()&flagHasTomb != 0 {
		s.iterateWithTombs(ep, m, start, n, k, lg, fn)
		return
	}
	g := s.g
	raw := g.a.Slice(ep.slotOff(start+1), k*slotBytes)
	for i := uint64(0); i < k; i++ {
		if !fn(graph.V(binary.LittleEndian.Uint32(raw[i*slotBytes:]))) {
			return
		}
	}
	rem := n - k
	if rem == 0 {
		return
	}
	// The rest live in the edge-log chain. The chain is newest-first; we
	// need the oldest rem entries in chronological order.
	chain := make([]uint32, lg)
	cur := m.elHead.Load()
	for i := int(lg) - 1; i >= 0; i-- {
		chain[i] = g.a.ReadU32(ep.entryOff(cur) + 4)
		cur = g.a.ReadU32(ep.entryOff(cur) + 8)
	}
	for i := uint64(0); i < rem && i < uint64(lg); i++ {
		if !fn(graph.V(chain[i])) {
			return
		}
	}
}

// iterateWithTombs handles vertices that have tombstones among their
// visible entries: a pre-pass collects the deletions, then live edges are
// emitted with each tombstone cancelling one earlier occurrence of its
// destination.
func (s *Snapshot) iterateWithTombs(ep *epoch, m *vertexMeta, start, n, k uint64, lg uint32, fn func(graph.V) bool) {
	g := s.g
	vals := make([]uint32, 0, n)
	raw := g.a.Slice(ep.slotOff(start+1), k*slotBytes)
	for i := uint64(0); i < k; i++ {
		vals = append(vals, binary.LittleEndian.Uint32(raw[i*slotBytes:]))
	}
	if rem := n - k; rem > 0 {
		chain := make([]uint32, lg)
		cur := m.elHead.Load()
		for i := int(lg) - 1; i >= 0; i-- {
			chain[i] = g.a.ReadU32(ep.entryOff(cur) + 4)
			cur = g.a.ReadU32(ep.entryOff(cur) + 8)
		}
		for i := uint64(0); i < rem && i < uint64(lg); i++ {
			vals = append(vals, chain[i])
		}
	}
	kills := make(map[uint32]int)
	for _, v := range vals {
		if isTomb(v) {
			kills[v&idMask]++
		}
	}
	for _, v := range vals {
		if isTomb(v) {
			continue
		}
		d := v & idMask
		if kills[d] > 0 {
			kills[d]--
			continue
		}
		if !fn(graph.V(d)) {
			return
		}
	}
}
