package dgap

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"dgap/internal/graph"
)

// Snapshot is a consistent view of the graph at the time ConsistentView
// was called: the paper's per-task Degree Cache. It stores one number per
// vertex — the count of physical entries visible to this task. Because
// every vertex's physical entries form an append-only logical sequence
// (array run first, then edge-log chain, an order merges preserve), the
// first n entries are immutable history, so reads need no further
// coordination with writers beyond per-section read locks.
//
// Two read paths are exposed. Neighbors is the per-edge callback of
// graph.Snapshot. CopyNeighbors / SweepNeighbors implement the bulk path
// (graph.BulkSnapshot, graph.Sweeper): the contiguous array run is
// decoded from one Arena.Slice into caller-provided scratch, edge-log
// chains and tombstone filtering reuse the same scratch, and a sweep over
// ascending vertices pins the epoch once and takes each section lock once
// per run of consecutive vertices instead of once per vertex.
type Snapshot struct {
	g     *Graph
	nVert int
	edges int64

	// Flat degree cache (default): one entry per vertex.
	n    []uint64 // visible physical entries per vertex
	live []uint32 // live out-degree per vertex at snapshot time

	// Copy-on-Write degree cache (Config.CoWDegreeCache): shared pages.
	pages []*degPage

	// released flips when the snapshot's outstanding-snapshot reference
	// is returned (explicitly via ReleaseSnapshot, or by the GC
	// finalizer installed at creation).
	released atomic.Bool
}

var (
	_ graph.BulkSnapshot = (*Snapshot)(nil)
	_ graph.Sweeper      = (*Snapshot)(nil)
)

func (s *Snapshot) nOf(v graph.V) uint64 {
	if s.pages != nil {
		return s.pages[int(v)/cowPageSize].n[int(v)%cowPageSize]
	}
	return s.n[v]
}

func (s *Snapshot) liveOf(v graph.V) uint32 {
	if s.pages != nil {
		return s.pages[int(v)/cowPageSize].live[int(v)%cowPageSize]
	}
	return s.live[v]
}

// ConsistentView briefly quiesces writers and copies the degree cache.
// This is the paper's g.consistent_view().
func (g *Graph) ConsistentView() *Snapshot {
	g.snapMu.Lock()
	ep := g.ep.Load()
	nv := int(g.nVert.Load())
	s := &Snapshot{g: g, nVert: nv, n: make([]uint64, nv), live: make([]uint32, nv)}
	for v := 0; v < nv; v++ {
		arr, lg := unpackCounts(ep.meta[v].counts.Load())
		s.n[v] = arr + uint64(lg)
		lv := ep.meta[v].live.Load()
		if lv < 0 {
			lv = 0
		}
		s.live[v] = uint32(lv)
		s.edges += lv
	}
	g.track(s)
	g.snapMu.Unlock()
	return s
}

// track registers a new snapshot with the outstanding-snapshot counter
// that gates tombstone compaction. Called with snapMu held (exclusive),
// so the count a compacting rebalance reads under snapMu.RLock can
// never miss a snapshot mid-creation. The finalizer backstops callers
// that never release explicitly (analytics kernels, tests): the
// snapshot merely delays compaction until collected, it never blocks
// correctness.
func (g *Graph) track(s *Snapshot) {
	g.snaps.Add(1)
	runtime.SetFinalizer(s, (*Snapshot).ReleaseSnapshot)
}

// ReleaseSnapshot returns the snapshot's reference in the
// outstanding-snapshot count, letting tombstone compaction proceed once
// no snapshot is alive. Idempotent; the snapshot must not be read
// afterwards (its immutable-prefix contract ends here — a later
// compaction may shorten the physical sequences it indexes). The serve
// tier's lease drop calls this through its SnapshotReleaser interface;
// other callers may ignore it and let the GC finalizer do the same.
func (s *Snapshot) ReleaseSnapshot() {
	if s.released.CompareAndSwap(false, true) {
		s.g.snaps.Add(-1)
	}
}

// Snapshot implements graph.System. It uses the CoW degree cache when
// enabled, the flat copy otherwise.
func (g *Graph) Snapshot() graph.Snapshot {
	if g.cow != nil {
		return g.ConsistentViewCoW()
	}
	return g.ConsistentView()
}

// NumVertices implements graph.Snapshot.
func (s *Snapshot) NumVertices() int { return s.nVert }

// NumEdges implements graph.Snapshot.
func (s *Snapshot) NumEdges() int64 { return s.edges }

// Degree implements graph.Snapshot.
func (s *Snapshot) Degree(v graph.V) int { return int(s.liveOf(v)) }

// maxSnapRetries bounds the optimistic read loops: a validation failure
// (epoch republished or vertex start moved between the unlocked read and
// the lock acquisition) is transient, so a retry with a freshly loaded
// epoch succeeds almost immediately. A bound this large only trips on a
// real invariant violation, which is better surfaced than spun on.
const maxSnapRetries = 1 << 16

// snapRetry yields periodically so a blocked writer can publish the state
// the reader is waiting for, and converts an exhausted retry budget into
// a diagnosable panic instead of an unbounded busy-spin.
func snapRetry(attempt int) {
	if attempt >= maxSnapRetries {
		panic("dgap: snapshot read could not reach a consistent view (stale epoch)")
	}
	if attempt%64 == 63 {
		runtime.Gosched()
	}
}

// Neighbors iterates v's live out-edges as of snapshot time. The paper's
// v.e(): read up to n entries from the edge array; if the array holds
// fewer than n (a chain has not been merged yet), continue through the
// edge-log chain via back-pointers.
func (s *Snapshot) Neighbors(v graph.V, fn func(dst graph.V) bool) {
	if int(v) >= s.nVert {
		return
	}
	n := s.nOf(v)
	if n == 0 {
		return
	}
	g := s.g
	for attempt := 0; ; attempt++ {
		snapRetry(attempt)
		ep := g.ep.Load()
		if int(v) >= len(ep.meta) {
			return
		}
		m := &ep.meta[v]
		start := m.start.Load()
		sec := ep.secOf(start)
		if sec >= len(ep.locks) {
			continue
		}
		l := &ep.locks[sec]
		l.RLock()
		if g.ep.Load() != ep || m.start.Load() != start {
			l.RUnlock()
			continue
		}
		s.iterate(ep, m, start, n, fn)
		l.RUnlock()
		return
	}
}

func (s *Snapshot) iterate(ep *epoch, m *vertexMeta, start, n uint64, fn func(graph.V) bool) {
	arr, lg := unpackCounts(m.counts.Load())
	k := min(n, arr)
	if m.flags.Load()&flagHasTomb != 0 {
		s.iterateWithTombs(ep, m, start, n, k, lg, fn)
		return
	}
	g := s.g
	raw := g.a.Slice(ep.slotOff(start+1), k*slotBytes)
	for i := uint64(0); i < k; i++ {
		if !fn(graph.V(binary.LittleEndian.Uint32(raw[i*slotBytes:]))) {
			return
		}
	}
	rem := n - k
	if rem == 0 {
		return
	}
	// The rest live in the edge-log chain. The chain is newest-first; we
	// need the oldest rem entries in chronological order.
	chain := make([]uint32, lg)
	cur := m.elHead.Load()
	for i := int(lg) - 1; i >= 0; i-- {
		if cur == noEntry {
			panic("dgap: edge-log chain shorter than count")
		}
		chain[i] = g.a.ReadU32(ep.entryOff(cur) + 4)
		cur = g.a.ReadU32(ep.entryOff(cur) + 8)
	}
	for i := uint64(0); i < rem && i < uint64(lg); i++ {
		if !fn(graph.V(chain[i])) {
			return
		}
	}
}

// iterateWithTombs handles vertices that have tombstones among their
// visible entries: a pre-pass collects the deletions, then live edges are
// emitted with each tombstone cancelling one earlier occurrence of its
// destination.
func (s *Snapshot) iterateWithTombs(ep *epoch, m *vertexMeta, start, n, k uint64, lg uint32, fn func(graph.V) bool) {
	g := s.g
	vals := make([]uint32, 0, n)
	raw := g.a.Slice(ep.slotOff(start+1), k*slotBytes)
	for i := uint64(0); i < k; i++ {
		vals = append(vals, binary.LittleEndian.Uint32(raw[i*slotBytes:]))
	}
	if rem := n - k; rem > 0 {
		chain := make([]uint32, lg)
		cur := m.elHead.Load()
		for i := int(lg) - 1; i >= 0; i-- {
			if cur == noEntry {
				panic("dgap: edge-log chain shorter than count")
			}
			chain[i] = g.a.ReadU32(ep.entryOff(cur) + 4)
			cur = g.a.ReadU32(ep.entryOff(cur) + 8)
		}
		for i := uint64(0); i < rem && i < uint64(lg); i++ {
			vals = append(vals, chain[i])
		}
	}
	// Entries in a run are edges or tombstones only (never pivots or
	// empty slots), so the shared kill-table pass applies directly —
	// graph.V aliases uint32 and tombBit is graph.TombBit.
	for _, d := range graph.FilterTombs(vals, 0) {
		if !fn(d) {
			return
		}
	}
}

// CopyNeighbors implements graph.BulkSnapshot: the same visibility and
// ordering as Neighbors, decoded in one pass into the caller's scratch.
// Vertices without tombstones allocate nothing once buf has capacity.
func (s *Snapshot) CopyNeighbors(v graph.V, buf []graph.V) []graph.V {
	if int(v) >= s.nVert {
		return buf
	}
	n := s.nOf(v)
	if n == 0 {
		return buf
	}
	g := s.g
	for attempt := 0; ; attempt++ {
		snapRetry(attempt)
		ep := g.ep.Load()
		if int(v) >= len(ep.meta) {
			return buf
		}
		m := &ep.meta[v]
		start := m.start.Load()
		sec := ep.secOf(start)
		if sec >= len(ep.locks) {
			continue
		}
		l := &ep.locks[sec]
		l.RLock()
		if g.ep.Load() != ep || m.start.Load() != start {
			l.RUnlock()
			continue
		}
		buf = s.appendNeighbors(ep, m, start, n, buf)
		l.RUnlock()
		return buf
	}
}

// SweepNeighbors implements graph.Sweeper: one epoch pin per sweep and
// one section read-lock per run of consecutive vertices whose array runs
// share a section, instead of one epoch load and one lock round-trip per
// vertex. The epoch is re-validated under every freshly taken lock (an
// epoch republish requires all section locks, so a held read lock keeps
// it stable across the batch).
func (s *Snapshot) SweepNeighbors(lo, hi graph.V, buf []graph.V, fn func(v graph.V, dsts []graph.V)) []graph.V {
	if int(hi) > s.nVert {
		hi = graph.V(s.nVert)
	}
	g := s.g
	ep := g.ep.Load()
	curSec := -1
	var locked *sync.RWMutex
	unlock := func() {
		if locked != nil {
			locked.RUnlock()
			locked = nil
			curSec = -1
		}
	}
	for v := lo; v < hi; v++ {
		n := s.nOf(v)
		if n == 0 {
			fn(v, buf[:0])
			continue
		}
		for attempt := 0; ; attempt++ {
			snapRetry(attempt)
			if int(v) >= len(ep.meta) {
				unlock()
				ep = g.ep.Load()
				if int(v) >= len(ep.meta) {
					// The vertex genuinely has no storage in the current
					// layout (cannot happen for v < nVert, but degrade to
					// the empty answer rather than spin). fn still runs:
					// the Sweeper contract promises one call per vertex.
					fn(v, buf[:0])
					break
				}
				continue
			}
			m := &ep.meta[v]
			start := m.start.Load()
			sec := ep.secOf(start)
			if sec >= len(ep.locks) {
				unlock()
				ep = g.ep.Load()
				continue
			}
			if sec != curSec {
				unlock()
				ep.locks[sec].RLock()
				locked, curSec = &ep.locks[sec], sec
				if g.ep.Load() != ep {
					unlock()
					ep = g.ep.Load()
					continue
				}
			}
			if m.start.Load() != start {
				// Moved (possibly into another section) between the read
				// and the lock; re-resolve under the fresh value.
				continue
			}
			// Zero-copy fast path: a tombstone-free vertex whose visible
			// entries all sit in the contiguous array run can hand the
			// kernel a direct view of the PM edge array — no decode, no
			// copy. The section read lock held across fn keeps the run
			// stable for the duration of the call.
			arr, _ := unpackCounts(m.counts.Load())
			if n <= arr && m.flags.Load()&flagHasTomb == 0 {
				if view, ok := g.a.ViewU32(ep.slotOff(start+1), n); ok {
					fn(v, view)
					break
				}
			}
			buf = s.appendNeighbors(ep, m, start, n, buf[:0])
			fn(v, buf)
			break
		}
	}
	unlock()
	return buf
}

// appendNeighbors decodes the first n visible physical entries of the
// vertex at start into buf. Called with the vertex's section read-locked
// and the epoch validated.
func (s *Snapshot) appendNeighbors(ep *epoch, m *vertexMeta, start, n uint64, buf []graph.V) []graph.V {
	arr, lg := unpackCounts(m.counts.Load())
	k := min(n, arr)
	if m.flags.Load()&flagHasTomb != 0 {
		return s.appendWithTombs(ep, m, start, n, k, lg, buf)
	}
	g := s.g
	buf = appendRun(g, ep, start, k, buf)
	rem := n - k
	if rem == 0 {
		return buf
	}
	// Edge-log chain: walk newest-first into the buffer tail, reverse in
	// place to chronological order, keep the oldest rem entries.
	return s.appendChain(ep, m, rem, lg, buf)
}

// appendRun appends the k array-resident entries of the run at start to
// buf: one memmove through the arena's zero-copy u32 view where the host
// byte order allows, a per-slot decode otherwise.
func appendRun(g *Graph, ep *epoch, start, k uint64, buf []graph.V) []graph.V {
	if view, ok := g.a.ViewU32(ep.slotOff(start+1), k); ok {
		return append(buf, view...)
	}
	raw := g.a.Slice(ep.slotOff(start+1), k*slotBytes)
	for i := uint64(0); i < k; i++ {
		buf = append(buf, graph.V(binary.LittleEndian.Uint32(raw[i*slotBytes:])))
	}
	return buf
}

// appendChain appends the oldest rem edge-log chain values (chronological
// order) to buf without allocating: the newest-first back-pointer walk
// lands in the buffer tail and is reversed in place.
func (s *Snapshot) appendChain(ep *epoch, m *vertexMeta, rem uint64, lg uint32, buf []graph.V) []graph.V {
	g := s.g
	cbase := len(buf)
	cur := m.elHead.Load()
	for i := uint32(0); i < lg; i++ {
		if cur == noEntry {
			panic("dgap: edge-log chain shorter than count")
		}
		off := ep.entryOff(cur)
		buf = append(buf, graph.V(g.a.ReadU32(off+4)))
		cur = g.a.ReadU32(off + 8)
	}
	for i, j := cbase, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	if rem < uint64(lg) {
		buf = buf[:cbase+int(rem)]
	}
	return buf
}

// appendWithTombs is the bulk counterpart of iterateWithTombs: the raw
// entry values are staged in buf itself, then compacted by the shared
// kill-table pass (graph.FilterTombs). Only the kill table allocates,
// and only on vertices that actually have tombstones.
func (s *Snapshot) appendWithTombs(ep *epoch, m *vertexMeta, start, n, k uint64, lg uint32, buf []graph.V) []graph.V {
	g := s.g
	base := len(buf)
	buf = appendRun(g, ep, start, k, buf)
	if rem := n - k; rem > 0 {
		buf = s.appendChain(ep, m, rem, lg, buf)
	}
	return graph.FilterTombs(buf, base)
}
