package dgap

import (
	"errors"
	"sync"
	"testing"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
)

func TestCheckpointInvalidatedByMutation(t *testing.T) {
	cfg := smallConfig(64, 512)
	g := newTestGraph(t, cfg)
	edges := graphgen.Uniform(64, 10, 101)
	half := len(edges) / 2
	for _, e := range edges[:half] {
		mustInsert(t, g, e.Src, e.Dst)
	}
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Mutations after a checkpoint must clear the shutdown flag before
	// touching media; a crash then replays from the image instead of
	// trusting the stale dump (which knows nothing of these edges).
	for _, e := range edges[half:] {
		mustInsert(t, g, e.Src, e.Dst)
	}
	g2 := crashReopen(t, g, cfg)
	rs, ok := g2.Recovery()
	if !ok {
		t.Fatal("Recovery() reported no attach stats after Open")
	}
	if rs.Graceful {
		t.Fatal("reopen trusted a checkpoint that later mutations invalidated")
	}
	checkEqualAdj(t, refAdjacency(64, edges), g2.ConsistentView())
}

func TestCheckpointThenPowerCut(t *testing.T) {
	cfg := smallConfig(32, 256)
	g := newTestGraph(t, cfg)
	edges := graphgen.Uniform(32, 8, 103)
	for _, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
	}
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Second checkpoint on a clean graph is a no-op, not a second dump.
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	g2 := crashReopen(t, g, cfg)
	rs, ok := g2.Recovery()
	if !ok || !rs.Graceful {
		t.Fatalf("Recovery() = %+v, %v; want graceful attach", rs, ok)
	}
	checkEqualAdj(t, refAdjacency(32, edges), g2.ConsistentView())
	// Graceful reopen leaves the graph fully writable.
	mustInsert(t, g2, 1, 2)
}

func TestRecoveryStatsOnFreshGraph(t *testing.T) {
	g := newTestGraph(t, smallConfig(8, 32))
	if rs, ok := g.Recovery(); ok {
		t.Fatalf("fresh graph reports recovery stats %+v", rs)
	}
}

func TestCloseAfterInjectedCrashIsRejected(t *testing.T) {
	cfg := smallConfig(64, 256)
	g := newTestGraph(t, cfg)
	fired := 0
	g.SetCrashHook(func(p string) {
		if p == "rebalance:moved" {
			fired++
			if fired == 2 {
				panic(crashPanic{p})
			}
		}
	})
	edges := graphgen.Uniform(64, 10, 107)
	acked := insertUntilHook(t, g, edges)
	if acked == len(edges) {
		t.Fatal("hook never fired; test is vacuous")
	}
	// The instance is poisoned: Close/Checkpoint must refuse rather than
	// write a shutdown marker over a half-applied structural operation.
	if err := g.Close(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Close after injected crash = %v, want ErrPoisoned", err)
	}
	if err := g.Checkpoint(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Checkpoint after injected crash = %v, want ErrPoisoned", err)
	}
	// The failure is latched, not masked: a second Close must report it
	// again rather than pretend the retry shut down cleanly.
	if err := g.Close(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("second Close after failed first = %v, want ErrPoisoned", err)
	}
	// Because Close refused, reopening takes the crash path and every
	// acknowledged edge survives.
	g2 := crashReopen(t, g, cfg)
	rs, ok := g2.Recovery()
	if !ok || rs.Graceful {
		t.Fatalf("Recovery() = %+v, %v; want crash-path attach", rs, ok)
	}
	checkEqualAdjMaybeInflight(t, 64, edges, acked, g2.ConsistentView())
}

// Concurrent writers race to invalidate a fresh checkpoint: whichever
// writer durably clears NORMAL_SHUTDOWN, the losers must not reach
// their own stores (and acknowledge) before the clear is on media — a
// crash after any acknowledged insert must take the replay path, never
// trust the stale dump. Run under -race.
func TestConcurrentWritersInvalidateCheckpoint(t *testing.T) {
	const V = 64
	cfg := smallConfig(V, 2048)
	g := newTestGraph(t, cfg)
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const per = 40
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			w, err := g.NewWriter()
			if err != nil {
				t.Error(err)
				return
			}
			defer w.Close()
			for i := 0; i < per; i++ {
				if err := w.InsertEdge(graph.V(wkr), graph.V(workers+i)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	g2 := crashReopen(t, g, cfg)
	rs, ok := g2.Recovery()
	if !ok || rs.Graceful {
		t.Fatalf("Recovery() = %+v, %v; want crash-path attach (checkpoint was invalidated)", rs, ok)
	}
	s := g2.ConsistentView()
	for wkr := 0; wkr < workers; wkr++ {
		deg := 0
		s.Neighbors(graph.V(wkr), func(graph.V) bool { deg++; return true })
		if deg != per {
			t.Fatalf("writer %d: %d acknowledged edges survived, want %d", wkr, deg, per)
		}
	}
}

// Vertex id-space growth is a mutation like any other: it must
// serialize against Checkpoint so the dump can never carry a
// pre-growth count under a set shutdown flag. Hammer growth against
// checkpoints, crash, and assert no acknowledged growth is forgotten
// whichever attach path the reopen takes. Run under -race.
func TestEnsureVerticesOrdersAgainstCheckpoint(t *testing.T) {
	cfg := smallConfig(8, 256)
	g := newTestGraph(t, cfg)
	const target = 512
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 16; n <= target; n += 16 {
			if err := g.EnsureVertices(n); err != nil {
				t.Errorf("EnsureVertices(%d): %v", n, err)
				return
			}
		}
	}()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		if err := g.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	g2 := crashReopen(t, g, cfg)
	if got := g2.NumVertices(); got < target {
		t.Fatalf("NumVertices after crash = %d, want >= %d (acknowledged growth lost)", got, target)
	}
}

func TestRebuildScrubsOrphanSlot(t *testing.T) {
	cfg := smallConfig(32, 256)
	g := newTestGraph(t, cfg)
	edges := graphgen.Uniform(32, 6, 109)
	for _, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
	}
	// Forge the wreckage a chaos crash can leave: a value slot stranded
	// behind a gap, with no pivot run reaching it. Recovery must scrub it
	// back to a gap (and count it) so a later append can never adopt it.
	ep := g.ep.Load()
	orphan := ep.slots - 1
	if g.a.ReadU32(ep.slotOff(orphan)) != slotEmpty || g.a.ReadU32(ep.slotOff(orphan-1)) != slotEmpty {
		t.Fatal("tail slots unexpectedly occupied; enlarge the test config")
	}
	g.a.WriteU32(ep.slotOff(orphan), 7) // plain value, no pivot bit
	g.a.Flush(ep.slotOff(orphan), slotBytes)
	g.a.Fence()
	g2 := crashReopen(t, g, cfg)
	rs, ok := g2.Recovery()
	if !ok || rs.DroppedTorn == 0 {
		t.Fatalf("Recovery() = %+v, %v; want the forged orphan in DroppedTorn", rs, ok)
	}
	checkEqualAdj(t, refAdjacency(32, edges), g2.ConsistentView())
	if got := g2.a.ReadU32(g2.ep.Load().slotOff(orphan)); got != slotEmpty {
		t.Fatalf("orphan slot = %#x after recovery, want scrubbed to empty", got)
	}
}
