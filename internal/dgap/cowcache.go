package dgap

import (
	"sync/atomic"

	"dgap/internal/graph"
)

// Copy-on-Write Degree Cache — the extension the paper lists as future
// work ("we plan to implement a Copy-on-Write (CoW) Degree Cache so that
// all tasks and the main vertex array can share unchanged degrees
// without wasting memory"). The flat ConsistentView copies one uint64 +
// uint32 per vertex per task; with many concurrent analysis tasks on a
// billion-vertex graph that multiplies. The CoW cache instead keeps the
// degree data in fixed-size pages: a snapshot captures only the page
// pointer table, and a writer clones a page the first time it updates a
// vertex on it after a snapshot, so tasks share every untouched page.
//
// Consistency matches the flat path exactly: page cloning happens under
// the same snapMu the flat copy uses, so a snapshot's pages can never
// observe a later update.

// cowPageSize is the number of vertices per degree page.
const cowPageSize = 1024

type degPage struct {
	seq  uint64 // snapshot sequence this page was cloned in
	n    [cowPageSize]uint64
	live [cowPageSize]uint32
}

type cowCache struct {
	pages []atomic.Pointer[degPage]
	seq   atomic.Uint64 // incremented by each snapshot
}

func newCowCache(nVert int) *cowCache {
	c := &cowCache{pages: make([]atomic.Pointer[degPage], (nVert+cowPageSize-1)/cowPageSize)}
	for i := range c.pages {
		c.pages[i].Store(&degPage{})
	}
	return c
}

// update records vertex v's current totals. Called by the insert path
// while holding snapMu.RLock, which makes the clone-check + write atomic
// with respect to snapshot creation (which holds snapMu.Lock).
func (c *cowCache) update(v graph.V, n uint64, live int64) {
	pi := int(v) / cowPageSize
	pg := c.pages[pi].Load()
	if want := c.seq.Load(); pg.seq != want {
		clone := *pg
		clone.seq = want
		c.pages[pi].Store(&clone)
		pg = c.pages[pi].Load()
	}
	if live < 0 {
		live = 0
	}
	pg.n[int(v)%cowPageSize] = n
	pg.live[int(v)%cowPageSize] = uint32(live)
}

// capture returns the current page table (called under snapMu.Lock) and
// advances the sequence so subsequent writers clone.
func (c *cowCache) capture() []*degPage {
	out := make([]*degPage, len(c.pages))
	for i := range c.pages {
		out[i] = c.pages[i].Load()
	}
	c.seq.Add(1)
	return out
}

// grow extends the page table to cover nVert vertices, seeding new pages
// from the metadata slice. Called with all section locks held (vertex
// growth is stop-the-world).
func (c *cowCache) grow(meta []vertexMeta) {
	need := (len(meta) + cowPageSize - 1) / cowPageSize
	for len(c.pages) < need {
		c.pages = append(c.pages, atomic.Pointer[degPage]{})
		c.pages[len(c.pages)-1].Store(&degPage{})
	}
	_ = meta // new vertices start with zero counts; nothing to seed
}

// seed fills the cache from existing metadata (used by Open).
func (c *cowCache) seed(meta []vertexMeta) {
	for v := range meta {
		arr, lg := unpackCounts(meta[v].counts.Load())
		c.update(graph.V(v), arr+uint64(lg), meta[v].live.Load())
	}
}

// ConsistentViewCoW is ConsistentView backed by the Copy-on-Write degree
// cache: snapshot creation copies only len(meta)/1024 page pointers, and
// concurrent tasks share unmodified pages. Requires
// Config.CoWDegreeCache; falls back to the flat copy otherwise.
func (g *Graph) ConsistentViewCoW() *Snapshot {
	if g.cow == nil {
		return g.ConsistentView()
	}
	g.snapMu.Lock()
	nv := int(g.nVert.Load())
	s := &Snapshot{g: g, pages: g.cow.capture(), nVert: nv, edges: g.liveTotal.Load()}
	g.track(s)
	g.snapMu.Unlock()
	return s
}
