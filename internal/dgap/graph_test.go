package dgap

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

// smallConfig forces tiny sections and logs so rebalances and merges fire
// constantly, exercising the interesting paths on small inputs.
func smallConfig(v int, e int64) Config {
	cfg := DefaultConfig(v, e)
	cfg.SectionSlots = 32
	cfg.ELogSize = 256 // 16 entries per section
	cfg.ULogSize = 256
	return cfg
}

func newTestGraph(t *testing.T, cfg Config) *Graph {
	t.Helper()
	a := pmem.New(256 << 20)
	g, err := New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// refAdjacency builds the expected adjacency from an edge stream.
func refAdjacency(v int, edges []graph.Edge) [][]graph.V {
	adj := make([][]graph.V, v)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	return adj
}

func checkEqualAdj(t *testing.T, want [][]graph.V, s graph.Snapshot) {
	t.Helper()
	if s.NumVertices() < len(want) {
		t.Fatalf("NumVertices = %d, want >= %d", s.NumVertices(), len(want))
	}
	for v := range want {
		var got []graph.V
		s.Neighbors(graph.V(v), func(d graph.V) bool { got = append(got, d); return true })
		if len(got) != len(want[v]) {
			t.Fatalf("vertex %d: %d edges, want %d\n got:  %v\n want: %v", v, len(got), len(want[v]), got, want[v])
		}
		// DGAP preserves insertion order per vertex.
		if !reflect.DeepEqual(got, want[v]) {
			t.Fatalf("vertex %d: order mismatch\n got:  %v\n want: %v", v, got, want[v])
		}
		if s.Degree(graph.V(v)) != len(want[v]) {
			t.Fatalf("vertex %d: Degree = %d, want %d", v, s.Degree(graph.V(v)), len(want[v]))
		}
	}
}

func TestInsertSingleEdge(t *testing.T) {
	g := newTestGraph(t, smallConfig(8, 16))
	if err := g.InsertEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	s := g.ConsistentView()
	if s.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", s.NumEdges())
	}
	checkEqualAdj(t, [][]graph.V{nil, {2}, nil}, s)
}

func TestInsertPreservesInsertionOrder(t *testing.T) {
	g := newTestGraph(t, smallConfig(4, 16))
	// The paper's example: edge (1->2) may be stored after (1->6).
	for _, d := range []graph.V{6, 2, 5, 3} {
		if err := g.InsertEdge(1, d); err != nil {
			t.Fatal(err)
		}
	}
	checkEqualAdj(t, [][]graph.V{nil, {6, 2, 5, 3}}, g.ConsistentView())
}

func TestInsertManyRandomMatchesReference(t *testing.T) {
	const V = 200
	edges := graphgen.Uniform(V, 20, 7)
	g := newTestGraph(t, smallConfig(V, int64(len(edges))))
	for _, e := range edges {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	checkEqualAdj(t, refAdjacency(V, edges), g.ConsistentView())
	if got := g.ConsistentView().NumEdges(); got != int64(len(edges)) {
		t.Errorf("NumEdges = %d, want %d", got, len(edges))
	}
}

func TestSkewedGraphMatchesReference(t *testing.T) {
	spec, err := graphgen.Preset("orkut")
	if err != nil {
		t.Fatal(err)
	}
	edges := spec.Generate(0.0001, 11) // ~300 vertices, heavy skew
	v := graphgen.MaxVertex(edges)
	g := newTestGraph(t, smallConfig(v, int64(len(edges))))
	for _, e := range edges {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	checkEqualAdj(t, refAdjacency(v, edges), g.ConsistentView())
}

func TestHeavyVertexSpansSections(t *testing.T) {
	// One vertex with far more edges than a section holds.
	cfg := smallConfig(4, 4096)
	g := newTestGraph(t, cfg)
	want := make([]graph.V, 0, 500)
	for i := 0; i < 500; i++ {
		d := graph.V(i % 4)
		if err := g.InsertEdge(2, d); err != nil {
			t.Fatal(err)
		}
		want = append(want, d)
	}
	var got []graph.V
	g.ConsistentView().Neighbors(2, func(d graph.V) bool { got = append(got, d); return true })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("heavy vertex mismatch: got %d edges, want %d", len(got), len(want))
	}
}

func TestResizeGrowsArray(t *testing.T) {
	cfg := smallConfig(8, 8) // deliberately tiny initial estimate
	g := newTestGraph(t, cfg)
	edges := graphgen.Uniform(8, 100, 3)
	for _, e := range edges {
		if err := g.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	checkEqualAdj(t, refAdjacency(8, edges), g.ConsistentView())
}

func TestEnsureVerticesGrowsIDSpace(t *testing.T) {
	g := newTestGraph(t, smallConfig(4, 16))
	if err := g.InsertEdge(100, 3); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 101 {
		t.Errorf("NumVertices = %d, want 101", g.NumVertices())
	}
	s := g.ConsistentView()
	var got []graph.V
	s.Neighbors(100, func(d graph.V) bool { got = append(got, d); return true })
	if !reflect.DeepEqual(got, []graph.V{3}) {
		t.Errorf("vertex 100 edges = %v", got)
	}
}

func TestInsertVertexExplicit(t *testing.T) {
	g := newTestGraph(t, smallConfig(4, 16))
	if err := g.InsertVertex(50); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 51 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if d := g.ConsistentView().Degree(50); d != 0 {
		t.Errorf("new vertex degree = %d", d)
	}
}

func TestVertexIDOutOfRange(t *testing.T) {
	g := newTestGraph(t, smallConfig(4, 16))
	if err := g.InsertEdge(graph.MaxV+1, 0); err == nil {
		t.Error("expected error for id beyond 2^30")
	}
}

func TestDeleteEdge(t *testing.T) {
	g := newTestGraph(t, smallConfig(8, 32))
	mustInsert(t, g, 1, 2)
	mustInsert(t, g, 1, 3)
	mustInsert(t, g, 1, 2)
	if err := g.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	s := g.ConsistentView()
	if s.Degree(1) != 2 {
		t.Errorf("Degree = %d, want 2", s.Degree(1))
	}
	var got []graph.V
	s.Neighbors(1, func(d graph.V) bool { got = append(got, d); return true })
	// One of the two (1->2) edges is cancelled; (1->3) survives.
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []graph.V{2, 3}) {
		t.Errorf("after delete: %v", got)
	}
}

func TestDeleteNonexistentEdge(t *testing.T) {
	g := newTestGraph(t, smallConfig(8, 32))
	if err := g.DeleteEdge(1, 2); !errors.Is(err, ErrNoEdge) {
		t.Errorf("err = %v, want ErrNoEdge", err)
	}
	if err := g.DeleteEdge(1, 2); !errors.Is(err, graph.ErrEdgeNotFound) {
		t.Errorf("err = %v, want to wrap graph.ErrEdgeNotFound", err)
	}
	// A vertex with live edges still rejects a delete for a destination
	// it has no live copy of (live-match validation, not just live>0).
	mustInsert(t, g, 1, 3)
	if err := g.DeleteEdge(1, 2); !errors.Is(err, ErrNoEdge) {
		t.Errorf("delete of unmatched dst: %v, want ErrNoEdge", err)
	}
	// A delete naming a vertex beyond the id space is rejected without
	// growing the graph: no stop-the-world restructure for a bogus op.
	nv, resizes := g.NumVertices(), g.Stats().Resizes
	if err := g.DeleteEdge(1_000_000, 2); !errors.Is(err, ErrNoEdge) {
		t.Errorf("out-of-range delete: %v, want ErrNoEdge", err)
	}
	if g.NumVertices() != nv || g.Stats().Resizes != resizes {
		t.Errorf("out-of-range delete grew the graph: %d vertices (was %d), %d resizes (was %d)",
			g.NumVertices(), nv, g.Stats().Resizes, resizes)
	}
}

func TestDeleteSurvivesMerge(t *testing.T) {
	// Deletions recorded as tombstones must stay correct across
	// rebalances and merges.
	cfg := smallConfig(16, 64)
	g := newTestGraph(t, cfg)
	rng := rand.New(rand.NewSource(5))
	type key struct{ s, d graph.V }
	liveCount := map[key]int{}
	for i := 0; i < 400; i++ {
		s := graph.V(rng.Intn(16))
		d := graph.V(rng.Intn(16))
		k := key{s, d}
		if rng.Intn(4) == 0 && liveCount[k] > 0 {
			if err := g.DeleteEdge(s, d); err != nil {
				t.Fatal(err)
			}
			liveCount[k]--
		} else {
			mustInsert(t, g, s, d)
			liveCount[k]++
		}
	}
	snap := g.ConsistentView()
	got := map[key]int{}
	for v := 0; v < 16; v++ {
		snap.Neighbors(graph.V(v), func(d graph.V) bool {
			got[key{graph.V(v), d}]++
			return true
		})
	}
	for k, n := range liveCount {
		if n == 0 {
			continue
		}
		if got[k] != n {
			t.Errorf("edge %v: got %d, want %d", k, got[k], n)
		}
	}
	for k, n := range got {
		if liveCount[k] != n {
			t.Errorf("unexpected edge %v x%d (want %d)", k, n, liveCount[k])
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	g := newTestGraph(t, smallConfig(8, 64))
	mustInsert(t, g, 1, 2)
	mustInsert(t, g, 1, 3)
	snap := g.ConsistentView()

	// Updates after the snapshot, enough to force merges and rebalances
	// that physically move vertex 1's edges.
	for i := 0; i < 300; i++ {
		mustInsert(t, g, graph.V(i%8), graph.V((i+1)%8))
	}

	var got []graph.V
	snap.Neighbors(1, func(d graph.V) bool { got = append(got, d); return true })
	if !reflect.DeepEqual(got, []graph.V{2, 3}) {
		t.Errorf("snapshot leaked later inserts: %v", got)
	}
	if snap.NumEdges() != 2 {
		t.Errorf("snapshot NumEdges = %d", snap.NumEdges())
	}

	// A fresh view sees everything.
	if got := g.ConsistentView().NumEdges(); got != 302 {
		t.Errorf("latest NumEdges = %d, want 302", got)
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := newTestGraph(t, smallConfig(4, 16))
	for _, d := range []graph.V{1, 2, 3} {
		mustInsert(t, g, 0, d)
	}
	count := 0
	g.ConsistentView().Neighbors(0, func(graph.V) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestEdgeLogPathUsed(t *testing.T) {
	// Two vertices in the same region force occupied target slots and
	// hence edge-log appends.
	cfg := smallConfig(2, 8)
	g := newTestGraph(t, cfg)
	var want0, want1 []graph.V
	for i := 0; i < 200; i++ {
		mustInsert(t, g, 0, graph.V(i%2))
		want0 = append(want0, graph.V(i%2))
		mustInsert(t, g, 1, graph.V((i+1)%2))
		want1 = append(want1, graph.V((i+1)%2))
	}
	s := g.ConsistentView()
	var g0, g1 []graph.V
	s.Neighbors(0, func(d graph.V) bool { g0 = append(g0, d); return true })
	s.Neighbors(1, func(d graph.V) bool { g1 = append(g1, d); return true })
	if !reflect.DeepEqual(g0, want0) || !reflect.DeepEqual(g1, want1) {
		t.Fatal("interleaved inserts (edge-log path) corrupted order")
	}
}

func mustInsert(t *testing.T, g *Graph, s, d graph.V) {
	t.Helper()
	if err := g.InsertEdge(s, d); err != nil {
		t.Fatalf("InsertEdge(%d,%d): %v", s, d, err)
	}
}

func TestAblationVariantsMatchReference(t *testing.T) {
	const V = 120
	edges := graphgen.Uniform(V, 16, 13)
	want := refAdjacency(V, edges)
	variants := []struct {
		name string
		mod  func(*Config)
	}{
		{"full", func(*Config) {}},
		{"noEL", func(c *Config) { c.EnableEdgeLog = false }},
		{"noEL-noUL", func(c *Config) { c.EnableEdgeLog = false; c.UseUndoLog = false }},
		{"noEL-noUL-noDP", func(c *Config) {
			c.EnableEdgeLog = false
			c.UseUndoLog = false
			c.MetadataInDRAM = false
		}},
		{"noUL-only", func(c *Config) { c.UseUndoLog = false }},
	}
	for _, vr := range variants {
		t.Run(vr.name, func(t *testing.T) {
			cfg := smallConfig(V, int64(len(edges)))
			vr.mod(&cfg)
			g := newTestGraph(t, cfg)
			for _, e := range edges {
				if err := g.InsertEdge(e.Src, e.Dst); err != nil {
					t.Fatal(err)
				}
			}
			checkEqualAdj(t, want, g.ConsistentView())
		})
	}
}

func TestWriterSlotsExhaust(t *testing.T) {
	cfg := smallConfig(4, 16)
	cfg.MaxWriters = 2
	g := newTestGraph(t, cfg)
	w1, err := g.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.NewWriter(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.NewWriter(); err == nil {
		t.Error("expected writer exhaustion")
	}
	w1.Close()
	if _, err := g.NewWriter(); err != nil {
		t.Errorf("slot not reusable after Close: %v", err)
	}
}

func TestWriteAmplificationLowerWithEdgeLog(t *testing.T) {
	// The core claim of the per-section edge log: media traffic per
	// inserted edge drops versus shifting. Skewed degrees make heavy
	// vertices outgrow their gap share, forcing occupied-slot inserts.
	spec, err := graphgen.Preset("orkut")
	if err != nil {
		t.Fatal(err)
	}
	edges := spec.Generate(0.0003, 31)
	v := graphgen.MaxVertex(edges)
	run := func(el bool) (perEdge float64, logAppends int64) {
		cfg := smallConfig(v, int64(len(edges))/2) // tight estimate
		cfg.EnableEdgeLog = el
		a := pmem.New(512 << 20)
		g, err := New(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a.ResetStats()
		for _, e := range edges {
			if err := g.InsertEdge(e.Src, e.Dst); err != nil {
				t.Fatal(err)
			}
		}
		return float64(a.Stats().MediaBytes) / float64(len(edges)), g.Stats().LogAppends
	}
	withEL, appends := run(true)
	withoutEL, _ := run(false)
	if appends == 0 {
		t.Fatal("workload never exercised the edge log; test is vacuous")
	}
	if withEL >= withoutEL {
		t.Errorf("edge log did not reduce media writes: with=%f without=%f", withEL, withoutEL)
	}
}
