package dgap

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dgap/internal/graph"
	"dgap/internal/pmem"
)

// ErrPoisoned is returned by Checkpoint and Close after an injected
// crash hook panicked out of a structural operation: the instance's
// DRAM metadata (and held section locks) may be torn, so dumping it and
// marking the image NORMAL_SHUTDOWN could corrupt recovery. Reopen from
// the arena image instead — exactly what a real crash forces.
var ErrPoisoned = fmt.Errorf("dgap: instance poisoned by injected crash; reopen from the arena image")

// Graph implements graph.Recoverable: Checkpoint is the graceful dump,
// Recovery reports how Open attached.
var _ graph.Recoverable = (*Graph)(nil)

// Close performs a graceful shutdown: the first call runs Checkpoint
// (dump DRAM metadata, set NORMAL_SHUTDOWN) and latches its result;
// repeated calls return that first result without re-dumping, so a
// failed shutdown (a dump error, ErrPoisoned) is never masked as nil
// for callers that retry. Close after an injected crash fails with
// ErrPoisoned rather than marking a torn image clean.
func (g *Graph) Close() error {
	g.closeOnce.Do(func() { g.closeErr = g.Checkpoint() })
	return g.closeErr
}

// Recovery implements graph.Recoverable: how this instance attached to
// its image. ok is false for instances created fresh by New.
func (g *Graph) Recovery() (graph.RecoveryStats, bool) { return g.recovered, g.attached }

// Checkpoint performs the graceful dump without retiring the instance:
// it quiesces writers (snapMu), dumps the DRAM metadata (vertex array,
// density counters, edge-log marks) to a PM region for fast reload, and
// sets the NORMAL_SHUTDOWN flag. The graph stays fully usable; the
// first mutation afterwards clears the flag again before touching the
// image (markDirty), so the checkpoint is invalidated crash-safely.
// A Checkpoint with no intervening mutation is a no-op, which is what
// makes Close idempotent.
func (g *Graph) Checkpoint() error {
	if g.poisoned.Load() {
		return ErrPoisoned
	}
	g.snapMu.Lock()
	defer g.snapMu.Unlock()
	if g.clean.Load() {
		return nil // the image already carries this state's dump
	}
	ep := g.ep.Load()
	nv := g.nVert.Load()

	const vRec = 32
	size := uint64(48) + uint64(len(ep.meta))*vRec + uint64(ep.nSec)*16
	dump, err := g.a.AllocRegion("dgap: shutdown dump", size, pmem.CacheLineSize)
	if err != nil {
		return err
	}
	g.a.WriteU64(dump, dgapMagic)
	g.a.WriteU64(dump+8, nv)
	g.a.WriteU64(dump+16, uint64(len(ep.meta)))
	g.a.WriteU64(dump+24, uint64(ep.nSec))
	g.a.WriteU64(dump+32, ep.slots) // sanity check against the root record
	off := dump + 48
	for v := range ep.meta {
		m := &ep.meta[v]
		g.a.WriteU64(off, m.start.Load())
		g.a.WriteU64(off+8, m.counts.Load())
		g.a.WriteU64(off+16, uint64(m.live.Load()))
		g.a.WriteU32(off+24, m.elHead.Load())
		g.a.WriteU32(off+28, m.flags.Load())
		off += vRec
	}
	for s := 0; s < ep.nSec; s++ {
		g.a.WriteU64(off, uint64(ep.secCount[s].Load()))
		g.a.WriteU32(off+8, ep.elogUsed[s].Load())
		g.a.WriteU32(off+12, ep.elogLive[s].Load())
		off += 16
	}
	g.a.Flush(dump, size)
	g.a.Fence()
	g.a.PersistU64(sbMetaDump, dump)
	g.a.PersistU64(sbShutdown, 1)
	g.clean.Store(true)
	return nil
}

// Open attaches to an initialized DGAP image: the fast path reloads the
// graceful-shutdown dump; the crash path replays undo logs, rebuilds
// all DRAM metadata from the edge array's pivots and the edge logs, and
// scrubs torn remnants of unacknowledged groups (checksum-failing log
// entries, entries past a break in a back-pointer chain, edge slots
// orphaned behind a gap). Recovery() reports what was replayed and
// dropped, and the attach time.
func Open(a *pmem.Arena, cfg Config) (*Graph, error) {
	t0 := time.Now()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if a.ReadU64(sbMagic) != dgapMagic {
		return nil, fmt.Errorf("dgap: arena holds no DGAP image")
	}
	g := &Graph{a: a, cfg: cfg}
	g.ulogTable = a.ReadU64(sbUlogTable)
	g.wUsed = make([]bool, cfg.MaxWriters)

	normal := a.ReadU64(sbShutdown) == 1
	// Clear the flag first: if we crash during recovery, the next open
	// takes the crash path again.
	a.PersistU64(sbShutdown, 0)

	rs := graph.RecoveryStats{Graceful: normal}
	if !normal {
		// Step 1 of the paper's crash path: undo interrupted rebalances
		// before trusting the edge array.
		rs.UndoRangesReplayed = g.replayUndoLogs()
		pmem.RecoverTx(a)
	}

	ep, err := g.loadEpoch()
	if err != nil {
		return nil, err
	}

	if normal {
		if err := g.loadDump(ep); err != nil {
			return nil, err
		}
	} else {
		g.rebuildFromImage(ep, &rs)
	}
	g.ep.Store(ep)
	var liveSum int64
	for v := range ep.meta {
		liveSum += ep.meta[v].live.Load()
	}
	g.liveTotal.Store(liveSum)
	if cfg.CoWDegreeCache {
		g.cow = newCowCache(len(ep.meta))
		g.cow.seed(ep.meta)
	}

	if !normal {
		// Paper: "proceeds to reissue the rebalancing operation" — any
		// section left over-dense by the crash is rebalanced now.
		if err := g.recoverySweep(); err != nil {
			return nil, err
		}
	}
	rs.AttachTime = time.Since(t0)
	g.recovered = rs
	g.attached = true
	return g, nil
}

// loadEpoch builds the epoch skeleton from the persistent root record.
func (g *Graph) loadEpoch() (*epoch, error) {
	rec := g.a.ReadU64(sbRoot)
	if rec == 0 {
		return nil, fmt.Errorf("dgap: missing root record")
	}
	slots := g.a.ReadU64(rec + rootSlots)
	ss := g.a.ReadU64(rec + rootSectionSl)
	if ss == 0 || slots%ss != 0 {
		return nil, fmt.Errorf("dgap: corrupt root record")
	}
	shift := uint(0)
	for uint64(1)<<shift < ss {
		shift++
	}
	nSec := int(slots / ss)
	elogSecBytes := g.a.ReadU64(rec + rootELogSecSize)
	ep := &epoch{
		arrayOff:     g.a.ReadU64(rec + rootArrayOff),
		slots:        slots,
		sectionSlots: ss,
		secShift:     shift,
		nSec:         nSec,
		elogOff:      g.a.ReadU64(rec + rootELogOff),
		elogSecBytes: elogSecBytes,
		entriesPer:   uint32(elogSecBytes / logEntrySize),
		rootRec:      rec,
	}
	ep.locks = make([]sync.RWMutex, nSec)
	ep.secCount = make([]atomic.Int64, nSec)
	ep.elogUsed = make([]atomic.Uint32, nSec)
	ep.elogLive = make([]atomic.Uint32, nSec)
	ep.lastTrig = make([]atomic.Int64, nSec)
	return ep, nil
}

// replayUndoLogs restores every armed per-thread undo log: each backed-up
// range is copied back, returning the structure to its exact
// pre-rebalance state. Returns the number of ranges replayed.
func (g *Graph) replayUndoLogs() int64 {
	var replayed int64
	for tid := 0; tid < g.cfg.MaxWriters; tid++ {
		ent := g.a.ReadU64(g.ulogTable + pmem.Off(tid)*8)
		off, _ := unpackUlogEntry(ent)
		if off == 0 || g.a.ReadU64(off+ulActive) != 1 {
			continue
		}
		nRanges := g.a.ReadU64(off + ulNRanges)
		cur := off + ulHeader
		for r := uint64(0); r < nRanges; r++ {
			dst := g.a.ReadU64(cur)
			n := g.a.ReadU64(cur + 8)
			if dst+n > uint64(g.a.Size()) {
				break // torn range header; the arm flag ordering makes this unreachable, stay defensive
			}
			g.a.WriteBytes(dst, g.a.ReadBytes(cur+ulRangeHd, n))
			g.a.Flush(dst, n)
			cur += ulRangeHd + pmem.Off(n)
			replayed++
		}
		g.a.Fence()
		g.a.PersistU64(off+ulActive, 0)
	}
	return replayed
}

// loadDump restores DRAM metadata from the graceful-shutdown dump.
func (g *Graph) loadDump(ep *epoch) error {
	dump := g.a.ReadU64(sbMetaDump)
	if dump == 0 || g.a.ReadU64(dump) != dgapMagic {
		return fmt.Errorf("dgap: graceful shutdown flagged but dump missing")
	}
	nv := g.a.ReadU64(dump + 8)
	vertCap := int(g.a.ReadU64(dump + 16))
	nSec := int(g.a.ReadU64(dump + 24))
	if nSec != ep.nSec || g.a.ReadU64(dump+32) != ep.slots {
		return fmt.Errorf("dgap: dump does not match root record")
	}
	const vRec = 32
	ep.meta = make([]vertexMeta, vertCap)
	off := dump + 48
	for v := 0; v < vertCap; v++ {
		m := &ep.meta[v]
		m.start.Store(g.a.ReadU64(off))
		m.counts.Store(g.a.ReadU64(off + 8))
		m.live.Store(int64(g.a.ReadU64(off + 16)))
		m.elHead.Store(g.a.ReadU32(off + 24))
		m.flags.Store(g.a.ReadU32(off + 28))
		off += vRec
	}
	for s := 0; s < nSec; s++ {
		ep.secCount[s].Store(int64(g.a.ReadU64(off)))
		ep.elogUsed[s].Store(g.a.ReadU32(off + 8))
		ep.elogLive[s].Store(g.a.ReadU32(off + 12))
		off += 16
	}
	g.nVert.Store(nv)
	return nil
}

// rebuildFromImage reconstructs all DRAM metadata from the persistent
// image: a sequential scan of the edge array recovers every vertex's
// start and array-resident entries from its pivot; a scan of the edge
// logs recovers the chains. Torn remnants of unacknowledged groups are
// dropped AND scrubbed from the media — an orphan slot or half-written
// log entry left in place could be adopted as a phantom edge by a later
// append — and counted in rs.DroppedTorn; everything adopted counts in
// rs.ReplayedOps.
func (g *Graph) rebuildFromImage(ep *epoch, rs *graph.RecoveryStats) {
	nv := g.a.ReadU64(sbNVert)
	vertCap := int(nv)
	scrubbed := false

	type chainEnt struct {
		idx  uint32
		dst  uint32
		back uint32
	}
	chains := make(map[graph.V][]chainEnt)

	// Pass 1: edge array.
	raw := g.a.Slice(ep.arrayOff, ep.slots*slotBytes)
	starts := make(map[graph.V]uint64)
	arrCnt := make(map[graph.V]uint64)
	liveArr := make(map[graph.V]int64)
	tombV := make(map[graph.V]bool)
	var curV graph.V
	haveCur := false
	for s := uint64(0); s < ep.slots; s++ {
		val := binary.LittleEndian.Uint32(raw[s*slotBytes:])
		switch {
		case val == slotEmpty:
			haveCur = false
		case isPivot(val):
			curV = graph.V(val & idMask)
			haveCur = true
			starts[curV] = s
			if int(curV)+1 > vertCap {
				vertCap = int(curV) + 1
			}
			ep.secCount[ep.secOf(s)].Add(1)
		case haveCur:
			arrCnt[curV]++
			if isTomb(val) {
				liveArr[curV] -= 2 // cancels itself and one prior edge
				tombV[curV] = true
			}
			ep.secCount[ep.secOf(s)].Add(1)
			rs.ReplayedOps++
		default:
			// An edge slot with no preceding pivot is a torn remnant: a
			// chaos crash can persist the later slots of an unfenced
			// group while dropping earlier ones, leaving this value
			// stranded behind a gap. Scrub it back to a gap so a future
			// append can never adopt it as a phantom edge.
			g.a.WriteU32(ep.slotOff(s), slotEmpty)
			g.a.Flush(ep.slotOff(s), slotBytes)
			rs.DroppedTorn++
			scrubbed = true
		}
	}

	// Pass 2: edge logs. Checksum-valid entries are chain candidates;
	// anything nonzero that fails the checksum is a torn append, zeroed
	// so the slot is reusable and can never be misread.
	zero := make([]byte, logEntrySize)
	scrub := func(idx uint32) {
		off := ep.entryOff(idx)
		g.a.WriteBytes(off, zero)
		g.a.Flush(off, logEntrySize)
		rs.DroppedTorn++
		scrubbed = true
	}
	for sec := 0; sec < ep.nSec; sec++ {
		base := uint32(sec) * ep.entriesPer
		for i := uint32(0); i < ep.entriesPer; i++ {
			off := ep.entryOff(base + i)
			srcTag := g.a.ReadU32(off)
			dst := g.a.ReadU32(off + 4)
			back := g.a.ReadU32(off + 8)
			chk := g.a.ReadU32(off + 12)
			if srcTag&pivotBit == 0 || chk != logChecksum(srcTag, dst, back) {
				if srcTag|dst|back|chk != 0 {
					scrub(base + i)
				}
				continue
			}
			src := graph.V(srcTag & idMask)
			chains[src] = append(chains[src], chainEnt{idx: base + i, dst: dst, back: back})
		}
	}

	// Pass 2b: validate each chain's back-pointer thread. A healthy
	// chain lives in one section and links noEntry -> ... -> head in
	// ascending index order; an entry whose predecessor was torn away
	// is itself part of the torn group (its op would surface without
	// the same source's earlier op), so the suffix from the first break
	// is dropped and scrubbed too.
	for src, ch := range chains {
		sort.Slice(ch, func(i, j int) bool { return ch[i].idx < ch[j].idx })
		ok := 0
		for j, e := range ch {
			want := uint32(noEntry)
			if j > 0 {
				want = ch[j-1].idx
			}
			if e.back != want {
				break
			}
			ok = j + 1
		}
		if ok < len(ch) {
			for _, e := range ch[ok:] {
				scrub(e.idx)
			}
			if ok == 0 {
				delete(chains, src)
			} else {
				chains[src] = ch[:ok]
			}
		}
	}
	for _, ch := range chains {
		for _, e := range ch {
			sec := int(e.idx / ep.entriesPer)
			ep.elogLive[sec].Add(1)
			if used := e.idx%ep.entriesPer + 1; used > ep.elogUsed[sec].Load() {
				ep.elogUsed[sec].Store(used)
			}
			rs.ReplayedOps++
		}
	}
	if scrubbed {
		g.a.Fence()
	}

	ep.meta = make([]vertexMeta, vertCap)
	for v := 0; v < vertCap; v++ {
		m := &ep.meta[v]
		m.elHead.Store(noEntry)
		vv := graph.V(v)
		st, ok := starts[vv]
		if !ok {
			// A vertex inside the id range whose pivot is missing can
			// only be one never laid out (crash before growth completed);
			// give it no edges and a zero start — it is unreachable until
			// the next restructure lays it out.
			continue
		}
		m.start.Store(st)
		arr := arrCnt[vv]
		lg := uint64(0)
		live := int64(arr) + liveArr[vv]
		if ch, ok := chains[vv]; ok {
			// Within one section entries append at increasing index and a
			// chain never outlives a merge, so ascending index is
			// chronological order.
			sort.Slice(ch, func(i, j int) bool { return ch[i].idx < ch[j].idx })
			lg = uint64(len(ch))
			m.elHead.Store(ch[len(ch)-1].idx)
			for _, e := range ch {
				if isTomb(e.dst) {
					live-- // the tombstone kills one earlier edge
					tombV[vv] = true
				} else {
					live++
				}
			}
		}
		m.counts.Store(packCounts(arr, uint32(lg)))
		if live < 0 {
			live = 0
		}
		m.live.Store(live)
		if tombV[vv] {
			m.flags.Store(flagHasTomb)
		}
	}
	g.nVert.Store(nv)
}

// recoverySweep finishes work a crash interrupted: sections whose density
// or edge-log usage is over threshold are rebalanced immediately.
func (g *Graph) recoverySweep() error {
	w, err := g.NewWriter()
	if err != nil {
		return err
	}
	defer w.Close()
	g.snapMu.RLock()
	defer g.snapMu.RUnlock()
	ep := g.ep.Load()
	for sec := 0; sec < ep.nSec; sec++ {
		if trig := g.checkTriggers(ep, sec); trig != trigNone {
			if err := g.rebalance(w, sec, trig); err != nil {
				return err
			}
			if g.ep.Load() != ep {
				break // a restructure rebuilt everything
			}
		}
	}
	return nil
}
