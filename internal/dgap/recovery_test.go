package dgap

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
	"dgap/internal/pmem"
)

// crashReopen simulates power loss and reopens the graph from the media
// image.
func crashReopen(t *testing.T, g *Graph, cfg Config) *Graph {
	t.Helper()
	a2 := g.Arena().Crash()
	g2, err := Open(a2, cfg)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	return g2
}

func TestCrashRecoveryBasic(t *testing.T) {
	cfg := smallConfig(64, 512)
	g := newTestGraph(t, cfg)
	edges := graphgen.Uniform(64, 12, 17)
	for _, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
	}
	g2 := crashReopen(t, g, cfg)
	// Every acknowledged edge must survive; per-vertex order preserved.
	checkEqualAdj(t, refAdjacency(64, edges), g2.ConsistentView())
}

func TestCrashRecoveryWithEdgeLogEntries(t *testing.T) {
	// Crash while chains are still unmerged: recovery must rebuild them
	// from the log segments in chronological order.
	spec, _ := graphgen.Preset("orkut")
	edges := spec.Generate(0.0001, 3)
	v := graphgen.MaxVertex(edges)
	cfg := smallConfig(v, int64(len(edges))/2)
	g := newTestGraph(t, cfg)
	for _, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
	}
	if g.Stats().LogAppends == 0 {
		t.Fatal("workload never used the edge log; test is vacuous")
	}
	g2 := crashReopen(t, g, cfg)
	checkEqualAdj(t, refAdjacency(v, edges), g2.ConsistentView())
}

func TestCrashRecoveryWithTombstones(t *testing.T) {
	cfg := smallConfig(16, 128)
	g := newTestGraph(t, cfg)
	mustInsert(t, g, 1, 2)
	mustInsert(t, g, 1, 3)
	mustInsert(t, g, 1, 2)
	if err := g.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g2 := crashReopen(t, g, cfg)
	s := g2.ConsistentView()
	if s.Degree(1) != 2 {
		t.Errorf("recovered degree = %d, want 2", s.Degree(1))
	}
	var got []graph.V
	s.Neighbors(1, func(d graph.V) bool { got = append(got, d); return true })
	if len(got) != 2 {
		t.Errorf("recovered edges: %v", got)
	}
}

func TestGracefulShutdownReopen(t *testing.T) {
	cfg := smallConfig(64, 512)
	g := newTestGraph(t, cfg)
	edges := graphgen.Uniform(64, 12, 19)
	for _, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	a2 := g.Arena().Crash() // power-off after graceful shutdown
	g2, err := Open(a2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkEqualAdj(t, refAdjacency(64, edges), g2.ConsistentView())

	// The graph must remain fully usable: inserts, merges, rebalances.
	more := graphgen.Uniform(64, 6, 23)
	for _, e := range more {
		mustInsert(t, g2, e.Src, e.Dst)
	}
	want := refAdjacency(64, append(append([]graph.Edge{}, edges...), more...))
	checkEqualAdj(t, want, g2.ConsistentView())
}

func TestReopenAfterCrashIsReusable(t *testing.T) {
	cfg := smallConfig(32, 256)
	g := newTestGraph(t, cfg)
	edges := graphgen.Uniform(32, 8, 29)
	for _, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
	}
	g2 := crashReopen(t, g, cfg)
	more := graphgen.Uniform(32, 8, 31)
	for _, e := range more {
		mustInsert(t, g2, e.Src, e.Dst)
	}
	want := refAdjacency(32, append(append([]graph.Edge{}, edges...), more...))
	checkEqualAdj(t, want, g2.ConsistentView())
}

func TestOpenUninitializedArena(t *testing.T) {
	if _, err := Open(pmem.New(1<<20), DefaultConfig(4, 4)); err == nil {
		t.Fatal("expected error opening empty arena")
	}
}

func TestDoubleCloseThenOpen(t *testing.T) {
	cfg := smallConfig(8, 32)
	g := newTestGraph(t, cfg)
	mustInsert(t, g, 1, 2)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(g.Arena().Crash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g2.ConsistentView().NumEdges() != 1 {
		t.Error("edge lost across double close")
	}
}

// crashPanic aborts an operation mid-flight from a crash hook.
type crashPanic struct{ point string }

// insertUntilHook inserts edges until the hook fires (recovering from the
// injected panic); returns the number of edges fully acknowledged.
func insertUntilHook(t *testing.T, g *Graph, edges []graph.Edge) int {
	t.Helper()
	acked := 0
	for _, e := range edges {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					if cp, ok := r.(crashPanic); ok {
						err = fmt.Errorf("crashed at %s", cp.point)
						return
					}
					panic(r)
				}
			}()
			return g.InsertEdge(e.Src, e.Dst)
		}()
		if err != nil {
			return acked
		}
		acked++
	}
	return acked
}

func TestCrashDuringRebalanceAtEveryPoint(t *testing.T) {
	for _, point := range []string{"rebalance:armed", "rebalance:mid-move", "rebalance:moved"} {
		t.Run(point, func(t *testing.T) {
			spec, _ := graphgen.Preset("orkut")
			edges := spec.Generate(0.00005, 41)
			v := graphgen.MaxVertex(edges)
			cfg := smallConfig(v, int64(len(edges)))
			g := newTestGraph(t, cfg)
			// Arm the hook to fire on the Nth rebalance so some history
			// accumulates first.
			n := 0
			g.SetCrashHook(func(p string) {
				if p == point {
					n++
					if n == 3 {
						panic(crashPanic{p})
					}
				}
			})
			acked := insertUntilHook(t, g, edges)
			if acked == len(edges) {
				t.Skip("workload did not trigger three rebalances")
			}
			g2 := crashReopen(t, g, cfg)
			checkEqualAdjMaybeInflight(t, v, edges, acked, g2.ConsistentView())
		})
	}
}

func TestCrashDuringRestructure(t *testing.T) {
	for _, point := range []string{"restructure:before-publish", "restructure:after-publish"} {
		t.Run(point, func(t *testing.T) {
			cfg := smallConfig(8, 8) // tiny: forces restructures quickly
			g := newTestGraph(t, cfg)
			g.SetCrashHook(func(p string) {
				if p == point {
					panic(crashPanic{p})
				}
			})
			edges := graphgen.Uniform(8, 64, 43)
			acked := insertUntilHook(t, g, edges)
			if acked == len(edges) {
				t.Skip("workload did not trigger a restructure")
			}
			g2 := crashReopen(t, g, cfg)
			checkEqualAdjMaybeInflight(t, 8, edges, acked, g2.ConsistentView())
		})
	}
}

// checkEqualAdjMaybeInflight verifies the recovered graph equals the
// acked prefix, tolerating the one in-flight edge (edges[acked]): an
// insert that crashed after its durable write but before returning may
// legitimately survive — durability of unacknowledged operations is
// allowed, loss of acknowledged ones is not.
func checkEqualAdjMaybeInflight(t *testing.T, v int, edges []graph.Edge, acked int, s graph.Snapshot) {
	t.Helper()
	want := refAdjacency(v, edges[:acked])
	inflight := edges[acked]
	for vid := range want {
		var got []graph.V
		s.Neighbors(graph.V(vid), func(d graph.V) bool { got = append(got, d); return true })
		exp := want[vid]
		if graph.V(vid) == inflight.Src && len(got) == len(exp)+1 {
			exp = append(append([]graph.V{}, exp...), inflight.Dst)
		}
		if !reflect.DeepEqual(got, exp) {
			t.Fatalf("vertex %d after crash:\n got:  %v\n want: %v (inflight %v)", vid, got, exp, inflight)
		}
	}
}

func TestChaosCrashNeverLosesAckedEdges(t *testing.T) {
	// Torn-cache-line simulation: any subset of unflushed 8-byte words
	// may land on media. Acked edges must survive every outcome, and
	// unacked ones must never corrupt the structure.
	spec, _ := graphgen.Preset("livejournal")
	edges := spec.Generate(0.0002, 47)
	v := graphgen.MaxVertex(edges)
	for seed := int64(0); seed < 5; seed++ {
		cfg := smallConfig(v, int64(len(edges))/2)
		g := newTestGraph(t, cfg)
		rng := rand.New(rand.NewSource(seed))
		cut := 1 + rng.Intn(len(edges)-1)
		for _, e := range edges[:cut] {
			mustInsert(t, g, e.Src, e.Dst)
		}
		a2 := g.Arena().ChaosCrash(seed * 977)
		g2, err := Open(a2, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkEqualAdj(t, refAdjacency(v, edges[:cut]), g2.ConsistentView())
	}
}

func TestCrashDuringRecoverySweepIsIdempotent(t *testing.T) {
	// A crash while recovery's rebalance sweep is running must leave an
	// image that the NEXT recovery handles — recovery must be
	// crash-consistent itself.
	spec, _ := graphgen.Preset("orkut")
	edges := spec.Generate(0.00005, 83)
	v := graphgen.MaxVertex(edges)
	cfg := smallConfig(v, int64(len(edges))/2)
	g := newTestGraph(t, cfg)
	for _, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
	}
	a2 := g.Arena().Crash()

	// First recovery, crashed mid-sweep via the rebalance hook.
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashPanic); !ok {
					panic(r)
				}
			}
		}()
		// Open with a hook is not directly expressible (the hook is set
		// after construction), so emulate: open fully, then crash during
		// a manually triggered extra rebalance storm.
		g2, err := Open(a2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		g2.SetCrashHook(func(p string) {
			if p == "rebalance:mid-move" {
				n++
				if n == 2 {
					panic(crashPanic{p})
				}
			}
		})
		for _, e := range edges { // drive more activity until the crash
			_ = g2.InsertEdge(e.Src, e.Dst)
		}
	}()
	a3 := a2.Crash()
	g3, err := Open(a3, cfg)
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	// The edges from the FIRST epoch must all still be there (whatever
	// subset of the second pass was acked is also fine, so only check
	// per-vertex lower bounds via the multiset of the first epoch).
	want := refAdjacency(v, edges)
	s := g3.ConsistentView()
	for vid := range want {
		n := 0
		s.Neighbors(graph.V(vid), func(graph.V) bool { n++; return true })
		if n < len(want[vid]) {
			t.Fatalf("vertex %d lost edges across double crash: %d < %d", vid, n, len(want[vid]))
		}
	}
}

func TestRecoveredGraphOrderPreserved(t *testing.T) {
	cfg := smallConfig(2, 8)
	g := newTestGraph(t, cfg)
	var want []graph.V
	for i := 0; i < 150; i++ {
		d := graph.V(i % 2)
		mustInsert(t, g, 0, d)
		mustInsert(t, g, 1, d)
		want = append(want, d)
	}
	g2 := crashReopen(t, g, cfg)
	var got []graph.V
	g2.ConsistentView().Neighbors(0, func(d graph.V) bool { got = append(got, d); return true })
	if !reflect.DeepEqual(got, want) {
		t.Fatal("insertion order lost across crash recovery")
	}
}
