package dgap

import (
	"math/rand"
	"reflect"
	"testing"

	"dgap/internal/graph"
)

// churnLoad drives a seeded random insert/delete mix and returns the
// reference live multiset.
func churnLoad(t *testing.T, g *Graph, nVert, ops int, seed int64) map[graph.Edge]int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := map[graph.Edge]int{}
	for i := 0; i < ops; i++ {
		e := graph.Edge{Src: graph.V(rng.Intn(nVert)), Dst: graph.V(rng.Intn(nVert))}
		if rng.Intn(3) == 0 && model[e] > 0 {
			if err := g.DeleteEdge(e.Src, e.Dst); err != nil {
				t.Fatal(err)
			}
			model[e]--
		} else {
			if err := g.InsertEdge(e.Src, e.Dst); err != nil {
				t.Fatal(err)
			}
			model[e]++
		}
	}
	return model
}

// visible materializes a snapshot's per-vertex destination sequences
// and releases the snapshot, so the graph is compactable afterwards.
func visible(s graph.Snapshot) [][]graph.V {
	adj := graph.Adjacency(s)
	if r, ok := s.(interface{ ReleaseSnapshot() }); ok {
		r.ReleaseSnapshot()
	}
	return adj
}

// TestCompactionPreservesVisibleSets is the compaction property test:
// after a churn mix, physically dropping every cancelled pair must not
// change any vertex's visible neighbor sequence, must clear the
// tombstone flags (re-arming the zero-copy sweep path), and must
// strictly shrink the occupied footprint.
func TestCompactionPreservesVisibleSets(t *testing.T) {
	for _, seed := range []int64{3, 17, 202} {
		cfg := smallConfig(32, 128)
		g := newTestGraph(t, cfg)
		model := churnLoad(t, g, 32, 800, seed)
		before := visible(g.Snapshot())
		fpBefore := g.Footprint()

		if err := g.Compact(); err != nil {
			t.Fatal(err)
		}
		st := g.Compaction()
		if st.PairsDropped == 0 {
			t.Fatalf("seed %d: no pairs dropped by a churn mix", seed)
		}
		fpAfter := g.Footprint()
		if fpAfter.OccupiedBytes+fpAfter.ELogBytes >= fpBefore.OccupiedBytes+fpBefore.ELogBytes {
			t.Errorf("seed %d: occupied space %d -> %d, want a strict drop",
				seed, fpBefore.OccupiedBytes+fpBefore.ELogBytes, fpAfter.OccupiedBytes+fpAfter.ELogBytes)
		}

		after := visible(g.Snapshot())
		if !reflect.DeepEqual(before, after) {
			for v := range before {
				if !reflect.DeepEqual(before[v], after[v]) {
					t.Fatalf("seed %d: vertex %d visible set changed: %v -> %v", seed, v, before[v], after[v])
				}
			}
		}
		// Every tombstone was matched (validated deletes), so none
		// survive a full compaction and the flags must be clear.
		ep := g.ep.Load()
		for v := range ep.meta {
			if ep.meta[v].flags.Load()&flagHasTomb != 0 {
				t.Fatalf("seed %d: vertex %d still flagged tombstoned after Compact", seed, v)
			}
		}
		// The model still matches.
		s := g.Snapshot()
		for e, c := range model {
			got := 0
			s.Neighbors(e.Src, func(d graph.V) bool {
				if d == e.Dst {
					got++
				}
				return true
			})
			if got != c {
				t.Fatalf("seed %d: edge %d->%d: %d copies after compaction, want %d", seed, e.Src, e.Dst, got, c)
			}
		}
	}
}

// TestCompactionGatedByOutstandingSnapshots: while any snapshot is
// alive, rebalances and Compact must copy tombstones instead of
// dropping them — the snapshot's immutable prefix depends on it — and
// the reclamation happens on the first compaction after release.
func TestCompactionGatedByOutstandingSnapshots(t *testing.T) {
	g := newTestGraph(t, smallConfig(16, 64))
	churnLoad(t, g, 16, 400, 11)
	// The snapshot-free churn above compacts organically through its
	// rebalances; everything from here on asserts deltas against that.
	base := g.Compaction().PairsDropped

	held := g.Snapshot()
	heldAdj := graph.Adjacency(held)
	if err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	if d := g.Compaction().PairsDropped - base; d != 0 {
		t.Fatalf("compaction dropped %d pairs with a snapshot outstanding", d)
	}
	// More churn (its rebalances must also keep their hands off) and
	// the held snapshot's history must be intact throughout.
	churnLoad(t, g, 16, 400, 12)
	if d := g.Compaction().PairsDropped - base; d != 0 {
		t.Fatalf("organic rebalance dropped %d pairs with a snapshot outstanding", d)
	}
	if got := graph.Adjacency(held); !reflect.DeepEqual(heldAdj, got) {
		t.Fatal("held snapshot's visible sets changed while compaction was gated")
	}

	held.(interface{ ReleaseSnapshot() }).ReleaseSnapshot()
	if err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	if d := g.Compaction().PairsDropped - base; d == 0 {
		t.Fatal("no pairs dropped after the last snapshot was released")
	}
}

// TestNoCompactionConfig: the ablation switch keeps every tombstone.
func TestNoCompactionConfig(t *testing.T) {
	cfg := smallConfig(16, 64)
	cfg.NoCompaction = true
	g := newTestGraph(t, cfg)
	model := churnLoad(t, g, 16, 400, 5)
	if err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := g.Compaction(); st.Compactions != 0 || st.PairsDropped != 0 {
		t.Fatalf("NoCompaction graph compacted anyway: %+v", st)
	}
	s := g.Snapshot()
	for e, c := range model {
		got := 0
		s.Neighbors(e.Src, func(d graph.V) bool {
			if d == e.Dst {
				got++
			}
			return true
		})
		if got != c {
			t.Fatalf("edge %d->%d: %d copies, want %d", e.Src, e.Dst, got, c)
		}
	}
}

// TestBatchDeleteMatchesScalar: DGAP's native DeleteBatch (section-
// grouped tombstones) must leave exactly the state a scalar-deleting
// twin reaches, including when batches force merges and rebalances,
// and compaction on both twins converges to identical visible sets.
func TestBatchDeleteMatchesScalar(t *testing.T) {
	const V = 48
	rng := rand.New(rand.NewSource(23))
	var ins []graph.Edge
	for i := 0; i < 700; i++ {
		ins = append(ins, graph.Edge{Src: graph.V(rng.Intn(V)), Dst: graph.V(rng.Intn(V))})
	}
	var del []graph.Edge
	seen := map[graph.Edge]int{}
	for _, e := range ins {
		seen[e]++
	}
	for i := 0; i < len(ins); i += 3 {
		if seen[ins[i]] > 0 {
			del = append(del, ins[i])
			seen[ins[i]]--
		}
	}

	scalar := newTestGraph(t, smallConfig(V, 256))
	for _, e := range ins {
		if err := scalar.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range del {
		if err := scalar.DeleteEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}

	batched := newTestGraph(t, smallConfig(V, 256))
	if err := batched.InsertBatch(ins); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(del); i += 64 {
		if err := batched.DeleteBatch(del[i:min(i+64, len(del))]); err != nil {
			t.Fatal(err)
		}
	}

	want := multisetOf(visible(scalar.Snapshot()))
	got := multisetOf(visible(batched.Snapshot()))
	if !reflect.DeepEqual(want, got) {
		t.Fatal("batched delete multiset diverges from scalar twin")
	}
	if err := scalar.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := batched.Compact(); err != nil {
		t.Fatal(err)
	}
	if batched.Compaction().PairsDropped == 0 {
		t.Fatal("batched twin compacted nothing")
	}
	if !reflect.DeepEqual(multisetOf(visible(scalar.Snapshot())), multisetOf(visible(batched.Snapshot()))) {
		t.Fatal("twins diverge after compaction")
	}
}

func multisetOf(adj [][]graph.V) []map[graph.V]int {
	out := make([]map[graph.V]int, len(adj))
	for v := range adj {
		out[v] = map[graph.V]int{}
		for _, d := range adj[v] {
			out[v][d]++
		}
	}
	return out
}
