package dgap

import (
	"sync"
	"testing"

	"dgap/internal/graph"
	"dgap/internal/graphgen"
)

func TestConcurrentWriters(t *testing.T) {
	const V = 128
	const workers = 4
	edges := graphgen.Uniform(V, 24, 53)
	cfg := smallConfig(V, int64(len(edges)))
	g := newTestGraph(t, cfg)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wr, err := g.NewWriter()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, wr *Writer) {
			defer wg.Done()
			defer wr.Close()
			for i := w; i < len(edges); i += workers {
				if err := wr.InsertEdge(edges[i].Src, edges[i].Dst); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w, wr)
	}
	wg.Wait()

	// Totals and per-vertex multisets must match (global order is not
	// deterministic under concurrency, per-vertex counts are).
	s := g.ConsistentView()
	if s.NumEdges() != int64(len(edges)) {
		t.Fatalf("NumEdges = %d, want %d", s.NumEdges(), len(edges))
	}
	wantCnt := make(map[graph.V]map[graph.V]int)
	for _, e := range edges {
		if wantCnt[e.Src] == nil {
			wantCnt[e.Src] = map[graph.V]int{}
		}
		wantCnt[e.Src][e.Dst]++
	}
	for v := 0; v < V; v++ {
		got := map[graph.V]int{}
		n := 0
		s.Neighbors(graph.V(v), func(d graph.V) bool { got[d]++; n++; return true })
		if n != len(flatten(wantCnt[graph.V(v)])) {
			t.Fatalf("vertex %d: %d edges, want %d", v, n, len(flatten(wantCnt[graph.V(v)])))
		}
		for d, c := range wantCnt[graph.V(v)] {
			if got[d] != c {
				t.Fatalf("vertex %d->%d: %d, want %d", v, d, got[d], c)
			}
		}
	}
}

func flatten(m map[graph.V]int) []graph.V {
	var out []graph.V
	for d, c := range m {
		for i := 0; i < c; i++ {
			out = append(out, d)
		}
	}
	return out
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	const V = 64
	edges := graphgen.Uniform(V, 30, 59)
	cfg := smallConfig(V, int64(len(edges)))
	g := newTestGraph(t, cfg)

	// Seed a prefix, snapshot it, then race more inserts against readers
	// of the frozen snapshot.
	seed := edges[:len(edges)/3]
	for _, e := range seed {
		mustInsert(t, g, e.Src, e.Dst)
	}
	snap := g.ConsistentView()
	wantEdges := snap.NumEdges()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var n int64
				for v := 0; v < V; v++ {
					snap.Neighbors(graph.V(v), func(graph.V) bool { n++; return true })
				}
				if n != wantEdges {
					t.Errorf("snapshot drifted: saw %d edges, want %d", n, wantEdges)
					return
				}
			}
		}()
	}
	wr, err := g.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges[len(edges)/3:] {
		if err := wr.InsertEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	wr.Close()

	if got := g.ConsistentView().NumEdges(); got != int64(len(edges)) {
		t.Errorf("final NumEdges = %d, want %d", got, len(edges))
	}
}

func TestConcurrentSnapshotsDiffer(t *testing.T) {
	const V = 32
	g := newTestGraph(t, smallConfig(V, 512))
	var snaps []*Snapshot
	edges := graphgen.Uniform(V, 16, 61)
	for i, e := range edges {
		mustInsert(t, g, e.Src, e.Dst)
		if i%100 == 0 {
			snaps = append(snaps, g.ConsistentView())
		}
	}
	prev := int64(-1)
	for _, s := range snaps {
		if s.NumEdges() < prev {
			t.Fatalf("snapshots not monotone: %d after %d", s.NumEdges(), prev)
		}
		prev = s.NumEdges()
		var n int64
		for v := 0; v < V; v++ {
			s.Neighbors(graph.V(v), func(graph.V) bool { n++; return true })
		}
		if n != s.NumEdges() {
			t.Fatalf("snapshot internal mismatch: iterated %d, NumEdges %d", n, s.NumEdges())
		}
	}
}

func TestConcurrentVertexGrowth(t *testing.T) {
	g := newTestGraph(t, smallConfig(4, 64))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wr, err := g.NewWriter()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, wr *Writer) {
			defer wg.Done()
			defer wr.Close()
			for i := 0; i < 50; i++ {
				src := graph.V(w*60 + i)
				if err := wr.InsertEdge(src, graph.V(i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w, wr)
	}
	wg.Wait()
	s := g.ConsistentView()
	if s.NumEdges() != 200 {
		t.Errorf("NumEdges = %d, want 200", s.NumEdges())
	}
	for w := 0; w < 4; w++ {
		for i := 0; i < 50; i++ {
			if d := s.Degree(graph.V(w*60 + i)); d != 1 {
				t.Fatalf("vertex %d degree = %d", w*60+i, d)
			}
		}
	}
}
